package guard

import (
	"sync"
	"time"
)

// probe is one registered self-check.
type probe struct {
	name    string
	timeout time.Duration
	fn      func()

	mu      sync.Mutex
	healthy bool
	lastOK  time.Time
	stalls  int64
	running bool
}

// ProbeStatus is one self-check's observable state.
type ProbeStatus struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	// LastOKAgoMS is how long ago the probe last completed in time
	// (-1 before the first completion).
	LastOKAgoMS int64 `json:"last_ok_ago_ms"`
	Stalls      int64 `json:"stalls"`
}

// WatchdogStatus is the watchdog's /debug/status surface.
type WatchdogStatus struct {
	Healthy bool          `json:"healthy"`
	Probes  []ProbeStatus `json:"probes"`
}

// Watchdog is a per-binary deadlock/stall self-check: subsystems
// register cheap probes (typically "acquire and release my hot-path
// lock"), and a background goroutine runs each on an interval with a
// timeout. A probe that cannot complete — a wedged lock holder, a
// stuck event loop — marks the check unhealthy and counts a stall;
// the next completion marks it healthy again. The surface is meant
// for /debug/status, where a stalled broker loop becomes visible to
// the status plane even though the process is still accepting TCP.
//
// Probes, not heartbeats: an idle broker blocks in its event loop by
// design, so "no beat lately" would false-positive. Acquiring the
// loop's mutex distinguishes idle (acquires instantly) from wedged
// (acquire blocks past the timeout).
type Watchdog struct {
	interval time.Duration
	logf     func(format string, args ...any)

	mu     sync.Mutex
	probes []*probe
	done   chan struct{}
	once   sync.Once
}

// NewWatchdog starts a watchdog checking every interval (default 1s).
// Stop it with Close.
func NewWatchdog(interval time.Duration, logf func(format string, args ...any)) *Watchdog {
	if interval <= 0 {
		interval = time.Second
	}
	w := &Watchdog{interval: interval, logf: logf, done: make(chan struct{})}
	go w.loop()
	return w
}

// Register adds a named self-check: fn must complete within timeout
// (default: the check interval) or the check is declared stalled. fn
// should be cheap and side-effect free — lock/unlock a mutex, read a
// channel length — and is never run concurrently with itself.
func (w *Watchdog) Register(name string, timeout time.Duration, fn func()) {
	if w == nil || fn == nil {
		return
	}
	if timeout <= 0 {
		timeout = w.interval
	}
	w.mu.Lock()
	w.probes = append(w.probes, &probe{name: name, timeout: timeout, fn: fn, healthy: true})
	w.mu.Unlock()
}

// loop drives every probe on the interval.
func (w *Watchdog) loop() {
	tick := time.NewTicker(w.interval)
	defer tick.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-tick.C:
		}
		w.mu.Lock()
		probes := append([]*probe(nil), w.probes...)
		w.mu.Unlock()
		for _, p := range probes {
			w.check(p)
		}
	}
}

// check runs one probe with its timeout. A probe still running from a
// previous round is skipped (its eventual completion resolves it) and
// counts as unhealthy until then.
func (w *Watchdog) check(p *probe) {
	p.mu.Lock()
	if p.running {
		p.mu.Unlock()
		return
	}
	p.running = true
	p.mu.Unlock()

	doneCh := make(chan struct{})
	go func() {
		p.fn()
		close(doneCh)
		p.mu.Lock()
		p.running = false
		wasHealthy := p.healthy
		p.healthy = true
		p.lastOK = time.Now()
		p.mu.Unlock()
		if !wasHealthy && w.logf != nil {
			w.logf("watchdog: check %q recovered", p.name)
		}
	}()
	t := time.NewTimer(p.timeout)
	defer t.Stop()
	select {
	case <-doneCh:
	case <-t.C:
		p.mu.Lock()
		p.healthy = false
		p.stalls++
		n := p.stalls
		p.mu.Unlock()
		if w.logf != nil {
			w.logf("watchdog: check %q stalled beyond %v (stall %d)", p.name, p.timeout, n)
		}
	}
}

// Status snapshots every check. Healthy is the conjunction.
func (w *Watchdog) Status() WatchdogStatus {
	if w == nil {
		return WatchdogStatus{Healthy: true}
	}
	w.mu.Lock()
	probes := append([]*probe(nil), w.probes...)
	w.mu.Unlock()
	st := WatchdogStatus{Healthy: true}
	for _, p := range probes {
		p.mu.Lock()
		ps := ProbeStatus{Name: p.name, Healthy: p.healthy, Stalls: p.stalls, LastOKAgoMS: -1}
		if !p.lastOK.IsZero() {
			ps.LastOKAgoMS = time.Since(p.lastOK).Milliseconds()
		}
		p.mu.Unlock()
		st.Healthy = st.Healthy && ps.Healthy
		st.Probes = append(st.Probes, ps)
	}
	return st
}

// Stalls sums stall counts across all checks.
func (w *Watchdog) Stalls() int64 {
	if w == nil {
		return 0
	}
	var n int64
	for _, p := range w.Status().Probes {
		n += p.Stalls
	}
	return n
}

// Close stops the watchdog loop. In-flight probe goroutines finish on
// their own.
func (w *Watchdog) Close() {
	if w == nil {
		return
	}
	w.once.Do(func() { close(w.done) })
}
