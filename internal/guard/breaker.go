package guard

import (
	"sync"
	"sync/atomic"
	"time"
)

// Breaker states.
const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed = iota
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome
	// closes or re-opens the breaker.
	BreakerHalfOpen
)

// BreakerConfig parameterizes a circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive failures open the breaker
	// (default 5).
	Threshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe (default 2s).
	Cooldown time.Duration
	// Now replaces the clock for tests (nil = time.Now).
	Now func() time.Time
}

// Breaker is a circuit breaker for an upstream link: after Threshold
// consecutive failures it opens and Allow fails fast — a relay stops
// hammering a dead parent with dial attempts — until Cooldown elapses,
// when a single half-open probe is admitted. The probe's Success
// closes the breaker; its Failure re-opens it for another cooldown.
// A nil *Breaker is inert (Allow always true), so callers thread an
// optional breaker without nil checks. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	probing  bool

	opens    atomic.Int64
	rejected atomic.Int64
}

// NewBreaker builds a breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether an attempt may proceed now. While open it
// returns false until the cooldown elapses, then admits exactly one
// half-open probe at a time.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.rejected.Add(1)
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			b.rejected.Add(1)
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful attempt, closing the breaker.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed attempt: a failed half-open probe re-opens
// immediately; Threshold consecutive closed-state failures open.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.open()
		}
	default: // already open (failure from an attempt admitted earlier)
		b.openedAt = b.cfg.Now()
	}
}

// open transitions to the open state (mu held).
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.probing = false
	b.opens.Add(1)
}

// State returns the current breaker state.
func (b *Breaker) State() int {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// StateName renders the state for status output.
func (b *Breaker) StateName() string {
	switch b.State() {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// Opens counts transitions into the open state.
func (b *Breaker) Opens() int64 {
	if b == nil {
		return 0
	}
	return b.opens.Load()
}

// Rejected counts attempts failed fast while open.
func (b *Breaker) Rejected() int64 {
	if b == nil {
		return 0
	}
	return b.rejected.Load()
}
