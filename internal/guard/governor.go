// Package guard is the process-wide overload-protection layer: a
// resource Governor with byte-accounted memory budgets and a stepped
// degradation ladder, a circuit Breaker for upstream links, and a
// Watchdog for deadlock/stall self-checks.
//
// The Governor is the policy core. Subsystems that hold frame memory
// (decoded frames in flight, the encode cache, per-client pacer
// queues, a relay's upstream ingest) each open a named Account and
// charge/release bytes as buffers come and go. The Governor tracks the
// total against a configured budget and derives a pressure ratio; as
// pressure crosses thresholds the process steps down a degradation
// ladder, in order:
//
//	L0  healthy    — no intervention
//	L1  ≥ 70%     — force lower quality rungs (cheaper encodes)
//	L2  ≥ 80%     — widen pacer drop windows (shallower queues)
//	L3  ≥ 90%     — pause encode-cache fills (serve hits only)
//	L4  ≥ 97%     — shed the newest non-relay clients
//
// Each transition is logged and counted. Stepping back up requires
// pressure to fall a hysteresis margin below the threshold, so the
// ladder does not flap at a boundary. Admission control sits in front
// of all of it: above the L3 threshold new viewers are rejected with a
// wire MsgBusy + retry-after instead of being accepted and starving
// everyone already admitted (relays, which serve whole subtrees, are
// only turned away above the L4 threshold).
package guard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Degradation-ladder levels.
const (
	// LevelHealthy is normal operation.
	LevelHealthy = 0
	// LevelQuality forces clients onto lower quality rungs.
	LevelQuality = 1
	// LevelPacer additionally halves effective pacer queue depth.
	LevelPacer = 2
	// LevelCache additionally pauses encode-cache fills.
	LevelCache = 3
	// LevelShed additionally sheds the newest non-relay clients.
	LevelShed = 4

	numLevels = 5
)

// Pressure thresholds for entering each level (fraction of budget),
// and the hysteresis margin required to step back down.
const (
	qualityThreshold = 0.70
	pacerThreshold   = 0.80
	cacheThreshold   = 0.90
	shedThreshold    = 0.97
	hysteresis       = 0.03
)

// LevelName names a ladder level for logs and status output.
func LevelName(level int) string {
	switch level {
	case LevelHealthy:
		return "healthy"
	case LevelQuality:
		return "quality-floor"
	case LevelPacer:
		return "pacer-narrow"
	case LevelCache:
		return "cache-pause"
	case LevelShed:
		return "shed"
	}
	return fmt.Sprintf("level(%d)", level)
}

// GovernorConfig parameterizes a Governor.
type GovernorConfig struct {
	// BudgetBytes is the total frame-memory budget the accounts charge
	// against. Zero or negative disables pressure-driven degradation
	// (accounts still count, pressure reads 0).
	BudgetBytes int64
	// MaxClients caps admitted display sessions per broker regardless
	// of memory pressure (0 = unlimited).
	MaxClients int
	// RetryAfter is the base retry hint attached to busy rejections
	// (default 500ms; scaled up with the current ladder level).
	RetryAfter time.Duration
	// ShedInterval rate-limits client shedding while at LevelShed
	// (default 250ms) so one pressure spike does not clear the room.
	ShedInterval time.Duration
	// Logf receives transition and shed diagnostics (nil silences).
	Logf func(format string, args ...any)
}

// Account is one subsystem's byte ledger against the shared budget.
// Add and Release are safe for concurrent use and O(1).
type Account struct {
	name string
	gov  *Governor
	used atomic.Int64
}

// Name returns the account label.
func (a *Account) Name() string { return a.name }

// Used returns the bytes currently charged to this account.
func (a *Account) Used() int64 { return a.used.Load() }

// Add charges n bytes (no-op for n <= 0) and re-evaluates the ladder.
func (a *Account) Add(n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.used.Add(n)
	a.gov.total.Add(n)
	a.gov.recheck()
}

// Release returns n bytes (no-op for n <= 0).
func (a *Account) Release(n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.used.Add(-n)
	a.gov.total.Add(-n)
	a.gov.recheck()
}

// Governor is the process-wide resource governor. The zero value is
// not usable; construct with NewGovernor. A nil *Governor is inert:
// every method is safe to call and reports "no pressure", so callers
// thread an optional governor without nil checks.
type Governor struct {
	cfg GovernorConfig

	total atomic.Int64 // bytes charged across all accounts
	level atomic.Int32 // current ladder level

	mu       sync.Mutex
	accounts map[string]*Account
	shedFns  []func() bool
	lastShed time.Time

	transitions [numLevels]atomic.Int64 // entries into each level
	rejected    atomic.Int64
	shedCount   atomic.Int64
	shedBusy    atomic.Bool
}

// NewGovernor builds a governor over the given budget.
func NewGovernor(cfg GovernorConfig) *Governor {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 500 * time.Millisecond
	}
	if cfg.ShedInterval <= 0 {
		cfg.ShedInterval = 250 * time.Millisecond
	}
	return &Governor{cfg: cfg, accounts: map[string]*Account{}}
}

// Account returns the named byte ledger, creating it on first use.
// Nil-safe: a nil governor returns a nil account whose Add/Release are
// no-ops.
func (g *Governor) Account(name string) *Account {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	a, ok := g.accounts[name]
	if !ok {
		a = &Account{name: name, gov: g}
		g.accounts[name] = a
	}
	return a
}

// Used returns the total bytes charged across all accounts.
func (g *Governor) Used() int64 {
	if g == nil {
		return 0
	}
	return g.total.Load()
}

// Budget returns the configured budget (0 = unbudgeted).
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.cfg.BudgetBytes
}

// Pressure returns used/budget in [0, ∞), or 0 when unbudgeted.
func (g *Governor) Pressure() float64 {
	if g == nil || g.cfg.BudgetBytes <= 0 {
		return 0
	}
	u := g.total.Load()
	if u <= 0 {
		return 0
	}
	return float64(u) / float64(g.cfg.BudgetBytes)
}

// Level returns the current degradation-ladder level.
func (g *Governor) Level() int {
	if g == nil {
		return LevelHealthy
	}
	return int(g.level.Load())
}

// levelFor maps a pressure ratio to the ladder level it demands,
// honoring the hysteresis margin relative to the current level: a
// level is kept until pressure falls margin below its threshold.
func levelFor(p float64, cur int) int {
	thresholds := [...]float64{qualityThreshold, pacerThreshold, cacheThreshold, shedThreshold}
	lvl := 0
	for i, th := range thresholds {
		eff := th
		if cur >= i+1 {
			eff = th - hysteresis
		}
		if p >= eff {
			lvl = i + 1
		}
	}
	return lvl
}

// recheck re-derives the ladder level from current pressure, counting
// and logging transitions, and triggers shedding while at LevelShed.
func (g *Governor) recheck() {
	if g == nil || g.cfg.BudgetBytes <= 0 {
		return
	}
	for {
		cur := g.level.Load()
		next := int32(levelFor(g.Pressure(), int(cur)))
		if next == cur {
			break
		}
		if !g.level.CompareAndSwap(cur, next) {
			continue
		}
		g.transitions[next].Add(1)
		if g.cfg.Logf != nil {
			dir := "up to"
			if next < cur {
				dir = "down to"
			}
			g.cfg.Logf("guard: pressure %.2f, degradation %s %s", g.Pressure(), dir, LevelName(int(next)))
		}
		break
	}
	if g.level.Load() >= LevelShed {
		g.maybeShed()
	}
}

// OnShed registers a shed callback — typically one per broker in the
// process — invoked (off the caller's goroutine) while the ladder sits
// at LevelShed. A callback reports whether it shed a client; the
// governor stops at the first success per shed round.
func (g *Governor) OnShed(fn func() bool) {
	if g == nil || fn == nil {
		return
	}
	g.mu.Lock()
	g.shedFns = append(g.shedFns, fn)
	g.mu.Unlock()
}

// maybeShed runs at most one shed round per ShedInterval, on its own
// goroutine so account updates made under subsystem locks never
// re-enter those subsystems synchronously.
func (g *Governor) maybeShed() {
	g.mu.Lock()
	due := time.Since(g.lastShed) >= g.cfg.ShedInterval && len(g.shedFns) > 0
	if due {
		g.lastShed = time.Now()
	}
	fns := g.shedFns
	g.mu.Unlock()
	if !due || !g.shedBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer g.shedBusy.Store(false)
		for _, fn := range fns {
			if fn() {
				g.shedCount.Add(1)
				if g.cfg.Logf != nil {
					g.cfg.Logf("guard: shed newest client (pressure %.2f)", g.Pressure())
				}
				return
			}
		}
	}()
}

// Admit decides whether a new display connection may attach. relay
// marks connections that serve whole subtrees: they are admitted up to
// the shed threshold, while plain viewers are turned away once the
// cache-pause threshold is crossed — the room is already degrading,
// more viewers only deepen it. clients is the broker's current session
// count for the MaxClients cap. A rejection returns the retry-after
// hint to put on the wire.
func (g *Governor) Admit(relay bool, clients int) (ok bool, retryAfter time.Duration) {
	if g == nil {
		return true, 0
	}
	reject := false
	if g.cfg.MaxClients > 0 && clients >= g.cfg.MaxClients && !relay {
		reject = true
	}
	p := g.Pressure()
	if relay {
		reject = reject || p >= shedThreshold
	} else {
		reject = reject || p >= cacheThreshold
	}
	if !reject {
		return true, 0
	}
	g.rejected.Add(1)
	// Scale the hint with how deep the ladder sits: the hotter the
	// process, the longer the caller should hold off.
	return false, g.cfg.RetryAfter * time.Duration(1+g.Level())
}

// QualityFloor returns the minimum ladder index (0 = best rung) a
// controller may operate at for a ladder of ladderLen rungs: no floor
// while healthy, the ladder midpoint at LevelQuality, the bottom rung
// from LevelPacer on.
func (g *Governor) QualityFloor(ladderLen int) int {
	if g == nil || ladderLen <= 1 {
		return 0
	}
	switch {
	case g.Level() >= LevelPacer:
		return ladderLen - 1
	case g.Level() >= LevelQuality:
		return ladderLen / 2
	}
	return 0
}

// PacerDepth returns the effective pacer queue depth for a configured
// depth: halved (min 1) from LevelPacer on, widening the drop window
// so backlog sheds sooner.
func (g *Governor) PacerDepth(configured int) int {
	if g == nil || g.Level() < LevelPacer {
		return configured
	}
	d := configured / 2
	if d < 1 {
		d = 1
	}
	return d
}

// CacheFillPaused reports whether encode caches should serve hits only
// and stop inserting new entries.
func (g *Governor) CacheFillPaused() bool {
	return g != nil && g.Level() >= LevelCache
}

// Rejected counts connections turned away by admission control.
func (g *Governor) Rejected() int64 {
	if g == nil {
		return 0
	}
	return g.rejected.Load()
}

// ShedCount counts clients shed at LevelShed.
func (g *Governor) ShedCount() int64 {
	if g == nil {
		return 0
	}
	return g.shedCount.Load()
}

// Transitions returns entries into each ladder level since start.
func (g *Governor) Transitions() [numLevels]int64 {
	var out [numLevels]int64
	if g == nil {
		return out
	}
	for i := range out {
		out[i] = g.transitions[i].Load()
	}
	return out
}

// AccountSnapshot is one account's point-in-time usage.
type AccountSnapshot struct {
	Name string `json:"name"`
	Used int64  `json:"used_bytes"`
}

// StatusSnapshot is the governor's observable state for /debug/status.
type StatusSnapshot struct {
	BudgetBytes int64             `json:"budget_bytes"`
	UsedBytes   int64             `json:"used_bytes"`
	Pressure    float64           `json:"pressure"`
	Level       int               `json:"level"`
	LevelName   string            `json:"level_name"`
	Rejected    int64             `json:"rejected"`
	Shed        int64             `json:"shed"`
	Transitions map[string]int64  `json:"transitions"`
	Accounts    []AccountSnapshot `json:"accounts"`
}

// Status snapshots the governor.
func (g *Governor) Status() StatusSnapshot {
	if g == nil {
		return StatusSnapshot{LevelName: LevelName(LevelHealthy)}
	}
	s := StatusSnapshot{
		BudgetBytes: g.cfg.BudgetBytes,
		UsedBytes:   g.total.Load(),
		Pressure:    g.Pressure(),
		Level:       g.Level(),
		LevelName:   LevelName(g.Level()),
		Rejected:    g.rejected.Load(),
		Shed:        g.shedCount.Load(),
		Transitions: map[string]int64{},
	}
	for i := 1; i < numLevels; i++ {
		s.Transitions[LevelName(i)] = g.transitions[i].Load()
	}
	g.mu.Lock()
	for _, a := range g.accounts {
		s.Accounts = append(s.Accounts, AccountSnapshot{Name: a.name, Used: a.Used()})
	}
	g.mu.Unlock()
	sort.Slice(s.Accounts, func(i, j int) bool { return s.Accounts[i].Name < s.Accounts[j].Name })
	return s
}

// Instrument registers the governor's series on a metrics registry.
func (g *Governor) Instrument(reg *obs.Registry) {
	if g == nil || reg == nil {
		return
	}
	reg.GaugeFunc("guard_budget_bytes", "Configured frame-memory budget.", func() float64 {
		return float64(g.cfg.BudgetBytes)
	})
	reg.GaugeFunc("guard_used_bytes", "Bytes charged across all guard accounts.", func() float64 {
		return float64(g.total.Load())
	})
	reg.GaugeFunc("guard_pressure", "used/budget pressure ratio.", g.Pressure)
	reg.GaugeFunc("guard_level", "Current degradation-ladder level (0=healthy .. 4=shed).", func() float64 {
		return float64(g.Level())
	})
	reg.CounterFunc("guard_rejected_total", "Connections rejected by admission control.", g.rejected.Load)
	reg.CounterFunc("guard_shed_total", "Clients shed under extreme pressure.", g.shedCount.Load)
	for i := 1; i < numLevels; i++ {
		c := &g.transitions[i]
		reg.CounterFunc(fmt.Sprintf("guard_transitions_total{level=%q}", LevelName(i)),
			"Degradation-ladder entries into this level.", c.Load)
	}
	reg.Collect(func(emit obs.Emit) {
		for _, a := range g.Status().Accounts {
			emit(fmt.Sprintf("guard_account_bytes{account=%q}", a.Name),
				"Bytes charged by one subsystem account.", "gauge", float64(a.Used))
		}
	})
}
