package guard

import (
	"sync"
	"testing"
	"time"
)

func TestGovernorLadderSteps(t *testing.T) {
	g := NewGovernor(GovernorConfig{BudgetBytes: 1000})
	a := g.Account("frames")

	if g.Level() != LevelHealthy {
		t.Fatalf("level = %d, want healthy", g.Level())
	}
	a.Add(500) // 0.50
	if g.Level() != LevelHealthy {
		t.Fatalf("level at 0.50 = %d, want healthy", g.Level())
	}
	a.Add(250) // 0.75
	if g.Level() != LevelQuality {
		t.Fatalf("level at 0.75 = %d, want quality", g.Level())
	}
	a.Add(100) // 0.85
	if g.Level() != LevelPacer {
		t.Fatalf("level at 0.85 = %d, want pacer", g.Level())
	}
	a.Add(70) // 0.92
	if g.Level() != LevelCache {
		t.Fatalf("level at 0.92 = %d, want cache", g.Level())
	}
	a.Add(60) // 0.98
	if g.Level() != LevelShed {
		t.Fatalf("level at 0.98 = %d, want shed", g.Level())
	}
	tr := g.Transitions()
	for lvl := LevelQuality; lvl <= LevelShed; lvl++ {
		if tr[lvl] != 1 {
			t.Fatalf("transitions[%s] = %d, want 1", LevelName(lvl), tr[lvl])
		}
	}

	// Hysteresis: just below a threshold is not enough to step down...
	a.Release(110) // 0.87, within hysteresis of cache's 0.90
	if g.Level() != LevelCache {
		t.Fatalf("level at 0.87 = %d, want cache (hysteresis)", g.Level())
	}
	// ...but a real drop steps all the way down.
	a.Release(870) // 0.0
	if g.Level() != LevelHealthy {
		t.Fatalf("level at 0 = %d, want healthy", g.Level())
	}
	if got := g.Used(); got != 0 {
		t.Fatalf("used = %d, want 0", got)
	}
}

func TestGovernorKnobsPerLevel(t *testing.T) {
	g := NewGovernor(GovernorConfig{BudgetBytes: 100})
	a := g.Account("x")

	check := func(wantFloor, wantDepth int, wantPause bool) {
		t.Helper()
		if got := g.QualityFloor(8); got != wantFloor {
			t.Errorf("level %s: QualityFloor(8) = %d, want %d", LevelName(g.Level()), got, wantFloor)
		}
		if got := g.PacerDepth(4); got != wantDepth {
			t.Errorf("level %s: PacerDepth(4) = %d, want %d", LevelName(g.Level()), got, wantDepth)
		}
		if got := g.CacheFillPaused(); got != wantPause {
			t.Errorf("level %s: CacheFillPaused = %v, want %v", LevelName(g.Level()), got, wantPause)
		}
	}
	check(0, 4, false)
	a.Add(72)
	check(4, 4, false) // quality floor at ladder midpoint
	a.Add(10)          // 0.82
	check(7, 2, false) // bottom rung, half depth
	a.Add(10)          // 0.92
	check(7, 2, true)
}

func TestGovernorAdmission(t *testing.T) {
	g := NewGovernor(GovernorConfig{BudgetBytes: 100, MaxClients: 2, RetryAfter: 100 * time.Millisecond})
	a := g.Account("x")

	if ok, _ := g.Admit(false, 0); !ok {
		t.Fatal("healthy governor rejected a viewer")
	}
	if ok, _ := g.Admit(false, 2); ok {
		t.Fatal("MaxClients cap not enforced")
	}
	a.Add(92) // past cache threshold: viewers out, relays still in
	if ok, retry := g.Admit(false, 0); ok || retry <= 0 {
		t.Fatalf("viewer admitted at pressure 0.92 (retry=%v)", retry)
	}
	if ok, _ := g.Admit(true, 0); !ok {
		t.Fatal("relay rejected below shed threshold")
	}
	a.Add(6) // 0.98: everyone out
	if ok, _ := g.Admit(true, 10); ok {
		t.Fatal("relay admitted at pressure 0.98")
	}
	if g.Rejected() < 3 {
		t.Fatalf("rejected = %d, want >= 3", g.Rejected())
	}
}

func TestGovernorShed(t *testing.T) {
	g := NewGovernor(GovernorConfig{BudgetBytes: 100, ShedInterval: time.Millisecond})
	var mu sync.Mutex
	sheds := 0
	g.OnShed(func() bool {
		mu.Lock()
		defer mu.Unlock()
		sheds++
		return true
	})
	a := g.Account("x")
	a.Add(98)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := sheds
		mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shed at pressure 0.98")
		}
		time.Sleep(time.Millisecond)
		a.Add(0) // recheck tick
		a.Release(0)
		g.recheck()
	}
	if g.ShedCount() < 1 {
		t.Fatalf("ShedCount = %d, want >= 1", g.ShedCount())
	}
}

func TestNilGovernorInert(t *testing.T) {
	var g *Governor
	a := g.Account("x")
	a.Add(100)
	a.Release(100)
	if g.Level() != LevelHealthy || g.Pressure() != 0 {
		t.Fatal("nil governor not inert")
	}
	if ok, _ := g.Admit(false, 1000); !ok {
		t.Fatal("nil governor rejected")
	}
	if g.QualityFloor(8) != 0 || g.PacerDepth(3) != 3 || g.CacheFillPaused() {
		t.Fatal("nil governor degraded")
	}
}

func TestBreakerOpensAndProbes(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, Now: clock})

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker blocked attempt %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened below threshold")
	}
	b.Failure() // third consecutive failure
	if b.State() != BreakerOpen {
		t.Fatal("breaker not open after threshold failures")
	}
	if b.Allow() {
		t.Fatal("open breaker allowed before cooldown")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused half-open probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", b.StateName())
	}
	if b.Allow() {
		t.Fatal("second concurrent half-open probe allowed")
	}
	b.Failure() // probe failed: re-open
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
	if b.Rejected() < 2 {
		t.Fatalf("rejected = %d, want >= 2", b.Rejected())
	}
}

func TestNilBreakerInert(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker blocked")
	}
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed || b.StateName() != "closed" {
		t.Fatal("nil breaker not closed")
	}
}

func TestWatchdogDetectsStallAndRecovery(t *testing.T) {
	w := NewWatchdog(5*time.Millisecond, nil)
	defer w.Close()

	var mu sync.Mutex
	w.Register("lock", 20*time.Millisecond, func() {
		mu.Lock()
		//lint:ignore SA2001 the probe is exactly acquire-then-release
		mu.Unlock()
	})

	waitFor := func(cond func(WatchdogStatus) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if cond(w.Status()) {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s: %+v", what, w.Status())
	}

	waitFor(func(s WatchdogStatus) bool {
		return s.Healthy && len(s.Probes) == 1 && s.Probes[0].LastOKAgoMS >= 0
	}, "healthy first pass")

	// Wedge the lock: the probe cannot complete and the check stalls.
	mu.Lock()
	waitFor(func(s WatchdogStatus) bool { return !s.Healthy && s.Probes[0].Stalls >= 1 }, "stall detection")

	// Release: the hung probe completes and the check recovers.
	mu.Unlock()
	waitFor(func(s WatchdogStatus) bool { return s.Healthy }, "recovery")
	if w.Stalls() < 1 {
		t.Fatalf("stalls = %d, want >= 1", w.Stalls())
	}
}
