// Package vol provides regular-grid scalar volume data structures used
// throughout the rendering pipeline: storage, trilinear sampling,
// gradient estimation, and subdivision into bricks for distribution to
// processor nodes.
//
// A Volume stores one scalar value per grid point in x-fastest order
// (index = x + y*nx + z*nx*ny), matching the raw layout the paper's
// datasets use. Values are float32; transfer functions normalize using
// the volume's value range.
package vol

import (
	"errors"
	"fmt"
	"math"
)

// Dims describes the grid resolution of a volume.
type Dims struct {
	NX, NY, NZ int
}

// Count returns the total number of grid points.
func (d Dims) Count() int { return d.NX * d.NY * d.NZ }

// Valid reports whether all extents are positive.
func (d Dims) Valid() bool { return d.NX > 0 && d.NY > 0 && d.NZ > 0 }

// String formats the dimensions as "NXxNYxNZ".
func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.NX, d.NY, d.NZ) }

// Bytes returns the storage size in bytes for a float32 scalar field of
// these dimensions.
func (d Dims) Bytes() int64 { return int64(d.Count()) * 4 }

// Volume is a regular-grid scalar field. The physical domain is the
// axis-aligned box [0,NX-1]x[0,NY-1]x[0,NZ-1] in grid coordinates; the
// renderer maps grid coordinates into world space.
type Volume struct {
	Dims Dims
	// Data holds the scalar values in x-fastest order. len(Data) ==
	// Dims.Count().
	Data []float32
	// Min and Max cache the value range (see UpdateRange).
	Min, Max float32
}

// ErrDims reports an invalid dimension specification.
var ErrDims = errors.New("vol: invalid dimensions")

// New allocates a zero-filled volume with the given dimensions.
func New(d Dims) (*Volume, error) {
	if !d.Valid() {
		return nil, fmt.Errorf("%w: %v", ErrDims, d)
	}
	return &Volume{Dims: d, Data: make([]float32, d.Count())}, nil
}

// MustNew is New but panics on error; for tests and generators with
// known-good dimensions.
func MustNew(d Dims) *Volume {
	v, err := New(d)
	if err != nil {
		panic(err)
	}
	return v
}

// FromData wraps an existing data slice; it must have exactly
// d.Count() elements.
func FromData(d Dims, data []float32) (*Volume, error) {
	if !d.Valid() {
		return nil, fmt.Errorf("%w: %v", ErrDims, d)
	}
	if len(data) != d.Count() {
		return nil, fmt.Errorf("vol: data length %d != %d for dims %v", len(data), d.Count(), d)
	}
	v := &Volume{Dims: d, Data: data}
	v.UpdateRange()
	return v, nil
}

// Index returns the linear index of grid point (x,y,z). No bounds
// checking; callers must pass in-range coordinates.
func (v *Volume) Index(x, y, z int) int {
	return x + v.Dims.NX*(y+v.Dims.NY*z)
}

// At returns the value at grid point (x,y,z).
func (v *Volume) At(x, y, z int) float32 { return v.Data[v.Index(x, y, z)] }

// Set stores val at grid point (x,y,z).
func (v *Volume) Set(x, y, z int, val float32) { v.Data[v.Index(x, y, z)] = val }

// AtClamped returns the value at (x,y,z) with coordinates clamped into
// range, so out-of-bounds lookups repeat the boundary value.
func (v *Volume) AtClamped(x, y, z int) float32 {
	x = clampInt(x, 0, v.Dims.NX-1)
	y = clampInt(y, 0, v.Dims.NY-1)
	z = clampInt(z, 0, v.Dims.NZ-1)
	return v.Data[v.Index(x, y, z)]
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// UpdateRange recomputes Min and Max from the data. Call after bulk
// writes to Data.
func (v *Volume) UpdateRange() {
	if len(v.Data) == 0 {
		v.Min, v.Max = 0, 0
		return
	}
	mn, mx := v.Data[0], v.Data[0]
	for _, x := range v.Data {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	v.Min, v.Max = mn, mx
}

// Normalize maps a raw value into [0,1] using the cached range. A
// degenerate range maps everything to 0.
func (v *Volume) Normalize(val float32) float32 {
	if v.Max <= v.Min {
		return 0
	}
	f := (val - v.Min) / (v.Max - v.Min)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Sample returns the trilinearly interpolated value at continuous grid
// coordinates (x,y,z). Coordinates outside the grid are clamped to the
// boundary.
func (v *Volume) Sample(x, y, z float64) float32 {
	nx, ny, nz := v.Dims.NX, v.Dims.NY, v.Dims.NZ
	if x < 0 {
		x = 0
	} else if x > float64(nx-1) {
		x = float64(nx - 1)
	}
	if y < 0 {
		y = 0
	} else if y > float64(ny-1) {
		y = float64(ny - 1)
	}
	if z < 0 {
		z = 0
	} else if z > float64(nz-1) {
		z = float64(nz - 1)
	}
	x0, y0, z0 := int(x), int(y), int(z)
	x1, y1, z1 := x0+1, y0+1, z0+1
	if x1 > nx-1 {
		x1 = nx - 1
	}
	if y1 > ny-1 {
		y1 = ny - 1
	}
	if z1 > nz-1 {
		z1 = nz - 1
	}
	fx := float32(x - float64(x0))
	fy := float32(y - float64(y0))
	fz := float32(z - float64(z0))

	i000 := v.Index(x0, y0, z0)
	i100 := v.Index(x1, y0, z0)
	i010 := v.Index(x0, y1, z0)
	i110 := v.Index(x1, y1, z0)
	i001 := v.Index(x0, y0, z1)
	i101 := v.Index(x1, y0, z1)
	i011 := v.Index(x0, y1, z1)
	i111 := v.Index(x1, y1, z1)
	d := v.Data

	c00 := d[i000] + fx*(d[i100]-d[i000])
	c10 := d[i010] + fx*(d[i110]-d[i010])
	c01 := d[i001] + fx*(d[i101]-d[i001])
	c11 := d[i011] + fx*(d[i111]-d[i011])
	c0 := c00 + fy*(c10-c00)
	c1 := c01 + fy*(c11-c01)
	return c0 + fz*(c1-c0)
}

// Gradient estimates the scalar-field gradient at continuous grid
// coordinates using central differences of trilinear samples. The
// result is used for shading.
func (v *Volume) Gradient(x, y, z float64) (gx, gy, gz float32) {
	const h = 1.0
	gx = (v.Sample(x+h, y, z) - v.Sample(x-h, y, z)) * 0.5
	gy = (v.Sample(x, y+h, z) - v.Sample(x, y-h, z)) * 0.5
	gz = (v.Sample(x, y, z+h) - v.Sample(x, y, z-h)) * 0.5
	return
}

// Fill sets every grid point from f(x,y,z) and refreshes the range.
func (v *Volume) Fill(f func(x, y, z int) float32) {
	i := 0
	for z := 0; z < v.Dims.NZ; z++ {
		for y := 0; y < v.Dims.NY; y++ {
			for x := 0; x < v.Dims.NX; x++ {
				v.Data[i] = f(x, y, z)
				i++
			}
		}
	}
	v.UpdateRange()
}

// Clone returns a deep copy of the volume.
func (v *Volume) Clone() *Volume {
	c := &Volume{Dims: v.Dims, Data: make([]float32, len(v.Data)), Min: v.Min, Max: v.Max}
	copy(c.Data, v.Data)
	return c
}

// Equal reports whether two volumes have identical dimensions and data.
func (v *Volume) Equal(o *Volume) bool {
	if v.Dims != o.Dims {
		return false
	}
	for i := range v.Data {
		if v.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// RMS returns the root-mean-square of the field, a cheap content
// fingerprint used by tests.
func (v *Volume) RMS() float64 {
	if len(v.Data) == 0 {
		return 0
	}
	var s float64
	for _, x := range v.Data {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s / float64(len(v.Data)))
}
