package vol

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadDims(t *testing.T) {
	for _, d := range []Dims{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-2, 3, 3}} {
		if _, err := New(d); err == nil {
			t.Errorf("New(%v): want error", d)
		}
	}
}

func TestNewAllocates(t *testing.T) {
	v, err := New(Dims{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.Data); got != 60 {
		t.Fatalf("len(Data)=%d want 60", got)
	}
}

func TestFromDataLengthCheck(t *testing.T) {
	if _, err := FromData(Dims{2, 2, 2}, make([]float32, 7)); err == nil {
		t.Fatal("want length mismatch error")
	}
	v, err := FromData(Dims{2, 2, 2}, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if v.Min != 1 || v.Max != 8 {
		t.Fatalf("range = [%v,%v], want [1,8]", v.Min, v.Max)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	v := MustNew(Dims{5, 7, 3})
	seen := map[int]bool{}
	for z := 0; z < 3; z++ {
		for y := 0; y < 7; y++ {
			for x := 0; x < 5; x++ {
				i := v.Index(x, y, z)
				if i < 0 || i >= 105 {
					t.Fatalf("index out of range: %d", i)
				}
				if seen[i] {
					t.Fatalf("duplicate index %d for (%d,%d,%d)", i, x, y, z)
				}
				seen[i] = true
			}
		}
	}
}

func TestSetAt(t *testing.T) {
	v := MustNew(Dims{4, 4, 4})
	v.Set(1, 2, 3, 42)
	if got := v.At(1, 2, 3); got != 42 {
		t.Fatalf("At=%v want 42", got)
	}
	if got := v.AtClamped(-5, 2, 3); got != v.At(0, 2, 3) {
		t.Fatalf("AtClamped low clamp failed: %v", got)
	}
	if got := v.AtClamped(1, 2, 99); got != v.At(1, 2, 3) {
		t.Fatalf("AtClamped high clamp failed: %v", got)
	}
}

func TestSampleAtGridPointsIsExact(t *testing.T) {
	v := MustNew(Dims{4, 3, 5})
	v.Fill(func(x, y, z int) float32 { return float32(x*100 + y*10 + z) })
	for z := 0; z < 5; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 4; x++ {
				got := v.Sample(float64(x), float64(y), float64(z))
				want := v.At(x, y, z)
				if math.Abs(float64(got-want)) > 1e-5 {
					t.Fatalf("Sample(%d,%d,%d)=%v want %v", x, y, z, got, want)
				}
			}
		}
	}
}

// Trilinear interpolation of a linear field must reproduce the field
// exactly (up to float rounding) at every interior point.
func TestSampleReproducesLinearField(t *testing.T) {
	v := MustNew(Dims{8, 8, 8})
	f := func(x, y, z float64) float64 { return 2*x - 3*y + 0.5*z + 1 }
	v.Fill(func(x, y, z int) float32 { return float32(f(float64(x), float64(y), float64(z))) })
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 7
		y := rng.Float64() * 7
		z := rng.Float64() * 7
		got := float64(v.Sample(x, y, z))
		want := f(x, y, z)
		if math.Abs(got-want) > 1e-4 {
			t.Fatalf("Sample(%v,%v,%v)=%v want %v", x, y, z, got, want)
		}
	}
}

func TestSampleClampsOutside(t *testing.T) {
	v := MustNew(Dims{3, 3, 3})
	v.Fill(func(x, y, z int) float32 { return float32(x) })
	if got := v.Sample(-10, 1, 1); got != 0 {
		t.Fatalf("low clamp: %v", got)
	}
	if got := v.Sample(50, 1, 1); got != 2 {
		t.Fatalf("high clamp: %v", got)
	}
}

func TestGradientOfLinearField(t *testing.T) {
	v := MustNew(Dims{10, 10, 10})
	v.Fill(func(x, y, z int) float32 { return float32(3*x - 2*y + 5*z) })
	gx, gy, gz := v.Gradient(4.5, 4.5, 4.5)
	if math.Abs(float64(gx)-3) > 1e-4 || math.Abs(float64(gy)+2) > 1e-4 || math.Abs(float64(gz)-5) > 1e-4 {
		t.Fatalf("gradient = (%v,%v,%v), want (3,-2,5)", gx, gy, gz)
	}
}

func TestNormalize(t *testing.T) {
	v := MustNew(Dims{2, 1, 1})
	v.Data[0], v.Data[1] = 10, 30
	v.UpdateRange()
	cases := []struct{ in, want float32 }{{10, 0}, {30, 1}, {20, 0.5}, {-5, 0}, {100, 1}}
	for _, c := range cases {
		if got := v.Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%v)=%v want %v", c.in, got, c.want)
		}
	}
	// Degenerate range.
	v.Data[1] = 10
	v.UpdateRange()
	if got := v.Normalize(10); got != 0 {
		t.Errorf("degenerate Normalize = %v, want 0", got)
	}
}

func TestCloneAndEqual(t *testing.T) {
	v := MustNew(Dims{4, 4, 4})
	v.Fill(func(x, y, z int) float32 { return float32(x + y*z) })
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Data[10] += 1
	if v.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	o := MustNew(Dims{4, 4, 2})
	if v.Equal(o) {
		t.Fatal("different dims reported equal")
	}
}

func TestBoxIntersect(t *testing.T) {
	a := Box{0, 0, 0, 10, 10, 10}
	b := Box{5, 5, 5, 20, 20, 20}
	got := a.Intersect(b)
	want := Box{5, 5, 5, 10, 10, 10}
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	c := Box{10, 0, 0, 12, 10, 10} // touching, no overlap
	if !a.Intersect(c).Empty() {
		t.Fatal("touching boxes should not intersect")
	}
}

func TestBoxContains(t *testing.T) {
	b := Box{1, 1, 1, 3, 3, 3}
	if !b.Contains(1, 1, 1) || !b.Contains(2, 2, 2) {
		t.Fatal("Contains false negative")
	}
	if b.Contains(3, 2, 2) || b.Contains(0, 2, 2) {
		t.Fatal("Contains false positive")
	}
}

// SplitKD must produce exactly n disjoint boxes that tile the volume.
func TestSplitKDTilesExactly(t *testing.T) {
	for _, tc := range []struct {
		d Dims
		n int
	}{
		{Dims{16, 16, 16}, 1},
		{Dims{16, 16, 16}, 2},
		{Dims{16, 16, 16}, 7},
		{Dims{16, 16, 16}, 8},
		{Dims{16, 16, 16}, 64},
		{Dims{129, 129, 104}, 16},
		{Dims{129, 129, 104}, 32},
		{Dims{5, 3, 2}, 6},
		{Dims{100, 1, 1}, 10},
	} {
		boxes, err := SplitKD(tc.d, tc.n)
		if err != nil {
			t.Fatalf("SplitKD(%v,%d): %v", tc.d, tc.n, err)
		}
		if len(boxes) != tc.n {
			t.Fatalf("SplitKD(%v,%d): got %d boxes", tc.d, tc.n, len(boxes))
		}
		total := 0
		for i, b := range boxes {
			if b.Empty() {
				t.Fatalf("box %d empty: %v", i, b)
			}
			total += b.Count()
			for j := i + 1; j < len(boxes); j++ {
				if !b.Intersect(boxes[j]).Empty() {
					t.Fatalf("boxes %d and %d overlap: %v %v", i, j, b, boxes[j])
				}
			}
		}
		if total != tc.d.Count() {
			t.Fatalf("SplitKD(%v,%d): covers %d of %d points", tc.d, tc.n, total, tc.d.Count())
		}
	}
}

func TestSplitKDBalance(t *testing.T) {
	boxes, err := SplitKD(Dims{64, 64, 64}, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := 64 * 64 * 64 / 16
	for _, b := range boxes {
		c := b.Count()
		if c < want/2 || c > want*2 {
			t.Fatalf("imbalanced box %v: %d points, ideal %d", b, c, want)
		}
	}
}

func TestSplitKDErrors(t *testing.T) {
	if _, err := SplitKD(Dims{2, 2, 2}, 0); err == nil {
		t.Fatal("want error for n=0")
	}
	if _, err := SplitKD(Dims{2, 2, 2}, 9); err == nil {
		t.Fatal("want error for n > point count")
	}
}

func TestExtractWithGhost(t *testing.T) {
	v := MustNew(Dims{8, 8, 8})
	v.Fill(func(x, y, z int) float32 { return float32(v.Index(x, y, z)) })
	br, err := v.Extract(Box{2, 2, 2, 6, 6, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if br.Data.Dims != (Dims{6, 6, 6}) {
		t.Fatalf("ghosted dims = %v, want 6x6x6", br.Data.Dims)
	}
	if br.Origin != [3]int{1, 1, 1} {
		t.Fatalf("origin = %v", br.Origin)
	}
	// Brick sampling in parent coordinates matches the parent volume.
	for _, p := range [][3]float64{{2, 2, 2}, {3.5, 4.2, 5.9}, {5.99, 2.01, 3}} {
		got := br.Sample(p[0], p[1], p[2])
		want := v.Sample(p[0], p[1], p[2])
		if math.Abs(float64(got-want)) > 1e-4 {
			t.Fatalf("brick sample at %v = %v, parent %v", p, got, want)
		}
	}
}

func TestExtractClampsAtVolumeEdge(t *testing.T) {
	v := MustNew(Dims{4, 4, 4})
	v.Fill(func(x, y, z int) float32 { return 1 })
	br, err := v.Extract(Box{0, 0, 0, 2, 2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if br.Origin != [3]int{0, 0, 0} {
		t.Fatalf("origin = %v, want 0,0,0", br.Origin)
	}
	if br.Data.Dims != (Dims{4, 4, 4}) {
		t.Fatalf("dims = %v", br.Data.Dims)
	}
}

func TestExtractEmptyRegion(t *testing.T) {
	v := MustNew(Dims{4, 4, 4})
	if _, err := v.Extract(Box{5, 5, 5, 9, 9, 9}, 0); err == nil {
		t.Fatal("want error for out-of-volume region")
	}
}

func TestBrickNormalizeUsesParentRange(t *testing.T) {
	v := MustNew(Dims{4, 4, 4})
	v.Fill(func(x, y, z int) float32 { return float32(x) }) // range [0,3]
	br, err := v.Extract(Box{0, 0, 0, 2, 4, 4}, 0)          // local range [0,1]
	if err != nil {
		t.Fatal(err)
	}
	if got := br.Normalize(3); got != 1 {
		t.Fatalf("Normalize(3)=%v, want 1 (parent range)", got)
	}
	if got := br.Normalize(1.5); got != 0.5 {
		t.Fatalf("Normalize(1.5)=%v, want 0.5", got)
	}
}

// Property: for random dims and split counts, SplitKD tiles exactly.
func TestSplitKDProperty(t *testing.T) {
	f := func(a, b, c uint8, n uint8) bool {
		d := Dims{int(a%30) + 2, int(b%30) + 2, int(c%30) + 2}
		k := int(n%16) + 1
		boxes, err := SplitKD(d, k)
		if err != nil {
			return false
		}
		total := 0
		for _, bx := range boxes {
			if bx.Empty() {
				return false
			}
			total += bx.Count()
		}
		return total == d.Count() && len(boxes) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sample never exceeds the data range (interpolation is a
// convex combination).
func TestSampleWithinRangeProperty(t *testing.T) {
	v := MustNew(Dims{9, 9, 9})
	rng := rand.New(rand.NewSource(7))
	v.Fill(func(x, y, z int) float32 { return rng.Float32()*200 - 100 })
	f := func(xr, yr, zr uint16) bool {
		x := float64(xr) / 65535 * 8
		y := float64(yr) / 65535 * 8
		z := float64(zr) / 65535 * 8
		s := v.Sample(x, y, z)
		return s >= v.Min-1e-3 && s <= v.Max+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSample(b *testing.B) {
	v := MustNew(Dims{64, 64, 64})
	v.Fill(func(x, y, z int) float32 { return float32(x ^ y ^ z) })
	b.ReportAllocs()
	var s float32
	for i := 0; i < b.N; i++ {
		s += v.Sample(31.3, 17.8, 42.1)
	}
	_ = s
}
