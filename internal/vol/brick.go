package vol

import (
	"fmt"
)

// Box is an axis-aligned integer region of grid points, inclusive lower
// bound, exclusive upper bound: [X0,X1) x [Y0,Y1) x [Z0,Z1).
type Box struct {
	X0, Y0, Z0 int
	X1, Y1, Z1 int
}

// Dims returns the extents of the box.
func (b Box) Dims() Dims { return Dims{b.X1 - b.X0, b.Y1 - b.Y0, b.Z1 - b.Z0} }

// Count returns the number of grid points inside the box.
func (b Box) Count() int { return b.Dims().Count() }

// Empty reports whether the box contains no grid points.
func (b Box) Empty() bool {
	return b.X1 <= b.X0 || b.Y1 <= b.Y0 || b.Z1 <= b.Z0
}

// Contains reports whether grid point (x,y,z) lies inside the box.
func (b Box) Contains(x, y, z int) bool {
	return x >= b.X0 && x < b.X1 && y >= b.Y0 && y < b.Y1 && z >= b.Z0 && z < b.Z1
}

// Intersect returns the intersection of two boxes (possibly empty).
func (b Box) Intersect(o Box) Box {
	r := Box{
		X0: maxInt(b.X0, o.X0), Y0: maxInt(b.Y0, o.Y0), Z0: maxInt(b.Z0, o.Z0),
		X1: minInt(b.X1, o.X1), Y1: minInt(b.Y1, o.Y1), Z1: minInt(b.Z1, o.Z1),
	}
	if r.Empty() {
		return Box{}
	}
	return r
}

// Center returns the box center in continuous grid coordinates.
func (b Box) Center() (x, y, z float64) {
	return float64(b.X0+b.X1) / 2, float64(b.Y0+b.Y1) / 2, float64(b.Z0+b.Z1) / 2
}

func (b Box) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)x[%d,%d)", b.X0, b.X1, b.Y0, b.Y1, b.Z0, b.Z1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Bounds returns the full-volume box.
func (v *Volume) Bounds() Box {
	return Box{X1: v.Dims.NX, Y1: v.Dims.NY, Z1: v.Dims.NZ}
}

// Brick is a subvolume extracted for one processor node: the data of a
// Box region (with optional ghost layer) plus its placement inside the
// parent volume. Sampling coordinates are in parent-volume grid space.
type Brick struct {
	// Region is the owned region in parent grid coordinates
	// (excluding ghost cells).
	Region Box
	// Data is the extracted subvolume, including ghost cells.
	Data *Volume
	// Origin is the parent grid coordinate of Data's (0,0,0), i.e.
	// Region expanded by the ghost layer and clamped to the parent.
	Origin [3]int
	// ParentDims and ParentMin/ParentMax carry the parent volume's
	// dimensions and value range so bricks normalize identically.
	ParentDims Dims
	ParentMin  float32
	ParentMax  float32
}

// Extract copies the box region, expanded by ghost cells on each side
// (clamped to the volume), into a standalone Brick. Ghost cells give
// the ray caster enough neighborhood for interpolation and gradients
// at brick boundaries.
func (v *Volume) Extract(region Box, ghost int) (*Brick, error) {
	region = region.Intersect(v.Bounds())
	if region.Empty() {
		return nil, fmt.Errorf("vol: empty extraction region")
	}
	g := Box{
		X0: maxInt(region.X0-ghost, 0), Y0: maxInt(region.Y0-ghost, 0), Z0: maxInt(region.Z0-ghost, 0),
		X1: minInt(region.X1+ghost, v.Dims.NX), Y1: minInt(region.Y1+ghost, v.Dims.NY), Z1: minInt(region.Z1+ghost, v.Dims.NZ),
	}
	sub, err := New(g.Dims())
	if err != nil {
		return nil, err
	}
	for z := g.Z0; z < g.Z1; z++ {
		for y := g.Y0; y < g.Y1; y++ {
			srcOff := v.Index(g.X0, y, z)
			dstOff := sub.Index(0, y-g.Y0, z-g.Z0)
			copy(sub.Data[dstOff:dstOff+g.X1-g.X0], v.Data[srcOff:srcOff+g.X1-g.X0])
		}
	}
	sub.UpdateRange()
	return &Brick{
		Region:     region,
		Data:       sub,
		Origin:     [3]int{g.X0, g.Y0, g.Z0},
		ParentDims: v.Dims,
		ParentMin:  v.Min,
		ParentMax:  v.Max,
	}, nil
}

// Sample interpolates the brick at parent-volume grid coordinates.
// Coordinates outside the brick's stored region clamp to its border.
func (b *Brick) Sample(x, y, z float64) float32 {
	return b.Data.Sample(x-float64(b.Origin[0]), y-float64(b.Origin[1]), z-float64(b.Origin[2]))
}

// Gradient estimates the gradient at parent-volume grid coordinates.
func (b *Brick) Gradient(x, y, z float64) (gx, gy, gz float32) {
	return b.Data.Gradient(x-float64(b.Origin[0]), y-float64(b.Origin[1]), z-float64(b.Origin[2]))
}

// Normalize maps a raw value to [0,1] using the parent volume's range,
// so all bricks of one volume classify consistently.
func (b *Brick) Normalize(val float32) float32 {
	if b.ParentMax <= b.ParentMin {
		return 0
	}
	f := (val - b.ParentMin) / (b.ParentMax - b.ParentMin)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// SplitKD partitions the full-volume bounds into n boxes of
// near-equal grid-point counts by recursive longest-axis bisection
// (a k-d style decomposition). n need not be a power of two: at each
// step the region splits into two parts whose target counts are
// ceil(n/2) and floor(n/2), with the cut plane placed proportionally.
// The returned boxes tile the volume exactly, in recursion order: for
// power-of-two n, index bit k (counting from the least-significant
// bit) selects the side of the cut at recursion depth log2(n)-1-k.
// Binary-swap compositing depends on this layout — boxes assigned to
// ranks in index order make every swap stage pair two plane-separated
// subtrees.
func SplitKD(d Dims, n int) ([]Box, error) {
	if !d.Valid() {
		return nil, fmt.Errorf("%w: %v", ErrDims, d)
	}
	if n < 1 {
		return nil, fmt.Errorf("vol: split count %d < 1", n)
	}
	if n > d.Count() {
		return nil, fmt.Errorf("vol: cannot split %v into %d nonempty boxes", d, n)
	}
	full := Box{X1: d.NX, Y1: d.NY, Z1: d.NZ}
	out := make([]Box, 0, n)
	splitRec(full, n, &out)
	return out, nil
}

func splitRec(b Box, n int, out *[]Box) {
	if n == 1 {
		*out = append(*out, b)
		return
	}
	nHi := n / 2
	nLo := n - nHi
	d := b.Dims()
	// Choose the longest axis that can still be cut.
	axis := 0
	ext := [3]int{d.NX, d.NY, d.NZ}
	for a := 1; a < 3; a++ {
		if ext[a] > ext[axis] {
			axis = a
		}
	}
	// Place the cut proportionally to the target counts, keeping at
	// least one plane on each side and leaving each side enough grid
	// points to host its share of boxes.
	span := ext[axis]
	cut := span * nLo / n
	if cut < 1 {
		cut = 1
	}
	if cut > span-1 {
		cut = span - 1
	}
	lo, hi := b, b
	switch axis {
	case 0:
		lo.X1 = b.X0 + cut
		hi.X0 = b.X0 + cut
	case 1:
		lo.Y1 = b.Y0 + cut
		hi.Y0 = b.Y0 + cut
	case 2:
		lo.Z1 = b.Z0 + cut
		hi.Z0 = b.Z0 + cut
	}
	// Guard against a side too small for its box count (possible with
	// extreme aspect ratios): rebalance counts toward the larger side.
	for nLo > lo.Count() {
		nLo--
		nHi++
	}
	for nHi > hi.Count() {
		nHi--
		nLo++
	}
	splitRec(lo, nLo, out)
	splitRec(hi, nHi, out)
}
