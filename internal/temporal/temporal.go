// Package temporal implements differential volume rendering — the
// paper's reference [25] (Shen & Johnson, "Differential volume
// rendering: a fast volume visualization technique for flow
// animation"): consecutive time steps of a coherent animation differ
// in few places, so only the pixels whose rays pass through changed
// data are re-rendered; the rest are copied from the previous frame.
// On the reference paper's data this cut both rendering time and
// storage by ~90%.
//
// Change detection is conservative (per-macrocell max absolute
// difference against a threshold of 0), so with Eps == 0 the output is
// identical to a full re-render; a positive Eps trades exactness for
// more reuse.
package temporal

import (
	"fmt"
	"math"

	"repro/internal/img"
	"repro/internal/render"
	"repro/internal/tf"
	"repro/internal/vol"
)

// Cache holds the state differential rendering carries between steps.
type Cache struct {
	// CellSize is the change-detection macrocell edge (default 8).
	CellSize int
	// Eps is the per-voxel absolute change tolerated before a cell is
	// considered changed; 0 means any change invalidates the cell.
	Eps float32

	prev    *vol.Volume
	prevImg *img.RGBA
	prevCam render.Camera
	prevTF  *tf.TF
	w, h    int
}

// Stats reports one differential render.
type Stats struct {
	render.Stats
	// ReusedPixels were copied from the previous frame; ChangedCells
	// of TotalCells differed between the steps.
	ReusedPixels int
	ChangedCells int
	TotalCells   int
	// FullRender reports that no reuse was possible (first frame, or
	// camera/TF/size changed).
	FullRender bool
}

// New returns an empty cache.
func New() *Cache { return &Cache{CellSize: 8} }

// Render produces the frame for volume v, reusing the previous frame's
// pixels where the data did not change. The cache keeps a reference to
// v and the output image; callers must not mutate them afterwards.
func (c *Cache) Render(v *vol.Volume, cam *render.Camera, t *tf.TF, opt render.Options, w, h int) (*img.RGBA, Stats, error) {
	if c.CellSize <= 0 {
		c.CellSize = 8
	}
	reusable := c.prev != nil &&
		c.prev.Dims == v.Dims &&
		c.w == w && c.h == h &&
		c.prevTF == t &&
		// Classification depends on the normalization range, so both
		// steps must share the dataset-global range (as volio stores
		// guarantee).
		c.prev.Min == v.Min && c.prev.Max == v.Max &&
		sameCamera(&c.prevCam, cam)

	var st Stats
	if !reusable {
		im, rst, err := render.Render(v, cam, t, opt, w, h)
		if err != nil {
			return nil, st, err
		}
		st.Stats = rst
		st.FullRender = true
		c.remember(v, im, cam, t, w, h)
		return im, st, nil
	}

	changed, nx, ny, nz, nChanged := changedCells(c.prev, v, c.CellSize, c.Eps)
	st.ChangedCells = nChanged
	st.TotalCells = nx * ny * nz

	// Classify pixels: a pixel must be re-rendered when any of the
	// sample positions its ray will evaluate falls in a changed cell.
	// Walking the exact sample lattice (same Step and alignment as
	// the renderer) makes the mask precise: re-rendered pixels read
	// at least one changed sample, reused pixels read none.
	if opt.Step == 0 {
		opt.Step = render.DefaultOptions().Step
	}
	mask := make([]bool, w*h)
	cs := float64(c.CellSize)
	bounds := v.Bounds()
	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			orig, dir := cam.Ray(px, py, w, h)
			tn, tfar, ok := render.IntersectBox(orig, dir, bounds)
			if !ok || tfar <= tn {
				continue
			}
			if rayTouchesChanged(orig, dir, tn, tfar, opt.Step, cs, nx, ny, nz, changed) {
				mask[py*w+px] = true
			}
		}
	}

	out := c.prevImg.Clone()
	renderOpt := opt
	renderOpt.PixelMask = mask
	nRender := 0
	for i, m := range mask {
		if m {
			nRender++
			// Clear the pixel so RenderRegion's accumulate starts fresh.
			out.Pix[i*4], out.Pix[i*4+1], out.Pix[i*4+2], out.Pix[i*4+3] = 0, 0, 0, 0
		}
	}
	rst, err := render.RenderRegion(render.WholeVolume(v), bounds, cam, t, renderOpt, out)
	if err != nil {
		return nil, st, err
	}
	st.Stats = rst
	st.ReusedPixels = w*h - nRender
	c.remember(v, out, cam, t, w, h)
	return out, st, nil
}

func (c *Cache) remember(v *vol.Volume, im *img.RGBA, cam *render.Camera, t *tf.TF, w, h int) {
	c.prev = v
	c.prevImg = im
	c.prevCam = *cam
	c.prevTF = t
	c.w, c.h = w, h
}

// Reset clears the cache; the next Render is a full render.
func (c *Cache) Reset() { c.prev = nil; c.prevImg = nil; c.prevTF = nil }

func sameCamera(a, b *render.Camera) bool {
	return a.Eye == b.Eye && a.Center == b.Center && a.Up == b.Up && a.FovY == b.FovY
}

// changedCells compares two equally-sized volumes per macrocell,
// expanding each cell by one grid point so interpolation support is
// covered (a voxel change affects samples in neighboring cells).
func changedCells(a, b *vol.Volume, cell int, eps float32) (mask []bool, nx, ny, nz, count int) {
	d := a.Dims
	nx = (d.NX + cell - 1) / cell
	ny = (d.NY + cell - 1) / cell
	nz = (d.NZ + cell - 1) / cell
	mask = make([]bool, nx*ny*nz)
	for cz := 0; cz < nz; cz++ {
		for cy := 0; cy < ny; cy++ {
			for cx := 0; cx < nx; cx++ {
				x0, x1 := expand(cx, cell, d.NX)
				y0, y1 := expand(cy, cell, d.NY)
				z0, z1 := expand(cz, cell, d.NZ)
				ch := false
			scan:
				for z := z0; z < z1; z++ {
					for y := y0; y < y1; y++ {
						ia := a.Index(x0, y, z)
						for x := x0; x < x1; x++ {
							if absDiff(a.Data[ia], b.Data[ia]) > eps {
								ch = true
								break scan
							}
							ia++
						}
					}
				}
				if ch {
					mask[cx+nx*(cy+ny*cz)] = true
					count++
				}
			}
		}
	}
	return mask, nx, ny, nz, count
}

// expand returns cell c's grid-point range widened by three points on
// each side — trilinear interpolation reads one point beyond a sample
// and gradient shading samples one unit further, so a voxel change up
// to 3 points outside a cell can influence samples inside it — clamped
// to [0, n).
func expand(c, cell, n int) (lo, hi int) {
	const support = 3
	lo = c*cell - support
	hi = (c+1)*cell + support
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

func absDiff(a, b float32) float32 {
	if a > b {
		return a - b
	}
	return b - a
}

// rayTouchesChanged checks the ray's exact sample lattice (multiples
// of step, matching the renderer) against the changed-cell mask.
func rayTouchesChanged(orig, dir render.Vec3, tn, tfar, step, cs float64, nx, ny, nz int, changed []bool) bool {
	for k := math.Ceil(tn / step); ; k++ {
		t := k * step
		if t >= tfar {
			return false
		}
		x := orig.X + dir.X*t
		y := orig.Y + dir.Y*t
		z := orig.Z + dir.Z*t
		cx := int(x / cs)
		cy := int(y / cs)
		cz := int(z / cs)
		if cx < 0 || cy < 0 || cz < 0 || cx >= nx || cy >= ny || cz >= nz {
			continue
		}
		if changed[cx+nx*(cy+ny*cz)] {
			return true
		}
	}
}

// String formats the reuse statistics.
func (s Stats) String() string {
	if s.FullRender {
		return "full render"
	}
	return fmt.Sprintf("reused %d px, re-rendered %d cells of %d (%.0f%%)",
		s.ReusedPixels, s.ChangedCells, s.TotalCells,
		100*float64(s.ChangedCells)/math.Max(1, float64(s.TotalCells)))
}
