package temporal

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/render"
	"repro/internal/tf"
	"repro/internal/vol"
	"repro/internal/volio"
)

func steps(t *testing.T, n int) []*vol.Volume {
	t.Helper()
	// Use a store so all steps share the global normalization range.
	s := volio.NewGenStore(datagen.NewJetScaled(0.2, 50))
	out := make([]*vol.Volume, n)
	for i := range out {
		v, err := s.Fetch(20 + i)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

func fullRender(t *testing.T, v *vol.Volume, cam *render.Camera, tfn *tf.TF, opt render.Options, w, h int) []float32 {
	t.Helper()
	im, _, err := render.Render(v, cam, tfn, opt, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return im.Pix
}

func TestFirstFrameIsFullRender(t *testing.T) {
	vs := steps(t, 1)
	cam, _ := render.NewOrbitCamera(vs[0].Dims, 0.6, 0.35, 1.5)
	c := New()
	im, st, err := c.Render(vs[0], cam, tf.Jet(), render.DefaultOptions(), 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullRender {
		t.Fatal("first frame must be a full render")
	}
	want := fullRender(t, vs[0], cam, tf.Jet(), render.DefaultOptions(), 48, 48)
	for i := range want {
		if im.Pix[i] != want[i] {
			t.Fatal("first frame differs from plain render")
		}
	}
}

// blobSteps builds volumes with a static background plus a small
// moving blob — the localized-change regime differential rendering
// targets (ref [25]'s flow animations).
func blobSteps(n int) []*vol.Volume {
	const N = 48
	out := make([]*vol.Volume, n)
	for s := 0; s < n; s++ {
		v := vol.MustNew(vol.Dims{NX: N, NY: N, NZ: N})
		bx := 10 + 3*s
		v.Fill(func(x, y, z int) float32 {
			// Static shell.
			val := float32(0)
			if z > N/2 {
				val = 0.55
			}
			dx, dy, dz := x-bx, y-12, z-12
			if dx*dx+dy*dy+dz*dz < 36 {
				val = 1
			}
			return val
		})
		// Shared normalization range across steps.
		v.Min, v.Max = 0, 1
		out[s] = v
	}
	return out
}

// The headline invariant of differential rendering with Eps 0:
// bit-identical frames with substantial pixel reuse on
// localized-change data.
func TestDifferentialIdenticalWithReuse(t *testing.T) {
	vs := blobSteps(3)
	cam, _ := render.NewOrbitCamera(vs[0].Dims, 0.6, 0.35, 1.5)
	tfn := tf.Grayscale()
	opt := render.DefaultOptions()
	const W, H = 64, 64

	c := New()
	for i, v := range vs {
		im, st, err := c.Render(v, cam, tfn, opt, W, H)
		if err != nil {
			t.Fatal(err)
		}
		want := fullRender(t, v, cam, tfn, opt, W, H)
		for j := range want {
			if im.Pix[j] != want[j] {
				t.Fatalf("step %d: differential frame differs at %d", i, j)
			}
		}
		if i > 0 {
			if st.FullRender {
				t.Fatalf("step %d: expected differential render", i)
			}
			if st.ReusedPixels == 0 {
				t.Fatalf("step %d: nothing reused on coherent data", i)
			}
			if st.ChangedCells == 0 || st.ChangedCells == st.TotalCells {
				t.Fatalf("step %d: degenerate change mask %d/%d", i, st.ChangedCells, st.TotalCells)
			}
		}
	}
}

// Real jet steps change everywhere (broadband turbulence), so the
// differential path degrades gracefully to near-full re-rendering
// while staying exact.
func TestDifferentialExactOnGlobalChange(t *testing.T) {
	vs := steps(t, 2)
	cam, _ := render.NewOrbitCamera(vs[0].Dims, 0.6, 0.35, 1.5)
	tfn := tf.Jet()
	opt := render.DefaultOptions()
	c := New()
	if _, _, err := c.Render(vs[0], cam, tfn, opt, 48, 48); err != nil {
		t.Fatal(err)
	}
	im, st, err := c.Render(vs[1], cam, tfn, opt, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	if st.FullRender {
		t.Fatal("second coherent step should use the differential path")
	}
	want := fullRender(t, vs[1], cam, tfn, opt, 48, 48)
	for j := range want {
		if im.Pix[j] != want[j] {
			t.Fatalf("differential frame differs at %d", j)
		}
	}
}

// An identical step must reuse every covered pixel and re-render no
// cells.
func TestIdenticalStepFullReuse(t *testing.T) {
	vs := steps(t, 1)
	cam, _ := render.NewOrbitCamera(vs[0].Dims, 0.6, 0.35, 1.5)
	c := New()
	opt := render.DefaultOptions()
	tfn := tf.Jet()
	if _, _, err := c.Render(vs[0], cam, tfn, opt, 32, 32); err != nil {
		t.Fatal(err)
	}
	_, st, err := c.Render(vs[0].Clone(), cam, tfn, opt, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChangedCells != 0 {
		t.Fatalf("identical volume marked %d changed cells", st.ChangedCells)
	}
	if st.ReusedPixels != 32*32 {
		t.Fatalf("reused %d of %d pixels", st.ReusedPixels, 32*32)
	}
	if st.Samples != 0 {
		t.Fatalf("re-sampled %d on an identical step", st.Samples)
	}
}

func TestCameraChangeInvalidates(t *testing.T) {
	vs := steps(t, 2)
	cam1, _ := render.NewOrbitCamera(vs[0].Dims, 0.6, 0.35, 1.5)
	cam2, _ := render.NewOrbitCamera(vs[0].Dims, 1.6, 0.35, 1.5)
	c := New()
	opt := render.DefaultOptions()
	tfn := tf.Jet()
	if _, _, err := c.Render(vs[0], cam1, tfn, opt, 32, 32); err != nil {
		t.Fatal(err)
	}
	_, st, err := c.Render(vs[1], cam2, tfn, opt, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullRender {
		t.Fatal("camera change must force a full render")
	}
}

func TestTFChangeInvalidates(t *testing.T) {
	vs := steps(t, 2)
	cam, _ := render.NewOrbitCamera(vs[0].Dims, 0.6, 0.35, 1.5)
	c := New()
	opt := render.DefaultOptions()
	if _, _, err := c.Render(vs[0], cam, tf.Jet(), opt, 32, 32); err != nil {
		t.Fatal(err)
	}
	_, st, err := c.Render(vs[1], cam, tf.Vortex(), opt, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullRender {
		t.Fatal("transfer-function change must force a full render")
	}
}

func TestResetForcesFullRender(t *testing.T) {
	vs := steps(t, 2)
	cam, _ := render.NewOrbitCamera(vs[0].Dims, 0.6, 0.35, 1.5)
	c := New()
	opt := render.DefaultOptions()
	tfn := tf.Jet()
	if _, _, err := c.Render(vs[0], cam, tfn, opt, 32, 32); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	_, st, err := c.Render(vs[1], cam, tfn, opt, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullRender {
		t.Fatal("reset must force a full render")
	}
}

func TestStatsString(t *testing.T) {
	if (Stats{FullRender: true}).String() != "full render" {
		t.Fatal("full render string")
	}
	s := Stats{ReusedPixels: 10, ChangedCells: 2, TotalCells: 8}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func BenchmarkDifferentialVsFull(b *testing.B) {
	s := volio.NewGenStore(datagen.NewJetScaled(0.2, 50))
	var vs []*vol.Volume
	for i := 20; i < 24; i++ {
		v, err := s.Fetch(i)
		if err != nil {
			b.Fatal(err)
		}
		vs = append(vs, v)
	}
	cam, _ := render.NewOrbitCamera(vs[0].Dims, 0.6, 0.35, 1.5)
	opt := render.DefaultOptions()
	tfn := tf.Jet()
	b.Run("differential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := New()
			for _, v := range vs {
				if _, _, err := c.Render(v, cam, tfn, opt, 96, 96); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range vs {
				if _, _, err := render.Render(v, cam, tfn, opt, 96, 96); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
