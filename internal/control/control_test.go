package control

import (
	"testing"

	"repro/internal/tf"
	"repro/internal/transport"
)

func TestViewRoundTrip(t *testing.T) {
	v := ViewEvent{Azimuth: 1.2, Elevation: -0.4, Distance: 2.5}
	got, err := UnmarshalView(v.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("%+v != %+v", got, v)
	}
}

func TestViewValidation(t *testing.T) {
	if _, err := UnmarshalView([]byte{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
	bad := ViewEvent{Distance: -1}.Marshal()
	if _, err := UnmarshalView(bad); err == nil {
		t.Fatal("negative distance accepted")
	}
}

func TestStateBuffersLatestWins(t *testing.T) {
	s := NewState()
	if err := s.Ingest(ViewMsg(ViewEvent{Azimuth: 1, Distance: 2})); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(ViewMsg(ViewEvent{Azimuth: 3, Distance: 2})); err != nil {
		t.Fatal(err)
	}
	p := s.Apply()
	if p.View == nil || p.View.Azimuth != 3 {
		t.Fatalf("latest view must win: %+v", p.View)
	}
	// Second Apply is empty.
	p = s.Apply()
	if p.View != nil || p.Colormap != nil || p.Codec != "" || p.RunChanged {
		t.Fatalf("Apply not drained: %+v", p)
	}
}

func TestStateColormapAndCodec(t *testing.T) {
	s := NewState()
	if err := s.Ingest(ColormapMsg(tf.Vortex())); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(CodecMsg("jpeg+lzo")); err != nil {
		t.Fatal(err)
	}
	p := s.Apply()
	if p.Colormap == nil {
		t.Fatal("colormap missing")
	}
	if p.Codec != "jpeg+lzo" {
		t.Fatalf("codec %q", p.Codec)
	}
}

func TestStartStop(t *testing.T) {
	s := NewState()
	if !s.Running() {
		t.Fatal("must start running")
	}
	if err := s.Ingest(StopMsg()); err != nil {
		t.Fatal(err)
	}
	if s.Running() {
		t.Fatal("stop not applied")
	}
	p := s.Apply()
	if !p.RunChanged || p.Running {
		t.Fatalf("%+v", p)
	}
	if err := s.Ingest(StartMsg()); err != nil {
		t.Fatal(err)
	}
	if !s.Running() {
		t.Fatal("start not applied")
	}
}

func TestIngestRejectsBad(t *testing.T) {
	s := NewState()
	if err := s.Ingest(&transport.ControlMsg{Tag: "warp-drive"}); err == nil {
		t.Fatal("unknown tag accepted")
	}
	if err := s.Ingest(&transport.ControlMsg{Tag: TagView, Data: []byte{1}}); err == nil {
		t.Fatal("bad view accepted")
	}
	if err := s.Ingest(&transport.ControlMsg{Tag: TagColormap, Data: []byte{1}}); err == nil {
		t.Fatal("bad colormap accepted")
	}
	if err := s.Ingest(&transport.ControlMsg{Tag: TagCodec}); err == nil {
		t.Fatal("empty codec accepted")
	}
}

func TestColormapSurvivesWire(t *testing.T) {
	msg := ColormapMsg(tf.Mixing())
	s := NewState()
	if err := s.Ingest(msg); err != nil {
		t.Fatal(err)
	}
	p := s.Apply()
	want := tf.Mixing().Points()
	got := p.Colormap.Points()
	if len(got) != len(want) {
		t.Fatalf("%d points", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestStrideControl(t *testing.T) {
	s := NewState()
	if err := s.Ingest(StrideMsg(4)); err != nil {
		t.Fatal(err)
	}
	p := s.Apply()
	if p.Stride != 4 {
		t.Fatalf("stride = %d", p.Stride)
	}
	// Drained on next Apply.
	if s.Apply().Stride != 0 {
		t.Fatal("stride not drained")
	}
	// Clamping.
	if got := StrideMsg(0); got.Data[0] != 1 {
		t.Fatalf("StrideMsg(0) = %v", got.Data)
	}
	if got := StrideMsg(1000); got.Data[0] != 255 {
		t.Fatalf("StrideMsg(1000) = %v", got.Data)
	}
	// Bad payloads rejected.
	if err := s.Ingest(&transport.ControlMsg{Tag: TagStride}); err == nil {
		t.Fatal("empty stride accepted")
	}
	if err := s.Ingest(&transport.ControlMsg{Tag: TagStride, Data: []byte{0}}); err == nil {
		t.Fatal("zero stride accepted")
	}
}
