// Package control implements the paper's user-control path: the
// display client sends tagged messages through the daemon to the
// render engine; rendering of in-flight frames is never interrupted —
// inputs are buffered and take effect on subsequent frames (§5 of the
// paper).
package control

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/tf"
	"repro/internal/transport"
)

// Tags of the control messages the render engine understands.
const (
	TagView     = "view"     // ViewEvent payload
	TagColormap = "colormap" // tf.Marshal payload
	TagCodec    = "codec"    // codec name as UTF-8
	TagStart    = "start"    // no payload: begin/resume streaming
	TagStop     = "stop"     // no payload: pause after current frame
	// TagStride selects preview-mode time-step skipping (§7.1:
	// "certain time steps can be skipped during a previewing mode"):
	// payload is one byte, the stride k (render every k-th step).
	TagStride = "stride"
)

// ViewEvent is a new camera position (orbit parameterization).
type ViewEvent struct {
	Azimuth, Elevation float64
	// Distance is the eye distance as a multiple of the volume
	// diagonal.
	Distance float64
}

// Marshal encodes the view event.
func (v ViewEvent) Marshal() []byte {
	out := make([]byte, 24)
	binary.LittleEndian.PutUint64(out, math.Float64bits(v.Azimuth))
	binary.LittleEndian.PutUint64(out[8:], math.Float64bits(v.Elevation))
	binary.LittleEndian.PutUint64(out[16:], math.Float64bits(v.Distance))
	return out
}

// UnmarshalView decodes a view event.
func UnmarshalView(p []byte) (ViewEvent, error) {
	if len(p) != 24 {
		return ViewEvent{}, fmt.Errorf("control: view payload %d bytes", len(p))
	}
	v := ViewEvent{
		Azimuth:   math.Float64frombits(binary.LittleEndian.Uint64(p)),
		Elevation: math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
		Distance:  math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
	}
	for _, f := range []float64{v.Azimuth, v.Elevation, v.Distance} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return ViewEvent{}, fmt.Errorf("control: non-finite view value")
		}
	}
	if v.Distance <= 0 {
		return ViewEvent{}, fmt.Errorf("control: distance %v must be positive", v.Distance)
	}
	return v, nil
}

// Messages builds the wire ControlMsg for each event kind.

// ViewMsg wraps a view change.
func ViewMsg(v ViewEvent) *transport.ControlMsg {
	return &transport.ControlMsg{Tag: TagView, Data: v.Marshal()}
}

// ColormapMsg wraps a transfer-function change.
func ColormapMsg(t *tf.TF) *transport.ControlMsg {
	return &transport.ControlMsg{Tag: TagColormap, Data: t.Marshal()}
}

// CodecMsg wraps a codec switch.
func CodecMsg(name string) *transport.ControlMsg {
	return &transport.ControlMsg{Tag: TagCodec, Data: []byte(name)}
}

// StartMsg resumes streaming.
func StartMsg() *transport.ControlMsg { return &transport.ControlMsg{Tag: TagStart} }

// StopMsg pauses streaming.
func StopMsg() *transport.ControlMsg { return &transport.ControlMsg{Tag: TagStop} }

// StrideMsg selects preview-mode step skipping (k >= 1).
func StrideMsg(k int) *transport.ControlMsg {
	if k < 1 {
		k = 1
	}
	if k > 255 {
		k = 255
	}
	return &transport.ControlMsg{Tag: TagStride, Data: []byte{byte(k)}}
}

// State buffers pending user inputs on the renderer side. Apply is
// called between frames: rendering in progress is never interrupted
// and the most recent value of each control wins.
type State struct {
	mu sync.Mutex

	pendingView     *ViewEvent
	pendingColormap *tf.TF
	pendingCodec    string
	pendingStride   int
	running         bool
	runChanged      bool
}

// NewState returns a buffered control state; streaming starts enabled.
func NewState() *State { return &State{running: true} }

// Ingest buffers one control message; unknown tags are reported but
// not fatal (forward compatibility).
func (s *State) Ingest(m *transport.ControlMsg) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch m.Tag {
	case TagView:
		v, err := UnmarshalView(m.Data)
		if err != nil {
			return err
		}
		s.pendingView = &v
	case TagColormap:
		t, err := tf.Unmarshal(m.Data)
		if err != nil {
			return err
		}
		s.pendingColormap = t
	case TagCodec:
		if len(m.Data) == 0 {
			return fmt.Errorf("control: empty codec name")
		}
		s.pendingCodec = string(m.Data)
	case TagStart:
		s.running = true
		s.runChanged = true
	case TagStop:
		s.running = false
		s.runChanged = true
	case TagStride:
		if len(m.Data) != 1 || m.Data[0] == 0 {
			return fmt.Errorf("control: bad stride payload")
		}
		s.pendingStride = int(m.Data[0])
	default:
		return fmt.Errorf("control: unknown tag %q", m.Tag)
	}
	return nil
}

// Pending describes the changes to apply before the next frame.
type Pending struct {
	View     *ViewEvent
	Colormap *tf.TF
	Codec    string
	// Stride is the new preview-mode step stride (0 = unchanged).
	Stride int
	// RunChanged reports that Running carries a new start/stop state.
	RunChanged bool
	Running    bool
}

// Apply drains the buffered changes; each call returns the changes
// accumulated since the previous call (latest value per control).
func (s *State) Apply() Pending {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := Pending{
		View:       s.pendingView,
		Colormap:   s.pendingColormap,
		Codec:      s.pendingCodec,
		Stride:     s.pendingStride,
		RunChanged: s.runChanged,
		Running:    s.running,
	}
	s.pendingView = nil
	s.pendingColormap = nil
	s.pendingCodec = ""
	s.pendingStride = 0
	s.runChanged = false
	return p
}

// Running reports the current streaming state without draining.
func (s *State) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}
