package jpegc

import (
	"bytes"
	"image"
	"image/jpeg"
	"math"
	"math/rand"
	"testing"

	"repro/internal/img"
)

// testFrame builds a frame resembling a rendered volume: dark
// background, smooth colored structure.
func testFrame(w, h int) *img.Frame {
	f := img.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx := float64(x-w/2) / float64(w)
			dy := float64(y-h/2) / float64(h)
			r2 := dx*dx + dy*dy
			v := math.Exp(-r2*8) * 255
			f.Set(x, y,
				byte(v),
				byte(v*math.Abs(math.Sin(10*dx))),
				byte(v*0.6+40*math.Exp(-r2*30)),
			)
		}
	}
	return f
}

func framePSNR(t *testing.T, a, b *img.Frame) float64 {
	t.Helper()
	p, err := img.PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestZigzagIsPermutation(t *testing.T) {
	var seen [64]bool
	for _, n := range zigzag {
		if n < 0 || n > 63 || seen[n] {
			t.Fatalf("zigzag invalid at %d", n)
		}
		seen[n] = true
	}
	for z, n := range zigzag {
		if unzigzag[n] != z {
			t.Fatal("unzigzag inconsistent")
		}
	}
	// Spot checks of the standard order.
	if zigzag[1] != 1 || zigzag[2] != 8 || zigzag[63] != 63 || zigzag[8] != 17 {
		t.Fatalf("zigzag order wrong: %v", zigzag[:9])
	}
}

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var b, orig [64]float64
		for i := range b {
			b[i] = rng.Float64()*255 - 128
			orig[i] = b[i]
		}
		fdct2d(&b)
		idct2dAccurate(&b)
		for i := range b {
			if math.Abs(b[i]-orig[i]) > 1e-9 {
				t.Fatalf("trial %d: DCT round trip error %v at %d", trial, b[i]-orig[i], i)
			}
		}
	}
}

func TestDCTDCCoefficient(t *testing.T) {
	var b [64]float64
	for i := range b {
		b[i] = 100
	}
	fdct2d(&b)
	// DC of a constant block: 8 * value (orthonormal scaling).
	if math.Abs(b[0]-800) > 1e-9 {
		t.Fatalf("DC = %v, want 800", b[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(b[i]) > 1e-9 {
			t.Fatalf("AC %d = %v, want 0", i, b[i])
		}
	}
}

func TestFastIDCTApproximatesAccurate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var worst float64
	for trial := 0; trial < 30; trial++ {
		var f [64]float64
		var i32 [64]int32
		for i := range f {
			v := int32(rng.Intn(400) - 200)
			f[i] = float64(v)
			i32[i] = v
		}
		idct2dAccurate(&f)
		idct2dFast(&i32)
		for i := range f {
			d := math.Abs(f[i] - float64(i32[i]))
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 4 {
		t.Fatalf("fast IDCT deviates by %v levels", worst)
	}
	if worst == 0 {
		t.Fatal("fast IDCT identical to accurate — not an approximation")
	}
}

func TestMagnitudeCoding(t *testing.T) {
	cases := []struct {
		v    int
		size byte
	}{{0, 0}, {1, 1}, {-1, 1}, {2, 2}, {3, 2}, {-3, 2}, {7, 3}, {-8, 4}, {255, 8}, {-255, 8}, {1023, 10}}
	for _, c := range cases {
		if got := magnitudeBits(c.v); got != c.size {
			t.Fatalf("magnitudeBits(%d) = %d, want %d", c.v, got, c.size)
		}
		if c.size == 0 {
			continue
		}
		// extend must invert magnitudeValue.
		code := magnitudeValue(c.v, c.size)
		if got := extend(int32(code), c.size); got != int32(c.v) {
			t.Fatalf("extend(magnitudeValue(%d)) = %d", c.v, got)
		}
	}
}

func TestScaleQuant(t *testing.T) {
	q50 := scaleQuant(&baseLumaQuant, 50)
	for i := range q50 {
		if int(q50[i]) != baseLumaQuant[i] {
			t.Fatalf("quality 50 must reproduce the base table at %d: %d != %d", i, q50[i], baseLumaQuant[i])
		}
	}
	q100 := scaleQuant(&baseLumaQuant, 100)
	q10 := scaleQuant(&baseLumaQuant, 10)
	for i := range q100 {
		if q100[i] > q50[i] || q10[i] < q50[i] {
			t.Fatal("quality scaling not monotone")
		}
		if q100[i] < 1 {
			t.Fatal("quant value below 1")
		}
	}
}

func TestEncodeDecodeSelf(t *testing.T) {
	for _, sz := range [][2]int{{64, 64}, {128, 96}, {17, 23}, {8, 8}, {1, 1}, {15, 9}} {
		f := testFrame(sz[0], sz[1])
		data, err := Encode(f, 85)
		if err != nil {
			t.Fatalf("%v: %v", sz, err)
		}
		got, err := Decode(data, DecodeOptions{})
		if err != nil {
			t.Fatalf("%v: decode: %v", sz, err)
		}
		if got.W != f.W || got.H != f.H {
			t.Fatalf("%v: decoded size %dx%d", sz, got.W, got.H)
		}
		// Tiny frames have legitimately lower PSNR (4:2:0 loss on
		// high-frequency chroma); measured parity with image/jpeg is
		// 25.6 dB at 17x23.
		min := 30.0
		if sz[0] < 32 || sz[1] < 32 {
			min = 24.0
		}
		if sz[0] < 16 || sz[1] < 16 {
			min = 15.0 // single-MCU frames: dominated by 4:2:0 loss
		}
		if p := framePSNR(t, f, got); p < min {
			t.Fatalf("%v: self round-trip PSNR %.1f dB", sz, p)
		}
	}
}

func TestQualityMonotone(t *testing.T) {
	f := testFrame(128, 128)
	var lastSize int
	var lastPSNR float64
	for i, q := range []int{10, 50, 90} {
		data, err := Encode(f, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data, DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		p := framePSNR(t, f, got)
		if i > 0 {
			if len(data) <= lastSize {
				t.Fatalf("q=%d size %d not larger than %d", q, len(data), lastSize)
			}
			if p <= lastPSNR {
				t.Fatalf("q=%d PSNR %.1f not better than %.1f", q, p, lastPSNR)
			}
		}
		lastSize, lastPSNR = len(data), p
	}
}

// Interop 1: the standard library must decode our output.
func TestStdlibDecodesOurOutput(t *testing.T) {
	f := testFrame(96, 80)
	data, err := Encode(f, 85)
	if err != nil {
		t.Fatal(err)
	}
	stdImg, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stdlib rejected our JPEG: %v", err)
	}
	got := img.FromImage(stdImg)
	if p := framePSNR(t, f, got); p < 30 {
		t.Fatalf("stdlib decode PSNR %.1f dB", p)
	}
}

// Interop 2: we must decode the standard library's output.
func TestWeDecodeStdlibOutput(t *testing.T) {
	f := testFrame(96, 80)
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, f.ToImage(), &jpeg.Options{Quality: 85}); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf.Bytes(), DecodeOptions{})
	if err != nil {
		t.Fatalf("we rejected stdlib JPEG: %v", err)
	}
	if p := framePSNR(t, f, got); p < 30 {
		t.Fatalf("our decode of stdlib PSNR %.1f dB", p)
	}
}

// Interop 3: our decoder must agree with the stdlib decoder on the
// same compressed stream.
func TestDecodersAgree(t *testing.T) {
	f := testFrame(64, 64)
	data, err := Encode(f, 75)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := Decode(data, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stdImg, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	theirs := img.FromImage(stdImg)
	if p := framePSNR(t, ours, theirs); p < 40 {
		t.Fatalf("decoders disagree: PSNR %.1f dB", p)
	}
}

func TestGrayscaleDecode(t *testing.T) {
	gray := image.NewGray(image.Rect(0, 0, 40, 30))
	for y := 0; y < 30; y++ {
		for x := 0; x < 40; x++ {
			gray.Pix[y*gray.Stride+x] = byte(x*4 + y)
		}
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, gray, &jpeg.Options{Quality: 90}); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf.Bytes(), DecodeOptions{})
	if err != nil {
		t.Fatalf("grayscale decode: %v", err)
	}
	if got.W != 40 || got.H != 30 {
		t.Fatalf("size %dx%d", got.W, got.H)
	}
	r, g, b := got.At(20, 15)
	if r != g || g != b {
		t.Fatal("grayscale decoded to non-gray pixel")
	}
}

func TestFastIDCTDecode(t *testing.T) {
	f := testFrame(64, 64)
	data, err := Encode(f, 85)
	if err != nil {
		t.Fatal(err)
	}
	accurate, err := Decode(data, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Decode(data, DecodeOptions{FastIDCT: true})
	if err != nil {
		t.Fatal(err)
	}
	// Fast path must stay visually close to the accurate path.
	if p := framePSNR(t, accurate, fast); p < 35 {
		t.Fatalf("fast IDCT PSNR vs accurate: %.1f dB", p)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xff},
		{0x00, 0x00, 0x00},
		{0xff, 0xd8},             // SOI only
		{0xff, 0xd8, 0xff, 0xd9}, // SOI+EOI, no scan
		bytes.Repeat([]byte{0xab}, 100),
	}
	for i, c := range cases {
		if _, err := Decode(c, DecodeOptions{}); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncated valid stream.
	f := testFrame(32, 32)
	data, err := Encode(f, 75)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data[:len(data)/3], DecodeOptions{}); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(img.NewFrame(0, 0), 75); err == nil {
		t.Fatal("want error for empty frame")
	}
}

func TestCodecInterface(t *testing.T) {
	c := Codec{Quality: 80}
	if c.Name() != "jpeg" || c.Lossless() {
		t.Fatal("metadata wrong")
	}
	f := testFrame(48, 48)
	data, err := c.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if p := framePSNR(t, f, got); p < 30 {
		t.Fatalf("codec PSNR %.1f", p)
	}
	// Default quality kicks in at 0.
	if _, err := (Codec{}).EncodeFrame(f); err != nil {
		t.Fatal(err)
	}
}

// Restart markers: stdlib doesn't emit them, so synthesize by
// re-encoding with a DRI segment via a hand-built stream is complex;
// instead verify the decoder path using our own encoder extended with
// restarts is exercised in the decoder tests of transportable streams.
// Here, check the compression ratio expectation from the paper: a
// rendered-style image at 256x256 should compress far below raw size.
func TestCompressionRatioOnRenderedStyle(t *testing.T) {
	f := testFrame(256, 256)
	data, err := Encode(f, 75)
	if err != nil {
		t.Fatal(err)
	}
	raw := 256 * 256 * 3
	if len(data)*10 > raw {
		t.Fatalf("jpeg size %d not < 10%% of raw %d", len(data), raw)
	}
}

func BenchmarkEncode256(b *testing.B) {
	f := testFrame(256, 256)
	b.SetBytes(int64(len(f.Pix)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(f, 75); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeAccurate256(b *testing.B) {
	f := testFrame(256, 256)
	data, err := Encode(f, 75)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(f.Pix)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data, DecodeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFast256(b *testing.B) {
	f := testFrame(256, 256)
	data, err := Encode(f, 75)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(f.Pix)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data, DecodeOptions{FastIDCT: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRestartIntervalSelfDecode(t *testing.T) {
	f := testFrame(96, 80) // 6x5 MCUs
	for _, ri := range []int{1, 3, 7} {
		data, err := EncodeRestart(f, 85, ri)
		if err != nil {
			t.Fatalf("ri=%d: %v", ri, err)
		}
		got, err := Decode(data, DecodeOptions{})
		if err != nil {
			t.Fatalf("ri=%d: decode: %v", ri, err)
		}
		if p := framePSNR(t, f, got); p < 30 {
			t.Fatalf("ri=%d: PSNR %.1f", ri, p)
		}
		// The restart stream must be equivalent to the plain one.
		plain, err := Decode(mustEncode(t, f, 85), DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if p, _ := img.PSNR(plain, got); p < 50 {
			t.Fatalf("ri=%d: differs from plain encode: %.1f dB", ri, p)
		}
	}
}

func TestRestartIntervalStdlibDecodes(t *testing.T) {
	f := testFrame(64, 64)
	data, err := EncodeRestart(f, 85, 2)
	if err != nil {
		t.Fatal(err)
	}
	stdImg, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stdlib rejected restart-marker stream: %v", err)
	}
	if p := framePSNR(t, f, img.FromImage(stdImg)); p < 30 {
		t.Fatalf("stdlib decode PSNR %.1f", p)
	}
}

func TestRestartIntervalValidation(t *testing.T) {
	f := testFrame(16, 16)
	if _, err := EncodeRestart(f, 85, -1); err == nil {
		t.Fatal("negative interval accepted")
	}
	if _, err := EncodeRestart(f, 85, 1<<16); err == nil {
		t.Fatal("oversized interval accepted")
	}
}

func mustEncode(t *testing.T, f *img.Frame, q int) []byte {
	t.Helper()
	data, err := Encode(f, q)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
