package jpegc

import (
	"errors"
	"fmt"

	"repro/internal/img"
)

// ErrFormat reports a malformed or unsupported JPEG stream.
var ErrFormat = errors.New("jpegc: invalid or unsupported JPEG")

// decHuff is a Huffman decoding table built from a DHT segment.
type decHuff struct {
	firstCode [17]int32 // first code of each length
	firstVal  [17]int32 // index into vals of first symbol of each length
	maxCode   [17]int32 // last code of each length (-1 if none)
	vals      []byte
}

func buildDecHuff(counts [16]byte, vals []byte) *decHuff {
	h := &decHuff{vals: vals}
	code := int32(0)
	idx := int32(0)
	for l := 1; l <= 16; l++ {
		h.firstCode[l] = code
		h.firstVal[l] = idx
		n := int32(counts[l-1])
		if n == 0 {
			h.maxCode[l] = -1
		} else {
			h.maxCode[l] = code + n - 1
		}
		code = (code + n) << 1
		idx += n
	}
	return h
}

// scanReader reads entropy-coded bits, unstuffing 0xFF00 and stopping
// at markers.
type scanReader struct {
	src    []byte
	pos    int
	acc    uint32
	nAcc   uint
	marker byte // pending marker (0 if none)
}

// fill pulls one more byte into the accumulator.
func (r *scanReader) fill() error {
	if r.marker != 0 {
		return fmt.Errorf("%w: read past marker ff%02x", ErrFormat, r.marker)
	}
	if r.pos >= len(r.src) {
		return fmt.Errorf("%w: truncated scan", ErrFormat)
	}
	b := r.src[r.pos]
	r.pos++
	if b == 0xff {
		if r.pos >= len(r.src) {
			return fmt.Errorf("%w: truncated marker", ErrFormat)
		}
		nxt := r.src[r.pos]
		r.pos++
		if nxt != 0x00 {
			r.marker = nxt
			// Treat as padding; callers must notice the marker.
			r.acc = r.acc<<8 | 0xff
			r.nAcc += 8
			return nil
		}
	}
	r.acc = r.acc<<8 | uint32(b)
	r.nAcc += 8
	return nil
}

func (r *scanReader) bit() (uint32, error) {
	if r.nAcc == 0 {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	r.nAcc--
	return (r.acc >> r.nAcc) & 1, nil
}

func (r *scanReader) bits(n byte) (int32, error) {
	var v int32
	for i := byte(0); i < n; i++ {
		b, err := r.bit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | int32(b)
	}
	return v, nil
}

// decodeSym reads one Huffman-coded symbol.
func (r *scanReader) decodeSym(h *decHuff) (byte, error) {
	code := int32(0)
	for l := 1; l <= 16; l++ {
		b, err := r.bit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | int32(b)
		if h.maxCode[l] >= 0 && code <= h.maxCode[l] {
			return h.vals[h.firstVal[l]+code-h.firstCode[l]], nil
		}
	}
	return 0, fmt.Errorf("%w: bad Huffman code", ErrFormat)
}

// extend converts an amplitude code of the given size to a value.
func extend(v int32, size byte) int32 {
	if size == 0 {
		return 0
	}
	if v < 1<<(size-1) {
		return v - (1 << size) + 1
	}
	return v
}

// component is one color plane of the frame being decoded.
type component struct {
	id     byte
	h, v   int // sampling factors
	quant  byte
	dcTab  byte
	acTab  byte
	dcPred int32
	// plane at (W/maxH*h) x (H/maxV*v) resolution, padded to MCU
	// multiples.
	plane  []byte
	stride int
}

// Decoder options.
type DecodeOptions struct {
	// FastIDCT selects the fixed-point approximate inverse DCT.
	FastIDCT bool
}

// Decode parses a baseline JPEG into an RGB frame.
func Decode(data []byte, opt DecodeOptions) (*img.Frame, error) {
	d := &decoder{src: data, opt: opt}
	return d.decode()
}

type decoder struct {
	src []byte
	pos int
	opt DecodeOptions

	quant   [4][64]int32 // natural order
	huffDC  [4]*decHuff
	huffAC  [4]*decHuff
	w, h    int
	comps   []*component
	maxH    int
	maxV    int
	restart int // restart interval in MCUs (0 = none)
	sawSOF  bool
}

func (d *decoder) u8() (byte, error) {
	if d.pos >= len(d.src) {
		return 0, fmt.Errorf("%w: truncated", ErrFormat)
	}
	b := d.src[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) u16() (int, error) {
	hi, err := d.u8()
	if err != nil {
		return 0, err
	}
	lo, err := d.u8()
	if err != nil {
		return 0, err
	}
	return int(hi)<<8 | int(lo), nil
}

func (d *decoder) segment() ([]byte, error) {
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	if n < 2 || d.pos+n-2 > len(d.src) {
		return nil, fmt.Errorf("%w: bad segment length %d", ErrFormat, n)
	}
	seg := d.src[d.pos : d.pos+n-2]
	d.pos += n - 2
	return seg, nil
}

func (d *decoder) decode() (*img.Frame, error) {
	m, err := d.u8()
	if err != nil {
		return nil, err
	}
	m2, err := d.u8()
	if err != nil {
		return nil, err
	}
	if m != 0xff || m2 != 0xd8 {
		return nil, fmt.Errorf("%w: missing SOI", ErrFormat)
	}
	for {
		b, err := d.u8()
		if err != nil {
			return nil, err
		}
		if b != 0xff {
			return nil, fmt.Errorf("%w: expected marker, got %02x", ErrFormat, b)
		}
		marker, err := d.u8()
		if err != nil {
			return nil, err
		}
		for marker == 0xff { // fill bytes
			if marker, err = d.u8(); err != nil {
				return nil, err
			}
		}
		switch {
		case marker == 0xd9: // EOI before SOS
			return nil, fmt.Errorf("%w: no image data", ErrFormat)
		case marker == 0xc0: // SOF0 baseline
			if err := d.parseSOF(); err != nil {
				return nil, err
			}
		case marker == 0xc4:
			if err := d.parseDHT(); err != nil {
				return nil, err
			}
		case marker == 0xdb:
			if err := d.parseDQT(); err != nil {
				return nil, err
			}
		case marker == 0xdd: // DRI
			seg, err := d.segment()
			if err != nil {
				return nil, err
			}
			if len(seg) != 2 {
				return nil, fmt.Errorf("%w: bad DRI", ErrFormat)
			}
			d.restart = int(seg[0])<<8 | int(seg[1])
		case marker == 0xda: // SOS
			return d.parseScan()
		case marker >= 0xc1 && marker <= 0xcf && marker != 0xc4 && marker != 0xc8 && marker != 0xcc:
			return nil, fmt.Errorf("%w: non-baseline SOF marker ff%02x", ErrFormat, marker)
		default: // APPn, COM, anything skippable
			if _, err := d.segment(); err != nil {
				return nil, err
			}
		}
	}
}

func (d *decoder) parseDQT() error {
	seg, err := d.segment()
	if err != nil {
		return err
	}
	for len(seg) > 0 {
		pq := seg[0] >> 4
		tq := seg[0] & 0xf
		if tq > 3 {
			return fmt.Errorf("%w: quant table id %d", ErrFormat, tq)
		}
		seg = seg[1:]
		n := 64
		if pq == 1 {
			n = 128
		}
		if len(seg) < n {
			return fmt.Errorf("%w: short DQT", ErrFormat)
		}
		for z := 0; z < 64; z++ {
			var v int32
			if pq == 1 {
				v = int32(seg[2*z])<<8 | int32(seg[2*z+1])
			} else {
				v = int32(seg[z])
			}
			d.quant[tq][zigzag[z]] = v
		}
		seg = seg[n:]
	}
	return nil
}

func (d *decoder) parseDHT() error {
	seg, err := d.segment()
	if err != nil {
		return err
	}
	for len(seg) > 0 {
		if len(seg) < 17 {
			return fmt.Errorf("%w: short DHT", ErrFormat)
		}
		class := seg[0] >> 4
		id := seg[0] & 0xf
		if class > 1 || id > 3 {
			return fmt.Errorf("%w: DHT class %d id %d", ErrFormat, class, id)
		}
		var counts [16]byte
		total := 0
		for i := 0; i < 16; i++ {
			counts[i] = seg[1+i]
			total += int(counts[i])
		}
		if len(seg) < 17+total {
			return fmt.Errorf("%w: short DHT values", ErrFormat)
		}
		vals := make([]byte, total)
		copy(vals, seg[17:17+total])
		h := buildDecHuff(counts, vals)
		if class == 0 {
			d.huffDC[id] = h
		} else {
			d.huffAC[id] = h
		}
		seg = seg[17+total:]
	}
	return nil
}

func (d *decoder) parseSOF() error {
	seg, err := d.segment()
	if err != nil {
		return err
	}
	if len(seg) < 6 {
		return fmt.Errorf("%w: short SOF", ErrFormat)
	}
	if seg[0] != 8 {
		return fmt.Errorf("%w: precision %d", ErrFormat, seg[0])
	}
	d.h = int(seg[1])<<8 | int(seg[2])
	d.w = int(seg[3])<<8 | int(seg[4])
	nc := int(seg[5])
	if d.w < 1 || d.h < 1 {
		return fmt.Errorf("%w: image %dx%d", ErrFormat, d.w, d.h)
	}
	if nc != 1 && nc != 3 {
		return fmt.Errorf("%w: %d components", ErrFormat, nc)
	}
	if len(seg) < 6+3*nc {
		return fmt.Errorf("%w: short SOF components", ErrFormat)
	}
	d.comps = nil
	d.maxH, d.maxV = 1, 1
	for i := 0; i < nc; i++ {
		c := &component{
			id:    seg[6+3*i],
			h:     int(seg[7+3*i] >> 4),
			v:     int(seg[7+3*i] & 0xf),
			quant: seg[8+3*i],
		}
		if c.h < 1 || c.h > 4 || c.v < 1 || c.v > 4 || c.quant > 3 {
			return fmt.Errorf("%w: component %d sampling %dx%d quant %d", ErrFormat, i, c.h, c.v, c.quant)
		}
		if c.h > d.maxH {
			d.maxH = c.h
		}
		if c.v > d.maxV {
			d.maxV = c.v
		}
		d.comps = append(d.comps, c)
	}
	d.sawSOF = true
	return nil
}

func (d *decoder) parseScan() (*img.Frame, error) {
	if !d.sawSOF {
		return nil, fmt.Errorf("%w: SOS before SOF", ErrFormat)
	}
	seg, err := d.segment()
	if err != nil {
		return nil, err
	}
	if len(seg) < 1 {
		return nil, fmt.Errorf("%w: empty SOS", ErrFormat)
	}
	ns := int(seg[0])
	if ns != len(d.comps) {
		return nil, fmt.Errorf("%w: scan has %d of %d components (non-interleaved scans unsupported)", ErrFormat, ns, len(d.comps))
	}
	if len(seg) < 1+2*ns+3 {
		return nil, fmt.Errorf("%w: short SOS", ErrFormat)
	}
	for i := 0; i < ns; i++ {
		id := seg[1+2*i]
		tabs := seg[2+2*i]
		found := false
		for _, c := range d.comps {
			if c.id == id {
				c.dcTab = tabs >> 4
				c.acTab = tabs & 0xf
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: scan references unknown component %d", ErrFormat, id)
		}
	}

	mcuW := 8 * d.maxH
	mcuH := 8 * d.maxV
	mcusX := (d.w + mcuW - 1) / mcuW
	mcusY := (d.h + mcuH - 1) / mcuH
	for _, c := range d.comps {
		c.stride = mcusX * 8 * c.h
		c.plane = make([]byte, c.stride*mcusY*8*c.v)
	}

	sr := &scanReader{src: d.src, pos: d.pos}
	mcu := 0
	for my := 0; my < mcusY; my++ {
		for mx := 0; mx < mcusX; mx++ {
			if d.restart > 0 && mcu > 0 && mcu%d.restart == 0 {
				if err := d.restartMarker(sr); err != nil {
					return nil, err
				}
			}
			for _, c := range d.comps {
				for by := 0; by < c.v; by++ {
					for bx := 0; bx < c.h; bx++ {
						if err := d.decodeBlock(sr, c, (my*c.v+by)*8, (mx*c.h+bx)*8); err != nil {
							return nil, err
						}
					}
				}
			}
			mcu++
		}
	}
	return d.assemble(), nil
}

// restartMarker consumes an RSTn marker and resets entropy state.
func (d *decoder) restartMarker(sr *scanReader) error {
	// Discard bits to byte boundary; the marker may already have been
	// latched by fill, otherwise it follows immediately.
	sr.nAcc = 0
	if sr.marker == 0 {
		if sr.pos+2 > len(sr.src) || sr.src[sr.pos] != 0xff {
			return fmt.Errorf("%w: missing restart marker", ErrFormat)
		}
		sr.marker = sr.src[sr.pos+1]
		sr.pos += 2
	}
	if sr.marker < 0xd0 || sr.marker > 0xd7 {
		return fmt.Errorf("%w: expected RSTn, got ff%02x", ErrFormat, sr.marker)
	}
	sr.marker = 0
	for _, c := range d.comps {
		c.dcPred = 0
	}
	return nil
}

// decodeBlock entropy-decodes one 8x8 block of component c and stores
// the spatial result at (px,py) of its plane.
func (d *decoder) decodeBlock(sr *scanReader, c *component, py, px int) error {
	dcH := d.huffDC[c.dcTab]
	acH := d.huffAC[c.acTab]
	if dcH == nil || acH == nil {
		return fmt.Errorf("%w: missing Huffman table", ErrFormat)
	}
	q := &d.quant[c.quant]

	var zz [64]int32
	s, err := sr.decodeSym(dcH)
	if err != nil {
		return err
	}
	if s > 11 {
		return fmt.Errorf("%w: DC size %d", ErrFormat, s)
	}
	amp, err := sr.bits(s)
	if err != nil {
		return err
	}
	c.dcPred += extend(amp, s)
	zz[0] = c.dcPred

	for k := 1; k < 64; {
		sym, err := sr.decodeSym(acH)
		if err != nil {
			return err
		}
		run := int(sym >> 4)
		size := sym & 0xf
		if size == 0 {
			if run == 15 { // ZRL
				k += 16
				continue
			}
			break // EOB
		}
		k += run
		if k > 63 {
			return fmt.Errorf("%w: AC index %d", ErrFormat, k)
		}
		amp, err := sr.bits(size)
		if err != nil {
			return err
		}
		zz[k] = extend(amp, size)
		k++
	}

	if d.opt.FastIDCT {
		var blk [64]int32
		for z := 0; z < 64; z++ {
			blk[zigzag[z]] = zz[z] * q[zigzag[z]]
		}
		idct2dFast(&blk)
		for y := 0; y < 8; y++ {
			row := (py+y)*c.stride + px
			for x := 0; x < 8; x++ {
				c.plane[row+x] = clampByte(int(blk[y*8+x]) + 128)
			}
		}
		return nil
	}
	var blk [64]float64
	for z := 0; z < 64; z++ {
		blk[zigzag[z]] = float64(zz[z] * q[zigzag[z]])
	}
	idct2dAccurate(&blk)
	for y := 0; y < 8; y++ {
		row := (py+y)*c.stride + px
		for x := 0; x < 8; x++ {
			c.plane[row+x] = clampByte(int(blk[y*8+x] + 128.5))
		}
	}
	return nil
}

func clampByte(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// assemble upsamples chroma and converts to RGB.
func (d *decoder) assemble() *img.Frame {
	f := img.NewFrame(d.w, d.h)
	if len(d.comps) == 1 {
		c := d.comps[0]
		for y := 0; y < d.h; y++ {
			for x := 0; x < d.w; x++ {
				v := c.plane[y*c.stride+x]
				f.Set(x, y, v, v, v)
			}
		}
		return f
	}
	cy, ccb, ccr := d.comps[0], d.comps[1], d.comps[2]
	for y := 0; y < d.h; y++ {
		for x := 0; x < d.w; x++ {
			Y := float64(sample(cy, x, y, d.maxH, d.maxV))
			Cb := float64(sample(ccb, x, y, d.maxH, d.maxV)) - 128
			Cr := float64(sample(ccr, x, y, d.maxH, d.maxV)) - 128
			r := Y + 1.402*Cr
			g := Y - 0.344136*Cb - 0.714136*Cr
			b := Y + 1.772*Cb
			f.Set(x, y, clampByte(int(r+0.5)), clampByte(int(g+0.5)), clampByte(int(b+0.5)))
		}
	}
	return f
}

// sample reads component c at full-resolution pixel (x,y) with box
// (nearest) upsampling.
func sample(c *component, x, y, maxH, maxV int) byte {
	sx := x * c.h / maxH
	sy := y * c.v / maxV
	return c.plane[sy*c.stride+sx]
}
