package jpegc

import "math"

// cosTab[u][x] = c(u) * cos((2x+1) u pi / 16) / 2, the orthonormal
// DCT-II basis used by both the forward transform and the accurate
// inverse.
var cosTab [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		cu := 1.0
		if u == 0 {
			cu = 1 / math.Sqrt2
		}
		for x := 0; x < 8; x++ {
			cosTab[u][x] = cu * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) / 2
		}
	}
}

// fdct2d computes the 2D forward DCT of an 8x8 block in place
// (row-major, level-shifted samples in, frequency coefficients out).
func fdct2d(b *[64]float64) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				s += cosTab[u][x] * b[y*8+x]
			}
			tmp[y*8+u] = s
		}
	}
	// Columns.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s float64
			for y := 0; y < 8; y++ {
				s += cosTab[v][y] * tmp[y*8+u]
			}
			b[v*8+u] = s
		}
	}
}

// idct2dAccurate computes the accurate float inverse DCT: coefficients
// in, spatial samples out.
func idct2dAccurate(b *[64]float64) {
	var tmp [64]float64
	// Columns.
	for u := 0; u < 8; u++ {
		for y := 0; y < 8; y++ {
			var s float64
			for v := 0; v < 8; v++ {
				s += cosTab[v][y] * b[v*8+u]
			}
			tmp[y*8+u] = s
		}
	}
	// Rows.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s float64
			for u := 0; u < 8; u++ {
				s += cosTab[u][x] * tmp[y*8+u]
			}
			b[y*8+x] = s
		}
	}
}

// Fixed-point inverse DCT for the fast decode path: the same separable
// structure with the basis quantized to 10 fractional bits and integer
// arithmetic throughout. It is measurably faster and slightly less
// accurate — the paper's decode-speed knob.
const fixBits = 10

var cosFix [8][8]int32

func init() {
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			cosFix[u][x] = int32(math.Round(cosTab[u][x] * (1 << fixBits)))
		}
	}
}

// idct2dFast computes an approximate inverse DCT on int32
// coefficients; the result is spatial samples (still level-shifted).
// Beyond the fixed-point arithmetic it skips all-zero coefficient
// columns and short-circuits DC-only blocks — the dominant case in
// the dark backgrounds of rendered volume images and the main source
// of the fast path's speedup.
func idct2dFast(b *[64]int32) {
	// DC-only block: constant output.
	dcOnly := true
	for i := 1; i < 64; i++ {
		if b[i] != 0 {
			dcOnly = false
			break
		}
	}
	if dcOnly {
		v := int32((int64(cosFix[0][0]) * int64(cosFix[0][0]) * int64(b[0])) >> (2 * fixBits))
		for i := range b {
			b[i] = v
		}
		return
	}
	var tmp [64]int32
	for u := 0; u < 8; u++ {
		allZero := true
		for v := 0; v < 8; v++ {
			if b[v*8+u] != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			continue // tmp column already zero
		}
		for y := 0; y < 8; y++ {
			var s int64
			for v := 0; v < 8; v++ {
				s += int64(cosFix[v][y]) * int64(b[v*8+u])
			}
			tmp[y*8+u] = int32(s >> fixBits)
		}
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s int64
			for u := 0; u < 8; u++ {
				s += int64(cosFix[u][x]) * int64(tmp[y*8+u])
			}
			b[y*8+x] = int32(s >> fixBits)
		}
	}
}
