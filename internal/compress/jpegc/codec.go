package jpegc

import "repro/internal/img"

// Codec adapts the JPEG implementation to compress.FrameCodec.
type Codec struct {
	// Quality in 1..100; 0 means the default of 75.
	Quality int
	// FastIDCT selects the fast, lower-precision decode path.
	FastIDCT bool
}

// Name implements compress.FrameCodec.
func (Codec) Name() string { return "jpeg" }

// Lossless implements compress.FrameCodec.
func (Codec) Lossless() bool { return false }

// EncodeFrame implements compress.FrameCodec.
func (c Codec) EncodeFrame(f *img.Frame) ([]byte, error) {
	q := c.Quality
	if q == 0 {
		q = 75
	}
	return Encode(f, q)
}

// DecodeFrame implements compress.FrameCodec.
func (c Codec) DecodeFrame(data []byte) (*img.Frame, error) {
	return Decode(data, DecodeOptions{FastIDCT: c.FastIDCT})
}
