package jpegc

import (
	"testing"

	"repro/internal/img"
)

// FuzzDecode: arbitrary byte streams must never panic the decoder —
// the display daemon feeds it network input.
func FuzzDecode(f *testing.F) {
	good, err := Encode(testFrame(24, 16), 70)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{0xff, 0xd8, 0xff, 0xd9})
	f.Add([]byte{})
	f.Add(good[:len(good)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := Decode(data, DecodeOptions{})
		if err == nil {
			if im.W < 1 || im.H < 1 || len(im.Pix) != im.W*im.H*3 {
				t.Fatalf("accepted stream produced inconsistent frame %dx%d", im.W, im.H)
			}
		}
		// Fast path must agree on accept/reject robustness.
		_, _ = Decode(data, DecodeOptions{FastIDCT: true})
	})
}

// FuzzEncodeDecode: every frame must survive an encode/decode cycle
// without error regardless of content.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint16(8), uint16(8), byte(50), []byte{1, 2, 3})
	f.Add(uint16(17), uint16(5), byte(90), []byte{})
	f.Fuzz(func(t *testing.T, w, h uint16, quality byte, seed []byte) {
		W := int(w%64) + 1
		H := int(h%64) + 1
		q := int(quality%100) + 1
		fr := newTestPattern(W, H, seed)
		data, err := Encode(fr, q)
		if err != nil {
			t.Fatalf("encode %dx%d q%d: %v", W, H, q, err)
		}
		got, err := Decode(data, DecodeOptions{})
		if err != nil {
			t.Fatalf("decode own output: %v", err)
		}
		if got.W != W || got.H != H {
			t.Fatalf("size %dx%d != %dx%d", got.W, got.H, W, H)
		}
	})
}

func newTestPattern(w, h int, seed []byte) *img.Frame {
	f := img.NewFrame(w, h)
	for i := range f.Pix {
		if len(seed) > 0 {
			f.Pix[i] = seed[i%len(seed)] + byte(i)
		} else {
			f.Pix[i] = byte(i * 13)
		}
	}
	return f
}
