package jpegc

import (
	"fmt"
	"math"

	"repro/internal/img"
)

// bitstream writes entropy-coded data MSB-first with 0xFF byte
// stuffing, as the JPEG scan format requires.
type bitstream struct {
	buf  []byte
	acc  uint32
	nAcc uint
}

func (b *bitstream) put(code uint32, n uint) {
	b.acc = b.acc<<n | (code & ((1 << n) - 1))
	b.nAcc += n
	for b.nAcc >= 8 {
		b.nAcc -= 8
		by := byte(b.acc >> b.nAcc)
		b.buf = append(b.buf, by)
		if by == 0xff {
			b.buf = append(b.buf, 0x00)
		}
	}
}

// finish pads the final byte with 1-bits per the JPEG spec.
func (b *bitstream) finish() {
	if b.nAcc > 0 {
		pad := 8 - b.nAcc
		b.put((1<<pad)-1, pad)
	}
}

// Encode serializes frame f as a baseline JFIF JPEG with 4:2:0 chroma
// subsampling at the given quality (1..100).
func Encode(f *img.Frame, quality int) ([]byte, error) {
	return EncodeRestart(f, quality, 0)
}

// EncodeRestart is Encode with a restart interval: every n MCUs the
// scan emits an RSTm marker and resets the DC predictors, bounding
// error propagation on lossy links (0 disables, as plain Encode).
func EncodeRestart(f *img.Frame, quality, restartInterval int) ([]byte, error) {
	if f.W < 1 || f.H < 1 {
		return nil, fmt.Errorf("jpegc: empty frame %dx%d", f.W, f.H)
	}
	if f.W > 0xffff || f.H > 0xffff {
		return nil, fmt.Errorf("jpegc: frame %dx%d exceeds JPEG limits", f.W, f.H)
	}
	if restartInterval < 0 || restartInterval > 0xffff {
		return nil, fmt.Errorf("jpegc: restart interval %d out of [0,65535]", restartInterval)
	}
	lumaQ := scaleQuant(&baseLumaQuant, quality)
	chromaQ := scaleQuant(&baseChromaQuant, quality)

	out := make([]byte, 0, f.W*f.H/4+1024)
	out = append(out, 0xff, 0xd8) // SOI
	out = appendAPP0(out)
	out = appendDQT(out, 0, &lumaQ)
	out = appendDQT(out, 1, &chromaQ)
	out = appendSOF0(out, f.W, f.H)
	out = appendDHT(out, 0, 0, dcLumaSpec)
	out = appendDHT(out, 1, 0, acLumaSpec)
	out = appendDHT(out, 0, 1, dcChromaSpec)
	out = appendDHT(out, 1, 1, acChromaSpec)
	if restartInterval > 0 {
		out = appendMarker(out, 0xdd, []byte{byte(restartInterval >> 8), byte(restartInterval)})
	}
	out = appendSOS(out)

	bs := &bitstream{buf: out}
	encodeScan(bs, f, &lumaQ, &chromaQ, restartInterval)
	bs.finish()
	out = bs.buf
	out = append(out, 0xff, 0xd9) // EOI
	return out, nil
}

func appendMarker(out []byte, marker byte, payload []byte) []byte {
	out = append(out, 0xff, marker)
	n := len(payload) + 2
	out = append(out, byte(n>>8), byte(n))
	return append(out, payload...)
}

func appendAPP0(out []byte) []byte {
	return appendMarker(out, 0xe0, []byte{
		'J', 'F', 'I', 'F', 0,
		1, 1, // version 1.1
		0,    // aspect-ratio units
		0, 1, // x density
		0, 1, // y density
		0, 0, // no thumbnail
	})
}

func appendDQT(out []byte, id int, q *[64]byte) []byte {
	payload := make([]byte, 65)
	payload[0] = byte(id) // 8-bit precision, table id
	for z := 0; z < 64; z++ {
		payload[1+z] = q[zigzag[z]]
	}
	return appendMarker(out, 0xdb, payload)
}

func appendSOF0(out []byte, w, h int) []byte {
	return appendMarker(out, 0xc0, []byte{
		8, // precision
		byte(h >> 8), byte(h),
		byte(w >> 8), byte(w),
		3,          // components
		1, 0x22, 0, // Y: 2x2 sampling, quant table 0
		2, 0x11, 1, // Cb: 1x1, quant table 1
		3, 0x11, 1, // Cr
	})
}

func appendDHT(out []byte, class, id int, spec huffSpec) []byte {
	payload := make([]byte, 0, 1+16+len(spec.values))
	payload = append(payload, byte(class<<4|id))
	payload = append(payload, spec.counts[:]...)
	payload = append(payload, spec.values...)
	return appendMarker(out, 0xc4, payload)
}

func appendSOS(out []byte) []byte {
	return appendMarker(out, 0xda, []byte{
		3,
		1, 0x00, // Y: DC table 0, AC table 0
		2, 0x11, // Cb: DC table 1, AC table 1
		3, 0x11, // Cr
		0, 63, 0, // spectral selection (baseline)
	})
}

// rgbToYCbCr converts one pixel (JFIF full-range).
func rgbToYCbCr(r, g, b byte) (y, cb, cr float64) {
	rf, gf, bf := float64(r), float64(g), float64(b)
	y = 0.299*rf + 0.587*gf + 0.114*bf
	cb = -0.168736*rf - 0.331264*gf + 0.5*bf + 128
	cr = 0.5*rf - 0.418688*gf - 0.081312*bf + 128
	return
}

// encodeScan writes the interleaved 4:2:0 MCU stream, emitting RSTm
// markers every restartInterval MCUs when nonzero.
func encodeScan(bs *bitstream, f *img.Frame, lumaQ, chromaQ *[64]byte, restartInterval int) {
	mcuW := (f.W + 15) / 16
	mcuH := (f.H + 15) / 16

	// Per-component DC predictors.
	var dcY, dcCb, dcCr int
	mcu := 0
	rst := 0

	var yPlane [256]float64 // 16x16 luma of the current MCU
	var cbPlane, crPlane [64]float64

	for my := 0; my < mcuH; my++ {
		for mx := 0; mx < mcuW; mx++ {
			if restartInterval > 0 && mcu > 0 && mcu%restartInterval == 0 {
				// Pad to a byte boundary and emit RSTm; predictors
				// reset per the spec.
				bs.finish()
				bs.buf = append(bs.buf, 0xff, byte(0xd0+rst))
				rst = (rst + 1) % 8
				dcY, dcCb, dcCr = 0, 0, 0
			}
			mcu++
			// Gather the 16x16 tile with edge replication, computing
			// YCbCr and box-filtered chroma.
			for ty := 0; ty < 16; ty++ {
				sy := clampi(my*16+ty, 0, f.H-1)
				for tx := 0; tx < 16; tx++ {
					sx := clampi(mx*16+tx, 0, f.W-1)
					r, g, b := f.At(sx, sy)
					y, cb, cr := rgbToYCbCr(r, g, b)
					yPlane[ty*16+tx] = y
					if ty%2 == 0 && tx%2 == 0 {
						cbPlane[(ty/2)*8+tx/2] = 0
						crPlane[(ty/2)*8+tx/2] = 0
					}
					cbPlane[(ty/2)*8+tx/2] += cb / 4
					crPlane[(ty/2)*8+tx/2] += cr / 4
				}
			}
			// Four Y blocks in order: (0,0) (1,0) (0,1) (1,1).
			for by := 0; by < 2; by++ {
				for bx := 0; bx < 2; bx++ {
					var blk [64]float64
					for y := 0; y < 8; y++ {
						for x := 0; x < 8; x++ {
							blk[y*8+x] = yPlane[(by*8+y)*16+bx*8+x] - 128
						}
					}
					dcY = encodeBlock(bs, &blk, lumaQ, dcLumaEnc, acLumaEnc, dcY)
				}
			}
			var blk [64]float64
			for i := range blk {
				blk[i] = cbPlane[i] - 128
			}
			dcCb = encodeBlock(bs, &blk, chromaQ, dcChromaEnc, acChromaEnc, dcCb)
			for i := range blk {
				blk[i] = crPlane[i] - 128
			}
			dcCr = encodeBlock(bs, &blk, chromaQ, dcChromaEnc, acChromaEnc, dcCr)
		}
	}
}

func clampi(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// encodeBlock transforms, quantizes and entropy-codes one 8x8 block,
// returning the new DC predictor.
func encodeBlock(bs *bitstream, blk *[64]float64, q *[64]byte, dcT, acT *encTable, dcPred int) int {
	fdct2d(blk)
	var zz [64]int
	for n := 0; n < 64; n++ {
		zz[unzigzag[n]] = int(math.Round(blk[n] / float64(q[n])))
	}
	// DC difference.
	diff := zz[0] - dcPred
	size := magnitudeBits(diff)
	bs.put(uint32(dcT.code[size]), uint(dcT.size[size]))
	if size > 0 {
		bs.put(magnitudeValue(diff, size), uint(size))
	}
	// AC run-length coding.
	run := 0
	for k := 1; k < 64; k++ {
		if zz[k] == 0 {
			run++
			continue
		}
		for run >= 16 {
			bs.put(uint32(acT.code[0xf0]), uint(acT.size[0xf0])) // ZRL
			run -= 16
		}
		s := magnitudeBits(zz[k])
		sym := byte(run<<4) | s
		bs.put(uint32(acT.code[sym]), uint(acT.size[sym]))
		bs.put(magnitudeValue(zz[k], s), uint(s))
		run = 0
	}
	if run > 0 {
		bs.put(uint32(acT.code[0x00]), uint(acT.size[0x00])) // EOB
	}
	return zz[0]
}

// magnitudeBits returns the JPEG category (bit length) of v.
func magnitudeBits(v int) byte {
	if v < 0 {
		v = -v
	}
	n := byte(0)
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// magnitudeValue returns the size-bit amplitude code for v (negative
// values use the one's-complement convention).
func magnitudeValue(v int, size byte) uint32 {
	if v < 0 {
		v += (1 << size) - 1
	}
	return uint32(v)
}
