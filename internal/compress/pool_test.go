package compress

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/img"
)

// Encode/Decode every registered codec from many goroutines while
// recycling the returned buffers; with -race this proves the pooled
// codec scratch path is safe for concurrent broker clients.
func TestCodecPoolConcurrent(t *testing.T) {
	frame := testFrame(64, 48)
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			codec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := codec.EncodeFrame(frame)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := codec.DecodeFrame(want)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						data, err := codec.EncodeFrame(frame)
						if err != nil {
							errs <- err
							return
						}
						got, err := codec.DecodeFrame(data)
						if err != nil {
							errs <- err
							return
						}
						Recycle(data)
						if got.W != ref.W || got.H != ref.H {
							errs <- fmt.Errorf("decoded %dx%d, want %dx%d", got.W, got.H, ref.W, ref.H)
							return
						}
						for j := range got.Pix {
							if got.Pix[j] != ref.Pix[j] {
								errs <- fmt.Errorf("byte %d differs under concurrency", j)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// Raw encode must not allocate a fresh output once the pool is warm.
func TestRawEncodeRecycles(t *testing.T) {
	frame := testFrame(32, 32)
	c := Raw{}
	before := Pools()
	// Other tests may have stocked the pool with undersized buffers, so
	// a single get/put round can still miss; a short encode/recycle loop
	// must converge on reuse.
	for i := 0; i < 10; i++ {
		data, err := c.EncodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		Recycle(data)
	}
	after := Pools()
	if after.Hits == before.Hits {
		t.Fatalf("raw encode loop never hit the pool: %+v -> %+v", before, after)
	}
}

func testFrame(w, h int) *img.Frame {
	f := img.NewFrame(w, h)
	for i := range f.Pix {
		f.Pix[i] = byte((i*7 + i/w) % 251)
	}
	return f
}
