package lzo

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip checks Compress/Decompress inversion on arbitrary
// inputs.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte("hello hello hello"))
	f.Add(bytes.Repeat([]byte{7}, 300))
	var c Codec
	f.Fuzz(func(t *testing.T, src []byte) {
		comp, err := c.Compress(src)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		got, err := c.Decompress(comp)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecompress checks that arbitrary byte streams never panic or
// allocate unboundedly — they either decode or error.
func FuzzDecompress(f *testing.F) {
	var c Codec
	good, _ := c.Compress([]byte("seed data for the corpus, repeated repeated"))
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := c.Decompress(data)
		if err == nil && len(out) > 1<<31 {
			t.Fatal("implausible output size accepted")
		}
	})
}
