// Package lzo implements an LZO1X-class byte compressor from scratch:
// a hash-chain-free LZ77 with a greedy parse, favoring compression and
// decompression speed over ratio, exactly the trade the paper picks
// LZO for ("favors speed over compression ratio", "decompression
// requires no extra memory").
//
// The token format follows the LZ4 layout (the modern codification of
// the LZO1X idea): each sequence is a token byte whose high nibble is
// the literal count and low nibble the match length minus 4 (15 marks
// an extension byte chain), followed by the literals, a 2-byte
// little-endian match offset, and any match-length extension bytes.
// The stream ends with a literal-only sequence. Decompression is a
// single pass of copies with no allocations beyond the output buffer.
package lzo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Codec is the LZO-style byte codec. The zero value is ready to use.
type Codec struct{}

// Name implements compress.ByteCodec.
func (Codec) Name() string { return "lzo" }

const (
	minMatch   = 4
	maxOffset  = 65535
	hashLog    = 16
	hashShift  = 64 - hashLog
	hashPrime  = 0x9e3779b185ebca87
	maxLiteral = 15
)

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("lzo: corrupt stream")

func hash4(u uint32) uint32 {
	return uint32((uint64(u) * hashPrime) >> hashShift)
}

func load32(b []byte, i int) uint32 { return binary.LittleEndian.Uint32(b[i:]) }

// tablePool recycles the 256 KiB match dictionary across Compress
// calls; a fresh per-call array is the dominant allocation of the
// whole LZO encode path. Pooled tables are re-zeroed on reuse, which
// costs a memset but spares the allocator and the GC the churn.
var tablePool = sync.Pool{
	New: func() any { return new([1 << hashLog]int32) },
}

// Compress implements compress.ByteCodec. The output starts with the
// decompressed length as a uvarint so Decompress can allocate exactly
// once.
func (Codec) Compress(src []byte) ([]byte, error) {
	out := make([]byte, 0, len(src)/2+16)
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(src)))
	out = append(out, lenBuf[:n]...)
	if len(src) == 0 {
		return out, nil
	}

	table := tablePool.Get().(*[1 << hashLog]int32) // position+1 of the last occurrence of each hash
	clear(table[:])
	defer tablePool.Put(table)
	anchor := 0 // start of pending literals
	i := 0
	limit := len(src) - minMatch
	for i <= limit {
		h := hash4(load32(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand >= 0 && i-cand <= maxOffset && load32(src, cand) == load32(src, i) {
			// Extend the match forward.
			mlen := minMatch
			for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
				mlen++
			}
			out = emitSequence(out, src[anchor:i], i-cand, mlen)
			// Insert a few positions inside the match to keep the
			// table warm (greedy, cheap).
			end := i + mlen
			for j := i + 1; j < end && j <= limit; j += 2 {
				table[hash4(load32(src, j))] = int32(j + 1)
			}
			i = end
			anchor = i
			continue
		}
		i++
	}
	// Trailing literals.
	out = emitSequence(out, src[anchor:], 0, 0)
	return out, nil
}

// emitSequence appends one token sequence. A zero mlen means a final
// literal-only sequence (no offset field).
func emitSequence(dst, literals []byte, offset, mlen int) []byte {
	litLen := len(literals)
	litCode := litLen
	if litCode >= maxLiteral {
		litCode = maxLiteral
	}
	if mlen == 0 {
		dst = append(dst, byte(litCode<<4))
		dst = appendExt(dst, litLen-maxLiteral, litCode == maxLiteral)
		return append(dst, literals...)
	}
	mCode := mlen - minMatch
	if mCode >= maxLiteral {
		mCode = maxLiteral
	}
	dst = append(dst, byte(litCode<<4|mCode))
	dst = appendExt(dst, litLen-maxLiteral, litCode == maxLiteral)
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	dst = appendExt(dst, mlen-minMatch-maxLiteral, mCode == maxLiteral)
	return dst
}

// appendExt writes the 255-chained extension bytes when the nibble
// saturated.
func appendExt(dst []byte, rem int, saturated bool) []byte {
	if !saturated {
		return dst
	}
	for rem >= 255 {
		dst = append(dst, 255)
		rem -= 255
	}
	return append(dst, byte(rem))
}

// Decompress implements compress.ByteCodec.
func (Codec) Decompress(src []byte) ([]byte, error) {
	total, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	if total > 1<<31 {
		return nil, fmt.Errorf("lzo: implausible decompressed size %d", total)
	}
	src = src[n:]
	out := make([]byte, 0, total)
	for len(src) > 0 {
		token := src[0]
		src = src[1:]
		litLen := int(token >> 4)
		var err error
		litLen, src, err = readExt(litLen, src)
		if err != nil {
			return nil, err
		}
		if litLen > len(src) {
			return nil, ErrCorrupt
		}
		out = append(out, src[:litLen]...)
		src = src[litLen:]
		if len(src) == 0 {
			break // final literal-only sequence
		}
		if len(src) < 2 {
			return nil, ErrCorrupt
		}
		offset := int(src[0]) | int(src[1])<<8
		src = src[2:]
		mlen := int(token & 0xf)
		mlen, src, err = readExt(mlen, src)
		if err != nil {
			return nil, err
		}
		mlen += minMatch
		if offset == 0 || offset > len(out) {
			return nil, ErrCorrupt
		}
		// Byte-by-byte copy: overlapping matches (offset < mlen)
		// replicate the pattern, which is the RLE case.
		pos := len(out) - offset
		for k := 0; k < mlen; k++ {
			out = append(out, out[pos+k])
		}
	}
	if uint64(len(out)) != total {
		return nil, fmt.Errorf("lzo: decompressed %d bytes, header says %d", len(out), total)
	}
	return out, nil
}

// readExt consumes extension bytes when code saturated at 15.
func readExt(code int, src []byte) (int, []byte, error) {
	if code != maxLiteral {
		return code, src, nil
	}
	for {
		if len(src) == 0 {
			return 0, nil, ErrCorrupt
		}
		b := src[0]
		src = src[1:]
		code += int(b)
		if b != 255 {
			return code, src, nil
		}
	}
}
