package lzo

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	var c Codec
	comp, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(comp)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(got))
	}
	return comp
}

func TestEmpty(t *testing.T) {
	comp := roundTrip(t, nil)
	if len(comp) == 0 {
		t.Fatal("empty input must still produce a header")
	}
}

func TestShortInputs(t *testing.T) {
	for n := 1; n < 16; n++ {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i * 37)
		}
		roundTrip(t, src)
	}
}

func TestAllZeros(t *testing.T) {
	src := make([]byte, 100_000)
	comp := roundTrip(t, src)
	if len(comp) > 1000 {
		t.Fatalf("100k zeros compressed to %d bytes — RLE path broken", len(comp))
	}
}

func TestRepeatedPattern(t *testing.T) {
	src := bytes.Repeat([]byte("volume rendering "), 5000)
	comp := roundTrip(t, src)
	if len(comp)*10 > len(src) {
		t.Fatalf("repetitive text compressed only to %d/%d", len(comp), len(src))
	}
}

func TestIncompressibleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 64*1024)
	rng.Read(src)
	comp := roundTrip(t, src)
	// Random data must expand only slightly.
	if len(comp) > len(src)+len(src)/16+64 {
		t.Fatalf("random data expanded to %d/%d", len(comp), len(src))
	}
}

func TestLongMatchExtension(t *testing.T) {
	// One literal, then a very long match requiring many extension bytes.
	src := append([]byte{42}, bytes.Repeat([]byte{7}, 10_000)...)
	roundTrip(t, src)
}

func TestLongLiteralExtension(t *testing.T) {
	// All-unique bytes force a long literal run (> 15, > 270).
	src := make([]byte, 1000)
	for i := range src {
		src[i] = byte(i*131 + i/256)
	}
	roundTrip(t, src)
}

func TestOverlappingMatchOffsets(t *testing.T) {
	// Period-1, 2, 3 patterns exercise overlapping copies.
	for _, period := range []int{1, 2, 3, 5} {
		src := make([]byte, 4096)
		for i := range src {
			src[i] = byte(i % period)
		}
		roundTrip(t, src)
	}
}

func TestFarOffsets(t *testing.T) {
	// Match just inside and content beyond the 64k window.
	block := make([]byte, 80)
	for i := range block {
		block[i] = byte(i + 100)
	}
	src := make([]byte, 0, 200_000)
	src = append(src, block...)
	rng := rand.New(rand.NewSource(2))
	filler := make([]byte, 70_000)
	rng.Read(filler)
	src = append(src, filler...)
	src = append(src, block...) // beyond window: must still round-trip
	roundTrip(t, src)
}

func TestRenderedImageLike(t *testing.T) {
	// Mostly-black frame with a colored disc, like a rendered volume.
	const W, H = 256, 256
	src := make([]byte, W*H*3)
	for y := 0; y < H; y++ {
		for x := 0; x < W; x++ {
			dx, dy := x-128, y-128
			if dx*dx+dy*dy < 60*60 {
				i := (y*W + x) * 3
				src[i] = byte(dx + 128)
				src[i+1] = byte(dy + 128)
				src[i+2] = 200
			}
		}
	}
	comp := roundTrip(t, src)
	if len(comp)*2 > len(src) {
		t.Fatalf("image-like data compressed only to %d/%d", len(comp), len(src))
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	var c Codec
	cases := [][]byte{
		{},                      // no header
		{0x80},                  // truncated uvarint
		{10, 0xf0},              // literal run past end
		{10, 0x04, 1},           // match with missing offset
		{10, 0x04, 1, 0, 0},     // offset 0
		{10, 0x04, 1, 255, 255}, // offset beyond output
		{5, 0x10, 1},            // says 5 bytes, delivers 1
	}
	for i, src := range cases {
		if _, err := c.Decompress(src); err == nil {
			t.Errorf("case %d: corrupt stream accepted", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	var c Codec
	f := func(src []byte) bool {
		comp, err := c.Compress(src)
		if err != nil {
			return false
		}
		got, err := c.Decompress(comp)
		if err != nil {
			return false
		}
		return bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Structured quick-check: random runs of repeats and literals, the
// adversarial shape for LZ token boundaries.
func TestRunsProperty(t *testing.T) {
	var c Codec
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var src []byte
		for len(src) < 5000 {
			if rng.Intn(2) == 0 {
				run := rng.Intn(300) + 1
				b := byte(rng.Intn(256))
				for i := 0; i < run; i++ {
					src = append(src, b)
				}
			} else {
				lit := make([]byte, rng.Intn(40)+1)
				rng.Read(lit)
				src = append(src, lit...)
			}
		}
		comp, err := c.Compress(src)
		if err != nil {
			return false
		}
		got, err := c.Decompress(comp)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	src := imageLike(512)
	var c Codec
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := imageLike(512)
	var c Codec
	comp, err := c.Compress(src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}

func imageLike(n int) []byte {
	src := make([]byte, n*n*3)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			dx, dy := x-n/2, y-n/2
			if dx*dx+dy*dy < n*n/16 {
				i := (y*n + x) * 3
				src[i] = byte(dx)
				src[i+1] = byte(dy)
				src[i+2] = 200
			}
		}
	}
	return src
}
