// Package compress defines the codec interfaces of the image-transport
// framework and the combinators the paper's display system uses: raw
// frames, byte-stream compressors applied to frames (LZO, BZIP), the
// lossy JPEG frame codec, and two-phase chains (JPEG+LZO, JPEG+BZIP)
// that squeeze the extra ~10–15% the paper found worthwhile on slow
// wide-area links.
package compress

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/img"
)

// ByteCodec compresses opaque byte streams (LZO, BZIP).
type ByteCodec interface {
	// Name identifies the codec in tables and wire headers.
	Name() string
	// Compress returns the compressed representation of src.
	Compress(src []byte) ([]byte, error)
	// Decompress inverts Compress.
	Decompress(src []byte) ([]byte, error)
}

// FrameCodec encodes whole RGB frames (raw, JPEG, or a chain).
type FrameCodec interface {
	// Name identifies the codec in tables and wire headers.
	Name() string
	// Lossless reports whether DecodeFrame(EncodeFrame(f)) == f.
	Lossless() bool
	// EncodeFrame serializes a frame.
	EncodeFrame(f *img.Frame) ([]byte, error)
	// DecodeFrame inverts EncodeFrame (up to loss for lossy codecs).
	DecodeFrame(data []byte) (*img.Frame, error)
}

// Buffer pool of the encode path. Frame encoders draw their output
// (and internal raw-serialization scratch) from here instead of
// allocating per frame; call sites that know an encoded payload is
// dead hand it back with Recycle. A buffer that escapes into a cache
// or is simply dropped is garbage-collected as usual — the pool is an
// optimization, never an ownership requirement.
var (
	bufPool sync.Pool // *[]byte

	bufHits   atomic.Int64
	bufMisses atomic.Int64
	bufPuts   atomic.Int64
)

// getBuf returns a length-n buffer (contents undefined) with pooled
// backing when available.
func getBuf(n int) []byte {
	if p, ok := bufPool.Get().(*[]byte); ok && cap(*p) >= n {
		bufHits.Add(1)
		return (*p)[:n]
	}
	bufMisses.Add(1)
	return make([]byte, n)
}

// Recycle returns an encoded payload (or codec scratch) to the buffer
// pool. Callers must not touch buf afterwards. Safe for buffers of
// any origin; nil and empty buffers are ignored.
func Recycle(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	bufPuts.Add(1)
	buf = buf[:0]
	bufPool.Put(&buf)
}

// PoolStats is a snapshot of the codec buffer pool counters.
type PoolStats struct {
	// Hits counts pool-satisfied buffer requests, Misses fresh
	// allocations, Puts buffers handed back via Recycle.
	Hits, Misses, Puts int64
}

// Pools reports the codec buffer pool counters.
func Pools() PoolStats {
	return PoolStats{Hits: bufHits.Load(), Misses: bufMisses.Load(), Puts: bufPuts.Load()}
}

// Raw is the uncompressed frame codec: an 8-byte header (width,
// height, little-endian uint32) followed by raw RGB. It doubles as the
// "X Window" baseline's payload format.
type Raw struct{}

// Name implements FrameCodec.
func (Raw) Name() string { return "raw" }

// Lossless implements FrameCodec.
func (Raw) Lossless() bool { return true }

// EncodeFrame implements FrameCodec. The output buffer is drawn from
// the package pool; callers that finish with it may Recycle it.
func (Raw) EncodeFrame(f *img.Frame) ([]byte, error) {
	out := getBuf(8 + len(f.Pix))
	binary.LittleEndian.PutUint32(out, uint32(f.W))
	binary.LittleEndian.PutUint32(out[4:], uint32(f.H))
	copy(out[8:], f.Pix)
	return out, nil
}

// DecodeFrame implements FrameCodec.
func (Raw) DecodeFrame(data []byte) (*img.Frame, error) {
	if len(data) < 8 {
		return nil, io.ErrUnexpectedEOF
	}
	w := int(binary.LittleEndian.Uint32(data))
	h := int(binary.LittleEndian.Uint32(data[4:]))
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("compress: implausible raw frame %dx%d", w, h)
	}
	if len(data) != 8+w*h*3 {
		return nil, fmt.Errorf("compress: raw frame payload %d != %d", len(data)-8, w*h*3)
	}
	f := img.NewFrame(w, h)
	copy(f.Pix, data[8:])
	return f, nil
}

// ByteFrame lifts a ByteCodec to a FrameCodec by compressing the raw
// frame serialization.
type ByteFrame struct{ C ByteCodec }

// Name implements FrameCodec.
func (b ByteFrame) Name() string { return b.C.Name() }

// Lossless implements FrameCodec.
func (ByteFrame) Lossless() bool { return true }

// EncodeFrame implements FrameCodec. The raw serialization is
// per-call scratch (the byte codec does not retain its input), so it
// cycles through the package pool.
func (b ByteFrame) EncodeFrame(f *img.Frame) ([]byte, error) {
	raw, err := Raw{}.EncodeFrame(f)
	if err != nil {
		return nil, err
	}
	out, err := b.C.Compress(raw)
	Recycle(raw)
	return out, err
}

// DecodeFrame implements FrameCodec.
func (b ByteFrame) DecodeFrame(data []byte) (*img.Frame, error) {
	raw, err := b.C.Decompress(data)
	if err != nil {
		return nil, err
	}
	f, err := Raw{}.DecodeFrame(raw)
	// Raw decoding copies the pixels out, so the decompression
	// scratch is dead here.
	Recycle(raw)
	return f, err
}

// Chain applies a byte codec to the output of a frame codec — the
// paper's two-phase compression (e.g. JPEG+LZO).
type Chain struct {
	F FrameCodec
	B ByteCodec
}

// Name implements FrameCodec.
func (c Chain) Name() string { return c.F.Name() + "+" + c.B.Name() }

// Lossless implements FrameCodec.
func (c Chain) Lossless() bool { return c.F.Lossless() }

// EncodeFrame implements FrameCodec. The inner phase-one encoding is
// scratch owned by the chain, so it cycles through the package pool.
func (c Chain) EncodeFrame(f *img.Frame) ([]byte, error) {
	inner, err := c.F.EncodeFrame(f)
	if err != nil {
		return nil, err
	}
	out, err := c.B.Compress(inner)
	Recycle(inner)
	return out, err
}

// DecodeFrame implements FrameCodec.
func (c Chain) DecodeFrame(data []byte) (*img.Frame, error) {
	inner, err := c.B.Decompress(data)
	if err != nil {
		return nil, err
	}
	f, err := c.F.DecodeFrame(inner)
	Recycle(inner)
	return f, err
}

// CodecObservation describes one timed codec call, reported to the
// package observer: which codec ran, whether it encoded or decoded,
// the raw and encoded payload sizes, and how long it took.
type CodecObservation struct {
	Codec string
	Op    string // "encode" or "decode"
	// RawBytes is the uncompressed side (W*H*3); CodedBytes the
	// compressed side.
	RawBytes, CodedBytes int
	Duration             time.Duration
}

var (
	codecObsMu sync.RWMutex
	codecObs   func(CodecObservation)
)

// SetObserver installs the codec-call observer (nil disables). The
// observability layer uses it to feed per-codec encode/decode
// histograms without this package importing it.
func SetObserver(f func(CodecObservation)) {
	codecObsMu.Lock()
	codecObs = f
	codecObsMu.Unlock()
}

func observe(o CodecObservation) {
	codecObsMu.RLock()
	f := codecObs
	codecObsMu.RUnlock()
	if f != nil {
		f(o)
	}
}

// timed wraps a FrameCodec so every call reports to the observer.
type timed struct{ fc FrameCodec }

// Name implements FrameCodec.
func (t timed) Name() string { return t.fc.Name() }

// Lossless implements FrameCodec.
func (t timed) Lossless() bool { return t.fc.Lossless() }

// EncodeFrame implements FrameCodec.
func (t timed) EncodeFrame(f *img.Frame) ([]byte, error) {
	t0 := time.Now()
	data, err := t.fc.EncodeFrame(f)
	if err != nil {
		return nil, err
	}
	observe(CodecObservation{
		Codec: t.fc.Name(), Op: "encode",
		RawBytes: len(f.Pix), CodedBytes: len(data),
		Duration: time.Since(t0),
	})
	return data, nil
}

// DecodeFrame implements FrameCodec.
func (t timed) DecodeFrame(data []byte) (*img.Frame, error) {
	t0 := time.Now()
	f, err := t.fc.DecodeFrame(data)
	if err != nil {
		return nil, err
	}
	observe(CodecObservation{
		Codec: t.fc.Name(), Op: "decode",
		RawBytes: len(f.Pix), CodedBytes: len(data),
		Duration: time.Since(t0),
	})
	return f, nil
}

// Instrument wraps a frame codec so its calls report to the package
// observer; when no observer is installed the wrapper's overhead is a
// clock read. Already-instrumented codecs pass through unchanged.
func Instrument(fc FrameCodec) FrameCodec {
	if _, ok := fc.(timed); ok {
		return fc
	}
	return timed{fc}
}

// registry maps codec names to constructors so the display daemon can
// switch codecs from a control message.
var (
	regMu    sync.RWMutex
	registry = map[string]func() (FrameCodec, error){}
)

// Register installs a frame-codec constructor under name. Subpackages
// register themselves; the codecs package ties them together.
func Register(name string, mk func() (FrameCodec, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = mk
}

// ByName constructs the named frame codec, instrumented so its calls
// report to the package observer.
func ByName(name string) (FrameCodec, error) {
	regMu.RLock()
	mk, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q (have %v)", name, Names())
	}
	fc, err := mk()
	if err != nil {
		return nil, err
	}
	return Instrument(fc), nil
}

// Names lists the registered codec names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
