package bzp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec is the bzip2-class block codec. The zero value uses the
// default block size.
type Codec struct {
	// BlockSize caps the bytes transformed per BWT block; 0 means the
	// 256 KiB default.
	BlockSize int
}

// Name implements compress.ByteCodec.
func (Codec) Name() string { return "bzip" }

const defaultBlockSize = 256 << 10

// Symbol space of the post-MTF, zero-run-length stream: RUNA and RUNB
// encode zero runs in bijective base 2 (as bzip2 does), values 1..255
// shift up by one, and EOB terminates the block.
const (
	symRUNA   = 0
	symRUNB   = 1
	symShift  = 1 // MTF value v (>=1) becomes symbol v+symShift
	symEOB    = 257
	alphabet  = 258
	headerLen = (alphabet + 1) / 2 // 4-bit code lengths, packed
)

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("bzp: corrupt stream")

// Compress implements compress.ByteCodec.
func (c Codec) Compress(src []byte) ([]byte, error) {
	bs := c.BlockSize
	if bs <= 0 {
		bs = defaultBlockSize
	}
	var out []byte
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(src)))
	out = append(out, lenBuf[:n]...)
	for len(src) > 0 {
		blk := src
		if len(blk) > bs {
			blk = blk[:bs]
		}
		src = src[len(blk):]
		out = appendBlock(out, blk)
	}
	return out, nil
}

func appendBlock(out, blk []byte) []byte {
	t, primary := bwt(blk)
	syms := rleEncode(mtfEncode(t))
	syms = append(syms, symEOB)

	freqs := make([]int, alphabet)
	for _, s := range syms {
		freqs[s]++
	}
	lens := buildCodeLengths(freqs)
	codes := canonicalCodes(lens)

	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(blk)))
	out = append(out, lenBuf[:n]...)
	n = binary.PutUvarint(lenBuf[:], uint64(primary))
	out = append(out, lenBuf[:n]...)
	// Packed 4-bit code lengths.
	for i := 0; i < alphabet; i += 2 {
		hi := lens[i]
		lo := uint8(0)
		if i+1 < alphabet {
			lo = lens[i+1]
		}
		out = append(out, hi<<4|lo)
	}
	var bw bitWriter
	for _, s := range syms {
		bw.writeBits(codes[s], uint(lens[s]))
	}
	bw.flush()
	n = binary.PutUvarint(lenBuf[:], uint64(len(bw.buf)))
	out = append(out, lenBuf[:n]...)
	return append(out, bw.buf...)
}

// Decompress implements compress.ByteCodec.
func (Codec) Decompress(src []byte) ([]byte, error) {
	total, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	if total > 1<<31 {
		return nil, fmt.Errorf("bzp: implausible decompressed size %d", total)
	}
	src = src[n:]
	out := make([]byte, 0, total)
	for uint64(len(out)) < total {
		var err error
		out, src, err = decodeBlock(out, src)
		if err != nil {
			return nil, err
		}
	}
	if uint64(len(out)) != total {
		return nil, ErrCorrupt
	}
	return out, nil
}

func decodeBlock(out, src []byte) ([]byte, []byte, error) {
	origLen, n := binary.Uvarint(src)
	if n <= 0 || origLen == 0 || origLen > 1<<31 {
		return nil, nil, ErrCorrupt
	}
	src = src[n:]
	primary, n := binary.Uvarint(src)
	if n <= 0 || primary > origLen {
		return nil, nil, ErrCorrupt
	}
	src = src[n:]
	if len(src) < headerLen {
		return nil, nil, ErrCorrupt
	}
	lens := make([]uint8, alphabet)
	for i := 0; i < alphabet; i += 2 {
		b := src[i/2]
		lens[i] = b >> 4
		if i+1 < alphabet {
			lens[i+1] = b & 0xf
		}
	}
	src = src[headerLen:]
	streamLen, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, nil, ErrCorrupt
	}
	src = src[n:]
	if uint64(len(src)) < streamLen {
		return nil, nil, ErrCorrupt
	}
	stream := src[:streamLen]
	src = src[streamLen:]

	dec, err := newHuffDecoder(lens)
	if err != nil {
		return nil, nil, err
	}
	br := &bitReader{src: stream}
	syms := make([]int, 0, origLen)
	for {
		s, err := dec.decodeSym(br)
		if err != nil {
			return nil, nil, err
		}
		if s == symEOB {
			break
		}
		syms = append(syms, s)
		if uint64(len(syms)) > 2*origLen+64 {
			return nil, nil, ErrCorrupt
		}
	}
	mtf, err := rleDecode(syms)
	if err != nil {
		return nil, nil, err
	}
	t := mtfDecode(mtf)
	if uint64(len(t)) != origLen {
		return nil, nil, fmt.Errorf("bzp: block inflated to %d, want %d", len(t), origLen)
	}
	return append(out, unbwt(t, int(primary))...), src, nil
}

// mtfEncode applies move-to-front coding.
func mtfEncode(src []byte) []byte {
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	out := make([]byte, len(src))
	for i, b := range src {
		var j int
		for order[j] != b {
			j++
		}
		out[i] = byte(j)
		copy(order[1:j+1], order[:j])
		order[0] = b
	}
	return out
}

// mtfDecode inverts mtfEncode.
func mtfDecode(src []byte) []byte {
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	out := make([]byte, len(src))
	for i, idx := range src {
		b := order[idx]
		out[i] = b
		copy(order[1:int(idx)+1], order[:idx])
		order[0] = b
	}
	return out
}

// rleEncode converts the MTF byte stream into run-length symbols: zero
// runs become RUNA/RUNB digits in bijective base 2; nonzero values
// shift up by one.
func rleEncode(src []byte) []int {
	out := make([]int, 0, len(src)/2+8)
	run := 0
	flush := func() {
		for run > 0 {
			if run&1 == 1 {
				out = append(out, symRUNA)
				run = (run - 1) / 2
			} else {
				out = append(out, symRUNB)
				run = (run - 2) / 2
			}
		}
	}
	for _, b := range src {
		if b == 0 {
			run++
			continue
		}
		flush()
		out = append(out, int(b)+symShift)
	}
	flush()
	return out
}

// rleDecode inverts rleEncode.
func rleDecode(syms []int) ([]byte, error) {
	var out []byte
	run := uint64(0)
	place := uint64(1)
	flush := func() error {
		if run > 1<<31 {
			return ErrCorrupt
		}
		for i := uint64(0); i < run; i++ {
			out = append(out, 0)
		}
		run = 0
		place = 1
		return nil
	}
	for _, s := range syms {
		switch {
		case s == symRUNA:
			run += place
			place *= 2
		case s == symRUNB:
			run += 2 * place
			place *= 2
		case s >= symShift+1 && s <= 255+symShift:
			if err := flush(); err != nil {
				return nil, err
			}
			out = append(out, byte(s-symShift))
		default:
			return nil, fmt.Errorf("bzp: bad symbol %d", s)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}
