package bzp

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip checks Compress/Decompress inversion on arbitrary
// inputs across block boundaries.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0})
	f.Add([]byte("abracadabra"))
	f.Add(bytes.Repeat([]byte{0, 1}, 600))
	c := Codec{BlockSize: 512}
	f.Fuzz(func(t *testing.T, src []byte) {
		comp, err := c.Compress(src)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		got, err := c.Decompress(comp)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecompress: arbitrary streams must never panic.
func FuzzDecompress(f *testing.F) {
	var c Codec
	good, _ := c.Compress([]byte("corpus seed corpus seed corpus seed"))
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = c.Decompress(data)
	})
}

// FuzzBWT checks the transform inversion directly.
func FuzzBWT(f *testing.F) {
	f.Add([]byte("banana"))
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) == 0 {
			return
		}
		tr, primary := bwt(src)
		got := unbwt(tr, primary)
		if !bytes.Equal(got, src) {
			t.Fatal("BWT inversion failed")
		}
	})
}
