package bzp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSuffixArraySmall(t *testing.T) {
	// "banana": suffixes of banana$ sorted:
	// $ (6), a$ (5), ana$ (3), anana$ (1), banana$ (0), na$ (4), nana$ (2)
	sa := suffixArray([]byte("banana"))
	want := []int32{6, 5, 3, 1, 0, 4, 2}
	if len(sa) != len(want) {
		t.Fatalf("len %d", len(sa))
	}
	for i := range want {
		if sa[i] != want[i] {
			t.Fatalf("sa = %v, want %v", sa, want)
		}
	}
}

func TestSuffixArrayRepetitive(t *testing.T) {
	s := bytes.Repeat([]byte{7}, 5000)
	sa := suffixArray(s)
	// Suffixes of aaaa...$ sort by decreasing start: $, a$, aa$, ...
	for i, pos := range sa {
		if int(pos) != len(s)-i {
			t.Fatalf("repetitive SA wrong at %d: %d", i, pos)
		}
	}
}

func TestBWTRoundTrip(t *testing.T) {
	cases := [][]byte{
		[]byte("banana"),
		[]byte("a"),
		[]byte("abracadabra abracadabra"),
		bytes.Repeat([]byte{0}, 1000),
		{255, 0, 128, 3, 3, 3, 0, 0},
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		b := make([]byte, rng.Intn(3000)+1)
		rng.Read(b)
		cases = append(cases, b)
	}
	for i, src := range cases {
		tr, primary := bwt(src)
		if len(tr) != len(src) {
			t.Fatalf("case %d: transform length %d != %d", i, len(tr), len(src))
		}
		got := unbwt(tr, primary)
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: BWT round trip failed", i)
		}
	}
}

func TestBWTKnown(t *testing.T) {
	// BWT of "banana" with sentinel: last column of sorted rotations
	// of banana$ is annb$aa; dropping $ gives "annbaa" with primary 4.
	tr, primary := bwt([]byte("banana"))
	if string(tr) != "annbaa" || primary != 4 {
		t.Fatalf("bwt(banana) = %q primary %d", tr, primary)
	}
}

func TestMTFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		src := make([]byte, rng.Intn(2000))
		rng.Read(src)
		if got := mtfDecode(mtfEncode(src)); !bytes.Equal(got, src) {
			t.Fatal("MTF round trip failed")
		}
	}
}

func TestMTFKnown(t *testing.T) {
	// First occurrence of byte b encodes as its current list position.
	got := mtfEncode([]byte{0, 0, 0, 1, 1, 0})
	want := []byte{0, 0, 0, 1, 0, 1}
	if !bytes.Equal(got, want) {
		t.Fatalf("mtf = %v, want %v", got, want)
	}
}

func TestRLERoundTrip(t *testing.T) {
	cases := [][]byte{
		{},
		{0},
		{0, 0, 0, 0, 0},
		{1, 2, 3},
		{0, 0, 5, 0, 0, 0, 9, 0},
		bytes.Repeat([]byte{0}, 100000),
	}
	for i, src := range cases {
		got, err := rleDecode(rleEncode(src))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) == 0 && len(src) == 0 {
			continue
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: RLE round trip failed: %v -> %v", i, src, got)
		}
	}
}

func TestHuffmanRoundTrip(t *testing.T) {
	freqs := make([]int, alphabet)
	freqs[0] = 1000
	freqs[1] = 500
	freqs[50] = 3
	freqs[257] = 1
	lens := buildCodeLengths(freqs)
	codes := canonicalCodes(lens)
	dec, err := newHuffDecoder(lens)
	if err != nil {
		t.Fatal(err)
	}
	var bw bitWriter
	msg := []int{0, 1, 50, 0, 0, 257, 1, 50}
	for _, s := range msg {
		if lens[s] == 0 {
			t.Fatalf("symbol %d has no code", s)
		}
		bw.writeBits(codes[s], uint(lens[s]))
	}
	bw.flush()
	br := &bitReader{src: bw.buf}
	for i, want := range msg {
		got, err := dec.decodeSym(br)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("symbol %d: got %d want %d", i, got, want)
		}
	}
}

func TestHuffmanLengthLimit(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; lengths must be
	// clamped to maxCodeLen.
	freqs := make([]int, 40)
	a, b := 1, 1
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
		if a > 1<<40 {
			a = 1 << 40
		}
	}
	lens := buildCodeLengths(freqs)
	for sym, l := range lens {
		if l > maxCodeLen {
			t.Fatalf("symbol %d length %d > %d", sym, l, maxCodeLen)
		}
		if freqs[sym] > 0 && l == 0 {
			t.Fatalf("symbol %d has frequency but no code", sym)
		}
	}
	if _, err := newHuffDecoder(lens); err != nil {
		t.Fatalf("length-limited code not decodable: %v", err)
	}
}

func TestHuffDecoderRejectsOversubscribed(t *testing.T) {
	lens := make([]uint8, 4)
	lens[0], lens[1], lens[2] = 1, 1, 1 // 3 codes of length 1: impossible
	if _, err := newHuffDecoder(lens); err == nil {
		t.Fatal("want over-subscription error")
	}
}

func roundTrip(t *testing.T, c Codec, src []byte) []byte {
	t.Helper()
	comp, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(comp)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(got))
	}
	return comp
}

func TestCodecRoundTrip(t *testing.T) {
	var c Codec
	roundTrip(t, c, nil)
	roundTrip(t, c, []byte{42})
	roundTrip(t, c, []byte("the quick brown fox jumps over the lazy dog"))
	rng := rand.New(rand.NewSource(7))
	big := make([]byte, 300_000) // spans two default blocks
	rng.Read(big)
	roundTrip(t, c, big)
}

func TestCodecMultiBlock(t *testing.T) {
	c := Codec{BlockSize: 1024}
	src := bytes.Repeat([]byte("0123456789abcdef"), 1000) // 16000 bytes, 16 blocks
	comp := roundTrip(t, c, src)
	if len(comp) >= len(src) {
		t.Fatalf("repetitive input did not compress: %d >= %d", len(comp), len(src))
	}
}

func TestCodecCompressesText(t *testing.T) {
	var c Codec
	src := bytes.Repeat([]byte("volume rendering over wide area networks "), 2000)
	comp := roundTrip(t, c, src)
	if len(comp)*20 > len(src) {
		t.Fatalf("text compressed only to %d/%d", len(comp), len(src))
	}
}

func TestCodecZeros(t *testing.T) {
	var c Codec
	comp := roundTrip(t, c, make([]byte, 200_000))
	if len(comp) > 2000 {
		t.Fatalf("zeros compressed to %d bytes", len(comp))
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	var c Codec
	good, err := c.Compress([]byte("hello hello hello hello"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(nil); err == nil {
		t.Error("nil stream accepted")
	}
	if _, err := c.Decompress(good[:len(good)/2]); err == nil {
		t.Error("truncated stream accepted")
	}
	bad := append([]byte{}, good...)
	bad[len(bad)-1] ^= 0xff
	if _, err := c.Decompress(bad); err == nil {
		// Flipping the final byte may hit padding; flip an earlier one.
		bad2 := append([]byte{}, good...)
		bad2[len(bad2)/2] ^= 0xff
		if _, err := c.Decompress(bad2); err == nil {
			t.Error("corrupt stream accepted (both tails)")
		}
	}
}

func TestCodecProperty(t *testing.T) {
	c := Codec{BlockSize: 512}
	f := func(src []byte) bool {
		comp, err := c.Compress(src)
		if err != nil {
			return false
		}
		got, err := c.Decompress(comp)
		if err != nil {
			return false
		}
		return bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BZIP must beat LZO-style ratios on structured data (the paper's
// Table 1 ordering: BZIP < LZO in bytes).
func TestBeatsSimpleLZOnText(t *testing.T) {
	var c Codec
	src := make([]byte, 0, 120_000)
	rng := rand.New(rand.NewSource(8))
	words := []string{"vorticity", "render", "volume", "frame", "pixel", "network"}
	for len(src) < 100_000 {
		src = append(src, words[rng.Intn(len(words))]...)
		src = append(src, ' ')
	}
	comp, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	// Expect strong compression on word soup (entropy ~2.6 bits/word-char).
	if len(comp)*3 > len(src) {
		t.Fatalf("word soup compressed only to %d/%d", len(comp), len(src))
	}
}

func BenchmarkCompress64k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	src := make([]byte, 64<<10)
	for i := range src {
		if i%3 == 0 {
			src[i] = byte(rng.Intn(8))
		}
	}
	var c Codec
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress64k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	src := make([]byte, 64<<10)
	for i := range src {
		if i%3 == 0 {
			src[i] = byte(rng.Intn(8))
		}
	}
	var c Codec
	comp, err := c.Compress(src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}
