// Package bzp implements a bzip2-class block compressor from scratch:
// Burrows–Wheeler transform (via a prefix-doubling suffix array),
// move-to-front coding, zero-run-length coding (RUNA/RUNB, as in
// bzip2), and canonical Huffman entropy coding. It trades speed for
// ratio — the paper's BZIP role: "very good lossless compression,
// better than gzip", used where the link, not the CPU, is the
// bottleneck.
package bzp

// suffixArray computes the suffix array of s using prefix doubling
// with stable counting (radix) sorts — O(n log n), robust on highly
// repetitive input, which raw rotation sorting is not. A virtual
// sentinel smaller than every byte terminates the string, so the
// returned array has len(s)+1 entries with sa[0] == len(s).
func suffixArray(s []byte) []int32 {
	n := len(s) + 1
	sa := make([]int32, n)
	rank := make([]int32, n)
	newRank := make([]int32, n)
	tmp := make([]int32, n)
	// Keys are ranks+1; initial ranks are byte values (up to 256), so
	// the counting array must cover max(n, 257)+2 slots.
	keyMax := int32(n)
	if keyMax < 257 {
		keyMax = 257
	}
	count := make([]int32, keyMax+2)
	for i := 0; i < len(s); i++ {
		sa[i] = int32(i)
		rank[i] = int32(s[i]) + 1
	}
	sa[n-1] = int32(n - 1)
	rank[n-1] = 0 // sentinel

	// radixPass stably sorts src into dst by key(i) in [0, n+1].
	radixPass := func(src, dst []int32, key func(int32) int32, keyMax int32) {
		for i := int32(0); i <= keyMax+1; i++ {
			count[i] = 0
		}
		for _, v := range src {
			count[key(v)+1]++
		}
		for i := int32(1); i <= keyMax+1; i++ {
			count[i] += count[i-1]
		}
		for _, v := range src {
			k := key(v)
			dst[count[k]] = v
			count[k]++
		}
	}

	for k := 1; ; k *= 2 {
		kk := int32(k)
		// Second key: rank[i+k]+1, or 0 past the end.
		second := func(i int32) int32 {
			if int(i)+k < n {
				return rank[i+kk] + 1
			}
			return 0
		}
		first := func(i int32) int32 { return rank[i] }
		radixPass(sa, tmp, second, keyMax)
		radixPass(tmp, sa, first, keyMax)
		newRank[sa[0]] = 0
		for i := 1; i < n; i++ {
			prev, cur := sa[i-1], sa[i]
			newRank[cur] = newRank[prev]
			if rank[prev] != rank[cur] || second(prev) != second(cur) {
				newRank[cur]++
			}
		}
		copy(rank, newRank)
		if int(rank[sa[n-1]]) == n-1 {
			break
		}
	}
	return sa
}

// bwt returns the Burrows–Wheeler transform of s and the primary
// index (the output position of the sentinel's predecessor row, needed
// to invert). The transform string has len(s) bytes: the sentinel
// itself is omitted, its position recorded in primary.
func bwt(s []byte) (out []byte, primary int) {
	if len(s) == 0 {
		return nil, 0
	}
	sa := suffixArray(s)
	out = make([]byte, 0, len(s))
	for i, pos := range sa {
		if pos == 0 {
			// Row starting at s[0]: its last column is the sentinel;
			// skip it and remember where it was.
			primary = i
			continue
		}
		out = append(out, s[pos-1])
	}
	return out, primary
}

// unbwt inverts the transform given the primary index.
func unbwt(t []byte, primary int) []byte {
	n := len(t)
	if n == 0 {
		return nil
	}
	// Conceptually the first column is sort(sentinel + t). The
	// sentinel occupies first-column row 0; transform rows at index >=
	// primary correspond to suffix rows shifted by one because the
	// sentinel row was removed from the output.
	var count [256]int
	for _, b := range t {
		count[b]++
	}
	// first[b]: row in the first column where byte b starts (row 0 is
	// the sentinel).
	var first [256]int
	sum := 1
	for b := 0; b < 256; b++ {
		first[b] = sum
		sum += count[b]
	}
	// next[i] maps a first-column row to the first-column row of the
	// following character. Build LF mapping from the transform.
	next := make([]int32, n+1)
	// The sentinel occupies last-column row `primary` and first-column
	// row 0, so the row after the sentinel row is the primary row.
	next[0] = int32(primary)
	var seen [256]int
	for i, b := range t {
		// Transform index i corresponds to conceptual rotation row:
		// rows >= primary are shifted down by one.
		row := i
		if i >= primary {
			row = i + 1
		}
		next[first[b]+seen[b]] = int32(row)
		seen[b]++
	}
	out := make([]byte, n)
	// Start from row 0 (the sentinel row); its next is the row of
	// s[0].
	row := next[0]
	for k := 0; k < n; k++ {
		// The first character of a row is the byte whose first-column
		// bucket contains it.
		out[k] = firstByte(&first, int(row))
		row = next[row]
	}
	return out
}

// firstByte returns the byte whose first-column bucket contains row.
func firstByte(first *[256]int, row int) byte {
	// Binary search over bucket starts.
	lo, hi := 0, 255
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if first[mid] <= row {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return byte(lo)
}
