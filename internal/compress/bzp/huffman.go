package bzp

import (
	"container/heap"
	"errors"
	"fmt"
)

// maxCodeLen bounds Huffman code lengths so the table header stores 4
// bits per symbol.
const maxCodeLen = 15

// bitWriter packs bits MSB-first into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  uint64
	nCur uint
}

func (w *bitWriter) writeBits(v uint32, n uint) {
	w.cur = w.cur<<n | uint64(v)&((1<<n)-1)
	w.nCur += n
	for w.nCur >= 8 {
		w.nCur -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nCur))
	}
}

func (w *bitWriter) flush() {
	if w.nCur > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.nCur)))
		w.nCur = 0
	}
	w.cur = 0
}

// bitReader consumes bits MSB-first.
type bitReader struct {
	src  []byte
	pos  int
	cur  uint64
	nCur uint
}

var errOutOfBits = errors.New("bzp: bitstream exhausted")

func (r *bitReader) readBits(n uint) (uint32, error) {
	for r.nCur < n {
		if r.pos >= len(r.src) {
			return 0, errOutOfBits
		}
		r.cur = r.cur<<8 | uint64(r.src[r.pos])
		r.pos++
		r.nCur += 8
	}
	r.nCur -= n
	return uint32(r.cur>>r.nCur) & ((1 << n) - 1), nil
}

// buildCodeLengths computes Huffman code lengths for freqs, limited to
// maxCodeLen by frequency-halving rebuilds (the zlib trick); symbols
// with zero frequency get length 0.
func buildCodeLengths(freqs []int) []uint8 {
	f := make([]int64, len(freqs))
	for i, v := range freqs {
		f[i] = int64(v)
	}
	for {
		lens := huffLengths(f)
		maxLen := uint8(0)
		for _, l := range lens {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen <= maxCodeLen {
			return lens
		}
		// Flatten the distribution and retry.
		for i := range f {
			if f[i] > 0 {
				f[i] = (f[i] + 1) / 2
			}
		}
	}
}

type hNode struct {
	freq        int64
	sym         int // -1 for internal
	left, right int // node indices
}

type hHeap struct {
	nodes *[]hNode
	idx   []int
}

func (h hHeap) Len() int { return len(h.idx) }
func (h hHeap) Less(a, b int) bool {
	na, nb := (*h.nodes)[h.idx[a]], (*h.nodes)[h.idx[b]]
	if na.freq != nb.freq {
		return na.freq < nb.freq
	}
	return h.idx[a] < h.idx[b] // deterministic ties
}
func (h hHeap) Swap(a, b int) { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *hHeap) Push(x any)   { h.idx = append(h.idx, x.(int)) }
func (h *hHeap) Pop() any     { v := h.idx[len(h.idx)-1]; h.idx = h.idx[:len(h.idx)-1]; return v }

// huffLengths builds an unrestricted Huffman tree and returns code
// lengths per symbol.
func huffLengths(freqs []int64) []uint8 {
	lens := make([]uint8, len(freqs))
	nodes := make([]hNode, 0, 2*len(freqs))
	h := &hHeap{nodes: &nodes}
	for sym, fr := range freqs {
		if fr > 0 {
			nodes = append(nodes, hNode{freq: fr, sym: sym, left: -1, right: -1})
			h.idx = append(h.idx, len(nodes)-1)
		}
	}
	switch len(h.idx) {
	case 0:
		return lens
	case 1:
		lens[nodes[h.idx[0]].sym] = 1
		return lens
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		nodes = append(nodes, hNode{freq: nodes[a].freq + nodes[b].freq, sym: -1, left: a, right: b})
		heap.Push(h, len(nodes)-1)
	}
	root := h.idx[0]
	// Depth-first depth assignment.
	type item struct {
		node  int
		depth uint8
	}
	stack := []item{{root, 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[it.node]
		if nd.sym >= 0 {
			lens[nd.sym] = it.depth
			continue
		}
		stack = append(stack, item{nd.left, it.depth + 1}, item{nd.right, it.depth + 1})
	}
	return lens
}

// canonicalCodes assigns canonical codes (shorter first, then symbol
// order) from lengths.
func canonicalCodes(lens []uint8) []uint32 {
	codes := make([]uint32, len(lens))
	var blCount [maxCodeLen + 1]int
	for _, l := range lens {
		blCount[l]++
	}
	var nextCode [maxCodeLen + 2]uint32
	code := uint32(0)
	blCount[0] = 0
	for b := 1; b <= maxCodeLen; b++ {
		code = (code + uint32(blCount[b-1])) << 1
		nextCode[b] = code
	}
	for sym, l := range lens {
		if l != 0 {
			codes[sym] = nextCode[l]
			nextCode[l]++
		}
	}
	return codes
}

// huffDecoder decodes canonical codes bit by bit using per-length
// first-code/first-symbol tables (the classic canonical decode).
type huffDecoder struct {
	// For each length l: firstCode[l], firstSym[l] and count[l].
	firstCode [maxCodeLen + 1]uint32
	count     [maxCodeLen + 1]int
	syms      []int // symbols sorted by (length, symbol)
	offset    [maxCodeLen + 1]int
	maxLen    uint8
}

func newHuffDecoder(lens []uint8) (*huffDecoder, error) {
	d := &huffDecoder{}
	for sym, l := range lens {
		if l > maxCodeLen {
			return nil, fmt.Errorf("bzp: code length %d for symbol %d", l, sym)
		}
		if l > 0 {
			d.count[l]++
			if l > d.maxLen {
				d.maxLen = l
			}
		}
	}
	// Kraft check: the lengths must describe a prefix code.
	var kraft uint64
	for l := 1; l <= maxCodeLen; l++ {
		kraft += uint64(d.count[l]) << (maxCodeLen - l)
	}
	if kraft > 1<<maxCodeLen {
		return nil, errors.New("bzp: over-subscribed code")
	}
	code := uint32(0)
	idx := 0
	for l := 1; l <= int(d.maxLen); l++ {
		code = (code + uint32(d.count[l-1])) << 1
		d.firstCode[l] = code
		d.offset[l] = idx
		idx += d.count[l]
	}
	d.syms = make([]int, idx)
	pos := make([]int, maxCodeLen+1)
	for sym, l := range lens {
		if l > 0 {
			d.syms[d.offset[l]+pos[l]] = sym
			pos[l]++
		}
	}
	return d, nil
}

// decodeSym reads one symbol.
func (d *huffDecoder) decodeSym(r *bitReader) (int, error) {
	code := uint32(0)
	for l := 1; l <= int(d.maxLen); l++ {
		b, err := r.readBits(1)
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		if d.count[l] > 0 && code < d.firstCode[l]+uint32(d.count[l]) && code >= d.firstCode[l] {
			return d.syms[d.offset[l]+int(code-d.firstCode[l])], nil
		}
	}
	return 0, errors.New("bzp: invalid Huffman code")
}
