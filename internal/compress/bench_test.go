package compress

import (
	"testing"
)

// Per-codec frame encode benchmarks; SetBytes is the raw frame size so
// the ns/op column converts to raw MB/s throughput.
func BenchmarkEncodeFrame(b *testing.B) {
	frame := testFrame(256, 256)
	for _, name := range Names() {
		codec, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(frame.Pix)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := codec.EncodeFrame(frame)
				if err != nil {
					b.Fatal(err)
				}
				Recycle(data)
			}
		})
	}
}

func BenchmarkDecodeFrame(b *testing.B) {
	frame := testFrame(256, 256)
	for _, name := range Names() {
		codec, err := ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		data, err := codec.EncodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(frame.Pix)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.DecodeFrame(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
