package compress

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/img"
)

func TestRawRoundTrip(t *testing.T) {
	f := img.NewFrame(7, 5)
	for i := range f.Pix {
		f.Pix[i] = byte(i * 3)
	}
	data, err := Raw{}.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8+7*5*3 {
		t.Fatalf("raw size %d", len(data))
	}
	got, err := Raw{}.DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f) {
		t.Fatal("raw round trip mismatch")
	}
}

func TestRawDecodeErrors(t *testing.T) {
	if _, err := (Raw{}).DecodeFrame(nil); err == nil {
		t.Fatal("nil accepted")
	}
	// Huge claimed dimensions.
	bad := make([]byte, 8)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := (Raw{}).DecodeFrame(bad); err == nil {
		t.Fatal("implausible dims accepted")
	}
}

// xorCodec is a trivial ByteCodec for combinator tests.
type xorCodec struct{ fail bool }

func (xorCodec) Name() string { return "xor" }
func (c xorCodec) Compress(src []byte) ([]byte, error) {
	if c.fail {
		return nil, errors.New("boom")
	}
	out := make([]byte, len(src))
	for i, b := range src {
		out[i] = b ^ 0x55
	}
	return out, nil
}
func (c xorCodec) Decompress(src []byte) ([]byte, error) { return c.Compress(src) }

func TestByteFrameLift(t *testing.T) {
	f := img.NewFrame(3, 3)
	f.Pix[0] = 200
	bf := ByteFrame{C: xorCodec{}}
	if bf.Name() != "xor" || !bf.Lossless() {
		t.Fatal("metadata")
	}
	data, err := bf.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	// Must actually be transformed, not raw.
	raw, _ := Raw{}.EncodeFrame(f)
	if bytes.Equal(data, raw) {
		t.Fatal("byte codec not applied")
	}
	got, err := bf.DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f) {
		t.Fatal("round trip mismatch")
	}
}

func TestChainPropagatesErrors(t *testing.T) {
	ch := Chain{F: Raw{}, B: xorCodec{fail: true}}
	if _, err := ch.EncodeFrame(img.NewFrame(2, 2)); err == nil {
		t.Fatal("encode error swallowed")
	}
}

func TestChainNameAndLossless(t *testing.T) {
	ch := Chain{F: Raw{}, B: xorCodec{}}
	if ch.Name() != "raw+xor" {
		t.Fatalf("name %q", ch.Name())
	}
	if !ch.Lossless() {
		t.Fatal("raw chain must be lossless")
	}
	f := img.NewFrame(4, 2)
	f.Pix[5] = 99
	data, err := ch.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ch.DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f) {
		t.Fatal("chain round trip mismatch")
	}
}

func TestRegistry(t *testing.T) {
	Register("test-codec", func() (FrameCodec, error) { return Raw{}, nil })
	c, err := ByName("test-codec")
	if err != nil || c.Name() != "raw" {
		t.Fatalf("registry lookup: %v %v", c, err)
	}
	found := false
	for _, n := range Names() {
		if n == "test-codec" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names missing registered codec")
	}
}
