package codecs

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/compress/jls"
	"repro/internal/compress/prog"
	"repro/internal/img"
)

func renderedStyleFrame(n int) *img.Frame {
	f := img.NewFrame(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			dx := float64(x-n/2) / float64(n)
			dy := float64(y-n/2) / float64(n)
			v := math.Exp(-(dx*dx + dy*dy) * 10)
			f.Set(x, y, byte(250*v), byte(180*v*v), byte(90*v))
		}
	}
	return f
}

func TestAllRegistered(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("got %d codecs", len(all))
	}
	wantNames := []string{"raw", "lzo", "bzip", "jpeg", "jpeg+lzo", "jpeg+bzip", "jls", "prog"}
	for i, c := range all {
		if c.Name() != wantNames[i] {
			t.Fatalf("codec %d named %q, want %q", i, c.Name(), wantNames[i])
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := compress.ByName("snappy"); err == nil {
		t.Fatal("want unknown codec error")
	}
}

func TestLosslessCodecsRoundTripExactly(t *testing.T) {
	f := renderedStyleFrame(96)
	for _, name := range []string{"raw", "lzo", "bzip", "jls", "prog"} {
		c, err := compress.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Lossless() {
			t.Fatalf("%s must be lossless", name)
		}
		data, err := c.EncodeFrame(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := c.DecodeFrame(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(f) {
			t.Fatalf("%s: lossless round trip mismatch", name)
		}
	}
}

func TestLossyCodecsVisuallyClose(t *testing.T) {
	f := renderedStyleFrame(96)
	for _, name := range []string{"jpeg", "jpeg+lzo", "jpeg+bzip"} {
		c, err := compress.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Lossless() {
			t.Fatalf("%s must be lossy", name)
		}
		data, err := c.EncodeFrame(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := c.DecodeFrame(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p, err := img.PSNR(f, got)
		if err != nil {
			t.Fatal(err)
		}
		if p < 30 {
			t.Fatalf("%s: PSNR %.1f dB", name, p)
		}
	}
}

// The paper's Table 1 size ordering on rendered-style content:
// raw > lzo > bzip > jpeg, and the two-phase chains shave a further
// slice off plain jpeg.
func TestTable1SizeOrdering(t *testing.T) {
	f := renderedStyleFrame(256)
	size := map[string]int{}
	for _, name := range []string{"raw", "lzo", "bzip", "jpeg", "jpeg+lzo"} {
		c, err := compress.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := c.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		size[name] = len(data)
	}
	if !(size["raw"] > size["lzo"] && size["lzo"] > size["bzip"] && size["bzip"] > size["jpeg"]) {
		t.Fatalf("size ordering violated: %v", size)
	}
	if size["jpeg+lzo"] >= size["jpeg"] {
		t.Fatalf("two-phase did not help: jpeg %d, jpeg+lzo %d", size["jpeg"], size["jpeg+lzo"])
	}
}

// TestJlsBeatsLzoRatio pins the ladder-placement claim: on
// rendered-style content, jls at NEAR 0/2/4 always produces fewer
// bytes than LZO (the codec it outranks in the quality ladder).
func TestJlsBeatsLzoRatio(t *testing.T) {
	f := renderedStyleFrame(256)
	lzoC, err := compress.ByName("lzo")
	if err != nil {
		t.Fatal(err)
	}
	lzoData, err := lzoC.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, near := range []int{0, 2, 4} {
		data, err := (jls.Codec{Near: near}).EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) >= len(lzoData) {
			t.Fatalf("jls near=%d %d bytes >= lzo %d", near, len(data), len(lzoData))
		}
		got, err := (jls.Codec{}).DecodeFrame(data)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f.Pix {
			d := int(f.Pix[i]) - int(got.Pix[i])
			if d < 0 {
				d = -d
			}
			if d > near {
				t.Fatalf("near=%d: pixel byte %d off by %d", near, i, d)
			}
		}
	}
}

// TestProgPreviewFraction pins the progressive claim: the first pass
// alone decodes and costs at most 25% of the full stream.
func TestProgPreviewFraction(t *testing.T) {
	f := renderedStyleFrame(256)
	c, err := compress.ByName("prog")
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	preview, err := prog.Truncate(full, 1)
	if err != nil {
		t.Fatal(err)
	}
	if 4*len(preview) > len(full) {
		t.Fatalf("preview %d bytes > 25%% of full %d", len(preview), len(full))
	}
	pf, err := c.DecodeFrame(preview)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := img.PSNR(f, pf); p < 20 {
		t.Fatalf("preview PSNR %.1f dB not usable", p)
	}
}

func TestChainNameComposition(t *testing.T) {
	c, err := compress.ByName("jpeg+bzip")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "jpeg+bzip" {
		t.Fatalf("chain name %q", c.Name())
	}
}

func TestRawRejectsCorrupt(t *testing.T) {
	c, _ := compress.ByName("raw")
	if _, err := c.DecodeFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("short raw accepted")
	}
	bad := make([]byte, 8+5)
	bad[0] = 4 // claims 4x0
	if _, err := c.DecodeFrame(bad); err == nil {
		t.Fatal("inconsistent raw accepted")
	}
}
