package codecs

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/img"
)

func renderedStyleFrame(n int) *img.Frame {
	f := img.NewFrame(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			dx := float64(x-n/2) / float64(n)
			dy := float64(y-n/2) / float64(n)
			v := math.Exp(-(dx*dx + dy*dy) * 10)
			f.Set(x, y, byte(250*v), byte(180*v*v), byte(90*v))
		}
	}
	return f
}

func TestAllRegistered(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("got %d codecs", len(all))
	}
	wantNames := []string{"raw", "lzo", "bzip", "jpeg", "jpeg+lzo", "jpeg+bzip"}
	for i, c := range all {
		if c.Name() != wantNames[i] {
			t.Fatalf("codec %d named %q, want %q", i, c.Name(), wantNames[i])
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := compress.ByName("snappy"); err == nil {
		t.Fatal("want unknown codec error")
	}
}

func TestLosslessCodecsRoundTripExactly(t *testing.T) {
	f := renderedStyleFrame(96)
	for _, name := range []string{"raw", "lzo", "bzip"} {
		c, err := compress.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Lossless() {
			t.Fatalf("%s must be lossless", name)
		}
		data, err := c.EncodeFrame(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := c.DecodeFrame(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(f) {
			t.Fatalf("%s: lossless round trip mismatch", name)
		}
	}
}

func TestLossyCodecsVisuallyClose(t *testing.T) {
	f := renderedStyleFrame(96)
	for _, name := range []string{"jpeg", "jpeg+lzo", "jpeg+bzip"} {
		c, err := compress.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Lossless() {
			t.Fatalf("%s must be lossy", name)
		}
		data, err := c.EncodeFrame(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := c.DecodeFrame(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p, err := img.PSNR(f, got)
		if err != nil {
			t.Fatal(err)
		}
		if p < 30 {
			t.Fatalf("%s: PSNR %.1f dB", name, p)
		}
	}
}

// The paper's Table 1 size ordering on rendered-style content:
// raw > lzo > bzip > jpeg, and the two-phase chains shave a further
// slice off plain jpeg.
func TestTable1SizeOrdering(t *testing.T) {
	f := renderedStyleFrame(256)
	size := map[string]int{}
	for _, name := range []string{"raw", "lzo", "bzip", "jpeg", "jpeg+lzo"} {
		c, err := compress.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := c.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		size[name] = len(data)
	}
	if !(size["raw"] > size["lzo"] && size["lzo"] > size["bzip"] && size["bzip"] > size["jpeg"]) {
		t.Fatalf("size ordering violated: %v", size)
	}
	if size["jpeg+lzo"] >= size["jpeg"] {
		t.Fatalf("two-phase did not help: jpeg %d, jpeg+lzo %d", size["jpeg"], size["jpeg+lzo"])
	}
}

func TestChainNameComposition(t *testing.T) {
	c, err := compress.ByName("jpeg+bzip")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "jpeg+bzip" {
		t.Fatalf("chain name %q", c.Name())
	}
}

func TestRawRejectsCorrupt(t *testing.T) {
	c, _ := compress.ByName("raw")
	if _, err := c.DecodeFrame([]byte{1, 2, 3}); err == nil {
		t.Fatal("short raw accepted")
	}
	bad := make([]byte, 8+5)
	bad[0] = 4 // claims 4x0
	if _, err := c.DecodeFrame(bad); err == nil {
		t.Fatal("inconsistent raw accepted")
	}
}
