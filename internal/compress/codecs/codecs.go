// Package codecs wires the concrete compressors into the compress
// registry under the names the paper's Table 1 uses: raw, lzo, bzip,
// jpeg, jpeg+lzo, jpeg+bzip — plus the post-paper ladder extensions
// jls (JPEG-LS-style near-lossless prediction) and prog (progressive
// wavelet refinement). Importing this package (usually blank) makes
// compress.ByName work for all of them.
package codecs

import (
	"repro/internal/compress"
	"repro/internal/compress/bzp"
	"repro/internal/compress/jls"
	"repro/internal/compress/jpegc"
	"repro/internal/compress/lzo"
	"repro/internal/compress/prog"
)

// Quality is the JPEG quality used by registry-constructed codecs; the
// paper's "visually indistinguishable" baseline setting.
const Quality = 75

func init() {
	compress.Register("raw", func() (compress.FrameCodec, error) {
		return compress.Raw{}, nil
	})
	compress.Register("lzo", func() (compress.FrameCodec, error) {
		return compress.ByteFrame{C: lzo.Codec{}}, nil
	})
	compress.Register("bzip", func() (compress.FrameCodec, error) {
		return compress.ByteFrame{C: bzp.Codec{}}, nil
	})
	compress.Register("jpeg", func() (compress.FrameCodec, error) {
		return jpegc.Codec{Quality: Quality}, nil
	})
	compress.Register("jpeg+lzo", func() (compress.FrameCodec, error) {
		return compress.Chain{F: jpegc.Codec{Quality: Quality}, B: lzo.Codec{}}, nil
	})
	compress.Register("jpeg+bzip", func() (compress.FrameCodec, error) {
		return compress.Chain{F: jpegc.Codec{Quality: Quality}, B: bzp.Codec{}}, nil
	})
	// Registry instances are the lossless defaults (NEAR=0, all
	// passes); the quality ladder constructs bounded/truncated
	// variants directly via stream.Point.
	compress.Register("jls", func() (compress.FrameCodec, error) {
		return jls.Codec{}, nil
	})
	compress.Register("prog", func() (compress.FrameCodec, error) {
		return prog.Codec{}, nil
	})
}

// All returns one constructed instance of every registered codec, in
// the paper's Table 1 row order followed by the ladder extensions.
func All() ([]compress.FrameCodec, error) {
	names := []string{"raw", "lzo", "bzip", "jpeg", "jpeg+lzo", "jpeg+bzip", "jls", "prog"}
	out := make([]compress.FrameCodec, 0, len(names))
	for _, n := range names {
		c, err := compress.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
