package codecs

import (
	"io"
	"net"
	"testing"

	"repro/internal/compress"
	"repro/internal/fault"
	"repro/internal/img"
)

// corruptThrough pushes data through a fault-injected pipe and
// returns what came out the other side — the transport-level view of
// a bit-flipped stream.
func corruptThrough(t *testing.T, plan fault.Plan, data []byte) []byte {
	t.Helper()
	inj := fault.New(plan)
	c1, c2 := net.Pipe()
	src := inj.Wrap(c1)
	go func() {
		src.Write(data)
		src.Close()
	}()
	out, err := io.ReadAll(c2)
	if err != nil {
		t.Fatalf("read corrupted stream: %v", err)
	}
	return out
}

// TestNewCodecsSurviveBitFlips drives the jls and prog decoders with
// fault-plan bit flips at exact offsets and periodic strides — the
// transport's drop-and-continue contract demands an error (or a
// well-formed frame), never a panic and never a wild allocation.
func TestNewCodecsSurviveBitFlips(t *testing.T) {
	f := renderedStyleFrame(96)
	for _, name := range []string{"jls", "prog"} {
		c, err := compress.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := c.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		plans := []fault.Plan{
			{CorruptOffsets: []int64{0, 4, 8, 11}},          // header fields
			{CorruptOffsets: []int64{12, 13, 14, 15}},       // length table / first record
			{CorruptOffsets: []int64{int64(len(data) / 2)}}, // mid payload
			{CorruptOffsets: []int64{int64(len(data) - 1)}}, // final byte
			{CorruptEveryBytes: 61},                         // periodic flips
		}
		for pi, plan := range plans {
			mangled := corruptThrough(t, plan, data)
			out, err := c.DecodeFrame(mangled)
			if err == nil && out != nil {
				if out.W <= 0 || out.H <= 0 || len(out.Pix) != out.W*out.H*3 {
					t.Fatalf("%s plan %d: malformed frame %dx%d", name, pi, out.W, out.H)
				}
			}
		}
	}
}

// TestNewCodecsSurviveTruncation walks truncation points through both
// streams; every cut must decode or error cleanly.
func TestNewCodecsSurviveTruncation(t *testing.T) {
	f := renderedStyleFrame(96)
	for _, name := range []string{"jls", "prog"} {
		c, err := compress.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := c.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(data); cut += 11 {
			out, err := c.DecodeFrame(data[:cut])
			if err == nil && out != nil {
				if out.W != f.W || out.H != f.H {
					t.Fatalf("%s cut %d: frame %dx%d", name, cut, out.W, out.H)
				}
			}
		}
	}
}

// TestNewCodecsDecodeAllocBounded feeds headers advertising huge
// frames with tiny payloads; the decoders must reject them before
// allocating pixel planes.
func TestNewCodecsDecodeAllocBounded(t *testing.T) {
	// jls: 32767x32767 header, no payload to back it.
	jlsHdr := []byte{'J', 'L', 'S', '1', 0xff, 0x7f, 0xff, 0x7f, 0, 0, 0xff, 0x1f}
	if _, err := decodeByName(t, "jls", jlsHdr); err == nil {
		t.Fatal("jls accepted a 32767x32767 header with no payload")
	}
	// prog: max dims exceed MaxPixels.
	progHdr := []byte{'P', 'G', 'F', '1', 0xff, 0x7f, 0xff, 0x7f, 4, 5, 0, 0}
	if _, err := decodeByName(t, "prog", progHdr); err == nil {
		t.Fatal("prog accepted a 32767x32767 header")
	}
}

func decodeByName(t *testing.T, name string, data []byte) (*img.Frame, error) {
	t.Helper()
	c, err := compress.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c.DecodeFrame(data)
}
