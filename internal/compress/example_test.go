package compress_test

import (
	"fmt"

	"repro/internal/compress"
	_ "repro/internal/compress/codecs"
	"repro/internal/img"
)

// Encode a frame with a named codec from the registry and decode it
// back — the path every image takes through the display daemon.
func Example() {
	frame := img.NewFrame(16, 16)
	for i := range frame.Pix {
		frame.Pix[i] = byte(i % 7)
	}
	codec, err := compress.ByName("lzo")
	if err != nil {
		fmt.Println(err)
		return
	}
	data, err := codec.EncodeFrame(frame)
	if err != nil {
		fmt.Println(err)
		return
	}
	back, err := codec.DecodeFrame(data)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(codec.Lossless(), back.Equal(frame), len(data) < len(frame.Pix))
	// Output: true true true
}

// Chain a lossy frame codec with a byte codec — the paper's two-phase
// JPEG+LZO compression.
func ExampleChain() {
	jpeg, _ := compress.ByName("jpeg")
	chained, _ := compress.ByName("jpeg+lzo")
	fmt.Println(jpeg.Name(), chained.Name(), chained.Lossless())
	// Output: jpeg jpeg+lzo false
}
