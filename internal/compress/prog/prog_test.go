package prog

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/img"
)

func renderedStyleFrame(n int) *img.Frame {
	f := img.NewFrame(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			dx, dy := float64(x-n/2), float64(y-n/2)
			g := math.Exp(-(dx*dx + dy*dy) / float64(n*n/8))
			f.Set(x, y, byte(float64(x)/float64(n)*255), byte(g*255), byte(float64(y)/float64(n)*255))
		}
	}
	return f
}

func noiseFrame(w, h int, seed int64) *img.Frame {
	rng := rand.New(rand.NewSource(seed))
	f := img.NewFrame(w, h)
	rng.Read(f.Pix)
	return f
}

func TestTransform1DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 33; n++ {
		seg := make([]int32, n)
		for i := range seg {
			seg[i] = int32(rng.Intn(1021) - 510)
		}
		orig := append([]int32(nil), seg...)
		tmp := make([]int32, n)
		fwd1D(seg, tmp)
		inv1D(seg, tmp)
		for i := range seg {
			if seg[i] != orig[i] {
				t.Fatalf("n=%d: index %d: %d != %d", n, i, seg[i], orig[i])
			}
		}
	}
}

func TestFullStreamLossless(t *testing.T) {
	for _, f := range []*img.Frame{
		renderedStyleFrame(129), // odd size
		noiseFrame(64, 64, 2),
		noiseFrame(5, 200, 3), // extreme aspect, few levels
		img.NewFrame(1, 1),
		img.NewFrame(2, 2),
	} {
		data, err := (Codec{}).EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %dx%d: %v", f.W, f.H, err)
		}
		got, err := (Codec{}).DecodeFrame(data)
		if err != nil {
			t.Fatalf("decode %dx%d: %v", f.W, f.H, err)
		}
		if !got.Equal(f) {
			t.Fatalf("%dx%d: full stream not lossless", f.W, f.H)
		}
	}
}

func TestEncodeBitIdenticalAcrossWorkers(t *testing.T) {
	f := renderedStyleFrame(160)
	ref, err := (Codec{Workers: 1}).EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8, 16} {
		got, err := (Codec{Workers: workers}).EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("workers=%d: encode not bit-identical to serial", workers)
		}
	}
}

func TestTruncatedPrefixesDecodeAndRefine(t *testing.T) {
	f := renderedStyleFrame(128)
	full, err := (Codec{}).EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	si, err := Parse(full)
	if err != nil {
		t.Fatal(err)
	}
	if si.Passes != si.TotalPasses {
		t.Fatalf("full stream has %d of %d passes", si.Passes, si.TotalPasses)
	}
	prevPSNR := 0.0
	for p := 1; p <= si.Passes; p++ {
		prefix, err := Truncate(full, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := (Codec{}).DecodeFrame(prefix)
		if err != nil {
			t.Fatalf("pass %d: %v", p, err)
		}
		if got.W != f.W || got.H != f.H {
			t.Fatalf("pass %d: got %dx%d", p, got.W, got.H)
		}
		psnr, err := img.PSNR(f, got)
		if err != nil {
			t.Fatal(err)
		}
		if p == si.Passes {
			if !got.Equal(f) {
				t.Fatal("final pass not lossless")
			}
		} else if psnr < prevPSNR {
			t.Fatalf("pass %d: PSNR regressed %.1f -> %.1f", p, prevPSNR, psnr)
		}
		prevPSNR = psnr
	}
	// The preview must be usable — a real image, not garbage — and
	// cheap: <= 25% of the full stream.
	preview, _ := Truncate(full, 1)
	got, err := (Codec{}).DecodeFrame(preview)
	if err != nil {
		t.Fatal(err)
	}
	if psnr, _ := img.PSNR(f, got); psnr < 20 {
		t.Fatalf("preview PSNR %.1f too low to be usable", psnr)
	}
	if 4*len(preview) > len(full) {
		t.Fatalf("preview %d bytes > 25%% of full %d", len(preview), len(full))
	}
}

func TestPreviewMatchesTruncatedEncode(t *testing.T) {
	// Encoding with Passes=k must equal truncating the full stream
	// at pass k — the cache and the wire layer rely on this.
	f := renderedStyleFrame(96)
	full, err := (Codec{}).EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	si, _ := Parse(full)
	for p := 1; p < si.Passes; p++ {
		direct, err := (Codec{Passes: p}).EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		cut, err := Truncate(full, p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(direct, cut) {
			t.Fatalf("pass %d: direct encode != truncated full stream", p)
		}
	}
}

func TestTruncateToBudget(t *testing.T) {
	f := renderedStyleFrame(128)
	full, _ := (Codec{}).EncodeFrame(f)
	si, _ := Parse(full)
	// A zero budget still yields the preview.
	if got := TruncateToBudget(full, 0); len(got) != si.Boundaries[0] {
		t.Fatalf("zero budget: got %d want preview %d", len(got), si.Boundaries[0])
	}
	// A huge budget yields the full stream.
	if got := TruncateToBudget(full, 1<<30); len(got) != len(full) {
		t.Fatalf("huge budget: got %d want %d", len(got), len(full))
	}
	// An intermediate budget lands exactly on a boundary.
	mid := TruncateToBudget(full, si.Boundaries[1])
	if len(mid) != si.Boundaries[1] {
		t.Fatalf("mid budget: got %d want %d", len(mid), si.Boundaries[1])
	}
	if _, err := (Codec{}).DecodeFrame(mid); err != nil {
		t.Fatal(err)
	}
}

func TestSplitPreviewAndDecoder(t *testing.T) {
	f := renderedStyleFrame(128)
	full, _ := (Codec{}).EncodeFrame(f)
	head, tail, ok := SplitPreview(full)
	if !ok {
		t.Fatal("split failed")
	}
	if len(head)+len(tail) != len(full) {
		t.Fatal("split lost bytes")
	}
	d := NewDecoder()
	preview, err := d.Add(head)
	if err != nil || preview == nil {
		t.Fatalf("preview: %v %v", preview, err)
	}
	if d.Complete() {
		t.Fatal("complete after preview alone")
	}
	final, err := d.Add(tail)
	if err != nil || final == nil {
		t.Fatalf("final: %v %v", final, err)
	}
	if !d.Complete() {
		t.Fatal("not complete after tail")
	}
	if !final.Equal(f) {
		t.Fatal("refined frame not lossless")
	}
	pp, _ := img.PSNR(f, preview)
	fp, _ := img.PSNR(f, final)
	if fp <= pp {
		t.Fatalf("refinement did not improve PSNR: %.1f -> %.1f", pp, fp)
	}

	// Byte-dribbled delivery: feeding tiny chunks must produce the
	// same refinement sequence, never an error.
	d2 := NewDecoder()
	frames := 0
	for i := 0; i < len(full); i += 97 {
		end := i + 97
		if end > len(full) {
			end = len(full)
		}
		fr, err := d2.Add(full[i:end])
		if err != nil {
			t.Fatalf("chunk at %d: %v", i, err)
		}
		if fr != nil {
			frames++
		}
	}
	if !d2.Complete() || frames < 2 {
		t.Fatalf("dribble: complete=%v frames=%d", d2.Complete(), frames)
	}

	// An orphan tail (preview lost upstream) must error, not panic.
	if _, err := NewDecoder().Add(tail); err == nil {
		t.Fatal("orphan tail accepted")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	f := renderedStyleFrame(64)
	data, _ := (Codec{}).EncodeFrame(f)
	cases := map[string][]byte{
		"empty":       {},
		"short":       data[:6],
		"bad magic":   append([]byte("XXXX"), data[4:]...),
		"header only": data[:headerLen],
		"mid-record":  data[:headerLen+3],
		"cut payload": data[:len(data)-5],
		"extra tail":  append(bytes.Clone(data), 9, 9, 9),
		"huge dims":   {'P', 'G', 'F', '1', 0xff, 0xff, 0xff, 0xff, 4, 5, 0, 0},
		"level overrun": func() []byte {
			d := bytes.Clone(data)
			d[8], d[9] = 200, 201
			return d
		}(),
	}
	for name, d := range cases {
		if _, err := (Codec{}).DecodeFrame(d); err == nil {
			t.Fatalf("%s: decode accepted corrupt stream", name)
		}
	}
}

func FuzzDecodeFrame(f *testing.F) {
	frame := renderedStyleFrame(48)
	seed, err := (Codec{}).EncodeFrame(frame)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	if head, tail, ok := SplitPreview(seed); ok {
		f.Add(head)
		f.Add(tail)
	}
	f.Add([]byte("PGF1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := (Codec{}).DecodeFrame(data)
		if err == nil && out != nil {
			if out.W <= 0 || out.H <= 0 || len(out.Pix) != out.W*out.H*3 {
				t.Fatalf("accepted stream produced malformed frame %dx%d", out.W, out.H)
			}
		}
	})
}

func FuzzDecoderAdd(f *testing.F) {
	frame := renderedStyleFrame(48)
	seed, _ := (Codec{}).EncodeFrame(frame)
	f.Add(seed, 17)
	f.Add(seed, 1)
	f.Fuzz(func(t *testing.T, data []byte, step int) {
		if step <= 0 {
			step = 1
		}
		d := NewDecoder()
		for i := 0; i < len(data); i += step {
			end := i + step
			if end > len(data) {
				end = len(data)
			}
			if _, err := d.Add(data[i:end]); err != nil {
				return // errors are fine; panics are not
			}
		}
	})
}
