// Package prog implements progressive frame transmission: a
// reversible integer Haar (S-transform) wavelet decomposition whose
// coefficients are emitted as an ordered sequence of refinement
// passes. Pass 0 carries the coarsest low-pass band — a usable
// preview at a small fraction of the full-frame bytes — and each
// later pass adds one level of detail subbands. The stream can be
// truncated at any pass boundary (Truncate/TruncateToBudget/
// SplitPreview), a truncated prefix still decodes to a frame, and the
// viewer refines in place as later passes arrive (Decoder). The full
// stream is exactly lossless: the S-transform is integer-reversible.
//
// Coefficients are entropy-coded with the adaptive Golomb-Rice coder
// shared with the jls codec; the low-pass band is DPCM-predicted.
// Pass/channel blocks are independent, so encoding parallelizes over
// the PR 4 worker-pool pattern with bit-identical output at every
// worker count.
package prog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/compress/rice"
	"repro/internal/img"
)

// MaxPixels bounds the frames the codec will encode or decode; it
// keeps adversarial headers from forcing huge coefficient-plane
// allocations before any payload is read.
const MaxPixels = 1 << 22

// MaxLevels bounds the wavelet decomposition depth.
const MaxLevels = 8

// DefaultLevels is the decomposition depth used when Codec.Levels is
// unset (clamped down for tiny frames). Four levels put the preview
// band at 1/256 of the pixels.
const DefaultLevels = 4

// magic identifies a prog stream.
var magic = [4]byte{'P', 'G', 'F', '1'}

// headerLen is magic, u16 width, u16 height, u8 levels,
// u8 totalPasses, u16 reserved.
const headerLen = 12

// recHeadLen is the fixed prefix of one pass record: u8 passIndex,
// u8 flags, u32 record payload length.
const recHeadLen = 6

// ErrCorrupt reports a malformed prog stream (distinct from a clean
// truncation at a pass boundary, which decodes fine).
var ErrCorrupt = errors.New("prog: corrupt stream")

// Codec is the progressive frame codec. The zero value encodes every
// pass (lossless) at DefaultLevels with one worker per CPU.
type Codec struct {
	// Levels is the wavelet decomposition depth; <=0 means
	// DefaultLevels, clamped to what the frame size supports.
	Levels int
	// Passes, when positive, emits only the first Passes passes —
	// a deliberately truncated (preview) stream. 0 emits all
	// levels+1 passes.
	Passes int
	// Workers bounds encode parallelism; <=0 means GOMAXPROCS.
	// The encoded output is identical for every setting.
	Workers int
}

// Name implements compress.FrameCodec.
func (Codec) Name() string { return "prog" }

// Lossless implements compress.FrameCodec: the full-pass stream is
// exactly reversible; a preview-truncated instance is not.
func (c Codec) Lossless() bool { return c.Passes <= 0 }

// maxLevelsFor returns how many times both dimensions can still be
// halved (a level needs at least 2 samples in each direction).
func maxLevelsFor(w, h int) int {
	n := 0
	for w >= 2 && h >= 2 && n < MaxLevels {
		w, h = (w+1)/2, (h+1)/2
		n++
	}
	return n
}

func (c Codec) levelsFor(w, h int) int {
	l := c.Levels
	if l <= 0 {
		l = DefaultLevels
	}
	if m := maxLevelsFor(w, h); l > m {
		l = m
	}
	return l
}

// dims returns the per-level low-band dimensions: dims[0] = (w,h),
// dims[j] = size of the LL band after j transform levels.
func dims(w, h, levels int) ([]int, []int) {
	cw := make([]int, levels+1)
	ch := make([]int, levels+1)
	cw[0], ch[0] = w, h
	for j := 1; j <= levels; j++ {
		cw[j], ch[j] = (cw[j-1]+1)/2, (ch[j-1]+1)/2
	}
	return cw, ch
}

// fwd1D S-transforms seg (length n) into low/high halves in place,
// via tmp (cap >= n): low[i]=(a+b)>>1, high[i]=a-b; an odd tail
// sample passes straight into the low band.
func fwd1D(seg []int32, tmp []int32) {
	n := len(seg)
	low := (n + 1) / 2
	for i := 0; i+1 < n; i += 2 {
		a, b := seg[i], seg[i+1]
		tmp[i/2] = (a + b) >> 1
		tmp[low+i/2] = a - b
	}
	if n&1 == 1 {
		tmp[low-1] = seg[n-1]
	}
	copy(seg, tmp[:n])
}

// inv1D inverts fwd1D: a = s + ((d+1)>>1), b = a - d.
func inv1D(seg []int32, tmp []int32) {
	n := len(seg)
	low := (n + 1) / 2
	for i := 0; i < n/2; i++ {
		s, d := seg[i], seg[low+i]
		a := s + ((d + 1) >> 1)
		tmp[2*i] = a
		tmp[2*i+1] = a - d
	}
	if n&1 == 1 {
		tmp[n-1] = seg[low-1]
	}
	copy(seg, tmp[:n])
}

// forward applies `levels` separable S-transform steps to the w×h
// plane (row stride w), rows then columns, shrinking the active LL
// region each step. col/tmp are scratch of length >= max(w,h).
func forward(plane []int32, w, h, levels int, col, tmp []int32) {
	cw, chh := w, h
	for j := 0; j < levels; j++ {
		for y := 0; y < chh; y++ {
			fwd1D(plane[y*w:y*w+cw], tmp)
		}
		for x := 0; x < cw; x++ {
			for y := 0; y < chh; y++ {
				col[y] = plane[y*w+x]
			}
			fwd1D(col[:chh], tmp)
			for y := 0; y < chh; y++ {
				plane[y*w+x] = col[y]
			}
		}
		cw, chh = (cw+1)/2, (chh+1)/2
	}
}

// inverse undoes forward, coarsest level first, columns then rows.
func inverse(plane []int32, w, h, levels int, col, tmp []int32) {
	cw, chh := dims(w, h, levels)
	for j := levels; j >= 1; j-- {
		pw, ph := cw[j-1], chh[j-1]
		for x := 0; x < pw; x++ {
			for y := 0; y < ph; y++ {
				col[y] = plane[y*w+x]
			}
			inv1D(col[:ph], tmp)
			for y := 0; y < ph; y++ {
				plane[y*w+x] = col[y]
			}
		}
		for y := 0; y < ph; y++ {
			inv1D(plane[y*w:y*w+pw], tmp)
		}
	}
}

// subband is a coefficient rectangle coded as one unit within a pass.
type subband struct{ x0, y0, x1, y1 int }

// passBands lists the subbands of pass p (p=0: the coarsest LL;
// p>=1: the HL/LH/HH detail bands of level levels-p+1).
func passBands(p, levels int, cw, ch []int) []subband {
	if p == 0 {
		return []subband{{0, 0, cw[levels], ch[levels]}}
	}
	j := levels - p + 1
	return []subband{
		{cw[j], 0, cw[j-1], ch[j]},       // HL: high in x, low in y
		{0, ch[j], cw[j], ch[j-1]},       // LH
		{cw[j], ch[j], cw[j-1], ch[j-1]}, // HH
	}
}

// passCoeffs counts the coefficients of one pass (per channel) — the
// decoder's 1-bit-per-coefficient minimum-payload check.
func passCoeffs(p, levels int, cw, ch []int) int {
	n := 0
	for _, b := range passBands(p, levels, cw, ch) {
		if b.x1 > b.x0 && b.y1 > b.y0 {
			n += (b.x1 - b.x0) * (b.y1 - b.y0)
		}
	}
	return n
}

// encScratch pools the per-unit bit writer.
type encScratch struct{ w rice.Writer }

var encPool = sync.Pool{New: func() any { return new(encScratch) }}

// planePool recycles int32 coefficient planes and scratch columns.
var planePool sync.Pool // *[]int32

func getPlane(n int) []int32 {
	if p, ok := planePool.Get().(*[]int32); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int32, n)
}

func putPlane(p []int32) {
	if cap(p) > 0 {
		planePool.Put(&p)
	}
}

// encodeUnit entropy-codes one (pass, channel) block.
func encodeUnit(plane []int32, w, pass, levels int, cw, ch []int, s *encScratch) []byte {
	s.w.Reset()
	if pass == 0 {
		model := rice.NewModel()
		prev := int32(128)
		b := passBands(0, levels, cw, ch)[0]
		for y := b.y0; y < b.y1; y++ {
			for x := b.x0; x < b.x1; x++ {
				v := plane[y*w+x]
				m := rice.MapSigned(v - prev)
				s.w.WriteRice(m, model.K())
				model.Update(m)
				prev = v
			}
		}
		return s.w.Finish()
	}
	for _, b := range passBands(pass, levels, cw, ch) {
		model := rice.NewModel()
		for y := b.y0; y < b.y1; y++ {
			for x := b.x0; x < b.x1; x++ {
				m := rice.MapSigned(plane[y*w+x])
				s.w.WriteRice(m, model.K())
				model.Update(m)
			}
		}
	}
	return s.w.Finish()
}

// decodeUnit inverts encodeUnit into plane.
func decodeUnit(data []byte, plane []int32, w, pass, levels int, cw, ch []int) error {
	r := rice.NewReader(data)
	if pass == 0 {
		model := rice.NewModel()
		prev := int32(128)
		b := passBands(0, levels, cw, ch)[0]
		for y := b.y0; y < b.y1; y++ {
			for x := b.x0; x < b.x1; x++ {
				m, err := r.ReadRice(model.K())
				if err != nil {
					return err
				}
				model.Update(m)
				prev += rice.UnmapSigned(m)
				plane[y*w+x] = prev
			}
		}
		return nil
	}
	for _, b := range passBands(pass, levels, cw, ch) {
		model := rice.NewModel()
		for y := b.y0; y < b.y1; y++ {
			for x := b.x0; x < b.x1; x++ {
				m, err := r.ReadRice(model.K())
				if err != nil {
					return err
				}
				model.Update(m)
				plane[y*w+x] = rice.UnmapSigned(m)
			}
		}
	}
	return nil
}

// EncodeFrame implements compress.FrameCodec. Channels are
// transformed and (pass, channel) blocks entropy-coded over an atomic
// work cursor; assembly is in index order, so output is bit-identical
// at every worker count.
func (c Codec) EncodeFrame(f *img.Frame) ([]byte, error) {
	if f.W <= 0 || f.H <= 0 || f.W > 1<<15 || f.H > 1<<15 || f.W*f.H > MaxPixels {
		return nil, fmt.Errorf("prog: implausible frame %dx%d", f.W, f.H)
	}
	if len(f.Pix) != f.W*f.H*3 {
		return nil, fmt.Errorf("prog: frame payload %d != %d", len(f.Pix), f.W*f.H*3)
	}
	levels := c.levelsFor(f.W, f.H)
	total := levels + 1
	emit := total
	if c.Passes > 0 && c.Passes < total {
		emit = c.Passes
	}
	cw, ch := dims(f.W, f.H, levels)
	n := f.W * f.H

	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Stage 1: deinterleave and transform, one unit per channel.
	planes := [3][]int32{getPlane(n), getPlane(n), getPlane(n)}
	{
		var cursor atomic.Int64
		var wg sync.WaitGroup
		cworkers := workers
		if cworkers > 3 {
			cworkers = 3
		}
		for wk := 0; wk < cworkers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				side := f.W
				if f.H > side {
					side = f.H
				}
				col := getPlane(side)
				tmp := getPlane(side)
				defer putPlane(col)
				defer putPlane(tmp)
				for {
					chn := int(cursor.Add(1)) - 1
					if chn >= 3 {
						return
					}
					p := planes[chn]
					for i := 0; i < n; i++ {
						p[i] = int32(f.Pix[i*3+chn])
					}
					forward(p, f.W, f.H, levels, col, tmp)
				}
			}()
		}
		wg.Wait()
	}

	// Stage 2: entropy-code (pass, channel) units.
	blocks := make([][]byte, emit*3)
	scratches := make([]*encScratch, emit*3)
	{
		var cursor atomic.Int64
		var wg sync.WaitGroup
		uworkers := workers
		if uworkers > emit*3 {
			uworkers = emit * 3
		}
		for wk := 0; wk < uworkers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					u := int(cursor.Add(1)) - 1
					if u >= emit*3 {
						return
					}
					pass, chn := u/3, u%3
					s := encPool.Get().(*encScratch)
					blocks[u] = encodeUnit(planes[chn], f.W, pass, levels, cw, ch, s)
					scratches[u] = s
				}
			}()
		}
		wg.Wait()
	}

	size := headerLen
	for p := 0; p < emit; p++ {
		size += recHeadLen + 12
		for chn := 0; chn < 3; chn++ {
			size += len(blocks[p*3+chn])
		}
	}
	out := make([]byte, headerLen, size)
	copy(out, magic[:])
	binary.LittleEndian.PutUint16(out[4:], uint16(f.W))
	binary.LittleEndian.PutUint16(out[6:], uint16(f.H))
	out[8] = byte(levels)
	out[9] = byte(total)
	var u32 [4]byte
	for p := 0; p < emit; p++ {
		recLen := 12
		for chn := 0; chn < 3; chn++ {
			recLen += len(blocks[p*3+chn])
		}
		out = append(out, byte(p), 0)
		binary.LittleEndian.PutUint32(u32[:], uint32(recLen))
		out = append(out, u32[:]...)
		for chn := 0; chn < 3; chn++ {
			binary.LittleEndian.PutUint32(u32[:], uint32(len(blocks[p*3+chn])))
			out = append(out, u32[:]...)
			out = append(out, blocks[p*3+chn]...)
		}
	}
	for u := range scratches {
		// Blocks alias the scratch writers' buffers; recycle only
		// after assembly copied them out.
		encPool.Put(scratches[u])
	}
	for _, p := range planes {
		putPlane(p)
	}
	return out, nil
}

// StreamInfo describes a parsed prog stream.
type StreamInfo struct {
	W, H        int
	Levels      int
	TotalPasses int
	// Passes is how many complete pass records the stream holds.
	Passes int
	// Boundaries[i] is the byte length of the prefix ending after
	// pass record i — the only legal truncation points.
	Boundaries []int
}

// parseStream validates framing. With tolerateTail, an incomplete
// final record is allowed (the caller is mid-refinement) and its
// bytes are ignored; otherwise any trailing bytes are ErrCorrupt.
func parseStream(data []byte, tolerateTail bool) (StreamInfo, error) {
	var si StreamInfo
	if len(data) < headerLen || [4]byte(data[:4]) != magic {
		return si, ErrCorrupt
	}
	si.W = int(binary.LittleEndian.Uint16(data[4:]))
	si.H = int(binary.LittleEndian.Uint16(data[6:]))
	si.Levels = int(data[8])
	si.TotalPasses = int(data[9])
	if si.W <= 0 || si.H <= 0 || si.W*si.H > MaxPixels {
		return si, fmt.Errorf("prog: implausible frame %dx%d: %w", si.W, si.H, ErrCorrupt)
	}
	if si.Levels > maxLevelsFor(si.W, si.H) || si.TotalPasses != si.Levels+1 {
		return si, fmt.Errorf("prog: levels %d / passes %d for %dx%d: %w",
			si.Levels, si.TotalPasses, si.W, si.H, ErrCorrupt)
	}
	cw, ch := dims(si.W, si.H, si.Levels)
	off := headerLen
	for off < len(data) {
		if len(data)-off < recHeadLen {
			if tolerateTail {
				break
			}
			return si, ErrCorrupt
		}
		pass := int(data[off])
		recLen := int(binary.LittleEndian.Uint32(data[off+2:]))
		if pass != si.Passes || pass >= si.TotalPasses || recLen < 12 || recLen > 16+MaxPixels*16 {
			return si, fmt.Errorf("prog: record %d (pass %d, len %d): %w", si.Passes, pass, recLen, ErrCorrupt)
		}
		if len(data)-off-recHeadLen < recLen {
			if tolerateTail {
				break
			}
			return si, ErrCorrupt
		}
		// Channel sub-framing plus the 1-bit-per-coefficient floor
		// that stops tiny adversarial records from driving big
		// plane allocations.
		minBits := passCoeffs(pass, si.Levels, cw, ch)
		chOff := off + recHeadLen
		for chn := 0; chn < 3; chn++ {
			chLen := int(binary.LittleEndian.Uint32(data[chOff:]))
			if chLen < 0 || chLen > recLen || 8*chLen < minBits {
				return si, fmt.Errorf("prog: pass %d channel %d len %d: %w", pass, chn, chLen, ErrCorrupt)
			}
			chOff += 4 + chLen
		}
		if chOff != off+recHeadLen+recLen {
			return si, fmt.Errorf("prog: pass %d channel framing: %w", pass, ErrCorrupt)
		}
		off = chOff
		si.Passes++
		si.Boundaries = append(si.Boundaries, off)
	}
	if si.Passes == 0 && !tolerateTail {
		return si, fmt.Errorf("prog: no complete pass record: %w", ErrCorrupt)
	}
	return si, nil
}

// Parse validates a stream truncated (only) at a pass boundary and
// reports its geometry.
func Parse(data []byte) (StreamInfo, error) { return parseStream(data, false) }

// Truncate returns the prefix of data holding the first `passes`
// pass records — the wire-layer degradation step.
func Truncate(data []byte, passes int) ([]byte, error) {
	si, err := parseStream(data, false)
	if err != nil {
		return nil, err
	}
	if passes <= 0 || passes > si.Passes {
		return nil, fmt.Errorf("prog: truncate to %d of %d passes", passes, si.Passes)
	}
	return data[:si.Boundaries[passes-1]], nil
}

// TruncateToBudget returns the longest pass-boundary prefix of data
// that fits budget bytes, never less than the preview pass. It
// returns data unchanged if it does not parse.
func TruncateToBudget(data []byte, budget int) []byte {
	si, err := parseStream(data, false)
	if err != nil {
		return data
	}
	cut := si.Boundaries[0]
	for _, b := range si.Boundaries {
		if b <= budget {
			cut = b
		}
	}
	return data[:cut]
}

// SplitPreview splits a full stream into a standalone preview prefix
// (header + pass 0) and the refinement tail (the remaining pass
// records, raw). ok is false when the stream has no tail to split.
func SplitPreview(data []byte) (head, tail []byte, ok bool) {
	si, err := parseStream(data, false)
	if err != nil || si.Passes < 2 {
		return nil, nil, false
	}
	return data[:si.Boundaries[0]], data[si.Boundaries[0]:], true
}

// reconstruct decodes the first `passes` records of a validated
// stream into a frame.
func reconstruct(data []byte, si StreamInfo, passes int) (*img.Frame, error) {
	cw, ch := dims(si.W, si.H, si.Levels)
	n := si.W * si.H
	planes := [3][]int32{getPlane(n), getPlane(n), getPlane(n)}
	defer func() {
		for _, p := range planes {
			putPlane(p)
		}
	}()
	for _, p := range planes {
		for i := range p {
			p[i] = 0
		}
	}
	off := headerLen
	for pass := 0; pass < passes; pass++ {
		chOff := off + recHeadLen
		for chn := 0; chn < 3; chn++ {
			chLen := int(binary.LittleEndian.Uint32(data[chOff:]))
			if err := decodeUnit(data[chOff+4:chOff+4+chLen], planes[chn], si.W, pass, si.Levels, cw, ch); err != nil {
				return nil, fmt.Errorf("prog: pass %d channel %d: %w", pass, chn, ErrCorrupt)
			}
			chOff += 4 + chLen
		}
		off = si.Boundaries[pass]
	}
	side := si.W
	if si.H > side {
		side = si.H
	}
	col := getPlane(side)
	tmp := getPlane(side)
	defer putPlane(col)
	defer putPlane(tmp)
	f := img.NewFrame(si.W, si.H)
	for chn, p := range planes {
		inverse(p, si.W, si.H, si.Levels, col, tmp)
		for i := 0; i < n; i++ {
			v := p[i]
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			f.Pix[i*3+chn] = byte(v)
		}
	}
	return f, nil
}

// DecodeFrame implements compress.FrameCodec. Any pass-boundary
// prefix decodes: fewer passes simply reconstruct a coarser frame.
func (Codec) DecodeFrame(data []byte) (*img.Frame, error) {
	si, err := parseStream(data, false)
	if err != nil {
		return nil, err
	}
	return reconstruct(data, si, si.Passes)
}

// Decoder accumulates a progressive stream chunk by chunk (preview
// message, then refinement tails) and re-renders the best frame
// available after each addition.
type Decoder struct {
	buf    []byte
	passes int
	info   StreamInfo
}

// NewDecoder returns an empty progressive decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// Add appends chunk and, when at least one new complete pass record
// has arrived, returns the refined frame. It returns (nil, nil) when
// more bytes are needed for the next boundary. A chunk that breaks
// the stream's framing returns an error; the decoder is then dead.
func (d *Decoder) Add(chunk []byte) (*img.Frame, error) {
	d.buf = append(d.buf, chunk...)
	si, err := parseStream(d.buf, true)
	if err != nil {
		return nil, err
	}
	d.info = si
	if si.Passes == d.passes {
		return nil, nil
	}
	d.passes = si.Passes
	return reconstruct(d.buf, si, si.Passes)
}

// Passes reports how many complete passes have been decoded.
func (d *Decoder) Passes() int { return d.passes }

// TotalPasses reports the stream's declared pass count (0 before the
// header has arrived).
func (d *Decoder) TotalPasses() int { return d.info.TotalPasses }

// Complete reports whether every pass of the stream has arrived.
func (d *Decoder) Complete() bool {
	return d.passes > 0 && d.passes == d.info.TotalPasses
}
