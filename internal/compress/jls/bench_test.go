package jls

import (
	"fmt"
	"testing"
)

// Worker-scaling encode benchmark; SetBytes is the raw frame size so
// ns/op converts to raw MB/s. On a multicore host the bands spread
// across the pool; output is bit-identical at every width.
func BenchmarkEncodeWorkers(b *testing.B) {
	frame := renderedStyleFrame(256)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			c := Codec{Near: 2, Workers: workers}
			b.SetBytes(int64(len(frame.Pix)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := c.EncodeFrame(frame)
				if err != nil {
					b.Fatal(err)
				}
				_ = data
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	frame := renderedStyleFrame(256)
	data, err := (Codec{Near: 2}).EncodeFrame(frame)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame.Pix)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (Codec{}).DecodeFrame(data); err != nil {
			b.Fatal(err)
		}
	}
}
