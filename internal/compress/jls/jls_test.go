package jls

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/img"
)

// renderedStyleFrame builds a frame with smooth gradients plus a
// Gaussian blob — the statistics of a rendered volume frame, which is
// what the predictor is tuned for.
func renderedStyleFrame(n int) *img.Frame {
	f := img.NewFrame(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			dx, dy := float64(x-n/2), float64(y-n/2)
			g := math.Exp(-(dx*dx + dy*dy) / float64(n*n/8))
			r := byte(float64(x) / float64(n) * 255)
			gg := byte(g * 255)
			b := byte(float64(y) / float64(n) * 255)
			f.Set(x, y, r, gg, b)
		}
	}
	return f
}

func noiseFrame(n int, seed int64) *img.Frame {
	rng := rand.New(rand.NewSource(seed))
	f := img.NewFrame(n, n)
	rng.Read(f.Pix)
	return f
}

func TestLosslessRoundTrip(t *testing.T) {
	for _, f := range []*img.Frame{
		renderedStyleFrame(129), // non-multiple of BandRows, odd width
		noiseFrame(64, 1),
		img.NewFrame(1, 1),
		img.NewFrame(3, 200), // many bands, tiny rows
	} {
		c := Codec{Near: 0}
		data, err := c.EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %dx%d: %v", f.W, f.H, err)
		}
		got, err := c.DecodeFrame(data)
		if err != nil {
			t.Fatalf("decode %dx%d: %v", f.W, f.H, err)
		}
		if !got.Equal(f) {
			t.Fatalf("%dx%d: lossless round trip diverged", f.W, f.H)
		}
	}
}

func TestNearBoundHolds(t *testing.T) {
	for _, near := range []int{1, 2, 4, 8} {
		for _, f := range []*img.Frame{renderedStyleFrame(100), noiseFrame(80, 2)} {
			c := Codec{Near: near}
			data, err := c.EncodeFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.DecodeFrame(data)
			if err != nil {
				t.Fatal(err)
			}
			for i := range f.Pix {
				d := int(f.Pix[i]) - int(got.Pix[i])
				if d < 0 {
					d = -d
				}
				if d > near {
					t.Fatalf("near=%d: pixel byte %d off by %d", near, i, d)
				}
			}
		}
	}
}

func TestEncodeBitIdenticalAcrossWorkers(t *testing.T) {
	f := renderedStyleFrame(200) // 4 bands
	ref, err := Codec{Near: 2, Workers: 1}.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8, 16} {
		got, err := Codec{Near: 2, Workers: workers}.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("workers=%d: encode not bit-identical to serial", workers)
		}
	}
}

func TestBeatsRawOnRenderedFrames(t *testing.T) {
	f := renderedStyleFrame(256)
	data, err := Codec{}.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= len(f.Pix) {
		t.Fatalf("lossless jls %d bytes >= raw %d on a rendered-style frame", len(data), len(f.Pix))
	}
	// Higher NEAR must not cost bytes.
	prev := len(data)
	for _, near := range []int{2, 4} {
		d, err := Codec{Near: near}.EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if len(d) > prev {
			t.Fatalf("near=%d grew the stream: %d > %d", near, len(d), prev)
		}
		prev = len(d)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	f := renderedStyleFrame(96)
	data, err := Codec{}.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       data[:8],
		"bad magic":   append([]byte("XXXX"), data[4:]...),
		"no payload":  data[:headerLen],
		"cut payload": data[:len(data)-7],
		"extra tail":  append(bytes.Clone(data), 0, 1, 2),
	}
	for name, d := range cases {
		if _, err := (Codec{}).DecodeFrame(d); err == nil {
			t.Fatalf("%s: decode accepted corrupt stream", name)
		}
	}
}

func FuzzDecodeFrame(f *testing.F) {
	frame := renderedStyleFrame(64)
	seed, err := Codec{Near: 2}.EncodeFrame(frame)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte("JLS1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic nor over-allocate; errors are fine.
		out, err := Codec{}.DecodeFrame(data)
		if err == nil && out != nil {
			if out.W <= 0 || out.H <= 0 || len(out.Pix) != out.W*out.H*3 {
				t.Fatalf("accepted stream produced malformed frame %dx%d", out.W, out.H)
			}
		}
	})
}
