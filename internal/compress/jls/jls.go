// Package jls implements a JPEG-LS-style (LOCO-I) near-lossless frame
// codec: line-based MED gradient prediction over reconstructed pixels,
// context-free adaptive Golomb-Rice coding of the prediction
// residuals, and a tunable error bound NEAR (0 = fully lossless).
// Frames are split into fixed-height row bands that are predicted and
// entropy-coded independently, so encoding parallelizes across a
// worker pool with output bit-identical to the serial encoder at every
// worker count. In the quality ladder it slots between JPEG+LZO and
// BZIP: a better ratio than LZO on rendered frames at a fraction of
// BZIP's CPU.
package jls

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/compress/rice"
	"repro/internal/img"
)

// BandRows is the fixed height of an independently-coded row band.
// It is a format constant, deliberately independent of the worker
// count, so the encoded bytes never depend on parallelism.
const BandRows = 64

// magic identifies a jls stream.
var magic = [4]byte{'J', 'L', 'S', '1'}

// headerLen is the fixed prefix before the per-band length table:
// magic, u16 width, u16 height, u8 near, u8 reserved, u16 band count.
const headerLen = 12

// ErrCorrupt reports a malformed or truncated jls stream.
var ErrCorrupt = errors.New("jls: corrupt stream")

// Codec is the near-lossless frame codec. The zero value is lossless
// and encodes with one worker per CPU.
type Codec struct {
	// Near is the maximum per-pixel, per-channel reconstruction
	// error. 0 (or negative) means lossless.
	Near int
	// Workers bounds encode parallelism; <=0 means GOMAXPROCS.
	// The encoded output is identical for every setting.
	Workers int
}

// Name implements compress.FrameCodec. The error bound travels in the
// stream header, so every jls instance decodes every jls stream.
func (Codec) Name() string { return "jls" }

// Lossless implements compress.FrameCodec.
func (c Codec) Lossless() bool { return c.Near <= 0 }

// bandScratch is the per-band encode state cycled through a pool: two
// reconstructed-row buffers for the predictor and a bit writer whose
// backing array grows to steady state.
type bandScratch struct {
	prev, cur []byte
	w         rice.Writer
}

var scratchPool = sync.Pool{New: func() any { return new(bandScratch) }}

func getScratch(rowBytes int) *bandScratch {
	s := scratchPool.Get().(*bandScratch)
	if cap(s.prev) < rowBytes {
		s.prev = make([]byte, rowBytes)
		s.cur = make([]byte, rowBytes)
	}
	s.prev = s.prev[:rowBytes]
	s.cur = s.cur[:rowBytes]
	return s
}

// med is the LOCO-I median-edge-detecting predictor.
func med(a, b, c int32) int32 {
	mx, mn := a, b
	if mx < mn {
		mx, mn = mn, mx
	}
	switch {
	case c >= mx:
		return mn
	case c <= mn:
		return mx
	default:
		return a + b - c
	}
}

func clampByte(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// encodeBand predicts and entropy-codes rows [y0,y1) of f into s.w.
// Prediction state (reconstructed neighbors, Golomb models) resets at
// the band boundary, which is what makes bands independent.
func encodeBand(f *img.Frame, y0, y1, near int, s *bandScratch) []byte {
	t := int32(2*near + 1)
	rowBytes := f.W * 3
	models := [3]rice.Model{rice.NewModel(), rice.NewModel(), rice.NewModel()}
	for y := y0; y < y1; y++ {
		row := f.Pix[y*rowBytes : (y+1)*rowBytes]
		first := y == y0
		for x := 0; x < f.W; x++ {
			for ch := 0; ch < 3; ch++ {
				i := x*3 + ch
				var a, b, c int32
				switch {
				case x > 0 && !first:
					a, b, c = int32(s.cur[i-3]), int32(s.prev[i]), int32(s.prev[i-3])
				case x > 0: // first band row: no row above
					a = int32(s.cur[i-3])
					b, c = a, a
				case !first: // first column: seed from the row above
					a = int32(s.prev[i])
					b, c = a, a
				default: // band origin
					a, b, c = 128, 128, 128
				}
				pred := med(a, b, c)
				errv := int32(row[i]) - pred
				var q int32
				if errv > 0 {
					q = (errv + int32(near)) / t
				} else {
					q = -((int32(near) - errv) / t)
				}
				m := rice.MapSigned(q)
				s.w.WriteRice(m, models[ch].K())
				models[ch].Update(m)
				s.cur[i] = byte(clampByte(pred + q*t))
			}
		}
		s.prev, s.cur = s.cur, s.prev
	}
	return s.w.Finish()
}

// EncodeFrame implements compress.FrameCodec. Bands are encoded
// concurrently over an atomic work cursor (the PR 4 tile-pool
// pattern) and assembled in index order, so the output is
// bit-identical at every worker count.
func (c Codec) EncodeFrame(f *img.Frame) ([]byte, error) {
	if f.W <= 0 || f.H <= 0 || f.W > 1<<15 || f.H > 1<<15 {
		return nil, fmt.Errorf("jls: implausible frame %dx%d", f.W, f.H)
	}
	if len(f.Pix) != f.W*f.H*3 {
		return nil, fmt.Errorf("jls: frame payload %d != %d", len(f.Pix), f.W*f.H*3)
	}
	near := c.Near
	if near < 0 {
		near = 0
	}
	if near > 255 {
		near = 255
	}
	bands := (f.H + BandRows - 1) / BandRows
	payloads := make([][]byte, bands)
	scratches := make([]*bandScratch, bands)

	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > bands {
		workers = bands
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				bi := int(cursor.Add(1)) - 1
				if bi >= bands {
					return
				}
				y0 := bi * BandRows
				y1 := y0 + BandRows
				if y1 > f.H {
					y1 = f.H
				}
				s := getScratch(f.W * 3)
				s.w.Reset()
				payloads[bi] = encodeBand(f, y0, y1, near, s)
				scratches[bi] = s
			}
		}()
	}
	wg.Wait()

	total := headerLen + 4*bands
	for _, p := range payloads {
		total += len(p)
	}
	out := make([]byte, headerLen, total)
	copy(out, magic[:])
	binary.LittleEndian.PutUint16(out[4:], uint16(f.W))
	binary.LittleEndian.PutUint16(out[6:], uint16(f.H))
	out[8] = byte(near)
	out[9] = 0
	binary.LittleEndian.PutUint16(out[10:], uint16(bands))
	var lenbuf [4]byte
	for _, p := range payloads {
		binary.LittleEndian.PutUint32(lenbuf[:], uint32(len(p)))
		out = append(out, lenbuf[:]...)
	}
	for bi, p := range payloads {
		out = append(out, p...)
		// The payload aliases the scratch writer's buffer; recycle
		// only after it has been copied out.
		scratchPool.Put(scratches[bi])
	}
	return out, nil
}

// DecodeFrame implements compress.FrameCodec. It validates every
// length field before allocating, so adversarial streams fail with
// ErrCorrupt instead of panicking or over-allocating.
func (Codec) DecodeFrame(data []byte) (*img.Frame, error) {
	if len(data) < headerLen || [4]byte(data[:4]) != magic {
		return nil, ErrCorrupt
	}
	w := int(binary.LittleEndian.Uint16(data[4:]))
	h := int(binary.LittleEndian.Uint16(data[6:]))
	near := int(data[8])
	bands := int(binary.LittleEndian.Uint16(data[10:]))
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, fmt.Errorf("jls: implausible frame %dx%d: %w", w, h, ErrCorrupt)
	}
	if bands != (h+BandRows-1)/BandRows {
		return nil, fmt.Errorf("jls: band count %d for height %d: %w", bands, h, ErrCorrupt)
	}
	table := headerLen + 4*bands
	if len(data) < table {
		return nil, ErrCorrupt
	}
	lens := make([]int, bands)
	total := 0
	for i := range lens {
		l := int(binary.LittleEndian.Uint32(data[headerLen+4*i:]))
		if l < 0 || l > len(data) {
			return nil, ErrCorrupt
		}
		lens[i] = l
		total += l
		if total > len(data) {
			return nil, ErrCorrupt
		}
	}
	if table+total != len(data) {
		return nil, fmt.Errorf("jls: payload %d != declared %d: %w", len(data)-table, total, ErrCorrupt)
	}

	f := img.NewFrame(w, h)
	rowBytes := w * 3
	t := int32(2*near + 1)
	off := table
	for bi := 0; bi < bands; bi++ {
		y0 := bi * BandRows
		y1 := y0 + BandRows
		if y1 > h {
			y1 = h
		}
		r := rice.NewReader(data[off : off+lens[bi]])
		off += lens[bi]
		models := [3]rice.Model{rice.NewModel(), rice.NewModel(), rice.NewModel()}
		for y := y0; y < y1; y++ {
			row := f.Pix[y*rowBytes : (y+1)*rowBytes]
			var prev []byte
			if y > y0 {
				prev = f.Pix[(y-1)*rowBytes : y*rowBytes]
			}
			for x := 0; x < w; x++ {
				for ch := 0; ch < 3; ch++ {
					i := x*3 + ch
					var a, b, c int32
					switch {
					case x > 0 && prev != nil:
						a, b, c = int32(row[i-3]), int32(prev[i]), int32(prev[i-3])
					case x > 0:
						a = int32(row[i-3])
						b, c = a, a
					case prev != nil:
						a = int32(prev[i])
						b, c = a, a
					default:
						a, b, c = 128, 128, 128
					}
					m, err := r.ReadRice(models[ch].K())
					if err != nil {
						return nil, fmt.Errorf("jls: band %d: %w", bi, ErrCorrupt)
					}
					models[ch].Update(m)
					q := rice.UnmapSigned(m)
					row[i] = byte(clampByte(med(a, b, c) + q*t))
				}
			}
		}
	}
	return f, nil
}
