// Package rice provides the bit-level entropy coding shared by the
// prediction codecs: an MSB-first bit writer/reader and Golomb-Rice
// coding of non-negative integers with the context-free adaptive
// parameter estimation of JPEG-LS (LOCO-I). Both the jls near-lossless
// codec and the prog progressive wavelet codec code their residuals
// through this package.
package rice

import (
	"errors"
	"math/bits"
)

// ErrTruncated reports a bit stream that ended mid-symbol.
var ErrTruncated = errors.New("rice: truncated bit stream")

// EscQuot is the unary-quotient escape threshold: a Rice symbol whose
// quotient would reach it is instead coded as EscQuot ones, a zero,
// and the raw 16-bit value. This bounds the damage a mistuned k (or an
// adversarial stream) can do to one symbol at 17+EscQuot bits.
const EscQuot = 47

// escBits is the width of the escaped raw value. Every value the
// prediction codecs emit fits: pixel residuals span [-255,255] and
// S-transform coefficients [-510,510], so mapped values stay < 1<<11.
const escBits = 16

// MapSigned folds a signed residual into the non-negative integers,
// interleaving positives and negatives (0,-1,1,-2,...) so small
// magnitudes of either sign get short codes.
func MapSigned(q int32) uint32 {
	if q >= 0 {
		return uint32(q) << 1
	}
	return uint32(-q)<<1 - 1
}

// UnmapSigned inverts MapSigned.
func UnmapSigned(m uint32) int32 {
	if m&1 == 0 {
		return int32(m >> 1)
	}
	return -int32(m+1) >> 1
}

// Model is the context-free adaptive Golomb parameter state of
// JPEG-LS: A accumulates mapped-residual magnitudes, N counts coded
// symbols, and K derives the Rice parameter as the smallest k with
// N<<k >= A. Periodic halving keeps the model tracking local
// statistics instead of the whole stream's history.
type Model struct {
	A, N uint32
}

// NewModel returns the JPEG-LS initial state (a small positive A so
// the first symbols are not coded at k=0 regardless of content).
func NewModel() Model { return Model{A: 4, N: 1} }

// K returns the current Rice parameter.
func (m *Model) K() uint {
	var k uint
	for k < 24 && m.N<<k < m.A {
		k++
	}
	return k
}

// Update folds one coded mapped value into the statistics.
func (m *Model) Update(mapped uint32) {
	m.A += mapped
	m.N++
	if m.N >= 64 {
		m.A >>= 1
		m.N >>= 1
	}
}

// Writer is an append-only MSB-first bit writer.
type Writer struct {
	buf []byte
	acc uint64
	n   uint // pending bits in acc, right-aligned
}

// NewWriter returns a writer whose output buffer starts with capacity
// capHint (a size estimate, not a limit).
func NewWriter(capHint int) *Writer {
	if capHint < 16 {
		capHint = 16
	}
	return &Writer{buf: make([]byte, 0, capHint)}
}

// Reset re-arms the writer for a fresh stream, reusing the backing
// array grown by earlier encodes.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.n = 0
}

// WriteBits appends the low n bits of v, most significant first.
// n must be <= 57.
func (w *Writer) WriteBits(v uint64, n uint) {
	w.acc = w.acc<<n | v&(1<<n-1)
	w.n += n
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.acc>>w.n))
	}
	w.acc &= 1<<w.n - 1
}

// writeOnes appends q one-bits.
func (w *Writer) writeOnes(q uint32) {
	for q >= 32 {
		w.WriteBits(1<<32-1, 32)
		q -= 32
	}
	w.WriteBits(1<<q-1, uint(q))
}

// WriteRice appends one Golomb-Rice symbol: quotient in unary (ones
// terminated by a zero) then k remainder bits, escaping to a raw
// 16-bit field when the quotient reaches EscQuot. mapped must be
// < 1<<16.
func (w *Writer) WriteRice(mapped uint32, k uint) {
	if q := mapped >> k; q < EscQuot {
		w.writeOnes(q)
		w.WriteBits(uint64(mapped)&(1<<k-1), k+1) // zero terminator, then k remainder bits
		return
	}
	w.writeOnes(EscQuot)
	w.WriteBits(uint64(mapped), escBits+1) // leading zero terminates the unary run, then the raw value
}

// Len reports the bytes a Finish call would currently return.
func (w *Writer) Len() int {
	return len(w.buf) + int(w.n+7)/8
}

// Finish zero-pads to a byte boundary and returns the encoded bytes.
// The writer must be Reset before reuse.
func (w *Writer) Finish() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.n)))
		w.acc, w.n = 0, 0
	}
	return w.buf
}

// Reader consumes an MSB-first bit stream.
type Reader struct {
	data []byte
	pos  int
	acc  uint64
	n    uint
}

// NewReader returns a reader over data. The reader does not copy data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// fill tops the accumulator up to at least want bits, or errors.
func (r *Reader) fill(want uint) error {
	for r.n < want {
		if r.pos >= len(r.data) {
			return ErrTruncated
		}
		r.acc = r.acc<<8 | uint64(r.data[r.pos])
		r.pos++
		r.n += 8
	}
	return nil
}

// ReadBits consumes n bits (n <= 57) and returns them right-aligned.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if err := r.fill(n); err != nil {
		return 0, err
	}
	r.n -= n
	v := r.acc >> r.n
	r.acc &= 1<<r.n - 1
	return v, nil
}

// readUnary counts leading ones up to max, consuming the terminating
// zero unless max is hit first.
func (r *Reader) readUnary(max uint32) (uint32, error) {
	var q uint32
	for {
		if r.n == 0 {
			if err := r.fill(1); err != nil {
				return 0, err
			}
		}
		avail := r.acc & (1<<r.n - 1)
		lead := uint(bits.LeadingZeros64(^(avail << (64 - r.n)))) // run of ones at the front
		if lead > r.n {
			lead = r.n
		}
		if q+uint32(lead) >= max {
			take := uint(max - q)
			r.n -= take
			r.acc &= 1<<r.n - 1
			return max, nil
		}
		q += uint32(lead)
		r.n -= lead
		r.acc &= 1<<r.n - 1
		if r.n > 0 { // a zero terminates the run
			r.n--
			r.acc &= 1<<r.n - 1
			return q, nil
		}
	}
}

// ReadRice consumes one symbol written by WriteRice with parameter k.
func (r *Reader) ReadRice(k uint) (uint32, error) {
	q, err := r.readUnary(EscQuot)
	if err != nil {
		return 0, err
	}
	if q == EscQuot {
		v, err := r.ReadBits(escBits + 1) // terminating zero + raw value
		if err != nil {
			return 0, err
		}
		return uint32(v & (1<<escBits - 1)), nil
	}
	rem, err := r.ReadBits(k)
	if err != nil {
		return 0, err
	}
	return q<<k | uint32(rem), nil
}
