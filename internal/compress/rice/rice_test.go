package rice

import (
	"math/rand"
	"testing"
)

func TestMapSignedRoundTrip(t *testing.T) {
	for q := int32(-70000); q <= 70000; q += 7 {
		if got := UnmapSigned(MapSigned(q)); got != q {
			t.Fatalf("map/unmap %d -> %d", q, got)
		}
	}
	// The small values interleave exactly as JPEG-LS specifies.
	want := map[int32]uint32{0: 0, -1: 1, 1: 2, -2: 3, 2: 4}
	for q, m := range want {
		if got := MapSigned(q); got != m {
			t.Fatalf("MapSigned(%d) = %d, want %d", q, got, m)
		}
	}
}

func TestBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	type rec struct {
		v uint64
		n uint
	}
	var recs []rec
	w := NewWriter(0)
	for i := 0; i < 5000; i++ {
		n := uint(rng.Intn(57) + 1)
		v := rng.Uint64() & (1<<n - 1)
		recs = append(recs, rec{v, n})
		w.WriteBits(v, n)
	}
	r := NewReader(w.Finish())
	for i, rc := range recs {
		got, err := r.ReadBits(rc.n)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != rc.v {
			t.Fatalf("read %d: got %d want %d (n=%d)", i, got, rc.v, rc.n)
		}
	}
}

func TestRiceRoundTripAllK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for k := uint(0); k <= 16; k++ {
		var vals []uint32
		w := NewWriter(0)
		for i := 0; i < 2000; i++ {
			var v uint32
			switch rng.Intn(4) {
			case 0:
				v = uint32(rng.Intn(8)) // typical small residual
			case 1:
				v = uint32(rng.Intn(1 << 11)) // worst-case mapped coefficient
			case 2:
				v = uint32(rng.Intn(1 << 16)) // escape territory
			default:
				v = 0
			}
			vals = append(vals, v)
			w.WriteRice(v, k)
		}
		r := NewReader(w.Finish())
		for i, v := range vals {
			got, err := r.ReadRice(k)
			if err != nil {
				t.Fatalf("k=%d read %d: %v", k, i, err)
			}
			if got != v {
				t.Fatalf("k=%d read %d: got %d want %d", k, i, got, v)
			}
		}
	}
}

func TestRiceAdaptiveModel(t *testing.T) {
	// Coding through the adaptive model must round-trip as long as
	// encoder and decoder update in lockstep.
	rng := rand.New(rand.NewSource(3))
	var vals []int32
	enc := NewModel()
	w := NewWriter(0)
	for i := 0; i < 5000; i++ {
		v := int32(rng.NormFloat64() * 12)
		vals = append(vals, v)
		m := MapSigned(v)
		w.WriteRice(m, enc.K())
		enc.Update(m)
	}
	dec := NewModel()
	r := NewReader(w.Finish())
	for i, v := range vals {
		m, err := r.ReadRice(dec.K())
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		dec.Update(m)
		if got := UnmapSigned(m); got != v {
			t.Fatalf("read %d: got %d want %d", i, got, v)
		}
	}
}

func TestReaderTruncated(t *testing.T) {
	w := NewWriter(0)
	for i := 0; i < 100; i++ {
		w.WriteRice(uint32(i*37%1024), 4)
	}
	full := w.Finish()
	for cut := 0; cut < len(full); cut += 3 {
		r := NewReader(full[:cut])
		var err error
		for i := 0; i < 100; i++ {
			if _, err = r.ReadRice(4); err != nil {
				break
			}
		}
		if cut < len(full)-1 && err == nil {
			// Only the final byte's padding may allow a full read.
			t.Fatalf("cut=%d: no error on truncated stream", cut)
		}
	}
}

func TestReaderAllOnes(t *testing.T) {
	// An adversarial all-ones stream must resolve every symbol via the
	// escape path rather than scanning unboundedly.
	data := make([]byte, 64)
	for i := range data {
		data[i] = 0xff
	}
	r := NewReader(data)
	for i := 0; i < 10; i++ {
		if _, err := r.ReadRice(0); err != nil {
			return // truncation is fine; unbounded scan is not
		}
	}
}
