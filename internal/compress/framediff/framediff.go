// Package framediff implements the temporal-coherence compression the
// paper lists as future work (§7.1, citing Crockett's frame
// differencing): consecutive frames of a time-varying animation differ
// little, so a frame is sent as a byte-wise delta against the previous
// frame, compressed losslessly; periodic keyframes bound error
// propagation and let late-joining viewers resynchronize.
//
// Unlike the stateless FrameCodecs, a frame-differencing stream is
// stateful on both ends, so the package exposes an Encoder/Decoder
// pair rather than a compress.FrameCodec.
package framediff

import (
	"errors"
	"fmt"

	"repro/internal/compress"
	"repro/internal/compress/lzo"
	"repro/internal/img"
)

// Frame kinds on the wire.
const (
	kindKey   = 1
	kindDelta = 2
)

// ErrCorrupt reports an undecodable stream frame.
var ErrCorrupt = errors.New("framediff: corrupt stream")

// Encoder produces a frame-differencing stream.
type Encoder struct {
	// KeyInterval forces a keyframe every N frames (default 16).
	// Keyframes are also emitted on size changes and at stream start.
	KeyInterval int
	// Codec compresses both keyframes and deltas; nil means LZO, the
	// paper's fast lossless choice.
	Codec compress.ByteCodec

	prev  *img.Frame
	since int
}

// NewEncoder returns an encoder with default settings.
func NewEncoder() *Encoder { return &Encoder{KeyInterval: 16} }

func (e *Encoder) codec() compress.ByteCodec {
	if e.Codec != nil {
		return e.Codec
	}
	return lzo.Codec{}
}

// EncodeNext encodes frame f relative to the stream state.
func (e *Encoder) EncodeNext(f *img.Frame) ([]byte, error) {
	interval := e.KeyInterval
	if interval <= 0 {
		interval = 16
	}
	key := e.prev == nil || e.since >= interval-1 ||
		e.prev.W != f.W || e.prev.H != f.H
	var body []byte
	if key {
		raw, err := compress.Raw{}.EncodeFrame(f)
		if err != nil {
			return nil, err
		}
		body, err = e.codec().Compress(raw)
		if err != nil {
			return nil, err
		}
		e.since = 0
	} else {
		diff := make([]byte, len(f.Pix))
		for i := range diff {
			diff[i] = f.Pix[i] - e.prev.Pix[i] // wrapping subtract
		}
		var err error
		body, err = e.codec().Compress(diff)
		if err != nil {
			return nil, err
		}
		e.since++
	}
	e.prev = f.Clone()
	out := make([]byte, 1+len(body))
	if key {
		out[0] = kindKey
	} else {
		out[0] = kindDelta
	}
	copy(out[1:], body)
	return out, nil
}

// Reset clears the stream state, forcing the next frame to be a key.
func (e *Encoder) Reset() { e.prev = nil; e.since = 0 }

// Decoder consumes a frame-differencing stream.
type Decoder struct {
	// Codec must match the encoder's (nil = LZO).
	Codec compress.ByteCodec

	prev *img.Frame
}

// NewDecoder returns a decoder with default settings.
func NewDecoder() *Decoder { return &Decoder{} }

func (d *Decoder) codec() compress.ByteCodec {
	if d.Codec != nil {
		return d.Codec
	}
	return lzo.Codec{}
}

// DecodeNext decodes the next stream frame.
func (d *Decoder) DecodeNext(data []byte) (*img.Frame, error) {
	if len(data) < 1 {
		return nil, ErrCorrupt
	}
	body, err := d.codec().Decompress(data[1:])
	if err != nil {
		return nil, err
	}
	switch data[0] {
	case kindKey:
		f, err := compress.Raw{}.DecodeFrame(body)
		if err != nil {
			return nil, err
		}
		d.prev = f
		return f.Clone(), nil
	case kindDelta:
		if d.prev == nil {
			return nil, fmt.Errorf("framediff: delta before any keyframe")
		}
		if len(body) != len(d.prev.Pix) {
			return nil, fmt.Errorf("framediff: delta of %d bytes against %d-byte frame", len(body), len(d.prev.Pix))
		}
		f := img.NewFrame(d.prev.W, d.prev.H)
		for i := range body {
			f.Pix[i] = d.prev.Pix[i] + body[i]
		}
		d.prev = f
		return f.Clone(), nil
	}
	return nil, fmt.Errorf("framediff: unknown frame kind %d", data[0])
}

// Reset clears the decoder; the next frame must be a key.
func (d *Decoder) Reset() { d.prev = nil }
