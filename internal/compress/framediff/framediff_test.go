package framediff

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/compress/bzp"
	"repro/internal/datagen"
	"repro/internal/img"
	"repro/internal/render"
	"repro/internal/tf"
)

// animation renders a few coherent frames of the rotating jet.
func animation(t testing.TB, n, size int) []*img.Frame {
	t.Helper()
	g := datagen.NewJetScaled(0.2, n)
	out := make([]*img.Frame, n)
	for i := 0; i < n; i++ {
		v, err := g.Step(i)
		if err != nil {
			t.Fatal(err)
		}
		cam, err := render.NewOrbitCamera(v.Dims, 0.6+0.02*float64(i), 0.35, 1.3)
		if err != nil {
			t.Fatal(err)
		}
		im, _, err := render.Render(v, cam, tf.Jet(), render.DefaultOptions(), size, size)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = im.ToFrame(0)
	}
	return out
}

func TestStreamRoundTrip(t *testing.T) {
	frames := animation(t, 6, 64)
	enc := NewEncoder()
	dec := NewDecoder()
	for i, f := range frames {
		data, err := enc.EncodeNext(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.DecodeNext(data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !got.Equal(f) {
			t.Fatalf("frame %d: lossless round trip failed", i)
		}
	}
}

func TestFirstFrameIsKey(t *testing.T) {
	frames := animation(t, 1, 32)
	enc := NewEncoder()
	data, err := enc.EncodeNext(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != kindKey {
		t.Fatal("first frame must be a keyframe")
	}
}

func TestDeltasSmallerThanKeys(t *testing.T) {
	frames := animation(t, 5, 64)
	enc := NewEncoder()
	keyLen := 0
	for i, f := range frames {
		data, err := enc.EncodeNext(f)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			keyLen = len(data)
			continue
		}
		if data[0] != kindDelta {
			t.Fatalf("frame %d not a delta", i)
		}
		// Temporal coherence must make deltas cheaper than keys.
		if len(data) >= keyLen {
			t.Fatalf("delta %d (%d B) not smaller than key (%d B)", i, len(data), keyLen)
		}
	}
}

func TestKeyInterval(t *testing.T) {
	frames := animation(t, 5, 32)
	enc := NewEncoder()
	enc.KeyInterval = 2
	kinds := []byte{}
	for _, f := range frames {
		data, err := enc.EncodeNext(f)
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, data[0])
	}
	want := []byte{kindKey, kindDelta, kindKey, kindDelta, kindKey}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestSizeChangeForcesKey(t *testing.T) {
	a := img.NewFrame(16, 16)
	b := img.NewFrame(32, 16)
	enc := NewEncoder()
	if _, err := enc.EncodeNext(a); err != nil {
		t.Fatal(err)
	}
	data, err := enc.EncodeNext(b)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != kindKey {
		t.Fatal("size change must force a keyframe")
	}
}

func TestDecoderRejectsDeltaFirst(t *testing.T) {
	frames := animation(t, 2, 32)
	enc := NewEncoder()
	if _, err := enc.EncodeNext(frames[0]); err != nil {
		t.Fatal(err)
	}
	delta, err := enc.EncodeNext(frames[1])
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	if _, err := dec.DecodeNext(delta); err == nil {
		t.Fatal("delta without keyframe accepted")
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	dec := NewDecoder()
	if _, err := dec.DecodeNext(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := dec.DecodeNext([]byte{9, 1, 2, 3}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestResetForcesKey(t *testing.T) {
	frames := animation(t, 3, 32)
	enc := NewEncoder()
	dec := NewDecoder()
	for _, f := range frames[:2] {
		data, err := enc.EncodeNext(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.DecodeNext(data); err != nil {
			t.Fatal(err)
		}
	}
	enc.Reset()
	dec.Reset()
	data, err := enc.EncodeNext(frames[2])
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != kindKey {
		t.Fatal("reset must force a keyframe")
	}
	got, err := dec.DecodeNext(data)
	if err != nil || !got.Equal(frames[2]) {
		t.Fatalf("post-reset decode: %v", err)
	}
}

func TestCustomCodec(t *testing.T) {
	frames := animation(t, 3, 32)
	enc := &Encoder{KeyInterval: 16, Codec: bzp.Codec{}}
	dec := &Decoder{Codec: bzp.Codec{}}
	for i, f := range frames {
		data, err := enc.EncodeNext(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.DecodeNext(data)
		if err != nil || !got.Equal(f) {
			t.Fatalf("frame %d with bzip: %v", i, err)
		}
	}
}

// The headline claim: on a coherent animation, frame differencing
// beats sending each frame independently with the same lossless codec.
func TestBeatsIndependentLossless(t *testing.T) {
	frames := animation(t, 6, 64)
	enc := NewEncoder()
	var streamBytes, independentBytes int
	indep := compress.ByteFrame{C: compress.ByteCodec(nil)}
	_ = indep
	for _, f := range frames {
		data, err := enc.EncodeNext(f)
		if err != nil {
			t.Fatal(err)
		}
		streamBytes += len(data)
		lz, err := (compress.ByteFrame{C: lzoCodec()}).EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		independentBytes += len(lz)
	}
	if streamBytes >= independentBytes {
		t.Fatalf("frame differencing (%d B) not smaller than independent LZO (%d B)", streamBytes, independentBytes)
	}
}

func lzoCodec() compress.ByteCodec {
	return NewEncoder().codec()
}

func BenchmarkEncodeDelta(b *testing.B) {
	frames := animation(b, 2, 128)
	b.SetBytes(int64(len(frames[1].Pix)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := NewEncoder()
		if _, err := enc.EncodeNext(frames[0]); err != nil {
			b.Fatal(err)
		}
		if _, err := enc.EncodeNext(frames[1]); err != nil {
			b.Fatal(err)
		}
	}
}
