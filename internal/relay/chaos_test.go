package relay

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/display"
	"repro/internal/fault"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// idCollector records every frame ID a viewer displays and flags
// duplicates — the "no frame delivered twice" half of the re-parent
// contract.
type idCollector struct {
	mu   sync.Mutex
	seen map[uint32]int
	n    int
}

func collect(v *display.Viewer) *idCollector {
	c := &idCollector{seen: map[uint32]int{}}
	go func() {
		for f := range v.Frames() {
			c.mu.Lock()
			c.seen[f.ID]++
			c.n++
			c.mu.Unlock()
		}
	}()
	return c
}

func (c *idCollector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *idCollector) dups() []uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []uint32
	for id, n := range c.seen {
		if n > 1 {
			out = append(out, id)
		}
	}
	return out
}

// TestChaosInteriorRelayKill kills an interior relay mid-stream with a
// scripted fault.Injector kill and asserts the re-parenting contract:
// every downstream viewer resumes within the reconnect+failover budget
// (the orphaned edges re-attach to their grandparent, the root), no
// viewer sees any frame twice, and the edges record the re-parent.
func TestChaosInteriorRelayKill(t *testing.T) {
	testutil.CheckGoroutines(t)
	retry := transport.RetryPolicy{
		Base: 10 * time.Millisecond, Max: 50 * time.Millisecond,
		Factor: 2, Jitter: -1, MaxAttempts: 3,
	}
	failover := 25 * time.Millisecond
	// The budget a viewer outage must fit in: the session burns its
	// whole retry ladder against the dead parent, the node pauses one
	// failover backoff, dials the grandparent, and frames resume. The
	// 20x factor absorbs -race scheduler noise; the point of the
	// assertion is "sub-second with these knobs", not a tight bound.
	budget := 20 * (retry.Base + 2*retry.Base + 4*retry.Base + failover + 100*time.Millisecond)

	root, err := stream.ListenAndServe("127.0.0.1:0", stream.Config{Target: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()

	inj := fault.New(fault.Plan{})
	interior, err := ListenAndServe("127.0.0.1:0", Config{
		Name:         "interior",
		Parents:      []string{root.Addr().String()},
		Stream:       stream.Config{Target: 50 * time.Millisecond},
		Retry:        retry,
		WrapUpstream: inj.Wrapper(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer interior.Close()

	var edges []*Node
	for _, name := range []string{"edge-0", "edge-1"} {
		e, err := ListenAndServe("127.0.0.1:0", Config{
			Name: name,
			// Ancestor chain: parent first, then the grandparent (root)
			// as the re-parent target.
			Parents:         []string{interior.Addr().String(), root.Addr().String()},
			Stream:          stream.Config{Target: 50 * time.Millisecond},
			Retry:           retry,
			FailoverBackoff: failover,
			WrapUpstream:    inj.Wrapper(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		edges = append(edges, e)
	}

	var collectors []*idCollector
	for _, e := range edges {
		ep, err := transport.Dial(e.Addr().String(), transport.RoleDisplay, nil)
		if err != nil {
			t.Fatal(err)
		}
		v := display.NewViewer(ep)
		defer v.Close()
		collectors = append(collectors, collect(v))
	}

	// Renderer streams continuously into the root for the whole test.
	rend, err := transport.Dial(root.Addr().String(), transport.RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()
	var stop atomic.Bool
	var sendWG sync.WaitGroup
	sendWG.Add(1)
	go func() {
		defer sendWG.Done()
		for id := uint32(0); !stop.Load(); id++ {
			if err := rend.SendImage(testFrame(t, id, 32)); err != nil {
				return
			}
			time.Sleep(15 * time.Millisecond)
		}
	}()
	defer func() { stop.Store(true); sendWG.Wait() }()

	waitFor(t, 10*time.Second, "frames flowing through the interior tier", func() bool {
		for _, c := range collectors {
			if c.count() < 3 {
				return false
			}
		}
		return true
	})

	// Scripted kill: sever every fault-wrapped link (interior→root and
	// both edge→interior) and keep the interior daemon down so the
	// edges' retries against it fail and failover engages.
	before := make([]int, len(collectors))
	for i, c := range collectors {
		before[i] = c.count()
	}
	killed := inj.KillAll()
	if killed == 0 {
		t.Fatal("scripted kill severed no connections")
	}
	interior.Close()
	killAt := time.Now()

	waitFor(t, budget, "viewers to resume after the interior kill", func() bool {
		for i, c := range collectors {
			if c.count() < before[i]+3 {
				return false
			}
		}
		return true
	})
	resumed := time.Since(killAt)
	t.Logf("viewers resumed %v after the kill (budget %v, %d links killed)", resumed, budget, killed)

	for i, c := range collectors {
		if dups := c.dups(); len(dups) > 0 {
			t.Errorf("viewer %d saw frames twice: %v", i, dups)
		}
	}
	for _, e := range edges {
		if got := e.Stats().Reparents.Load(); got < 1 {
			t.Errorf("edge %s reparents = %d, want >= 1", e.cfg.Name, got)
		}
		if p := e.Parent(); p != root.Addr().String() {
			t.Errorf("edge %s parent = %q, want the grandparent %q", e.cfg.Name, p, root.Addr())
		}
	}
	if ks := inj.Stats().Kills; ks == 0 {
		t.Error("injector recorded no kills")
	}
}

// TestReparentReplayDoesNotChargeBudget is the regression test for a
// double-count bug: after a re-parent during active overload, the new
// parent replays frames the old parent already delivered, and those
// dedup-window duplicates used to be charged against the memory budget
// before the dup check dropped them — so the replay burst itself could
// push the governor up the degradation ladder. The upstream in-flight
// charge must happen only past the dup check.
func TestReparentReplayDoesNotChargeBudget(t *testing.T) {
	testutil.CheckGoroutines(t)
	im := testFrame(t, 1, 8)
	payload, err := im.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Budget of exactly one payload: any single dup charge drives
	// pressure to 1.0 and the transition counters record it.
	gov := guard.NewGovernor(guard.GovernorConfig{BudgetBytes: int64(len(payload))})
	cfg := Config{Name: "n", Parents: []string{"unreachable:0"}, Guard: gov}
	cfg = cfg.withDefaults()
	cfg.Stream.Guard = gov
	// Hand-built node: the upstream loop is irrelevant here, onImage is
	// driven directly with crafted upstream messages.
	n := &Node{
		cfg:      cfg,
		broker:   stream.NewBroker(cfg.Stream),
		log:      obs.NewLogger("relay"),
		seen:     map[uint32]struct{}{},
		breakers: map[string]*guard.Breaker{},
		done:     make(chan struct{}),
	}
	n.upstreamAcct = gov.Account("relay-upstream")
	defer n.broker.Close()

	n.onImage(transport.Message{Type: transport.MsgImage, Payload: payload})
	if got := n.stats.FramesIn.Load(); got != 1 {
		t.Fatalf("frames in = %d, want 1", got)
	}
	base := gov.Transitions()

	// Re-parent replay burst: the new parent re-sends the delivered
	// frame many times over.
	const replays = 50
	for i := 0; i < replays; i++ {
		n.onImage(transport.Message{Type: transport.MsgImage, Payload: payload})
		if used := n.upstreamAcct.Used(); used != 0 {
			t.Fatalf("replay %d left %d bytes charged to the upstream account", i, used)
		}
	}
	if got := n.stats.DupDropped.Load(); got != replays {
		t.Fatalf("dup dropped = %d, want %d", got, replays)
	}
	if tr := gov.Transitions(); tr != base {
		t.Fatalf("replay burst moved the degradation ladder: %v -> %v", base, tr)
	}
	if used := gov.Used(); used != 0 {
		t.Fatalf("governor holds %d bytes after the burst", used)
	}
}
