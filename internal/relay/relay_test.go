package relay

import (
	"net"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/display"
	"repro/internal/img"
	"repro/internal/stream"
	"repro/internal/testutil"
	"repro/internal/transport"
)

// testFrame builds a small deterministic raw frame message.
func testFrame(t *testing.T, id uint32, side int) *transport.ImageMsg {
	t.Helper()
	f := img.NewFrame(side, side)
	for i := range f.Pix {
		f.Pix[i] = byte(int(id) + i)
	}
	data, err := compress.Raw{}.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	return &transport.ImageMsg{
		FrameID:    id,
		PieceCount: 1,
		X1:         uint16(side), Y1: uint16(side),
		W: uint16(side), H: uint16(side),
		Codec: "raw",
		Data:  data,
	}
}

// fastRetry keeps test reconnect budgets small.
func fastRetry() transport.RetryPolicy {
	return transport.RetryPolicy{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond, Factor: 2, Jitter: -1, MaxAttempts: 3}
}

func waitFor(t *testing.T, d time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTreeFanOut: a 2-tier tree (root + 2 edges) delivers every frame
// to viewers on both edges, the root encodes per edge link rather than
// per viewer, and each relay tier records its own encode share.
func TestTreeFanOut(t *testing.T) {
	testutil.CheckGoroutines(t)
	tree, err := BuildTree(TreeSpec{
		Tiers: 2, FanOut: 2,
		Stream: stream.Config{Target: 50 * time.Millisecond},
		Retry:  fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	waitFor(t, 5*time.Second, "edges attached", func() bool {
		for _, n := range tree.Edges() {
			if n.Parent() == "" {
				return false
			}
		}
		return true
	})

	// Two viewers per edge daemon.
	var viewers []*display.Viewer
	for _, addr := range tree.EdgeAddrs() {
		for i := 0; i < 2; i++ {
			ep, err := transport.Dial(addr, transport.RoleDisplay, nil)
			if err != nil {
				t.Fatal(err)
			}
			v := display.NewViewer(ep)
			defer v.Close()
			viewers = append(viewers, v)
			go func() {
				for range v.Frames() {
				}
			}()
		}
	}

	rend, err := transport.Dial(tree.Root.Addr().String(), transport.RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()
	const frames = 10
	for id := uint32(0); id < frames; id++ {
		if err := rend.SendImage(testFrame(t, id, 32)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(15 * time.Millisecond)
	}

	waitFor(t, 15*time.Second, "all viewers to drain the animation", func() bool {
		for _, v := range viewers {
			if v.Stats().Frames < frames {
				return false
			}
		}
		return true
	})

	for _, n := range tree.Edges() {
		if got := n.Stats().FramesIn.Load(); got != frames {
			t.Errorf("edge %s frames in = %d, want %d", n.cfg.Name, got, frames)
		}
	}
	// The root fans out to 2 relay links, not 4 viewers: its per-frame
	// encode count is bounded by distinct edge operating points (≤ 2),
	// and each tier contributes its own encodes.
	tiers := tree.TierEncodes()
	if len(tiers) != 2 {
		t.Fatalf("tier encode rows = %d, want 2", len(tiers))
	}
	if tiers[0] == 0 || tiers[1] == 0 {
		t.Errorf("expected encodes at both tiers, got %v", tiers)
	}
	if tiers[0] > 2*frames {
		t.Errorf("root encodes %d exceed 2 links x %d frames — fan-out cache not engaged", tiers[0], frames)
	}

	top := tree.Topology()
	if top.RootClients != 2 {
		t.Errorf("root clients = %d, want the 2 edge relays", top.RootClients)
	}
	if len(top.Tiers) != 1 || len(top.Tiers[0]) != 2 {
		t.Fatalf("topology shape %dx?, want 1 tier of 2", len(top.Tiers))
	}
	for _, st := range top.Tiers[0] {
		if !st.Connected || st.Parent != top.RootAddr {
			t.Errorf("edge %s parent %q, want %q", st.Name, st.Parent, top.RootAddr)
		}
		if len(st.Clients) != 2 {
			t.Errorf("edge %s clients = %d, want 2 viewers", st.Name, len(st.Clients))
		}
	}
}

// TestControlsFlowUpTree: a user-control message sent by a viewer at
// the edge reaches a renderer connected to the root.
func TestControlsFlowUpTree(t *testing.T) {
	testutil.CheckGoroutines(t)
	tree, err := BuildTree(TreeSpec{
		Tiers: 2, FanOut: 1,
		Stream: stream.Config{Target: 50 * time.Millisecond},
		Retry:  fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	waitFor(t, 5*time.Second, "edge attached", func() bool { return tree.Edges()[0].Parent() != "" })

	rend, err := transport.Dial(tree.Root.Addr().String(), transport.RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()
	view, err := transport.Dial(tree.EdgeAddrs()[0], transport.RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	want := &transport.ControlMsg{Tag: "view", Data: []byte("orbit")}
	if err := view.SendControl(want); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-rend.Inbox():
		if m.Type != transport.MsgControl {
			t.Fatalf("renderer got message type %d, want control", m.Type)
		}
		got, err := transport.UnmarshalControl(m.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag != want.Tag || string(got.Data) != string(want.Data) {
			t.Fatalf("control %q/%q, want %q/%q", got.Tag, got.Data, want.Tag, want.Data)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("control never reached the renderer through the tree")
	}
	if n := tree.Edges()[0].Stats().ControlsForwarded.Load(); n != 1 {
		t.Errorf("edge controls forwarded = %d, want 1", n)
	}
}

// TestNodeDedup: a frame replayed by a fresh parent after re-parenting
// is dropped, not delivered twice.
func TestNodeDedup(t *testing.T) {
	testutil.CheckGoroutines(t)
	root, err := stream.ListenAndServe("127.0.0.1:0", stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	n, err := ListenAndServe("127.0.0.1:0", Config{
		Parents: []string{root.Addr().String()},
		Retry:   fastRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	payload, err := testFrame(t, 42, 16).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	n.onImage(transport.Message{Type: transport.MsgImage, Payload: payload})
	n.onImage(transport.Message{Type: transport.MsgImage, Payload: payload}) // replay after a simulated re-parent
	if got := n.Stats().FramesIn.Load(); got != 1 {
		t.Fatalf("frames in = %d, want 1", got)
	}
	if got := n.Stats().DupDropped.Load(); got != 1 {
		t.Fatalf("dup dropped = %d, want 1", got)
	}
}

// TestNodeNoParents: construction fails without at least one parent.
func TestNodeNoParents(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := NewNode(ln, Config{}); err == nil {
		t.Fatal("NewNode with no parents succeeded")
	}
}

// TestTreeSpecValidation rejects nonsense shapes.
func TestTreeSpecValidation(t *testing.T) {
	for _, spec := range []TreeSpec{
		{Tiers: 0},
		{Tiers: 2, FanOut: 0},
	} {
		if _, err := BuildTree(spec); err == nil {
			t.Errorf("BuildTree(%+v) succeeded, want error", spec)
		}
	}
}
