// Package relay turns display daemons into a broadcast tree: a relay
// node connects upstream to a parent daemon (the render-site daemon or
// another relay) exactly as a display client would, and re-serves the
// frames it receives to its own downstream clients — viewers or further
// relays — through an embedded adaptive stream broker.
//
// The shape follows the network-data-cache argument of Bethel et al.:
// placing a cache tier near consumers turns a wide-area broadcast
// problem into a local one. Because a relay looks like a display client
// to its parent, every interior edge gets the parent broker's per-link
// adaptive quality for free, and because each relay runs its own
// encode-once fan-out cache, a frame is encoded once per distinct
// operating point per tier — not once per viewer at the root. Root
// egress therefore scales with the tree fan-out instead of the viewer
// population.
//
// Failure handling reuses the fault machinery of the transport layer:
// the upstream link is a transport.Session (auto-reconnect with
// backoff, optional heartbeat to catch silent partitions), and when a
// parent stays dead past the session's attempt budget the node
// re-parents to the next address in its configured ancestor list — its
// grandparent, then the root, then any explicit fallback — with bounded
// backoff between laps. A dying relay thus degrades the tree rather
// than partitioning its subtree's viewers. Frames that arrive again
// after a re-parent (the new parent is still fanning out frames the old
// parent already delivered) are deduplicated by frame ID, so no viewer
// sees a frame twice.
package relay

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/obs/provenance"
	"repro/internal/stream"
	"repro/internal/transport"
)

// Config parameterizes a relay node.
type Config struct {
	// Name labels the node in status output and logs.
	Name string
	// Tier is the node's depth in the tree (root daemon = 0); it
	// labels the node's metrics so scrapes from different tiers are
	// distinguishable without host inference.
	Tier int
	// Prov, when set, records per-frame provenance events (upstream
	// receives, dedup suppressions, and the embedded broker's encode/
	// send/drop lifecycle) for the /debug/frames surface.
	Prov *provenance.Log
	// Parents is the upstream preference order: the parent first, then
	// re-parent targets (grandparent, root, explicit fallbacks). At
	// least one address is required.
	Parents []string
	// Stream configures the downstream broker (per-client adaptive
	// quality, encode cache, pacing). Zero value = stream defaults.
	Stream stream.Config
	// Retry paces reconnect attempts against one parent before the
	// node fails over to the next (zero value = transport.DefaultRetry).
	Retry transport.RetryPolicy
	// Heartbeat, when positive, probes the upstream link on this
	// interval and declares it dead after PeerTimeout of silence — the
	// only way to notice a stalled parent TCP keeps open.
	Heartbeat   time.Duration
	PeerTimeout time.Duration
	// FailoverBackoff is the pause after a full unsuccessful lap
	// through Parents, doubling per lap up to FailoverMax (defaults
	// 250ms and 5s) — bounded backoff, the tree keeps trying forever.
	FailoverBackoff time.Duration
	FailoverMax     time.Duration
	// DedupWindow is how many delivered frame IDs the node remembers
	// for duplicate suppression across re-parents (default 1024).
	DedupWindow int
	// Guard, when set, attaches the node to a process resource
	// governor: it is passed through to the embedded broker (unless
	// Stream.Guard is already set), in-flight upstream payload bytes
	// charge a "relay-upstream" account, and the node identifies itself
	// as a relay in its upstream hello so parent admission control
	// spares it when shedding. nil = unguarded.
	Guard *guard.Governor
	// BreakerThreshold and BreakerCooldown parameterize the per-parent
	// circuit breakers on the upstream session: after BreakerThreshold
	// consecutive failures against one parent its breaker opens and
	// reconnect attempts against it are refused (consuming retry
	// budget, so failover advances faster) until BreakerCooldown
	// passes and a half-open probe succeeds. Zero values take the
	// guard package defaults.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// WrapUpstream wraps each upstream dial (wan shaping, fault
	// injection); nil leaves the socket raw.
	WrapUpstream func(net.Conn) net.Conn
	// Seed seeds the session backoff jitter (0 = 1).
	Seed int64
	// Logf receives diagnostics (nil silences).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.FailoverBackoff <= 0 {
		c.FailoverBackoff = 250 * time.Millisecond
	}
	if c.FailoverMax <= 0 {
		c.FailoverMax = 5 * time.Second
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 1024
	}
	return c
}

// NodeStats counts relay-node activity.
type NodeStats struct {
	// PiecesIn and FramesIn count upstream input (pieces ingested,
	// frames completed and offered downstream).
	PiecesIn atomic.Int64
	FramesIn atomic.Int64
	// DupDropped counts upstream pieces dropped because their frame was
	// already delivered downstream (re-parent overlap).
	DupDropped atomic.Int64
	// Reparents counts successful attaches to a different parent than
	// the previous one.
	Reparents atomic.Int64
	// FailedParents counts terminal session failures (one parent's
	// attempt budget exhausted).
	FailedParents atomic.Int64
	// AcksSent counts receive reports sent upstream (the parent's RTT
	// estimator feeds on them).
	AcksSent atomic.Int64
	// ControlsForwarded counts user-control messages passed upstream.
	ControlsForwarded atomic.Int64
}

// Status is a relay node's observable state, served under
// /debug/status.
type Status struct {
	Name    string   `json:"name"`
	Addr    string   `json:"addr"`
	Parents []string `json:"parents"`
	// Parent is the currently attached upstream address ("" while
	// orphaned and searching).
	Parent    string `json:"parent"`
	Connected bool   `json:"connected"`

	Reparents         int64 `json:"reparents"`
	FailedParents     int64 `json:"failed_parents"`
	FramesIn          int64 `json:"frames_in"`
	DupDropped        int64 `json:"dup_dropped"`
	AcksSent          int64 `json:"acks_sent"`
	ControlsForwarded int64 `json:"controls_forwarded"`

	Session transport.SessionState `json:"session"`

	// Breakers maps each configured parent address to its circuit
	// breaker state (closed/open/half-open); empty when unguarded or
	// before any attach attempt.
	Breakers map[string]string `json:"breakers,omitempty"`

	// Downstream broker view: encode counts are this tier's share of
	// the tree's total encodes; Clients carries per-link quality.
	Encodes    int64                   `json:"encodes"`
	FramesOut  int64                   `json:"frames_out"`
	BytesOut   int64                   `json:"bytes_out"`
	CacheHits  int64                   `json:"cache_hits"`
	CacheIvals int64                   `json:"cache_invalidations"`
	Clients    []stream.ClientSnapshot `json:"clients"`
}

// Node is one relay daemon: an upstream session consuming frames from
// its parent and a downstream broker re-serving them.
type Node struct {
	cfg    Config
	broker *stream.Broker
	ln     net.Listener
	log    *obs.Logger

	mu         sync.Mutex
	sess       *transport.Session
	parent     string // currently attached parent address
	lastParent string // last successfully attached parent (survives detach)
	parentIdx  int    // index into cfg.Parents being (or to be) tried

	// seen is the delivered-frame window for duplicate suppression;
	// seenOrder evicts oldest-first.
	seen      map[uint32]struct{}
	seenOrder []uint32

	// upstreamAcct ledgers in-flight upstream payload bytes against the
	// resource governor (nil-safe when unguarded); breakers holds one
	// circuit breaker per parent address, created lazily under mu.
	upstreamAcct *guard.Account
	breakers     map[string]*guard.Breaker

	stats NodeStats
	done  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

// NewNode starts a relay on the listener, attaching upstream to the
// first reachable parent. The node serves downstream immediately;
// frames flow once a parent accepts it.
func NewNode(ln net.Listener, cfg Config) (*Node, error) {
	if len(cfg.Parents) == 0 {
		return nil, fmt.Errorf("relay: no parent addresses configured")
	}
	cfg = cfg.withDefaults()
	if cfg.Guard != nil && cfg.Stream.Guard == nil {
		cfg.Stream.Guard = cfg.Guard
	}
	n := &Node{
		cfg:      cfg,
		broker:   stream.NewBroker(cfg.Stream),
		ln:       ln,
		log:      obs.NewLogger("relay"),
		seen:     make(map[uint32]struct{}),
		breakers: make(map[string]*guard.Breaker),
		done:     make(chan struct{}),
	}
	if cfg.Guard != nil {
		n.upstreamAcct = cfg.Guard.Account("relay-upstream")
	}
	if cfg.Logf != nil {
		n.log.SetFunc(cfg.Logf)
	}
	if cfg.Prov != nil {
		n.broker.SetProvenance(cfg.Prov)
	}
	n.broker.SetControlForward(n.forwardControl)
	n.wg.Add(2)
	go func() {
		defer n.wg.Done()
		_ = n.broker.Serve(ln)
	}()
	go func() {
		defer n.wg.Done()
		n.upstreamLoop()
	}()
	return n, nil
}

// ListenAndServe starts a relay node on addr.
func ListenAndServe(addr string, cfg Config) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("relay: listen %s: %w", addr, err)
	}
	return NewNode(ln, cfg)
}

// Addr returns the node's downstream listen address.
func (n *Node) Addr() net.Addr { return n.ln.Addr() }

// Broker exposes the downstream broker (stats, snapshots, cache).
func (n *Node) Broker() *stream.Broker { return n.broker }

// Stats exposes the node counters.
func (n *Node) Stats() *NodeStats { return &n.stats }

// Provenance exposes the node's frame-provenance log (nil when not
// configured).
func (n *Node) Provenance() *provenance.Log { return n.cfg.Prov }

// Logger exposes the node's component logger.
func (n *Node) Logger() *obs.Logger { return n.log }

// Parent reports the currently attached upstream address ("" while
// orphaned).
func (n *Node) Parent() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.parent
}

// Status snapshots the node for /debug/status.
func (n *Node) Status() Status {
	n.mu.Lock()
	parent := n.parent
	sess := n.sess
	n.mu.Unlock()
	st := Status{
		Name:              n.cfg.Name,
		Addr:              n.ln.Addr().String(),
		Parents:           append([]string(nil), n.cfg.Parents...),
		Parent:            parent,
		Connected:         parent != "",
		Reparents:         n.stats.Reparents.Load(),
		FailedParents:     n.stats.FailedParents.Load(),
		FramesIn:          n.stats.FramesIn.Load(),
		DupDropped:        n.stats.DupDropped.Load(),
		AcksSent:          n.stats.AcksSent.Load(),
		ControlsForwarded: n.stats.ControlsForwarded.Load(),
		Encodes:           n.broker.Stats().Encodes.Load(),
		FramesOut:         n.broker.Stats().FramesOut.Load(),
		BytesOut:          n.broker.Stats().BytesOut.Load(),
		CacheHits:         n.broker.Cache().Stats().Hits.Load(),
		CacheIvals:        n.broker.Cache().Stats().Invalidations.Load(),
		Clients:           n.broker.ClientSnapshots(),
	}
	if sess != nil {
		st.Session = sess.State()
	}
	n.mu.Lock()
	if len(n.breakers) > 0 {
		st.Breakers = make(map[string]string, len(n.breakers))
		for addr, br := range n.breakers {
			st.Breakers[addr] = br.StateName()
		}
	}
	n.mu.Unlock()
	return st
}

// Instrument registers the node's counters on a metrics registry along
// with its broker's. Every relay series carries the node's name and
// tier as constant labels, so scrapes collected across a tree are
// distinguishable without host inference.
func (n *Node) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	labels := fmt.Sprintf(`{node=%q,tier="%d"}`, n.cfg.Name, n.cfg.Tier)
	st := &n.stats
	reg.CounterFunc("relay_frames_in_total"+labels, "Frames completed from the upstream parent.", st.FramesIn.Load)
	reg.CounterFunc("relay_dup_dropped_total"+labels, "Duplicate frames dropped after re-parenting.", st.DupDropped.Load)
	reg.CounterFunc("relay_reparents_total"+labels, "Successful attaches to a different parent.", st.Reparents.Load)
	reg.CounterFunc("relay_failed_parents_total"+labels, "Parents given up on after exhausting reconnect attempts.", st.FailedParents.Load)
	reg.CounterFunc("relay_acks_sent_total"+labels, "Receive reports sent upstream.", st.AcksSent.Load)
	reg.CounterFunc("relay_controls_forwarded_total"+labels, "User-control messages forwarded upstream.", st.ControlsForwarded.Load)
	reg.GaugeFunc("relay_connected"+labels, "1 while attached to a parent.", func() float64 {
		if n.Parent() != "" {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("relay_tier"+fmt.Sprintf(`{node=%q}`, n.cfg.Name), "The node's depth in the relay tree (root = 0).", func() float64 {
		return float64(n.cfg.Tier)
	})
	n.broker.Instrument(reg)
}

// breakerFor returns (lazily creating) the circuit breaker for one
// parent address.
func (n *Node) breakerFor(addr string) *guard.Breaker {
	n.mu.Lock()
	defer n.mu.Unlock()
	br, ok := n.breakers[addr]
	if !ok {
		br = guard.NewBreaker(guard.BreakerConfig{
			Threshold: n.cfg.BreakerThreshold,
			Cooldown:  n.cfg.BreakerCooldown,
		})
		n.breakers[addr] = br
	}
	return br
}

// Probe acquires and releases the node's lock and the embedded
// broker's — the watchdog's deadlock self-check.
func (n *Node) Probe() {
	n.mu.Lock()
	n.mu.Unlock() //nolint:staticcheck // the probe is exactly acquire-then-release
	n.broker.Probe()
}

// upstreamLoop attaches to parents in preference order for the life of
// the node: each parent is served through an auto-reconnecting session;
// when a session fails terminally (the parent stayed dead past the
// retry budget) the loop advances to the next parent, wrapping around
// with bounded exponential backoff between laps. This is the
// re-parenting state machine: attached → orphaned → searching →
// attached.
func (n *Node) upstreamLoop() {
	lap := 0
	for {
		if n.isClosed() {
			return
		}
		n.mu.Lock()
		idx := n.parentIdx
		n.mu.Unlock()
		addr := n.cfg.Parents[idx]
		sess, err := transport.NewSession(transport.SessionConfig{
			Role:        transport.RoleDisplay,
			Kind:        transport.KindRelay,
			Addr:        addr,
			Wrap:        n.cfg.WrapUpstream,
			Retry:       n.cfg.Retry,
			Heartbeat:   n.cfg.Heartbeat,
			PeerTimeout: n.cfg.PeerTimeout,
			Seed:        n.cfg.Seed,
			Breaker:     n.breakerFor(addr),
			Logf:        n.log.Infof,
			Sleep:       n.pause,
		})
		if err != nil {
			n.stats.FailedParents.Add(1)
			n.log.Warnf("parent %s unreachable: %v", addr, err)
			if n.advanceParent(idx) {
				lap++
				n.backoff(lap)
			}
			continue
		}
		if n.isClosed() {
			sess.Close()
			return
		}
		lap = 0
		n.mu.Lock()
		prev := n.lastParent
		n.sess = sess
		n.parent = addr
		n.lastParent = addr
		n.mu.Unlock()
		if prev != "" && prev != addr {
			n.stats.Reparents.Add(1)
			n.log.Warnf("re-parented from %s to %s", prev, addr)
		} else {
			n.log.Infof("attached to parent %s", addr)
		}
		for m := range sess.Inbox() {
			switch m.Type {
			case transport.MsgImage:
				n.onImage(m)
			}
		}
		// Terminal session end: the parent stayed dead through the
		// whole retry budget (or the node is closing).
		n.mu.Lock()
		n.sess = nil
		n.parent = ""
		n.mu.Unlock()
		sess.Close()
		if n.isClosed() {
			return
		}
		n.stats.FailedParents.Add(1)
		n.log.Warnf("parent %s lost (%v), searching for a new parent", addr, sess.Err())
		if n.advanceParent(idx) {
			lap++
			n.backoff(lap)
		}
	}
}

// advanceParent moves to the next parent in preference order,
// reporting whether a full lap completed (time to back off).
func (n *Node) advanceParent(from int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.parentIdx == from {
		n.parentIdx = (n.parentIdx + 1) % len(n.cfg.Parents)
	}
	return n.parentIdx == 0
}

// backoff pauses between failover laps: FailoverBackoff doubling per
// lap, capped at FailoverMax.
func (n *Node) backoff(lap int) {
	d := n.cfg.FailoverBackoff
	for i := 1; i < lap && d < n.cfg.FailoverMax; i++ {
		d *= 2
	}
	if d > n.cfg.FailoverMax {
		d = n.cfg.FailoverMax
	}
	n.pause(d)
}

// pause sleeps for d, returning early when the node closes.
func (n *Node) pause(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-n.done:
	}
}

// onImage ingests one upstream image piece into the downstream broker,
// suppressing frames already delivered (a fresh parent replays its
// recent frames after a re-parent) and acking completed frames so the
// parent's estimator sees this link's round trip.
func (n *Node) onImage(m transport.Message) {
	payload, tc := m.Payload, m.Trace
	im, err := transport.UnmarshalImage(payload)
	if err != nil {
		n.log.Warnf("bad upstream image: %v", err)
		return
	}
	if n.alreadyDelivered(im.FrameID) {
		n.stats.DupDropped.Add(1)
		if tc != nil {
			n.cfg.Prov.Record(provenance.Event{
				Trace: tc.TraceID, Frame: tc.FrameID, Hop: int(tc.Hop),
				Event: provenance.EvReplayed, Cause: "dup", Link: n.Parent(),
			})
		}
		return
	}
	n.stats.PiecesIn.Add(1)
	if tc != nil {
		n.cfg.Prov.Record(provenance.Event{
			Trace: tc.TraceID, Frame: tc.FrameID, Hop: int(tc.Hop),
			Event: provenance.EvReceived, Bytes: len(payload), Link: n.Parent(),
		})
	}
	// Charge the in-flight upstream bytes only past the dup check:
	// after a re-parent during overload, replayed dedup-window frames
	// are dropped above without ever touching the memory budget, so
	// the replay burst cannot double-count against it and push the
	// governor up the degradation ladder.
	n.upstreamAcct.Add(int64(len(payload)))
	id, completed := n.broker.IngestImage(payload, tc)
	n.upstreamAcct.Release(int64(len(payload)))
	if !completed {
		return
	}
	n.markDelivered(id)
	n.stats.FramesIn.Add(1)
	ack := transport.AckMsg{FrameID: id, RecvUnixNano: time.Now().UnixNano(), Bytes: uint32(len(payload))}
	n.mu.Lock()
	sess := n.sess
	n.mu.Unlock()
	if sess != nil {
		if sess.Send(transport.Message{Type: transport.MsgAck, Payload: ack.Marshal()}) == nil {
			n.stats.AcksSent.Add(1)
		}
	}
}

func (n *Node) alreadyDelivered(id uint32) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.seen[id]
	return ok
}

func (n *Node) markDelivered(id uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.seen[id]; ok {
		return
	}
	n.seen[id] = struct{}{}
	n.seenOrder = append(n.seenOrder, id)
	for len(n.seenOrder) > n.cfg.DedupWindow {
		delete(n.seen, n.seenOrder[0])
		n.seenOrder = n.seenOrder[1:]
	}
}

// forwardControl passes a downstream user-control message up the tree;
// while orphaned the control is dropped (controls are periodic user
// state, not queued commands).
func (n *Node) forwardControl(m transport.Message) {
	n.mu.Lock()
	sess := n.sess
	n.mu.Unlock()
	if sess == nil {
		return
	}
	if sess.Send(m) == nil {
		n.stats.ControlsForwarded.Add(1)
	}
}

func (n *Node) isClosed() bool {
	select {
	case <-n.done:
		return true
	default:
		return false
	}
}

// Close detaches from the parent, stops the downstream broker, and
// waits for the node's goroutines.
func (n *Node) Close() error {
	n.once.Do(func() {
		n.mu.Lock()
		sess := n.sess
		n.mu.Unlock()
		close(n.done)
		if sess != nil {
			sess.Close()
		}
		n.broker.Close()
	})
	n.wg.Wait()
	return nil
}
