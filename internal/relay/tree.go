package relay

import (
	"fmt"
	"net"
	"time"

	"repro/internal/guard"
	"repro/internal/obs/provenance"
	"repro/internal/stream"
	"repro/internal/transport"
)

// TreeSpec describes a local relay tree for tests and experiments: the
// root broker plus Tiers-1 relay levels, each interior node fanning out
// to FanOut children. Tiers counts daemon levels including the root, so
// Tiers=1 is the flat single-daemon baseline, Tiers=2 adds one edge
// level, Tiers=3 is root → interior → edge.
type TreeSpec struct {
	Tiers  int
	FanOut int
	// Stream configures every broker in the tree (root and relays).
	Stream stream.Config
	// Retry / failover knobs applied to every relay's upstream link.
	Retry           transport.RetryPolicy
	Heartbeat       time.Duration
	PeerTimeout     time.Duration
	FailoverBackoff time.Duration
	DedupWindow     int
	// WrapUpstreamFor, when set, supplies the upstream dial wrapper for
	// the node at (tier, index) — the hook the status experiment uses to
	// impair exactly one interior link with fault injection. nil (or a
	// nil return) leaves that node's upstream socket raw.
	WrapUpstreamFor func(tier, index int) func(net.Conn) net.Conn
	// Provenance, when true, gives the root broker and every relay node
	// a frame-provenance log (named after the node) retained on the
	// tree for collectors.
	Provenance bool
	// Guard, when set, attaches every broker and relay node in the tree
	// to one shared resource governor — valid because a built tree runs
	// in a single process, so one memory budget covers it. nil =
	// unguarded.
	Guard *guard.Governor
	// Logf receives node diagnostics (nil silences).
	Logf func(format string, args ...any)
}

// Tree is a locally running relay tree. Levels[0] holds the root's
// immediate relay children; the last level holds the edge daemons that
// viewers attach to.
type Tree struct {
	Root   *stream.Broker
	Levels [][]*Node
	// RootProv is the root broker's provenance log (nil unless the
	// spec asked for provenance); relay nodes carry theirs in
	// Config.Prov.
	RootProv *provenance.Log
}

// BuildTree stands a tree up on loopback listeners: the root broker
// first, then each relay level attaching to its parent (with the full
// ancestor chain as re-parent fallbacks: parent, grandparent, …, root).
func BuildTree(spec TreeSpec) (*Tree, error) {
	if spec.Tiers < 1 {
		return nil, fmt.Errorf("relay: tree needs at least 1 tier, have %d", spec.Tiers)
	}
	if spec.Tiers > 1 && spec.FanOut < 1 {
		return nil, fmt.Errorf("relay: fan-out must be >= 1, have %d", spec.FanOut)
	}
	if spec.Guard != nil && spec.Stream.Guard == nil {
		spec.Stream.Guard = spec.Guard
	}
	root, err := stream.ListenAndServe("127.0.0.1:0", spec.Stream)
	if err != nil {
		return nil, err
	}
	t := &Tree{Root: root}
	if spec.Provenance {
		t.RootProv = provenance.NewLog("root", 0)
		root.SetProvenance(t.RootProv)
	}
	// ancestry[level][i] is node i's own ancestor chain (self first).
	prevAncestry := [][]string{{root.Addr().String()}}
	for level := 1; level < spec.Tiers; level++ {
		count := 1
		for i := 0; i < level; i++ {
			count *= spec.FanOut
		}
		nodes := make([]*Node, 0, count)
		ancestry := make([][]string, 0, count)
		for i := 0; i < count; i++ {
			parents := prevAncestry[i/spec.FanOut]
			name := fmt.Sprintf("t%d-n%d", level, i)
			cfg := Config{
				Name:            name,
				Tier:            level,
				Parents:         append([]string(nil), parents...),
				Stream:          spec.Stream,
				Retry:           spec.Retry,
				Heartbeat:       spec.Heartbeat,
				PeerTimeout:     spec.PeerTimeout,
				FailoverBackoff: spec.FailoverBackoff,
				DedupWindow:     spec.DedupWindow,
				Guard:           spec.Guard,
				Logf:            spec.Logf,
			}
			if spec.WrapUpstreamFor != nil {
				cfg.WrapUpstream = spec.WrapUpstreamFor(level, i)
			}
			if spec.Provenance {
				cfg.Prov = provenance.NewLog(name, 0)
			}
			n, err := ListenAndServe("127.0.0.1:0", cfg)
			if err != nil {
				t.Close()
				return nil, err
			}
			nodes = append(nodes, n)
			ancestry = append(ancestry, append([]string{n.Addr().String()}, parents...))
		}
		t.Levels = append(t.Levels, nodes)
		prevAncestry = ancestry
	}
	return t, nil
}

// Edges returns the daemons viewers should attach to: the deepest relay
// level, or the root itself in a flat (Tiers=1) tree.
func (t *Tree) Edges() []*Node {
	if len(t.Levels) == 0 {
		return nil
	}
	return t.Levels[len(t.Levels)-1]
}

// EdgeAddrs returns the downstream addresses viewers connect to.
func (t *Tree) EdgeAddrs() []string {
	edges := t.Edges()
	if len(edges) == 0 {
		return []string{t.Root.Addr().String()}
	}
	out := make([]string, len(edges))
	for i, n := range edges {
		out[i] = n.Addr().String()
	}
	return out
}

// Nodes returns every relay node, root-most level first.
func (t *Tree) Nodes() []*Node {
	var out []*Node
	for _, level := range t.Levels {
		out = append(out, level...)
	}
	return out
}

// Topology is the tree's observable shape, served under /debug/status.
type Topology struct {
	RootAddr    string     `json:"root_addr"`
	RootClients int        `json:"root_clients"`
	RootEncodes int64      `json:"root_encodes"`
	Tiers       [][]Status `json:"tiers"`
}

// Topology snapshots every node, grouped by tier (root excluded — it
// is a plain broker, summarized in the Root fields).
func (t *Tree) Topology() Topology {
	top := Topology{
		RootAddr:    t.Root.Addr().String(),
		RootClients: len(t.Root.ClientSnapshots()),
		RootEncodes: t.Root.Stats().Encodes.Load(),
	}
	for _, level := range t.Levels {
		row := make([]Status, 0, len(level))
		for _, n := range level {
			row = append(row, n.Status())
		}
		top.Tiers = append(top.Tiers, row)
	}
	return top
}

// TierEncodes sums encode invocations per tier: index 0 is the root,
// index i>0 the i-th relay level. This is the per-tier encode count the
// relay experiment reports.
func (t *Tree) TierEncodes() []int64 {
	out := []int64{t.Root.Stats().Encodes.Load()}
	for _, level := range t.Levels {
		var sum int64
		for _, n := range level {
			sum += n.Broker().Stats().Encodes.Load()
		}
		out = append(out, sum)
	}
	return out
}

// Close tears the tree down edge-first so upstream closes do not
// trigger re-parent storms in the still-living levels.
func (t *Tree) Close() {
	for i := len(t.Levels) - 1; i >= 0; i-- {
		for _, n := range t.Levels[i] {
			n.Close()
		}
	}
	if t.Root != nil {
		t.Root.Close()
	}
}
