package pipeline

import (
	"repro/internal/testutil"

	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/render"
	"repro/internal/vol"
)

func TestNodeCrashAbortsRunByDefault(t *testing.T) {
	testutil.CheckGoroutines(t)
	store := testStore(4)
	opt := baseOptions(4, 2)
	opt.FaultFn = fault.NodeCrash(fault.CrashPlan{Group: 0, Rank: 1, Step: 0})
	_, err := Run(store, opt, nil)
	if !errors.Is(err, fault.ErrInjected) && !errors.Is(err, comm.ErrRankFailed) && !errors.Is(err, comm.ErrAborted) {
		t.Fatalf("err = %v, want injected/rank-failed/aborted", err)
	}
	if err == nil {
		t.Fatal("crash did not fail the run")
	}
}

func TestGroupFailureSkipAndContinue(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps = 6
	store := testStore(steps)
	opt := baseOptions(4, 2) // groups of 2: group 0 renders 0,2,4; group 1 renders 1,3,5
	opt.ContinueOnFailure = true
	opt.FaultFn = fault.NodeCrash(fault.CrashPlan{Group: 0, Rank: 1, Step: 2})

	var mu sync.Mutex
	delivered := map[int]bool{}
	failed := map[int]error{}
	opt.OnFailure = func(gid, step int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if gid != 0 {
			t.Errorf("failure reported for group %d", gid)
		}
		failed[step] = err
	}
	m, err := Run(store, opt, func(f *Frame) error {
		mu.Lock()
		defer mu.Unlock()
		if f.Image == nil {
			t.Errorf("step %d: nil image", f.Step)
		}
		delivered[f.Step] = true
		return nil
	})
	if err != nil {
		t.Fatalf("run failed instead of degrading: %v", err)
	}
	for _, s := range []int{0, 1, 3, 5} {
		if !delivered[s] {
			t.Errorf("step %d not delivered", s)
		}
	}
	for _, s := range []int{2, 4} {
		if delivered[s] {
			t.Errorf("failed step %d was delivered", s)
		}
		if failed[s] == nil {
			t.Errorf("step %d missing from OnFailure", s)
		}
	}
	if !errors.Is(failed[2], fault.ErrInjected) && !errors.Is(failed[2], comm.ErrRankFailed) {
		t.Errorf("step 2 cause = %v", failed[2])
	}
	if m.Frames != 4 || m.FailedSteps != 2 || m.GroupFailures != 1 {
		t.Errorf("metrics = %+v, want Frames=4 FailedSteps=2 GroupFailures=1", m)
	}
	if m.StartupLatency <= 0 || m.Overall < m.StartupLatency {
		t.Errorf("latency metrics inconsistent: %+v", m)
	}
}

func TestStepTimeoutDetectsHungLeader(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps = 6
	store := testStore(steps)
	opt := baseOptions(4, 2)
	opt.ContinueOnFailure = true
	opt.StepTimeout = 100 * time.Millisecond
	// The group-0 leader hangs resolving the camera for its second
	// step; its groupmate must detect the silence and fail the group.
	base := opt.CameraFn
	opt.CameraFn = func(step int, d vol.Dims) (*render.Camera, error) {
		if step == 2 {
			time.Sleep(600 * time.Millisecond)
		}
		if base != nil {
			return base(step, d)
		}
		return render.NewOrbitCamera(d, 0.6, 0.35, 1.8)
	}
	var mu sync.Mutex
	causes := map[int]error{}
	opt.OnFailure = func(gid, step int, err error) {
		mu.Lock()
		causes[step] = err
		mu.Unlock()
	}
	m, err := Run(store, opt, nil)
	if err != nil {
		t.Fatalf("run failed instead of degrading: %v", err)
	}
	if m.GroupFailures != 1 {
		t.Fatalf("metrics = %+v, want exactly one group failure", m)
	}
	if m.Frames+m.FailedSteps != steps {
		t.Fatalf("metrics = %+v, frames+failed != %d", m, steps)
	}
	mu.Lock()
	cause := causes[2]
	mu.Unlock()
	if !errors.Is(cause, comm.ErrRecvTimeout) && !errors.Is(cause, comm.ErrRankFailed) {
		t.Fatalf("step 2 cause = %v, want recv-timeout/rank-failed", cause)
	}
}
