// Package pipeline runs the paper's parallel pipelined renderer for
// real: P goroutine-backed processor nodes partitioned into L groups,
// each group rendering one time step at a time (intra-volume
// parallelism inside the group, inter-volume parallelism across
// groups), with the data-input stage serialized through a shared path
// as in the paper's no-parallel-I/O setting. Binary-swap compositing
// merges each group's partial images; the composited pieces are handed
// to a sink either assembled (single-image output) or as per-node
// pieces (the parallel-compression path of §4).
//
// The package measures the three §3 metrics — start-up latency,
// overall execution time, inter-frame delay — on the real execution;
// package sim extrapolates the same pipeline to cluster scale.
package pipeline

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"repro/internal/accel"
	"repro/internal/comm"
	"repro/internal/composite"
	"repro/internal/img"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/tf"
	"repro/internal/vol"
	"repro/internal/volio"
)

// Piece is one node's share of a composited frame.
type Piece struct {
	Region img.Region
	Image  *img.RGBA
}

// Frame is a completed time step delivered to the sink.
type Frame struct {
	Step int
	// Image is the assembled frame (nil when Options.EmitPieces).
	Image *img.RGBA
	// Pieces are the per-node composited regions (set when
	// Options.EmitPieces).
	Pieces []Piece
	// Stage timings measured at the group leader.
	InputTime     time.Duration
	RenderTime    time.Duration
	CompositeTime time.Duration
	// Group is the processor group that rendered this step.
	Group int
	// TilesStreamed counts the DFB tiles the group emitted for this
	// step (each streamed to Options.OnTile before the frame was
	// gathered); zero under binary-swap.
	TilesStreamed int
	// CompositeOverlap is the fraction of the group's tiles that were
	// fully blended before their owner finished rendering — the
	// render/composite overlap the tile-ownership compositor buys.
	// Zero under binary-swap (the barrier forbids overlap).
	CompositeOverlap float64
}

// Compositor selects the global-compositing algorithm.
type Compositor int

const (
	// CompositorBinarySwap is the paper's barrier-structured binary
	// swap: log2(g) pairwise exchange stages, all ranks in lockstep.
	// Requires power-of-two group sizes.
	CompositorBinarySwap Compositor = iota
	// CompositorDFB is asynchronous tile-ownership compositing
	// (composite.DFB): finished tiles route to fixed owners the moment
	// the ray caster completes them, owners blend and emit per tile,
	// and compositing overlaps rendering with no exchange barrier.
	// Works for any group size; bit-identical to binary-swap on
	// power-of-two groups.
	CompositorDFB
)

// Options configures a pipelined run.
type Options struct {
	// P is the node count; L the group count. P must be divisible by
	// L; under the default binary-swap compositor the group size P/L
	// must additionally be a power of two.
	P, L int
	// ImageW, ImageH set the output size.
	ImageW, ImageH int
	// TF is the transfer function.
	TF *tf.TF
	// TFFn, when set, overrides TF per step (resolved once per step
	// by the group leader, so it may read mutable control state).
	TFFn func(step int) *tf.TF
	// CameraFn returns the camera for a step; nil uses a fixed
	// default orbit view. Resolved once per step by the group leader.
	CameraFn func(step int, d vol.Dims) (*render.Camera, error)
	// BeforeStep, when set, is called by the group leader before
	// fetching each step — the hook the interactive server uses to
	// pause and to apply buffered user control.
	BeforeStep func(step int)
	// Render are the ray-casting options (zero value = defaults).
	Render render.Options
	// Ghost is the brick ghost-cell width (default 2).
	Ghost int
	// Steps caps the number of steps rendered (0 = all in store).
	Steps int
	// EmitPieces delivers per-node pieces instead of assembled
	// frames (the parallel-compression path).
	EmitPieces bool
	// RegionInput makes every node fetch its own (ghosted) brick
	// directly from storage instead of the leader reading the whole
	// step and scattering bricks — the paper's §7.1 parallel-I/O
	// extension. Requires the store to implement volio.RegionStore.
	RegionInput bool
	// Accel builds a macrocell empty-space-skipping grid per brick
	// before rendering (§7.1 "preprocessing ... can provide many
	// hints to the renderer"). Output is unchanged; sparse data
	// renders with fewer samples.
	Accel bool
	// Trace receives one span per stage (fetch, render, composite,
	// deliver) per group and step, recorded at the group leader — the
	// raw material of the paper's pipelining Gantt. Nil disables.
	Trace *obs.Tracer
	// Metrics receives stage-duration histograms
	// (pipeline_stage_seconds{stage=...}) and the §3 metric series
	// (startup latency, inter-frame delay). Nil disables.
	Metrics *obs.Registry
	// StepTimeout bounds every comm-level receive inside a step; a
	// rank waiting longer than this on a peer declares it dead
	// (comm.ErrRecvTimeout) instead of hanging the pipeline. 0 waits
	// forever.
	StepTimeout time.Duration
	// FaultFn, when set, is consulted by every node before it renders
	// (group id, group-local rank, step); a non-nil error crashes that
	// node — the deterministic injection point for fault.NodeCrash.
	FaultFn func(gid, rank, step int) error
	// Compositor selects binary-swap (default) or the distributed
	// framebuffer. DFB lifts binary-swap's power-of-two group-size
	// requirement.
	Compositor Compositor
	// TileRows is the DFB tile height in scanlines (0 =
	// composite.DefaultTileRows). Ignored under binary-swap.
	TileRows int
	// OnTile, when set with CompositorDFB, receives every completed
	// tile the moment its owner blends it — before the step's frame is
	// gathered, often before the group has finished rendering — so
	// per-tile compression and delivery can start early. Calls are
	// serialized across groups; the tile image is only valid for the
	// duration of the call (it is recycled when the frame is
	// gathered), so copy pixels that must outlive it. A non-nil error
	// fails the step on the owning rank. Ignored under binary-swap.
	OnTile func(gid, step int, t composite.Tile) error
	// ContinueOnFailure turns a node failure into a group failure
	// instead of a run failure: the dead node's group marks its
	// remaining steps failed and the other groups keep rendering
	// (skip-and-continue). Without it the first failure aborts the
	// world and Run returns the error.
	ContinueOnFailure bool
	// OnFailure observes each failed (group, step) with its cause
	// (serialized; called once per step). Nil disables.
	OnFailure func(gid, step int, err error)
}

func (o *Options) normalize(store volio.Store) error {
	if o.P < 1 || o.L < 1 || o.L > o.P || o.P%o.L != 0 {
		return fmt.Errorf("pipeline: invalid P=%d L=%d", o.P, o.L)
	}
	g := o.P / o.L
	if o.Compositor == CompositorBinarySwap && g&(g-1) != 0 {
		return fmt.Errorf("pipeline: group size %d not a power of two (binary-swap; CompositorDFB takes any size)", g)
	}
	if o.TileRows < 0 {
		return fmt.Errorf("pipeline: tile rows %d", o.TileRows)
	}
	if o.ImageW < 1 || o.ImageH < 1 {
		return fmt.Errorf("pipeline: image %dx%d", o.ImageW, o.ImageH)
	}
	if o.ImageH < g {
		return fmt.Errorf("pipeline: image height %d smaller than group size %d", o.ImageH, g)
	}
	if o.TF == nil {
		return fmt.Errorf("pipeline: nil transfer function")
	}
	if o.Ghost == 0 {
		o.Ghost = 2
	}
	if o.Render.Step == 0 {
		o.Render = render.DefaultOptions()
	}
	if o.Steps == 0 || o.Steps > store.Steps() {
		o.Steps = store.Steps()
	}
	if o.CameraFn == nil {
		o.CameraFn = func(step int, d vol.Dims) (*render.Camera, error) {
			return render.NewOrbitCamera(d, 0.6, 0.35, 1.8)
		}
	}
	if o.RegionInput {
		if _, ok := store.(volio.RegionStore); !ok {
			return fmt.Errorf("pipeline: RegionInput requires a volio.RegionStore, got %T", store)
		}
	}
	return nil
}

// Metrics are the paper's three performance measures, computed from
// real completion times. With ContinueOnFailure they cover only the
// steps that completed; FailedSteps counts the rest.
type Metrics struct {
	StartupLatency  time.Duration
	Overall         time.Duration
	InterFrameDelay time.Duration
	Frames          int
	// FailedSteps counts steps skipped or failed because their group
	// lost a node.
	FailedSteps int
	// GroupFailures counts processor groups that dropped out of the
	// run.
	GroupFailures int
}

// Sink receives completed frames. It is called from group-leader
// goroutines; calls are serialized by the pipeline.
type Sink func(*Frame) error

// Run executes the pipelined renderer over the store and reports
// metrics. The sink may be nil when only metrics are wanted.
func Run(store volio.Store, opt Options, sink Sink) (Metrics, error) {
	if err := opt.normalize(store); err != nil {
		return Metrics{}, err
	}
	g := opt.P / opt.L
	dims := store.Dims()

	var (
		diskMu sync.Mutex // the shared sequential input path
		sinkMu sync.Mutex
		done   = make([]time.Time, opt.Steps)
	)
	if opt.OnTile != nil {
		// Serialize the tile stream across groups (owners in different
		// groups emit concurrently), mirroring the sink serialization:
		// downstream per-tile compression sees one tile at a time.
		var tileMu sync.Mutex
		inner := opt.OnTile
		opt.OnTile = func(gid, step int, t composite.Tile) error {
			tileMu.Lock()
			defer tileMu.Unlock()
			return inner(gid, step, t)
		}
	}
	var fetchH, renderH, compositeH, deliverH, overlapH *obs.Histogram
	var tilesC *obs.Counter
	if opt.Metrics != nil {
		const help = "Per-(group,step) pipeline stage time in seconds."
		fetchH = opt.Metrics.Histogram(`pipeline_stage_seconds{stage="fetch"}`, help)
		renderH = opt.Metrics.Histogram(`pipeline_stage_seconds{stage="render"}`, help)
		compositeH = opt.Metrics.Histogram(`pipeline_stage_seconds{stage="composite"}`, help)
		deliverH = opt.Metrics.Histogram(`pipeline_stage_seconds{stage="deliver"}`, help)
		if opt.Compositor == CompositorDFB {
			overlapH = opt.Metrics.Histogram("pipeline_composite_overlap_fraction",
				"Per-frame fraction of DFB tiles fully blended before the group finished rendering.")
			tilesC = opt.Metrics.Counter("pipeline_tiles_streamed_total",
				"DFB tiles streamed to their owners (and OnTile) ahead of frame gather.")
		}
	}
	start := time.Now()

	// Failure bookkeeping (ContinueOnFailure): first recorder of a
	// (step) failure wins; OnFailure fires once per step.
	var (
		failMu      sync.Mutex
		failedSteps = map[int]error{}
		deadGroups  = map[int]bool{}
	)
	recordFailure := func(gid, step int, cause error) {
		failMu.Lock()
		defer failMu.Unlock()
		if !deadGroups[gid] {
			deadGroups[gid] = true
			if opt.Trace != nil {
				opt.Trace.Begin(groupTrack(gid), "pipeline", "group-failed", "step", step)()
			}
		}
		if _, seen := failedSteps[step]; seen {
			return
		}
		failedSteps[step] = cause
		if opt.OnFailure != nil {
			opt.OnFailure(gid, step, cause)
		}
	}

	err := comm.RunWith(opt.P, comm.RunConfig{RecvTimeout: opt.StepTimeout}, func(c *comm.Comm) error {
		gid := c.Rank() / g
		members := make([]int, g)
		for i := range members {
			members[i] = gid*g + i
		}
		gc, err := c.Group(members)
		if err != nil {
			return err
		}
		var groupDead error
		for s := gid; s < opt.Steps; s += opt.L {
			if groupDead != nil {
				// The group lost a node: its remaining steps are marked
				// failed, not rendered — skip-and-continue.
				recordFailure(gid, s, groupDead)
				continue
			}
			err := renderStepGuarded(gc, store, &opt, dims, gid, s, &diskMu, func(f *Frame) error {
				end := opt.Trace.Begin(groupTrack(f.Group), "pipeline", "deliver", "step", f.Step)
				t0 := time.Now()
				sinkMu.Lock()
				defer sinkMu.Unlock()
				done[s] = time.Now()
				var err error
				if sink != nil {
					err = sink(f)
				}
				end()
				fetchH.Observe(f.InputTime.Seconds())
				renderH.Observe(f.RenderTime.Seconds())
				compositeH.Observe(f.CompositeTime.Seconds())
				deliverH.ObserveDuration(time.Since(t0))
				if f.TilesStreamed > 0 {
					overlapH.Observe(f.CompositeOverlap)
					tilesC.Add(int64(f.TilesStreamed))
				}
				return err
			})
			if err == nil {
				continue
			}
			if !opt.ContinueOnFailure {
				return fmt.Errorf("pipeline: group %d step %d: %w", gid, s, err)
			}
			// Wake groupmates blocked on this rank, stop touching the
			// group communicator, and let the other groups run on.
			c.FailSelf()
			groupDead = fmt.Errorf("pipeline: group %d step %d: %w", gid, s, err)
			recordFailure(gid, s, groupDead)
		}
		return nil
	})
	if err != nil {
		return Metrics{}, err
	}

	// Display-order completion: a frame appears once all earlier
	// completed frames have. Failed steps (zero done time) are excluded
	// from the latency series and counted separately.
	display := make([]time.Duration, 0, opt.Steps)
	var running time.Duration
	for s := 0; s < opt.Steps; s++ {
		if done[s].IsZero() {
			continue
		}
		d := done[s].Sub(start)
		if d > running {
			running = d
		}
		display = append(display, running)
	}
	m := Metrics{
		Frames:        len(display),
		FailedSteps:   opt.Steps - len(display),
		GroupFailures: len(deadGroups),
	}
	if len(display) > 0 {
		m.StartupLatency = display[0]
		m.Overall = display[len(display)-1]
	}
	if len(display) > 1 {
		m.InterFrameDelay = (m.Overall - m.StartupLatency) / time.Duration(len(display)-1)
	}
	if opt.Metrics != nil {
		if len(display) > 0 {
			opt.Metrics.Histogram("pipeline_startup_latency_seconds",
				"Time until the first frame of a pass completes.").Observe(m.StartupLatency.Seconds())
		}
		ifd := opt.Metrics.Histogram("pipeline_interframe_delay_seconds",
			"Delay between consecutive frames in display order.")
		for i := 1; i < len(display); i++ {
			ifd.Observe((display[i] - display[i-1]).Seconds())
		}
		opt.Metrics.Gauge("pipeline_overall_seconds",
			"Overall execution time of the most recent pass.").Set(m.Overall.Seconds())
		opt.Metrics.Counter("pipeline_frames_total",
			"Frames completed by the pipelined renderer.").Add(int64(m.Frames))
		opt.Metrics.Counter("pipeline_failed_steps_total",
			"Steps skipped or failed because their group lost a node.").Add(int64(m.FailedSteps))
		opt.Metrics.Counter("pipeline_group_failures_total",
			"Processor groups that dropped out of a pass.").Add(int64(m.GroupFailures))
	}
	return m, nil
}

// renderStepGuarded runs one step, converting comm failure panics
// (dead peer, receive timeout) into ordinary errors at this rank so
// the caller can degrade per group. World aborts still propagate.
func renderStepGuarded(gc *comm.Comm, store volio.Store, opt *Options, dims vol.Dims, gid, step int, diskMu *sync.Mutex, deliver Sink) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if fe := comm.AsFailure(rec); fe != nil {
				err = fe
				return
			}
			panic(rec)
		}
	}()
	return renderStep(gc, store, opt, dims, gid, step, diskMu, deliver)
}

// groupTrack names a processor group's trace track.
func groupTrack(gid int) string { return fmt.Sprintf("group %d", gid) }

// Tag classes of the pipeline's exchanges, drawn from comm's central
// registry: each class gets a disjoint block per step, so groups
// sharing the world (always on different steps) never cross-talk —
// with the composite classes and with each other. This replaces the
// old hand-counted `step*64 + kind*32 (+16)` arithmetic, which would
// have collided silently had a class outgrown its slice.
var (
	tagWork  = comm.RegisterTagClass("pipeline.work", 1)
	tagPiece = comm.RegisterTagClass("pipeline.pieces", 1)
	tagStats = comm.RegisterTagClass("pipeline.stats", 1)
)

// stepWork is the leader's per-step distribution payload: the node's
// brick plus the step's resolved camera and transfer function.
type stepWork struct {
	brick *vol.Brick
	cam   *render.Camera
	tf    *tf.TF
}

// renderStep runs one time step inside one group communicator.
func renderStep(gc *comm.Comm, store volio.Store, opt *Options, dims vol.Dims, gid, step int, diskMu *sync.Mutex, deliver Sink) error {
	if opt.FaultFn != nil {
		// Injected node crash: fires before this node touches the
		// group, so groupmates detect it via failed-peer wakeups (or
		// StepTimeout) exactly like a real dead process.
		if err := opt.FaultFn(gid, gc.Rank(), step); err != nil {
			return err
		}
	}
	g := gc.Size()
	boxes, err := vol.SplitKD(dims, g)
	if err != nil {
		return err
	}

	// Stage spans are recorded at the group leader: one track per
	// group, so the trace viewer shows the paper's pipelining Gantt
	// (input hidden behind the other groups' rendering).
	leader := gc.Rank() == 0
	track := groupTrack(gid)
	span := func(name string) func() {
		if !leader {
			return func() {}
		}
		return opt.Trace.Begin(track, "pipeline", name, "step", step)
	}

	var work stepWork
	var inputTime time.Duration
	if opt.RegionInput {
		// Parallel I/O: the leader resolves camera/TF and broadcasts
		// the small control payload; every node then pulls its own
		// ghosted brick from storage concurrently.
		if gc.Rank() == 0 {
			if opt.BeforeStep != nil {
				opt.BeforeStep(step)
			}
			cam, err := opt.CameraFn(step, dims)
			if err != nil {
				return err
			}
			tfn := opt.TF
			if opt.TFFn != nil {
				tfn = opt.TFFn(step)
			}
			work = stepWork{cam: cam, tf: tfn}
			for i := 1; i < g; i++ {
				gc.Send(i, tagWork.Tag(step, 0), work, 64)
			}
		} else {
			payload, _ := gc.Recv(0, tagWork.Tag(step, 0))
			var ok bool
			work, ok = payload.(stepWork)
			if !ok {
				return fmt.Errorf("unexpected work payload %T", payload)
			}
		}
		endFetch := span("fetch")
		t0 := time.Now()
		b, err := fetchBrickRegion(store.(volio.RegionStore), step, boxes[gc.Rank()], opt.Ghost, dims)
		if err != nil {
			return err
		}
		work.brick = b
		inputTime = time.Since(t0)
		endFetch()
	} else if gc.Rank() == 0 {
		if opt.BeforeStep != nil {
			opt.BeforeStep(step)
		}
		// The leader resolves the step's camera and transfer function
		// once (they may come from mutable user-control state) and
		// distributes them with the bricks.
		cam, err := opt.CameraFn(step, dims)
		if err != nil {
			return err
		}
		tfn := opt.TF
		if opt.TFFn != nil {
			tfn = opt.TFFn(step)
		}
		// Data input: fetch through the shared sequential path and
		// distribute bricks to the group.
		endFetch := span("fetch")
		t0 := time.Now()
		diskMu.Lock()
		v, err := store.Fetch(step)
		diskMu.Unlock()
		if err != nil {
			return err
		}
		for i := 1; i < g; i++ {
			b, err := v.Extract(boxes[i], opt.Ghost)
			if err != nil {
				return err
			}
			gc.Send(i, tagWork.Tag(step, 0), stepWork{brick: b, cam: cam, tf: tfn}, int(b.Data.Dims.Bytes()))
		}
		b, err := v.Extract(boxes[0], opt.Ghost)
		if err != nil {
			return err
		}
		work = stepWork{brick: b, cam: cam, tf: tfn}
		inputTime = time.Since(t0)
		endFetch()
	} else {
		payload, _ := gc.Recv(0, tagWork.Tag(step, 0))
		var ok bool
		work, ok = payload.(stepWork)
		if !ok {
			return fmt.Errorf("unexpected work payload %T", payload)
		}
	}
	cam := work.cam

	// Tile-ownership compositing starts BEFORE rendering: the DFB's
	// drain goroutine blends fragments as the ray caster finishes
	// scanline bands, so the composite span overlaps the render span on
	// the leader's Gantt — the barrier-free overlap this compositor
	// exists to buy.
	useDFB := opt.Compositor == CompositorDFB && g > 1
	var dfb *composite.DFB
	var endDFBSpan func()
	dfbDone := false
	if useDFB {
		var sink composite.TileSink
		if opt.OnTile != nil {
			sink = func(tl composite.Tile) error { return opt.OnTile(gid, step, tl) }
		}
		d, err := composite.NewDFB(gc, step, opt.ImageW, opt.ImageH, boxes, cam.Eye,
			composite.DFBOptions{TileRows: opt.TileRows, OnTile: sink})
		if err != nil {
			return err
		}
		dfb = d
		endDFBSpan = span("composite")
		dfb.Start()
		defer func() {
			// Error paths (render failure, dead peer, bad payload) must
			// not leak the drain goroutine: cancel wakes it, Wait joins
			// it. Harmless after a normal Wait (dfbDone).
			if !dfbDone {
				dfb.Cancel()
				dfb.Wait()
			}
		}()
	}

	endRender := span("render")
	t1 := time.Now()
	ropt := opt.Render
	if opt.Accel {
		grid, err := accel.Build(work.brick.Data, work.brick.Origin, work.brick.Normalize, 0)
		if err != nil {
			return err
		}
		ropt.Accel = grid
	}
	var partial *img.RGBA
	if useDFB {
		// Stream tiles out mid-render: every finished scanline band is
		// reported to the DFB, which posts fully rendered tiles to
		// their owners while the rest of the frame is still tracing.
		partial = img.NewRGBA(opt.ImageW, opt.ImageH)
		ropt.TileDone = func(y0, y1 int) { dfb.RowsDone(partial, y0, y1) }
		if _, err := render.RenderRegion(work.brick, work.brick.Region, cam, work.tf, ropt, partial); err != nil {
			return err
		}
	} else {
		p, _, err := render.RenderBrick(work.brick, cam, work.tf, ropt, opt.ImageW, opt.ImageH)
		if err != nil {
			return err
		}
		partial = p
	}
	renderTime := time.Since(t1)
	endRender()

	endComposite := endDFBSpan
	if endComposite == nil {
		endComposite = span("composite")
	}
	t2 := time.Now()
	var pieces []Piece
	var assembled *img.RGBA
	tilesStreamed := 0
	overlapFrac := 0.0
	if g == 1 {
		pieces = []Piece{{Region: img.Region{X1: opt.ImageW, Y1: opt.ImageH}, Image: partial}}
		assembled = partial
	} else if useDFB {
		// All tiles were posted by the render hook; drain the owned
		// ones and account how many finished in rendering's shadow.
		dfb.RenderDone()
		tiles, werr := dfb.Wait()
		dfbDone = true
		if werr != nil {
			return werr
		}
		img.PutRGBA(partial) // tiles hold carved copies
		early, owned := dfb.Overlap()
		parts := gc.Gather(0, tagStats.Tag(step, 0), [2]int{early, owned}, 16)
		if opt.EmitPieces {
			// Each rank's owned tiles are its pieces — already disjoint
			// regions in final composited form.
			if gc.Rank() != 0 {
				ps := make([]Piece, len(tiles))
				nb := 0
				for i, tl := range tiles {
					ps[i] = Piece{Region: tl.Region, Image: tl.Image}
					nb += len(tl.Image.Pix) * 4
				}
				gc.Send(0, tagPiece.Tag(step, 0), ps, nb)
				return nil
			}
			for _, tl := range tiles {
				pieces = append(pieces, Piece{Region: tl.Region, Image: tl.Image})
			}
			for i := 1; i < g; i++ {
				got, _ := gc.Recv(i, tagPiece.Tag(step, 0))
				more, ok := got.([]Piece)
				if !ok {
					return fmt.Errorf("unexpected pieces payload %T", got)
				}
				pieces = append(pieces, more...)
			}
		} else {
			full, err := composite.GatherTiles(gc, tiles, opt.ImageW, opt.ImageH, 0, step)
			if err != nil {
				return err
			}
			if gc.Rank() != 0 {
				return nil
			}
			assembled = full
		}
		sumEarly := 0
		for _, p := range parts {
			if p == nil {
				continue
			}
			v := p.([2]int)
			sumEarly += v[0]
			tilesStreamed += v[1]
		}
		if tilesStreamed > 0 {
			overlapFrac = float64(sumEarly) / float64(tilesStreamed)
		}
	} else {
		reg, piece, err := composite.BinarySwap(gc, partial, boxes, cam.Eye, step)
		if err != nil {
			return err
		}
		if opt.EmitPieces {
			// Gather pieces (region+image) at the leader; in the real
			// distributed system each node would compress and ship its
			// own piece — core.Server does exactly that.
			if gc.Rank() != 0 {
				gc.Send(0, tagPiece.Tag(step, 0), Piece{Region: reg, Image: piece}, len(piece.Pix)*4)
				return nil
			}
			pieces = make([]Piece, g)
			pieces[0] = Piece{Region: reg, Image: piece}
			for i := 1; i < g; i++ {
				got, _ := gc.Recv(i, tagPiece.Tag(step, 0))
				pieces[i] = got.(Piece)
			}
		} else {
			full, err := composite.FinalGather(gc, reg, piece, opt.ImageW, opt.ImageH, 0, step)
			if err != nil {
				return err
			}
			if gc.Rank() != 0 {
				return nil
			}
			assembled = full
		}
	}
	compositeTime := time.Since(t2)
	endComposite()

	f := &Frame{
		Step:             step,
		Pieces:           pieces,
		InputTime:        inputTime,
		RenderTime:       renderTime,
		CompositeTime:    compositeTime,
		Group:            gid,
		TilesStreamed:    tilesStreamed,
		CompositeOverlap: overlapFrac,
	}
	if !opt.EmitPieces {
		f.Image = assembled
		f.Pieces = nil
	}
	return deliver(f)
}

// fetchBrickRegion reads one node's ghosted brick straight from a
// region-capable store.
func fetchBrickRegion(rs volio.RegionStore, step int, region vol.Box, ghost int, dims vol.Dims) (*vol.Brick, error) {
	full := vol.Box{X1: dims.NX, Y1: dims.NY, Z1: dims.NZ}
	region = region.Intersect(full)
	g := vol.Box{
		X0: maxInt(region.X0-ghost, 0), Y0: maxInt(region.Y0-ghost, 0), Z0: maxInt(region.Z0-ghost, 0),
		X1: minInt(region.X1+ghost, dims.NX), Y1: minInt(region.Y1+ghost, dims.NY), Z1: minInt(region.Z1+ghost, dims.NZ),
	}
	sub, err := rs.FetchRegion(step, g)
	if err != nil {
		return nil, err
	}
	return &vol.Brick{
		Region:     region,
		Data:       sub,
		Origin:     [3]int{g.X0, g.Y0, g.Z0},
		ParentDims: dims,
		ParentMin:  sub.Min,
		ParentMax:  sub.Max,
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// GroupSizes returns the valid L values for a given P (divisors with
// power-of-two quotient), sorted ascending — the x-axis of Figure 6.
func GroupSizes(p int) []int {
	var out []int
	for l := 1; l <= p; l++ {
		if p%l == 0 {
			g := p / l
			if g&(g-1) == 0 {
				out = append(out, l)
			}
		}
	}
	sort.Ints(out)
	return out
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && bits.OnesCount(uint(v)) == 1 }
