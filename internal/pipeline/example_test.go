package pipeline_test

import (
	"fmt"
	"sync"

	"repro/internal/datagen"
	"repro/internal/pipeline"
	"repro/internal/tf"
	"repro/internal/volio"
)

// Render a short time series on 4 nodes in 2 pipeline groups and count
// the delivered frames.
func ExampleRun() {
	store := volio.NewGenStore(datagen.NewJetScaled(0.12, 4))
	var mu sync.Mutex
	frames := 0
	m, err := pipeline.Run(store, pipeline.Options{
		P: 4, L: 2,
		ImageW: 32, ImageH: 32,
		TF: tf.Jet(),
	}, func(f *pipeline.Frame) error {
		mu.Lock()
		frames++
		mu.Unlock()
		return nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(frames, m.Frames, m.Overall > 0)
	// Output: 4 4 true
}

// The valid partition counts for a machine size: divisors of P whose
// group size is a power of two (binary-swap's requirement).
func ExampleGroupSizes() {
	fmt.Println(pipeline.GroupSizes(8))
	// Output: [1 2 4 8]
}
