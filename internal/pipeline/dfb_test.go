package pipeline

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/composite"
	"repro/internal/img"
	"repro/internal/render"
	"repro/internal/testutil"
)

// runFrames renders every step with the given options and returns the
// delivered frames indexed by step.
func runFrames(t *testing.T, steps int, opt Options) []*Frame {
	t.Helper()
	store := testStore(steps)
	frames := make([]*Frame, steps)
	var mu sync.Mutex
	if _, err := Run(store, opt, func(f *Frame) error {
		mu.Lock()
		frames[f.Step] = f
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for s, f := range frames {
		if f == nil {
			t.Fatalf("step %d not delivered", s)
		}
	}
	return frames
}

// The pipeline-level acceptance bar of the refactor: switching the
// compositor from binary-swap to the DFB must not change a single
// pixel float of any delivered frame.
func TestDFBPipelineBitIdenticalToBinarySwap(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps = 2
	opt := baseOptions(4, 1)
	opt.Render.TerminationAlpha = 1
	swap := runFrames(t, steps, opt)

	opt.Compositor = CompositorDFB
	dfb := runFrames(t, steps, opt)

	for s := 0; s < steps; s++ {
		if dfb[s].TilesStreamed == 0 || dfb[s].CompositeOverlap < 0 || dfb[s].CompositeOverlap > 1 {
			t.Fatalf("step %d: TilesStreamed=%d CompositeOverlap=%v",
				s, dfb[s].TilesStreamed, dfb[s].CompositeOverlap)
		}
		for i := range swap[s].Image.Pix {
			if swap[s].Image.Pix[i] != dfb[s].Image.Pix[i] {
				t.Fatalf("step %d pixel float %d: DFB %v != binary-swap %v",
					s, i, dfb[s].Image.Pix[i], swap[s].Image.Pix[i])
			}
		}
	}
}

// DFB lifts binary-swap's power-of-two restriction: P=6, L=2 gives
// groups of three, which binary-swap rejects outright and the DFB
// composites via the direct-send-identical linear merge.
func TestDFBNonPow2GroupMatchesSerial(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps = 2
	opt := baseOptions(6, 2)
	opt.Render = render.DefaultOptions()
	opt.Render.TerminationAlpha = 1

	if _, err := Run(testStore(steps), opt, nil); err == nil {
		t.Fatal("binary-swap accepted group size 3")
	}
	opt.Compositor = CompositorDFB
	frames := runFrames(t, steps, opt)

	store := testStore(steps)
	for s := 0; s < steps; s++ {
		v, err := store.Fetch(s)
		if err != nil {
			t.Fatal(err)
		}
		cam, err := render.NewOrbitCamera(store.Dims(), 0.6, 0.35, 1.8)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := render.Render(v, cam, opt.TF, opt.Render, opt.ImageW, opt.ImageH)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Pix {
			if math.Abs(float64(want.Pix[i]-frames[s].Image.Pix[i])) > 5e-3 {
				t.Fatalf("step %d pixel float %d: %v vs serial %v",
					s, i, frames[s].Image.Pix[i], want.Pix[i])
			}
		}
	}
}

// OnTile must stream every tile of every step exactly once, tagged
// with the group that rendered the step — before the frame arrives.
func TestDFBOnTileStreamsEveryTileOnce(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps, tileRows = 4, 4
	opt := baseOptions(4, 2)
	opt.Compositor = CompositorDFB
	opt.TileRows = tileRows
	opt.Render.TerminationAlpha = 1

	numTiles := (opt.ImageH + tileRows - 1) / tileRows
	var mu sync.Mutex
	seen := map[[2]int]int{}        // (step, tile index) -> count
	tileSum := map[[2]int]float32{} // (step, tile index) -> pixel checksum
	opt.OnTile = func(gid, step int, tl composite.Tile) error {
		mu.Lock()
		defer mu.Unlock()
		if wantGid := step % opt.L; gid != wantGid {
			return fmt.Errorf("step %d streamed from group %d, want %d", step, gid, wantGid)
		}
		if tl.Region.X1 != opt.ImageW || tl.Region.Y0 != tl.Index*tileRows {
			return fmt.Errorf("tile %d region %+v", tl.Index, tl.Region)
		}
		k := [2]int{step, tl.Index}
		seen[k]++
		var sum float32
		for _, p := range tl.Image.Pix {
			sum += p
		}
		tileSum[k] = sum
		return nil
	}

	frames := runFrames(t, steps, opt)
	for s := 0; s < steps; s++ {
		if frames[s].TilesStreamed != numTiles {
			t.Fatalf("step %d TilesStreamed = %d, want %d", s, frames[s].TilesStreamed, numTiles)
		}
		for ti := 0; ti < numTiles; ti++ {
			k := [2]int{s, ti}
			if seen[k] != 1 {
				t.Fatalf("step %d tile %d streamed %d times", s, ti, seen[k])
			}
			// The streamed tile's pixels are the frame's pixels for
			// that region (exact: same floats, same add order).
			sub, err := frames[s].Image.SubRGBA(img.Region{
				X0: 0, Y0: ti * tileRows, X1: opt.ImageW, Y1: min(ti*tileRows+tileRows, opt.ImageH)})
			if err != nil {
				t.Fatal(err)
			}
			var sum float32
			for _, p := range sub.Pix {
				sum += p
			}
			if sum != tileSum[k] {
				t.Fatalf("step %d tile %d: streamed checksum %v != frame region %v", s, ti, tileSum[k], sum)
			}
		}
	}
}

// EmitPieces under the DFB delivers each owner's composited tiles as
// pieces; blitted together they must equal the assembled frame.
func TestDFBEmitPiecesMatchAssembled(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps = 2
	opt := baseOptions(4, 1)
	opt.Compositor = CompositorDFB
	opt.Render.TerminationAlpha = 1
	assembled := runFrames(t, steps, opt)

	opt.EmitPieces = true
	pieces := runFrames(t, steps, opt)
	for s := 0; s < steps; s++ {
		if pieces[s].Image != nil || len(pieces[s].Pieces) == 0 {
			t.Fatalf("step %d: image %v, %d pieces", s, pieces[s].Image, len(pieces[s].Pieces))
		}
		got := img.NewRGBA(opt.ImageW, opt.ImageH)
		covered := 0
		for _, p := range pieces[s].Pieces {
			got.BlitRGBA(p.Image, p.Region)
			covered += (p.Region.X1 - p.Region.X0) * (p.Region.Y1 - p.Region.Y0)
		}
		if covered != opt.ImageW*opt.ImageH {
			t.Fatalf("step %d: pieces cover %d of %d pixels", s, covered, opt.ImageW*opt.ImageH)
		}
		for i := range got.Pix {
			if got.Pix[i] != assembled[s].Image.Pix[i] {
				t.Fatalf("step %d pixel float %d: pieces %v != assembled %v",
					s, i, got.Pix[i], assembled[s].Image.Pix[i])
			}
		}
	}
}

// A node crash under the DFB must degrade exactly like under
// binary-swap: the group dies, its steps are marked failed, the other
// groups keep rendering — and no drain goroutine leaks.
func TestDFBGroupFailureSkipAndContinue(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps = 6
	store := testStore(steps)
	opt := baseOptions(4, 2)
	opt.Compositor = CompositorDFB
	opt.ContinueOnFailure = true
	opt.FaultFn = func(gid, rank, step int) error {
		if gid == 0 && rank == 1 && step == 2 {
			return errors.New("injected crash")
		}
		return nil
	}
	var mu sync.Mutex
	delivered := map[int]bool{}
	failed := map[int]error{}
	opt.OnFailure = func(gid, step int, err error) {
		mu.Lock()
		failed[step] = err
		mu.Unlock()
	}
	m, err := Run(store, opt, func(f *Frame) error {
		mu.Lock()
		delivered[f.Step] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("run failed instead of degrading: %v", err)
	}
	for _, s := range []int{0, 1, 3, 5} {
		if !delivered[s] {
			t.Errorf("step %d not delivered", s)
		}
	}
	for _, s := range []int{2, 4} {
		if delivered[s] || failed[s] == nil {
			t.Errorf("step %d: delivered=%v cause=%v", s, delivered[s], failed[s])
		}
	}
	if m.Frames != 4 || m.FailedSteps != 2 || m.GroupFailures != 1 {
		t.Errorf("metrics = %+v, want Frames=4 FailedSteps=2 GroupFailures=1", m)
	}
}

// A stalled (not crashed) node: its groupmates' DFB drains are waiting
// on fragments that never come, and must fail fast via the expect set
// or the step timeout instead of hanging — skip-and-continue as usual.
func TestDFBStalledNodeDetected(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps = 6
	store := testStore(steps)
	opt := baseOptions(4, 2)
	opt.Compositor = CompositorDFB
	opt.ContinueOnFailure = true
	opt.StepTimeout = 100 * time.Millisecond
	opt.FaultFn = func(gid, rank, step int) error {
		if gid == 0 && rank == 1 && step == 2 {
			time.Sleep(600 * time.Millisecond)
		}
		return nil
	}
	var mu sync.Mutex
	causes := map[int]error{}
	opt.OnFailure = func(gid, step int, err error) {
		mu.Lock()
		causes[step] = err
		mu.Unlock()
	}
	m, err := Run(store, opt, nil)
	if err != nil {
		t.Fatalf("run failed instead of degrading: %v", err)
	}
	if m.GroupFailures != 1 {
		t.Fatalf("metrics = %+v, want exactly one group failure", m)
	}
	if m.Frames+m.FailedSteps != steps {
		t.Fatalf("metrics = %+v, frames+failed != %d", m, steps)
	}
	mu.Lock()
	cause := causes[2]
	mu.Unlock()
	if !errors.Is(cause, comm.ErrRecvTimeout) && !errors.Is(cause, comm.ErrRankFailed) {
		t.Fatalf("step 2 cause = %v, want recv-timeout/rank-failed", cause)
	}
}

// Parallel in-group rendering (Workers > 1) streams tiles from worker
// goroutines concurrently; the frame must stay bit-identical to the
// serial DFB run.
func TestDFBParallelRenderWorkers(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps = 2
	opt := baseOptions(4, 1)
	opt.Compositor = CompositorDFB
	opt.Render.TerminationAlpha = 1
	serial := runFrames(t, steps, opt)

	opt.Render.Workers = 3
	par := runFrames(t, steps, opt)
	for s := 0; s < steps; s++ {
		for i := range serial[s].Image.Pix {
			if serial[s].Image.Pix[i] != par[s].Image.Pix[i] {
				t.Fatalf("step %d pixel float %d differs with Workers=3", s, i)
			}
		}
	}
}

// Guard against regressions in the validation matrix around the new
// options.
func TestDFBOptionsValidation(t *testing.T) {
	testutil.CheckGoroutines(t)
	store := testStore(1)
	bad := Options{P: 4, L: 1, ImageW: 8, ImageH: 8, TF: baseOptions(1, 1).TF,
		Compositor: CompositorDFB, TileRows: -1}
	if _, err := Run(store, bad, nil); err == nil {
		t.Fatal("negative TileRows accepted")
	}
}
