package pipeline

import (
	"repro/internal/testutil"

	"testing"

	"repro/internal/obs"
	"repro/internal/tf"
)

// TestRunRecordsStageSpans pins the tracing contract the paperbench
// pipeline experiment relies on: every (group, step) leader records
// fetch, render and composite spans on its group's track, plus a
// deliver span per frame.
func TestRunRecordsStageSpans(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps = 4
	store := testStore(steps)
	tr := obs.NewTracer(obs.WallClock(), 1024)
	reg := obs.NewRegistry()
	_, err := Run(store, Options{
		P: 4, L: 2,
		ImageW: 24, ImageH: 24,
		TF:      tf.Jet(),
		Trace:   tr,
		Metrics: reg,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	type key struct{ track, name string }
	counts := map[key]int{}
	for _, sp := range tr.Spans() {
		if sp.End < sp.Start {
			t.Fatalf("span %v ends before it starts", sp)
		}
		counts[key{sp.Track, sp.Name}]++
	}
	// L=2 groups alternate steps: two steps per group, each with the
	// four stages on the group's own track.
	for _, track := range []string{"group 0", "group 1"} {
		for _, stage := range []string{"fetch", "render", "composite", "deliver"} {
			if got := counts[key{track, stage}]; got != steps/2 {
				t.Fatalf("%s/%s spans = %d, want %d (all: %v)", track, stage, got, steps/2, counts)
			}
		}
	}

	for _, stage := range []string{"fetch", "render", "composite", "deliver"} {
		h := reg.Histogram(`pipeline_stage_seconds{stage="`+stage+`"}`, "")
		if got := h.Summary().N; got != steps {
			t.Fatalf("%s histogram N = %d, want %d", stage, got, steps)
		}
	}
	if got := reg.Histogram("pipeline_interframe_delay_seconds", "").Summary().N; got != steps-1 {
		t.Fatalf("interframe delays = %d, want %d", got, steps-1)
	}
	if got := reg.Counter("pipeline_frames_total", "").Value(); got != steps {
		t.Fatalf("frames counter = %d, want %d", got, steps)
	}
}
