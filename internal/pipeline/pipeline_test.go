package pipeline

import (
	"repro/internal/testutil"

	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/img"
	"repro/internal/render"
	"repro/internal/tf"
	"repro/internal/vol"
	"repro/internal/volio"
)

func testStore(steps int) *volio.GenStore {
	return volio.NewGenStore(datagen.NewJetScaled(0.15, steps))
}

func baseOptions(p, l int) Options {
	return Options{P: p, L: l, ImageW: 32, ImageH: 32, TF: tf.Jet()}
}

func TestOptionsValidation(t *testing.T) {
	testutil.CheckGoroutines(t)
	store := testStore(2)
	bad := []Options{
		{P: 0, L: 1, ImageW: 8, ImageH: 8, TF: tf.Jet()},
		{P: 4, L: 3, ImageW: 8, ImageH: 8, TF: tf.Jet()},  // not divisible
		{P: 12, L: 2, ImageW: 8, ImageH: 8, TF: tf.Jet()}, // G=6 not pow2
		{P: 2, L: 1, ImageW: 8, ImageH: 8},                // nil TF
		{P: 2, L: 1, ImageW: 0, ImageH: 8, TF: tf.Jet()},
		{P: 16, L: 1, ImageW: 8, ImageH: 8, TF: tf.Jet()}, // H < G
	}
	for i, o := range bad {
		if _, err := Run(store, o, nil); err == nil {
			t.Errorf("case %d accepted: %+v", i, o)
		}
	}
}

func TestAllStepsDeliveredOnce(t *testing.T) {
	testutil.CheckGoroutines(t)
	store := testStore(6)
	var mu sync.Mutex
	seen := map[int]int{}
	m, err := Run(store, baseOptions(4, 2), func(f *Frame) error {
		mu.Lock()
		seen[f.Step]++
		mu.Unlock()
		if f.Image == nil {
			return fmt.Errorf("step %d: nil image", f.Step)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Frames != 6 {
		t.Fatalf("frames = %d", m.Frames)
	}
	for s := 0; s < 6; s++ {
		if seen[s] != 1 {
			t.Fatalf("step %d delivered %d times", s, seen[s])
		}
	}
	if m.Overall <= 0 || m.StartupLatency <= 0 || m.InterFrameDelay <= 0 {
		t.Fatalf("metrics %+v", m)
	}
	if m.StartupLatency > m.Overall {
		t.Fatal("startup after overall")
	}
}

// The pipelined result must match a single-node render of each step.
func TestMatchesSerialRender(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps = 2
	store := testStore(steps)
	opt := baseOptions(4, 1)
	opt.Render = render.DefaultOptions()
	opt.Render.TerminationAlpha = 1

	got := make([]*img.RGBA, steps)
	var mu sync.Mutex
	if _, err := Run(store, opt, func(f *Frame) error {
		mu.Lock()
		got[f.Step] = f.Image
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		v, err := store.Fetch(s)
		if err != nil {
			t.Fatal(err)
		}
		// The default camera Run uses when CameraFn is nil.
		cam, err := render.NewOrbitCamera(store.Dims(), 0.6, 0.35, 1.8)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := render.Render(v, cam, opt.TF, opt.Render, opt.ImageW, opt.ImageH)
		if err != nil {
			t.Fatal(err)
		}
		var maxDiff float64
		for i := range want.Pix {
			d := math.Abs(float64(want.Pix[i] - got[s].Pix[i]))
			if d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 5e-3 {
			t.Fatalf("step %d: max diff %v vs serial render", s, maxDiff)
		}
	}
}

// All valid L for a fixed P must produce identical images.
func TestPartitioningInvariance(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps = 3
	var ref []*img.RGBA
	for _, l := range []int{1, 2, 4} {
		store := testStore(steps)
		opt := baseOptions(4, l)
		opt.Render.TerminationAlpha = 1
		imgs := make([]*img.RGBA, steps)
		var mu sync.Mutex
		if _, err := Run(store, opt, func(f *Frame) error {
			mu.Lock()
			imgs[f.Step] = f.Image
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatalf("L=%d: %v", l, err)
		}
		if ref == nil {
			ref = imgs
			continue
		}
		for s := range imgs {
			for i := range imgs[s].Pix {
				if math.Abs(float64(imgs[s].Pix[i]-ref[s].Pix[i])) > 5e-3 {
					t.Fatalf("L=%d step %d differs from L=1", l, s)
				}
			}
		}
	}
}

func TestEmitPieces(t *testing.T) {
	testutil.CheckGoroutines(t)
	store := testStore(2)
	opt := baseOptions(4, 1)
	opt.EmitPieces = true
	opt.Render.TerminationAlpha = 1

	var mu sync.Mutex
	var frames []*Frame
	if _, err := Run(store, opt, func(f *Frame) error {
		mu.Lock()
		frames = append(frames, f)
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("%d frames", len(frames))
	}
	for _, f := range frames {
		if f.Image != nil {
			t.Fatal("EmitPieces must not assemble")
		}
		if len(f.Pieces) != 4 {
			t.Fatalf("step %d: %d pieces", f.Step, len(f.Pieces))
		}
		// Pieces tile the image.
		covered := 0
		for _, p := range f.Pieces {
			if p.Image.W != p.Region.W() || p.Image.H != p.Region.H() {
				t.Fatal("piece size mismatch")
			}
			covered += p.Region.Pixels()
		}
		if covered != opt.ImageW*opt.ImageH {
			t.Fatalf("pieces cover %d px", covered)
		}
	}
}

// Pieces reassembled must equal the assembled image from a separate
// run with identical options.
func TestPiecesMatchAssembled(t *testing.T) {
	testutil.CheckGoroutines(t)
	mk := func(emit bool) []*Frame {
		store := testStore(1)
		opt := baseOptions(8, 1)
		opt.EmitPieces = emit
		opt.Render.TerminationAlpha = 1
		var frames []*Frame
		var mu sync.Mutex
		if _, err := Run(store, opt, func(f *Frame) error {
			mu.Lock()
			frames = append(frames, f)
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return frames
	}
	pieces := mk(true)[0]
	whole := mk(false)[0]
	re := img.NewRGBA(32, 32)
	for _, p := range pieces.Pieces {
		if err := re.BlitRGBA(p.Image, p.Region); err != nil {
			t.Fatal(err)
		}
	}
	for i := range re.Pix {
		if math.Abs(float64(re.Pix[i]-whole.Image.Pix[i])) > 5e-3 {
			t.Fatal("reassembled pieces differ from assembled image")
		}
	}
}

func TestSinkErrorPropagates(t *testing.T) {
	testutil.CheckGoroutines(t)
	store := testStore(2)
	boom := fmt.Errorf("sink failed")
	_, err := Run(store, baseOptions(2, 1), func(f *Frame) error { return boom })
	if err == nil {
		t.Fatal("sink error swallowed")
	}
}

func TestGroupSizes(t *testing.T) {
	testutil.CheckGoroutines(t)
	got := GroupSizes(16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("GroupSizes(16) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GroupSizes(16) = %v", got)
		}
	}
	// 12 has divisors 1,2,3,4,6,12; valid L are those with pow2 G:
	// L=3 (G=4), L=6 (G=2), L=12 (G=1).
	got = GroupSizes(12)
	want = []int{3, 6, 12}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("GroupSizes(12) = %v", got)
	}
}

func TestIsPow2(t *testing.T) {
	testutil.CheckGoroutines(t)
	for _, v := range []int{1, 2, 4, 1024} {
		if !IsPow2(v) {
			t.Fatalf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []int{0, -2, 3, 6, 12} {
		if IsPow2(v) {
			t.Fatalf("IsPow2(%d) = true", v)
		}
	}
}

func TestCustomCamera(t *testing.T) {
	testutil.CheckGoroutines(t)
	store := testStore(2)
	opt := baseOptions(2, 1)
	calls := 0
	var mu sync.Mutex
	opt.CameraFn = func(step int, d vol.Dims) (*render.Camera, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return render.NewOrbitCamera(d, float64(step)*0.5, 0.3, 2)
	}
	if _, err := Run(store, opt, nil); err != nil {
		t.Fatal(err)
	}
	if calls < 2 {
		t.Fatalf("camera fn called %d times", calls)
	}
}

func BenchmarkPipeline4x2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		store := testStore(4)
		if _, err := Run(store, baseOptions(4, 2), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// The parallel-I/O input path (§7.1) must produce frames identical to
// the leader-scatter path, over both a generator store and a real
// dataset file.
func TestRegionInputMatchesScatter(t *testing.T) {
	testutil.CheckGoroutines(t)
	const steps = 2
	dir := t.TempDir()
	path := filepath.Join(dir, "jet.tvv")
	if err := volio.WriteDataset(path, datagen.NewJetScaled(0.15, steps)); err != nil {
		t.Fatal(err)
	}
	r, err := volio.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	run := func(store volio.Store, region bool) []*img.RGBA {
		opt := baseOptions(4, 1)
		opt.RegionInput = region
		opt.Render.TerminationAlpha = 1
		imgs := make([]*img.RGBA, steps)
		var mu sync.Mutex
		if _, err := Run(store, opt, func(f *Frame) error {
			mu.Lock()
			imgs[f.Step] = f.Image
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return imgs
	}
	fileStore := volio.FileStore{R: r}
	scatter := run(fileStore, false)
	region := run(fileStore, true)
	for s := range scatter {
		for i := range scatter[s].Pix {
			if math.Abs(float64(scatter[s].Pix[i]-region[s].Pix[i])) > 5e-3 {
				t.Fatalf("step %d differs between scatter and region input", s)
			}
		}
	}
	// Generator-backed store supports the same path.
	genRegion := run(volio.NewGenStore(datagen.NewJetScaled(0.15, steps)), true)
	if genRegion[0] == nil {
		t.Fatal("generator region input produced nothing")
	}
}

func TestRegionInputRequiresRegionStore(t *testing.T) {
	testutil.CheckGoroutines(t)
	opt := baseOptions(2, 1)
	opt.RegionInput = true
	_, err := Run(plainStore{testStore(1)}, opt, nil)
	if err == nil {
		t.Fatal("non-region store accepted")
	}
}

// plainStore hides the RegionStore capability of the wrapped store.
type plainStore struct{ s volio.Store }

func (p plainStore) Dims() vol.Dims                   { return p.s.Dims() }
func (p plainStore) Steps() int                       { return p.s.Steps() }
func (p plainStore) Fetch(t int) (*vol.Volume, error) { return p.s.Fetch(t) }

// Accelerated pipelined rendering must match the unaccelerated result.
func TestAccelPipelineMatches(t *testing.T) {
	testutil.CheckGoroutines(t)
	run := func(accel bool) *img.RGBA {
		store := testStore(1)
		opt := baseOptions(4, 1)
		opt.Accel = accel
		opt.Render.TerminationAlpha = 1
		var out *img.RGBA
		var mu sync.Mutex
		if _, err := Run(store, opt, func(f *Frame) error {
			mu.Lock()
			out = f.Image
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := run(false)
	b := run(true)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("accelerated pipeline differs at %d", i)
		}
	}
}
