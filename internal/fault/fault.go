// Package fault is a deterministic, seedable fault injector for the
// wide-area transport stack: it wraps net.Conn to produce connection
// drops, byte corruption, stalls/partitions, and slow-start links at
// reproducible points in the byte stream, and provides scripted
// "kill" switches for whole components. Byte-offset triggers count a
// connection's cumulative written bytes, so a given Plan applied to a
// given stream always faults at the same place — every failure
// scenario in the chaos tests and in `paperbench -exp faults` replays
// exactly.
//
// Injected faults compose with wan shaping: wrap the already-shaped
// connection (fault outside, wan inside) so corruption and drops hit
// the paced stream the way a real lossy link would.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks every failure produced by this package, so tests
// and recovery paths can tell injected faults from real ones.
var ErrInjected = errors.New("fault: injected failure")

// Plan configures the faults applied to each wrapped connection. The
// zero value injects nothing. Probabilistic triggers draw from the
// injector's seeded generator; byte-offset triggers are exact.
type Plan struct {
	// Seed seeds the probability draws (0 = 1).
	Seed int64

	// DropAfterBytes closes the connection once its cumulative
	// written bytes reach this count (0 = never). The write that
	// crosses the threshold fails with ErrInjected.
	DropAfterBytes int64
	// DropProb closes the connection with this per-write probability.
	DropProb float64

	// CorruptOffsets are absolute write-stream byte offsets whose
	// byte is bit-flipped (XOR 0xFF) — precise corruption for
	// deterministic CRC tests.
	CorruptOffsets []int64
	// CorruptEveryBytes flips one byte every N written bytes
	// (0 = never) — sustained low-rate corruption.
	CorruptEveryBytes int64

	// StallAfterBytes pauses the connection once, for Stall, when the
	// written-byte count crosses it — a transient partition that TCP
	// survives but frame pacing notices.
	StallAfterBytes int64
	// StallEveryBytes stalls recurringly, every N written bytes.
	StallEveryBytes int64
	// Stall is the pause applied by the stall triggers.
	Stall time.Duration

	// SlowStartBytes throttles the first N written bytes to
	// SlowStartBandwidth (bytes/s) — a cold link ramping up.
	SlowStartBytes     int64
	SlowStartBandwidth float64

	// ReadStallEveryBytes stalls the read side for ReadStall every N
	// received bytes (0 = never) — a congested inbound link. This is
	// the knob the status experiment turns to slow one relay's intake
	// without touching its outbound stream.
	ReadStallEveryBytes int64
	ReadStall           time.Duration
}

// Stats counts injected events across an injector's connections.
type Stats struct {
	Drops        int64 `json:"drops"`
	FlippedBytes int64 `json:"flipped_bytes"`
	Stalls       int64 `json:"stalls"`
	Kills        int64 `json:"kills"`
}

// Injector applies one Plan to any number of connections and holds
// the scripted-failure switches (KillAll, Partition). Each wrapped
// connection faults independently against its own byte counter.
type Injector struct {
	plan Plan

	mu          sync.Mutex
	rng         *rand.Rand
	conns       map[*Conn]struct{}
	partitioned bool
	partCond    *sync.Cond

	drops   atomic.Int64
	flipped atomic.Int64
	stalls  atomic.Int64
	kills   atomic.Int64
}

// New builds an injector for a plan.
func New(plan Plan) *Injector {
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	offs := append([]int64(nil), plan.CorruptOffsets...)
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	plan.CorruptOffsets = offs
	in := &Injector{plan: plan, rng: rand.New(rand.NewSource(seed)), conns: map[*Conn]struct{}{}}
	in.partCond = sync.NewCond(&in.mu)
	return in
}

// Stats snapshots the injected-event counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Drops:        in.drops.Load(),
		FlippedBytes: in.flipped.Load(),
		Stalls:       in.stalls.Load(),
		Kills:        in.kills.Load(),
	}
}

// Wrap attaches the plan to a connection (write side). Wrap the side
// whose outbound stream should fault; wrap both ends for a fully
// hostile link.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	fc := &Conn{Conn: c, in: in}
	in.mu.Lock()
	in.conns[fc] = struct{}{}
	in.mu.Unlock()
	return fc
}

// Wrapper adapts Wrap to the transport dial/serve hooks
// (func(net.Conn) net.Conn).
func (in *Injector) Wrapper() func(net.Conn) net.Conn {
	return func(c net.Conn) net.Conn { return in.Wrap(c) }
}

// KillAll closes every live wrapped connection — the scripted
// mid-stream kill of a component. Returns the number of connections
// killed.
func (in *Injector) KillAll() int {
	in.mu.Lock()
	conns := make([]*Conn, 0, len(in.conns))
	for c := range in.conns {
		conns = append(conns, c)
	}
	in.mu.Unlock()
	n := 0
	for _, c := range conns {
		if c.kill() {
			n++
		}
	}
	in.kills.Add(int64(n))
	// Wake writers blocked behind a partition so they observe the
	// closed connection.
	in.mu.Lock()
	in.partCond.Broadcast()
	in.mu.Unlock()
	return n
}

// Partition blocks every write on every wrapped connection until
// Heal — a network partition that keeps sockets open.
func (in *Injector) Partition() {
	in.mu.Lock()
	in.partitioned = true
	in.mu.Unlock()
}

// Heal lifts a Partition.
func (in *Injector) Heal() {
	in.mu.Lock()
	in.partitioned = false
	in.partCond.Broadcast()
	in.mu.Unlock()
}

// forget drops a closed connection from the live set.
func (in *Injector) forget(c *Conn) {
	in.mu.Lock()
	delete(in.conns, c)
	in.mu.Unlock()
}

// Conn is one fault-wrapped connection.
type Conn struct {
	net.Conn
	in *Injector

	mu      sync.Mutex // serializes Write's fault bookkeeping
	written int64
	nextOff int // index into plan.CorruptOffsets
	stalled bool
	closed  atomic.Bool

	readMu sync.Mutex // serializes Read's byte counter
	read   int64
}

// kill closes the underlying connection without unregistering (Close
// still runs later); reports whether this call closed it.
func (c *Conn) kill() bool {
	if c.closed.Swap(true) {
		return false
	}
	c.Conn.Close()
	return true
}

// Close closes and unregisters the connection.
func (c *Conn) Close() error {
	c.closed.Store(true)
	c.in.forget(c)
	return c.Conn.Close()
}

// Read applies the read-side plan: a recurring stall every
// ReadStallEveryBytes received bytes. The stall lands after the bytes
// that crossed the threshold are returned-to-caller-side counted, so
// a frame mid-flight is delayed rather than truncated.
func (c *Conn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	plan := &c.in.plan
	if n > 0 && plan.ReadStallEveryBytes > 0 && plan.ReadStall > 0 {
		c.readMu.Lock()
		start := c.read
		c.read += int64(n)
		crossed := c.read/plan.ReadStallEveryBytes > start/plan.ReadStallEveryBytes
		c.readMu.Unlock()
		if crossed {
			c.in.stalls.Add(1)
			time.Sleep(plan.ReadStall)
		}
	}
	return n, err
}

// Write applies the plan to one write: partition gate, slow start,
// stall triggers, corruption, then drop triggers.
func (c *Conn) Write(b []byte) (int, error) {
	in := c.in
	plan := &in.plan

	// Partition gate: block until healed or the connection dies.
	in.mu.Lock()
	for in.partitioned && !c.closed.Load() {
		in.partCond.Wait()
	}
	in.mu.Unlock()
	if c.closed.Load() {
		return 0, fmt.Errorf("fault: connection killed: %w", ErrInjected)
	}

	c.mu.Lock()
	start := c.written
	end := start + int64(len(b))

	// Drop: per-write probability, or the byte threshold.
	drop := false
	if plan.DropProb > 0 {
		in.mu.Lock()
		drop = in.rng.Float64() < plan.DropProb
		in.mu.Unlock()
	}
	if plan.DropAfterBytes > 0 && end > plan.DropAfterBytes {
		drop = true
	}
	if drop {
		c.mu.Unlock()
		in.drops.Add(1)
		c.kill()
		return 0, fmt.Errorf("fault: connection dropped at byte %d: %w", start, ErrInjected)
	}

	// Stall triggers.
	stall := time.Duration(0)
	if plan.Stall > 0 {
		if plan.StallAfterBytes > 0 && !c.stalled && end > plan.StallAfterBytes {
			c.stalled = true
			stall = plan.Stall
		}
		if plan.StallEveryBytes > 0 && end/plan.StallEveryBytes > start/plan.StallEveryBytes {
			stall = plan.Stall
		}
	}

	// Corruption: flip bytes at exact offsets, or every N bytes.
	var out []byte
	flip := func(i int64) {
		if out == nil {
			out = append([]byte(nil), b...)
		}
		out[i-start] ^= 0xFF
		in.flipped.Add(1)
	}
	for c.nextOff < len(plan.CorruptOffsets) {
		off := plan.CorruptOffsets[c.nextOff]
		if off >= end {
			break
		}
		if off >= start {
			flip(off)
		}
		c.nextOff++
	}
	if n := plan.CorruptEveryBytes; n > 0 {
		for k := start/n + 1; k*n < end; k++ {
			if k*n >= start {
				flip(k * n)
			}
		}
	}

	// Slow start: the first SlowStartBytes trickle at the configured
	// bandwidth (modelled as a pre-write sleep; precise enough for
	// scenario pacing).
	if plan.SlowStartBytes > 0 && plan.SlowStartBandwidth > 0 && start < plan.SlowStartBytes {
		slow := end
		if slow > plan.SlowStartBytes {
			slow = plan.SlowStartBytes
		}
		stall += time.Duration(float64(slow-start) / plan.SlowStartBandwidth * float64(time.Second))
	}

	c.written = end
	c.mu.Unlock()

	if stall > 0 {
		in.stalls.Add(1)
		time.Sleep(stall)
	}
	if out != nil {
		b = out
	}
	return c.Conn.Write(b)
}

// CrashPlan schedules a renderer node crash inside the pipelined
// renderer: the node at (Group, Rank) fails when it reaches Step.
type CrashPlan struct {
	Group, Rank, Step int
}

// NodeCrash returns a pipeline fault hook (pipeline.Options.FaultFn
// shape): it errors exactly once, at the planned (group, rank, step).
func NodeCrash(p CrashPlan) func(gid, rank, step int) error {
	var fired atomic.Bool
	return func(gid, rank, step int) error {
		if gid == p.Group && rank == p.Rank && step == p.Step && !fired.Swap(true) {
			return fmt.Errorf("fault: node crash at group %d rank %d step %d: %w", gid, rank, step, ErrInjected)
		}
		return nil
	}
}
