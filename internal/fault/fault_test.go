package fault

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipe returns a wrapped writer and a background reader collecting
// everything the far end receives.
func pipe(t *testing.T, in *Injector) (net.Conn, <-chan []byte) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	got := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(b)
		got <- data
	}()
	return in.Wrap(a), got
}

func TestCorruptOffsetsDeterministic(t *testing.T) {
	in := New(Plan{CorruptOffsets: []int64{3, 10}})
	c, got := pipe(t, in)

	// Two writes spanning the offsets: bytes 0..7 then 8..15.
	for _, chunk := range [][]byte{make([]byte, 8), make([]byte, 8)} {
		if _, err := c.Write(chunk); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	c.Close()
	data := <-got
	if len(data) != 16 {
		t.Fatalf("read %d bytes, want 16", len(data))
	}
	for i, b := range data {
		want := byte(0)
		if i == 3 || i == 10 {
			want = 0xFF
		}
		if b != want {
			t.Errorf("byte %d = %#x, want %#x", i, b, want)
		}
	}
	if s := in.Stats(); s.FlippedBytes != 2 {
		t.Errorf("FlippedBytes = %d, want 2", s.FlippedBytes)
	}
}

func TestCorruptEveryBytes(t *testing.T) {
	in := New(Plan{CorruptEveryBytes: 4})
	c, got := pipe(t, in)
	if _, err := c.Write(make([]byte, 16)); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.Close()
	data := <-got
	flips := 0
	for _, b := range data {
		if b == 0xFF {
			flips++
		}
	}
	// Offsets 4, 8, 12 flip (0 is skipped: k starts at start/n+1).
	if flips != 3 {
		t.Errorf("flipped %d bytes, want 3 (data %v)", flips, data)
	}
}

func TestDropAfterBytes(t *testing.T) {
	in := New(Plan{DropAfterBytes: 10})
	c, got := pipe(t, in)
	if _, err := c.Write(make([]byte, 8)); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	_, err := c.Write(make([]byte, 8)) // crosses 10
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write error = %v, want ErrInjected", err)
	}
	// Connection is dead now.
	if _, err := c.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-drop write error = %v, want ErrInjected", err)
	}
	<-got
	if s := in.Stats(); s.Drops != 1 {
		t.Errorf("Drops = %d, want 1", s.Drops)
	}
}

func TestKillAll(t *testing.T) {
	in := New(Plan{})
	c1, got1 := pipe(t, in)
	c2, got2 := pipe(t, in)
	if n := in.KillAll(); n != 2 {
		t.Fatalf("KillAll = %d, want 2", n)
	}
	<-got1
	<-got2
	for i, c := range []net.Conn{c1, c2} {
		if _, err := c.Write([]byte{1}); !errors.Is(err, ErrInjected) {
			t.Errorf("conn %d write after kill = %v, want ErrInjected", i, err)
		}
	}
	if s := in.Stats(); s.Kills != 2 {
		t.Errorf("Kills = %d, want 2", s.Kills)
	}
	// Killing again is a no-op.
	if n := in.KillAll(); n != 0 {
		t.Errorf("second KillAll = %d, want 0", n)
	}
}

func TestPartitionBlocksUntilHeal(t *testing.T) {
	in := New(Plan{})
	c, got := pipe(t, in)
	in.Partition()
	done := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("hi"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("write completed during partition (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	in.Heal()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still blocked after heal")
	}
	c.Close()
	if data := <-got; string(data) != "hi" {
		t.Fatalf("read %q, want %q", data, "hi")
	}
}

func TestPartitionThenKillUnblocks(t *testing.T) {
	in := New(Plan{})
	c, _ := pipe(t, in)
	in.Partition()
	done := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("hi"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	in.KillAll()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("write after kill = %v, want ErrInjected", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still blocked after KillAll")
	}
}

func TestSlowStartPaces(t *testing.T) {
	// First 1000 bytes at 10 KB/s => ~100ms; after that, full speed.
	in := New(Plan{SlowStartBytes: 1000, SlowStartBandwidth: 10_000})
	c, got := pipe(t, in)
	start := time.Now()
	if _, err := c.Write(make([]byte, 1000)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Errorf("slow-start write took %v, want >= ~100ms", el)
	}
	start = time.Now()
	if _, err := c.Write(make([]byte, 1000)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Errorf("post-slow-start write took %v, want fast", el)
	}
	c.Close()
	<-got
}

func TestDropProbSeededDeterministic(t *testing.T) {
	run := func() int {
		in := New(Plan{Seed: 42, DropProb: 0.3})
		c, got := pipe(t, in)
		writes := 0
		for i := 0; i < 100; i++ {
			if _, err := c.Write([]byte{byte(i)}); err != nil {
				break
			}
			writes++
		}
		c.Close()
		<-got
		return writes
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed gave different drop points: %d vs %d", a, b)
	}
	if a >= 100 {
		t.Fatalf("DropProb=0.3 never dropped in 100 writes")
	}
}

func TestNodeCrashFiresOnce(t *testing.T) {
	fn := NodeCrash(CrashPlan{Group: 1, Rank: 2, Step: 3})
	if err := fn(0, 0, 0); err != nil {
		t.Fatalf("wrong coordinates fired: %v", err)
	}
	if err := fn(1, 2, 3); !errors.Is(err, ErrInjected) {
		t.Fatalf("planned crash = %v, want ErrInjected", err)
	}
	if err := fn(1, 2, 3); err != nil {
		t.Fatalf("second fire = %v, want nil (fires once)", err)
	}
}
