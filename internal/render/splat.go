package render

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/img"
	"repro/internal/tf"
	"repro/internal/vol"
)

// Splatting is the alternative rendering method the paper's survey
// mentions (MPIRE "allows the user to select a rendering method —
// splatting or ray casting"): voxels are classified, projected to the
// screen back to front, and composited as Gaussian footprints. It
// trades image quality for speed on sparse data — only non-transparent
// voxels cost anything — which makes it an interesting ablation
// against the ray caster.

// SplatOptions controls the splatting renderer.
type SplatOptions struct {
	// KernelRadius is the footprint radius in voxel units (default
	// 1.4).
	KernelRadius float64
	// OpacityThreshold skips voxels whose classified opacity is below
	// it (default 0.004).
	OpacityThreshold float32
}

// SplatStats reports the work done.
type SplatStats struct {
	// Voxels is the number classified; Splatted the number projected.
	Voxels   int
	Splatted int
}

func (o *SplatOptions) normalize() error {
	if o.KernelRadius == 0 {
		o.KernelRadius = 1.4
	}
	if o.KernelRadius < 0.3 || o.KernelRadius > 8 {
		return fmt.Errorf("render: splat kernel radius %v out of [0.3, 8]", o.KernelRadius)
	}
	if o.OpacityThreshold == 0 {
		o.OpacityThreshold = 0.004
	}
	return nil
}

// Splat renders the volume by back-to-front voxel splatting.
func Splat(v *vol.Volume, cam *Camera, t *tf.TF, opt SplatOptions, w, h int) (*img.RGBA, SplatStats, error) {
	var st SplatStats
	if err := opt.normalize(); err != nil {
		return nil, st, err
	}
	if !cam.ready {
		if err := cam.Finish(); err != nil {
			return nil, st, err
		}
	}
	dst := img.NewRGBA(w, h)

	// Back-to-front slice order along the axis most aligned with the
	// view direction; slices farther from the eye come first.
	axis, slices := sliceOrder(v.Dims, cam)

	tanF := math.Tan(cam.FovY / 2)
	aspect := float64(w) / float64(h)
	// Pixels per unit length at unit camera depth.
	pxPerUnitX := float64(w) / 2 / (tanF * aspect)
	pxPerUnitY := float64(h) / 2 / tanF

	// Alpha correction: one splat stands in for the ray caster's
	// DefaultOptions().Step-spaced samples across a unit voxel, so
	// boost opacity to alpha' = 1-(1-a)^(1/step).
	gamma := 1.0 / DefaultOptions().Step

	for _, slice := range slices {
		for b := 0; b < secondaryExtent(v.Dims, axis, 1); b++ {
			for a := 0; a < secondaryExtent(v.Dims, axis, 0); a++ {
				x, y, z := voxelAt(axis, slice, a, b)
				raw := v.At(x, y, z)
				st.Voxels++
				cr, cg, cb, ca := t.Classify(v.Normalize(raw))
				if ca < opt.OpacityThreshold {
					continue
				}
				ca = 1 - float32(math.Pow(float64(1-ca), gamma))
				// Project the voxel center.
				d := Vec3{float64(x), float64(y), float64(z)}.Sub(cam.Eye)
				depth := d.Dot(cam.fwd)
				if depth <= 1e-6 {
					continue // behind the eye
				}
				sx := d.Dot(cam.right) / depth * pxPerUnitX
				sy := d.Dot(cam.upv) / depth * pxPerUnitY
				px := float64(w)/2 + sx - 0.5
				py := float64(h)/2 - sy - 0.5
				// Footprint radius in pixels.
				r := opt.KernelRadius / depth * pxPerUnitX
				if r < 0.5 {
					r = 0.5
				}
				st.Splatted++
				splatFootprint(dst, px, py, r, cr, cg, cb, ca)
			}
		}
	}
	return dst, st, nil
}

// splatFootprint composites a Gaussian footprint over the accumulated
// image: traversal is back to front, so each new splat is nearer the
// eye and goes on top (out = splat over out).
func splatFootprint(dst *img.RGBA, px, py, r float64, cr, cg, cb, ca float32) {
	x0 := int(math.Floor(px - r))
	x1 := int(math.Ceil(px + r))
	y0 := int(math.Floor(py - r))
	y1 := int(math.Ceil(py + r))
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > dst.W-1 {
		x1 = dst.W - 1
	}
	if y1 > dst.H-1 {
		y1 = dst.H - 1
	}
	inv2r2 := 2.0 / (r * r)
	for yy := y0; yy <= y1; yy++ {
		dy := float64(yy) - py
		for xx := x0; xx <= x1; xx++ {
			dx := float64(xx) - px
			q := (dx*dx + dy*dy) * inv2r2
			if q > 2 {
				continue
			}
			wgt := float32(math.Exp(-q * 2))
			a := ca * wgt
			if a <= 0 {
				continue
			}
			i := (yy*dst.W + xx) * 4
			// Back-to-front: new splat over existing.
			t := 1 - a
			dst.Pix[i] = a*cr + t*dst.Pix[i]
			dst.Pix[i+1] = a*cg + t*dst.Pix[i+1]
			dst.Pix[i+2] = a*cb + t*dst.Pix[i+2]
			dst.Pix[i+3] = a + t*dst.Pix[i+3]
		}
	}
}

// sliceOrder picks the traversal axis (most view-aligned) and returns
// slice indices ordered back to front.
func sliceOrder(d vol.Dims, cam *Camera) (axis int, slices []int) {
	f := [3]float64{math.Abs(cam.fwd.X), math.Abs(cam.fwd.Y), math.Abs(cam.fwd.Z)}
	axis = 0
	for a := 1; a < 3; a++ {
		if f[a] > f[axis] {
			axis = a
		}
	}
	n := [3]int{d.NX, d.NY, d.NZ}[axis]
	slices = make([]int, n)
	for i := range slices {
		slices[i] = i
	}
	eye := [3]float64{cam.Eye.X, cam.Eye.Y, cam.Eye.Z}[axis]
	sort.Slice(slices, func(i, j int) bool {
		return math.Abs(float64(slices[i])-eye) > math.Abs(float64(slices[j])-eye)
	})
	return axis, slices
}

// secondaryExtent returns the extent of the k-th non-traversal axis.
func secondaryExtent(d vol.Dims, axis, k int) int {
	ext := [3]int{d.NX, d.NY, d.NZ}
	var other []int
	for a := 0; a < 3; a++ {
		if a != axis {
			other = append(other, ext[a])
		}
	}
	return other[k]
}

// voxelAt maps (slice, a, b) coordinates back to (x,y,z).
func voxelAt(axis, slice, a, b int) (x, y, z int) {
	switch axis {
	case 0:
		return slice, a, b
	case 1:
		return a, slice, b
	default:
		return a, b, slice
	}
}
