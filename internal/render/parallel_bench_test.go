package render

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/img"
	"repro/internal/tf"
	"repro/internal/vol"
)

func testVolumeB(b *testing.B) *vol.Volume {
	b.Helper()
	g := datagen.NewJetScaled(0.25, 3)
	v, err := g.Step(1)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// BenchmarkRenderWorkers measures the tile-parallel ray caster at
// several worker counts; the perf harness (paperbench -exp perf)
// reports the same shape as speedup-vs-cores.
func BenchmarkRenderWorkers(b *testing.B) {
	v := testVolumeB(b)
	cam, err := NewOrbitCamera(v.Dims, 0.6, 0.35, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	const size = 128
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := DefaultOptions()
			opt.Workers = workers
			dst := img.NewRGBA(size, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RenderRegion(WholeVolume(v), v.Bounds(), cam, tf.Jet(), opt, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRenderPooledFrame measures the full pooled frame path:
// render into a reused RGBA, quantize into a pooled Frame, recycle.
func BenchmarkRenderPooledFrame(b *testing.B) {
	v := testVolumeB(b)
	cam, err := NewOrbitCamera(v.Dims, 0.6, 0.35, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	const size = 128
	opt := DefaultOptions()
	opt.Workers = 1
	dst := img.NewRGBA(size, size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RenderRegion(WholeVolume(v), v.Bounds(), cam, tf.Jet(), opt, dst); err != nil {
			b.Fatal(err)
		}
		f := dst.ToFrameInto(img.GetFrameRaw(size, size), 0)
		img.PutFrame(f)
	}
}
