package render

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/img"
	"repro/internal/tf"
)

// The tentpole invariant of the multicore engine: the parallel tile
// renderer must be byte-identical to the serial path for every
// supported option combination — Over/MIP, shading on/off, with and
// without empty-space acceleration, with and without a differential
// pixel mask.
func TestParallelGoldenIdentical(t *testing.T) {
	v := testVolume(t)
	cam, err := NewOrbitCamera(v.Dims, 0.6, 0.35, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := accel.Build(v, [3]int{0, 0, 0}, v.Normalize, 8)
	if err != nil {
		t.Fatal(err)
	}
	const W, H = 48, 48
	mask := make([]bool, W*H)
	for i := range mask {
		// A deliberately irregular mask: sparse rows and a dense block.
		mask[i] = i%7 == 0 || (i/W > H/2 && i%3 != 0)
	}
	for _, mode := range []Mode{ModeOver, ModeMIP} {
		for _, shading := range []bool{false, true} {
			for _, useAccel := range []bool{false, true} {
				for _, useMask := range []bool{false, true} {
					name := fmt.Sprintf("mode=%d/shading=%v/accel=%v/mask=%v", mode, shading, useAccel, useMask)
					t.Run(name, func(t *testing.T) {
						opt := DefaultOptions()
						opt.Mode = mode
						opt.Shading = shading
						if useAccel {
							opt.Accel = grid
						}
						if useMask {
							opt.PixelMask = mask
						}
						serial := opt
						serial.Workers = 1
						ref := img.NewRGBA(W, H)
						refSt, err := RenderRegion(WholeVolume(v), v.Bounds(), cam, tf.Jet(), serial, ref)
						if err != nil {
							t.Fatal(err)
						}
						for _, workers := range []int{2, 3, 4, 7} {
							par := opt
							par.Workers = workers
							got := img.NewRGBA(W, H)
							gotSt, err := RenderRegion(WholeVolume(v), v.Bounds(), cam, tf.Jet(), par, got)
							if err != nil {
								t.Fatal(err)
							}
							for i := range ref.Pix {
								if ref.Pix[i] != got.Pix[i] {
									t.Fatalf("workers=%d: pixel float %d differs: %v vs %v", workers, i, got.Pix[i], ref.Pix[i])
								}
							}
							if gotSt != refSt {
								t.Fatalf("workers=%d: stats %+v != serial %+v", workers, gotSt, refSt)
							}
						}
					})
				}
			}
		}
	}
}

func TestWorkersValidation(t *testing.T) {
	v := testVolume(t)
	cam, _ := NewOrbitCamera(v.Dims, 0.4, 0.3, 1.8)
	opt := DefaultOptions()
	opt.Workers = -1
	if _, _, err := Render(v, cam, tf.Jet(), opt, 16, 16); err == nil {
		t.Fatal("want error for negative workers")
	}
	// Workers 0 clamps to GOMAXPROCS and renders normally.
	opt.Workers = 0
	if _, st, err := Render(v, cam, tf.Jet(), opt, 16, 16); err != nil || st.Rays == 0 {
		t.Fatalf("workers=0 render: %v stats %+v", err, st)
	}
	// More workers than scanlines must not deadlock, drop rows, or
	// diverge from the serial result.
	opt.Workers = 1
	ref, refSt, err := Render(v, cam, tf.Jet(), opt, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 64
	im, st, err := Render(v, cam, tf.Jet(), opt, 24, 8)
	if err != nil || st != refSt {
		t.Fatalf("workers>rows render: %v stats %+v want %+v", err, st, refSt)
	}
	for i := range ref.Pix {
		if im.Pix[i] != ref.Pix[i] {
			t.Fatalf("pixel float %d differs with worker surplus", i)
		}
	}
}

// TileDone must report every scanline exactly once — serial and
// parallel — and must not perturb the rendered pixels (the DFB
// compositor ships tiles straight off this callback).
func TestTileDoneCoverageAndIdentity(t *testing.T) {
	v := testVolume(t)
	cam, _ := NewOrbitCamera(v.Dims, 0.5, 0.3, 1.6)
	const W, H = 32, 33
	plain := DefaultOptions()
	plain.Workers = 1
	ref := img.NewRGBA(W, H)
	if _, err := RenderRegion(WholeVolume(v), v.Bounds(), cam, tf.Jet(), plain, ref); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var mu sync.Mutex
			seen := make([]int, H)
			opt := DefaultOptions()
			opt.Workers = workers
			opt.TileDone = func(y0, y1 int) {
				mu.Lock()
				defer mu.Unlock()
				if y0 < 0 || y1 > H || y0 >= y1 {
					t.Errorf("bad band [%d,%d)", y0, y1)
				}
				for y := y0; y < y1; y++ {
					seen[y]++
				}
			}
			got := img.NewRGBA(W, H)
			if _, err := RenderRegion(WholeVolume(v), v.Bounds(), cam, tf.Jet(), opt, got); err != nil {
				t.Fatal(err)
			}
			for y, n := range seen {
				if n != 1 {
					t.Fatalf("row %d reported done %d times", y, n)
				}
			}
			for i := range ref.Pix {
				if got.Pix[i] != ref.Pix[i] {
					t.Fatalf("pixel float %d differs with TileDone hook", i)
				}
			}
		})
	}
}

// The tile observer must see every scanline exactly once and observe
// the configured worker count.
func TestTileObserverCoverage(t *testing.T) {
	v := testVolume(t)
	cam, _ := NewOrbitCamera(v.Dims, 0.5, 0.3, 1.6)
	const H = 33
	var mu sync.Mutex
	seen := make([]int, H)
	var dur time.Duration
	SetTileObserver(func(o TileObservation) {
		mu.Lock()
		defer mu.Unlock()
		for y := o.Y0; y < o.Y1; y++ {
			seen[y]++
		}
		dur += o.Duration
	})
	defer SetTileObserver(nil)
	opt := DefaultOptions()
	opt.Workers = 4
	if _, _, err := Render(v, cam, tf.Jet(), opt, 32, H); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for y, n := range seen {
		if n != 1 {
			t.Fatalf("row %d rendered %d times", y, n)
		}
	}
	if dur <= 0 {
		t.Fatal("observer saw no tile durations")
	}
}
