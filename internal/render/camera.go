// Package render implements the parallel ray-casting volume renderer:
// a pinhole camera, ray–box traversal, transfer-function
// classification with optional gradient shading, and front-to-back
// compositing with early ray termination. Each processor node renders
// its own brick (subvolume) into a full-size partial image; the
// composite package merges partial images into the final frame.
package render

import (
	"fmt"
	"math"

	"repro/internal/vol"
)

// Vec3 is a 3-component double-precision vector in grid coordinates.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s * a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{a.Y*b.Z - a.Z*b.Y, a.Z*b.X - a.X*b.Z, a.X*b.Y - a.Y*b.X}
}

// Norm returns the Euclidean length.
func (a Vec3) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Normalized returns a unit vector in a's direction (zero stays zero).
func (a Vec3) Normalized() Vec3 {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// Camera is a pinhole camera in volume grid coordinates.
type Camera struct {
	Eye    Vec3
	Center Vec3
	Up     Vec3
	// FovY is the vertical field of view in radians.
	FovY float64

	// Basis derived by Finish.
	fwd, right, upv Vec3
	ready           bool
}

// Finish derives the orthonormal view basis. New* constructors call it;
// call it again after mutating Eye/Center/Up (e.g. on a view-change
// user event).
func (c *Camera) Finish() error {
	c.fwd = c.Center.Sub(c.Eye).Normalized()
	if c.fwd.Norm() == 0 {
		return fmt.Errorf("render: eye and center coincide")
	}
	if c.FovY <= 0 || c.FovY >= math.Pi {
		return fmt.Errorf("render: fovY %v out of (0, pi)", c.FovY)
	}
	c.right = c.fwd.Cross(c.Up).Normalized()
	if c.right.Norm() == 0 {
		return fmt.Errorf("render: up parallel to view direction")
	}
	c.upv = c.right.Cross(c.fwd)
	c.ready = true
	return nil
}

// NewOrbitCamera places the eye on a sphere around the volume center:
// azimuth and elevation in radians, distance as a multiple of the
// volume diagonal. This is the camera the viewer's rotate controls
// drive.
func NewOrbitCamera(d vol.Dims, azimuth, elevation, distFactor float64) (*Camera, error) {
	cx := float64(d.NX-1) / 2
	cy := float64(d.NY-1) / 2
	cz := float64(d.NZ-1) / 2
	diag := math.Sqrt(float64(d.NX*d.NX + d.NY*d.NY + d.NZ*d.NZ))
	r := distFactor * diag
	ce, se := math.Cos(elevation), math.Sin(elevation)
	ca, sa := math.Cos(azimuth), math.Sin(azimuth)
	eye := Vec3{
		X: cx + r*ce*ca,
		Y: cy + r*ce*sa,
		Z: cz + r*se,
	}
	c := &Camera{Eye: eye, Center: Vec3{cx, cy, cz}, Up: Vec3{0, 0, 1}, FovY: 45 * math.Pi / 180}
	// Degenerate up at the poles: fall back to +y.
	if err := c.Finish(); err != nil {
		c.Up = Vec3{0, 1, 0}
		if err := c.Finish(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Ray returns origin and unit direction for pixel (px,py) of a w x h
// image, sampling the pixel center.
func (c *Camera) Ray(px, py, w, h int) (orig, dir Vec3) {
	if !c.ready {
		panic("render: camera used before Finish")
	}
	aspect := float64(w) / float64(h)
	tanF := math.Tan(c.FovY / 2)
	// NDC in [-1,1], y flipped so py=0 is the top scanline.
	nx := (2*(float64(px)+0.5)/float64(w) - 1) * tanF * aspect
	ny := (1 - 2*(float64(py)+0.5)/float64(h)) * tanF
	d := c.fwd.Add(c.right.Scale(nx)).Add(c.upv.Scale(ny)).Normalized()
	return c.Eye, d
}

// IntersectBox computes the parametric entry/exit of ray
// orig + t*dir with the axis-aligned box, returning ok=false when the
// ray misses. Only t >= 0 (in front of the eye) counts.
func IntersectBox(orig, dir Vec3, b vol.Box) (tNear, tFar float64, ok bool) {
	tNear, tFar = 0, math.Inf(1)
	bounds := [3][2]float64{
		{float64(b.X0), float64(b.X1)},
		{float64(b.Y0), float64(b.Y1)},
		{float64(b.Z0), float64(b.Z1)},
	}
	o := [3]float64{orig.X, orig.Y, orig.Z}
	dd := [3]float64{dir.X, dir.Y, dir.Z}
	for a := 0; a < 3; a++ {
		if math.Abs(dd[a]) < 1e-12 {
			if o[a] < bounds[a][0] || o[a] > bounds[a][1] {
				return 0, 0, false
			}
			continue
		}
		inv := 1 / dd[a]
		t0 := (bounds[a][0] - o[a]) * inv
		t1 := (bounds[a][1] - o[a]) * inv
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tNear {
			tNear = t0
		}
		if t1 < tFar {
			tFar = t1
		}
		if tNear > tFar {
			return 0, 0, false
		}
	}
	return tNear, tFar, true
}
