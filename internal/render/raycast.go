package render

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/accel"
	"repro/internal/img"
	"repro/internal/tf"
	"repro/internal/vol"
)

// Mode selects the ray compositing rule.
type Mode int

// Compositing modes.
const (
	// ModeOver is classic direct volume rendering: front-to-back
	// alpha compositing of classified samples.
	ModeOver Mode = iota
	// ModeMIP is maximum intensity projection: the ray keeps its
	// largest normalized sample and classifies it once — a common
	// preview mode for scalar fields (no shading, order independent).
	ModeMIP
)

// Options controls the ray caster.
type Options struct {
	// Step is the sampling distance along the ray in grid units.
	Step float64
	// Workers is the number of goroutines ray casting scanline tiles.
	// 0 means runtime.GOMAXPROCS(0); 1 forces the serial path;
	// negative values are rejected by validation. Output is
	// bit-identical for every worker count — tiles partition the
	// image and each pixel is computed by exactly one worker with the
	// same arithmetic as the serial loop. PixelMask differential
	// rendering composes with parallel tiles: masked-off pixels are
	// skipped inside each tile, and the dynamic tile queue keeps
	// workers busy when the mask (or early termination) makes some
	// tiles nearly free.
	Workers int
	// Shading enables gradient (Phong diffuse) shading (ModeOver
	// only).
	Shading bool
	// Light is the direction toward the light source; used when
	// Shading is set. Zero value means headlight (along the view ray).
	Light Vec3
	// TerminationAlpha stops a ray once accumulated opacity exceeds
	// this value (early ray termination). 0 means the default 0.98.
	TerminationAlpha float32
	// Mode selects Over (default) or MIP compositing.
	Mode Mode
	// Accel, when set, skips macrocells the transfer function maps to
	// zero opacity (empty-space leaping; ModeOver only). The grid
	// must cover the rendered region in parent coordinates and use
	// the same normalization. Skipping is conservative: accelerated
	// output is identical.
	Accel *accel.Grid
	// PixelMask, when set (length W*H), restricts rendering to the
	// true pixels; the others are left untouched in dst. Used by
	// differential (temporal-reuse) rendering.
	PixelMask []bool
	// TileDone, when set, is called once per scanline band [y0,y1) as
	// soon as every pixel in it has been written — the completion hook
	// the distributed-framebuffer compositor uses to ship finished
	// tiles while the rest of the frame is still rendering. Bands
	// partition the image and are each reported exactly once, in
	// arbitrary order; with Workers > 1 the calls come concurrently
	// from worker goroutines. Purely observational: output is
	// bit-identical with or without the hook (the serial path renders
	// in bands of the same size the parallel tiler uses, and pixels
	// are independent).
	TileDone func(y0, y1 int)
}

// DefaultOptions are the renderer settings used across the paper
// experiments.
func DefaultOptions() Options {
	return Options{Step: 0.8, Shading: true, TerminationAlpha: 0.98}
}

func (o *Options) normalize() error {
	if o.Step <= 0 {
		return fmt.Errorf("render: step %v must be positive", o.Step)
	}
	if o.TerminationAlpha == 0 {
		o.TerminationAlpha = 0.98
	}
	if o.TerminationAlpha < 0 || o.TerminationAlpha > 1 {
		return fmt.Errorf("render: termination alpha %v out of [0,1]", o.TerminationAlpha)
	}
	if o.Workers < 0 {
		return fmt.Errorf("render: workers %d must not be negative (0 selects GOMAXPROCS)", o.Workers)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// Stats reports the work a render call performed; the discrete-event
// simulator uses these counts with calibrated per-unit costs.
type Stats struct {
	Rays    int // rays intersecting the brick
	Samples int // volume samples taken
	Pixels  int // pixels with nonzero contribution
	Skipped int // samples avoided by empty-space leaping
}

// Sampler is the volume access a ray caster needs; both *vol.Brick
// and a whole-volume adapter satisfy it. Coordinates are in parent
// (full-volume) grid space.
type Sampler interface {
	Sample(x, y, z float64) float32
	Gradient(x, y, z float64) (gx, gy, gz float32)
	Normalize(v float32) float32
}

// volumeSampler adapts a full volume to the Sampler interface.
type volumeSampler struct{ v *vol.Volume }

func (s volumeSampler) Sample(x, y, z float64) float32 { return s.v.Sample(x, y, z) }
func (s volumeSampler) Gradient(x, y, z float64) (float32, float32, float32) {
	return s.v.Gradient(x, y, z)
}
func (s volumeSampler) Normalize(v float32) float32 { return s.v.Normalize(v) }

// WholeVolume wraps a volume as a Sampler for single-node rendering.
func WholeVolume(v *vol.Volume) Sampler { return volumeSampler{v} }

// RenderRegion ray-casts the part of the volume inside region into
// dst, a full-size premultiplied RGBA image. Pixels whose rays miss
// the region are left untouched (transparent), which is what the
// compositor expects of a partial image. dst must be cleared by the
// caller if reused.
func RenderRegion(s Sampler, region vol.Box, cam *Camera, t *tf.TF, opt Options, dst *img.RGBA) (Stats, error) {
	if err := opt.normalize(); err != nil {
		return Stats{}, err
	}
	if region.Empty() {
		return Stats{}, fmt.Errorf("render: empty region")
	}
	if !cam.ready {
		if err := cam.Finish(); err != nil {
			return Stats{}, err
		}
	}
	if opt.PixelMask != nil && len(opt.PixelMask) != dst.W*dst.H {
		return Stats{}, fmt.Errorf("render: pixel mask of %d entries for %dx%d image", len(opt.PixelMask), dst.W, dst.H)
	}
	// Resolve the accelerator's per-cell transparency once for this
	// (grid, transfer function) pair; the per-sample check is then a
	// single indexed load.
	var emptyCell []bool
	if opt.Accel != nil {
		emptyCell = opt.Accel.EmptyMask(t.MaxAlpha)
	}
	rr := &rowRenderer{
		s:         s,
		region:    region,
		cam:       cam,
		opt:       &opt,
		lut:       t.LUT(),
		emptyCell: emptyCell,
		light:     opt.Light.Normalized(),
		headlight: opt.Light == (Vec3{}),
		dst:       dst,
	}
	if opt.Workers > 1 && dst.H > 1 {
		return renderTiled(rr, opt.Workers), nil
	}
	if opt.TileDone != nil {
		// Serial path with a completion hook: render in the same
		// scanline bands the parallel tiler uses so tiles stream out as
		// they finish. Pixels are independent, so chunking the row loop
		// leaves the output bit-identical to one full renderRows pass.
		var st Stats
		for y0 := 0; y0 < dst.H; y0 += tileRows {
			y1 := min(y0+tileRows, dst.H)
			ts := rr.renderRows(y0, y1)
			st.Rays += ts.Rays
			st.Samples += ts.Samples
			st.Pixels += ts.Pixels
			st.Skipped += ts.Skipped
			opt.TileDone(y0, y1)
		}
		return st, nil
	}
	return rr.renderRows(0, dst.H), nil
}

// rowRenderer carries the per-call invariants of one RenderRegion
// invocation so a span of scanlines can be rendered independently —
// the unit of work of both the serial path and the parallel tile
// queue. All fields are read-only during rendering; dst is shared but
// each pixel is written by exactly one renderRows call.
type rowRenderer struct {
	s         Sampler
	region    vol.Box
	cam       *Camera
	opt       *Options
	// lut is the transfer function's baked classification table,
	// indexed directly so the inner sampling loop is a flat load
	// instead of a method call (see tf.LUT — identical arithmetic to
	// tf.Classify, so results are bit-identical).
	lut       []float32
	emptyCell []bool
	light     Vec3
	headlight bool
	dst       *img.RGBA
}

// lutScale converts a clamped normalized value to a LUT index.
const lutScale = float32(tf.LUTSize - 1)

// classify replicates tf.Classify against the captured table.
func (rr *rowRenderer) classify(v float32) (r, g, b, a float32) {
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	i := int(v*lutScale+0.5) * 4
	return rr.lut[i], rr.lut[i+1], rr.lut[i+2], rr.lut[i+3]
}

// renderRows ray-casts scanlines [y0,y1) of the target image. It is
// the whole hot path: the serial renderer calls it once with the full
// range, the parallel renderer once per tile.
func (rr *rowRenderer) renderRows(y0, y1 int) Stats {
	var st Stats
	s, opt, dst, cam := rr.s, rr.opt, rr.dst, rr.cam
	w, h := dst.W, dst.H
	termA := opt.TerminationAlpha
	emptyCell := rr.emptyCell
	for py := y0; py < y1; py++ {
		for px := 0; px < w; px++ {
			if opt.PixelMask != nil && !opt.PixelMask[py*w+px] {
				continue
			}
			orig, dir := cam.Ray(px, py, w, h)
			tn, tfar, ok := IntersectBox(orig, dir, rr.region)
			if !ok || tfar <= tn {
				continue
			}
			st.Rays++
			if opt.Mode == ModeMIP {
				rr.mipRay(orig, dir, tn, tfar, &st, py*w+px)
				continue
			}
			var r, g, b, a float32
			ld := rr.light
			if rr.headlight {
				ld = dir.Scale(-1)
			}
			// Jitter-free fixed stepping keeps partial images from
			// different bricks consistent along the same ray: sample
			// positions are aligned to global multiples of Step so a
			// ray crossing a brick boundary continues the same
			// sample sequence.
			// Samples at exactly tfar belong to the next brick along
			// the ray (strict <), so bricks sharing a face never
			// double-count a sample.
			k0 := math.Ceil(tn / opt.Step)
			for k := k0; ; k++ {
				tcur := k * opt.Step
				if tcur >= tfar {
					break
				}
				p := orig.Add(dir.Scale(tcur))
				if emptyCell != nil {
					if ci, ok := opt.Accel.CellAt(p.X, p.Y, p.Z); ok && emptyCell[ci] {
						// Transparent macrocell: leap to its exit.
						exit := opt.Accel.CellExit(orig.X, orig.Y, orig.Z, dir.X, dir.Y, dir.Z, tcur)
						next := k + 1
						if k2 := math.Ceil(exit/opt.Step + 1e-9); k2 > next {
							next = k2
						}
						st.Skipped += int(next - k)
						k = next - 1 // loop increment lands on the first sample past the cell
						continue
					}
				}
				raw := s.Sample(p.X, p.Y, p.Z)
				st.Samples++
				cr, cg, cb, ca := rr.classify(s.Normalize(raw))
				if ca <= 0 {
					continue
				}
				if opt.Shading {
					gx, gy, gz := s.Gradient(p.X, p.Y, p.Z)
					gn := math.Sqrt(float64(gx*gx + gy*gy + gz*gz))
					shade := float32(0.35)
					if gn > 1e-6 {
						n := Vec3{float64(gx), float64(gy), float64(gz)}.Scale(1 / gn)
						diff := n.Dot(ld)
						if diff < 0 {
							diff = -diff // two-sided lighting for volumes
						}
						shade += 0.65 * float32(diff)
					} else {
						shade = 1 // homogeneous region: unshaded
					}
					cr *= shade
					cg *= shade
					cb *= shade
				}
				// Front-to-back compositing of a premultiplied sample.
				tr := (1 - a) * ca
				r += tr * cr
				g += tr * cg
				b += tr * cb
				a += tr
				if a >= termA {
					break
				}
			}
			if a > 0 {
				i := (py*w + px) * 4
				dst.Pix[i] += r
				dst.Pix[i+1] += g
				dst.Pix[i+2] += b
				dst.Pix[i+3] += a
				st.Pixels++
			}
		}
	}
	return st
}

// mipRay marches one maximum-intensity-projection ray and writes the
// classified maximum into pixel index pix of dst.
func (rr *rowRenderer) mipRay(orig, dir Vec3, tn, tfar float64, st *Stats, pix int) {
	s, step, dst := rr.s, rr.opt.Step, rr.dst
	maxV := float32(-1)
	k0 := math.Ceil(tn / step)
	for k := k0; ; k++ {
		tcur := k * step
		if tcur >= tfar {
			break
		}
		p := orig.Add(dir.Scale(tcur))
		v := s.Normalize(s.Sample(p.X, p.Y, p.Z))
		st.Samples++
		if v > maxV {
			maxV = v
		}
	}
	if maxV < 0 {
		return
	}
	cr, cg, cb, ca := rr.classify(maxV)
	if ca <= 0 {
		return
	}
	i := pix * 4
	// MIP across bricks: keep the brighter contribution. Premultiplied
	// channels scale with alpha, so compare by alpha.
	if ca*1 > dst.Pix[i+3] {
		dst.Pix[i] = cr * ca
		dst.Pix[i+1] = cg * ca
		dst.Pix[i+2] = cb * ca
		dst.Pix[i+3] = ca
		st.Pixels++
	}
}

// Render ray-casts a whole volume into a new w x h image — the
// single-processor renderer the paper benchmarks at 10–20 s per 256²
// frame on one 1999-era CPU.
func Render(v *vol.Volume, cam *Camera, t *tf.TF, opt Options, w, h int) (*img.RGBA, Stats, error) {
	dst := img.NewRGBA(w, h)
	st, err := RenderRegion(WholeVolume(v), v.Bounds(), cam, t, opt, dst)
	return dst, st, err
}

// RenderBrick ray-casts one brick's owned region into a full-size
// partial image; this is what each compute node of a group runs.
func RenderBrick(b *vol.Brick, cam *Camera, t *tf.TF, opt Options, w, h int) (*img.RGBA, Stats, error) {
	dst := img.NewRGBA(w, h)
	st, err := RenderRegion(b, b.Region, cam, t, opt, dst)
	return dst, st, err
}
