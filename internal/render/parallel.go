package render

import (
	"sync"
	"sync/atomic"
	"time"
)

// tileRows is the scanline count of one parallel work unit. Small
// tiles keep the dynamic queue effective: a worker whose tile is all
// empty space or terminates early immediately steals the next tile
// instead of idling while a neighbor grinds through a dense one.
const tileRows = 4

// TileObservation reports one completed scanline tile of a parallel
// render to the package observer (see SetTileObserver). The
// observability layer bridges these into per-tile span histograms
// without this package importing it.
type TileObservation struct {
	// Y0, Y1 bound the tile's scanlines.
	Y0, Y1 int
	// Worker identifies which of Workers goroutines ran the tile.
	Worker, Workers int
	// Stats is the work the tile performed.
	Stats Stats
	// Duration is the tile's wall-clock render time.
	Duration time.Duration
}

var (
	tileObsMu sync.RWMutex
	tileObs   func(TileObservation)
)

// SetTileObserver installs the per-tile observer (nil disables). When
// no observer is installed the parallel path skips the clock reads.
func SetTileObserver(f func(TileObservation)) {
	tileObsMu.Lock()
	tileObs = f
	tileObsMu.Unlock()
}

func loadTileObserver() func(TileObservation) {
	tileObsMu.RLock()
	f := tileObs
	tileObsMu.RUnlock()
	return f
}

// renderTiled runs the row renderer over the image with a pool of
// workers pulling scanline tiles from a shared atomic cursor —
// dynamic scheduling, so a tile that early-terminates or is masked
// off never idles a core. Each pixel is written by exactly one worker
// with the same arithmetic as the serial loop, so output is
// bit-identical to renderRows(0, h); per-tile Stats are summed, which
// is order-independent.
func renderTiled(rr *rowRenderer, workers int) Stats {
	h := rr.dst.H
	rows := tileRows
	tiles := (h + rows - 1) / rows
	if tiles < workers {
		rows = 1
		tiles = h
	}
	if workers > tiles {
		workers = tiles
	}
	obs := loadTileObserver()
	var cursor atomic.Int64
	results := make([]Stats, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			var st Stats
			for {
				ti := int(cursor.Add(1)) - 1
				if ti >= tiles {
					break
				}
				y0 := ti * rows
				y1 := y0 + rows
				if y1 > h {
					y1 = h
				}
				var t0 time.Time
				if obs != nil {
					t0 = time.Now()
				}
				ts := rr.renderRows(y0, y1)
				if done := rr.opt.TileDone; done != nil {
					done(y0, y1)
				}
				if obs != nil {
					obs(TileObservation{
						Y0: y0, Y1: y1,
						Worker: wk, Workers: workers,
						Stats:    ts,
						Duration: time.Since(t0),
					})
				}
				st.Rays += ts.Rays
				st.Samples += ts.Samples
				st.Pixels += ts.Pixels
				st.Skipped += ts.Skipped
			}
			results[wk] = st
		}(wk)
	}
	wg.Wait()
	var st Stats
	for _, r := range results {
		st.Rays += r.Rays
		st.Samples += r.Samples
		st.Pixels += r.Pixels
		st.Skipped += r.Skipped
	}
	return st
}
