package render

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/tf"
	"repro/internal/vol"
)

func TestSplatOptionsValidation(t *testing.T) {
	v := vol.MustNew(vol.Dims{NX: 8, NY: 8, NZ: 8})
	cam, _ := NewOrbitCamera(v.Dims, 0.3, 0.2, 2)
	if _, _, err := Splat(v, cam, tf.Jet(), SplatOptions{KernelRadius: 100}, 16, 16); err == nil {
		t.Fatal("huge kernel accepted")
	}
	if _, _, err := Splat(v, cam, tf.Jet(), SplatOptions{}, 16, 16); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

func TestSplatProducesSimilarImage(t *testing.T) {
	g := datagen.NewJetScaled(0.25, 3)
	v, err := g.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	cam, err := NewOrbitCamera(v.Dims, 0.6, 0.35, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	const W, H = 64, 64
	ropt := DefaultOptions()
	ropt.Shading = false
	ray, _, err := Render(v, cam, tf.Jet(), ropt, W, H)
	if err != nil {
		t.Fatal(err)
	}
	spl, st, err := Splat(v, cam, tf.Jet(), SplatOptions{}, W, H)
	if err != nil {
		t.Fatal(err)
	}
	if st.Splatted == 0 || st.Voxels == 0 {
		t.Fatalf("no work: %+v", st)
	}
	// Sparse data: most voxels skipped.
	if st.Splatted*2 > st.Voxels {
		t.Fatalf("splatted %d of %d voxels — transparency culling broken", st.Splatted, st.Voxels)
	}
	// The two renderers must roughly agree on where the structure is:
	// compare coverage masks (alpha > 0.05).
	both, onlyOne := 0, 0
	for i := 3; i < len(ray.Pix); i += 4 {
		a := ray.Pix[i] > 0.05
		b := spl.Pix[i] > 0.05
		if a && b {
			both++
		} else if a != b {
			onlyOne++
		}
	}
	if both == 0 {
		t.Fatal("no overlapping coverage between ray casting and splatting")
	}
	if onlyOne > 3*both {
		t.Fatalf("coverage disagreement: %d both vs %d exclusive", both, onlyOne)
	}
}

func TestSplatEmptyVolume(t *testing.T) {
	v := vol.MustNew(vol.Dims{NX: 16, NY: 16, NZ: 16})
	v.Fill(func(x, y, z int) float32 { return 0 })
	cam, _ := NewOrbitCamera(v.Dims, 0.3, 0.2, 2)
	im, st, err := Splat(v, cam, tf.Jet(), SplatOptions{}, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if st.Splatted != 0 {
		t.Fatalf("splatted %d voxels of an empty volume", st.Splatted)
	}
	for _, p := range im.Pix {
		if p != 0 {
			t.Fatal("nonzero pixel from empty volume")
		}
	}
}

func TestSliceOrderBackToFront(t *testing.T) {
	d := vol.Dims{NX: 10, NY: 10, NZ: 10}
	cam := &Camera{Eye: Vec3{4.5, 4.5, -50}, Center: Vec3{4.5, 4.5, 4.5}, Up: Vec3{0, 1, 0}, FovY: 0.8}
	if err := cam.Finish(); err != nil {
		t.Fatal(err)
	}
	axis, slices := sliceOrder(d, cam)
	if axis != 2 {
		t.Fatalf("axis = %d, want z", axis)
	}
	// Eye at z=-50: back-to-front means z=9 first, z=0 last.
	if slices[0] != 9 || slices[len(slices)-1] != 0 {
		t.Fatalf("order %v", slices)
	}
}

func TestVoxelAtRoundTrip(t *testing.T) {
	for axis := 0; axis < 3; axis++ {
		x, y, z := voxelAt(axis, 5, 2, 3)
		got := [3]int{x, y, z}
		if got[axis] != 5 {
			t.Fatalf("axis %d: slice not mapped: %v", axis, got)
		}
	}
}

func BenchmarkSplat(b *testing.B) {
	g := datagen.NewJetScaled(0.25, 2)
	v, err := g.Step(1)
	if err != nil {
		b.Fatal(err)
	}
	cam, _ := NewOrbitCamera(v.Dims, 0.6, 0.35, 1.4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Splat(v, cam, tf.Jet(), SplatOptions{}, 128, 128); err != nil {
			b.Fatal(err)
		}
	}
}
