package render

import (
	"math"
	"testing"

	"repro/internal/accel"
	"repro/internal/datagen"
	"repro/internal/img"
	"repro/internal/tf"
	"repro/internal/vol"
)

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}); got != (Vec3{0, 0, 1}) {
		t.Fatalf("Cross = %v", got)
	}
	if n := (Vec3{3, 4, 0}).Norm(); n != 5 {
		t.Fatalf("Norm = %v", n)
	}
	u := (Vec3{0, 0, 7}).Normalized()
	if u != (Vec3{0, 0, 1}) {
		t.Fatalf("Normalized = %v", u)
	}
	if z := (Vec3{}).Normalized(); z != (Vec3{}) {
		t.Fatalf("zero Normalized = %v", z)
	}
}

func TestCameraFinishErrors(t *testing.T) {
	c := &Camera{Eye: Vec3{1, 1, 1}, Center: Vec3{1, 1, 1}, Up: Vec3{0, 0, 1}, FovY: 1}
	if err := c.Finish(); err == nil {
		t.Fatal("want eye==center error")
	}
	c = &Camera{Eye: Vec3{0, 0, 0}, Center: Vec3{1, 0, 0}, Up: Vec3{1, 0, 0}, FovY: 1}
	if err := c.Finish(); err == nil {
		t.Fatal("want up-parallel error")
	}
	c = &Camera{Eye: Vec3{0, 0, 0}, Center: Vec3{1, 0, 0}, Up: Vec3{0, 0, 1}, FovY: 0}
	if err := c.Finish(); err == nil {
		t.Fatal("want fov error")
	}
}

func TestOrbitCameraLooksAtCenter(t *testing.T) {
	d := vol.Dims{NX: 64, NY: 64, NZ: 64}
	for _, az := range []float64{0, 1, 2.5} {
		for _, el := range []float64{-1.2, 0, 0.9, math.Pi / 2} {
			c, err := NewOrbitCamera(d, az, el, 2)
			if err != nil {
				t.Fatalf("az=%v el=%v: %v", az, el, err)
			}
			// The central ray must point from eye toward the volume center.
			orig, dir := c.Ray(127, 127, 256, 256)
			toCenter := c.Center.Sub(orig).Normalized()
			if dir.Dot(toCenter) < 0.99 {
				t.Fatalf("az=%v el=%v: central ray off target (dot=%v)", az, el, dir.Dot(toCenter))
			}
		}
	}
}

func TestRayDirectionsUnit(t *testing.T) {
	c, err := NewOrbitCamera(vol.Dims{NX: 32, NY: 32, NZ: 32}, 0.3, 0.4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]int{{0, 0}, {255, 0}, {0, 255}, {255, 255}, {128, 128}} {
		_, dir := c.Ray(p[0], p[1], 256, 256)
		if math.Abs(dir.Norm()-1) > 1e-12 {
			t.Fatalf("ray at %v not unit: %v", p, dir.Norm())
		}
	}
}

func TestIntersectBox(t *testing.T) {
	b := vol.Box{X0: 0, Y0: 0, Z0: 0, X1: 10, Y1: 10, Z1: 10}
	// Straight through the middle along +x.
	tn, tfar, ok := IntersectBox(Vec3{-5, 5, 5}, Vec3{1, 0, 0}, b)
	if !ok || math.Abs(tn-5) > 1e-12 || math.Abs(tfar-15) > 1e-12 {
		t.Fatalf("got %v %v %v", tn, tfar, ok)
	}
	// Miss.
	if _, _, ok := IntersectBox(Vec3{-5, 20, 5}, Vec3{1, 0, 0}, b); ok {
		t.Fatal("want miss")
	}
	// Ray starting inside: tNear clamps to 0.
	tn, tfar, ok = IntersectBox(Vec3{5, 5, 5}, Vec3{0, 0, 1}, b)
	if !ok || tn != 0 || math.Abs(tfar-5) > 1e-12 {
		t.Fatalf("inside: %v %v %v", tn, tfar, ok)
	}
	// Box behind the eye.
	if _, _, ok := IntersectBox(Vec3{20, 5, 5}, Vec3{1, 0, 0}, b); ok {
		t.Fatal("want miss for box behind eye")
	}
	// Parallel ray outside a slab.
	if _, _, ok := IntersectBox(Vec3{-5, -3, 5}, Vec3{1, 0, 0}, b); ok {
		t.Fatal("want miss for parallel outside")
	}
}

func testVolume(t *testing.T) *vol.Volume {
	t.Helper()
	g := datagen.NewJetScaled(0.25, 3)
	v, err := g.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRenderProducesNonEmptyImage(t *testing.T) {
	v := testVolume(t)
	cam, err := NewOrbitCamera(v.Dims, 0.5, 0.3, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	im, st, err := Render(v, cam, tf.Jet(), DefaultOptions(), 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rays == 0 || st.Samples == 0 || st.Pixels == 0 {
		t.Fatalf("no work done: %+v", st)
	}
	var sum float32
	for _, p := range im.Pix {
		sum += p
	}
	if sum == 0 {
		t.Fatal("image all zero")
	}
}

func TestRenderOptionValidation(t *testing.T) {
	v := testVolume(t)
	cam, _ := NewOrbitCamera(v.Dims, 0, 0, 2)
	if _, _, err := Render(v, cam, tf.Jet(), Options{Step: 0}, 16, 16); err == nil {
		t.Fatal("want step error")
	}
	if _, _, err := Render(v, cam, tf.Jet(), Options{Step: 1, TerminationAlpha: 2}, 16, 16); err == nil {
		t.Fatal("want termination alpha error")
	}
	_, st, err := RenderBrick(mustBrick(t, v, v.Bounds()), cam, tf.Jet(), DefaultOptions(), 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rays == 0 {
		t.Fatal("brick render did no work")
	}
}

func mustBrick(t *testing.T, v *vol.Volume, b vol.Box) *vol.Brick {
	t.Helper()
	br, err := v.Extract(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	return br
}

// The fundamental parallel-rendering invariant: rendering bricks
// separately and compositing the partial images in front-to-back
// order must reproduce the single-volume rendering.
func TestBrickCompositionMatchesWholeRender(t *testing.T) {
	v := testVolume(t)
	cam, err := NewOrbitCamera(v.Dims, 0.7, 0.35, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.TerminationAlpha = 1 // disable early termination for exact comparison
	const W, H = 48, 48

	want, _, err := Render(v, cam, tf.Jet(), opt, W, H)
	if err != nil {
		t.Fatal(err)
	}

	boxes, err := vol.SplitKD(v.Dims, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Render each brick into a partial image.
	partials := make([]*img.RGBA, len(boxes))
	for i, b := range boxes {
		br := mustBrick(t, v, b)
		im, _, err := RenderBrick(br, cam, tf.Jet(), opt, W, H)
		if err != nil {
			t.Fatal(err)
		}
		partials[i] = im
	}
	// Composite in per-ray depth order: order boxes by distance from
	// the eye to box center (valid for this convex decomposition and
	// outside eye).
	order := make([]int, len(boxes))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if distToBox(cam.Eye, boxes[order[j]]) < distToBox(cam.Eye, boxes[order[i]]) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	got := img.NewRGBA(W, H)
	for _, idx := range order {
		if err := got.Over(partials[idx]); err != nil {
			t.Fatal(err)
		}
	}
	var maxDiff float64
	for i := range got.Pix {
		d := math.Abs(float64(got.Pix[i] - want.Pix[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 5e-3 {
		t.Fatalf("max channel difference %v between composited bricks and whole render", maxDiff)
	}
}

func distToBox(eye Vec3, b vol.Box) float64 {
	cx, cy, cz := b.Center()
	return eye.Sub(Vec3{cx, cy, cz}).Norm()
}

// Early ray termination must not change the image appreciably but must
// reduce the sample count on opaque data.
func TestEarlyTermination(t *testing.T) {
	v := vol.MustNew(vol.Dims{NX: 32, NY: 32, NZ: 32})
	v.Fill(func(x, y, z int) float32 { return 1 }) // fully opaque volume
	// Opaque transfer function.
	opaque := tf.MustNew([]tf.Point{
		{V: 0, R: 1, G: 1, B: 1, A: 0.9},
		{V: 1, R: 1, G: 1, B: 1, A: 0.9},
	})
	cam, _ := NewOrbitCamera(v.Dims, 0.4, 0.2, 2)
	optFull := DefaultOptions()
	optFull.Shading = false
	optFull.TerminationAlpha = 1
	_, stFull, err := Render(v, cam, opaque, optFull, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	optET := optFull
	optET.TerminationAlpha = 0.98
	imET, stET, err := Render(v, cam, opaque, optET, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if stET.Samples*2 > stFull.Samples {
		t.Fatalf("early termination saved too little: %d vs %d samples", stET.Samples, stFull.Samples)
	}
	// Image still essentially opaque white where the volume projects.
	_, _, _, a := imET.At(16, 16)
	if a < 0.97 {
		t.Fatalf("central pixel alpha %v", a)
	}
}

func TestEmptyRegionError(t *testing.T) {
	v := testVolume(t)
	cam, _ := NewOrbitCamera(v.Dims, 0, 0, 2)
	dst := img.NewRGBA(8, 8)
	if _, err := RenderRegion(WholeVolume(v), vol.Box{}, cam, tf.Jet(), DefaultOptions(), dst); err == nil {
		t.Fatal("want empty region error")
	}
}

func TestShadingChangesImage(t *testing.T) {
	v := testVolume(t)
	cam, _ := NewOrbitCamera(v.Dims, 0.5, 0.3, 1.8)
	o1 := DefaultOptions()
	o1.Shading = false
	a, _, err := Render(v, cam, tf.Jet(), o1, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	o2 := o1
	o2.Shading = true
	b, _, err := Render(v, cam, tf.Jet(), o2, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shading had no effect")
	}
}

// Rendering a transparent (all-zero opacity) volume must produce an
// empty image but still cast rays.
func TestTransparentVolume(t *testing.T) {
	v := vol.MustNew(vol.Dims{NX: 16, NY: 16, NZ: 16})
	v.Fill(func(x, y, z int) float32 { return 0.5 })
	clear := tf.MustNew([]tf.Point{{V: 0, A: 0}, {V: 1, A: 0}})
	cam, _ := NewOrbitCamera(v.Dims, 0.2, 0.2, 2)
	im, st, err := Render(v, cam, clear, DefaultOptions(), 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rays == 0 {
		t.Fatal("no rays cast")
	}
	if st.Pixels != 0 {
		t.Fatal("transparent volume produced pixels")
	}
	for _, p := range im.Pix {
		if p != 0 {
			t.Fatal("nonzero pixel in transparent render")
		}
	}
}

func BenchmarkRender64(b *testing.B) {
	g := datagen.NewJetScaled(0.25, 2)
	v, err := g.Step(1)
	if err != nil {
		b.Fatal(err)
	}
	cam, _ := NewOrbitCamera(v.Dims, 0.5, 0.3, 1.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Render(v, cam, tf.Jet(), DefaultOptions(), 64, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMIPMode(t *testing.T) {
	// A volume with a single bright voxel in a dim field: MIP must
	// classify the maximum regardless of view direction.
	// Bright 2x2x2 block straddling the volume center (7.5,7.5,7.5)
	// so the central ray samples the full maximum.
	v := vol.MustNew(vol.Dims{NX: 16, NY: 16, NZ: 16})
	v.Fill(func(x, y, z int) float32 {
		if x >= 7 && x <= 8 && y >= 7 && y <= 8 && z >= 7 && z <= 8 {
			return 1
		}
		return 0.2
	})
	opt := DefaultOptions()
	opt.Mode = ModeMIP
	gray := tf.Grayscale()
	var vals []float32
	for _, az := range []float64{0.3, 2.1, 4.0} {
		cam, err := NewOrbitCamera(v.Dims, az, 0.2, 2)
		if err != nil {
			t.Fatal(err)
		}
		im, st, err := Render(v, cam, gray, opt, 33, 33)
		if err != nil {
			t.Fatal(err)
		}
		if st.Samples == 0 {
			t.Fatal("no samples")
		}
		_, _, _, a := im.At(16, 16) // central ray passes the bright voxel
		vals = append(vals, a)
	}
	for i, a := range vals {
		if a < 0.9 {
			t.Fatalf("view %d: central MIP alpha %v, want ~1 (max voxel)", i, a)
		}
	}
	// An off-structure pixel sees only the dim background level.
	cam, _ := NewOrbitCamera(v.Dims, 0.3, 0.2, 2)
	im, _, err := Render(v, cam, gray, opt, 33, 33)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, corner := im.At(3, 16)
	if corner > 0.5 && corner != 0 {
		t.Fatalf("background MIP alpha %v, want ~0.2 or 0", corner)
	}
}

func TestMIPDiffersFromOver(t *testing.T) {
	g := datagen.NewJetScaled(0.2, 2)
	v, err := g.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	cam, _ := NewOrbitCamera(v.Dims, 0.6, 0.35, 1.5)
	over, _, err := Render(v, cam, tf.Jet(), DefaultOptions(), 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	mopt := DefaultOptions()
	mopt.Mode = ModeMIP
	mip, _, err := Render(v, cam, tf.Jet(), mopt, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range over.Pix {
		if over.Pix[i] != mip.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("MIP identical to Over")
	}
}

// Empty-space leaping is conservative: accelerated rendering must be
// bit-identical and must skip a meaningful share of samples on sparse
// data.
func TestAccelIdenticalAndFaster(t *testing.T) {
	v := testVolume(t)
	cam, err := NewOrbitCamera(v.Dims, 0.6, 0.35, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := accel.Build(v, [3]int{0, 0, 0}, v.Normalize, 8)
	if err != nil {
		t.Fatal(err)
	}
	plain := DefaultOptions()
	fast := plain
	fast.Accel = grid
	ref, refStats, err := Render(v, cam, tf.Jet(), plain, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats, err := Render(v, cam, tf.Jet(), fast, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Pix {
		if ref.Pix[i] != got.Pix[i] {
			t.Fatalf("accelerated image differs at %d: %v vs %v", i, got.Pix[i], ref.Pix[i])
		}
	}
	if gotStats.Skipped == 0 {
		t.Fatal("nothing skipped on a sparse volume")
	}
	if gotStats.Samples >= refStats.Samples {
		t.Fatalf("accel did not reduce samples: %d vs %d", gotStats.Samples, refStats.Samples)
	}
	// On the sparse jet the majority of background samples vanish.
	if gotStats.Samples*2 > refStats.Samples {
		t.Logf("note: accel saved only %d of %d samples", refStats.Samples-gotStats.Samples, refStats.Samples)
	}
}

// Bricks with accel grids must still compose to the whole-volume image.
func TestAccelWithBricks(t *testing.T) {
	v := testVolume(t)
	cam, err := NewOrbitCamera(v.Dims, 0.7, 0.3, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.TerminationAlpha = 1
	const W, H = 40, 40
	want, _, err := Render(v, cam, tf.Jet(), opt, W, H)
	if err != nil {
		t.Fatal(err)
	}
	boxes, err := vol.SplitKD(v.Dims, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := img.NewRGBA(W, H)
	// Composite by center distance (valid for this view).
	type part struct {
		im *img.RGBA
		d  float64
	}
	var parts []part
	for _, b := range boxes {
		br := mustBrick(t, v, b)
		grid, err := accel.Build(br.Data, br.Origin, br.Normalize, 8)
		if err != nil {
			t.Fatal(err)
		}
		o := opt
		o.Accel = grid
		im := img.NewRGBA(W, H)
		if _, err := RenderRegion(br, br.Region, cam, tf.Jet(), o, im); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, part{im, distToBox(cam.Eye, b)})
	}
	for i := 0; i < len(parts); i++ {
		for j := i + 1; j < len(parts); j++ {
			if parts[j].d < parts[i].d {
				parts[i], parts[j] = parts[j], parts[i]
			}
		}
	}
	for _, p := range parts {
		if err := got.Over(p.im); err != nil {
			t.Fatal(err)
		}
	}
	var maxDiff float64
	for i := range want.Pix {
		d := math.Abs(float64(want.Pix[i] - got.Pix[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 5e-3 {
		t.Fatalf("accelerated brick composition differs by %v", maxDiff)
	}
}

func BenchmarkRenderAccel(b *testing.B) {
	g := datagen.NewJetScaled(0.25, 2)
	v, err := g.Step(1)
	if err != nil {
		b.Fatal(err)
	}
	cam, _ := NewOrbitCamera(v.Dims, 0.5, 0.3, 1.5)
	grid, err := accel.Build(v, [3]int{0, 0, 0}, v.Normalize, 8)
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Accel = grid
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Render(v, cam, tf.Jet(), opt, 64, 64); err != nil {
			b.Fatal(err)
		}
	}
}
