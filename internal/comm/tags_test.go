package comm

import (
	"testing"

	"repro/internal/testutil"
)

func TestTagClassesDisjoint(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewTagSpace()
	a := s.Register("a", 3)
	b := s.Register("b", 1)
	c := s.Register("c", 2)

	// Every (class, step<4, seq) combination must map to a unique tag.
	seen := map[int]string{}
	for step := 0; step < 4; step++ {
		for _, tc := range []TagClass{a, b, c} {
			for seq := 0; seq < tc.Capacity(); seq++ {
				tag := tc.Tag(step, seq)
				if prev, dup := seen[tag]; dup {
					t.Fatalf("tag %d of %s/%d/%d collides with %s", tag, tc.Name(), step, seq, prev)
				}
				seen[tag] = tc.Name()
			}
		}
	}
	if got, want := len(seen), 4*(3+1+2); got != want {
		t.Fatalf("expected %d distinct tags, got %d", want, got)
	}
	if s.Stride() != 6 {
		t.Fatalf("stride %d, want 6", s.Stride())
	}
}

func TestTagRegistryFreezesOnFirstUse(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewTagSpace()
	a := s.Register("a", 2)
	_ = a.Tag(0, 0) // freezes the space
	mustPanic(t, "late registration", func() { s.Register("late", 1) })
}

func TestTagRegistryRejectsMisuse(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewTagSpace()
	a := s.Register("a", 2)
	mustPanic(t, "duplicate name", func() { s.Register("a", 1) })
	mustPanic(t, "zero capacity", func() { s.Register("b", 0) })
	mustPanic(t, "seq over capacity", func() { a.Tag(0, 2) })
	mustPanic(t, "negative seq", func() { a.Tag(0, -1) })
	mustPanic(t, "negative step", func() { a.Tag(-1, 0) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}
