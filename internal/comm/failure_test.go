package comm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/testutil"
)

// recvGuarded receives and converts a comm failure panic to an error,
// the way degradation-aware callers do.
func recvGuarded(c *Comm, src, tag int) (payload any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if fe := AsFailure(rec); fe != nil {
				err = fe
				return
			}
			panic(rec)
		}
	}()
	payload, _ = c.Recv(src, tag)
	return payload, nil
}

func TestRecvTimeoutSurfacesAsError(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := RunWith(2, RunConfig{RecvTimeout: 50 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 7) // rank 1 never sends
		}
		return nil
	})
	if !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("err = %v, want ErrRecvTimeout", err)
	}
}

func TestMarkFailedWakesBlockedReceiver(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 7)
			return nil
		}
		time.Sleep(20 * time.Millisecond) // let rank 0 block first
		c.FailSelf()
		return nil
	})
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("err = %v, want ErrRankFailed", err)
	}
}

func TestQueuedMessagesDeliverBeforeFailure(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			c.Send(0, 7, "last words", 0)
			c.FailSelf()
			return nil
		}
		// The message sent before the peer died must still deliver.
		got, err := recvGuarded(c, 1, 7)
		if err != nil {
			return err
		}
		if got != "last words" {
			t.Errorf("payload = %v", got)
		}
		// The next receive must fail fast, not hang.
		if _, err := recvGuarded(c, 1, 7); !errors.Is(err, ErrRankFailed) {
			t.Errorf("second recv err = %v, want ErrRankFailed", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierFailsWithDeadMember(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			time.Sleep(20 * time.Millisecond)
			c.FailSelf()
			return nil
		}
		c.Barrier() // rank 2 never arrives
		return nil
	})
	if !errors.Is(err, ErrRankFailed) {
		t.Fatalf("err = %v, want ErrRankFailed", err)
	}
}

func TestFailureScopedToWaiters(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Ranks 2,3 never touch the failed rank and must finish normally.
	done := make(chan int, 4)
	err := Run(4, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			if _, err := recvGuarded(c, 1, 7); !errors.Is(err, ErrRankFailed) {
				t.Errorf("rank 0 recv err = %v", err)
			}
		case 1:
			time.Sleep(10 * time.Millisecond)
			c.FailSelf()
		case 2:
			c.Send(3, 9, 42, 0)
		case 3:
			if got, _ := c.Recv(2, 9); got != 42 {
				t.Errorf("rank 3 got %v", got)
			}
		}
		done <- c.Rank()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 4 {
		t.Fatalf("%d ranks finished, want 4", len(done))
	}
}

func TestAsFailureIgnoresForeignPanics(t *testing.T) {
	testutil.CheckGoroutines(t)
	if err := AsFailure("boom"); err != nil {
		t.Fatalf("AsFailure(non-comm) = %v, want nil", err)
	}
	if err := AsFailure(abortPanic{}); err != nil {
		t.Fatalf("AsFailure(abortPanic) = %v, want nil (aborts re-panic)", err)
	}
}
