package comm

import "fmt"

// Collective operations over a communicator. All members must call the
// same collective with the same root and tag; tags namespace
// concurrent collectives on a shared world, like the point-to-point
// primitives.

// Bcast distributes root's payload to every rank and returns it
// (including at the root). nbytes accounts traffic per delivery.
func (c *Comm) Bcast(root, tag int, payload any, nbytes int) any {
	if c.rank == root {
		for dst := 0; dst < c.Size(); dst++ {
			if dst != root {
				c.Send(dst, tag, payload, nbytes)
			}
		}
		return payload
	}
	got, _ := c.Recv(root, tag)
	return got
}

// Gather collects every rank's payload at root, indexed by rank; other
// ranks receive nil.
func (c *Comm) Gather(root, tag int, payload any, nbytes int) []any {
	if c.rank != root {
		c.Send(root, tag, payload, nbytes)
		return nil
	}
	out := make([]any, c.Size())
	out[root] = payload
	for src := 0; src < c.Size(); src++ {
		if src != root {
			out[src], _ = c.Recv(src, tag)
		}
	}
	return out
}

// Scatter delivers parts[i] to rank i from root and returns this
// rank's part. Only root's parts argument is consulted; it must have
// exactly Size() entries there.
func (c *Comm) Scatter(root, tag int, parts []any, nbytes int) (any, error) {
	if c.rank == root {
		if len(parts) != c.Size() {
			return nil, fmt.Errorf("comm: scatter with %d parts for %d ranks", len(parts), c.Size())
		}
		for dst := 0; dst < c.Size(); dst++ {
			if dst != root {
				c.Send(dst, tag, parts[dst], nbytes)
			}
		}
		return parts[root], nil
	}
	got, _ := c.Recv(root, tag)
	return got, nil
}

// AllReduce combines every rank's float64 contribution with op
// (gather-to-0 then broadcast) and returns the result on every rank.
func (c *Comm) AllReduce(tag int, value float64, op func(a, b float64) float64) float64 {
	parts := c.Gather(0, tag, value, 8)
	if c.rank == 0 {
		acc := parts[0].(float64)
		for _, p := range parts[1:] {
			acc = op(acc, p.(float64))
		}
		return c.Bcast(0, tag+1, acc, 8).(float64)
	}
	return c.Bcast(0, tag+1, nil, 8).(float64)
}
