package comm

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/testutil"
)

func TestBcast(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(5, func(c *Comm) error {
		var payload any
		if c.Rank() == 2 {
			payload = "the word"
		}
		got := c.Bcast(2, 10, payload, 8)
		if got != "the word" {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(4, func(c *Comm) error {
		out := c.Gather(0, 20, c.Rank()*10, 4)
		if c.Rank() != 0 {
			if out != nil {
				return fmt.Errorf("non-root got %v", out)
			}
			return nil
		}
		for i, v := range out {
			if v != i*10 {
				return fmt.Errorf("slot %d = %v", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(4, func(c *Comm) error {
		var parts []any
		if c.Rank() == 1 {
			parts = []any{"a", "b", "c", "d"}
		}
		got, err := c.Scatter(1, 30, parts, 1)
		if err != nil {
			return err
		}
		want := string(rune('a' + c.Rank()))
		if got != want {
			return fmt.Errorf("rank %d got %v want %v", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterWrongLength(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Scatter(0, 31, []any{"only one"}, 1); err == nil {
				return fmt.Errorf("short parts accepted")
			}
			// Unblock the peer.
			c.Send(1, 32, "x", 1)
			return nil
		}
		c.Recv(0, 32)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	testutil.CheckGoroutines(t)
	const P = 6
	err := Run(P, func(c *Comm) error {
		sum := c.AllReduce(40, float64(c.Rank()+1), func(a, b float64) float64 { return a + b })
		if sum != 21 { // 1+2+...+6
			return fmt.Errorf("rank %d sum %v", c.Rank(), sum)
		}
		max := c.AllReduce(50, float64(c.Rank()), math.Max)
		if max != P-1 {
			return fmt.Errorf("rank %d max %v", c.Rank(), max)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesOnSubgroup(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(8, func(c *Comm) error {
		gid := c.Rank() / 4
		members := []int{gid * 4, gid*4 + 1, gid*4 + 2, gid*4 + 3}
		g, err := c.Group(members)
		if err != nil {
			return err
		}
		tag := 100 + gid*10
		got := g.Bcast(0, tag, fmt.Sprintf("group-%d", gid), 4)
		want := fmt.Sprintf("group-%d", gid)
		if gid == 1 && g.Rank() == 0 {
			// non-root ranks received root's value; root passed its own.
			want = "group-1"
		}
		if got != want {
			return fmt.Errorf("world %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
