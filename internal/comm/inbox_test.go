package comm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

func TestInboxPostTakeAnySource(t *testing.T) {
	testutil.CheckGoroutines(t)
	const p = 5
	err := Run(p, func(c *Comm) error {
		if c.Rank() != 0 {
			c.Post(0, 7, fmt.Sprintf("from %d", c.Rank()), 10)
			return nil
		}
		var srcs []int
		for i := 0; i < p-1; i++ {
			src, payload, nb := c.Take(7)
			if nb != 10 {
				return fmt.Errorf("payload bytes %d", nb)
			}
			if want := fmt.Sprintf("from %d", src); payload != want {
				return fmt.Errorf("src %d carried %q", src, payload)
			}
			srcs = append(srcs, src)
		}
		sort.Ints(srcs)
		for i, s := range srcs {
			if s != i+1 {
				return fmt.Errorf("sources %v, want 1..%d", srcs, p-1)
			}
		}
		if c.World().BytesReceivedBy(0) != 10*(p-1) {
			return fmt.Errorf("recv bytes %d", c.World().BytesReceivedBy(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInboxTagFilteringPreservesOtherTags(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			c.Post(0, 1, "first-of-1", 0)
			c.Post(0, 2, "only-of-2", 0)
			c.Post(0, 1, "second-of-1", 0)
			return nil
		}
		// Taking tag 2 must skip over the queued tag-1 message without
		// consuming it.
		if _, payload, _ := c.Take(2); payload != "only-of-2" {
			return fmt.Errorf("tag 2 got %q", payload)
		}
		if _, payload, _ := c.Take(1); payload != "first-of-1" {
			return fmt.Errorf("tag 1 first got %q", payload)
		}
		if _, payload, _ := c.Take(1); payload != "second-of-1" {
			return fmt.Errorf("tag 1 second got %q", payload)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInboxTryTake(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(2, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if _, _, _, ok := c.TryTake(3); ok {
			return errors.New("TryTake found a message in an empty inbox")
		}
		c.Post(0, 3, "self", 4) // self-delivery
		src, payload, _, ok := c.TryTake(3)
		if !ok || payload != "self" || src != 0 {
			return fmt.Errorf("TryTake = (%d, %v, %v)", src, payload, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInboxPostFromHelperGoroutine(t *testing.T) {
	testutil.CheckGoroutines(t)
	const tiles = 8
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			// Concurrent posts from worker goroutines, as the render
			// pool does with finished tiles.
			var wg sync.WaitGroup
			for i := 0; i < tiles; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					c.Post(0, 9, i, 1)
				}(i)
			}
			wg.Wait()
			return nil
		}
		got := map[int]bool{}
		for i := 0; i < tiles; i++ {
			_, payload, _ := c.Take(9)
			got[payload.(int)] = true
		}
		if len(got) != tiles {
			return fmt.Errorf("got %d distinct tiles, want %d", len(got), tiles)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInboxTakeFailsFastOnExpectedPeer(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(3, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			c.Post(0, 5, "before dying", 0)
			c.FailSelf()
			return nil
		case 2:
			return nil // never posts
		}
		// Data posted before the failure still delivers.
		if _, payload, _ := c.Take(5, 1, 2); payload != "before dying" {
			return fmt.Errorf("got %q", payload)
		}
		// Rank 1 is dead and rank 2 owes nothing under this tag once we
		// stop expecting it; waiting on rank 1 must fail fast, not hang.
		ferr := func() (err error) {
			defer func() {
				if rec := recover(); rec != nil {
					if fe := AsFailure(rec); fe != nil {
						err = fe
						return
					}
					panic(rec)
				}
			}()
			c.Take(5, 1)
			return errors.New("take returned without a message")
		}()
		if !errors.Is(ferr, ErrRankFailed) {
			return fmt.Errorf("expected ErrRankFailed, got %v", ferr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInboxTakeTimeout(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := RunWith(2, RunConfig{RecvTimeout: 30 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		ferr := func() (err error) {
			defer func() {
				if rec := recover(); rec != nil {
					if fe := AsFailure(rec); fe != nil {
						err = fe
						return
					}
					panic(rec)
				}
			}()
			c.Take(11)
			return errors.New("take returned without a message")
		}()
		if !errors.Is(ferr, ErrRecvTimeout) {
			return fmt.Errorf("expected ErrRecvTimeout, got %v", ferr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitErrorConvertsAborts(t *testing.T) {
	testutil.CheckGoroutines(t)
	if err := WaitError(abortPanic{}); !errors.Is(err, ErrAborted) {
		t.Fatalf("abortPanic -> %v", err)
	}
	if err := WaitError(failPanic{rank: 3}); !errors.Is(err, ErrRankFailed) {
		t.Fatalf("failPanic -> %v", err)
	}
	if err := WaitError(failPanic{rank: -1, timeout: true}); !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("timeout failPanic -> %v", err)
	}
	if err := WaitError(errors.New("unrelated")); err != nil {
		t.Fatalf("non-comm panic -> %v", err)
	}
}
