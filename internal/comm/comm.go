// Package comm is a small rank-addressed message-passing fabric — the
// stand-in for the MPI layer the paper's renderer runs on. A World of
// P ranks runs one goroutine per rank (SPMD); ranks exchange typed
// messages over matched (source, tag) channels, synchronize with
// barriers, and can be split into sub-communicators, which is how the
// pipeline forms its L processor groups.
//
// Message payloads transfer ownership: the sender must not touch a
// payload after Send. Byte volume is tracked per world for the
// calibration measurements the discrete-event simulator consumes.
//
// Failure model: a rank can be marked failed (FailSelf / MarkFailed),
// and receives can carry a deadline (RunConfig.RecvTimeout). Either
// way, a rank blocked on a dead peer is woken and fails with a typed
// panic that AsFailure converts to ErrRankFailed or ErrRecvTimeout —
// node failure surfaces as an error event at the waiting rank instead
// of a hang, which is what lets the pipeline degrade gracefully.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// ErrAborted is observed by ranks blocked in Recv or Barrier when the
// world is aborted because another rank failed.
var ErrAborted = errors.New("comm: world aborted")

// ErrRankFailed is observed (via AsFailure) by ranks blocked on a peer
// that was marked failed.
var ErrRankFailed = errors.New("comm: peer rank failed")

// ErrRecvTimeout is observed (via AsFailure) when a receive outlives
// the world's RecvTimeout — the comm-level dead-peer detector.
var ErrRecvTimeout = errors.New("comm: receive timed out")

// abortPanic is the sentinel recovered by Run's rank wrappers.
type abortPanic struct{}

// failPanic aborts one wait on one dead peer; unlike abortPanic it is
// scoped to the waiting rank, so the rest of the world keeps running.
type failPanic struct {
	rank    int // world rank of the dead peer
	timeout bool
}

// AsFailure converts a panic value recovered from a comm wait into its
// error (nil when the value is not a comm failure). Callers that want
// per-group degradation wrap comm-using code, recover, and pass the
// value here; a non-nil result means "the peer died, this rank is
// fine". World aborts (abortPanic) are not converted — re-panic those
// so Run's wrapper accounts for them.
func AsFailure(rec any) error {
	if p, ok := rec.(failPanic); ok {
		if p.timeout {
			if p.rank < 0 {
				// Any-source wait (inbox Take): no single peer to blame.
				return fmt.Errorf("comm: waiting on inbox: %w", ErrRecvTimeout)
			}
			return fmt.Errorf("comm: waiting on world rank %d: %w", p.rank, ErrRecvTimeout)
		}
		return fmt.Errorf("comm: world rank %d: %w", p.rank, ErrRankFailed)
	}
	return nil
}

// WaitError converts any recovered comm wait panic — scoped peer
// failure, receive timeout, or world abort — into its error, nil when
// rec is not a comm panic (re-panic those). Unlike AsFailure it also
// converts world aborts: it exists for helper goroutines that block on
// comm primitives outside a Run rank (e.g. a compositor's drain loop),
// where re-panicking abortPanic would crash the process instead of
// reaching Run's per-rank recover. The helper recovers, converts, and
// reports the error to its owning rank.
func WaitError(rec any) error {
	if _, ok := rec.(abortPanic); ok {
		return ErrAborted
	}
	return AsFailure(rec)
}

// message is one in-flight payload.
type message struct {
	tag     int
	payload any
	bytes   int
}

// mailbox carries messages from one specific sender to one receiver.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
	world *World
	src   int // world rank of the sender
}

func newMailbox(w *World, src int) *mailbox {
	m := &mailbox{world: w, src: src}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.cond.Signal()
}

// take blocks until a message with the given tag (or any, if
// tag==AnyTag) is present and removes it, preserving FIFO order per
// tag. If the world aborts, the sender is marked failed, or the
// world's RecvTimeout elapses while waiting, take panics with the
// matching sentinel (recovered by Run, or converted by AsFailure).
// Queued messages are scanned before the failure checks, so data a
// peer sent before dying still delivers.
func (m *mailbox) take(tag int) message {
	var deadline time.Time
	if d := m.world.recvTimeout; d > 0 {
		deadline = time.Now().Add(d)
		// The waker makes cond.Wait observe the deadline; without it a
		// receive on a silent peer would sleep forever.
		t := time.AfterFunc(d, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		defer t.Stop()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.world.aborted.Load() {
			panic(abortPanic{})
		}
		for i, msg := range m.queue {
			if tag == AnyTag || msg.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg
			}
		}
		if m.world.failed[m.src].Load() {
			panic(failPanic{rank: m.src})
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			panic(failPanic{rank: m.src, timeout: true})
		}
		m.cond.Wait()
	}
}

// inboxMsg is one message in a rank's any-source inbox.
type inboxMsg struct {
	src     int // world rank of the sender
	tag     int
	payload any
	bytes   int
}

// inbox is one rank's any-source tagged mailbox, backing Post/Take —
// the asynchronous tile-routing path of the distributed-framebuffer
// compositor. Unlike the per-(src,dst) mailboxes, messages from all
// senders land in one queue in arrival order, and a receiver can wait
// on a tag without naming a sender.
type inbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []inboxMsg
	world *World
}

func newInbox(w *World) *inbox {
	ib := &inbox{world: w}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) put(msg inboxMsg) {
	ib.mu.Lock()
	ib.queue = append(ib.queue, msg)
	ib.mu.Unlock()
	ib.cond.Signal()
}

// take blocks until a message with the given tag is present and
// removes it. expect optionally lists world ranks still owed messages
// under this tag: when the queue has no match and one of them is
// marked failed, take fails fast with that rank instead of waiting for
// a fragment that will never arrive. Abort and RecvTimeout semantics
// match mailbox.take; queued messages are scanned before the failure
// checks so data a peer posted before dying still delivers.
func (ib *inbox) take(tag int, expect []int) inboxMsg {
	var deadline time.Time
	if d := ib.world.recvTimeout; d > 0 {
		deadline = time.Now().Add(d)
		t := time.AfterFunc(d, func() {
			ib.mu.Lock()
			ib.cond.Broadcast()
			ib.mu.Unlock()
		})
		defer t.Stop()
	}
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		if ib.world.aborted.Load() {
			panic(abortPanic{})
		}
		for i, msg := range ib.queue {
			if msg.tag == tag {
				ib.queue = append(ib.queue[:i], ib.queue[i+1:]...)
				return msg
			}
		}
		for _, r := range expect {
			if r >= 0 && r < ib.world.size && ib.world.failed[r].Load() {
				panic(failPanic{rank: r})
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			panic(failPanic{rank: -1, timeout: true})
		}
		ib.cond.Wait()
	}
}

// tryTake removes and returns a message with the given tag if one is
// queued.
func (ib *inbox) tryTake(tag int) (inboxMsg, bool) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for i, msg := range ib.queue {
		if msg.tag == tag {
			ib.queue = append(ib.queue[:i], ib.queue[i+1:]...)
			return msg, true
		}
	}
	return inboxMsg{}, false
}

// World is a set of P ranks with all-pairs mailboxes.
type World struct {
	size int
	// boxes[dst][src] is the mailbox for messages src -> dst.
	boxes [][]*mailbox
	// inboxes[dst] is the any-source tagged inbox of each rank
	// (Post/Take).
	inboxes []*inbox

	barrier *barrier
	aborted atomic.Bool
	// failed[r] marks world rank r dead; waits on it fail fast.
	failed []atomic.Bool
	// recvTimeout bounds every Recv (0 = wait forever). Set before the
	// rank goroutines start (RunWith / SetRecvTimeout).
	recvTimeout time.Duration

	gbMu  sync.Mutex
	gbars map[string]*barrier

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
	// bytesRecvBy[r] counts payload bytes received by world rank r —
	// per-link traffic accounting for compositing ablations.
	bytesRecvBy []atomic.Int64
}

// NewWorld creates a P-rank world.
func NewWorld(p int) (*World, error) {
	if p < 1 {
		return nil, fmt.Errorf("comm: world size %d < 1", p)
	}
	w := &World{size: p}
	w.failed = make([]atomic.Bool, p)
	w.barrier = newBarrier(w, allRanks(p))
	w.bytesRecvBy = make([]atomic.Int64, p)
	w.boxes = make([][]*mailbox, p)
	w.inboxes = make([]*inbox, p)
	for dst := range w.boxes {
		w.boxes[dst] = make([]*mailbox, p)
		for src := range w.boxes[dst] {
			w.boxes[dst][src] = newMailbox(w, src)
		}
		w.inboxes[dst] = newInbox(w)
	}
	return w, nil
}

func allRanks(p int) []int {
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

// SetRecvTimeout bounds every receive in the world; a rank waiting
// longer observes ErrRecvTimeout. Call before the rank goroutines
// start (RunWith does this for you).
func (w *World) SetRecvTimeout(d time.Duration) { w.recvTimeout = d }

// Abort wakes every rank blocked in Recv or Barrier; they observe
// ErrAborted. Called automatically by Run when a rank fails.
func (w *World) Abort() {
	w.aborted.Store(true)
	w.wakeAll()
}

// MarkFailed declares one world rank dead: every rank blocked (now or
// later) receiving from it or sharing a barrier with it fails with
// ErrRankFailed instead of hanging. Idempotent; scoped — ranks not
// waiting on the dead one are untouched.
func (w *World) MarkFailed(rank int) {
	if rank < 0 || rank >= w.size {
		return
	}
	if w.failed[rank].Swap(true) {
		return
	}
	w.wakeAll()
}

// Failed reports whether a world rank has been marked failed.
func (w *World) Failed(rank int) bool {
	if rank < 0 || rank >= w.size {
		return false
	}
	return w.failed[rank].Load()
}

// wakeAll broadcasts every wait point so blocked ranks re-check the
// abort/failed flags.
func (w *World) wakeAll() {
	for _, row := range w.boxes {
		for _, mb := range row {
			mb.mu.Lock()
			mb.cond.Broadcast()
			mb.mu.Unlock()
		}
	}
	for _, ib := range w.inboxes {
		ib.mu.Lock()
		ib.cond.Broadcast()
		ib.mu.Unlock()
	}
	w.barrier.broadcast()
	w.gbMu.Lock()
	for _, b := range w.gbars {
		b.broadcast()
	}
	w.gbMu.Unlock()
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// BytesSent returns the total payload bytes sent so far.
func (w *World) BytesSent() int64 { return w.bytesSent.Load() }

// MessagesSent returns the total message count so far.
func (w *World) MessagesSent() int64 { return w.msgsSent.Load() }

// BytesReceivedBy returns the payload bytes received so far by a
// world rank — the load on that node's incoming link.
func (w *World) BytesReceivedBy(rank int) int64 {
	if rank < 0 || rank >= len(w.bytesRecvBy) {
		return 0
	}
	return w.bytesRecvBy[rank].Load()
}

// Comm is one rank's endpoint in a communicator (the world or a
// subgroup). Rank numbering is local to the communicator.
type Comm struct {
	world *World
	rank  int   // local rank
	ranks []int // local rank -> world rank
	bar   *barrier
}

// Rank returns this endpoint's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.ranks) }

// World returns the underlying world.
func (c *Comm) World() *World { return c.world }

// FailSelf marks this rank's world rank failed — the cooperative
// "this node crashed" signal. Peers blocked on it wake with
// ErrRankFailed; the failing rank should stop using the communicator.
func (c *Comm) FailSelf() { c.world.MarkFailed(c.ranks[c.rank]) }

// Send delivers payload with tag to local rank dst. nbytes is the
// accounted payload size (for traffic statistics); pass 0 when the
// size is irrelevant. Send never blocks.
func (c *Comm) Send(dst, tag int, payload any, nbytes int) {
	if dst < 0 || dst >= len(c.ranks) {
		panic(fmt.Sprintf("comm: send to rank %d of %d", dst, len(c.ranks)))
	}
	wsrc, wdst := c.ranks[c.rank], c.ranks[dst]
	c.world.bytesSent.Add(int64(nbytes))
	c.world.msgsSent.Add(1)
	c.world.boxes[wdst][wsrc].put(message{tag: tag, payload: payload, bytes: nbytes})
}

// Recv blocks until a message with the given tag arrives from local
// rank src, and returns its payload and accounted size.
func (c *Comm) Recv(src, tag int) (payload any, nbytes int) {
	if src < 0 || src >= len(c.ranks) {
		panic(fmt.Sprintf("comm: recv from rank %d of %d", src, len(c.ranks)))
	}
	wsrc, wdst := c.ranks[src], c.ranks[c.rank]
	msg := c.world.boxes[wdst][wsrc].take(tag)
	c.world.bytesRecvBy[wdst].Add(int64(msg.bytes))
	return msg.payload, msg.bytes
}

// SendRecv exchanges payloads with a partner rank without deadlock
// (sends are non-blocking, so plain Send+Recv suffices; provided for
// readability at binary-swap call sites).
func (c *Comm) SendRecv(partner, tag int, payload any, nbytes int) (got any, gotBytes int) {
	c.Send(partner, tag, payload, nbytes)
	return c.Recv(partner, tag)
}

// Post delivers payload to local rank dst's any-source inbox under
// tag. Like Send it never blocks and transfers payload ownership;
// unlike Send the receiver matches it with Take/TryTake without
// naming the sender, and arrival order across senders is preserved.
// Post is safe to call from helper goroutines of the rank (e.g.
// render workers shipping finished tiles) and dst may be the caller's
// own rank (self-delivery, used for drain-loop wakeups).
func (c *Comm) Post(dst, tag int, payload any, nbytes int) {
	if dst < 0 || dst >= len(c.ranks) {
		panic(fmt.Sprintf("comm: post to rank %d of %d", dst, len(c.ranks)))
	}
	wsrc, wdst := c.ranks[c.rank], c.ranks[dst]
	c.world.bytesSent.Add(int64(nbytes))
	c.world.msgsSent.Add(1)
	c.world.inboxes[wdst].put(inboxMsg{src: wsrc, tag: tag, payload: payload, bytes: nbytes})
}

// Take blocks until a message posted under tag is in this rank's
// inbox, removes it, and returns the sender's communicator-local rank
// (-1 if the sender is outside this communicator) with the payload.
// expect optionally lists local ranks still owed messages under this
// tag: if the inbox has no match and one of them has failed, Take
// fails fast (ErrRankFailed via AsFailure) instead of waiting for a
// message that will never come. World aborts and the world's
// RecvTimeout apply as in Recv; a timeout surfaces as ErrRecvTimeout
// with no peer attributed (any-source waits have no single culprit).
func (c *Comm) Take(tag int, expect ...int) (src int, payload any, nbytes int) {
	wdst := c.ranks[c.rank]
	var wexpect []int
	if len(expect) > 0 {
		wexpect = make([]int, 0, len(expect))
		for _, e := range expect {
			if e < 0 || e >= len(c.ranks) {
				panic(fmt.Sprintf("comm: take expects rank %d of %d", e, len(c.ranks)))
			}
			wexpect = append(wexpect, c.ranks[e])
		}
	}
	msg := c.world.inboxes[wdst].take(tag, wexpect)
	c.world.bytesRecvBy[wdst].Add(int64(msg.bytes))
	return c.localRank(msg.src), msg.payload, msg.bytes
}

// TryTake is the non-blocking Take: ok reports whether a matching
// message was present.
func (c *Comm) TryTake(tag int) (src int, payload any, nbytes int, ok bool) {
	wdst := c.ranks[c.rank]
	msg, ok := c.world.inboxes[wdst].tryTake(tag)
	if !ok {
		return -1, nil, 0, false
	}
	c.world.bytesRecvBy[wdst].Add(int64(msg.bytes))
	return c.localRank(msg.src), msg.payload, msg.bytes, true
}

// localRank maps a world rank to this communicator's local rank, -1
// when the world rank is not a member.
func (c *Comm) localRank(world int) int {
	for l, w := range c.ranks {
		if w == world {
			return l
		}
	}
	return -1
}

// Barrier blocks until every rank of this communicator has entered.
func (c *Comm) Barrier() { c.bar.await() }

// Group creates a sub-communicator from world-local ranks of this
// communicator. Every listed member must call Group with the same
// list; each receives its endpoint via the returned constructor
// applied to its member index. Non-members must not call it.
//
// Implementation note: sub-communicators share the world mailboxes, so
// tags must not collide across concurrent groups; callers draw tags
// from the central registry (RegisterTagClass / TagClass.Tag), whose
// per-step blocks keep concurrent groups — always on different
// pipeline steps — disjoint by construction.
func (c *Comm) Group(members []int) (*Comm, error) {
	idx := -1
	ranks := make([]int, len(members))
	for i, m := range members {
		if m < 0 || m >= len(c.ranks) {
			return nil, fmt.Errorf("comm: group member %d out of range", m)
		}
		ranks[i] = c.ranks[m]
		if m == c.rank {
			idx = i
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("comm: rank %d not in group %v", c.rank, members)
	}
	return &Comm{world: c.world, rank: idx, ranks: ranks, bar: c.world.groupBarrier(ranks)}, nil
}

// barrier is a reusable counting barrier over a set of world ranks.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
	world *World
	ranks []int // member world ranks (for failed-member detection)
}

func newBarrier(w *World, ranks []int) *barrier {
	b := &barrier{n: len(ranks), world: w, ranks: ranks}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// failedRank returns a failed member's world rank, or -1.
func (b *barrier) failedRank() int {
	for _, r := range b.ranks {
		if b.world.failed[r].Load() {
			return r
		}
	}
	return -1
}

func (b *barrier) await() {
	b.mu.Lock()
	if b.world.aborted.Load() {
		b.mu.Unlock()
		panic(abortPanic{})
	}
	// A barrier with a dead member can never complete — fail fast
	// rather than wait for a peer that will not arrive.
	if r := b.failedRank(); r >= 0 {
		b.mu.Unlock()
		panic(failPanic{rank: r})
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		if b.world.aborted.Load() {
			b.mu.Unlock()
			panic(abortPanic{})
		}
		if r := b.failedRank(); r >= 0 {
			b.mu.Unlock()
			panic(failPanic{rank: r})
		}
		b.cond.Wait()
	}
	b.mu.Unlock()
}

func (b *barrier) broadcast() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// groupBarrier returns a shared barrier for a set of world ranks,
// keyed by the sorted rank list, so all members of one Group call get
// the same barrier instance.
func (w *World) groupBarrier(ranks []int) *barrier {
	key := fmt.Sprint(ranks)
	w.gbMu.Lock()
	defer w.gbMu.Unlock()
	if w.gbars == nil {
		w.gbars = map[string]*barrier{}
	}
	if b, ok := w.gbars[key]; ok {
		return b
	}
	b := newBarrier(w, ranks)
	w.gbars[key] = b
	return b
}

// RunConfig tunes a Run.
type RunConfig struct {
	// RecvTimeout bounds every receive; a rank waiting longer observes
	// ErrRecvTimeout (via its error return). 0 = wait forever.
	RecvTimeout time.Duration
}

// Run launches fn on every rank of a fresh world and waits for all to
// return. When a rank fails, the world aborts: ranks blocked in Recv
// or Barrier are woken and report ErrAborted; the first real error (by
// rank order) is returned.
func Run(p int, fn func(c *Comm) error) error {
	return RunWith(p, RunConfig{}, fn)
}

// RunWith is Run with a config.
func RunWith(p int, cfg RunConfig, fn func(c *Comm) error) error {
	w, err := NewWorld(p)
	if err != nil {
		return err
	}
	w.recvTimeout = cfg.RecvTimeout
	ranks := allRanks(p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(abortPanic); ok {
						errs[r] = ErrAborted
						return
					}
					// An unguarded failure wait (fn chose not to
					// degrade) surfaces as this rank's error and aborts
					// the world like any other rank error.
					if fe := AsFailure(rec); fe != nil {
						errs[r] = fe
						w.Abort()
						return
					}
					panic(rec)
				}
			}()
			c := &Comm{world: w, rank: r, ranks: ranks, bar: w.barrier}
			errs[r] = fn(c)
			if errs[r] != nil {
				w.Abort()
			}
		}(r)
	}
	wg.Wait()
	var aborted error
	for _, e := range errs {
		if e != nil && !errors.Is(e, ErrAborted) {
			return e
		}
		if e != nil && aborted == nil {
			aborted = e
		}
	}
	return aborted
}
