package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Tag registry.
//
// Sub-communicators share the world mailboxes, so every subsystem that
// exchanges messages over a world — the pipeline's work distribution,
// binary-swap stages, tile fragments — must draw its tags from
// disjoint ranges. Historically each caller did its own arithmetic
// (`step*64 + kind*32 + offset`), which silently collides the moment a
// subsystem grows past its hand-counted allotment. The registry
// centralizes the allocation: a package registers a named TagClass
// with the capacity it needs (the number of distinct sequence numbers
// it uses per step), and the registry lays all classes out in one
// per-step stride so tags from different classes — and from different
// steps — can never overlap.

// TagSpace allocates tag ranges for a set of named classes. The zero
// value is not usable; use NewTagSpace, or the package-default space
// via RegisterTagClass. A space freezes on first Tag computation:
// registering after that panics, because a new class would change the
// per-step stride and silently invalidate every tag already handed
// out.
type TagSpace struct {
	mu      sync.Mutex
	frozen  atomic.Bool
	stride  int
	classes map[string]int // name -> offset within the per-step block
}

// NewTagSpace returns an empty tag space (used by tests; production
// code shares the package-default space).
func NewTagSpace() *TagSpace {
	return &TagSpace{classes: map[string]int{}}
}

// Register allocates a class of capacity consecutive tags per step.
// It panics on a duplicate name, a non-positive capacity, or a space
// that already froze (a Tag was computed) — all three are programming
// errors, caught at package init in normal use.
func (s *TagSpace) Register(name string, capacity int) TagClass {
	if capacity < 1 {
		panic(fmt.Sprintf("comm: tag class %q capacity %d < 1", name, capacity))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen.Load() {
		panic(fmt.Sprintf("comm: tag class %q registered after tags were computed — register all classes at init", name))
	}
	if s.classes == nil {
		s.classes = map[string]int{}
	}
	if _, dup := s.classes[name]; dup {
		panic(fmt.Sprintf("comm: duplicate tag class %q", name))
	}
	offset := s.stride
	s.classes[name] = offset
	s.stride += capacity
	return TagClass{space: s, name: name, offset: offset, capacity: capacity}
}

// Stride returns the width of one per-step tag block (the sum of all
// registered capacities). Exposed for tests and diagnostics.
func (s *TagSpace) Stride() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stride
}

// TagClass is one registered consumer's slice of the tag space.
type TagClass struct {
	space    *TagSpace
	name     string
	offset   int
	capacity int
}

// Name returns the class name.
func (tc TagClass) Name() string { return tc.name }

// Capacity returns the number of sequence slots per step.
func (tc TagClass) Capacity() int { return tc.capacity }

// Tag returns the wire tag for (step, seq). step namespaces pipeline
// steps (every step gets a fresh block, so concurrent groups working
// on different steps never cross-talk); seq indexes within the class
// (e.g. the binary-swap stage number). The first call freezes the
// space. Panics when seq is outside the registered capacity or step
// is negative — the exact overflow the old `+16` arithmetic let slide.
func (tc TagClass) Tag(step, seq int) int {
	if seq < 0 || seq >= tc.capacity {
		panic(fmt.Sprintf("comm: tag class %q seq %d outside capacity %d", tc.name, seq, tc.capacity))
	}
	if step < 0 {
		panic(fmt.Sprintf("comm: tag class %q negative step %d", tc.name, step))
	}
	tc.space.frozen.Store(true)
	return step*tc.space.strideLocked() + tc.offset + seq
}

// strideLocked reads the stride; after freeze it is immutable, and
// freeze-before-read is ordered by the atomic in Tag, but take the
// lock anyway so the race detector sees a clean happens-before with a
// (buggy) late Register.
func (s *TagSpace) strideLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stride
}

// defaultTagSpace is the process-wide space production code registers
// into (at package init, so the layout is fixed before any world
// exists).
var defaultTagSpace = NewTagSpace()

// RegisterTagClass registers a class in the package-default tag space.
// Call from package init (var initializer); see TagSpace.Register for
// the panics.
func RegisterTagClass(name string, capacity int) TagClass {
	return defaultTagSpace.Register(name, capacity)
}
