package comm

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

func TestNewWorldValidation(t *testing.T) {
	testutil.CheckGoroutines(t)
	if _, err := NewWorld(0); err == nil {
		t.Fatal("want error for size 0")
	}
	w, err := NewWorld(4)
	if err != nil || w.Size() != 4 {
		t.Fatalf("NewWorld(4): %v %v", w, err)
	}
}

func TestPointToPoint(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, "hello", 5)
			return nil
		}
		got, n := c.Recv(0, 7)
		if got != "hello" || n != 5 {
			return fmt.Errorf("got %v %d", got, n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, "first", 0)
			c.Send(1, 2, "second", 0)
			return nil
		}
		// Receive tag 2 before tag 1.
		got2, _ := c.Recv(0, 2)
		got1, _ := c.Recv(0, 1)
		if got1 != "first" || got2 != "second" {
			return fmt.Errorf("tag matching broken: %v %v", got1, got2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerTag(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(2, func(c *Comm) error {
		const N = 100
		if c.Rank() == 0 {
			for i := 0; i < N; i++ {
				c.Send(1, 3, i, 0)
			}
			return nil
		}
		for i := 0; i < N; i++ {
			got, _ := c.Recv(0, 3)
			if got != i {
				return fmt.Errorf("message %d arrived as %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnyTag(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 42, "x", 0)
			return nil
		}
		got, _ := c.Recv(0, AnyTag)
		if got != "x" {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvExchange(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(2, func(c *Comm) error {
		partner := 1 - c.Rank()
		got, _ := c.SendRecv(partner, 9, c.Rank(), 4)
		if got != partner {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	testutil.CheckGoroutines(t)
	var phase atomic.Int32
	err := Run(8, func(c *Comm) error {
		if c.Rank() == 3 {
			time.Sleep(20 * time.Millisecond)
			phase.Store(1)
		}
		c.Barrier()
		if phase.Load() != 1 {
			return fmt.Errorf("rank %d passed barrier before rank 3 arrived", c.Rank())
		}
		c.Barrier() // reusable
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllPairsTraffic(t *testing.T) {
	testutil.CheckGoroutines(t)
	const P = 6
	err := Run(P, func(c *Comm) error {
		for dst := 0; dst < P; dst++ {
			if dst != c.Rank() {
				c.Send(dst, 1, c.Rank()*100+dst, 8)
			}
		}
		for src := 0; src < P; src++ {
			if src != c.Rank() {
				got, _ := c.Recv(src, 1)
				if got != src*100+c.Rank() {
					return fmt.Errorf("rank %d from %d: %v", c.Rank(), src, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommunicator(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Split 8 ranks into 2 groups of 4; exchange within each group.
	err := Run(8, func(c *Comm) error {
		gid := c.Rank() / 4
		members := []int{gid * 4, gid*4 + 1, gid*4 + 2, gid*4 + 3}
		g, err := c.Group(members)
		if err != nil {
			return err
		}
		if g.Size() != 4 {
			return fmt.Errorf("group size %d", g.Size())
		}
		if g.Rank() != c.Rank()%4 {
			return fmt.Errorf("group rank %d for world rank %d", g.Rank(), c.Rank())
		}
		// Ring send within the group; tag namespaced by group.
		next := (g.Rank() + 1) % 4
		prev := (g.Rank() + 3) % 4
		tag := 100 + gid
		g.Send(next, tag, c.Rank(), 4)
		got, _ := g.Recv(prev, tag)
		wantWorld := gid*4 + prev
		if got != wantWorld {
			return fmt.Errorf("group %d rank %d got %v want %d", gid, g.Rank(), got, wantWorld)
		}
		g.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupErrors(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Run(4, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if _, err := c.Group([]int{0, 9}); err == nil {
			return fmt.Errorf("want out-of-range error")
		}
		if _, err := c.Group([]int{1, 2}); err == nil {
			return fmt.Errorf("want non-member error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrafficAccounting(t *testing.T) {
	testutil.CheckGoroutines(t)
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	ranks := []int{0, 1}
	c0 := &Comm{world: w, rank: 0, ranks: ranks, bar: w.barrier}
	c1 := &Comm{world: w, rank: 1, ranks: ranks, bar: w.barrier}
	c0.Send(1, 1, "abc", 3)
	c0.Send(1, 1, "defg", 4)
	c1.Recv(0, 1)
	c1.Recv(0, 1)
	if w.BytesSent() != 7 {
		t.Fatalf("BytesSent = %d, want 7", w.BytesSent())
	}
	if w.MessagesSent() != 2 {
		t.Fatalf("MessagesSent = %d, want 2", w.MessagesSent())
	}
}

// A failing rank must not leave peers blocked in Recv forever: the
// world aborts and Run returns the real error.
func TestAbortUnblocksRecv(t *testing.T) {
	testutil.CheckGoroutines(t)
	boom := fmt.Errorf("rank 0 failed")
	done := make(chan error, 1)
	go func() {
		done <- Run(4, func(c *Comm) error {
			if c.Rank() == 0 {
				return boom
			}
			// Blocks forever without the abort path.
			c.Recv(0, 1)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != boom {
			t.Fatalf("got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run never returned — abort broken")
	}
}

// The same for ranks waiting at a barrier.
func TestAbortUnblocksBarrier(t *testing.T) {
	testutil.CheckGoroutines(t)
	boom := fmt.Errorf("rank 2 failed")
	done := make(chan error, 1)
	go func() {
		done <- Run(4, func(c *Comm) error {
			if c.Rank() == 2 {
				return boom
			}
			c.Barrier()
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != boom {
			t.Fatalf("got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run never returned — barrier abort broken")
	}
}

func TestRunPropagatesError(t *testing.T) {
	testutil.CheckGoroutines(t)
	sentinel := fmt.Errorf("boom")
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("got %v", err)
	}
}

func BenchmarkSendRecv(b *testing.B) {
	w, _ := NewWorld(2)
	ranks := []int{0, 1}
	c0 := &Comm{world: w, rank: 0, ranks: ranks, bar: w.barrier}
	c1 := &Comm{world: w, rank: 1, ranks: ranks, bar: w.barrier}
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	done := make(chan struct{})
	go func() {
		for i := 0; i < b.N; i++ {
			c1.Recv(0, 1)
		}
		close(done)
	}()
	for i := 0; i < b.N; i++ {
		c0.Send(1, 1, payload, 1024)
	}
	<-done
}
