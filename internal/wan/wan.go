// Package wan shapes network connections to wide-area-link profiles:
// a one-way propagation delay plus a token-bucket bandwidth limit
// wrapped around any net.Conn. It stands in for the real links of the
// paper's evaluation — the NASA Ames ↔ UC Davis path (~120 miles) and
// the RWCP (Japan) ↔ UC Davis path — so the transport experiments run
// against loopback TCP with realistic timing.
package wan

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Profile describes a link.
type Profile struct {
	// Name labels the link in reports.
	Name string
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth in bytes per second (0 = unlimited).
	Bandwidth float64
	// Burst is the token-bucket depth in bytes; 0 defaults to 64 KiB.
	Burst float64
}

// Validate checks the profile for nonsensical values.
func (p Profile) Validate() error {
	if p.Latency < 0 {
		return fmt.Errorf("wan: negative latency %v", p.Latency)
	}
	if p.Bandwidth < 0 {
		return fmt.Errorf("wan: negative bandwidth %v", p.Bandwidth)
	}
	return nil
}

// TransferTime returns the modelled time to push n bytes through the
// link: serialization at the bandwidth plus one propagation delay.
// Used by the discrete-event simulator; the shaped Conn produces the
// same behaviour on real sockets.
func (p Profile) TransferTime(n int) time.Duration {
	d := p.Latency
	if p.Bandwidth > 0 {
		d += time.Duration(float64(n) / p.Bandwidth * float64(time.Second))
	}
	return d
}

// Link profiles calibrated to the paper's observed rates.
//
// NASAUCD: Table 2 reports 0.5 fps for raw 256x256 frames (196,608
// bytes) and 0.03 fps at 1024x1024 (3.1 MB) over X, i.e. ~90 KB/s
// effective throughput on the late-90s research link; Figure 8's
// ~35 s X transfer of a 1024x1024 frame matches the same rate.
//
// JapanUCD: Figure 11 reports X transfers taking about twice the
// NASA–UCD times, with trans-Pacific latency.
func NASAUCD() Profile {
	return Profile{Name: "nasa-ucd", Latency: 15 * time.Millisecond, Bandwidth: 90e3, Burst: 4 << 10}
}

// JapanUCD returns the RWCP (Japan) to UC Davis link profile.
func JapanUCD() Profile {
	return Profile{Name: "japan-ucd", Latency: 60 * time.Millisecond, Bandwidth: 45e3, Burst: 4 << 10}
}

// LAN returns the fast local network between the storage device and
// the parallel machine.
func LAN() Profile {
	return Profile{Name: "lan", Latency: 200 * time.Microsecond, Bandwidth: 10e6}
}

// Unlimited returns an unshaped profile.
func Unlimited() Profile { return Profile{Name: "unlimited"} }

// ByName looks up a built-in profile.
func ByName(name string) (Profile, error) {
	switch name {
	case "nasa-ucd":
		return NASAUCD(), nil
	case "japan-ucd":
		return JapanUCD(), nil
	case "lan":
		return LAN(), nil
	case "unlimited", "":
		return Unlimited(), nil
	}
	return Profile{}, fmt.Errorf("wan: unknown link profile %q", name)
}

// bucket is a shared token bucket; several connections draining one
// bucket model flows sharing a single physical link.
type bucket struct {
	prof Profile

	mu     sync.Mutex
	tokens float64
	last   time.Time
	// lastWrite tracks write activity so propagation delay is charged
	// per burst rather than per call.
	lastWrite time.Time
}

func newBucket(p Profile) *bucket {
	return &bucket{prof: p, tokens: p.burst(), last: time.Now()}
}

// Conn shapes writes on an underlying net.Conn to a profile. Reads
// pass through (the peer's writes are shaped on their side; for
// loopback experiments wrap both ends, or one end for an asymmetric
// study). Writes block to model serialization delay; the propagation
// delay is charged once per write burst.
type Conn struct {
	net.Conn
	bk *bucket
}

// Shape wraps c with the profile's bandwidth and latency (a private
// bucket; use Shared to make several connections contend for one
// link).
func Shape(c net.Conn, p Profile) *Conn {
	return &Conn{Conn: c, bk: newBucket(p)}
}

// Shared is one modelled physical link that any number of connections
// share: every wrapped connection drains the same token bucket, so k
// concurrent flows each see ~1/k of the bandwidth — the situation of
// the paper's compute nodes all sending sub-images over one wide-area
// path.
type Shared struct{ bk *bucket }

// NewShared builds a shared link.
func NewShared(p Profile) *Shared { return &Shared{bk: newBucket(p)} }

// Wrap attaches a connection to the shared link.
func (s *Shared) Wrap(c net.Conn) net.Conn { return &Conn{Conn: c, bk: s.bk} }

func (p Profile) burst() float64 {
	if p.Burst > 0 {
		return p.Burst
	}
	return 64 << 10
}

// Write implements net.Conn with token-bucket pacing.
func (c *Conn) Write(b []byte) (int, error) {
	bk := c.bk
	if bk.prof.Bandwidth <= 0 && bk.prof.Latency <= 0 {
		return c.Conn.Write(b)
	}
	bk.mu.Lock()
	now := time.Now()
	// Propagation delay once per burst: if the link has been idle
	// longer than the latency, charge it again.
	if bk.prof.Latency > 0 && now.Sub(bk.lastWrite) > bk.prof.Latency {
		bk.mu.Unlock()
		time.Sleep(bk.prof.Latency)
		bk.mu.Lock()
		now = time.Now()
	}
	bk.lastWrite = now
	written := 0
	for written < len(b) {
		chunk := len(b) - written
		if max := int(bk.prof.burst()); chunk > max {
			chunk = max
		}
		if bk.prof.Bandwidth > 0 {
			for {
				now = time.Now()
				bk.tokens += now.Sub(bk.last).Seconds() * bk.prof.Bandwidth
				bk.last = now
				if bk.tokens > bk.prof.burst() {
					bk.tokens = bk.prof.burst()
				}
				if bk.tokens >= float64(chunk) {
					bk.tokens -= float64(chunk)
					break
				}
				need := (float64(chunk) - bk.tokens) / bk.prof.Bandwidth
				bk.mu.Unlock()
				time.Sleep(time.Duration(need * float64(time.Second)))
				bk.mu.Lock()
			}
		}
		n, err := c.Conn.Write(b[written : written+chunk])
		written += n
		if err != nil {
			bk.mu.Unlock()
			return written, err
		}
	}
	bk.lastWrite = time.Now()
	bk.mu.Unlock()
	return written, nil
}

// take blocks until n tokens accumulate, charging the propagation
// delay once per idle burst — the read-side counterpart of Write's
// pacing loop.
func (bk *bucket) take(n int) {
	bk.mu.Lock()
	now := time.Now()
	if bk.prof.Latency > 0 && now.Sub(bk.lastWrite) > bk.prof.Latency {
		bk.mu.Unlock()
		time.Sleep(bk.prof.Latency)
		bk.mu.Lock()
	}
	bk.lastWrite = time.Now()
	if bk.prof.Bandwidth > 0 {
		remaining := float64(n)
		for remaining > 0 {
			now = time.Now()
			bk.tokens += now.Sub(bk.last).Seconds() * bk.prof.Bandwidth
			bk.last = now
			if bk.tokens > bk.prof.burst() {
				bk.tokens = bk.prof.burst()
			}
			if bk.tokens >= remaining {
				bk.tokens -= remaining
				break
			}
			remaining -= bk.tokens
			bk.tokens = 0
			need := remaining / bk.prof.Bandwidth
			if max := bk.prof.burst() / bk.prof.Bandwidth; need > max {
				need = max
			}
			bk.mu.Unlock()
			time.Sleep(time.Duration(need * float64(time.Second)))
			bk.mu.Lock()
		}
	}
	bk.lastWrite = time.Now()
	bk.mu.Unlock()
}

// readConn shapes reads; see ShapeReads.
type readConn struct {
	net.Conn
	bk *bucket
}

// Read drains the token bucket for every byte delivered.
func (c *readConn) Read(b []byte) (int, error) {
	bk := c.bk
	// Cap each read at the burst so pacing applies per chunk rather
	// than after one huge buffered read.
	if max := int(bk.prof.burst()); bk.prof.Bandwidth > 0 && len(b) > max {
		b = b[:max]
	}
	n, err := c.Conn.Read(b)
	if n > 0 && (bk.prof.Bandwidth > 0 || bk.prof.Latency > 0) {
		bk.take(n)
	}
	return n, err
}

// ShapeReads wraps c so its reads are paced to the profile — emulating
// a slow downlink from the receiving side. Once kernel socket buffers
// fill, TCP backpressure stalls the remote writer, so the peer
// observes the modelled bandwidth without cooperating; the display
// client uses this to join an adaptive daemon over an emulated WAN
// profile.
func ShapeReads(c net.Conn, p Profile) net.Conn {
	return &readConn{Conn: c, bk: newBucket(p)}
}

// Pipe returns a connected in-memory pair with both directions shaped
// to the profile — the standard fixture for transport tests.
func Pipe(p Profile) (client, server net.Conn) {
	a, b := net.Pipe()
	return Shape(a, p), Shape(b, p)
}
