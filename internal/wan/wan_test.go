package wan

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestTransferTime(t *testing.T) {
	p := Profile{Latency: 10 * time.Millisecond, Bandwidth: 1000}
	got := p.TransferTime(500)
	want := 10*time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	// Unlimited bandwidth: latency only.
	u := Profile{Latency: 5 * time.Millisecond}
	if u.TransferTime(1<<20) != 5*time.Millisecond {
		t.Fatal("unlimited transfer time wrong")
	}
}

func TestValidate(t *testing.T) {
	if err := (Profile{Latency: -1}).Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := (Profile{Bandwidth: -5}).Validate(); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	if err := NASAUCD().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"nasa-ucd", "japan-ucd", "lan", "unlimited"} {
		p, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if n != "unlimited" && p.Name != n {
			t.Fatalf("profile %q has name %q", n, p.Name)
		}
	}
	if _, err := ByName("dialup"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestJapanSlowerThanNASA(t *testing.T) {
	n := NASAUCD().TransferTime(196608) // raw 256^2 frame
	j := JapanUCD().TransferTime(196608)
	if j <= n {
		t.Fatalf("Japan link (%v) must be slower than NASA link (%v)", j, n)
	}
	// Paper: X transfer Japan ~2x NASA.
	ratio := float64(j) / float64(n)
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("Japan/NASA transfer ratio %.2f outside [1.5,3]", ratio)
	}
}

// Shaped writes must take approximately size/bandwidth.
func TestShapedThroughput(t *testing.T) {
	p := Profile{Bandwidth: 1e6, Burst: 16 << 10} // 1 MB/s
	a, b := net.Pipe()
	shaped := Shape(a, p)
	const N = 100 << 10 // 100 KB -> ~100 ms
	done := make(chan error, 1)
	go func() {
		_, err := io.CopyN(io.Discard, b, N)
		done <- err
	}()
	start := time.Now()
	buf := make([]byte, N)
	if _, err := shaped.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	el := time.Since(start)
	// Initial bucket holds 16 KB, so expect ~(N-16K)/1MB = 86 ms.
	if el < 60*time.Millisecond || el > 300*time.Millisecond {
		t.Fatalf("100KB at 1MB/s took %v", el)
	}
}

func TestLatencyCharged(t *testing.T) {
	p := Profile{Latency: 50 * time.Millisecond}
	a, b := net.Pipe()
	shaped := Shape(a, p)
	go io.CopyN(io.Discard, b, 4)
	start := time.Now()
	if _, err := shaped.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("latency not charged: %v", el)
	}
}

func TestUnshapedPassThrough(t *testing.T) {
	a, b := net.Pipe()
	shaped := Shape(a, Unlimited())
	go io.CopyN(io.Discard, b, 1<<20)
	start := time.Now()
	buf := make([]byte, 1<<20)
	if _, err := shaped.Write(buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("unshaped write took %v", el)
	}
}

func TestPipeBothEndsWork(t *testing.T) {
	c, s := Pipe(Profile{Bandwidth: 10e6, Burst: 4 << 10})
	msg := []byte("hello over the wan")
	go func() {
		c.Write(msg)
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Fatalf("got %q", buf)
	}
}

// Two connections on a Shared link must split its bandwidth: pushing
// the same total volume through two shared connections concurrently
// takes about as long as pushing it through one.
func TestSharedLinkContention(t *testing.T) {
	const each = 50 << 10 // 50 KB per flow
	prof := Profile{Bandwidth: 1e6, Burst: 4 << 10}

	run := func(flows int, shared *Shared) time.Duration {
		start := time.Now()
		done := make(chan error, flows)
		for i := 0; i < flows; i++ {
			a, b := net.Pipe()
			var w net.Conn
			if shared != nil {
				w = shared.Wrap(a)
			} else {
				w = Shape(a, prof)
			}
			go func() {
				_, err := io.CopyN(io.Discard, b, each)
				done <- err
			}()
			go func() {
				buf := make([]byte, each)
				w.Write(buf)
			}()
		}
		for i := 0; i < flows; i++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	single := run(1, nil)           // 50 KB over a private 1 MB/s link
	both := run(2, NewShared(prof)) // 100 KB over one shared 1 MB/s link
	private := run(2, nil)          // 2 x 50 KB over two private links
	if both.Seconds() < 1.5*single.Seconds() {
		t.Fatalf("shared link did not contend: 2 flows %v vs 1 flow %v", both, single)
	}
	if private.Seconds() > 1.5*single.Seconds() {
		t.Fatalf("private links contended unexpectedly: %v vs %v", private, single)
	}
}

// Shaped reads must take approximately size/bandwidth, whatever the
// writer does.
func TestShapeReadsThroughput(t *testing.T) {
	p := Profile{Bandwidth: 1e6, Burst: 16 << 10} // 1 MB/s
	a, b := net.Pipe()
	shaped := ShapeReads(b, p)
	const N = 100 << 10 // 100 KB -> ~100 ms
	go func() {
		buf := make([]byte, N)
		for sent := 0; sent < N; {
			n, err := a.Write(buf[sent:])
			if err != nil {
				return
			}
			sent += n
		}
	}()
	start := time.Now()
	if _, err := io.CopyN(io.Discard, shaped, N); err != nil {
		t.Fatal(err)
	}
	el := time.Since(start)
	if el < 60*time.Millisecond || el > 300*time.Millisecond {
		t.Fatalf("reading 100KB at 1MB/s took %v", el)
	}
}

func TestShapeReadsUnshapedPassThrough(t *testing.T) {
	a, b := net.Pipe()
	shaped := ShapeReads(b, Profile{})
	go a.Write(make([]byte, 1<<10))
	start := time.Now()
	if _, err := io.CopyN(io.Discard, shaped, 1<<10); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("unshaped read took %v", el)
	}
}
