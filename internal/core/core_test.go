package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	_ "repro/internal/compress/codecs"
	"repro/internal/control"
	"repro/internal/datagen"
	"repro/internal/img"
	"repro/internal/pipeline"
	"repro/internal/tf"
	"repro/internal/volio"
	"repro/internal/wan"
)

func testStore(steps int) volio.Store {
	return volio.NewGenStore(datagen.NewJetScaled(0.12, steps))
}

func collectFrames(t *testing.T, s *Session, n int, timeout time.Duration) []*imgFrame {
	t.Helper()
	var out []*imgFrame
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case fr, ok := <-s.Viewer.Frames():
			if !ok {
				t.Fatalf("frames channel closed after %d frames: viewer err %v", len(out), s.Viewer.Err())
			}
			out = append(out, &imgFrame{id: fr.ID, im: fr.Image})
		case <-deadline:
			t.Fatalf("timed out with %d of %d frames", len(out), n)
		}
	}
	return out
}

type imgFrame struct {
	id uint32
	im *img.Frame
}

func TestEndToEndSession(t *testing.T) {
	const steps = 3
	s, err := StartSession(testStore(steps), SessionOptions{
		Server: ServerOptions{
			P: 4, L: 2, ImageW: 48, ImageH: 48,
			Codec: "jpeg+lzo", Pieces: 1, TF: tf.Jet(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frames := collectFrames(t, s, steps, 20*time.Second)
	seen := map[uint32]bool{}
	for _, f := range frames {
		if f.im.W != 48 || f.im.H != 48 {
			t.Fatalf("frame %d is %dx%d", f.id, f.im.W, f.im.H)
		}
		if seen[f.id] {
			t.Fatalf("duplicate frame %d", f.id)
		}
		seen[f.id] = true
		// A rendered jet frame must have some lit pixels.
		lit := 0
		for _, p := range f.im.Pix {
			if p > 10 {
				lit++
			}
		}
		if lit == 0 {
			t.Fatalf("frame %d is black", f.id)
		}
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := s.Server.Stats().FramesSent.Load(); got != steps {
		t.Fatalf("server sent %d frames", got)
	}
}

func TestParallelCompressionPieces(t *testing.T) {
	const steps = 2
	s, err := StartSession(testStore(steps), SessionOptions{
		Server: ServerOptions{
			P: 4, L: 1, ImageW: 48, ImageH: 48,
			Codec: "jpeg", Pieces: 4, TF: tf.Jet(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frames := collectFrames(t, s, steps, 20*time.Second)
	if len(frames) != steps {
		t.Fatalf("%d frames", len(frames))
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// Frames shipped raw (the X baseline) must match frames shipped
// losslessly compressed bit-for-bit.
func TestRawAndLosslessAgree(t *testing.T) {
	run := func(codec string) *img.Frame {
		s, err := StartSession(testStore(1), SessionOptions{
			Server: ServerOptions{
				P: 4, L: 1, ImageW: 40, ImageH: 40,
				Codec: codec, TF: tf.Jet(),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fr := collectFrames(t, s, 1, 20*time.Second)[0]
		if err := s.Wait(); err != nil {
			t.Fatal(err)
		}
		return fr.im
	}
	a := run("raw")
	b := run("lzo")
	if !a.Equal(b) {
		t.Fatal("raw and lzo frames differ")
	}
}

func TestShapedSessionStillDelivers(t *testing.T) {
	s, err := StartSession(testStore(1), SessionOptions{
		Server: ServerOptions{
			P: 2, L: 1, ImageW: 32, ImageH: 32,
			Codec: "jpeg+lzo", TF: tf.Jet(),
		},
		Link: wan.Profile{Latency: 10 * time.Millisecond, Bandwidth: 500e3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	collectFrames(t, s, 1, 20*time.Second)
}

func TestControlColormapApplies(t *testing.T) {
	// Loop the same step forever; switch colormap mid-stream and
	// verify frames change.
	s, err := StartSession(testStore(1), SessionOptions{
		Server: ServerOptions{
			P: 2, L: 1, ImageW: 32, ImageH: 32,
			Codec: "raw", TF: tf.Grayscale(), Loop: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first := collectFrames(t, s, 1, 20*time.Second)[0]
	if err := s.Viewer.SendControl(control.ColormapMsg(tf.Jet())); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(20 * time.Second)
	for {
		select {
		case fr, ok := <-s.Viewer.Frames():
			if !ok {
				t.Fatalf("stream ended: %v", s.Viewer.Err())
			}
			if !fr.Image.Equal(first.im) {
				s.Server.Stop()
				return // colormap change took effect
			}
		case <-deadline:
			t.Fatal("colormap change never took effect")
		}
	}
}

func TestControlViewApplies(t *testing.T) {
	s, err := StartSession(testStore(1), SessionOptions{
		Server: ServerOptions{
			P: 2, L: 1, ImageW: 32, ImageH: 32,
			Codec: "raw", TF: tf.Jet(), Loop: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first := collectFrames(t, s, 1, 20*time.Second)[0]
	if err := s.Viewer.SendControl(control.ViewMsg(control.ViewEvent{Azimuth: 2.5, Elevation: -0.5, Distance: 2.5})); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(20 * time.Second)
	for {
		select {
		case fr, ok := <-s.Viewer.Frames():
			if !ok {
				t.Fatalf("stream ended: %v", s.Viewer.Err())
			}
			if !fr.Image.Equal(first.im) {
				s.Server.Stop()
				return
			}
		case <-deadline:
			t.Fatal("view change never took effect")
		}
	}
}

func TestServerOptionValidation(t *testing.T) {
	if _, err := NewServer(testStore(1), ServerOptions{}); err == nil {
		t.Fatal("nil TF accepted")
	}
	if _, err := NewServer(testStore(1), ServerOptions{TF: tf.Jet(), Codec: "bogus", DaemonAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := NewServer(testStore(1), ServerOptions{TF: tf.Jet(), P: 4, L: 1, Pieces: 9, DaemonAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("pieces > G accepted")
	}
}

func mkPieces(t *testing.T, w, h, n int) []pipeline.Piece {
	t.Helper()
	regs, err := img.SplitRows(w, h, n)
	if err != nil {
		t.Fatal(err)
	}
	var out []pipeline.Piece
	for i, r := range regs {
		im := img.NewRGBA(r.W(), r.H())
		for j := range im.Pix {
			im.Pix[j] = float32(i+1) / float32(n+1)
		}
		out = append(out, pipeline.Piece{Region: r, Image: im})
	}
	return out
}

func TestMergePieces(t *testing.T) {
	pieces := mkPieces(t, 16, 16, 8)
	merged, err := MergePieces(pieces, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("%d merged pieces", len(merged))
	}
	total := 0
	for _, m := range merged {
		total += m.Region.Pixels()
		if m.Image.W != m.Region.W() || m.Image.H != m.Region.H() {
			t.Fatal("merged size mismatch")
		}
	}
	if total != 16*16 {
		t.Fatalf("merged cover %d px", total)
	}
	// k >= n returns input unchanged.
	same, err := MergePieces(pieces, 8)
	if err != nil || len(same) != 8 {
		t.Fatalf("%v %d", err, len(same))
	}
	// Non-divisible k falls back.
	fall, err := MergePieces(pieces, 3)
	if err != nil || len(fall) != 8 {
		t.Fatalf("fallback: %v %d", err, len(fall))
	}
	if _, err := MergePieces(nil, 1); err == nil {
		t.Fatal("empty pieces accepted")
	}
	if _, err := MergePieces(pieces, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestMergePiecesContentPreserved(t *testing.T) {
	pieces := mkPieces(t, 8, 8, 4)
	merged, err := MergePieces(pieces, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Reassemble both and compare.
	re := func(ps []pipeline.Piece) *img.RGBA {
		out := img.NewRGBA(8, 8)
		for _, p := range ps {
			if err := out.BlitRGBA(p.Image, p.Region); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	a, b := re(pieces), re(merged)
	for i := range a.Pix {
		if math.Abs(float64(a.Pix[i]-b.Pix[i])) > 0 {
			t.Fatal("content changed by merge")
		}
	}
}

func TestControlStrideApplies(t *testing.T) {
	// 8-step dataset, loop mode; after sending stride 4, passes render
	// ceil(8/4) = 2 frames each, so frame IDs keep climbing but the
	// server's per-pass frame count drops. Observe that streaming
	// continues and the server survives the stride switch.
	s, err := StartSession(testStore(8), SessionOptions{
		Server: ServerOptions{
			P: 2, L: 1, ImageW: 24, ImageH: 24,
			Codec: "raw", TF: tf.Jet(), Loop: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	collectFrames(t, s, 2, 20*time.Second)
	if err := s.Viewer.SendControl(control.StrideMsg(4)); err != nil {
		t.Fatal(err)
	}
	// Keep consuming; the stream must continue across the stride
	// change (applied at the next pass).
	collectFrames(t, s, 12, 30*time.Second)
	s.Server.Stop()
}

func TestViewerHistory(t *testing.T) {
	s, err := StartSession(testStore(3), SessionOptions{
		Server: ServerOptions{
			P: 2, L: 1, ImageW: 24, ImageH: 24,
			Codec: "raw", TF: tf.Jet(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frames := collectFrames(t, s, 3, 20*time.Second)
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	h := s.Viewer.History()
	if len(h) != 3 {
		t.Fatalf("history has %d frames", len(h))
	}
	for _, want := range frames {
		got := s.Viewer.Review(want.id)
		if got == nil {
			t.Fatalf("frame %d not reviewable", want.id)
		}
		if !got.Image.Equal(want.im) {
			t.Fatalf("reviewed frame %d differs", want.id)
		}
	}
	if s.Viewer.Review(999) != nil {
		t.Fatal("phantom frame reviewable")
	}
}

// With per-node links (one renderer connection per piece, Figure 2's
// topology) frames must still assemble correctly at the viewer.
func TestNodeLinksDeliverFrames(t *testing.T) {
	const steps = 3
	s, err := StartSession(testStore(steps), SessionOptions{
		Server: ServerOptions{
			P: 4, L: 1, ImageW: 48, ImageH: 48,
			Codec: "jpeg+lzo", Pieces: 4, TF: tf.Jet(),
			NodeLinks: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	frames := collectFrames(t, s, steps, 30*time.Second)
	seen := map[uint32]bool{}
	for _, f := range frames {
		if seen[f.id] {
			t.Fatalf("duplicate frame %d", f.id)
		}
		seen[f.id] = true
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
}

// Node-link frames must be pixel-identical to single-link frames for a
// lossless codec.
func TestNodeLinksMatchSingleLink(t *testing.T) {
	run := func(nodeLinks bool) *img.Frame {
		s, err := StartSession(testStore(1), SessionOptions{
			Server: ServerOptions{
				P: 4, L: 1, ImageW: 40, ImageH: 40,
				Codec: "raw", Pieces: 4, TF: tf.Jet(),
				NodeLinks: nodeLinks,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fr := collectFrames(t, s, 1, 30*time.Second)[0]
		if err := s.Wait(); err != nil {
			t.Fatal(err)
		}
		return fr.im
	}
	a := run(false)
	b := run(true)
	if !a.Equal(b) {
		t.Fatal("node-link frame differs from single-link frame")
	}
}

// Property: for any row tiling and any k, MergePieces preserves pixel
// content exactly (either merged or falling back).
func TestMergePiecesProperty(t *testing.T) {
	f := func(wSeed, hSeed, nSeed, kSeed uint8) bool {
		w := int(wSeed%16) + 4
		h := int(hSeed%16) + 4
		n := int(nSeed%uint8(h)) + 1
		k := int(kSeed%8) + 1
		regs, err := img.SplitRows(w, h, n)
		if err != nil {
			return false
		}
		pieces := make([]pipeline.Piece, n)
		for i, r := range regs {
			im := img.NewRGBA(r.W(), r.H())
			for j := range im.Pix {
				im.Pix[j] = float32((i*131 + j*17) % 255)
			}
			pieces[i] = pipeline.Piece{Region: r, Image: im}
		}
		reassemble := func(ps []pipeline.Piece) *img.RGBA {
			out := img.NewRGBA(w, h)
			for _, p := range ps {
				if err := out.BlitRGBA(p.Image, p.Region); err != nil {
					return nil
				}
			}
			return out
		}
		want := reassemble(pieces)
		merged, err := MergePieces(pieces, k)
		if err != nil {
			return false
		}
		got := reassemble(merged)
		if want == nil || got == nil {
			return false
		}
		for i := range want.Pix {
			if want.Pix[i] != got.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Server-level accel must not change the delivered frames (lossless
// codec, identical pixels).
func TestServerAccelIdentical(t *testing.T) {
	run := func(accel bool) *img.Frame {
		s, err := StartSession(testStore(1), SessionOptions{
			Server: ServerOptions{
				P: 2, L: 1, ImageW: 40, ImageH: 40,
				Codec: "raw", TF: tf.Jet(), Accel: accel,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fr := collectFrames(t, s, 1, 20*time.Second)[0]
		if err := s.Wait(); err != nil {
			t.Fatal(err)
		}
		return fr.im
	}
	if !run(false).Equal(run(true)) {
		t.Fatal("accelerated server frame differs")
	}
}
