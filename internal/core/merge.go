package core

import (
	"fmt"
	"sort"

	"repro/internal/img"
	"repro/internal/pipeline"
)

// MergePieces implements the paper's hybrid compression grouping: "a
// small number of sub-images are combined to form larger sub-images
// before compression". It coalesces the per-node composited pieces
// into k pieces by blitting clusters of adjacent regions into their
// bounding rectangles. Clusters whose pieces do not exactly tile their
// bounding rectangle would corrupt the frame, so the function verifies
// coverage and falls back to the original pieces when a clean k-way
// grouping does not exist for this piece geometry.
func MergePieces(pieces []pipeline.Piece, k int) ([]pipeline.Piece, error) {
	n := len(pieces)
	if n == 0 {
		return nil, fmt.Errorf("core: no pieces")
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: k = %d", k)
	}
	if k >= n {
		return pieces, nil
	}
	if n%k != 0 {
		return pieces, nil // no even grouping; keep full parallelism
	}
	per := n / k
	sorted := make([]pipeline.Piece, n)
	copy(sorted, pieces)
	sort.Slice(sorted, func(a, b int) bool {
		ra, rb := sorted[a].Region, sorted[b].Region
		if ra.Y0 != rb.Y0 {
			return ra.Y0 < rb.Y0
		}
		return ra.X0 < rb.X0
	})
	out := make([]pipeline.Piece, 0, k)
	for c := 0; c < k; c++ {
		cluster := sorted[c*per : (c+1)*per]
		bound := cluster[0].Region
		area := 0
		for _, p := range cluster {
			r := p.Region
			if r.X0 < bound.X0 {
				bound.X0 = r.X0
			}
			if r.Y0 < bound.Y0 {
				bound.Y0 = r.Y0
			}
			if r.X1 > bound.X1 {
				bound.X1 = r.X1
			}
			if r.Y1 > bound.Y1 {
				bound.Y1 = r.Y1
			}
			area += r.Pixels()
		}
		if area != bound.Pixels() {
			// The cluster does not tile a rectangle; merging would
			// leave holes. Fall back to per-node pieces.
			return pieces, nil
		}
		merged := img.NewRGBA(bound.W(), bound.H())
		for _, p := range cluster {
			rel := img.Region{
				X0: p.Region.X0 - bound.X0, Y0: p.Region.Y0 - bound.Y0,
				X1: p.Region.X1 - bound.X0, Y1: p.Region.Y1 - bound.Y0,
			}
			if err := merged.BlitRGBA(p.Image, rel); err != nil {
				return nil, fmt.Errorf("core: merging pieces: %w", err)
			}
		}
		out = append(out, pipeline.Piece{Region: bound, Image: merged})
	}
	return out, nil
}
