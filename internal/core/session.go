package core

import (
	"net"

	"repro/internal/display"
	"repro/internal/transport"
	"repro/internal/volio"
	"repro/internal/wan"
)

// Session wires a complete local system: display daemon, render
// server, and viewer, with the server→daemon leg shaped to a WAN
// profile — the standard fixture for the paper's transport
// experiments and for the examples.
type Session struct {
	Daemon *transport.Daemon
	Server *Server
	Viewer *display.Viewer

	serverErr chan error
}

// SessionOptions configures StartSession.
type SessionOptions struct {
	// Server holds the render-side options; DaemonAddr and Wrap are
	// filled in by StartSession.
	Server ServerOptions
	// Link shapes the renderer→daemon connection (the wide-area leg
	// in the paper's topology runs daemon→display; shaping the
	// renderer leg is equivalent for a single viewer and keeps the
	// daemon co-located with the display as in Figure 2).
	Link wan.Profile
}

// StartSession launches daemon, server, and viewer on loopback.
func StartSession(store volio.Store, opt SessionOptions) (*Session, error) {
	d, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sopt := opt.Server
	sopt.DaemonAddr = d.Addr().String()
	if opt.Link.Bandwidth > 0 || opt.Link.Latency > 0 {
		// One shared bucket: all renderer connections (one per node
		// with NodeLinks) contend for the same modelled physical link.
		shared := wan.NewShared(opt.Link)
		sopt.Wrap = func(c net.Conn) net.Conn { return shared.Wrap(c) }
	}
	srv, err := NewServer(store, sopt)
	if err != nil {
		d.Close()
		return nil, err
	}
	dispEp, err := transport.Dial(d.Addr().String(), transport.RoleDisplay, nil)
	if err != nil {
		srv.Stop()
		d.Close()
		return nil, err
	}
	s := &Session{
		Daemon:    d,
		Server:    srv,
		Viewer:    display.NewViewer(dispEp),
		serverErr: make(chan error, 1),
	}
	go func() { s.serverErr <- srv.Run() }()
	return s, nil
}

// Wait blocks until the server's streaming pass finishes and returns
// its error.
func (s *Session) Wait() error { return <-s.serverErr }

// Close tears the whole session down.
func (s *Session) Close() error {
	s.Server.Stop()
	s.Viewer.Close()
	err := s.Daemon.Close()
	select {
	case e := <-s.serverErr:
		if e != nil && err == nil {
			err = e
		}
	default:
	}
	return err
}
