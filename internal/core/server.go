// Package core ties the whole system together into the paper's
// remote-visualization architecture (Figure 2): a render Server that
// runs the pipelined parallel renderer, compresses composited
// sub-images in parallel, and ships them through the display daemon to
// remote viewers; and a Session helper that wires daemon + server +
// viewer over (optionally WAN-shaped) loopback sockets for experiments
// and examples.
package core

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compress"
	// Register the full codec set: servers switch codecs by name on
	// user-control messages.
	_ "repro/internal/compress/codecs"
	"repro/internal/control"
	"repro/internal/img"
	"repro/internal/obs"
	"repro/internal/obs/provenance"
	"repro/internal/pipeline"
	"repro/internal/render"
	"repro/internal/tf"
	"repro/internal/transport"
	"repro/internal/vol"
	"repro/internal/volio"
)

// ServerOptions configures a render server.
type ServerOptions struct {
	// DaemonAddr is the display daemon's address.
	DaemonAddr string
	// Wrap optionally wraps the daemon connection (e.g. wan.Shape).
	Wrap func(net.Conn) net.Conn
	// P and L are the processor count and group count.
	P, L int
	// ImageW, ImageH set the output image size.
	ImageW, ImageH int
	// Codec is the initial compression ("raw" models the X baseline).
	Codec string
	// Pieces is the number of compressed sub-images per frame: 1
	// compresses the assembled image, G compresses every node's
	// piece independently, intermediate values use the paper's
	// hybrid grouping. 0 means 1.
	Pieces int
	// TF is the initial transfer function.
	TF *tf.TF
	// View is the initial orbit view; zero value gets a default.
	View control.ViewEvent
	// Render are the ray-casting options (zero = defaults).
	Render render.Options
	// Steps caps steps per pass (0 = all); Loop repeats passes until
	// Stop, re-rendering the animation.
	Steps int
	Loop  bool
	// RegionInput enables the §7.1 parallel-I/O input path (requires
	// the store to support region reads).
	RegionInput bool
	// NodeLinks opens one renderer-interface connection per
	// compressed piece, as in the paper's Figure 2 where each compute
	// node talks to the daemon itself; pieces of a frame then travel
	// concurrently. Combine with a wan.Shared wrap so the flows
	// contend for one modelled physical link.
	NodeLinks bool
	// Accel enables per-brick empty-space skipping on the render
	// nodes (identical images, fewer samples).
	Accel bool
	// Reconnect, when set, makes the daemon link a resumable session:
	// on connection loss it redials with exponential backoff + jitter
	// per the policy, re-advertises codecs, and resumes streaming.
	// Frames produced while the link is down are dropped (counted in
	// FramesDropped) instead of aborting the run. NodeLinks side
	// connections are not session-managed.
	Reconnect *transport.RetryPolicy
	// Heartbeat, with Reconnect set, pings the daemon on this
	// interval so a stalled (partitioned) link is detected and
	// redialed even when TCP keeps the socket open.
	Heartbeat time.Duration
	// Breaker, with Reconnect set, circuit-breaks the daemon link:
	// after its failure threshold trips, reconnect attempts are refused
	// (still consuming retry budget) until its cooldown elapses and a
	// half-open probe succeeds, so a hard-down daemon is not hammered
	// at full dial rate. nil = no breaker.
	Breaker transport.UpstreamBreaker
	// Background is the gray level composited behind the volume.
	Background float32
	// Trace, when set, records per-group pipeline stage spans plus the
	// server's own encode/ship spans (track "server").
	Trace *obs.Tracer
	// Metrics, when set, receives pipeline stage histograms and the
	// server counters (see Server.Instrument).
	Metrics *obs.Registry
	// Prov, when set, records origin frame-provenance events
	// (rendered/composited/compressed/sent) and makes every outgoing
	// image carry a wire trace context (hop 0 = this server), so
	// daemons, relays and viewers downstream can log against it.
	Prov *provenance.Log
}

// ServerStats counts server activity.
type ServerStats struct {
	FramesSent atomic.Int64
	BytesSent  atomic.Int64
	EncodeNS   atomic.Int64
	RenderNS   atomic.Int64
	// FramesDropped counts frames discarded while the daemon link was
	// reconnecting (Reconnect mode only).
	FramesDropped atomic.Int64
}

// Server is the render-cluster side of the system.
type Server struct {
	opt   ServerOptions
	store volio.Store
	ep    transport.Link
	// sess is ep when Reconnect is enabled (for terminal-error and
	// health checks); nil otherwise.
	sess *transport.Session
	// nodeEps are the extra per-node connections (NodeLinks); piece i
	// of a frame travels over connection i mod len(eps).
	nodeEps []*transport.Endpoint
	ctrl    *control.State

	mu      sync.Mutex
	view    control.ViewEvent
	curTF   *tf.TF
	codec   compress.FrameCodec
	stride  int
	stopped bool

	frameID atomic.Uint32
	// traceID identifies this server's frame stream in wire trace
	// contexts (random per process lifetime).
	traceID uint64
	stats   ServerStats
}

// NewServer dials the daemon and prepares a server.
func NewServer(store volio.Store, opt ServerOptions) (*Server, error) {
	if opt.TF == nil {
		return nil, fmt.Errorf("core: nil transfer function")
	}
	if opt.Codec == "" {
		opt.Codec = "jpeg+lzo"
	}
	if opt.Pieces == 0 {
		opt.Pieces = 1
	}
	g := 0
	if opt.L > 0 {
		g = opt.P / opt.L
	}
	if opt.Pieces < 1 || (g > 0 && opt.Pieces > g) {
		return nil, fmt.Errorf("core: pieces %d out of [1,%d]", opt.Pieces, g)
	}
	if opt.View == (control.ViewEvent{}) {
		opt.View = control.ViewEvent{Azimuth: 0.6, Elevation: 0.35, Distance: 1.8}
	}
	codec, err := compress.ByName(opt.Codec)
	if err != nil {
		return nil, err
	}
	// Advertise the codec families this server can produce: the
	// adaptive stream broker restricts its per-client quality ladder
	// to these; the plain daemon ignores the message.
	advertise := func(ep *transport.Endpoint) error {
		return ep.Send(transport.Message{Type: transport.MsgAdvertise, Payload: transport.MarshalAdvertise(compress.Names())})
	}
	var ep transport.Link
	var sess *transport.Session
	if opt.Reconnect != nil {
		// Resumable session: every (re)connect re-runs the handshake
		// and re-advertises, so the broker's quality ladder restarts
		// cleanly when the server rejoins.
		sess, err = transport.NewSession(transport.SessionConfig{
			Role:      transport.RoleRenderer,
			Addr:      opt.DaemonAddr,
			Wrap:      opt.Wrap,
			Retry:     *opt.Reconnect,
			Heartbeat: opt.Heartbeat,
			Breaker:   opt.Breaker,
			OnConnect: advertise,
		})
		if err != nil {
			return nil, err
		}
		ep = sess
	} else {
		e, err := transport.Dial(opt.DaemonAddr, transport.RoleRenderer, opt.Wrap)
		if err != nil {
			return nil, err
		}
		if err := advertise(e); err != nil {
			e.Close()
			return nil, err
		}
		ep = e
	}
	s := &Server{
		opt:   opt,
		store: store,
		ep:    ep,
		sess:  sess,
		ctrl:  control.NewState(),
		view:  opt.View,
		curTF: opt.TF,
		codec: codec,
	}
	if opt.Prov != nil {
		s.traceID = rand.Uint64() | 1
	}
	if opt.NodeLinks && opt.Pieces > 1 {
		for i := 1; i < opt.Pieces; i++ {
			nep, err := transport.Dial(opt.DaemonAddr, transport.RoleRenderer, opt.Wrap)
			if err != nil {
				ep.Close()
				for _, e := range s.nodeEps {
					e.Close()
				}
				return nil, err
			}
			s.nodeEps = append(s.nodeEps, nep)
		}
	}
	s.Instrument(opt.Metrics)
	go s.controlLoop()
	return s, nil
}

// endpointFor returns the connection piece i travels on.
func (s *Server) endpointFor(i int) transport.Link {
	if len(s.nodeEps) == 0 || i == 0 {
		return s.ep
	}
	return s.nodeEps[(i-1)%len(s.nodeEps)]
}

// Stats exposes the server counters.
func (s *Server) Stats() *ServerStats { return &s.stats }

// Instrument registers the server counters on a metrics registry.
// Called automatically by NewServer when Options.Metrics is set; safe
// to call while running.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := &s.stats
	reg.CounterFunc("server_frames_sent_total",
		"Frames compressed and shipped to the display daemon.", st.FramesSent.Load)
	reg.CounterFunc("server_bytes_sent_total",
		"Compressed frame bytes shipped to the display daemon.", st.BytesSent.Load)
	reg.GaugeFunc("server_encode_seconds_total",
		"Cumulative frame compression time in seconds.", func() float64 {
			return time.Duration(st.EncodeNS.Load()).Seconds()
		})
	reg.GaugeFunc("server_render_seconds_total",
		"Cumulative render+composite time in seconds.", func() float64 {
			return time.Duration(st.RenderNS.Load()).Seconds()
		})
	reg.CounterFunc("server_frames_dropped_total",
		"Frames discarded while the daemon link was reconnecting.", st.FramesDropped.Load)
}

// LinkState reports the daemon-link health (zero value when the
// server runs without Reconnect).
func (s *Server) LinkState() transport.SessionState {
	if s.sess == nil {
		return transport.SessionState{Connected: true}
	}
	return s.sess.State()
}

// controlLoop ingests remote callbacks from the daemon.
func (s *Server) controlLoop() {
	for m := range s.ep.Inbox() {
		if m.Type != transport.MsgControl {
			continue
		}
		cm, err := transport.UnmarshalControl(m.Payload)
		if err != nil {
			continue
		}
		// Buffer only; applied between frames (paper §5).
		_ = s.ctrl.Ingest(cm)
	}
}

// applyControl drains buffered user input into the active state.
func (s *Server) applyControl() {
	p := s.ctrl.Apply()
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.View != nil {
		s.view = *p.View
	}
	if p.Colormap != nil {
		s.curTF = p.Colormap
	}
	if p.Codec != "" {
		if c, err := compress.ByName(p.Codec); err == nil {
			s.codec = c
		}
	}
	if p.Stride > 0 {
		s.stride = p.Stride
	}
}

// Stop ends Run after the current frame and closes the connections.
func (s *Server) Stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.ep.Close()
	for _, e := range s.nodeEps {
		e.Close()
	}
}

func (s *Server) isStopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// Run renders and streams until the pass completes (or forever with
// Loop) — call Stop from another goroutine to end it. Preview-mode
// stride changes take effect at the next pass.
func (s *Server) Run() error {
	for {
		s.mu.Lock()
		stride := s.stride
		s.mu.Unlock()
		store := volio.Strided(s.store, stride)
		steps := s.opt.Steps
		if stride > 1 && steps > 0 {
			steps = (steps + stride - 1) / stride
		}
		popt := pipeline.Options{
			P: s.opt.P, L: s.opt.L,
			ImageW: s.opt.ImageW, ImageH: s.opt.ImageH,
			TF:          s.opt.TF,
			Render:      s.opt.Render,
			Steps:       steps,
			EmitPieces:  true,
			RegionInput: s.opt.RegionInput,
			Accel:       s.opt.Accel,
			Trace:       s.opt.Trace,
			Metrics:     s.opt.Metrics,
			TFFn: func(step int) *tf.TF {
				s.mu.Lock()
				defer s.mu.Unlock()
				return s.curTF
			},
			CameraFn: func(step int, d vol.Dims) (*render.Camera, error) {
				s.mu.Lock()
				v := s.view
				s.mu.Unlock()
				return render.NewOrbitCamera(d, v.Azimuth, v.Elevation, v.Distance)
			},
			BeforeStep: func(step int) {
				s.applyControl()
				for !s.ctrl.Running() && !s.isStopped() {
					time.Sleep(5 * time.Millisecond)
					s.applyControl()
				}
			},
		}
		_, err := pipeline.Run(store, popt, s.sendFrame)
		if err != nil {
			if s.isStopped() {
				return nil
			}
			return err
		}
		if !s.opt.Loop || s.isStopped() {
			return nil
		}
	}
}

// sendFrame compresses a frame's pieces (hybrid-grouped to
// opt.Pieces) and ships them to the daemon.
func (s *Server) sendFrame(f *pipeline.Frame) error {
	if s.isStopped() {
		return fmt.Errorf("core: server stopped")
	}
	if s.sess != nil {
		if err := s.sess.Err(); err != nil {
			// Reconnection gave up: stop rendering into the void.
			return fmt.Errorf("core: daemon link lost: %w", err)
		}
	}
	s.stats.RenderNS.Add(int64(f.RenderTime + f.CompositeTime))
	defer s.opt.Trace.Begin("server", "core", "ship", "step", f.Step)()
	pieces, err := MergePieces(f.Pieces, s.opt.Pieces)
	if err != nil {
		return err
	}
	s.mu.Lock()
	codec := s.codec
	s.mu.Unlock()
	id := s.frameID.Add(1) - 1
	var tc *transport.TraceCtx
	if s.traceID != 0 {
		origin := time.Now().UnixNano()
		tc = &transport.TraceCtx{TraceID: s.traceID, FrameID: id, OriginUnixNano: origin}
		// The pipeline delivered a composited frame; back-date the
		// render mark by the composite stage so the origin timeline
		// shows both stages.
		s.opt.Prov.Record(provenance.Event{
			Trace: s.traceID, Frame: id, Event: provenance.EvRendered,
			UnixNano: origin - int64(f.CompositeTime),
		})
		s.opt.Prov.Record(provenance.Event{
			Trace: s.traceID, Frame: id, Event: provenance.EvComposited, UnixNano: origin,
		})
	}
	// With per-node links the pieces are compressed and shipped
	// concurrently, as the paper's compute nodes do ("as soon as a
	// processor completes the sub-image it is responsible for
	// compositing, it compresses and sends the compressed
	// sub-image").
	errs := make([]error, len(pieces))
	var wg sync.WaitGroup
	for i, p := range pieces {
		send := func(i int, p pipeline.Piece) {
			// Pool-backed conversion: the frame only lives until the
			// encode below, and SendImage writes synchronously, so
			// both the frame and the encoded payload recycle at the
			// end of the call — the per-piece path allocates nothing
			// at steady state.
			frame := p.Image.ToFrameInto(img.GetFrameRaw(p.Image.W, p.Image.H), s.opt.Background)
			defer img.PutFrame(frame)
			t0 := time.Now()
			data, err := codec.EncodeFrame(frame)
			if err != nil {
				errs[i] = err
				return
			}
			defer compress.Recycle(data)
			s.stats.EncodeNS.Add(int64(time.Since(t0)))
			msg := &transport.ImageMsg{
				FrameID:    id,
				PieceIndex: uint16(i),
				PieceCount: uint16(len(pieces)),
				X0:         uint16(p.Region.X0), Y0: uint16(p.Region.Y0),
				X1: uint16(p.Region.X1), Y1: uint16(p.Region.Y1),
				W: uint16(s.opt.ImageW), H: uint16(s.opt.ImageH),
				Codec: codec.Name(),
				Data:  data,
			}
			var out transport.Message
			out.Type = transport.MsgImage
			if out.Payload, err = msg.Marshal(); err != nil {
				errs[i] = err
				return
			}
			if tc != nil {
				s.opt.Prov.Record(provenance.Event{
					Trace: s.traceID, Frame: id, Event: provenance.EvCompressed,
					Bytes: len(data), Cause: codec.Name(),
				})
				// Downstream processes hold the frame at hop 1.
				fwd := *tc
				fwd.Hop = 1
				out.Trace = &fwd
			}
			if err := s.endpointFor(i).Send(out); err != nil {
				// In Reconnect mode a downed link degrades to frame
				// drops: the session is redialing in the background
				// (or has terminally failed, which Run surfaces), and
				// the animation resumes on rejoin.
				if s.sess != nil {
					s.stats.FramesDropped.Add(1)
					return
				}
				errs[i] = err
				return
			}
			if tc != nil {
				s.opt.Prov.Record(provenance.Event{
					Trace: s.traceID, Frame: id, Event: provenance.EvSent, Bytes: len(out.Payload),
				})
			}
			s.stats.BytesSent.Add(int64(len(data)))
		}
		if len(s.nodeEps) > 0 {
			wg.Add(1)
			go func(i int, p pipeline.Piece) {
				defer wg.Done()
				send(i, p)
			}(i, p)
		} else {
			send(i, p)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.stats.FramesSent.Add(1)
	return nil
}
