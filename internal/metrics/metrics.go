// Package metrics provides the timing and reporting utilities the
// experiment harness uses: sample accumulators with summary
// statistics, and fixed-width table/series formatters that print rows
// in the shape of the paper's tables and figures.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sample accumulates float64 observations.
type Sample struct {
	xs []float64
	// sorted caches a sorted copy of xs for Percentile; dirty marks it
	// stale after an Add.
	sorted []float64
	dirty  bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.dirty = true
}

// AddDuration appends a duration in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for empty samples).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range s.xs {
		t += x
	}
	return t / float64(len(s.xs))
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	var t float64
	for _, x := range s.xs {
		t += (x - m) * (x - m)
	}
	return math.Sqrt(t / float64(len(s.xs)-1))
}

// Min returns the smallest observation (0 for empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 for empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by
// nearest-rank on a cached sorted copy, rebuilt only after new
// observations arrive.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if s.dirty || len(s.sorted) != len(s.xs) {
		s.sorted = append(s.sorted[:0], s.xs...)
		sort.Float64s(s.sorted)
		s.dirty = false
	}
	sorted := s.sorted
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 {
	var t float64
	for _, x := range s.xs {
		t += x
	}
	return t
}

// Summary condenses a sample into the statistics the observability
// registry exposes for histograms.
type Summary struct {
	N                       int
	Mean, Sum               float64
	P50, P95, P99, Min, Max float64
}

// Summary computes n/mean/p50/p95/p99/min/max in one pass over the
// sorted cache.
func (s *Sample) Summary() Summary {
	return Summary{
		N:    s.N(),
		Mean: s.Mean(),
		Sum:  s.Sum(),
		P50:  s.Percentile(50),
		P95:  s.Percentile(95),
		P99:  s.Percentile(99),
		Min:  s.Min(),
		Max:  s.Max(),
	}
}

// Table prints aligned columns, paper-style.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v, float64 with %g
// precision via Cell helpers where needed.
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// Rowf appends a row of formatted values. The format string is split
// on whitespace into one fragment per cell and each fragment is
// formatted with the arguments its verbs consume, so a formatted cell
// may itself contain spaces.
func (t *Table) Rowf(format string, args ...any) {
	fragments := strings.Fields(format)
	row := make([]string, 0, len(fragments))
	for _, frag := range fragments {
		n := countVerbs(frag)
		if n > len(args) {
			n = len(args)
		}
		row = append(row, fmt.Sprintf(frag, args[:n]...))
		args = args[n:]
	}
	t.rows = append(t.rows, row)
}

// countVerbs counts the formatting verbs in a fragment ("%%" escapes
// excluded).
func countVerbs(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '%' {
			if i+1 < len(s) && s[i+1] == '%' {
				i++
				continue
			}
			n++
		}
	}
	return n
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(c)
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := line(t.header); err != nil {
		return err
	}
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Write(&b)
	return b.String()
}

// Series is an (x, y) sequence for figure-style output.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// ArgminY returns the x at the minimum y (NaN for empty series).
func (s *Series) ArgminY() float64 {
	if len(s.Y) == 0 {
		return math.NaN()
	}
	best := 0
	for i, y := range s.Y {
		if y < s.Y[best] {
			best = i
		}
	}
	return s.X[best]
}

// WriteSeries prints one or more series sharing an x-axis as columns:
// x, then one y column per series.
func WriteSeries(w io.Writer, xLabel string, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	header := []string{xLabel}
	for _, s := range series {
		header = append(header, s.Name)
	}
	t := NewTable(header...)
	for i := range series[0].X {
		row := []string{trimFloat(series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.3f", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Row(row...)
	}
	return t.Write(w)
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// GaugeSet is a concurrency-safe set of named float64 gauges — the
// live per-client instrumentation surface of the streaming subsystem
// (estimated bandwidth, chosen quality, drops, cache hit rate, ...).
type GaugeSet struct {
	mu   sync.RWMutex
	vals map[string]float64
}

// NewGaugeSet returns an empty gauge set.
func NewGaugeSet() *GaugeSet {
	return &GaugeSet{vals: map[string]float64{}}
}

// Set stores a gauge value.
func (g *GaugeSet) Set(name string, v float64) {
	g.mu.Lock()
	g.vals[name] = v
	g.mu.Unlock()
}

// Add increments a gauge by d (creating it at d).
func (g *GaugeSet) Add(name string, d float64) {
	g.mu.Lock()
	g.vals[name] += d
	g.mu.Unlock()
}

// Get reads a gauge (0 if unset).
func (g *GaugeSet) Get(name string) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.vals[name]
}

// Snapshot copies every gauge.
func (g *GaugeSet) Snapshot() map[string]float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]float64, len(g.vals))
	for k, v := range g.vals {
		out[k] = v
	}
	return out
}

// Names returns the gauge names, sorted.
func (g *GaugeSet) Names() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.vals))
	for k := range g.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stopwatch measures named phases of a repeated operation.
type Stopwatch struct {
	start  time.Time
	phases map[string]*Sample
}

// NewStopwatch returns a ready stopwatch.
func NewStopwatch() *Stopwatch {
	return &Stopwatch{phases: map[string]*Sample{}}
}

// Start begins a lap.
func (s *Stopwatch) Start() { s.start = time.Now() }

// Lap records the time since Start (or the previous Lap) under name.
func (s *Stopwatch) Lap(name string) time.Duration {
	now := time.Now()
	d := now.Sub(s.start)
	s.start = now
	p := s.phases[name]
	if p == nil {
		p = &Sample{}
		s.phases[name] = p
	}
	p.AddDuration(d)
	return d
}

// Phase returns the sample for a phase name (nil if never lapped).
func (s *Stopwatch) Phase(name string) *Sample { return s.phases[name] }
