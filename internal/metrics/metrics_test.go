package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSampleStats(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample must be zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if math.Abs(s.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std = %v", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %v %v", s.Min(), s.Max())
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(95); got != 95 {
		t.Fatalf("p95 = %v", got)
	}
}

func TestPercentileCacheInvalidation(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	// New observations must invalidate the sorted cache.
	s.Add(42)
	if got := s.Percentile(100); got != 42 {
		t.Fatalf("p100 after Add = %v (stale cache)", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	// The source order must be preserved (only the cache is sorted).
	s.Add(0)
	if s.xs[len(s.xs)-2] != 42 || s.xs[0] != 1 {
		t.Fatalf("xs reordered: %v", s.xs)
	}
}

func TestSummary(t *testing.T) {
	var s Sample
	if sum := s.Summary(); sum.N != 0 || sum.Mean != 0 || sum.Max != 0 {
		t.Fatalf("empty summary = %+v", sum)
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	sum := s.Summary()
	if sum.N != 100 || sum.Mean != 50.5 || sum.Sum != 5050 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.P50 != 50 || sum.P95 != 95 || sum.P99 != 99 {
		t.Fatalf("quantiles = %+v", sum)
	}
	if sum.Min != 1 || sum.Max != 100 {
		t.Fatalf("min/max = %+v", sum)
	}
}

func TestRowfCellsWithSpaces(t *testing.T) {
	tab := NewTable("codec", "size", "note")
	tab.Rowf("%s %d %s", "jpeg lzo chain", 256, "two phase")
	tab.Rowf("%s %.2f%% %s", "raw", 99.5, "baseline")
	out := tab.String()
	if !strings.Contains(out, "jpeg lzo chain") {
		t.Fatalf("cell with spaces split:\n%s", out)
	}
	if !strings.Contains(out, "two phase") {
		t.Fatalf("trailing cell with spaces split:\n%s", out)
	}
	if !strings.Contains(out, "99.50%") {
		t.Fatalf("%%%% escape mishandled:\n%s", out)
	}
	// Each Rowf row must have exactly one entry per header column.
	for _, r := range tab.rows {
		if len(r) != 3 {
			t.Fatalf("row has %d cells: %q", len(r), r)
		}
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("method", "size", "bytes")
	tab.Row("raw", "128", "49152")
	tab.Row("jpeg+lzo", "1024", "18484")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// All lines equal width (right-aligned columns).
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Fatalf("misaligned table:\n%s", out)
		}
	}
	if !strings.Contains(out, "jpeg+lzo") {
		t.Fatal("row missing")
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "overall"}
	s.Add(1, 100)
	s.Add(2, 60)
	s.Add(4, 40)
	s.Add(8, 55)
	if s.ArgminY() != 4 {
		t.Fatalf("argmin = %v", s.ArgminY())
	}
	empty := &Series{}
	if !math.IsNaN(empty.ArgminY()) {
		t.Fatal("empty argmin must be NaN")
	}
	var b strings.Builder
	s2 := &Series{Name: "latency", X: s.X, Y: []float64{1, 2, 3, 4}}
	if err := WriteSeries(&b, "L", s, s2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "overall") || !strings.Contains(out, "latency") {
		t.Fatalf("headers missing:\n%s", out)
	}
	if !strings.Contains(out, "60.000") {
		t.Fatalf("values missing:\n%s", out)
	}
}

func TestStopwatch(t *testing.T) {
	sw := NewStopwatch()
	sw.Start()
	time.Sleep(5 * time.Millisecond)
	d := sw.Lap("render")
	if d < 4*time.Millisecond {
		t.Fatalf("lap = %v", d)
	}
	time.Sleep(2 * time.Millisecond)
	sw.Lap("send")
	sw.Start()
	time.Sleep(5 * time.Millisecond)
	sw.Lap("render")
	if sw.Phase("render").N() != 2 {
		t.Fatalf("render laps = %d", sw.Phase("render").N())
	}
	if sw.Phase("send").N() != 1 {
		t.Fatal("send laps")
	}
	if sw.Phase("missing") != nil {
		t.Fatal("missing phase must be nil")
	}
}

func TestGaugeSet(t *testing.T) {
	g := NewGaugeSet()
	if g.Get("missing") != 0 {
		t.Fatal("unset gauge not zero")
	}
	g.Set("bw", 100)
	g.Add("bw", 50)
	g.Add("drops", 1)
	if g.Get("bw") != 150 || g.Get("drops") != 1 {
		t.Fatalf("bw=%v drops=%v", g.Get("bw"), g.Get("drops"))
	}
	snap := g.Snapshot()
	g.Set("bw", 0)
	if snap["bw"] != 150 {
		t.Fatalf("snapshot not a copy: %v", snap)
	}
	names := g.Names()
	if len(names) != 2 || names[0] != "bw" || names[1] != "drops" {
		t.Fatalf("names = %v", names)
	}
	// Concurrent use is the point of the type.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				g.Add("n", 1)
				_ = g.Get("n")
				_ = g.Snapshot()
			}
		}()
	}
	wg.Wait()
	if g.Get("n") != 800 {
		t.Fatalf("n = %v", g.Get("n"))
	}
}
