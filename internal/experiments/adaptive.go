package experiments

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/compress"
	"repro/internal/display"
	"repro/internal/img"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/transport"
	"repro/internal/wan"
)

// AdaptiveClient is one display session's outcome in the adaptive
// streaming experiment.
type AdaptiveClient struct {
	Link string `json:"link"`
	// Point is the session's final operating point (codec@quality).
	Point string `json:"point"`
	// FPS is the achieved display rate (first to last frame arrival).
	FPS float64 `json:"fps"`
	// Frames received and frames the broker dropped for this client.
	Frames int     `json:"frames"`
	Drops  int64   `json:"drops"`
	KBs    float64 `json:"est_bandwidth_kb_s"`
	// FirstFrameS is the time from animation start to the first usable
	// frame on screen. Under adaptive control the broker's cold-start
	// probe ships the progressive preview rung, so this stays sub-second
	// even on the Japan link; the fixed top-quality baseline pays a full
	// lossless frame before anything paints.
	FirstFrameS float64 `json:"first_frame_s"`
	// Refinements counts progressive in-place refinements delivered on
	// top of the counted frames.
	Refinements int `json:"refinements"`
}

// AdaptiveResult is the full adaptive-streaming evaluation: 8 mixed
// clients under adaptive control vs a fixed-quality baseline, plus the
// encode-once fan-out cache contrast.
type AdaptiveResult struct {
	Adaptive []AdaptiveClient `json:"adaptive"`
	Fixed    []AdaptiveClient `json:"fixed"`
	// Japan-link frame rates, adaptive vs fixed, and their ratio (the
	// acceptance target is >= 2x).
	JapanAdaptiveFPS float64 `json:"japan_adaptive_fps"`
	JapanFixedFPS    float64 `json:"japan_fixed_fps"`
	JapanSpeedup     float64 `json:"japan_speedup"`
	// Japan-link time to first usable frame: adaptive (cold-start
	// progressive preview probe) vs the fixed top-quality baseline.
	// Acceptance target: preview under 1 s, fixed multi-second.
	JapanPreviewS    float64 `json:"japan_preview_s"`
	JapanFixedFirstS float64 `json:"japan_fixed_first_s"`
	// Encode invocations for 8 same-profile clients with the fan-out
	// cache vs encode-per-client, and the savings ratio (target >= 4x).
	CacheEncodes   int64   `json:"cache_encodes"`
	NoCacheEncodes int64   `json:"nocache_encodes"`
	EncodeSavings  float64 `json:"encode_savings"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEvictions int64   `json:"cache_evictions"`
}

// streamSession is the measured outcome of one broker run.
type streamSession struct {
	Clients []AdaptiveClient
	Encodes int64
	Drops   int64
	Hits    int64
	Misses  int64
	Evicts  int64
}

// sessionDrained reports whether every client has disposed of every
// source frame (sent or dropped) and holds an empty queue.
func sessionDrained(b *stream.Broker, n, frames int) bool {
	snaps := b.ClientSnapshots()
	if len(snaps) != n {
		return false
	}
	for _, s := range snaps {
		if s.QueueLen > 0 || s.FramesSent+s.Drops < int64(frames) {
			return false
		}
	}
	return true
}

// runStreamSession stands up a stream.Broker on loopback TCP, attaches
// one renderer and one display viewer per link profile (each display's
// broker-side connection wrapped in its wan shape, so the daemon->
// viewer direction is the shaped one), streams `frames` raw frames
// with `gap` between them, lets the per-client queues drain, and
// returns per-client achieved rates plus broker counters.
func runStreamSession(cfg stream.Config, links []wan.Profile, src *img.Frame, frames int, gap, maxDrain time.Duration) (*streamSession, error) {
	b := stream.NewBroker(cfg)
	defer b.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()

	// Dial/accept pairs sequentially so link assignment is
	// deterministic; the broker never owns the listener.
	pair := func(link *wan.Profile, role transport.Role) (*transport.Endpoint, error) {
		type acc struct {
			conn net.Conn
			err  error
		}
		ch := make(chan acc, 1)
		go func() {
			c, err := ln.Accept()
			ch <- acc{c, err}
		}()
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		a := <-ch
		if a.err != nil {
			raw.Close()
			return nil, a.err
		}
		server := a.conn
		if link != nil {
			server = wan.Shape(server, *link)
		}
		b.ServeConn(server)
		return transport.NewEndpoint(raw, role)
	}

	rend, err := pair(nil, transport.RoleRenderer)
	if err != nil {
		return nil, err
	}
	defer rend.Close()

	viewers := make([]*display.Viewer, len(links))
	var wg sync.WaitGroup
	for i, link := range links {
		link := link
		ep, err := pair(&link, transport.RoleDisplay)
		if err != nil {
			return nil, err
		}
		v := display.NewViewer(ep)
		viewers[i] = v
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range v.Frames() {
			}
		}()
	}

	rawCodec, err := compress.ByName("raw")
	if err != nil {
		return nil, err
	}
	data, err := rawCodec.EncodeFrame(src)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for id := 0; id < frames; id++ {
		im := &transport.ImageMsg{
			FrameID:    uint32(id),
			PieceCount: 1,
			X1:         uint16(src.W), Y1: uint16(src.H),
			W: uint16(src.W), H: uint16(src.H),
			Codec: "raw",
			Data:  data,
		}
		if err := rend.SendImage(im); err != nil {
			return nil, fmt.Errorf("renderer send %d: %w", id, err)
		}
		time.Sleep(gap)
	}
	// Wait until every per-client queue drains (slow links keep
	// delivering after the animation ends) rather than a fixed sleep:
	// encode cost varies a lot across hosts and race-enabled runs. The
	// stability recheck covers the frame in flight between queue pop
	// and counter increment.
	deadline := time.Now().Add(maxDrain)
	for time.Now().Before(deadline) {
		if sessionDrained(b, len(links), frames) {
			time.Sleep(250 * time.Millisecond)
			if sessionDrained(b, len(links), frames) {
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}

	snaps := b.ClientSnapshots()
	out := &streamSession{
		Encodes: b.Stats().Encodes.Load(),
		Drops:   b.Stats().Drops.Load(),
		Hits:    b.Cache().Stats().Hits.Load(),
		Misses:  b.Cache().Stats().Misses.Load(),
		Evicts:  b.Cache().Stats().Evictions.Load(),
	}
	b.Close()
	for _, v := range viewers {
		v.Close()
	}
	wg.Wait()
	// Display sessions connect after the renderer, in link order, so
	// snapshot i matches links[i].
	if len(snaps) != len(links) {
		return nil, fmt.Errorf("have %d client snapshots, want %d", len(snaps), len(links))
	}
	for i, v := range viewers {
		st := v.Stats()
		point := snaps[i].Point
		if cfg.FixedPoint != nil {
			point = *cfg.FixedPoint
		}
		first := 0.0
		if st.Frames > 0 {
			first = st.FirstFrame.Sub(start).Seconds()
		}
		out.Clients = append(out.Clients, AdaptiveClient{
			Link:        links[i].Name,
			Point:       point.String(),
			FPS:         st.FPS(),
			Frames:      st.Frames,
			Drops:       snaps[i].Drops,
			KBs:         snaps[i].Bandwidth / 1e3,
			FirstFrameS: first,
			Refinements: st.Refinements,
		})
	}
	return out, nil
}

// detailFrame overlays deterministic fine-scale texture on a rendered
// frame. The repro's downscaled volumes render far smoother than the
// paper's full-resolution turbulence data (whose voxel-scale detail is
// what JPEG quality actually trades against), so without it every
// quality rung collapses to about the same size and there is nothing
// for the controller to adapt. Amplitude ~24 gray levels restores a
// realistic size spread across the ladder.
func detailFrame(base *img.Frame, amp int) *img.Frame {
	f := img.NewFrame(base.W, base.H)
	state := uint32(0x9e3779b9)
	for i, v := range base.Pix {
		state = state*1664525 + 1013904223
		n := int(state>>24)%(2*amp+1) - amp
		p := int(v) + n
		if p < 0 {
			p = 0
		} else if p > 255 {
			p = 255
		}
		f.Pix[i] = byte(p)
	}
	return f
}

// adaptiveMix is the paper-motivated client population: a local
// workstation cluster plus the two calibrated wide-area links.
func (c *Context) adaptiveMix() []wan.Profile {
	return []wan.Profile{
		wan.LAN(), wan.LAN(), wan.LAN(), wan.LAN(),
		wan.NASAUCD(), wan.NASAUCD(),
		wan.JapanUCD(), wan.JapanUCD(),
	}
}

// Adaptive evaluates the stream broker: 8 concurrent viewers on mixed
// LAN / NASA-UCD / Japan-UCD links, adaptive per-client quality vs a
// fixed top-quality baseline, and the encode-once fan-out cache vs
// encode-per-client.
func (c *Context) Adaptive() (*AdaptiveResult, error) {
	size := 512
	frames, gap := 40, 40*time.Millisecond
	if c.Quick {
		size = 256
		frames, gap = 25, 30*time.Millisecond
	}
	// Upper bound on the post-animation drain; sessions end as soon as
	// every client queue empties.
	const drain = 30 * time.Second
	base, err := c.frame("jet", size)
	if err != nil {
		return nil, err
	}
	src := detailFrame(base, 24)
	links := c.adaptiveMix()
	target := 120 * time.Millisecond
	fixedPoint := stream.DefaultLadder()[0]

	adaptive, err := runStreamSession(stream.Config{Target: target}, links, src, frames, gap, drain)
	if err != nil {
		return nil, fmt.Errorf("adaptive run: %w", err)
	}
	fixed, err := runStreamSession(stream.Config{Target: target, FixedPoint: &fixedPoint}, links, src, frames, gap, drain)
	if err != nil {
		return nil, fmt.Errorf("fixed run: %w", err)
	}

	// Fan-out contrast: 8 clients on the same LAN profile, identical
	// fixed operating point, cache on vs off — isolates the
	// encode-once sharing.
	lan := make([]wan.Profile, 8)
	for i := range lan {
		lan[i] = wan.LAN()
	}
	// Deep queues so nothing drops: the contrast isolates encode
	// sharing, and encode-per-client must actually pay for all 8
	// clients even on a slow or race-instrumented host.
	fanFrames := 20
	cached, err := runStreamSession(stream.Config{Target: target, FixedPoint: &fixedPoint, QueueDepth: fanFrames + 1, CacheFrames: fanFrames + 1},
		lan, src, fanFrames, 40*time.Millisecond, drain)
	if err != nil {
		return nil, fmt.Errorf("cache run: %w", err)
	}
	uncached, err := runStreamSession(stream.Config{Target: target, FixedPoint: &fixedPoint, QueueDepth: fanFrames + 1, DisableCache: true},
		lan, src, fanFrames, 40*time.Millisecond, drain)
	if err != nil {
		return nil, fmt.Errorf("nocache run: %w", err)
	}

	res := &AdaptiveResult{
		Adaptive:       adaptive.Clients,
		Fixed:          fixed.Clients,
		CacheEncodes:   cached.Encodes,
		NoCacheEncodes: uncached.Encodes,
		CacheHits:      cached.Hits,
		CacheMisses:    cached.Misses,
		CacheEvictions: cached.Evicts,
	}
	res.JapanAdaptiveFPS = meanFPS(adaptive.Clients, "japan-ucd")
	res.JapanFixedFPS = meanFPS(fixed.Clients, "japan-ucd")
	res.JapanPreviewS = meanFirst(adaptive.Clients, "japan-ucd")
	res.JapanFixedFirstS = meanFirst(fixed.Clients, "japan-ucd")
	if res.JapanFixedFPS > 0 {
		res.JapanSpeedup = res.JapanAdaptiveFPS / res.JapanFixedFPS
	}
	if res.CacheEncodes > 0 {
		res.EncodeSavings = float64(res.NoCacheEncodes) / float64(res.CacheEncodes)
	}
	c.printAdaptive(res, size, frames)
	return res, nil
}

func meanFPS(clients []AdaptiveClient, link string) float64 {
	var sum float64
	var n int
	for _, cl := range clients {
		if cl.Link == link {
			sum += cl.FPS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func meanFirst(clients []AdaptiveClient, link string) float64 {
	var sum float64
	var n int
	for _, cl := range clients {
		if cl.Link == link && cl.FirstFrameS > 0 {
			sum += cl.FirstFrameS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (c *Context) printAdaptive(res *AdaptiveResult, size, frames int) {
	c.printf("Adaptive streaming: 8 viewers on mixed links, %d^2 frames, %d-frame animation\n", size, frames)
	t := metrics.NewTable("link", "mode", "point", "fps", "frames", "refine", "drops", "est-KB/s", "first-frame")
	row := func(mode string, cl AdaptiveClient) {
		t.Row(cl.Link, mode, cl.Point, fmt.Sprintf("%.2f", cl.FPS),
			fmt.Sprintf("%d", cl.Frames), fmt.Sprintf("%d", cl.Refinements),
			fmt.Sprintf("%d", cl.Drops), fmt.Sprintf("%.0f", cl.KBs),
			fmt.Sprintf("%.2fs", cl.FirstFrameS))
	}
	for _, cl := range res.Adaptive {
		row("adaptive", cl)
	}
	for _, cl := range res.Fixed {
		row("fixed", cl)
	}
	c.printf("%s", t.String())
	c.printf("japan-ucd frame rate: adaptive %.2f fps vs fixed %.2f fps (%.1fx)\n",
		res.JapanAdaptiveFPS, res.JapanFixedFPS, res.JapanSpeedup)
	c.printf("japan-ucd time to first usable frame: adaptive %.2fs (progressive preview probe) vs fixed %.2fs\n",
		res.JapanPreviewS, res.JapanFixedFirstS)
	c.printf("fan-out cache, 8 lan clients: %d encodes vs %d without cache (%.1fx fewer; %d hits, %d misses, %d evictions)\n\n",
		res.CacheEncodes, res.NoCacheEncodes, res.EncodeSavings,
		res.CacheHits, res.CacheMisses, res.CacheEvictions)
}
