package experiments

import (
	"fmt"
	"time"

	"repro/internal/compress"
	"repro/internal/display"
	"repro/internal/img"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// Fig10Point is the decode+assembly time when a frame arrives as N
// parallel-compression pieces.
type Fig10Point struct {
	Pieces     int
	Decode     time.Duration
	TotalBytes int
}

// Fig10Result compares decompressing a single full image against
// multiple sub-image pieces — the paper's Figure 10 (512x512, up to
// 64 processors).
type Fig10Result struct {
	Size   int
	Points []Fig10Point
}

// Fig10 measures real piece decoding through the display assembler.
func (c *Context) Fig10() (*Fig10Result, error) {
	size := 512
	if c.Quick {
		size = 128
	}
	f, err := c.frame("jet", size)
	if err != nil {
		return nil, err
	}
	codec, err := compress.ByName("jpeg+lzo")
	if err != nil {
		return nil, err
	}
	reps := 5
	if c.Quick {
		reps = 2
	}
	res := &Fig10Result{Size: size}
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		if n > size {
			break
		}
		regs, err := img.SplitRows(f.W, f.H, n)
		if err != nil {
			return nil, err
		}
		msgs := make([]*transport.ImageMsg, n)
		total := 0
		for i, r := range regs {
			sub, err := f.SubFrame(r)
			if err != nil {
				return nil, err
			}
			data, err := codec.EncodeFrame(sub)
			if err != nil {
				return nil, err
			}
			total += len(data)
			msgs[i] = &transport.ImageMsg{
				FrameID: 0, PieceIndex: uint16(i), PieceCount: uint16(n),
				X0: uint16(r.X0), Y0: uint16(r.Y0), X1: uint16(r.X1), Y1: uint16(r.Y1),
				W: uint16(f.W), H: uint16(f.H), Codec: "jpeg+lzo", Data: data,
			}
		}
		var el time.Duration
		for rep := 0; rep < reps; rep++ {
			asm := display.NewAssembler()
			start := time.Now()
			var done bool
			for i, m := range msgs {
				mm := *m
				mm.FrameID = uint32(rep)
				fr, err := asm.Ingest(&mm)
				if err != nil {
					return nil, err
				}
				if fr != nil {
					if i != len(msgs)-1 {
						return nil, fmt.Errorf("fig10: early completion")
					}
					done = true
				}
			}
			if !done {
				return nil, fmt.Errorf("fig10: frame never completed with %d pieces", n)
			}
			el += time.Since(start)
		}
		res.Points = append(res.Points, Fig10Point{Pieces: n, Decode: el / time.Duration(reps), TotalBytes: total})
	}
	c.printf("Figure 10: time to decompress a %dx%d frame arriving as N sub-images\n", size, size)
	t := metrics.NewTable("pieces", "decode+assemble(s)", "bytes")
	for _, p := range res.Points {
		t.Row(fmt.Sprintf("%d", p.Pieces), fmt.Sprintf("%.4f", p.Decode.Seconds()), fmt.Sprintf("%d", p.TotalBytes))
	}
	c.printf("%s\n", t.String())
	return res, nil
}
