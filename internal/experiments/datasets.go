package experiments

import (
	"fmt"
	"time"

	"repro/internal/compress"
	"repro/internal/metrics"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/tf"
	"repro/internal/vol"
	"repro/internal/wan"
)

// DatasetRow contrasts render time against image-transport time for
// one dataset at 512x512 — the paper's §6 selective tests: the dense
// turbulent-vortex images compress poorly, so transport (0.325 s)
// exceeds rendering (0.178 s); the much larger fluid-mixing data
// renders ~4 s per frame, making transport (about a tenth of that)
// negligible.
type DatasetRow struct {
	Dataset string
	// RenderPerFrame is the simulated per-group render time on 64
	// RWCP nodes (paper-scaled, with the dataset's measured render
	// cost relative to the jet).
	RenderPerFrame time.Duration
	// InterFrame is the steady-state time between frames from the
	// pipelined renderer (the rate the transport must keep up with).
	InterFrame time.Duration
	// TransportPerFrame is the real measured transfer+decode time of
	// the real encoded frame over the Japan link.
	TransportPerFrame time.Duration
	// CompressedBytes of the 512^2 frame.
	CompressedBytes int
}

// DatasetsResult holds the §6 dataset contrast rows.
type DatasetsResult struct {
	Rows []DatasetRow
}

// datasetDims returns the full-scale grid of each dataset; the
// simulated render cost always models paper scale.
func datasetDims(name string) vol.Dims {
	switch name {
	case "vortex":
		return vol.Dims{NX: 128, NY: 128, NZ: 128}
	case "mixing":
		return vol.Dims{NX: 640, NY: 256, NZ: 256}
	}
	return jetDims()
}

// Datasets runs the vortex and mixing contrasts.
func (c *Context) Datasets() (*DatasetsResult, error) {
	cal, err := c.calibration()
	if err != nil {
		return nil, err
	}
	link := c.scaleLink(wan.JapanUCD())
	size := 512
	if c.Quick {
		size = 128
	}
	codec, err := compress.ByName("jpeg+lzo")
	if err != nil {
		return nil, err
	}
	reps := 2
	if c.Quick {
		reps = 1
	}
	jetCost, err := c.measureRenderCost("jet", 128)
	if err != nil {
		return nil, err
	}
	res := &DatasetsResult{}
	for _, name := range []string{"jet", "vortex", "mixing"} {
		dims := datasetDims(name)
		m, _ := cal.ScaleToPaper(sim.RWCP(), jetDims())
		w := cal.WorkloadFor(m, dims, 16, size, size)
		w.Link = link
		// Scale the jet-anchored T1 by the dataset's real measured
		// render cost relative to the jet at the same image size —
		// content effects (early termination on dense data, sparse
		// skips) are invisible to the geometric probe.
		cost, err := c.measureRenderCost(name, 128)
		if err != nil {
			return nil, err
		}
		w.T1Render = time.Duration(float64(w.T1Render) * cost.Seconds() / jetCost.Seconds())
		r, err := sim.Run(sim.Config{Machine: m, Work: w, P: 64, L: 4})
		if err != nil {
			return nil, err
		}
		f, err := c.frame(name, size)
		if err != nil {
			return nil, err
		}
		data, err := codec.EncodeFrame(f)
		if err != nil {
			return nil, err
		}
		transfer, err := measureTransfer(data, link, reps)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := codec.DecodeFrame(data); err != nil {
				return nil, err
			}
		}
		decode := time.Since(t0) / time.Duration(reps)
		res.Rows = append(res.Rows, DatasetRow{
			Dataset:           name,
			RenderPerFrame:    r.RenderPerFrame,
			InterFrame:        r.InterFrameDelay,
			TransportPerFrame: transfer + decode,
			CompressedBytes:   len(data),
		})
	}
	c.printf("Section 6 dataset contrasts (%dx%d frames, 64 procs, Japan->UCD)\n", size, size)
	t := metrics.NewTable("dataset", "render/frame(s)", "interframe(s)", "transport/frame(s)", "bytes")
	for _, row := range res.Rows {
		t.Row(row.Dataset,
			fmt.Sprintf("%.3f", row.RenderPerFrame.Seconds()),
			fmt.Sprintf("%.3f", row.InterFrame.Seconds()),
			fmt.Sprintf("%.3f", row.TransportPerFrame.Seconds()),
			fmt.Sprintf("%d", row.CompressedBytes))
	}
	c.printf("%s\n", t.String())
	return res, nil
}

// measureRenderCost times a real render of the dataset's cached
// volume at s x s (min of 2 runs).
func (c *Context) measureRenderCost(name string, s int) (time.Duration, error) {
	v, err := c.volume(name)
	if err != nil {
		return 0, err
	}
	tfn, err := tf.Preset(name)
	if err != nil {
		return 0, err
	}
	cam, err := render.NewOrbitCamera(v.Dims, 0.6, 0.35, 1.2)
	if err != nil {
		return 0, err
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 2; i++ {
		t0 := time.Now()
		if _, _, err := render.Render(v, cam, tfn, render.DefaultOptions(), s, s); err != nil {
			return 0, err
		}
		if el := time.Since(t0); el < best {
			best = el
		}
	}
	return best, nil
}

// Row returns the row for a dataset (nil if absent).
func (r *DatasetsResult) Row(name string) *DatasetRow {
	for i := range r.Rows {
		if r.Rows[i].Dataset == name {
			return &r.Rows[i]
		}
	}
	return nil
}
