package experiments

import (
	"math"
	"runtime"
	"time"

	"repro/internal/compress"
	"repro/internal/img"
	"repro/internal/render"
	"repro/internal/tf"
)

// PerfRenderPoint is one worker-count measurement of the tile-parallel
// ray caster.
type PerfRenderPoint struct {
	Workers    int     `json:"workers"`
	NsPerFrame int64   `json:"ns_per_frame"`
	Speedup    float64 `json:"speedup"`
}

// PerfCodecPoint is one codec's hot-path measurement; throughput is
// denominated in raw (uncompressed) frame bytes.
type PerfCodecPoint struct {
	Codec           string  `json:"codec"`
	EncodeMBps      float64 `json:"encode_mb_per_s"`
	DecodeMBps      float64 `json:"decode_mb_per_s"`
	EncodeNsPerOp   int64   `json:"encode_ns_per_op"`
	DecodeNsPerOp   int64   `json:"decode_ns_per_op"`
	EncodeAllocsPer float64 `json:"encode_allocs_per_op"`
	Ratio           float64 `json:"ratio"`
}

// PerfResult is the machine-readable output of the perf experiment
// (written to BENCH_render.json by paperbench -bench-out). The
// alloc counts are machine-independent and are what cmd/benchdiff
// gates on; the time-based fields vary with the host and are only
// compared when explicitly requested.
type PerfResult struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	ImageSize  int `json:"image_size"`
	// Render holds ns/frame at each measured worker count; Speedup is
	// relative to the Workers=1 row.
	Render []PerfRenderPoint `json:"render"`
	// RenderAllocsPerFrame counts heap allocations of one steady-state
	// serial render into a reused image (LUT classification, no
	// per-frame tables).
	RenderAllocsPerFrame float64 `json:"render_allocs_per_frame"`
	// FramePathAllocsPerFrame counts heap allocations of the full
	// pooled frame path: render -> pooled quantize -> raw encode ->
	// recycle, steady state.
	FramePathAllocsPerFrame float64          `json:"frame_path_allocs_per_frame"`
	Codecs                  []PerfCodecPoint `json:"codecs"`
}

// Perf measures the multicore hot path: render scaling across worker
// counts, steady-state allocations per frame on the pooled path, and
// per-codec encode/decode throughput.
func (c *Context) Perf() (*PerfResult, error) {
	size := 128
	reps := 8
	if c.Quick {
		size = 96
		reps = 3
	}
	v, err := c.volume("jet")
	if err != nil {
		return nil, err
	}
	tfn, err := tf.Preset("jet")
	if err != nil {
		return nil, err
	}
	cam, err := render.NewOrbitCamera(v.Dims, 0.6, 0.35, 1.2)
	if err != nil {
		return nil, err
	}
	res := &PerfResult{GOMAXPROCS: runtime.GOMAXPROCS(0), ImageSize: size}

	workerCounts := []int{1, 2, 4}
	if n := res.GOMAXPROCS; n > 4 {
		workerCounts = append(workerCounts, n)
	}
	dst := img.NewRGBA(size, size)
	renderOnce := func(workers int) error {
		opt := render.DefaultOptions()
		opt.Workers = workers
		_, err := render.RenderRegion(render.WholeVolume(v), v.Bounds(), cam, tfn, opt, dst)
		return err
	}
	var serialNs int64
	for _, w := range workerCounts {
		best := time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if err := renderOnce(w); err != nil {
				return nil, err
			}
			if el := time.Since(t0); el < best {
				best = el
			}
		}
		p := PerfRenderPoint{Workers: w, NsPerFrame: best.Nanoseconds()}
		if w == 1 {
			serialNs = p.NsPerFrame
		}
		if serialNs > 0 {
			p.Speedup = float64(serialNs) / float64(p.NsPerFrame)
		}
		res.Render = append(res.Render, p)
	}

	// Steady-state allocations: warm every pool first, then count the
	// runtime's malloc delta across frames. Serial render keeps the
	// number deterministic (the tile engine's per-worker goroutine
	// bookkeeping would add a few allocs per frame).
	countAllocs := func(frames int, f func() error) (float64, error) {
		if err := f(); err != nil { // warm-up
			return 0, err
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < frames; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / float64(frames), nil
	}
	res.RenderAllocsPerFrame, err = countAllocs(reps, func() error { return renderOnce(1) })
	if err != nil {
		return nil, err
	}
	raw := compress.Raw{}
	res.FramePathAllocsPerFrame, err = countAllocs(reps, func() error {
		if err := renderOnce(1); err != nil {
			return err
		}
		f := dst.ToFrameInto(img.GetFrameRaw(size, size), 0)
		data, err := raw.EncodeFrame(f)
		img.PutFrame(f)
		if err != nil {
			return err
		}
		compress.Recycle(data)
		return nil
	})
	if err != nil {
		return nil, err
	}

	frame, err := c.frame("jet", size)
	if err != nil {
		return nil, err
	}
	rawBytes := float64(len(frame.Pix))
	for _, name := range compress.Names() {
		codec, err := compress.ByName(name)
		if err != nil {
			return nil, err
		}
		pt := PerfCodecPoint{Codec: name}
		encBest, decBest := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
		var encoded []byte
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			data, err := codec.EncodeFrame(frame)
			if err != nil {
				return nil, err
			}
			if el := time.Since(t0); el < encBest {
				encBest = el
			}
			if encoded == nil {
				encoded = append([]byte(nil), data...)
			}
			compress.Recycle(data)
			t0 = time.Now()
			if _, err := codec.DecodeFrame(encoded); err != nil {
				return nil, err
			}
			if el := time.Since(t0); el < decBest {
				decBest = el
			}
		}
		encAllocs, err := countAllocs(reps, func() error {
			data, err := codec.EncodeFrame(frame)
			if err != nil {
				return err
			}
			compress.Recycle(data)
			return nil
		})
		if err != nil {
			return nil, err
		}
		pt.EncodeNsPerOp = encBest.Nanoseconds()
		pt.DecodeNsPerOp = decBest.Nanoseconds()
		pt.EncodeMBps = rawBytes / encBest.Seconds() / 1e6
		pt.DecodeMBps = rawBytes / decBest.Seconds() / 1e6
		pt.EncodeAllocsPer = encAllocs
		pt.Ratio = float64(len(encoded)) / rawBytes
		res.Codecs = append(res.Codecs, pt)
	}

	c.printf("Perf: multicore hot path (%dx%d jet, GOMAXPROCS=%d)\n", size, size, res.GOMAXPROCS)
	c.printf("  %-8s %12s %8s\n", "workers", "ns/frame", "speedup")
	for _, p := range res.Render {
		c.printf("  %-8d %12d %8.2fx\n", p.Workers, p.NsPerFrame, p.Speedup)
	}
	c.printf("  render allocs/frame: %.1f   pooled frame path allocs/frame: %.1f\n",
		res.RenderAllocsPerFrame, res.FramePathAllocsPerFrame)
	c.printf("  %-10s %10s %10s %12s %7s\n", "codec", "enc MB/s", "dec MB/s", "enc allocs", "ratio")
	for _, p := range res.Codecs {
		c.printf("  %-10s %10.1f %10.1f %12.1f %7.3f\n",
			p.Codec, p.EncodeMBps, p.DecodeMBps, p.EncodeAllocsPer, p.Ratio)
	}
	return res, nil
}
