package experiments

import (
	"os"
	"sort"
	"time"

	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/tf"
	"repro/internal/volio"
)

// PipelineResult summarizes one traced pipeline run.
type PipelineResult struct {
	// P, L, Steps echo the run configuration.
	P, L, Steps int
	// Frames is the number of frames delivered.
	Frames int
	// Spans is the number of trace spans recorded.
	Spans int
	// Stages maps stage name (fetch, render, composite, deliver) to
	// its per-(group,step) timing summary.
	Stages map[string]metrics.Summary
	// TracePath is the Chrome trace file written ("" when tracing is
	// off).
	TracePath string
}

// Pipeline runs the real pipelined renderer on a small jet series with
// the observability layer attached: per-group stage spans go to the
// tracer and stage timings to a metrics registry. With TracePath set,
// the spans are written as Chrome trace-event JSON — load the file in
// a Chrome/Perfetto trace viewer to see the paper's per-group Gantt
// (fetch / render / composite / deliver overlapping across groups).
func (c *Context) Pipeline() (*PipelineResult, error) {
	p, l, steps, size, scale := 8, 4, 12, 64, 0.2
	if c.Quick {
		p, l, steps, size, scale = 4, 2, 6, 48, 0.12
	}
	store := volio.NewGenStore(datagen.NewJetScaled(scale, steps))
	tr := obs.NewTracer(obs.WallClock(), obs.DefaultTraceCapacity)
	reg := obs.NewRegistry()
	frames := 0
	m, err := pipeline.Run(store, pipeline.Options{
		P: p, L: l,
		ImageW: size, ImageH: size,
		TF:      tf.Jet(),
		Trace:   tr,
		Metrics: reg,
	}, func(f *pipeline.Frame) error {
		frames++
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &PipelineResult{P: p, L: l, Steps: steps, Frames: frames, Spans: tr.Len(), Stages: map[string]metrics.Summary{}}
	stages := []string{"fetch", "render", "composite", "deliver"}
	for _, st := range stages {
		h := reg.Histogram(`pipeline_stage_seconds{stage="`+st+`"}`, "")
		res.Stages[st] = h.Summary()
	}

	c.printf("pipeline: P=%d L=%d steps=%d size=%dx%d: %d frames in %v, %d spans\n",
		p, l, steps, size, size, frames, m.Overall.Round(time.Millisecond), tr.Len())
	tab := metrics.NewTable("stage", "n", "mean", "p50", "p95", "max")
	for _, st := range stages {
		s := res.Stages[st]
		tab.Rowf("%s %d %.1fms %.1fms %.1fms %.1fms", st, s.N,
			s.Mean*1e3, s.P50*1e3, s.P95*1e3, s.Max*1e3)
	}
	c.printf("%s", tab.String())

	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return nil, err
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		res.TracePath = c.TracePath
		c.printf("wrote Chrome trace %s (open in a Perfetto/chrome://tracing viewer)\n", c.TracePath)
	}

	// A quick sanity print of the busiest tracks keeps the experiment
	// useful without a trace viewer.
	byTrack := map[string]int{}
	for _, sp := range tr.Spans() {
		byTrack[sp.Track]++
	}
	tracks := make([]string, 0, len(byTrack))
	for t := range byTrack {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	for _, t := range tracks {
		c.printf("track %-12s %4d spans\n", t, byTrack[t])
	}
	return res, nil
}
