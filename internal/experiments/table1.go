package experiments

import (
	"fmt"

	"repro/internal/compress/codecs"
	"repro/internal/metrics"
)

// Table1Result reports compressed image sizes in bytes per codec and
// image size — the paper's Table 1.
type Table1Result struct {
	Sizes  []int
	Codecs []string
	// Bytes[codec][size] in iteration order of Codecs/Sizes.
	Bytes map[string]map[int]int
	// Dataset the frames came from.
	Dataset string
}

// Table1 measures compressed sizes of real rendered frames.
func (c *Context) Table1() (*Table1Result, error) {
	return c.table1For("jet")
}

func (c *Context) table1For(dataset string) (*Table1Result, error) {
	all, err := codecs.All()
	if err != nil {
		return nil, err
	}
	res := &Table1Result{
		Sizes:   c.sizes(),
		Dataset: dataset,
		Bytes:   map[string]map[int]int{},
	}
	for _, cd := range all {
		res.Codecs = append(res.Codecs, cd.Name())
		res.Bytes[cd.Name()] = map[int]int{}
	}
	for _, s := range res.Sizes {
		f, err := c.frame(dataset, s)
		if err != nil {
			return nil, err
		}
		for _, cd := range all {
			data, err := cd.EncodeFrame(f)
			if err != nil {
				return nil, fmt.Errorf("table1: %s at %d: %w", cd.Name(), s, err)
			}
			n := len(data)
			if cd.Name() == "raw" {
				// The paper's Raw row is the bare pixel payload.
				n = len(f.Pix)
			}
			res.Bytes[cd.Name()][s] = n
		}
	}
	c.printTable1(res)
	return res, nil
}

func (c *Context) printTable1(r *Table1Result) {
	c.printf("Table 1: compressed image sizes in bytes (%s dataset)\n", r.Dataset)
	header := []string{"method"}
	for _, s := range r.Sizes {
		header = append(header, fmt.Sprintf("%d^2", s))
	}
	t := metrics.NewTable(header...)
	for _, name := range r.Codecs {
		row := []string{name}
		for _, s := range r.Sizes {
			row = append(row, fmt.Sprintf("%d", r.Bytes[name][s]))
		}
		t.Row(row...)
	}
	c.printf("%s\n", t.String())
}

// Ratio returns compressed/raw for a codec at a size.
func (r *Table1Result) Ratio(codec string, size int) float64 {
	raw := r.Bytes["raw"][size]
	if raw == 0 {
		return 0
	}
	return float64(r.Bytes[codec][size]) / float64(raw)
}
