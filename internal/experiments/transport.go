package experiments

import (
	"fmt"
	"time"

	"repro/internal/compress"
	"repro/internal/metrics"
	"repro/internal/wan"
)

// TransferPoint is one (image size, method) measurement.
type TransferPoint struct {
	Size int
	// Encode, Transfer, Decode are the real measured phase times; X
	// rows have no encode phase.
	Encode, Transfer, Decode time.Duration
	// Bytes actually transferred.
	Bytes int
}

// Total returns the per-frame display time (the paper's Figure 8 bar).
func (p TransferPoint) Total() time.Duration { return p.Encode + p.Transfer + p.Decode }

// FPS returns the steady-state frame rate the link supports (the
// paper's Table 2 entry): transfer and decode pipeline, so the period
// is the slower of the two, plus encode which runs on the (parallel)
// render side and is ignored for the rate as in the paper.
func (p TransferPoint) FPS() float64 {
	period := p.Transfer
	if p.Decode > period {
		period = p.Decode
	}
	if period <= 0 {
		return 0
	}
	return 1 / period.Seconds()
}

// TransferResult holds the X and compression measurements per size —
// the data behind Figure 8 (times), Table 2 (rates) and Figure 11
// (Japan link).
type TransferResult struct {
	Link  wan.Profile
	Sizes []int
	X     map[int]TransferPoint
	Comp  map[int]TransferPoint
	// Codec is the compression method used for the Comp rows.
	Codec string
}

// measureDisplayPath measures one frame of a dataset at a size through
// the real encode → shaped-transfer → decode path.
func (c *Context) measureDisplayPath(dataset string, size int, codecName string, link wan.Profile, reps int) (TransferPoint, error) {
	f, err := c.frame(dataset, size)
	if err != nil {
		return TransferPoint{}, err
	}
	codec, err := compress.ByName(codecName)
	if err != nil {
		return TransferPoint{}, err
	}
	var p TransferPoint
	p.Size = size
	t0 := time.Now()
	data, err := codec.EncodeFrame(f)
	if err != nil {
		return TransferPoint{}, err
	}
	p.Encode = time.Since(t0)
	p.Bytes = len(data)
	p.Transfer, err = measureTransfer(data, link, reps)
	if err != nil {
		return TransferPoint{}, err
	}
	t0 = time.Now()
	for r := 0; r < reps; r++ {
		if _, err := codec.DecodeFrame(data); err != nil {
			return TransferPoint{}, err
		}
	}
	p.Decode = time.Since(t0) / time.Duration(reps)
	return p, nil
}

// transferExperiment measures X (raw) vs compression rows over a link.
func (c *Context) transferExperiment(link wan.Profile, label string) (*TransferResult, error) {
	link = c.scaleLink(link)
	res := &TransferResult{
		Link:  link,
		Sizes: c.sizes(),
		X:     map[int]TransferPoint{},
		Comp:  map[int]TransferPoint{},
		Codec: "jpeg+lzo",
	}
	reps := 3
	if c.Quick {
		reps = 1
	}
	for _, s := range res.Sizes {
		x, err := c.measureDisplayPath("jet", s, "raw", link, reps)
		if err != nil {
			return nil, fmt.Errorf("%s raw %d: %w", label, s, err)
		}
		x.Encode = 0 // X ships pixels without an encode stage
		res.X[s] = x
		cp, err := c.measureDisplayPath("jet", s, res.Codec, link, reps)
		if err != nil {
			return nil, fmt.Errorf("%s %s %d: %w", label, res.Codec, s, err)
		}
		res.Comp[s] = cp
	}
	return res, nil
}

// Fig8 measures the time to send one frame NASA Ames → UC Davis via X
// versus the compression-based daemon.
func (c *Context) Fig8() (*TransferResult, error) {
	res, err := c.transferExperiment(wan.NASAUCD(), "fig8")
	if err != nil {
		return nil, err
	}
	c.printTransferTimes("Figure 8: time to send one frame, NASA Ames -> UCD", res)
	return res, nil
}

// Table2 reports actual frame rates NASA Ames → UC Davis.
func (c *Context) Table2() (*TransferResult, error) {
	res, err := c.transferExperiment(wan.NASAUCD(), "table2")
	if err != nil {
		return nil, err
	}
	c.printf("Table 2: actual frame rates (frames per second), NASA Ames -> UCD\n")
	header := []string{"method"}
	for _, s := range res.Sizes {
		header = append(header, fmt.Sprintf("%d^2", s))
	}
	t := metrics.NewTable(header...)
	rowX := []string{"X-Window"}
	rowC := []string{"Compression"}
	for _, s := range res.Sizes {
		rowX = append(rowX, fmt.Sprintf("%.2f", res.X[s].FPS()))
		rowC = append(rowC, fmt.Sprintf("%.2f", res.Comp[s].FPS()))
	}
	t.Row(rowX...)
	t.Row(rowC...)
	c.printf("%s\n", t.String())
	return res, nil
}

// Fig11 repeats the per-frame display measurement over the
// RWCP (Japan) → UC Davis link.
func (c *Context) Fig11() (*TransferResult, error) {
	res, err := c.transferExperiment(wan.JapanUCD(), "fig11")
	if err != nil {
		return nil, err
	}
	c.printTransferTimes("Figure 11: overall time per frame, RWCP (Japan) -> UCD", res)
	return res, nil
}

func (c *Context) printTransferTimes(title string, res *TransferResult) {
	c.printf("%s (link %s: %.0f KB/s, %v one-way)\n", title, res.Link.Name,
		res.Link.Bandwidth/1e3, res.Link.Latency)
	t := metrics.NewTable("imgsize", "X-display(s)", "daemon(s)", "X-bytes", "daemon-bytes")
	for _, s := range res.Sizes {
		t.Row(
			fmt.Sprintf("%d^2", s),
			fmt.Sprintf("%.3f", res.X[s].Total().Seconds()),
			fmt.Sprintf("%.3f", res.Comp[s].Total().Seconds()),
			fmt.Sprintf("%d", res.X[s].Bytes),
			fmt.Sprintf("%d", res.Comp[s].Bytes),
		)
	}
	c.printf("%s\n", t.String())
}
