package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDFBExperiment(t *testing.T) {
	c, out := quickCtx()
	res, err := c.DFB()
	if err != nil {
		t.Fatal(err)
	}
	if !res.BitIdentical {
		t.Fatal("DFB not bit-identical to binary-swap on the live run")
	}
	if res.DFBBytes <= 0 || res.DFBBytes >= res.SwapBytes {
		t.Fatalf("bytes: DFB %d vs swap %d", res.DFBBytes, res.SwapBytes)
	}
	if res.TilesStreamed <= 0 {
		t.Fatalf("no tiles streamed (%d)", res.TilesStreamed)
	}
	if len(res.Scales) != 4 {
		t.Fatalf("scales %v", res.Scales)
	}
	for _, s := range res.Scales {
		if s.DFBCriticalMS >= s.BarrierCriticalMS {
			t.Errorf("G=%d: DFB critical %.3fms >= barrier %.3fms", s.G, s.DFBCriticalMS, s.BarrierCriticalMS)
		}
		if s.Overlap <= 0 || s.Overlap > 1 {
			t.Errorf("G=%d: overlap %v", s.G, s.Overlap)
		}
	}
	// The CI gate reads these fields from BENCH_dfb.json.
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"bit_identical", "scales", "barrier_critical_ms", "dfb_critical_ms", "overlap", "stream_overlap"} {
		if !strings.Contains(string(data), `"`+key+`"`) {
			t.Errorf("JSON missing %q: %s", key, data)
		}
	}
	if out.Len() == 0 {
		t.Fatal("no printed output")
	}
}
