package experiments

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/compress"
	"repro/internal/display"
	"repro/internal/img"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/relay"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/transport"
	"repro/internal/wan"
)

// RelayScenario is one topology's outcome in the relay fan-out
// experiment (analytic model, thousands of viewers).
type RelayScenario struct {
	Name    string `json:"name"`
	Tiers   int    `json:"tiers"`
	FanOut  int    `json:"fan_out"`
	Viewers int    `json:"viewers"`
	// RootEgressMB is the whole animation's bytes leaving the root —
	// the wide-area broadcast cost.
	RootEgressMB float64 `json:"root_egress_mb"`
	TotalMB      float64 `json:"total_mb"`
	// EgressReduction is flat-root-egress / this-root-egress (1.0 for
	// the flat baseline itself).
	EgressReduction float64 `json:"egress_reduction_vs_flat"`
	// TierNodes / TierEncodesPerFrame index 0 = root, last = edge.
	TierNodes           []int   `json:"tier_nodes"`
	TierEncodesPerFrame []int64 `json:"tier_encodes_per_frame"`
	P50AgeMs            float64 `json:"p50_frame_age_ms"`
	P99AgeMs            float64 `json:"p99_frame_age_ms"`
	MaxAgeMs            float64 `json:"max_frame_age_ms"`
}

// RelayLive grounds the model with a real loopback tree: the same
// viewer count attached flat to one broker vs through a small 2-tier
// relay tree, comparing actual root egress bytes.
type RelayLive struct {
	Viewers     int     `json:"viewers"`
	Frames      int     `json:"frames"`
	FlatRootKB  float64 `json:"flat_root_kb"`
	TreeRootKB  float64 `json:"tree_root_kb"`
	Reduction   float64 `json:"reduction"`
	TierEncodes []int64 `json:"tree_tier_encodes"`
}

// RelayResult is the full relay fan-out evaluation.
type RelayResult struct {
	Viewers    int             `json:"viewers"`
	FanOut     int             `json:"fan_out"`
	Frames     int             `json:"frames"`
	FrameBytes int             `json:"frame_bytes"`
	Scenarios  []RelayScenario `json:"scenarios"`
	// ThreeTierReduction vs FanOutTarget is the acceptance pair: the
	// 3-tier tree must cut root egress by at least the tree fan-out.
	ThreeTierReduction float64    `json:"three_tier_reduction"`
	FanOutTarget       int        `json:"fan_out_target"`
	Live               *RelayLive `json:"live"`
}

// Relay evaluates relay-tree fan-out for wide-area broadcast: flat vs
// 2-tier vs 3-tier trees at equal viewer count, on the analytic model
// sized from a real encoded frame, plus a small live loopback tree for
// grounding.
func (c *Context) Relay() (*RelayResult, error) {
	size := 512
	viewers, fanOut, frames := 2000, 8, 100
	liveViewers, liveFrames := 12, 15
	if c.Quick {
		size = 256
		viewers, fanOut, frames = 50, 4, 20
		liveViewers, liveFrames = 6, 10
	}
	base, err := c.frame("jet", size)
	if err != nil {
		return nil, err
	}
	src := detailFrame(base, 24)
	jpeg, err := compress.ByName("jpeg")
	if err != nil {
		return nil, err
	}
	encoded, err := jpeg.EncodeFrame(src)
	if err != nil {
		return nil, err
	}
	frameBytes := len(encoded)

	mix := []wan.Profile{wan.LAN(), wan.NASAUCD(), wan.JapanUCD()}
	model := func(tiers int) (sim.RelayTreeResult, error) {
		return sim.SimulateRelayTree(sim.RelayTreeConfig{
			Viewers:    viewers,
			Mix:        mix,
			Tiers:      tiers,
			FanOut:     fanOut,
			FrameBytes: frameBytes,
			Frames:     frames,
			Target:     120 * time.Millisecond,
		})
	}

	res := &RelayResult{
		Viewers: viewers, FanOut: fanOut, Frames: frames, FrameBytes: frameBytes,
		FanOutTarget: fanOut,
	}
	var flatEgress int64
	for _, sc := range []struct {
		name  string
		tiers int
	}{{"flat", 1}, {"2-tier", 2}, {"3-tier", 3}} {
		r, err := model(sc.tiers)
		if err != nil {
			return nil, fmt.Errorf("relay model %s: %w", sc.name, err)
		}
		if sc.tiers == 1 {
			flatEgress = r.RootEgressBytes
		}
		row := RelayScenario{
			Name: sc.name, Tiers: sc.tiers, Viewers: viewers,
			RootEgressMB: float64(r.RootEgressBytes) / 1e6,
			TotalMB:      float64(r.TotalBytes) / 1e6,
			P50AgeMs:     r.P50FrameAge.Seconds() * 1e3,
			P99AgeMs:     r.P99FrameAge.Seconds() * 1e3,
			MaxAgeMs:     r.MaxFrameAge.Seconds() * 1e3,
		}
		if sc.tiers > 1 {
			row.FanOut = fanOut
		}
		for _, ts := range r.TierStats {
			row.TierNodes = append(row.TierNodes, ts.Nodes)
			row.TierEncodesPerFrame = append(row.TierEncodesPerFrame, ts.EncodesPerFrame)
		}
		if r.RootEgressBytes > 0 {
			row.EgressReduction = float64(flatEgress) / float64(r.RootEgressBytes)
		}
		if sc.tiers == 3 {
			res.ThreeTierReduction = row.EgressReduction
		}
		res.Scenarios = append(res.Scenarios, row)
	}

	live, err := c.relayLive(liveViewers, liveFrames)
	if err != nil {
		return nil, fmt.Errorf("relay live run: %w", err)
	}
	res.Live = live

	c.printRelay(res)
	return res, nil
}

// relayLive streams a short animation to the same viewer population
// twice — flat against one broker, then through a 2-tier fan-out-2
// relay tree — and compares measured root egress.
func (c *Context) relayLive(nViewers, frames int) (*RelayLive, error) {
	runFlat := func() (int64, error) {
		b, err := stream.ListenAndServe("127.0.0.1:0", stream.Config{Target: 60 * time.Millisecond})
		if err != nil {
			return 0, err
		}
		defer b.Close()
		return streamToViewers([]string{b.Addr().String()}, b.Addr().String(), nViewers, frames,
			func() int64 { return b.Stats().BytesOut.Load() })
	}
	flatBytes, err := runFlat()
	if err != nil {
		return nil, err
	}

	tree, err := relay.BuildTree(relay.TreeSpec{
		Tiers: 2, FanOut: 2,
		Stream: stream.Config{Target: 60 * time.Millisecond},
		Retry:  transport.RetryPolicy{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Factor: 2, MaxAttempts: 8},
	})
	if err != nil {
		return nil, err
	}
	defer tree.Close()

	// With -trace, every broker in the tree records its per-client
	// stage spans; the merged trace lands at TracePath with tracks
	// prefixed by node name.
	var tracers map[string]*obs.Tracer
	if c.TracePath != "" {
		tracers = map[string]*obs.Tracer{"root": obs.NewTracer(obs.WallClock(), obs.DefaultTraceCapacity)}
		tree.Root.SetTracer(tracers["root"])
		for _, n := range tree.Nodes() {
			name := n.Status().Name
			tracers[name] = obs.NewTracer(obs.WallClock(), obs.DefaultTraceCapacity)
			n.Broker().SetTracer(tracers[name])
		}
	}

	treeBytes, err := streamToViewers(tree.EdgeAddrs(), tree.Root.Addr().String(), nViewers, frames,
		func() int64 { return tree.Root.Stats().BytesOut.Load() })
	if err != nil {
		return nil, err
	}
	if tracers != nil {
		if err := writeMergedTrace(c.TracePath, tracers); err != nil {
			return nil, err
		}
		c.printf("wrote relay-tree trace to %s\n", c.TracePath)
	}

	live := &RelayLive{
		Viewers: nViewers, Frames: frames,
		FlatRootKB:  float64(flatBytes) / 1e3,
		TreeRootKB:  float64(treeBytes) / 1e3,
		TierEncodes: tree.TierEncodes(),
	}
	if treeBytes > 0 {
		live.Reduction = float64(flatBytes) / float64(treeBytes)
	}
	return live, nil
}

// writeMergedTrace merges per-node tracer spans into one Chrome
// trace, each track prefixed with its node name so root and relay
// stages line up on one timeline.
func writeMergedTrace(path string, tracers map[string]*obs.Tracer) error {
	names := make([]string, 0, len(tracers))
	for name := range tracers {
		names = append(names, name)
	}
	sort.Strings(names)
	var spans []obs.Span
	for _, name := range names {
		for _, s := range tracers[name].Spans() {
			s.Track = name + "/" + s.Track
			spans = append(spans, s)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChrome(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// streamToViewers attaches nViewers across the edge addresses
// round-robin, streams a small animation into rootAddr, waits until
// every viewer displayed it, and returns rootBytes().
func streamToViewers(edges []string, rootAddr string, nViewers, frames int, rootBytes func() int64) (int64, error) {
	var viewers []*display.Viewer
	defer func() {
		for _, v := range viewers {
			v.Close()
		}
	}()
	for i := 0; i < nViewers; i++ {
		ep, err := transport.Dial(edges[i%len(edges)], transport.RoleDisplay, nil)
		if err != nil {
			return 0, err
		}
		v := display.NewViewer(ep)
		viewers = append(viewers, v)
		go func() {
			for range v.Frames() {
			}
		}()
	}
	rend, err := transport.Dial(rootAddr, transport.RoleRenderer, nil)
	if err != nil {
		return 0, err
	}
	defer rend.Close()

	side := 64
	for id := 0; id < frames; id++ {
		f := testPattern(side, id)
		data, err := compress.Raw{}.EncodeFrame(f)
		if err != nil {
			return 0, err
		}
		im := &transport.ImageMsg{
			FrameID:    uint32(id),
			PieceCount: 1,
			X1:         uint16(side), Y1: uint16(side),
			W: uint16(side), H: uint16(side),
			Codec: "raw",
			Data:  data,
		}
		if err := rend.SendImage(im); err != nil {
			return 0, fmt.Errorf("renderer send %d: %w", id, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, v := range viewers {
			if v.Stats().Frames < frames {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	for i, v := range viewers {
		if got := v.Stats().Frames; got < frames {
			return 0, fmt.Errorf("viewer %d displayed %d/%d frames", i, got, frames)
		}
	}
	return rootBytes(), nil
}

func (c *Context) printRelay(res *RelayResult) {
	c.printf("Relay-tree fan-out: %d viewers on mixed lan/nasa-ucd/japan-ucd links, %d-frame animation, %d-byte frames, fan-out %d\n",
		res.Viewers, res.Frames, res.FrameBytes, res.FanOut)
	t := metrics.NewTable("topology", "nodes/tier", "root-egress-MB", "reduction", "encodes/frame-per-tier", "p50-ms", "p99-ms", "max-ms")
	for _, sc := range res.Scenarios {
		t.Row(sc.Name, joinInts(sc.TierNodes), fmt.Sprintf("%.1f", sc.RootEgressMB),
			fmt.Sprintf("%.1fx", sc.EgressReduction), joinInt64s(sc.TierEncodesPerFrame),
			fmt.Sprintf("%.1f", sc.P50AgeMs), fmt.Sprintf("%.1f", sc.P99AgeMs), fmt.Sprintf("%.1f", sc.MaxAgeMs))
	}
	c.printf("%s", t.String())
	c.printf("3-tier root-egress reduction: %.1fx (acceptance target >= %dx fan-out)\n",
		res.ThreeTierReduction, res.FanOutTarget)
	if res.Live != nil {
		c.printf("live loopback grounding, %d viewers, 2-tier/fan-out-2 tree: root egress %.0f KB vs flat %.0f KB (%.1fx less), tier encodes %s\n\n",
			res.Live.Viewers, res.Live.TreeRootKB, res.Live.FlatRootKB, res.Live.Reduction, joinInt64s(res.Live.TierEncodes))
	}
}

// testPattern is a deterministic viewer-visible frame for the live run.
func testPattern(side, seed int) *img.Frame {
	f := img.NewFrame(side, side)
	for i := range f.Pix {
		f.Pix[i] = byte(seed*31 + i)
	}
	return f
}

func joinInts(v []int) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, "/")
}

func joinInt64s(v []int64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, "/")
}
