//go:build !race

package experiments

// raceEnabled reports whether the race detector is instrumenting this
// test binary; timing-ratio assertions are skipped under its 5-20x
// slowdown.
const raceEnabled = false
