package experiments

import (
	"fmt"
	"time"

	"repro/internal/img"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/wan"
)

// CodecPoint is one operating point's measured outcome in the codec
// ladder evaluation.
type CodecPoint struct {
	Point string `json:"point"`
	Bytes int    `json:"bytes"`
	// Ratio is raw bytes / encoded bytes (higher is better).
	Ratio float64 `json:"ratio"`
	// Encode/decode throughput over the raw pixel volume.
	EncMBs float64 `json:"enc_mb_s"`
	DecMBs float64 `json:"dec_mb_s"`
	// MaxError is the measured per-channel reconstruction error bound;
	// Near is the configured jls bound it must not exceed (0 for
	// lossless and truncation-free points; progressive previews are
	// unbounded by design and report the measured value only).
	MaxError int  `json:"max_error"`
	Near     int  `json:"near"`
	Lossless bool `json:"lossless"`
	// Progressive points: bytes of this truncation, as a fraction of
	// the full stream, and the modeled time for those bytes to land on
	// the calibrated Japan link (latency + bytes/bandwidth).
	PreviewFraction float64 `json:"preview_fraction,omitempty"`
	JapanS          float64 `json:"japan_s,omitempty"`
}

// CodecResult is the `-exp codec` evaluation: every ladder rung plus
// the reference codecs on a rendered frame, with the PR's acceptance
// contrasts extracted.
type CodecResult struct {
	Size     int          `json:"size"`
	RawBytes int          `json:"raw_bytes"`
	Points   []CodecPoint `json:"points"`
	// jls must beat LZO's lossless ratio at every NEAR in {0,2,4}, and
	// beat BZIP's encode throughput at NEAR 0.
	LzoRatio         float64 `json:"lzo_ratio"`
	JlsRatioN0       float64 `json:"jls_ratio_n0"`
	JlsBeatsLzoRatio bool    `json:"jls_beats_lzo_ratio"`
	BzipEncMBs       float64 `json:"bzip_enc_mb_s"`
	JlsEncMBs        float64 `json:"jls_enc_mb_s"`
	JlsBeatsBzipEnc  bool    `json:"jls_beats_bzip_enc"`
	// NearBoundHolds: every jls point's measured error is within its
	// configured NEAR, and every lossless point reconstructs exactly.
	NearBoundHolds bool `json:"near_bound_holds"`
	// Progressive preview: bytes to the first usable frame (the
	// prog@p1 truncation), as a fraction of the full stream
	// (acceptance: <= 0.25), and the modeled time for those bytes on
	// the Japan link.
	PreviewBytes    int     `json:"preview_bytes"`
	PreviewFraction float64 `json:"preview_fraction"`
	JapanPreviewS   float64 `json:"japan_preview_s"`
	JapanFullS      float64 `json:"japan_full_s"`
}

// texturedFrame overlays deterministic value noise — amplitude amp,
// lattice spacing step, bilinearly interpolated — on a rendered frame.
// The result has fine-scale structure that is spatially correlated,
// like the paper's full-resolution turbulence data, rather than iid.
func texturedFrame(base *img.Frame, amp, step int) *img.Frame {
	gw, gh := base.W/step+2, base.H/step+2
	// One lattice per channel: a transfer function maps the same scalar
	// to correlated but distinct R/G/B, so the byte stream must not
	// repeat in exact 3-byte patterns (which LZO's dictionary would
	// exploit in a way real renders do not allow).
	grid := make([]int, 3*gw*gh)
	state := uint32(0x9e3779b9)
	for i := range grid {
		state = state*1664525 + 1013904223
		grid[i] = int(state>>24)%(2*amp+1) - amp
	}
	f := img.NewFrame(base.W, base.H)
	for y := 0; y < base.H; y++ {
		gy, fy := y/step, y%step
		for x := 0; x < base.W; x++ {
			gx, fx := x/step, x%step
			i := (y*base.W + x) * 3
			for ch := 0; ch < 3; ch++ {
				g := grid[ch*gw*gh:]
				g00 := g[gy*gw+gx]
				g10 := g[gy*gw+gx+1]
				g01 := g[(gy+1)*gw+gx]
				g11 := g[(gy+1)*gw+gx+1]
				top := g00*(step-fx) + g10*fx
				bot := g01*(step-fx) + g11*fx
				n := (top*(step-fy) + bot*fy) / (step * step)
				p := int(base.Pix[i+ch]) + n
				if p < 0 {
					p = 0
				} else if p > 255 {
					p = 255
				}
				f.Pix[i+ch] = byte(p)
			}
		}
	}
	return f
}

// codecPoints is the measured set: the full default ladder plus the
// reference codecs the acceptance contrasts need.
func codecPoints() []stream.Point {
	pts := []stream.Point{
		{Codec: "raw"},
		{Codec: "lzo"},
		{Codec: "bzip"},
		{Codec: "prog"}, // full stream: the denominator for preview fractions
	}
	return append(pts, stream.DefaultLadder()...)
}

// measureCodec times enc/dec over reps repetitions and verifies the
// reconstruction bound.
func measureCodec(p stream.Point, f *img.Frame, reps int) (*CodecPoint, error) {
	codec, err := p.FrameCodec()
	if err != nil {
		return nil, err
	}
	data, err := codec.EncodeFrame(f)
	if err != nil {
		return nil, fmt.Errorf("%v encode: %w", p, err)
	}
	dec, err := codec.DecodeFrame(data)
	if err != nil {
		return nil, fmt.Errorf("%v decode: %w", p, err)
	}
	if dec.W != f.W || dec.H != f.H {
		return nil, fmt.Errorf("%v decoded %dx%d, want %dx%d", p, dec.W, dec.H, f.W, f.H)
	}
	maxErr := 0
	for i := range f.Pix {
		d := int(f.Pix[i]) - int(dec.Pix[i])
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	encT := time.Duration(0)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if _, err := codec.EncodeFrame(f); err != nil {
			return nil, err
		}
		encT += time.Since(t0)
	}
	decT := time.Duration(0)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if _, err := codec.DecodeFrame(data); err != nil {
			return nil, err
		}
		decT += time.Since(t0)
	}
	raw := float64(len(f.Pix))
	mbs := func(total time.Duration) float64 {
		if total <= 0 {
			return 0
		}
		return raw * float64(reps) / total.Seconds() / 1e6
	}
	return &CodecPoint{
		Point:    p.String(),
		Bytes:    len(data),
		Ratio:    raw / float64(len(data)),
		EncMBs:   mbs(encT),
		DecMBs:   mbs(decT),
		MaxError: maxErr,
		Near:     p.Near,
		Lossless: p.Codec != "jpeg" && p.Codec != "jpeg+lzo" && p.Codec != "jpeg+bzip" && p.Near == 0 && p.Passes == 0,
	}, nil
}

// Codec evaluates the compression ladder end to end on a rendered
// frame: ratio, throughput, and error bound per operating point, plus
// the acceptance contrasts (jls vs lzo/bzip, progressive preview cost
// on the Japan link).
func (c *Context) Codec() (*CodecResult, error) {
	size, reps := 512, 5
	if c.Quick {
		size, reps = 256, 2
	}
	base, err := c.frame("jet", size)
	if err != nil {
		return nil, err
	}
	// As in the adaptive experiment: the downscaled volumes render far
	// smoother than the paper's full-resolution turbulence data, so the
	// run-length-friendly background would dominate every contrast.
	// Unlike detailFrame's white noise (the pathological worst case for
	// predictive coding — no codec can predict iid samples), turbulence
	// detail is spatially correlated, so the overlay here is value
	// noise: deterministic noise on a coarse lattice, bilinearly
	// interpolated to pixel scale.
	f := texturedFrame(base, 24, 4)
	res := &CodecResult{Size: size, RawBytes: len(f.Pix), NearBoundHolds: true}
	japan := wan.JapanUCD()
	var fullProg, lzoPt, bzipPt, jlsPt *CodecPoint
	for _, p := range codecPoints() {
		cp, err := measureCodec(p, f, reps)
		if err != nil {
			return nil, err
		}
		switch {
		case cp.Lossless && cp.MaxError != 0:
			res.NearBoundHolds = false
		case p.Codec == "jls" && cp.MaxError > p.Near:
			res.NearBoundHolds = false
		}
		if p.Codec == "prog" {
			cp.JapanS = japan.Latency.Seconds() + float64(cp.Bytes)/japan.Bandwidth
			if p.Passes == 0 {
				fullProg = cp
			}
		}
		switch {
		case p.Codec == "lzo":
			lzoPt = cp
		case p.Codec == "bzip":
			bzipPt = cp
		case p.Codec == "jls" && p.Near == 0:
			jlsPt = cp
		}
		res.Points = append(res.Points, *cp)
	}
	if fullProg != nil {
		for i := range res.Points {
			cp := &res.Points[i]
			if cp.JapanS > 0 {
				cp.PreviewFraction = float64(cp.Bytes) / float64(fullProg.Bytes)
			}
			if cp.Point == "prog@p1" {
				res.PreviewBytes = cp.Bytes
				res.PreviewFraction = cp.PreviewFraction
				res.JapanPreviewS = cp.JapanS
			}
		}
		res.JapanFullS = fullProg.JapanS
	}
	res.LzoRatio = lzoPt.Ratio
	res.JlsRatioN0 = jlsPt.Ratio
	res.BzipEncMBs = bzipPt.EncMBs
	res.JlsEncMBs = jlsPt.EncMBs
	res.JlsBeatsBzipEnc = jlsPt.EncMBs > bzipPt.EncMBs
	res.JlsBeatsLzoRatio = true
	for _, p := range []string{"jls", "jls@n2", "jls@n4"} {
		for _, cp := range res.Points {
			if cp.Point == p && cp.Ratio <= lzoPt.Ratio {
				res.JlsBeatsLzoRatio = false
			}
		}
	}
	c.printCodec(res)
	return res, nil
}

func (c *Context) printCodec(res *CodecResult) {
	c.printf("Codec ladder: %d^2 rendered jet frame, %d raw bytes\n", res.Size, res.RawBytes)
	t := metrics.NewTable("point", "bytes", "ratio", "enc-MB/s", "dec-MB/s", "max-err", "japan-s")
	for _, cp := range res.Points {
		japan := "-"
		if cp.JapanS > 0 {
			japan = fmt.Sprintf("%.2f", cp.JapanS)
		}
		t.Row(cp.Point, fmt.Sprintf("%d", cp.Bytes), fmt.Sprintf("%.1f", cp.Ratio),
			fmt.Sprintf("%.1f", cp.EncMBs), fmt.Sprintf("%.1f", cp.DecMBs),
			fmt.Sprintf("%d", cp.MaxError), japan)
	}
	c.printf("%s", t.String())
	c.printf("jls lossless ratio %.1f vs lzo %.1f (beats: %v); jls encode %.1f MB/s vs bzip %.1f MB/s (beats: %v)\n",
		res.JlsRatioN0, res.LzoRatio, res.JlsBeatsLzoRatio, res.JlsEncMBs, res.BzipEncMBs, res.JlsBeatsBzipEnc)
	c.printf("progressive preview: %.1f%% of the full stream; modeled japan-ucd first frame %.2fs (full stream %.2fs)\n\n",
		100*res.PreviewFraction, res.JapanPreviewS, res.JapanFullS)
}
