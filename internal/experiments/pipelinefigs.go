package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/wan"
)

// Fig6Result holds overall execution time versus partition count for
// several machine sizes.
type Fig6Result struct {
	// Ls[p] lists the partition counts tried for machine size p.
	Ls map[int][]int
	// Overall[p][l] is the overall execution time.
	Overall map[int]map[int]time.Duration
	// OptimalL[p] is the argmin.
	OptimalL map[int]int
	Steps    int
}

// fig6Ps are the machine sizes of Figure 6.
var fig6Ps = []int{16, 32, 64}

// calibratedConfig builds the simulator configuration for the RWCP
// batch experiments: jet dataset, 128 steps, 256x256 images.
func (c *Context) calibratedConfig(p, l, steps int) (sim.Config, error) {
	cal, err := c.calibration()
	if err != nil {
		return sim.Config{}, err
	}
	m, _ := cal.ScaleToPaper(sim.RWCP(), jetDims())
	w := cal.WorkloadFor(m, jetDims(), steps, 256, 256)
	// Figures 6 and 7 are batch-mode on the cluster; image output goes
	// to the fast local network (the WAN study is Figures 8-11).
	w.Link = wan.LAN()
	return sim.Config{Machine: m, Work: w, P: p, L: l}, nil
}

// Fig6 sweeps the partition count for P in {16, 32, 64}.
func (c *Context) Fig6() (*Fig6Result, error) {
	const steps = 128 // "the first 128 time steps of the turbulent jet data set"
	res := &Fig6Result{
		Ls:       map[int][]int{},
		Overall:  map[int]map[int]time.Duration{},
		OptimalL: map[int]int{},
		Steps:    steps,
	}
	for _, p := range fig6Ps {
		res.Overall[p] = map[int]time.Duration{}
		best := 0
		for l := 1; l <= p; l *= 2 {
			cfg, err := c.calibratedConfig(p, l, steps)
			if err != nil {
				return nil, err
			}
			r, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			res.Ls[p] = append(res.Ls[p], l)
			res.Overall[p][l] = r.Overall
			if best == 0 || r.Overall < res.Overall[p][best] {
				best = l
			}
		}
		res.OptimalL[p] = best
	}
	c.printf("Figure 6: overall execution time vs number of partitions (RWCP, jet, %d steps, 256x256)\n", steps)
	var series []*metrics.Series
	for _, p := range fig6Ps {
		s := &metrics.Series{Name: fmt.Sprintf("P=%d", p)}
		for _, l := range res.Ls[p] {
			s.Add(float64(l), res.Overall[p][l].Seconds())
		}
		series = append(series, s)
	}
	// Pad shorter series: WriteSeries shares the x column of the
	// longest machine (P=64); print per machine instead for clarity.
	for _, s := range series {
		_ = metrics.WriteSeries(c.Out, "L", s)
		c.printf("\n")
	}
	for _, p := range fig6Ps {
		c.printf("optimal L for P=%d: %d\n", p, res.OptimalL[p])
	}
	c.printf("\n")
	return res, nil
}

// Fig7Result holds the three §3 metrics versus partition count for
// P = 32.
type Fig7Result struct {
	Ls         []int
	Startup    map[int]time.Duration
	Overall    map[int]time.Duration
	InterFrame map[int]time.Duration
}

// Fig7 reports start-up latency, overall time and inter-frame delay
// versus L at P=32.
func (c *Context) Fig7() (*Fig7Result, error) {
	const p, steps = 32, 128
	res := &Fig7Result{
		Startup:    map[int]time.Duration{},
		Overall:    map[int]time.Duration{},
		InterFrame: map[int]time.Duration{},
	}
	for l := 1; l <= p; l *= 2 {
		cfg, err := c.calibratedConfig(p, l, steps)
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		res.Ls = append(res.Ls, l)
		res.Startup[l] = r.StartupLatency
		res.Overall[l] = r.Overall
		res.InterFrame[l] = r.InterFrameDelay
	}
	c.printf("Figure 7: metrics vs number of partitions (P=32, RWCP)\n")
	sS := &metrics.Series{Name: "startup(s)"}
	sO := &metrics.Series{Name: "overall(s)"}
	sI := &metrics.Series{Name: "interframe(s)"}
	for _, l := range res.Ls {
		sS.Add(float64(l), res.Startup[l].Seconds())
		sO.Add(float64(l), res.Overall[l].Seconds())
		sI.Add(float64(l), res.InterFrame[l].Seconds())
	}
	_ = metrics.WriteSeries(c.Out, "L", sS, sO, sI)
	c.printf("\n")
	return res, nil
}

// Trace prints an ASCII Gantt chart of the first steps of the
// calibrated pipeline at the Figure 6 optimum (P=32, L=4) — a
// diagnostic view of how input, rendering and output overlap.
func (c *Context) Trace() (string, error) {
	cfg, err := c.calibratedConfig(32, 4, 12)
	if err != nil {
		return "", err
	}
	r, err := sim.Run(cfg)
	if err != nil {
		return "", err
	}
	out := sim.GanttString(r.Trace, 100)
	c.printf("%s\n", out)
	if c.TracePath != "" {
		path := simTracePath(c.TracePath)
		tr := obs.NewTracer(nil, obs.DefaultTraceCapacity)
		sim.ExportSpans(tr, r.Trace)
		f, err := os.Create(path)
		if err != nil {
			return "", err
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		c.printf("wrote simulated-schedule Chrome trace %s\n", path)
	}
	return out, nil
}

// simTracePath derives the simulated-schedule trace file name from the
// main trace path: out.json -> out.sim.json.
func simTracePath(p string) string {
	if ext := filepath.Ext(p); ext == ".json" {
		return strings.TrimSuffix(p, ext) + ".sim" + ext
	}
	return p + ".sim.json"
}

// Fig9Row is one bar pair of Figure 9: per-frame render time vs
// display time at one image size.
type Fig9Row struct {
	Size    int
	Render  time.Duration // render + composite + compress on 16 nodes
	Display time.Duration // transfer + viewer decode
}

// Fig9Result holds the X (top chart) and daemon (bottom chart)
// breakdowns.
type Fig9Result struct {
	X      []Fig9Row
	Daemon []Fig9Row
}

// Fig9 reproduces the render/display time breakdown on 16 processors
// of the O2K with the NASA–UCD link: the simulated render stage
// (calibrated) plus the real measured display path.
func (c *Context) Fig9() (*Fig9Result, error) {
	cal, err := c.calibration()
	if err != nil {
		return nil, err
	}
	m, _ := cal.ScaleToPaper(sim.O2K(), jetDims())
	link := c.scaleLink(wan.NASAUCD())
	reps := 2
	if c.Quick {
		reps = 1
	}
	res := &Fig9Result{}
	for _, s := range c.sizes() {
		w := cal.WorkloadFor(m, jetDims(), 16, s, s)
		w.Link = link
		// Interactive viewing: the whole 16-processor machine renders
		// each frame (one group), as in the paper's Figure 9 setup.
		cfg := sim.Config{Machine: m, Work: w, P: 16, L: 1}
		r, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		// Real display-path measurements.
		x, err := c.measureDisplayPath("jet", s, "raw", link, reps)
		if err != nil {
			return nil, err
		}
		cp, err := c.measureDisplayPath("jet", s, "jpeg+lzo", link, reps)
		if err != nil {
			return nil, err
		}
		res.X = append(res.X, Fig9Row{Size: s, Render: r.RenderPerFrame, Display: x.Transfer + x.Decode})
		res.Daemon = append(res.Daemon, Fig9Row{Size: s, Render: r.RenderPerFrame + cp.Encode, Display: cp.Transfer + cp.Decode})
	}
	c.printf("Figure 9: per-frame render vs display time, 16 procs O2K, NASA->UCD\n")
	t := metrics.NewTable("imgsize", "mode", "render(s)", "display(s)")
	for i := range res.X {
		t.Row(fmt.Sprintf("%d^2", res.X[i].Size), "X",
			fmt.Sprintf("%.3f", res.X[i].Render.Seconds()),
			fmt.Sprintf("%.3f", res.X[i].Display.Seconds()))
		t.Row(fmt.Sprintf("%d^2", res.Daemon[i].Size), "daemon",
			fmt.Sprintf("%.3f", res.Daemon[i].Render.Seconds()),
			fmt.Sprintf("%.3f", res.Daemon[i].Display.Seconds()))
	}
	c.printf("%s\n", t.String())
	return res, nil
}
