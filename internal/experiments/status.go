package experiments

import (
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/compress"
	"repro/internal/display"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/provenance"
	"repro/internal/relay"
	"repro/internal/stream"
	"repro/internal/transport"
)

// StatusResult is the end-to-end frame-provenance evaluation: a live
// loopback relay tree with one deterministically impaired interior
// link, crawled by the cross-process collector, which must attribute
// the dominant per-hop latency to exactly that link.
type StatusResult struct {
	Frames  int `json:"frames"`
	Viewers int `json:"viewers"`
	Tiers   int `json:"tiers"`
	FanOut  int `json:"fan_out"`
	// ImpairedLink is the link the fault injector stalls
	// (parent→child in node names); SlowestLink is what the collector
	// blamed. Attributed is the acceptance bit: they must match.
	ImpairedLink string `json:"impaired_link"`
	SlowestLink  string `json:"slowest_link"`
	Attributed   bool   `json:"attributed"`
	// ImpairedP95MS vs CleanMaxP95MS separates the blamed link from
	// the healthiest competition: attribution should rest on a real
	// latency gap, not a tie-break.
	ImpairedP95MS float64 `json:"impaired_p95_ms"`
	CleanMaxP95MS float64 `json:"clean_max_p95_ms"`
	// Journeys is how many distinct (trace, frame) histories merged.
	Journeys int                   `json:"journeys"`
	Nodes    []provenance.NodeInfo `json:"nodes"`
	Links    []provenance.LinkStat `json:"links"`
}

// Status runs the WAN status-plane experiment: a 2-tier fan-out-2
// relay tree on loopback, every process carrying the v3 trace context
// and recording provenance events behind a real /debug/frames HTTP
// endpoint, with one interior relay's upstream socket stalled by the
// deterministic fault injector. The collector crawls the tree, merges
// events with clock-offset correction, and must name the impaired
// link as the dominant latency contributor.
func (c *Context) Status() (*StatusResult, error) {
	frames, stall := 40, 40*time.Millisecond
	if c.Quick {
		frames, stall = 20, 25*time.Millisecond
	}
	const tiers, fanOut = 2, 2
	side := 64

	// Impair exactly one interior link: t1-n1's upstream read side
	// stalls every KiB, so every inbound frame (≈1.5 KiB after the
	// root's re-encode) crosses the root→t1-n1 link tens of
	// milliseconds slower than its sibling's.
	inj := fault.New(fault.Plan{ReadStallEveryBytes: 1 << 10, ReadStall: stall})
	impaired := "root→t1-n1"

	tree, err := relay.BuildTree(relay.TreeSpec{
		Tiers: tiers, FanOut: fanOut,
		Stream: stream.Config{Target: 20 * time.Millisecond, QueueDepth: 4},
		Retry:  transport.RetryPolicy{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Factor: 2, MaxAttempts: 8},
		WrapUpstreamFor: func(tier, index int) func(net.Conn) net.Conn {
			if tier == 1 && index == 1 {
				return inj.Wrapper()
			}
			return nil
		},
		Provenance: true,
	})
	if err != nil {
		return nil, err
	}
	defer tree.Close()

	// Every process gets a real debug server so the collector crawls
	// HTTP endpoints, not in-process shortcuts.
	var servers []*obs.DebugServer
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	serve := func(component string, l *provenance.Log) (string, error) {
		dbg, err := obs.StartDebugServer("127.0.0.1:0", obs.DebugConfig{
			Component: component, Frames: l.Handler(),
		})
		if err != nil {
			return "", err
		}
		servers = append(servers, dbg)
		return "http://" + dbg.Addr().String(), nil
	}

	rendLog := provenance.NewLog("renderer", 0)
	rendURL, err := serve("renderserver", rendLog)
	if err != nil {
		return nil, err
	}
	rootURL, err := serve("displaydaemon", tree.RootProv)
	if err != nil {
		return nil, err
	}
	refs := []provenance.NodeRef{
		{Name: "renderer", URL: rendURL},
		{Name: "root", URL: rootURL, Addr: tree.Root.Addr().String()},
	}
	for _, n := range tree.Nodes() {
		url, err := serve("displaydaemon", n.Provenance())
		if err != nil {
			return nil, err
		}
		refs = append(refs, provenance.NodeRef{
			Name: n.Provenance().Node(), URL: url, Addr: n.Addr().String(),
		})
	}

	// One viewer per edge daemon, each with its own provenance log.
	edges := tree.EdgeAddrs()
	var viewers []*display.Viewer
	defer func() {
		for _, v := range viewers {
			v.Close()
		}
	}()
	for i, addr := range edges {
		ep, err := transport.Dial(addr, transport.RoleDisplay, nil)
		if err != nil {
			return nil, err
		}
		v := display.NewViewer(ep)
		vlog := provenance.NewLog(fmt.Sprintf("viewer-%d", i), 0)
		v.SetProvenance(vlog, addr)
		url, err := serve("viewer", vlog)
		if err != nil {
			v.Close()
			return nil, err
		}
		viewers = append(viewers, v)
		go func() {
			for range v.Frames() {
			}
		}()
		refs = append(refs, provenance.NodeRef{Name: vlog.Node(), URL: url})
	}

	// Synthetic traced renderer: raw frames into the root with the v3
	// trace context, recording origin events at hop 0.
	rend, err := transport.Dial(tree.Root.Addr().String(), transport.RoleRenderer, nil)
	if err != nil {
		return nil, err
	}
	defer rend.Close()
	const traceID = uint64(0x5EED0001)
	for id := 0; id < frames; id++ {
		f := testPattern(side, id)
		rendLog.Record(provenance.Event{Trace: traceID, Frame: uint32(id), Hop: 0, Event: provenance.EvRendered})
		data, err := compress.Raw{}.EncodeFrame(f)
		if err != nil {
			return nil, err
		}
		im := &transport.ImageMsg{
			FrameID:    uint32(id),
			PieceCount: 1,
			X1:         uint16(side), Y1: uint16(side),
			W: uint16(side), H: uint16(side),
			Codec: "raw",
			Data:  data,
		}
		payload, err := im.Marshal()
		if err != nil {
			return nil, err
		}
		rendLog.Record(provenance.Event{Trace: traceID, Frame: uint32(id), Hop: 0, Event: provenance.EvCompressed, Bytes: len(payload), Cause: "raw"})
		msg := transport.Message{
			Type:    transport.MsgImage,
			Payload: payload,
			Trace:   &transport.TraceCtx{TraceID: traceID, FrameID: uint32(id), Hop: 1, OriginUnixNano: time.Now().UnixNano()},
		}
		if err := rend.Send(msg); err != nil {
			return nil, fmt.Errorf("renderer send %d: %w", id, err)
		}
		rendLog.Record(provenance.Event{Trace: traceID, Frame: uint32(id), Hop: 0, Event: provenance.EvSent, Bytes: len(payload)})
		time.Sleep(25 * time.Millisecond)
	}

	// Wait for the tree to drain: the impaired branch runs tens of
	// milliseconds per frame behind, so require only the majority of
	// frames at each viewer (stall-induced pacer drops are themselves
	// part of what the tracer reports).
	minFrames := frames / 2
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, v := range viewers {
			if v.Stats().Frames < minFrames {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	time.Sleep(250 * time.Millisecond) // let in-flight frames settle

	col := provenance.Collector{Nodes: refs, Budget: 150 * time.Millisecond}
	rep, err := col.Collect()
	if err != nil {
		return nil, err
	}

	res := &StatusResult{
		Frames: frames, Viewers: len(viewers), Tiers: tiers, FanOut: fanOut,
		ImpairedLink: impaired,
		Journeys:     len(rep.Journeys),
		Nodes:        rep.Nodes,
		Links:        rep.Links,
	}
	ranked := rep.Attribution()
	if len(ranked) > 0 {
		res.SlowestLink = ranked[0].Link
		res.Attributed = res.SlowestLink == impaired
	}
	for _, l := range rep.Links {
		if l.Link == impaired {
			res.ImpairedP95MS = l.P95MS
		} else if l.P95MS > res.CleanMaxP95MS {
			res.CleanMaxP95MS = l.P95MS
		}
	}

	// Per-link SLO series land in a metrics registry exactly as a
	// monitoring scrape would see them.
	reg := obs.NewRegistry()
	rep.Instrument(reg)

	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return nil, err
		}
		if err := rep.WriteChrome(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		c.printf("wrote merged cross-process trace to %s\n", c.TracePath)
	}

	c.printStatus(res, rep)
	return res, nil
}

func (c *Context) printStatus(res *StatusResult, rep *provenance.Report) {
	c.printf("WAN status plane: %d-tier fan-out-%d tree, %d traced frames, read-stall fault on %s\n",
		res.Tiers, res.FanOut, res.Frames, res.ImpairedLink)
	c.printf("crawled %d nodes, merged %d frame journeys\n", len(res.Nodes), res.Journeys)
	for _, l := range rep.Attribution() {
		mark := ""
		if l.Link == res.ImpairedLink {
			mark = "  <-- injected fault"
		}
		c.printf("  link %-24s frames %3d  p50 %7.1fms  p95 %7.1fms  slowest-in %3d journeys  budget-ok %.2f%s\n",
			l.Link, l.Count, l.P50MS, l.P95MS, l.SlowestCount, l.BudgetOK, mark)
	}
	c.printf("attribution: slowest link = %s (impaired %s, match=%v)\n", res.SlowestLink, res.ImpairedLink, res.Attributed)
	c.printf("sample frame waterfalls:\n")
	rep.WriteWaterfalls(c.Out, 2)
	c.printf("\n")
}
