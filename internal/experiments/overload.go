package experiments

import (
	"time"

	"repro/internal/soak"
)

// OverloadResult is the chaos-soak evaluation: the live loopback tree
// run under a seeded flood-and-fault schedule with a deliberately
// small memory budget, judged against the guard layer's resilience
// invariants. The soak result is reported verbatim (including the
// per-invariant verdicts) so CI can gate on `passed` in the JSON.
type OverloadResult = soak.Result

// Overload runs the overload soak: a 2-tier fan-out-2 relay tree
// sharing one small governor budget, a renderer streaming at a fixed
// cadence, a 5x client flood of slow readers, a scripted partition
// window and a hard upstream kill on one edge link. Invariant trips
// set Passed=false in the result rather than failing the run, so
// `-json` still writes the evidence for CI to judge.
func (c *Context) Overload() (*OverloadResult, error) {
	cfg := soak.Config{Seed: 1}
	if c.Quick {
		cfg.BaselineFrames = 25
		cfg.FloodFrames = 40
		cfg.FrameInterval = 20 * time.Millisecond
		cfg.StallDuration = 150 * time.Millisecond
	}
	res, err := soak.Run(cfg)
	if err != nil {
		return nil, err
	}

	c.printf("\nOverload soak (seed %d, budget %d KiB, %d base + %d flood clients)\n",
		res.Seed, res.BudgetBytes>>10, res.BaseViewers, res.FloodClients)
	c.printf("  admitted %d  rejected %d  shed %d  peak %d KiB  recovery %.0fms (SLO %.0fms)\n",
		res.Admitted, res.Rejected, res.Shed, res.PeakUsedBytes>>10, res.RecoveryMS, res.RecoverySLOMS)
	c.printf("  %-20s %-6s %s\n", "invariant", "ok", "evidence")
	for _, inv := range res.Invariants {
		c.printf("  %-20s %-6v %s\n", inv.Name, inv.OK, inv.Detail)
	}
	if res.Passed {
		c.printf("  PASSED: graceful degradation under flood, recovery within SLO\n")
	} else {
		c.printf("  FAILED: one or more resilience invariants tripped\n")
	}
	return res, nil
}
