// Package experiments regenerates every table and figure of the
// paper's evaluation (§6). Each experiment returns a structured result
// and can print it in the paper's row/series format; cmd/paperbench
// drives them all, and bench_test.go wraps them as testing.B targets.
//
// Measurement strategy per experiment:
//
//   - Table 1 (compressed image sizes) — real renders of the jet
//     dataset at four sizes, encoded by the six real codecs.
//   - Figure 8 / Table 2 (frame transfer time / frame rate, NASA→UCD)
//     — real encoded frames pushed through real loopback TCP shaped to
//     the calibrated NASA–UCD link profile, decoded by the real
//     display path.
//   - Figures 6, 7 (partitioning) — the calibrated discrete-event
//     pipeline simulator (package sim): a 1-CPU host cannot time a
//     64-node machine directly.
//   - Figure 9 (render vs display breakdown) — simulated render stage
//     (calibrated) plus real shaped-link display measurements.
//   - Figure 10 (decompression vs piece count) — real parallel
//     compression pieces decoded by the real assembler.
//   - Figure 11 (Japan→UCD) — as Figure 8 on the Japan link profile.
//   - §6 dataset contrasts — real vortex/mixing renders and codecs.
package experiments

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	_ "repro/internal/compress/codecs"
	"repro/internal/datagen"
	"repro/internal/img"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/tf"
	"repro/internal/vol"
	"repro/internal/wan"
)

// Sizes are the image sizes of the paper's tables (square).
var Sizes = []int{128, 256, 512, 1024}

// Context caches rendered frames and the calibration across
// experiments.
type Context struct {
	// Quick shrinks sizes and repetition counts for use under `go
	// test` time budgets.
	Quick bool
	// Out receives printed tables; nil discards them.
	Out io.Writer
	// TracePath, when non-empty, makes tracing experiments write
	// Chrome trace-event JSON here: Pipeline writes its wall-clock
	// spans to TracePath itself; Trace writes the simulated schedule
	// to the same path with a ".sim" infix (out.json -> out.sim.json).
	TracePath string

	mu     sync.Mutex
	frames map[string]*img.Frame
	vols   map[string]*vol.Volume
	cal    *sim.Calibration
}

// New creates an experiment context.
func New(out io.Writer, quick bool) *Context {
	if out == nil {
		out = io.Discard
	}
	return &Context{Out: out, Quick: quick, frames: map[string]*img.Frame{}, vols: map[string]*vol.Volume{}}
}

func (c *Context) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// sizes returns the experiment's image sizes (smaller under Quick).
func (c *Context) sizes() []int {
	if c.Quick {
		return []int{128, 256}
	}
	return Sizes
}

// datasetScale returns the volume scale for a dataset.
func (c *Context) datasetScale(name string) float64 {
	if c.Quick {
		if name == "mixing" {
			return 0.2
		}
		return 0.4
	}
	if name == "mixing" {
		// Full-size mixing steps are 168 MB; half scale preserves the
		// "16x more data" contrast against the small sets while
		// staying comfortably in memory.
		return 0.5
	}
	return 1.0
}

// volume returns (cached) one representative time step of a dataset.
func (c *Context) volume(name string) (*vol.Volume, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.vols[name]; ok {
		return v, nil
	}
	gen, err := datagen.ByName(name, c.datasetScale(name), 30)
	if err != nil {
		return nil, err
	}
	v, err := gen.Step(15)
	if err != nil {
		return nil, err
	}
	c.vols[name] = v
	return v, nil
}

// frame returns (cached) a real rendered frame of a dataset at size
// s x s, framed like the paper's figures (volume filling the image).
func (c *Context) frame(name string, s int) (*img.Frame, error) {
	key := fmt.Sprintf("%s/%d", name, s)
	c.mu.Lock()
	if f, ok := c.frames[key]; ok {
		c.mu.Unlock()
		return f, nil
	}
	c.mu.Unlock()
	v, err := c.volume(name)
	if err != nil {
		return nil, err
	}
	tfn, err := tf.Preset(name)
	if err != nil {
		return nil, err
	}
	cam, err := render.NewOrbitCamera(v.Dims, 0.6, 0.35, 1.2)
	if err != nil {
		return nil, err
	}
	im, _, err := render.Render(v, cam, tfn, render.DefaultOptions(), s, s)
	if err != nil {
		return nil, err
	}
	f := im.ToFrame(0)
	c.mu.Lock()
	c.frames[key] = f
	c.mu.Unlock()
	return f, nil
}

// calibration runs (once) the renderer/codec calibration used by the
// simulator-backed experiments.
func (c *Context) calibration() (*sim.Calibration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cal != nil {
		return c.cal, nil
	}
	scale := 0.4
	if c.Quick {
		scale = 0.2
	}
	cal, err := sim.Calibrate(sim.CalibrationOptions{Dataset: "jet", Scale: scale, ImageSize: 96})
	if err != nil {
		return nil, err
	}
	c.cal = cal
	return cal, nil
}

// jetDims returns the full-scale jet grid (the simulated experiments
// always model the paper-scale dataset, regardless of Quick).
func jetDims() vol.Dims { return vol.Dims{NX: 129, NY: 129, NZ: 104} }

// measureTransfer pushes payload through a real loopback TCP
// connection whose sender side is shaped to the link profile and
// returns the time from first write to full receipt, averaged over
// reps.
func measureTransfer(payload []byte, link wan.Profile, reps int) (time.Duration, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		conn, err := ln.Accept()
		ch <- accepted{conn, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return 0, err
	}
	defer client.Close()
	acc := <-ch
	if acc.err != nil {
		return 0, acc.err
	}
	defer acc.conn.Close()
	shaped := wan.Shape(client, link)

	var total time.Duration
	buf := make([]byte, 64<<10)
	for r := 0; r < reps; r++ {
		done := make(chan error, 1)
		go func() {
			remaining := len(payload)
			for remaining > 0 {
				n, err := acc.conn.Read(buf)
				if err != nil {
					done <- err
					return
				}
				remaining -= n
			}
			done <- nil
		}()
		start := time.Now()
		if _, err := shaped.Write(payload); err != nil {
			return 0, err
		}
		if err := <-done; err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total / time.Duration(reps), nil
}

// scaleLink returns the link unchanged: transfer experiments always
// run against the calibrated profiles so times are comparable to the
// simulated render stages; Quick mode keeps runtime down via smaller
// image sizes and fewer repetitions instead.
func (c *Context) scaleLink(p wan.Profile) wan.Profile { return p }
