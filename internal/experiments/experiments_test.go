package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func quickCtx() (*Context, *strings.Builder) {
	var b strings.Builder
	return New(&b, true), &b
}

func TestTable1Shapes(t *testing.T) {
	c, out := quickCtx()
	res, err := c.Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sizes {
		raw := res.Bytes["raw"][s]
		if raw != s*s*3 {
			t.Fatalf("raw bytes %d at %d", raw, s)
		}
		lzo := res.Bytes["lzo"][s]
		bz := res.Bytes["bzip"][s]
		jp := res.Bytes["jpeg"][s]
		jl := res.Bytes["jpeg+lzo"][s]
		// Paper Table 1 ordering: raw > lzo > bzip > jpeg, and the
		// two-phase chain shaves more off.
		if !(raw > lzo && lzo > bz && bz > jp) {
			t.Fatalf("ordering broken at %d: raw=%d lzo=%d bzip=%d jpeg=%d", s, raw, lzo, bz, jp)
		}
		if jl >= jp {
			t.Fatalf("jpeg+lzo (%d) not smaller than jpeg (%d) at %d", jl, jp, s)
		}
		// "The compression rates we have achieved are 96% and up."
		if r := res.Ratio("jpeg", s); r > 0.04 {
			t.Fatalf("jpeg ratio %.3f at %d — paper reports >=96%% reduction", r, s)
		}
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Fatal("table not printed")
	}
}

func TestFig8Table2Shapes(t *testing.T) {
	c, _ := quickCtx()
	res, err := c.Table2()
	if err != nil {
		t.Fatal(err)
	}
	prevAdvantage := 0.0
	for _, s := range res.Sizes {
		x, cp := res.X[s], res.Comp[s]
		if cp.Total() >= x.Total() {
			t.Fatalf("at %d: compression display %v not faster than X %v", s, cp.Total(), x.Total())
		}
		if cp.FPS() <= x.FPS() {
			t.Fatalf("at %d: compression fps %.2f not above X %.2f", s, cp.FPS(), x.FPS())
		}
		// "as the image size increases, the benefit of using
		// compression becomes even more dramatic."
		adv := x.Total().Seconds() / cp.Total().Seconds()
		if adv < prevAdvantage*0.8 {
			t.Fatalf("advantage shrank with size: %.1f after %.1f", adv, prevAdvantage)
		}
		prevAdvantage = adv
	}
}

func TestFig6Shapes(t *testing.T) {
	c, _ := quickCtx()
	res, err := c.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig6Ps {
		// "An optimal partition does exist and it is four for all
		// three processor sizes."
		if res.OptimalL[p] != 4 {
			t.Errorf("P=%d: optimal L = %d, paper reports 4", p, res.OptimalL[p])
		}
		if res.Overall[p][1] <= res.Overall[p][4] {
			t.Errorf("P=%d: L=1 not worse than L=4", p)
		}
		if res.Overall[p][p] <= res.Overall[p][4] {
			t.Errorf("P=%d: L=P not worse than L=4", p)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	c, _ := quickCtx()
	res, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// Startup latency monotonically increases with L.
	for i := 1; i < len(res.Ls); i++ {
		if res.Startup[res.Ls[i]] < res.Startup[res.Ls[i-1]] {
			t.Fatalf("startup not monotone at L=%d", res.Ls[i])
		}
	}
	// Inter-frame delay exhibits a curve similar to overall time: the
	// IFD at the overall optimum is within 5% of the best IFD
	// anywhere (the curve flattens across the input-bound plateau, so
	// comparing argmin positions alone is meaningless).
	bestO, bestI := res.Ls[0], res.Ls[0]
	for _, l := range res.Ls {
		if res.Overall[l] < res.Overall[bestO] {
			bestO = l
		}
		if res.InterFrame[l] < res.InterFrame[bestI] {
			bestI = l
		}
	}
	if res.InterFrame[bestO].Seconds() > 1.05*res.InterFrame[bestI].Seconds() {
		t.Fatalf("IFD at overall optimum (L=%d: %v) not near best IFD (L=%d: %v)",
			bestO, res.InterFrame[bestO], bestI, res.InterFrame[bestI])
	}
}

func TestFig9Shapes(t *testing.T) {
	c, _ := quickCtx()
	res, err := c.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.X) - 1
	// X: at the largest size the display time is comparable to (or
	// exceeds) the render time.
	if res.X[last].Display.Seconds() < 0.5*res.X[last].Render.Seconds() {
		t.Fatalf("X display %v ≪ render %v at %d — paper shows display ~ render",
			res.X[last].Display, res.X[last].Render, res.X[last].Size)
	}
	// Daemon: rendering dominates, not transmission.
	for _, r := range res.Daemon {
		if r.Display.Seconds() > 0.5*r.Render.Seconds() {
			t.Fatalf("daemon display %v not ≪ render %v at %d", r.Display, r.Render, r.Size)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	c, _ := quickCtx()
	res, err := c.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 4 {
		t.Fatalf("%d points", len(res.Points))
	}
	single := res.Points[0].Decode
	many := res.Points[len(res.Points)-1]
	// "the decompression time increases significantly with 16 or more
	// processors" — the most-pieces case must cost more than the
	// single image.
	if many.Decode <= single {
		t.Fatalf("decoding %d pieces (%v) not slower than one image (%v)",
			many.Pieces, many.Decode, single)
	}
}

func TestFig11Shapes(t *testing.T) {
	c, _ := quickCtx()
	res, err := c.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sizes {
		if res.Comp[s].Total() >= res.X[s].Total() {
			t.Fatalf("at %d: daemon %v not faster than X %v", s, res.Comp[s].Total(), res.X[s].Total())
		}
	}
}

// Japan X transfers take roughly twice the NASA ones (paper: "almost
// twice longer").
func TestJapanVsNASARatio(t *testing.T) {
	c, _ := quickCtx()
	nasa, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	japan, err := c.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	s := nasa.Sizes[len(nasa.Sizes)-1]
	ratio := japan.X[s].Transfer.Seconds() / nasa.X[s].Transfer.Seconds()
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("Japan/NASA X transfer ratio %.2f outside [1.5,3]", ratio)
	}
}

func TestDatasetsShapes(t *testing.T) {
	c, _ := quickCtx()
	res, err := c.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	jet, vortex, mixing := res.Row("jet"), res.Row("vortex"), res.Row("mixing")
	if jet == nil || vortex == nil || mixing == nil {
		t.Fatal("missing rows")
	}
	// Vortex images have more pixel coverage and compress worse.
	if vortex.CompressedBytes <= jet.CompressedBytes {
		t.Fatalf("vortex frame (%d B) not larger than jet (%d B)", vortex.CompressedBytes, jet.CompressedBytes)
	}
	// Mixing renders much slower than transport ("the image transport
	// time is only one tenth of the rendering time" at paper scale;
	// require a clear dominance here).
	if mixing.RenderPerFrame.Seconds() < 2*mixing.TransportPerFrame.Seconds() {
		t.Fatalf("mixing render %v not ≫ transport %v", mixing.RenderPerFrame, mixing.TransportPerFrame)
	}
	// Mixing renders slower than the small datasets (16x more data).
	if mixing.RenderPerFrame <= jet.RenderPerFrame {
		t.Fatalf("mixing render %v not slower than jet %v", mixing.RenderPerFrame, jet.RenderPerFrame)
	}
}

func TestHybridSweep(t *testing.T) {
	c, _ := quickCtx()
	res, err := c.Hybrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points", len(res.Points))
	}
	// More pieces -> more total bytes (per-piece codec overhead), the
	// cost the hybrid grouping controls.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.BytesPerFrame <= first.BytesPerFrame {
		t.Fatalf("bytes did not grow with pieces: %d (k=%d) vs %d (k=%d)",
			first.BytesPerFrame, first.Pieces, last.BytesPerFrame, last.Pieces)
	}
	for _, p := range res.Points {
		if p.DecodePerFrame <= 0 || p.WirePerFrame <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func TestAdaptiveStreaming(t *testing.T) {
	c, out := quickCtx()
	res, err := c.Adaptive()
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance: adaptive quality holds >= 2x the fixed-baseline frame
	// rate on the Japan-UCD link. The ratio is a wall-clock measurement,
	// so it is only asserted without the race detector's slowdown (the
	// encode stage becomes the bottleneck instead of the link).
	if raceEnabled {
		t.Logf("race detector on: japan speedup %.2fx measured, >=2x assertion skipped", res.JapanSpeedup)
	} else if res.JapanSpeedup < 2 {
		t.Fatalf("japan speedup %.2fx (adaptive %.2f fps, fixed %.2f fps), want >= 2x",
			res.JapanSpeedup, res.JapanAdaptiveFPS, res.JapanFixedFPS)
	}
	// Acceptance: the fan-out cache cuts encode invocations >= 4x for 8
	// same-profile clients vs encode-per-client.
	if res.EncodeSavings < 4 {
		t.Fatalf("encode savings %.2fx (%d cached vs %d uncached), want >= 4x",
			res.EncodeSavings, res.CacheEncodes, res.NoCacheEncodes)
	}
	// Acceptance: the cold-start preview probe paints the Japan link
	// sub-second while the fixed lossless baseline needs seconds
	// (wall-clock, so race runs only log it).
	if raceEnabled {
		t.Logf("race detector on: japan first frame %.2fs vs fixed %.2fs, assertion skipped",
			res.JapanPreviewS, res.JapanFixedFirstS)
	} else {
		if res.JapanPreviewS <= 0 || res.JapanPreviewS >= 1 {
			t.Errorf("japan adaptive first frame %.2fs, want sub-second", res.JapanPreviewS)
		}
		if res.JapanFixedFirstS < res.JapanPreviewS {
			t.Errorf("fixed first frame %.2fs faster than adaptive %.2fs",
				res.JapanFixedFirstS, res.JapanPreviewS)
		}
	}
	// Slow clients under the fixed baseline shed frames instead of
	// backlogging (the bound itself is asserted in the stream package).
	for _, cl := range res.Fixed {
		if cl.Link == "japan-ucd" && cl.Drops == 0 {
			t.Errorf("fixed japan client dropped nothing: %+v", cl)
		}
	}
	for _, want := range []string{"japan-ucd frame rate", "fan-out cache"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
	// The result is what paperbench -json emits; it must round-trip.
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"japan_speedup", "encode_savings", "adaptive"} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("JSON missing %q: %s", key, data)
		}
	}
}

func TestCodecLadder(t *testing.T) {
	c, out := quickCtx()
	res, err := c.Codec()
	if err != nil {
		t.Fatal(err)
	}
	// Size-denominated acceptance (deterministic, race-safe): error
	// bounds hold, jls beats lzo's lossless ratio at every NEAR, the
	// progressive preview is a small fraction of the full stream, and
	// its modeled Japan-link time is sub-second.
	if !res.NearBoundHolds {
		t.Error("a codec exceeded its configured error bound")
	}
	if !res.JlsBeatsLzoRatio {
		t.Errorf("jls ratio %.2f did not beat lzo %.2f", res.JlsRatioN0, res.LzoRatio)
	}
	if res.PreviewFraction <= 0 || res.PreviewFraction > 0.25 {
		t.Errorf("preview fraction %.3f, want (0, 0.25]", res.PreviewFraction)
	}
	if res.JapanPreviewS <= 0 || res.JapanPreviewS >= 1 {
		t.Errorf("modeled japan preview %.2fs, want sub-second", res.JapanPreviewS)
	}
	// Throughput contrast is wall-clock; only assert without the race
	// detector's slowdown.
	if raceEnabled {
		t.Logf("race detector on: jls %.1f MB/s vs bzip %.1f MB/s, assertion skipped",
			res.JlsEncMBs, res.BzipEncMBs)
	} else if !res.JlsBeatsBzipEnc {
		t.Errorf("jls encode %.1f MB/s did not beat bzip %.1f MB/s", res.JlsEncMBs, res.BzipEncMBs)
	}
	if !strings.Contains(out.String(), "jls lossless ratio") {
		t.Fatalf("output missing summary: %s", out.String())
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"jls_beats_lzo_ratio", "preview_fraction", "japan_preview_s", "near_bound_holds"} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("JSON missing %q", key)
		}
	}
}

func TestPerfShapes(t *testing.T) {
	c, out := quickCtx()
	res, err := c.Perf()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Render) < 3 || res.Render[0].Workers != 1 {
		t.Fatalf("render sweep malformed: %+v", res.Render)
	}
	for _, p := range res.Render {
		if p.NsPerFrame <= 0 || p.Speedup <= 0 {
			t.Fatalf("bad render point %+v", p)
		}
	}
	// The pooled hot path must stay allocation-light at steady state;
	// a tenfold margin over the committed baseline still catches a
	// reintroduced per-frame pixel-buffer allocation (hundreds of
	// allocs or one huge slice dominate instantly).
	if res.RenderAllocsPerFrame > 20 {
		t.Fatalf("render allocs/frame %.1f — pooled path regressed", res.RenderAllocsPerFrame)
	}
	if res.FramePathAllocsPerFrame > 30 {
		t.Fatalf("frame path allocs/frame %.1f — pooled path regressed", res.FramePathAllocsPerFrame)
	}
	byName := map[string]PerfCodecPoint{}
	for _, p := range res.Codecs {
		if p.EncodeMBps <= 0 || p.DecodeMBps <= 0 || p.Ratio <= 0 {
			t.Fatalf("bad codec point %+v", p)
		}
		byName[p.Codec] = p
	}
	// Table 1's cost ordering must survive pooling: raw >> lzo >> jpeg.
	if !(byName["raw"].EncodeMBps > byName["lzo"].EncodeMBps &&
		byName["lzo"].EncodeMBps > byName["jpeg"].EncodeMBps) {
		t.Fatalf("encode throughput ordering broken: %+v", res.Codecs)
	}
	if data, err := json.Marshal(res); err != nil || len(data) == 0 {
		t.Fatalf("perf result not JSON-serializable: %v", err)
	}
	if !strings.Contains(out.String(), "Perf") {
		t.Fatal("perf table not printed")
	}
}
