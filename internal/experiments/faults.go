package experiments

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/compress"
	"repro/internal/datagen"
	"repro/internal/display"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/tf"
	"repro/internal/transport"
	"repro/internal/volio"
)

// FaultsResult is the fault-tolerance evaluation: a scripted daemon
// kill mid-stream (reconnect with backoff, frames resume), wire
// corruption (CRC detect-and-drop), a renderer node crash inside the
// pipeline (skip-and-continue), and the simulated cost of losing a
// group at cluster scale.
type FaultsResult struct {
	// Daemon-kill scenario.
	KillFramesBefore  int   `json:"kill_frames_before"`
	KillFramesAfter   int   `json:"kill_frames_after"`
	KillSendsDropped  int   `json:"kill_sends_dropped"`
	ViewerReconnects  int64 `json:"viewer_reconnects"`
	ViewerDials       int64 `json:"viewer_dial_attempts"`
	RendererReconnect int64 `json:"renderer_reconnects"`

	// Corruption scenario.
	CorruptFlipped   int64 `json:"corrupt_bytes_flipped"`
	CorruptDropped   int64 `json:"corrupt_frames_dropped"`
	CorruptDelivered int   `json:"corrupt_frames_delivered"`
	CorruptSent      int   `json:"corrupt_frames_sent"`

	// Pipeline node-crash scenario.
	PipeFrames        int `json:"pipe_frames"`
	PipeFailedSteps   int `json:"pipe_failed_steps"`
	PipeGroupFailures int `json:"pipe_group_failures"`

	// Simulated group loss at cluster scale.
	SimHealthyOverallS  float64 `json:"sim_healthy_overall_s"`
	SimDegradedOverallS float64 `json:"sim_degraded_overall_s"`
	SimFailedSteps      int     `json:"sim_failed_steps"`
}

// Faults runs the failure-model evaluation end to end on loopback.
func (c *Context) Faults() (*FaultsResult, error) {
	res := &FaultsResult{}
	if err := c.faultsKillReconnect(res); err != nil {
		return nil, fmt.Errorf("kill/reconnect: %w", err)
	}
	if err := c.faultsCorruption(res); err != nil {
		return nil, fmt.Errorf("corruption: %w", err)
	}
	if err := c.faultsPipeline(res); err != nil {
		return nil, fmt.Errorf("pipeline crash: %w", err)
	}
	if err := c.faultsSim(res); err != nil {
		return nil, fmt.Errorf("sim group loss: %w", err)
	}
	c.printFaults(res)
	return res, nil
}

// faultTestImage is a small deterministic raw-coded frame message of
// side x side pixels.
func faultTestImage(id uint32, side int) (*transport.ImageMsg, error) {
	f := img.NewFrame(side, side)
	for i := range f.Pix {
		f.Pix[i] = byte(i)
	}
	data, err := compress.Raw{}.EncodeFrame(f)
	if err != nil {
		return nil, err
	}
	return &transport.ImageMsg{
		FrameID: id, PieceCount: 1,
		X1: uint16(side), Y1: uint16(side), W: uint16(side), H: uint16(side),
		Codec: "raw", Data: data,
	}, nil
}

// faultsKillReconnect kills the display daemon mid-stream and verifies
// both sessions (renderer and viewer) reconnect with bounded backoff
// and that frames resume flowing end to end.
func (c *Context) faultsKillReconnect(res *FaultsResult) error {
	daemon, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := daemon.Addr().String()
	defer func() { daemon.Close() }()

	retry := transport.RetryPolicy{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, MaxAttempts: 40}
	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	rend, err := transport.NewSession(transport.SessionConfig{
		Role: transport.RoleRenderer, Dial: dial, Retry: retry, Seed: 7})
	if err != nil {
		return err
	}
	defer rend.Close()
	view, err := transport.NewSession(transport.SessionConfig{
		Role: transport.RoleDisplay, Dial: dial, Retry: retry, Seed: 11})
	if err != nil {
		return err
	}
	v := display.NewViewer(view)
	defer v.Close()
	go func() {
		for range v.Frames() {
		}
	}()

	const phase = 25
	send := func(from, to int) (sent, dropped int) {
		for i := from; i < to; i++ {
			im, imErr := faultTestImage(uint32(i), 16)
			if imErr != nil {
				dropped++
				continue
			}
			if err := rend.SendImage(im); err != nil {
				dropped++
			} else {
				sent++
			}
			time.Sleep(4 * time.Millisecond)
		}
		return
	}
	waitFrames := func(min int, d time.Duration) int {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			if n := v.Stats().Frames; n >= min {
				return n
			}
			time.Sleep(10 * time.Millisecond)
		}
		return v.Stats().Frames
	}

	send(0, phase)
	res.KillFramesBefore = waitFrames(phase/2, 3*time.Second)
	if res.KillFramesBefore == 0 {
		return fmt.Errorf("no frames arrived before the kill")
	}

	// Scripted daemon kill mid-stream, then restart on the same
	// address while the sessions are already backing off.
	daemon.Close()
	time.Sleep(50 * time.Millisecond)
	_, dropped := send(phase, phase+8) // these frames hit a dead daemon
	res.KillSendsDropped = dropped
	daemon, err = transport.ListenAndServe(addr)
	if err != nil {
		return fmt.Errorf("restart daemon: %w", err)
	}

	// Both sessions must come back on their own.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rend.State().Connected && view.State().Connected {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !rend.State().Connected || !view.State().Connected {
		return fmt.Errorf("sessions did not reconnect (renderer %+v, viewer %+v)", rend.State(), view.State())
	}

	before := v.Stats().Frames
	send(phase+8, 2*phase+8)
	total := waitFrames(before+phase/2, 3*time.Second)
	res.KillFramesAfter = total - before
	if res.KillFramesAfter == 0 {
		return fmt.Errorf("frames did not resume after reconnect")
	}
	res.ViewerReconnects = view.State().Reconnects
	res.ViewerDials = view.State().DialAttempts
	res.RendererReconnect = rend.State().Reconnects
	return nil
}

// faultsCorruption flips bytes at exact offsets inside frame payloads
// on the renderer->daemon link and verifies the CRC layer drops
// exactly those frames while the rest deliver.
func (c *Context) faultsCorruption(res *FaultsResult) error {
	daemon, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer daemon.Close()

	const frames = 12
	im0, err := faultTestImage(0, 16)
	if err != nil {
		return err
	}
	payload, err := im0.Marshal()
	if err != nil {
		return err
	}
	// Wire layout on the renderer link: the v1-framed hello (5-byte
	// header + 2-byte payload), then v2 frames of 6-byte header +
	// payload + 4-byte CRC. Flip one byte in the middle of the
	// payloads of frames 3, 6 and 9.
	msgLen := int64(6 + len(payload) + 4)
	var offsets []int64
	for _, k := range []int64{3, 6, 9} {
		offsets = append(offsets, 7+k*msgLen+6+int64(len(payload))/2)
	}
	inj := fault.New(fault.Plan{CorruptOffsets: offsets})

	conn, err := net.Dial("tcp", daemon.Addr().String())
	if err != nil {
		return err
	}
	rend, err := transport.NewEndpoint(inj.Wrap(conn), transport.RoleRenderer)
	if err != nil {
		return err
	}
	defer rend.Close()

	view, err := transport.Dial(daemon.Addr().String(), transport.RoleDisplay, nil)
	if err != nil {
		return err
	}
	v := display.NewViewer(view)
	defer v.Close()
	go func() {
		for range v.Frames() {
		}
	}()

	for i := 0; i < frames; i++ {
		im, err := faultTestImage(uint32(i), 16)
		if err != nil {
			return err
		}
		if err := rend.SendImage(im); err != nil {
			return fmt.Errorf("send %d: %w", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v.Stats().Frames >= frames-len(offsets) && daemon.Stats().CorruptDropped.Load() >= int64(len(offsets)) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	res.CorruptSent = frames
	res.CorruptFlipped = inj.Stats().FlippedBytes
	res.CorruptDropped = daemon.Stats().CorruptDropped.Load()
	res.CorruptDelivered = v.Stats().Frames
	if res.CorruptDropped != int64(len(offsets)) {
		return fmt.Errorf("daemon dropped %d corrupt frames, want %d", res.CorruptDropped, len(offsets))
	}
	if res.CorruptDelivered != frames-len(offsets) {
		return fmt.Errorf("viewer got %d frames, want %d", res.CorruptDelivered, frames-len(offsets))
	}
	return nil
}

// faultsPipeline crashes one renderer node mid-run and verifies only
// its group's steps are lost.
func (c *Context) faultsPipeline(res *FaultsResult) error {
	p, l, steps, size, scale := 8, 4, 12, 48, 0.12
	if c.Quick {
		p, l, steps = 4, 2, 6
	}
	store := volio.NewGenStore(datagen.NewJetScaled(scale, steps))
	m, err := pipeline.Run(store, pipeline.Options{
		P: p, L: l, ImageW: size, ImageH: size, TF: tf.Jet(),
		ContinueOnFailure: true,
		StepTimeout:       5 * time.Second,
		FaultFn:           fault.NodeCrash(fault.CrashPlan{Group: 0, Rank: 1, Step: l}),
	}, nil)
	if err != nil {
		return err
	}
	res.PipeFrames = m.Frames
	res.PipeFailedSteps = m.FailedSteps
	res.PipeGroupFailures = m.GroupFailures
	if m.GroupFailures != 1 {
		return fmt.Errorf("group failures = %d, want 1", m.GroupFailures)
	}
	if m.Frames == 0 {
		return errors.New("no frames survived the crash")
	}
	return nil
}

// faultsSim schedules the same group loss at cluster scale in the
// virtual-time simulator.
func (c *Context) faultsSim(res *FaultsResult) error {
	cfg, err := c.calibratedConfig(32, 4, 32)
	if err != nil {
		return err
	}
	healthy, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	cfg.Failures = []sim.GroupFailure{{Group: 1, AtStep: 9}}
	degraded, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	res.SimHealthyOverallS = healthy.Overall.Seconds()
	res.SimDegradedOverallS = degraded.Overall.Seconds()
	res.SimFailedSteps = degraded.FailedSteps
	return nil
}

func (c *Context) printFaults(res *FaultsResult) {
	c.printf("Fault tolerance:\n")
	c.printf("  daemon kill mid-stream: %d frames before, %d sends dropped during outage, %d frames after reconnect\n",
		res.KillFramesBefore, res.KillSendsDropped, res.KillFramesAfter)
	c.printf("  viewer reconnects=%d (dial attempts %d), renderer reconnects=%d\n",
		res.ViewerReconnects, res.ViewerDials, res.RendererReconnect)
	c.printf("  wire corruption: %d bytes flipped -> %d/%d frames CRC-dropped at the daemon, %d delivered clean\n",
		res.CorruptFlipped, res.CorruptDropped, res.CorruptSent, res.CorruptDelivered)
	c.printf("  pipeline node crash: %d frames rendered, %d steps failed, %d group(s) lost, run completed\n",
		res.PipeFrames, res.PipeFailedSteps, res.PipeGroupFailures)
	c.printf("  simulated loss of 1/4 groups: overall %.1fs -> %.1fs with %d steps lost\n\n",
		res.SimHealthyOverallS, res.SimDegradedOverallS, res.SimFailedSteps)
}
