package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/composite"
	"repro/internal/datagen"
	"repro/internal/img"
	"repro/internal/pipeline"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/tf"
	"repro/internal/vol"
	"repro/internal/volio"
)

// DFBScale is one modelled group size of the barrier-vs-DFB sweep.
type DFBScale struct {
	G                 int     `json:"g"`
	BarrierCriticalMS float64 `json:"barrier_critical_ms"`
	DFBCriticalMS     float64 `json:"dfb_critical_ms"`
	Overlap           float64 `json:"overlap"`
	BarrierBytes      int64   `json:"barrier_bytes"`
	DFBBytes          int64   `json:"dfb_bytes"`
}

// DFBResult is the tile-ownership compositing evaluation: a real
// in-process run proving bit-identity and footprint sparsity, a real
// streaming pipeline run measuring render/composite overlap, and the
// event-model sweep to 512 nodes that the harness cannot run live.
type DFBResult struct {
	// RealNodes is the in-process world size of the live comparison.
	RealNodes int `json:"real_nodes"`
	// BitIdentical reports whether the DFB frame matched binary-swap
	// float for float.
	BitIdentical bool `json:"bit_identical"`
	// SwapBytes / DFBBytes are the live runs' compositing bytes.
	SwapBytes int64 `json:"swap_bytes"`
	DFBBytes  int64 `json:"dfb_bytes"`
	// TilesStreamed and StreamOverlap come from the live pipeline run
	// with OnTile: tiles delivered ahead of frame gather, and the mean
	// fraction blended before rendering finished.
	TilesStreamed int     `json:"tiles_streamed"`
	StreamOverlap float64 `json:"stream_overlap"`
	// Scales is the modelled 64-512 node sweep.
	Scales []DFBScale `json:"scales"`
}

// DFB evaluates the tile-ownership compositor against the binary-swap
// barrier: bit-identity and bytes-on-wire on a real in-process group,
// streaming overlap through the real pipeline, and critical-path
// scaling on the event model at 64-512 nodes.
func (c *Context) DFB() (*DFBResult, error) {
	p, w, h := 8, 64, 64
	if c.Quick {
		p, w, h = 4, 48, 48
	}
	res := &DFBResult{RealNodes: p}

	// Live comparison: the same partial images through both
	// compositors, gathered to rank 0.
	partials, boxes, cam, err := dfbPartials(p, w, h)
	if err != nil {
		return nil, err
	}
	var swapFrame *img.RGBA
	err = comm.Run(p, func(cc *comm.Comm) error {
		reg, piece, err := composite.BinarySwap(cc, partials[cc.Rank()], boxes, cam.Eye, 0)
		if err != nil {
			return err
		}
		full, err := composite.FinalGather(cc, reg, piece, w, h, 0, 1)
		if err != nil {
			return err
		}
		cc.Barrier()
		if cc.Rank() == 0 {
			swapFrame = full
			res.SwapBytes = cc.World().BytesSent()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	partials, _, _, err = dfbPartials(p, w, h) // binary-swap consumed the buffers
	if err != nil {
		return nil, err
	}
	var dfbFrame *img.RGBA
	err = comm.Run(p, func(cc *comm.Comm) error {
		tiles, err := composite.DFBComposite(cc, partials[cc.Rank()], boxes, cam.Eye, 0, composite.DFBOptions{})
		if err != nil {
			return err
		}
		full, err := composite.GatherTiles(cc, tiles, w, h, 0, 1)
		if err != nil {
			return err
		}
		cc.Barrier()
		if cc.Rank() == 0 {
			dfbFrame = full
			res.DFBBytes = cc.World().BytesSent()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.BitIdentical = true
	for i := range swapFrame.Pix {
		if swapFrame.Pix[i] != dfbFrame.Pix[i] {
			res.BitIdentical = false
			break
		}
	}

	// Live streaming: the pipeline under CompositorDFB, counting tiles
	// that reach OnTile and the per-frame overlap it reports.
	steps := 4
	if c.Quick {
		steps = 2
	}
	popt := pipeline.Options{
		P: p, L: 2, ImageW: w, ImageH: h, TF: tf.Jet(),
		Compositor: pipeline.CompositorDFB,
	}
	popt.Render.TerminationAlpha = 1
	var mu sync.Mutex
	streamed := 0
	popt.OnTile = func(gid, step int, t composite.Tile) error {
		mu.Lock()
		streamed++
		mu.Unlock()
		return nil
	}
	var overlapSum float64
	frames := 0
	store := volio.NewGenStore(datagen.NewJetScaled(0.15, steps))
	if _, err := pipeline.Run(store, popt, func(f *pipeline.Frame) error {
		mu.Lock()
		overlapSum += f.CompositeOverlap
		frames++
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}
	res.TilesStreamed = streamed
	if frames > 0 {
		res.StreamOverlap = overlapSum / float64(frames)
	}

	// Modelled sweep: RWCP-like interconnect at sizes the in-process
	// harness cannot reach.
	m := sim.RWCP()
	for _, g := range []int{64, 128, 256, 512} {
		r, err := sim.SimulateDFB(sim.DFBConfig{
			G: g, ImageW: 512, ImageH: 512, TileRows: 8,
			T1Render:        8 * time.Second,
			LinkBW:          m.LinkBW,
			LinkLatency:     m.LinkLatency,
			BlendSecPerByte: 2e-9,
		})
		if err != nil {
			return nil, err
		}
		res.Scales = append(res.Scales, DFBScale{
			G:                 g,
			BarrierCriticalMS: r.BarrierCritical.Seconds() * 1e3,
			DFBCriticalMS:     r.DFBCritical.Seconds() * 1e3,
			Overlap:           r.Overlap,
			BarrierBytes:      r.BarrierBytes,
			DFBBytes:          r.DFBBytes,
		})
	}

	c.printf("\nTile-ownership compositing (DFB) vs binary-swap barrier\n")
	c.printf("  live %d nodes %dx%d: bit-identical=%v  bytes %d vs %d (%.1fx fewer)\n",
		p, w, h, res.BitIdentical, res.DFBBytes, res.SwapBytes,
		float64(res.SwapBytes)/float64(max(res.DFBBytes, 1)))
	c.printf("  live pipeline: %d tiles streamed, mean overlap %.2f\n",
		res.TilesStreamed, res.StreamOverlap)
	c.printf("  %-6s %-18s %-18s %-9s %s\n", "G", "barrier critical", "dfb critical", "overlap", "bytes ratio")
	for _, s := range res.Scales {
		c.printf("  %-6d %-18s %-18s %-9.2f %.1fx\n",
			s.G,
			fmt.Sprintf("%.2fms", s.BarrierCriticalMS),
			fmt.Sprintf("%.3fms", s.DFBCriticalMS),
			s.Overlap,
			float64(s.BarrierBytes)/float64(max(s.DFBBytes, 1)))
	}
	return res, nil
}

// dfbPartials renders one partial image per rank of a kd-decomposed
// jet step — the input both compositors consume.
func dfbPartials(p, w, h int) ([]*img.RGBA, []vol.Box, *render.Camera, error) {
	g := datagen.NewJetScaled(0.2, 2)
	v, err := g.Step(1)
	if err != nil {
		return nil, nil, nil, err
	}
	cam, err := render.NewOrbitCamera(v.Dims, 0.8, 0.4, 1.8)
	if err != nil {
		return nil, nil, nil, err
	}
	opt := render.DefaultOptions()
	opt.TerminationAlpha = 1
	boxes, err := vol.SplitKD(v.Dims, p)
	if err != nil {
		return nil, nil, nil, err
	}
	partials := make([]*img.RGBA, p)
	for i, b := range boxes {
		br, err := v.Extract(b, 2)
		if err != nil {
			return nil, nil, nil, err
		}
		partials[i], _, err = render.RenderBrick(br, cam, tf.Jet(), opt, w, h)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return partials, boxes, cam, nil
}
