package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/tf"
	"repro/internal/volio"
	"repro/internal/wan"
)

// HybridPoint measures one parallel-compression grouping choice end to
// end through a real session.
type HybridPoint struct {
	// Pieces is the number of compressed sub-images per frame.
	Pieces int
	// BytesPerFrame is the mean compressed payload per frame.
	BytesPerFrame int
	// DecodePerFrame is the viewer's mean decode+assembly time.
	DecodePerFrame time.Duration
	// WirePerFrame is the modelled link serialization time for the
	// payload on the experiment's WAN profile.
	WirePerFrame time.Duration
}

// Total estimates the display-path cost per frame.
func (p HybridPoint) Total() time.Duration { return p.DecodePerFrame + p.WirePerFrame }

// HybridResult sweeps the sub-image grouping of §4's parallel
// compression — the design space behind Figure 10's hybrid suggestion,
// measured through the complete real system (daemon + server +
// viewer).
type HybridResult struct {
	Points []HybridPoint
	Link   wan.Profile
}

// Hybrid runs the sweep.
func (c *Context) Hybrid() (*HybridResult, error) {
	const (
		p     = 8
		steps = 4
	)
	size := 256
	scale := 0.4
	if c.Quick {
		size = 96
		scale = 0.15
	}
	link := wan.NASAUCD()
	res := &HybridResult{Link: link}
	for _, k := range []int{1, 2, 4, 8} {
		store := volio.NewGenStore(datagen.NewJetScaled(scale, steps))
		sess, err := core.StartSession(store, core.SessionOptions{
			Server: core.ServerOptions{
				P: p, L: 1,
				ImageW: size, ImageH: size,
				Codec: "jpeg+lzo", Pieces: k, TF: tf.Jet(),
				Steps: steps,
			},
		})
		if err != nil {
			return nil, err
		}
		got := 0
		var bytes int
		var decode time.Duration
		timeout := time.After(60 * time.Second)
	recv:
		for got < steps {
			select {
			case fr, ok := <-sess.Viewer.Frames():
				if !ok {
					sess.Close()
					return nil, fmt.Errorf("hybrid k=%d: stream ended: %v", k, sess.Viewer.Err())
				}
				got++
				bytes += fr.Bytes
				decode += fr.DecodeTime + fr.AssembleTime
			case <-timeout:
				sess.Close()
				return nil, fmt.Errorf("hybrid k=%d: timed out with %d frames", k, got)
			}
			if got == steps {
				break recv
			}
		}
		if err := sess.Close(); err != nil {
			return nil, err
		}
		perFrame := bytes / steps
		res.Points = append(res.Points, HybridPoint{
			Pieces:         k,
			BytesPerFrame:  perFrame,
			DecodePerFrame: decode / time.Duration(steps),
			WirePerFrame:   link.TransferTime(perFrame),
		})
	}
	c.printf("Hybrid parallel-compression sweep (%dx%d frames, %d nodes, %s link model)\n", size, size, p, link.Name)
	t := metrics.NewTable("pieces", "bytes/frame", "decode(s)", "wire(s)", "total(s)")
	for _, pt := range res.Points {
		t.Row(fmt.Sprint(pt.Pieces), fmt.Sprint(pt.BytesPerFrame),
			fmt.Sprintf("%.4f", pt.DecodePerFrame.Seconds()),
			fmt.Sprintf("%.4f", pt.WirePerFrame.Seconds()),
			fmt.Sprintf("%.4f", pt.Total().Seconds()))
	}
	c.printf("%s\n", t.String())
	return res, nil
}
