package display

import (
	"testing"
	"time"

	"repro/internal/compress"
	_ "repro/internal/compress/codecs"
	"repro/internal/img"
	"repro/internal/transport"
)

func encodePieces(t *testing.T, f *img.Frame, codec string, pieces int, frameID uint32) []*transport.ImageMsg {
	t.Helper()
	c, err := compress.ByName(codec)
	if err != nil {
		t.Fatal(err)
	}
	regs, err := img.SplitRows(f.W, f.H, pieces)
	if err != nil {
		t.Fatal(err)
	}
	var out []*transport.ImageMsg
	for i, r := range regs {
		sub, err := f.SubFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		data, err := c.EncodeFrame(sub)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, &transport.ImageMsg{
			FrameID: frameID, PieceIndex: uint16(i), PieceCount: uint16(pieces),
			X0: uint16(r.X0), Y0: uint16(r.Y0), X1: uint16(r.X1), Y1: uint16(r.Y1),
			W: uint16(f.W), H: uint16(f.H), Codec: codec, Data: data,
		})
	}
	return out
}

func gradientFrame(w, h int) *img.Frame {
	f := img.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, byte(x), byte(y), byte(x+y))
		}
	}
	return f
}

func TestSinglePieceFrame(t *testing.T) {
	f := gradientFrame(32, 24)
	a := NewAssembler()
	msgs := encodePieces(t, f, "raw", 1, 7)
	fr, err := a.Ingest(msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if fr == nil {
		t.Fatal("single piece must complete the frame")
	}
	if fr.ID != 7 || !fr.Image.Equal(f) {
		t.Fatal("assembled frame mismatch")
	}
	if fr.Pieces != 1 || fr.Bytes == 0 {
		t.Fatalf("%+v", fr)
	}
}

func TestMultiPieceAssemblyOutOfOrder(t *testing.T) {
	f := gradientFrame(64, 48)
	a := NewAssembler()
	msgs := encodePieces(t, f, "lzo", 6, 3)
	// Deliver out of order.
	order := []int{3, 0, 5, 2, 4, 1}
	var got *Frame
	for _, i := range order {
		fr, err := a.Ingest(msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if fr != nil {
			got = fr
		}
	}
	if got == nil {
		t.Fatal("frame never completed")
	}
	if !got.Image.Equal(f) {
		t.Fatal("out-of-order assembly mismatch")
	}
	if got.Pieces != 6 {
		t.Fatalf("pieces = %d", got.Pieces)
	}
}

func TestInterleavedFrames(t *testing.T) {
	f1 := gradientFrame(16, 16)
	f2 := gradientFrame(16, 16)
	for i := range f2.Pix {
		f2.Pix[i] ^= 0xff
	}
	a := NewAssembler()
	m1 := encodePieces(t, f1, "raw", 2, 1)
	m2 := encodePieces(t, f2, "raw", 2, 2)
	if _, err := a.Ingest(m1[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Ingest(m2[0]); err != nil {
		t.Fatal(err)
	}
	fr2, err := a.Ingest(m2[1])
	if err != nil || fr2 == nil || !fr2.Image.Equal(f2) {
		t.Fatalf("frame 2: %v %v", fr2, err)
	}
	fr1, err := a.Ingest(m1[1])
	if err != nil || fr1 == nil || !fr1.Image.Equal(f1) {
		t.Fatalf("frame 1: %v %v", fr1, err)
	}
}

func TestEvictionOfStalledFrames(t *testing.T) {
	a := NewAssembler()
	a.MaxInFlight = 2
	f := gradientFrame(8, 8)
	// Start 5 frames, never finish them.
	for id := uint32(0); id < 5; id++ {
		m := encodePieces(t, f, "raw", 2, id)[0]
		if _, err := a.Ingest(m); err != nil {
			t.Fatal(err)
		}
	}
	if a.Lost() != 3 {
		t.Fatalf("lost = %d, want 3", a.Lost())
	}
}

func TestIngestRejectsBadCodec(t *testing.T) {
	a := NewAssembler()
	m := &transport.ImageMsg{FrameID: 1, PieceCount: 1, X1: 2, Y1: 2, W: 2, H: 2, Codec: "nope", Data: []byte{1}}
	if _, err := a.Ingest(m); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestIngestRejectsSizeMismatch(t *testing.T) {
	f := gradientFrame(8, 8)
	a := NewAssembler()
	m := encodePieces(t, f, "raw", 1, 1)[0]
	m.X1 = 4 // claims a 4-wide region but payload is 8 wide
	m.W, m.H = 8, 8
	if _, err := a.Ingest(m); err == nil {
		t.Fatal("piece/region mismatch accepted")
	}
}

func TestJPEGPiecesApproximate(t *testing.T) {
	f := gradientFrame(64, 64)
	a := NewAssembler()
	msgs := encodePieces(t, f, "jpeg", 4, 9)
	var got *Frame
	for _, m := range msgs {
		fr, err := a.Ingest(m)
		if err != nil {
			t.Fatal(err)
		}
		if fr != nil {
			got = fr
		}
	}
	if got == nil {
		t.Fatal("incomplete")
	}
	p, err := img.PSNR(f, got.Image)
	if err != nil {
		t.Fatal(err)
	}
	if p < 30 {
		t.Fatalf("PSNR %.1f", p)
	}
	if got.DecodeTime <= 0 {
		t.Fatal("decode time not recorded")
	}
}

func TestViewerEndToEnd(t *testing.T) {
	d, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	dispEp, err := transport.Dial(d.Addr().String(), transport.RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := NewViewer(dispEp)
	defer v.Close()
	rend, err := transport.Dial(d.Addr().String(), transport.RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()

	f := gradientFrame(32, 32)
	for id := uint32(0); id < 3; id++ {
		for _, m := range encodePieces(t, f, "jpeg+lzo", 2, id) {
			if err := rend.SendImage(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := 0
	timeout := time.After(5 * time.Second)
	for got < 3 {
		select {
		case fr, ok := <-v.Frames():
			if !ok {
				t.Fatalf("frames channel closed early: %v", v.Err())
			}
			if fr.Image.W != 32 {
				t.Fatal("bad frame")
			}
			got++
		case <-timeout:
			t.Fatalf("only %d frames arrived", got)
		}
	}
	st := v.Stats()
	if st.Frames != 3 || st.Bytes == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestViewerStatsFPS(t *testing.T) {
	s := ViewerStats{Frames: 3}
	s.FirstFrame = time.Now()
	s.LastFrame = s.FirstFrame.Add(time.Second)
	if fps := s.FPS(); fps < 1.9 || fps > 2.1 {
		t.Fatalf("fps = %v", fps)
	}
	if (&ViewerStats{Frames: 1}).FPS() != 0 {
		t.Fatal("single frame fps must be 0")
	}
}

func TestAssemblerSizeChangeMidAssembly(t *testing.T) {
	a := NewAssembler()
	f := gradientFrame(8, 8)
	m := encodePieces(t, f, "raw", 2, 5)[0]
	if _, err := a.Ingest(m); err != nil {
		t.Fatal(err)
	}
	// Second piece claims different full-frame dims.
	g := gradientFrame(8, 4)
	m2 := encodePieces(t, g, "raw", 2, 5)[1]
	if _, err := a.Ingest(m2); err == nil {
		t.Fatal("size change mid-assembly accepted")
	}
}

func TestAssemblerRejectsCorruptPayload(t *testing.T) {
	a := NewAssembler()
	m := &transport.ImageMsg{FrameID: 1, PieceCount: 1, X1: 4, Y1: 4, W: 4, H: 4, Codec: "jpeg", Data: []byte{1, 2, 3}}
	if _, err := a.Ingest(m); err == nil {
		t.Fatal("corrupt jpeg accepted")
	}
}

func TestViewerHistoryDepthZeroDisables(t *testing.T) {
	d, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ep, err := transport.Dial(d.Addr().String(), transport.RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := NewViewer(ep)
	v.HistoryDepth = 0
	defer v.Close()
	rend, err := transport.Dial(d.Addr().String(), transport.RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()
	f := gradientFrame(8, 8)
	for _, m := range encodePieces(t, f, "raw", 1, 0) {
		if err := rend.SendImage(m); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-v.Frames():
	case <-time.After(5 * time.Second):
		t.Fatal("no frame")
	}
	if len(v.History()) != 0 {
		t.Fatal("history kept despite depth 0")
	}
	if v.Review(0) != nil {
		t.Fatal("review found a frame with history disabled")
	}
}

func TestViewerAutoAckReportsReceipts(t *testing.T) {
	d, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	dispEp, err := transport.Dial(d.Addr().String(), transport.RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := NewViewer(dispEp)
	defer v.Close()
	rend, err := transport.Dial(d.Addr().String(), transport.RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()

	f := gradientFrame(16, 16)
	for _, m := range encodePieces(t, f, "raw", 1, 0) {
		if err := rend.SendImage(m); err != nil {
			t.Fatal(err)
		}
	}
	fr := <-v.Frames()
	if fr == nil {
		t.Fatalf("no frame: %v", v.Err())
	}
	// The completed frame records which codec carried it.
	if fr.Codec != "raw" {
		t.Fatalf("frame codec %q, want raw", fr.Codec)
	}
	// The default viewer acks each completed frame; the plain daemon
	// counts them.
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().AcksReceived.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("daemon never saw the ack")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// With acking off, further frames produce no acks.
	v.SetAutoAck(false)
	before := d.Stats().AcksReceived.Load()
	for _, m := range encodePieces(t, f, "raw", 1, 1) {
		if err := rend.SendImage(m); err != nil {
			t.Fatal(err)
		}
	}
	if fr := <-v.Frames(); fr == nil {
		t.Fatalf("no second frame: %v", v.Err())
	}
	time.Sleep(50 * time.Millisecond)
	if got := d.Stats().AcksReceived.Load(); got != before {
		t.Fatalf("acks went %d -> %d with AutoAck off", before, got)
	}
}
