// Package display implements the display-interface side of the
// paper's framework: decompression of incoming image pieces, assembly
// of parallel-compressed sub-images into full frames, and a frame sink
// (save to disk or in-memory framebuffer). The uncompressed "X Window"
// baseline is the same path with the raw codec.
package display

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compress"
	// Register the full codec set: frames name their codec on the
	// wire and the assembler resolves it by name.
	_ "repro/internal/compress/codecs"
	"repro/internal/compress/prog"
	"repro/internal/img"
	"repro/internal/obs/provenance"
	"repro/internal/transport"
)

// Frame is a fully assembled display frame.
type Frame struct {
	ID    uint32
	Image *img.Frame
	// DecodeTime is the total codec decode time across the frame's
	// pieces; AssembleTime covers piece blits.
	DecodeTime   time.Duration
	AssembleTime time.Duration
	// Bytes is the total compressed payload size received.
	Bytes int
	// Pieces is the number of sub-images the frame arrived as.
	Pieces int
	// Codec names the compression the frame arrived in (the adaptive
	// broker varies this per client per frame).
	Codec string
	// Passes/TotalPasses describe progressive (prog codec) delivery:
	// the same frame ID may be delivered more than once, each time
	// reconstructed from more refinement passes. For non-progressive
	// codecs both are zero.
	Passes, TotalPasses int
	// Final marks the last (or only) delivery of a frame ID;
	// a progressive preview still awaiting refinement is not final.
	Final bool
	// Refinement marks a re-delivery of a frame ID already shown at
	// lower fidelity — viewers refresh in place rather than counting
	// a new frame.
	Refinement bool
}

// Assembler turns incoming image messages into complete frames. It
// tolerates out-of-order pieces across a bounded number of concurrent
// frames; older incomplete frames are evicted (counted as lost).
type Assembler struct {
	mu sync.Mutex
	// MaxInFlight bounds concurrently assembling frames (default 4).
	MaxInFlight int

	pending map[uint32]*partial
	order   []uint32 // insertion order for eviction
	lost    int

	// progs holds per-frame progressive decoders: a prog frame's
	// preview message opens one, refinement tails feed it, and
	// completion (or eviction) closes it. An orphan tail — its
	// preview lost or evicted upstream — is dropped and counted as
	// lost, matching the transport's drop-and-continue contract.
	progs     map[uint32]*progPartial
	progOrder []uint32

	codecCache map[string]compress.FrameCodec
	// DecodeFast is recorded for decoders that honor a speed knob;
	// kept here so a codec switch can re-resolve by name.
	lookup func(string) (compress.FrameCodec, error)
}

type partial struct {
	frame *Frame
	need  int
}

type progPartial struct {
	dec       *prog.Decoder
	delivered bool
	bytes     int
	decode    time.Duration
}

// NewAssembler builds an assembler resolving codecs through
// compress.ByName (override lookup in tests).
func NewAssembler() *Assembler {
	return &Assembler{
		MaxInFlight: 4,
		pending:     map[uint32]*partial{},
		progs:       map[uint32]*progPartial{},
		codecCache:  map[string]compress.FrameCodec{},
		lookup:      compress.ByName,
	}
}

// Lost reports evicted incomplete frames.
func (a *Assembler) Lost() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lost
}

func (a *Assembler) codec(name string) (compress.FrameCodec, error) {
	if c, ok := a.codecCache[name]; ok {
		return c, nil
	}
	c, err := a.lookup(name)
	if err != nil {
		return nil, err
	}
	a.codecCache[name] = c
	return c, nil
}

// Ingest processes one image message; it returns the completed frame
// when this piece was the last one, else nil. Progressive (prog)
// frames may complete more than once: first as a preview, then as
// refinements — the returned Frame's Refinement/Final flags say
// which.
func (a *Assembler) Ingest(m *transport.ImageMsg) (*Frame, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if m.Codec == "prog" && m.PieceCount <= 1 {
		return a.ingestProgLocked(m)
	}
	c, err := a.codec(m.Codec)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	piece, err := c.DecodeFrame(m.Data)
	if err != nil {
		return nil, fmt.Errorf("display: decoding frame %d piece %d: %w", m.FrameID, m.PieceIndex, err)
	}
	decodeTime := time.Since(t0)

	reg := img.Region{X0: int(m.X0), Y0: int(m.Y0), X1: int(m.X1), Y1: int(m.Y1)}
	if piece.W != reg.W() || piece.H != reg.H() {
		return nil, fmt.Errorf("display: piece %dx%d does not match region %v", piece.W, piece.H, reg)
	}

	p, ok := a.pending[m.FrameID]
	if !ok {
		p = &partial{
			frame: &Frame{ID: m.FrameID, Image: img.NewFrame(int(m.W), int(m.H))},
			need:  int(m.PieceCount),
		}
		a.pending[m.FrameID] = p
		a.order = append(a.order, m.FrameID)
		a.evictLocked()
	}
	if p.frame.Image.W != int(m.W) || p.frame.Image.H != int(m.H) {
		return nil, fmt.Errorf("display: frame %d size changed mid-assembly", m.FrameID)
	}
	t1 := time.Now()
	if err := p.frame.Image.Blit(piece, reg); err != nil {
		return nil, fmt.Errorf("display: assembling frame %d: %w", m.FrameID, err)
	}
	p.frame.AssembleTime += time.Since(t1)
	p.frame.DecodeTime += decodeTime
	p.frame.Bytes += len(m.Data)
	p.frame.Pieces++
	p.frame.Codec = m.Codec
	if p.frame.Pieces < p.need {
		return nil, nil
	}
	delete(a.pending, m.FrameID)
	a.removeOrder(m.FrameID)
	p.frame.Final = true
	return p.frame, nil
}

// ingestProgLocked feeds one progressive chunk (preview head or
// refinement tail) into the frame's incremental decoder. Malformed or
// orphaned chunks are dropped and counted as lost rather than killing
// the session: a refinement whose preview was evicted is an expected
// race under pacer pressure, not a protocol violation.
func (a *Assembler) ingestProgLocked(m *transport.ImageMsg) (*Frame, error) {
	p, ok := a.progs[m.FrameID]
	fresh := false
	if !ok {
		p = &progPartial{dec: prog.NewDecoder()}
		fresh = true
	}
	t0 := time.Now()
	im, err := p.dec.Add(m.Data)
	p.decode += time.Since(t0)
	if err != nil {
		delete(a.progs, m.FrameID)
		a.removeProgOrder(m.FrameID)
		a.lost++
		return nil, nil
	}
	p.bytes += len(m.Data)
	if fresh {
		a.progs[m.FrameID] = p
		a.progOrder = append(a.progOrder, m.FrameID)
		a.evictProgLocked()
	}
	if im == nil {
		return nil, nil // mid-record: wait for more bytes
	}
	if im.W != int(m.W) || im.H != int(m.H) {
		delete(a.progs, m.FrameID)
		a.removeProgOrder(m.FrameID)
		a.lost++
		return nil, nil
	}
	fr := &Frame{
		ID: m.FrameID, Image: im,
		DecodeTime: p.decode, Bytes: p.bytes,
		Pieces: 1, Codec: m.Codec,
		Passes: p.dec.Passes(), TotalPasses: p.dec.TotalPasses(),
		Final:      p.dec.Complete(),
		Refinement: p.delivered,
	}
	p.decode = 0
	p.delivered = true
	if fr.Final {
		delete(a.progs, m.FrameID)
		a.removeProgOrder(m.FrameID)
	}
	return fr, nil
}

func (a *Assembler) evictProgLocked() {
	max := a.MaxInFlight
	if max <= 0 {
		max = 4
	}
	for len(a.progs) > max {
		victim := a.progOrder[0]
		a.progOrder = a.progOrder[1:]
		if p, ok := a.progs[victim]; ok {
			delete(a.progs, victim)
			// A never-delivered preview died unseen; a delivered one
			// simply stops refining, which is not a loss.
			if !p.delivered {
				a.lost++
			}
		}
	}
}

func (a *Assembler) removeProgOrder(id uint32) {
	for i, v := range a.progOrder {
		if v == id {
			a.progOrder = append(a.progOrder[:i], a.progOrder[i+1:]...)
			return
		}
	}
}

func (a *Assembler) evictLocked() {
	max := a.MaxInFlight
	if max <= 0 {
		max = 4
	}
	for len(a.pending) > max {
		victim := a.order[0]
		a.order = a.order[1:]
		if _, ok := a.pending[victim]; ok {
			delete(a.pending, victim)
			a.lost++
		}
	}
}

func (a *Assembler) removeOrder(id uint32) {
	for i, v := range a.order {
		if v == id {
			a.order = append(a.order[:i], a.order[i+1:]...)
			return
		}
	}
}

// Viewer drives an Endpoint: it ingests image messages and delivers
// completed frames on Frames, recording per-frame timing. It is the
// "display interface + display application" pair of the paper.
type Viewer struct {
	ep  transport.Link
	asm *Assembler

	frames chan *Frame
	errs   chan error
	done   chan struct{}
	once   sync.Once

	mu    sync.Mutex
	stats ViewerStats

	// history keeps the most recent frames for review (§7.1: "a
	// mechanism for the user to review previously viewed images").
	history      []*Frame
	HistoryDepth int

	// autoAck reports each completed frame's receive timestamp back
	// through the daemon (MsgAck) — the feedback signal the adaptive
	// stream broker's RTT estimator runs on. On by default; the plain
	// daemon just counts the acks.
	autoAck bool

	// prov, when set, records received/decoded/displayed lifecycle
	// events for traced frames; upstream names the link the frames
	// arrived over.
	prov     atomic.Pointer[provenance.Log]
	upstream atomic.Pointer[string]
}

// ViewerStats aggregates what the viewer saw.
type ViewerStats struct {
	Frames int
	// Refinements counts progressive re-deliveries of frames already
	// displayed at lower fidelity; they refresh in place and do not
	// inflate Frames or the FPS figure.
	Refinements int
	Bytes       int64
	DecodeTime  time.Duration
	FirstFrame  time.Time
	LastFrame   time.Time
	interArrive []time.Duration
}

// FPS returns the average displayed frame rate.
func (s *ViewerStats) FPS() float64 {
	if s.Frames < 2 {
		return 0
	}
	el := s.LastFrame.Sub(s.FirstFrame).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(s.Frames-1) / el
}

// NewViewer wraps a connected display endpoint.
func NewViewer(ep transport.Link) *Viewer {
	v := &Viewer{
		ep:           ep,
		asm:          NewAssembler(),
		frames:       make(chan *Frame, 16),
		errs:         make(chan error, 1),
		done:         make(chan struct{}),
		HistoryDepth: 16,
		autoAck:      true,
	}
	go v.loop()
	return v
}

// SetProvenance attaches a frame-provenance log; upstreamAddr names
// the daemon the viewer is attached to (recorded as the Link on
// received events so collectors can attribute the last hop).
func (v *Viewer) SetProvenance(l *provenance.Log, upstreamAddr string) {
	v.prov.Store(l)
	v.upstream.Store(&upstreamAddr)
}

// SetAutoAck enables or disables receive-timestamp reporting.
func (v *Viewer) SetAutoAck(on bool) {
	v.mu.Lock()
	v.autoAck = on
	v.mu.Unlock()
}

// History returns the most recently displayed frames, oldest first.
func (v *Viewer) History() []*Frame {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*Frame, len(v.history))
	copy(out, v.history)
	return out
}

// Review returns the retained frame with the given ID, or nil if it
// has aged out of the history.
func (v *Viewer) Review(id uint32) *Frame {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, f := range v.history {
		if f.ID == id {
			return f
		}
	}
	return nil
}

// Frames delivers completed frames; closed when the connection ends.
func (v *Viewer) Frames() <-chan *Frame { return v.frames }

// Err reports the first fatal error, if any.
func (v *Viewer) Err() error {
	select {
	case err := <-v.errs:
		return err
	default:
		return nil
	}
}

// SendControl forwards a user-control message to the daemon.
func (v *Viewer) SendControl(m *transport.ControlMsg) error { return v.ep.SendControl(m) }

// Stats snapshots the viewer counters.
func (v *Viewer) Stats() ViewerStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// Close shuts the endpoint down and releases the delivery loop: a
// loop blocked handing a frame to a consumer that stopped draining
// would otherwise outlive the viewer.
func (v *Viewer) Close() error {
	var err error
	v.once.Do(func() {
		close(v.done)
		err = v.ep.Close()
	})
	return err
}

func (v *Viewer) loop() {
	defer close(v.frames)
	for m := range v.ep.Inbox() {
		if m.Type != transport.MsgImage {
			continue
		}
		if prov := v.prov.Load(); prov != nil && m.Trace != nil {
			link := ""
			if up := v.upstream.Load(); up != nil {
				link = *up
			}
			prov.Record(provenance.Event{
				Trace: m.Trace.TraceID, Frame: m.Trace.FrameID,
				Hop: int(m.Trace.Hop), Event: provenance.EvReceived,
				Bytes: len(m.Payload), Link: link,
			})
		}
		im, err := transport.UnmarshalImage(m.Payload)
		if err != nil {
			v.fail(err)
			return
		}
		fr, err := v.asm.Ingest(im)
		if err != nil {
			v.fail(err)
			return
		}
		if fr == nil {
			continue
		}
		if prov := v.prov.Load(); prov != nil && m.Trace != nil {
			prov.Record(provenance.Event{
				Trace: m.Trace.TraceID, Frame: m.Trace.FrameID,
				Hop: int(m.Trace.Hop), Event: provenance.EvDecoded,
				Bytes: fr.Bytes, Cause: fr.Codec,
			})
		}
		now := time.Now()
		v.mu.Lock()
		autoAck := v.autoAck
		v.mu.Unlock()
		if autoAck {
			ack := transport.AckMsg{FrameID: fr.ID, RecvUnixNano: now.UnixNano(), Bytes: uint32(fr.Bytes)}
			// Best-effort: a failed ack only costs an RTT sample.
			_ = v.ep.Send(transport.Message{Type: transport.MsgAck, Payload: ack.Marshal()})
		}
		v.mu.Lock()
		if fr.Refinement {
			// A progressive refinement refreshes an already-counted
			// frame: track it, but leave Frames/FPS honest.
			v.stats.Refinements++
		} else {
			if v.stats.Frames == 0 {
				v.stats.FirstFrame = now
			} else {
				v.stats.interArrive = append(v.stats.interArrive, now.Sub(v.stats.LastFrame))
			}
			v.stats.LastFrame = now
			v.stats.Frames++
		}
		v.stats.Bytes += int64(fr.Bytes)
		v.stats.DecodeTime += fr.DecodeTime
		depth := v.HistoryDepth
		if depth > 0 {
			replaced := false
			if fr.Refinement {
				// Review should return the sharpest copy we have.
				for i := len(v.history) - 1; i >= 0; i-- {
					if v.history[i].ID == fr.ID {
						v.history[i] = fr
						replaced = true
						break
					}
				}
			}
			if !replaced {
				v.history = append(v.history, fr)
				if len(v.history) > depth {
					v.history = v.history[len(v.history)-depth:]
				}
			}
		}
		v.mu.Unlock()
		select {
		case v.frames <- fr:
			if prov := v.prov.Load(); prov != nil && m.Trace != nil {
				prov.Record(provenance.Event{
					Trace: m.Trace.TraceID, Frame: m.Trace.FrameID,
					Hop: int(m.Trace.Hop), Event: provenance.EvDisplayed,
				})
			}
		case <-v.done:
			return
		}
	}
}

func (v *Viewer) fail(err error) {
	select {
	case v.errs <- err:
	default:
	}
}
