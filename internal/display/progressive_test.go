package display

import (
	"testing"
	"time"

	"repro/internal/compress/prog"
	"repro/internal/img"
	"repro/internal/transport"
)

// progMsgs encodes f with the full progressive stream and splits it
// into a preview chunk and a refinement tail, as the broker's
// split-send path does on the wire.
func progMsgs(t *testing.T, f *img.Frame, frameID uint32) (head, tail *transport.ImageMsg) {
	t.Helper()
	data, err := (prog.Codec{}).EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	h, tl, ok := prog.SplitPreview(data)
	if !ok {
		t.Fatal("SplitPreview failed on a full stream")
	}
	mk := func(d []byte) *transport.ImageMsg {
		return &transport.ImageMsg{
			FrameID: frameID, PieceCount: 1,
			X1: uint16(f.W), Y1: uint16(f.H),
			W: uint16(f.W), H: uint16(f.H),
			Codec: "prog", Data: d,
		}
	}
	return mk(h), mk(tl)
}

// TestProgressiveAssembly covers the preview-then-refine delivery: the
// preview chunk yields a usable (approximate) frame immediately, and
// the tail refines the same frame ID in place to lossless.
func TestProgressiveAssembly(t *testing.T) {
	f := gradientFrame(64, 48)
	a := NewAssembler()
	head, tail := progMsgs(t, f, 5)

	fr, err := a.Ingest(head)
	if err != nil {
		t.Fatal(err)
	}
	if fr == nil {
		t.Fatal("preview chunk must deliver a frame")
	}
	if fr.ID != 5 || fr.Refinement || fr.Final {
		t.Fatalf("preview delivery: %+v", fr)
	}
	if fr.Passes != 1 || fr.TotalPasses <= fr.Passes {
		t.Fatalf("preview passes %d/%d", fr.Passes, fr.TotalPasses)
	}
	if fr.Image.W != f.W || fr.Image.H != f.H {
		t.Fatalf("preview dims %dx%d", fr.Image.W, fr.Image.H)
	}
	if psnr, err := img.PSNR(f, fr.Image); err != nil || psnr < 20 {
		t.Fatalf("preview PSNR %.1f, want a usable approximation", psnr)
	}

	fr, err = a.Ingest(tail)
	if err != nil {
		t.Fatal(err)
	}
	if fr == nil {
		t.Fatal("refinement tail must deliver the final frame")
	}
	if !fr.Refinement || !fr.Final {
		t.Fatalf("refinement delivery: %+v", fr)
	}
	if !fr.Image.Equal(f) {
		t.Fatal("full progressive stream must reconstruct losslessly")
	}
	if a.Lost() != 0 {
		t.Fatalf("lost = %d", a.Lost())
	}
}

// TestProgressiveOrphanTailDropped: a refinement tail whose preview was
// never seen (client joined mid-frame, preview dropped by the pacer)
// is discarded without error — drop-and-continue, counted as lost.
func TestProgressiveOrphanTailDropped(t *testing.T) {
	f := gradientFrame(32, 32)
	a := NewAssembler()
	_, tail := progMsgs(t, f, 9)
	fr, err := a.Ingest(tail)
	if err != nil {
		t.Fatalf("orphan tail must not error: %v", err)
	}
	if fr != nil {
		t.Fatal("orphan tail must not deliver a frame")
	}
	if a.Lost() != 1 {
		t.Fatalf("lost = %d, want 1", a.Lost())
	}
	// The stream recovers: the next frame's full delivery still works.
	head, tail2 := progMsgs(t, f, 10)
	if fr, err := a.Ingest(head); err != nil || fr == nil {
		t.Fatalf("next preview: %v %v", fr, err)
	}
	if fr, err := a.Ingest(tail2); err != nil || fr == nil || !fr.Final {
		t.Fatalf("next tail: %v %v", fr, err)
	}
}

// TestViewerProgressiveStats: refinements refresh the displayed frame
// but must not inflate the frame/FPS accounting, and the history keeps
// one (refined-in-place) entry per frame ID.
func TestViewerProgressiveStats(t *testing.T) {
	d, err := transport.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	dispEp, err := transport.Dial(d.Addr().String(), transport.RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := NewViewer(dispEp)
	defer v.Close()
	rend, err := transport.Dial(d.Addr().String(), transport.RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()

	f := gradientFrame(32, 32)
	head, tail := progMsgs(t, f, 0)
	for _, m := range []*transport.ImageMsg{head, tail} {
		if err := rend.SendImage(m); err != nil {
			t.Fatal(err)
		}
	}

	var deliveries []*Frame
	timeout := time.After(5 * time.Second)
	for len(deliveries) < 2 {
		select {
		case fr, ok := <-v.Frames():
			if !ok {
				t.Fatalf("frames channel closed early: %v", v.Err())
			}
			deliveries = append(deliveries, fr)
		case <-timeout:
			t.Fatalf("only %d deliveries arrived", len(deliveries))
		}
	}
	if deliveries[0].Refinement || !deliveries[1].Refinement {
		t.Fatalf("delivery order: %+v then %+v", deliveries[0], deliveries[1])
	}
	st := v.Stats()
	if st.Frames != 1 {
		t.Fatalf("frames = %d, want 1 (refinements must not count)", st.Frames)
	}
	if st.Refinements != 1 {
		t.Fatalf("refinements = %d, want 1", st.Refinements)
	}
	hist := v.History()
	if len(hist) != 1 {
		t.Fatalf("history has %d entries, want 1 (refined in place)", len(hist))
	}
	if !hist[0].Final || !hist[0].Image.Equal(f) {
		t.Fatal("history entry should be the refined final frame")
	}
}
