package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/img"
)

func TestEstimatorBandwidthEWMA(t *testing.T) {
	e := NewEstimator(0.3)
	if e.Bandwidth() != 0 || e.TransferTime(1000) != 0 {
		t.Fatal("estimator should start unknown")
	}
	for i := 0; i < 20; i++ {
		e.Observe(1000, 10*time.Millisecond) // 100 KB/s
	}
	bw := e.Bandwidth()
	if bw < 90e3 || bw > 110e3 {
		t.Fatalf("bandwidth = %.0f, want ~100e3", bw)
	}
	// A sudden slowdown pulls the estimate down smoothly.
	e.Observe(1000, 100*time.Millisecond) // 10 KB/s sample
	if got := e.Bandwidth(); got >= bw || got < 10e3 {
		t.Fatalf("after slow sample bandwidth = %.0f (was %.0f)", got, bw)
	}
	if e.Samples() != 21 {
		t.Fatalf("samples = %d", e.Samples())
	}
}

func TestEstimatorRTT(t *testing.T) {
	e := NewEstimator(0.5)
	if e.RTT() != 0 {
		t.Fatal("rtt should start unknown")
	}
	e.ObserveRTT(100 * time.Millisecond)
	e.ObserveRTT(50 * time.Millisecond)
	got := e.RTT()
	if got != 75*time.Millisecond {
		t.Fatalf("rtt = %v, want 75ms", got)
	}
	// The propagation estimate is the floor, not the average: smoothed
	// samples absorb decode time and host contention.
	if min := e.MinRTT(); min != 50*time.Millisecond {
		t.Fatalf("min rtt = %v, want 50ms", min)
	}
	// TransferTime includes half the minimum RTT as propagation.
	e.Observe(1000, 10*time.Millisecond)
	tt := e.TransferTime(1000)
	if tt < 30*time.Millisecond {
		t.Fatalf("transfer time %v should include minRTT/2", tt)
	}
	// A contention spike raises the smoothed RTT but not the predicted
	// transfer time.
	e.ObserveRTT(2 * time.Second)
	if tt2 := e.TransferTime(1000); tt2 != tt {
		t.Fatalf("transfer time moved %v -> %v on an RTT spike", tt, tt2)
	}
}

func TestControllerDowngradesImmediately(t *testing.T) {
	est := NewEstimator(0.5)
	ladder := []Point{{Codec: "jpeg", Quality: 85}, {Codec: "jpeg", Quality: 40}, {Codec: "jpeg", Quality: 10}}
	c := NewController(est, 100*time.Millisecond, ladder, 0.5, 3)
	if p := c.Pick(); p.Quality != 85 {
		t.Fatalf("start at top rung, got %v", p)
	}
	// 20 KB frames at q85 over a 45 KB/s link: ~0.44s per frame, far
	// over the 100ms target; q10 frames are 2 KB: ~0.04s, fits.
	c.ObserveSize(Point{Codec: "jpeg", Quality: 85}, 20000)
	c.ObserveSize(Point{Codec: "jpeg", Quality: 40}, 8000)
	c.ObserveSize(Point{Codec: "jpeg", Quality: 10}, 2000)
	est.Observe(45000, time.Second)
	if p := c.Pick(); p.Quality != 10 {
		t.Fatalf("expected immediate downgrade to q10, got %v", p)
	}
}

func TestControllerUpgradeHysteresis(t *testing.T) {
	est := NewEstimator(0.5)
	ladder := []Point{{Codec: "jpeg", Quality: 85}, {Codec: "jpeg", Quality: 10}}
	c := NewController(est, 100*time.Millisecond, ladder, 0.5, 3)
	c.ObserveSize(ladder[0], 20000)
	c.ObserveSize(ladder[1], 2000)
	// Slow link: down to q10.
	est.Observe(45000, time.Second)
	if p := c.Pick(); p.Quality != 10 {
		t.Fatalf("want q10, got %v", p)
	}
	// Link recovers to 1 MB/s: the upgrade needs UpHold consecutive
	// favorable picks.
	for i := 0; i < 10; i++ {
		est.Observe(100000, 100*time.Millisecond)
	}
	if p := c.Pick(); p.Quality != 10 {
		t.Fatalf("upgrade should not be immediate, got %v", p)
	}
	if p := c.Pick(); p.Quality != 10 {
		t.Fatalf("upgrade should still be held, got %v", p)
	}
	if p := c.Pick(); p.Quality != 85 {
		t.Fatalf("third favorable pick should upgrade, got %v", p)
	}
}

func TestControllerRestrict(t *testing.T) {
	est := NewEstimator(0.5)
	c := NewController(est, 100*time.Millisecond, DefaultLadder(), 0.5, 3)
	c.Restrict([]string{"jpeg"})
	if p := c.Pick(); p.Codec != "jpeg" {
		t.Fatalf("restricted ladder served %v", p)
	}
	// Restricting to an unknown family is a no-op rather than an empty
	// ladder.
	c.Restrict([]string{"nope"})
	if p := c.Pick(); p.Codec != "jpeg" {
		t.Fatalf("after no-op restrict got %v", p)
	}
	// The new families restrict like any other: a renderer advertising
	// only jls+prog keeps those rungs, best (lossless jls) first.
	c2 := NewController(NewEstimator(0.5), 100*time.Millisecond, DefaultLadder(), 0.5, 3)
	c2.Restrict([]string{"jls", "prog"})
	if n := c2.LadderLen(); n != 6 {
		t.Fatalf("jls+prog ladder has %d rungs, want 6", n)
	}
	if p := c2.Pick(); p.Codec != "jls" || p.Near != 0 {
		t.Fatalf("restricted ladder top = %v, want lossless jls", p)
	}
	if p := c2.ProbePoint(); (p != Point{Codec: "prog", Passes: 1}) {
		t.Fatalf("restricted probe = %v, want prog@p1", p)
	}
}

func TestEncodeCacheSingleflight(t *testing.T) {
	cache := NewEncodeCache(4)
	var encodes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, err := cache.GetOrEncode(1, Point{Codec: "jpeg", Quality: 50}, func() ([]byte, error) {
				encodes.Add(1)
				time.Sleep(10 * time.Millisecond)
				return []byte("x"), nil
			})
			if err != nil || string(data) != "x" {
				t.Errorf("GetOrEncode: %v %q", err, data)
			}
		}()
	}
	wg.Wait()
	if n := encodes.Load(); n != 1 {
		t.Fatalf("encode ran %d times, want 1", n)
	}
	st := cache.Stats()
	if st.Misses.Load() != 1 || st.Hits.Load() != 7 {
		t.Fatalf("hits=%d misses=%d", st.Hits.Load(), st.Misses.Load())
	}
}

func TestEncodeCacheEvictsOldFrames(t *testing.T) {
	cache := NewEncodeCache(2)
	enc := func(s string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(s), nil }
	}
	p1 := Point{Codec: "jpeg", Quality: 50}
	p2 := Point{Codec: "jpeg", Quality: 10}
	for id := uint32(0); id < 4; id++ {
		if _, err := cache.GetOrEncode(id, p1, enc("a")); err != nil {
			t.Fatal(err)
		}
		if _, err := cache.GetOrEncode(id, p2, enc("b")); err != nil {
			t.Fatal(err)
		}
	}
	if ev := cache.Stats().Evictions.Load(); ev != 4 {
		t.Fatalf("evictions = %d, want 4 (2 frames x 2 points)", ev)
	}
	if n := cache.Len(); n != 4 {
		t.Fatalf("resident entries = %d, want 4", n)
	}
}

func TestEncodeCacheErrorNotCached(t *testing.T) {
	cache := NewEncodeCache(2)
	boom := errors.New("boom")
	if _, err := cache.GetOrEncode(1, Point{Codec: "jpeg"}, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failure must not be cached: the retry succeeds.
	data, err := cache.GetOrEncode(1, Point{Codec: "jpeg"}, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(data) != "ok" {
		t.Fatalf("retry: %v %q", err, data)
	}
}

func TestPacerDropsOldestNeverBlocks(t *testing.T) {
	p := NewPacer(3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if ok, _ := p.Offer(&SourceFrame{ID: uint32(i)}); !ok {
				t.Error("offer rejected before close")
				return
			}
			if p.Len() > 3 {
				t.Errorf("queue length %d exceeds depth", p.Len())
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Offer blocked")
	}
	if d := p.Drops(); d != 97 {
		t.Fatalf("drops = %d, want 97", d)
	}
	// The survivors are the newest frames, oldest-first.
	want := []uint32{97, 98, 99}
	for _, id := range want {
		f, ok := p.Next()
		if !ok || f.ID != id {
			t.Fatalf("Next = %v %v, want id %d", f, ok, id)
		}
	}
}

func TestPacerCloseUnblocksNext(t *testing.T) {
	p := NewPacer(2)
	got := make(chan bool, 1)
	go func() {
		_, ok := p.Next()
		got <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	p.Close()
	select {
	case ok := <-got:
		if ok {
			t.Fatal("Next returned a frame after close of empty pacer")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next never unblocked")
	}
	if ok, _ := p.Offer(&SourceFrame{ID: 1}); ok {
		t.Fatal("Offer accepted after close")
	}
}

// noiseFrame builds a frame JPEG cannot compress to nothing, so
// quality levels separate by size.
func noiseFrame(w, h int) *img.Frame {
	rng := rand.New(rand.NewSource(7))
	f := img.NewFrame(w, h)
	for i := range f.Pix {
		f.Pix[i] = byte(rng.Intn(256))
	}
	return f
}

func TestPointFrameCodecsRoundTripAndOrder(t *testing.T) {
	f := noiseFrame(64, 64)
	var prev int
	for i, p := range DefaultLadder() {
		codec, err := p.FrameCodec()
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		data, err := codec.EncodeFrame(f)
		if err != nil {
			t.Fatalf("%v encode: %v", p, err)
		}
		dec, err := codec.DecodeFrame(data)
		if err != nil {
			t.Fatalf("%v decode: %v", p, err)
		}
		if dec.W != f.W || dec.H != f.H {
			t.Fatalf("%v decoded %dx%d", p, dec.W, dec.H)
		}
		// Same family: lower quality must not be larger.
		if i > 0 && DefaultLadder()[i-1].Codec == p.Codec && len(data) > prev {
			t.Fatalf("%v produced %d bytes > previous rung's %d", p, len(data), prev)
		}
		prev = len(data)
	}
	if _, err := (Point{Codec: "nope"}).FrameCodec(); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestPointString(t *testing.T) {
	for _, tc := range []struct {
		p    Point
		want string
	}{
		{Point{Codec: "jpeg", Quality: 40}, "jpeg@q40"},
		{Point{Codec: "jpeg+lzo", Quality: 85}, "jpeg+lzo@q85"},
		{Point{Codec: "raw"}, "raw"},
		{Point{Codec: "lzo", Quality: 50}, "lzo"},
		{Point{Codec: "jls"}, "jls"},
		{Point{Codec: "jls", Near: 2}, "jls@n2"},
		{Point{Codec: "prog"}, "prog"},
		{Point{Codec: "prog", Passes: 1}, "prog@p1"},
	} {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("%+v.String() = %q, want %q", tc.p, got, tc.want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Target <= 0 || c.QueueDepth <= 0 || c.CacheFrames <= 0 || len(c.Ladder) == 0 || c.Alpha <= 0 || c.UpHold <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

func ExamplePoint() {
	p := Point{Codec: "jpeg+lzo", Quality: 85}
	fmt.Println(p)
	// Output: jpeg+lzo@q85
}

// TestLadderFloorIsProgressivePreview pins the degradation contract:
// the guard's worst-case quality floor (LevelPacer and above maps to
// ladderLen-1) must land on the prog preview rung, so an overloaded or
// WAN-starved session still ships a usable first pass.
func TestLadderFloorIsProgressivePreview(t *testing.T) {
	lad := DefaultLadder()
	bottom := lad[len(lad)-1]
	if bottom.Codec != "prog" || bottom.Passes != 1 {
		t.Fatalf("ladder floor = %v, want prog@p1 preview rung", bottom)
	}
	est := NewEstimator(0.5)
	c := NewController(est, 100*time.Millisecond, lad, 0.5, 3)
	c.SetFloor(c.LadderLen() - 1) // what broker does at guard.LevelPacer+
	if p := c.Pick(); p != bottom {
		t.Fatalf("floored controller picked %v, want %v", p, bottom)
	}
}
