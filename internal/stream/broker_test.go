package stream_test

import (
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/display"
	"repro/internal/img"
	"repro/internal/stream"
	"repro/internal/testutil"
	"repro/internal/transport"
	"repro/internal/wan"
)

// noiseFrame builds a frame JPEG cannot compress to nothing, so the
// ladder rungs separate by size (mirrors the internal test helper).
func noiseFrame(w, h int) *img.Frame {
	f := img.NewFrame(w, h)
	state := uint32(0x9e3779b9)
	for i := range f.Pix {
		state = state*1664525 + 1013904223
		f.Pix[i] = byte(state >> 24)
	}
	return f
}

// pipeConn returns a connected endpoint/broker conn pair, shaping the
// broker→endpoint direction to the profile (zero profile = unshaped).
func pipeConn(t *testing.T, b *stream.Broker, role transport.Role, link wan.Profile) *transport.Endpoint {
	t.Helper()
	client, server := net.Pipe()
	var sc net.Conn = server
	if link.Bandwidth > 0 || link.Latency > 0 {
		sc = wan.Shape(server, link)
	}
	b.ServeConn(sc)
	ep, err := transport.NewEndpoint(client, role)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	return ep
}

// sendFrames pushes n raw-encoded copies of f through the renderer
// endpoint, one frame per id, with the given inter-frame gap.
func sendFrames(t *testing.T, rend *transport.Endpoint, f *img.Frame, n int, gap time.Duration) {
	t.Helper()
	raw, err := compress.Raw{}.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		im := &transport.ImageMsg{
			FrameID:    uint32(i),
			PieceCount: 1,
			X1:         uint16(f.W), Y1: uint16(f.H),
			W: uint16(f.W), H: uint16(f.H),
			Codec: "raw",
			Data:  raw,
		}
		if err := rend.SendImage(im); err != nil {
			t.Fatalf("send frame %d: %v", i, err)
		}
		if gap > 0 {
			time.Sleep(gap)
		}
	}
}

func drainFrames(v *display.Viewer, got chan<- *display.Frame) {
	for fr := range v.Frames() {
		select {
		case got <- fr:
		default:
		}
	}
}

func TestBrokerFanoutSharesEncodes(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := stream.NewBroker(stream.Config{Target: 100 * time.Millisecond, QueueDepth: 4, CacheFrames: 8})
	defer b.Close()

	var viewers []*display.Viewer
	for i := 0; i < 3; i++ {
		ep := pipeConn(t, b, transport.RoleDisplay, wan.Profile{})
		v := display.NewViewer(ep)
		viewers = append(viewers, v)
		go func() {
			for range v.Frames() {
			}
		}()
	}
	rend := pipeConn(t, b, transport.RoleRenderer, wan.Profile{})
	f := noiseFrame(32, 32)
	const n = 10
	sendFrames(t, rend, f, n, 5*time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := 0
		for _, v := range viewers {
			if v.Stats().Frames >= n {
				done++
			}
		}
		if done == len(viewers) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, v := range viewers {
		if got := v.Stats().Frames; got < n {
			t.Fatalf("viewer %d saw %d/%d frames", i, got, n)
		}
	}
	// All three clients sit on identical (unshaped) links, so they
	// share one operating point: each frame is encoded once, not once
	// per client.
	st := b.Stats()
	if st.FramesIn.Load() != n {
		t.Fatalf("frames in = %d", st.FramesIn.Load())
	}
	if enc := st.Encodes.Load(); enc != n {
		t.Fatalf("encodes = %d, want %d (one per frame, shared 3 ways)", enc, n)
	}
	if hits := b.Cache().Stats().Hits.Load(); hits != 2*n {
		t.Fatalf("cache hits = %d, want %d", hits, 2*n)
	}
}

func TestBrokerSlowClientDropsInsteadOfBacklog(t *testing.T) {
	testutil.CheckGoroutines(t)
	const depth = 3
	b := stream.NewBroker(stream.Config{Target: 80 * time.Millisecond, QueueDepth: depth, CacheFrames: 4})
	defer b.Close()

	fast := display.NewViewer(pipeConn(t, b, transport.RoleDisplay, wan.Profile{}))
	// ~10 KB/s: a 3 KB JPEG frame takes ~0.3 s, far slower than the
	// renderer's frame gap.
	slowLink := wan.Profile{Name: "slow", Latency: 20 * time.Millisecond, Bandwidth: 10e3, Burst: 2 << 10}
	slow := display.NewViewer(pipeConn(t, b, transport.RoleDisplay, slowLink))
	for _, v := range []*display.Viewer{fast, slow} {
		v := v
		go func() {
			for range v.Frames() {
			}
		}()
	}

	rend := pipeConn(t, b, transport.RoleRenderer, wan.Profile{})
	f := noiseFrame(64, 64)
	const n = 40
	start := time.Now()
	sendFrames(t, rend, f, n, 2*time.Millisecond)
	ingestTime := time.Since(start)
	// The renderer's sends must never block on the slow client: the
	// whole burst has to clear in well under the slow link's per-frame
	// transfer time times n.
	if ingestTime > 5*time.Second {
		t.Fatalf("renderer took %v to send %d frames — blocked by slow client", ingestTime, n)
	}

	// Fast client keeps up (sees most frames), slow client converges
	// on the newest frames and drops the rest.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && fast.Stats().Frames < n*3/4 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := fast.Stats().Frames; got < n*3/4 {
		t.Fatalf("fast viewer saw only %d/%d frames", got, n)
	}
	var slowSnap *stream.ClientSnapshot
	for _, cs := range b.ClientSnapshots() {
		cs := cs
		if cs.Drops > 0 {
			slowSnap = &cs
		}
		if cs.QueueLen > depth {
			t.Fatalf("client %d queue length %d exceeds bound %d", cs.ID, cs.QueueLen, depth)
		}
	}
	if slowSnap == nil {
		t.Fatalf("no client recorded drops; snapshots: %+v", b.ClientSnapshots())
	}
	if b.Stats().Drops.Load() == 0 {
		t.Fatal("broker drop counter is zero")
	}
}

func TestBrokerAdaptsQualityToSlowLink(t *testing.T) {
	testutil.CheckGoroutines(t)
	target := 120 * time.Millisecond
	b := stream.NewBroker(stream.Config{Target: target, QueueDepth: 2, CacheFrames: 4, UpHold: 3})
	defer b.Close()

	// The Japan–UCD profile: 45 KB/s. Noise frames at 128² run tens
	// of KB at the upper rungs — ~0.5–1 s per frame, so the
	// controller must walk down the ladder (whose floor is the tiny
	// prog preview pass) to hold the 120 ms target. Feed frames for
	// ~1.5 s so the pacer gets enough send cycles after the walk.
	slow := display.NewViewer(pipeConn(t, b, transport.RoleDisplay, wan.JapanUCD()))
	go func() {
		for range slow.Frames() {
		}
	}()
	rend := pipeConn(t, b, transport.RoleRenderer, wan.Profile{})
	f := noiseFrame(128, 128)
	sendFrames(t, rend, f, 60, 25*time.Millisecond)

	top := stream.DefaultLadder()[0]
	deadline := time.Now().Add(15 * time.Second)
	adapted := false
	for time.Now().Before(deadline) {
		snaps := b.ClientSnapshots()
		if len(snaps) == 1 && snaps[0].FramesSent >= 4 {
			p := snaps[0].Point
			if p != top {
				adapted = true
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !adapted {
		t.Fatalf("controller never left the top rung on a 45 KB/s link; snaps: %+v", b.ClientSnapshots())
	}
	// The ack feedback path populated the RTT estimate.
	if slow.Stats().Frames > 1 {
		if rtt := b.ClientSnapshots()[0].RTT; rtt <= 0 {
			t.Fatalf("rtt estimate empty after %d acked frames", slow.Stats().Frames)
		}
	}
}

func TestBrokerAdvertiseRestrictsLadder(t *testing.T) {
	b := stream.NewBroker(stream.Config{})
	defer b.Close()
	rend := pipeConn(t, b, transport.RoleRenderer, wan.Profile{})
	if err := rend.Send(transport.Message{Type: transport.MsgAdvertise, Payload: transport.MarshalAdvertise([]string{"jpeg"})}); err != nil {
		t.Fatal(err)
	}
	// Give the broker a beat to ingest the advertisement before the
	// display connects.
	time.Sleep(50 * time.Millisecond)
	v := display.NewViewer(pipeConn(t, b, transport.RoleDisplay, wan.Profile{}))
	go func() {
		for range v.Frames() {
		}
	}()
	sendFrames(t, rend, noiseFrame(32, 32), 3, 2*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && v.Stats().Frames < 3 {
		time.Sleep(10 * time.Millisecond)
	}
	if v.Stats().Frames < 3 {
		t.Fatalf("viewer saw %d frames", v.Stats().Frames)
	}
	for _, fr := range v.History() {
		if fr.Codec != "jpeg" {
			t.Fatalf("frame %d arrived as %q despite jpeg-only advertisement", fr.ID, fr.Codec)
		}
	}
}

func TestBrokerFixedPointDisabledCacheEncodesPerClient(t *testing.T) {
	testutil.CheckGoroutines(t)
	fixed := stream.Point{Codec: "jpeg", Quality: 50}
	b := stream.NewBroker(stream.Config{FixedPoint: &fixed, DisableCache: true})
	defer b.Close()
	const clients = 3
	var viewers []*display.Viewer
	for i := 0; i < clients; i++ {
		v := display.NewViewer(pipeConn(t, b, transport.RoleDisplay, wan.Profile{}))
		viewers = append(viewers, v)
		go func() {
			for range v.Frames() {
			}
		}()
	}
	rend := pipeConn(t, b, transport.RoleRenderer, wan.Profile{})
	const n = 5
	sendFrames(t, rend, noiseFrame(32, 32), n, 2*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := 0
		for _, v := range viewers {
			if v.Stats().Frames >= n {
				done++
			}
		}
		if done == clients {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if enc := b.Stats().Encodes.Load(); enc != n*clients {
		t.Fatalf("encodes = %d, want %d (per client, cache disabled)", enc, n*clients)
	}
	for i, v := range viewers {
		for _, fr := range v.History() {
			if fr.Codec != "jpeg" {
				t.Fatalf("viewer %d frame %d codec %q, want fixed jpeg", i, fr.ID, fr.Codec)
			}
		}
	}
}

func TestBrokerCloseLeaksNoGoroutines(t *testing.T) {
	testutil.CheckGoroutines(t)
	before := runtime.NumGoroutine()
	b := stream.NewBroker(stream.Config{})
	var eps []*transport.Endpoint
	for i := 0; i < 3; i++ {
		eps = append(eps, pipeConn(t, b, transport.RoleDisplay, wan.Profile{}))
	}
	rend := pipeConn(t, b, transport.RoleRenderer, wan.Profile{})
	sendFrames(t, rend, noiseFrame(16, 16), 3, 0)
	time.Sleep(50 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		ep.Close()
	}
	rend.Close()
	// Endpoint read loops race the conn close; give them a moment.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 64<<10)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines: %d before, %d after close\n%s", before, runtime.NumGoroutine(), buf[:n])
}

func TestBrokerListenAndServeTCP(t *testing.T) {
	testutil.CheckGoroutines(t)
	b, err := stream.ListenAndServe("127.0.0.1:0", stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rend, err := transport.Dial(b.Addr().String(), transport.RoleRenderer, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rend.Close()
	disp, err := transport.Dial(b.Addr().String(), transport.RoleDisplay, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := display.NewViewer(disp)
	defer v.Close()
	sendFrames(t, rend, noiseFrame(16, 16), 2, 0)
	select {
	case fr := <-v.Frames():
		if fr.Image.W != 16 {
			t.Fatalf("frame %dx%d", fr.Image.W, fr.Image.H)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no frame over TCP broker")
	}
}

// TestBrokerSplitsProgressiveSends: at a prog operating point the
// broker ships each frame to viewers as a preview chunk followed by a
// refinement tail, so the display paints early and refines in place.
func TestBrokerSplitsProgressiveSends(t *testing.T) {
	testutil.CheckGoroutines(t)
	fixed := stream.Point{Codec: "prog"}
	b := stream.NewBroker(stream.Config{Target: 100 * time.Millisecond, FixedPoint: &fixed})
	defer b.Close()

	ep := pipeConn(t, b, transport.RoleDisplay, wan.Profile{})
	v := display.NewViewer(ep)
	deliveries := make(chan *display.Frame, 16)
	go func() {
		for fr := range v.Frames() {
			deliveries <- fr
		}
	}()

	rend := pipeConn(t, b, transport.RoleRenderer, wan.Profile{})
	f := noiseFrame(32, 32)
	const n = 3
	sendFrames(t, rend, f, n, 20*time.Millisecond)

	// Each frame arrives twice: preview then refinement.
	var previews, refinements int
	timeout := time.After(5 * time.Second)
	for previews+refinements < 2*n {
		select {
		case fr := <-deliveries:
			if fr.Refinement {
				refinements++
				if !fr.Final {
					t.Fatalf("refinement not final: %+v", fr)
				}
				if !fr.Image.Equal(f) {
					t.Fatal("refined frame must be lossless")
				}
			} else {
				previews++
				if fr.Final {
					t.Fatalf("preview marked final: %+v", fr)
				}
			}
		case <-timeout:
			t.Fatalf("saw %d previews + %d refinements, want %d each", previews, refinements, n)
		}
	}
	if previews != n || refinements != n {
		t.Fatalf("previews=%d refinements=%d, want %d each", previews, refinements, n)
	}
	st := v.Stats()
	if st.Frames != n || st.Refinements != n {
		t.Fatalf("viewer stats %+v, want %d frames and %d refinements", st, n, n)
	}
	v.Close()
}
