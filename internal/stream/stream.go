// Package stream is the adaptive streaming subsystem of the display
// daemon: it turns the daemon from a fixed-quality relay into a stream
// broker that serves many concurrent viewers over heterogeneous links.
//
// Three mechanisms cooperate, per client:
//
//   - an EWMA bandwidth/RTT Estimator observes how long each frame
//     takes to push through the (possibly WAN-shaped) connection and
//     how long the display's receive acks take to come back;
//   - a Controller picks the codec and JPEG quality (an operating
//     Point on a quality Ladder) that the estimated link can carry
//     within the target inter-frame delay, with hysteresis so the
//     quality does not flap;
//   - a Pacer bounds the per-client frame backlog, dropping the
//     oldest queued frame so a slow client always receives the newest
//     frame and never stalls the renderer.
//
// Across clients, an EncodeCache keyed by (frameID, codec, quality)
// makes N viewers at the same operating point cost one encode — the
// network-data-cache idea of Bethel et al. applied to the encode
// stage. The Broker ties it together: it speaks the transport
// package's wire protocol, accepts renderer and display connections,
// decodes incoming frames once, and runs one adaptive session per
// display.
package stream

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/compress"
	"repro/internal/compress/bzp"
	"repro/internal/compress/jls"
	"repro/internal/compress/jpegc"
	"repro/internal/compress/lzo"
	"repro/internal/compress/prog"
	"repro/internal/guard"
)

// Point is one encode operating point: a codec family plus its
// family-specific tuning (JPEG quality, jls error bound, prog
// truncation pass). It is the unit the Controller selects and the
// EncodeCache keys on.
type Point struct {
	// Codec is a registered codec family name (raw, lzo, bzip, jpeg,
	// jpeg+lzo, jpeg+bzip, jls, prog).
	Codec string
	// Quality is the JPEG quality in 1..100; ignored by non-JPEG
	// families.
	Quality int
	// Near is the jls per-pixel error bound (0 = lossless); ignored
	// by other families.
	Near int
	// Passes, for the prog family, truncates the stream after that
	// many refinement passes (0 = full stream). It is part of the
	// cache key: a preview-only entry and a full-frame entry for the
	// same frame are different bytes.
	Passes int
}

// String renders the point for tables and cache keys. Every field
// that changes the encoded bytes must be visible here — the encode
// cache keys on this string.
func (p Point) String() string {
	switch {
	case p.Quality > 0 && strings.HasPrefix(p.Codec, "jpeg"):
		return fmt.Sprintf("%s@q%d", p.Codec, p.Quality)
	case p.Codec == "jls" && p.Near > 0:
		return fmt.Sprintf("%s@n%d", p.Codec, p.Near)
	case p.Codec == "prog" && p.Passes > 0:
		return fmt.Sprintf("%s@p%d", p.Codec, p.Passes)
	}
	return p.Codec
}

// Family returns the codec family name that travels on the wire (the
// decoder resolves it through the compress registry; JPEG quality is
// self-describing in the bitstream).
func (p Point) Family() string { return p.Codec }

// FrameCodec constructs the quality-parameterized codec for the point.
func (p Point) FrameCodec() (compress.FrameCodec, error) {
	q := p.Quality
	switch p.Codec {
	case "jpeg":
		return compress.Instrument(jpegc.Codec{Quality: q}), nil
	case "jpeg+lzo":
		return compress.Instrument(compress.Chain{F: jpegc.Codec{Quality: q}, B: lzo.Codec{}}), nil
	case "jpeg+bzip":
		return compress.Instrument(compress.Chain{F: jpegc.Codec{Quality: q}, B: bzp.Codec{}}), nil
	case "jls":
		return compress.Instrument(jls.Codec{Near: p.Near}), nil
	case "prog":
		return compress.Instrument(prog.Codec{Passes: p.Passes}), nil
	}
	return compress.ByName(p.Codec)
}

// DefaultLadder returns the broker's operating points, best quality
// first. The top rung is lossless jls (better ratio than LZO at a
// fraction of BZIP's CPU); the middle interleaves the paper's
// two-phase JPEG+LZO with near-lossless jls bounds; the bottom rungs
// are progressive-wavelet truncations — the floor ships only the
// preview pass, so even the RWCP (Japan) to UC Davis path gets a
// usable frame in under a second and refines when capacity allows.
func DefaultLadder() []Point {
	return []Point{
		{Codec: "jls"},
		{Codec: "jpeg+lzo", Quality: 85},
		{Codec: "jpeg+lzo", Quality: 75},
		{Codec: "jls", Near: 2},
		{Codec: "jpeg+lzo", Quality: 60},
		{Codec: "jls", Near: 4},
		{Codec: "jpeg", Quality: 45},
		{Codec: "jpeg", Quality: 30},
		{Codec: "prog", Passes: 3},
		{Codec: "prog", Passes: 2},
		{Codec: "prog", Passes: 1},
	}
}

// Config parameterizes a Broker.
type Config struct {
	// Target is the per-client target inter-frame delay the controller
	// aims for (default 200ms, i.e. 5 fps).
	Target time.Duration
	// Ladder is the ordered set of operating points, best quality
	// first (default DefaultLadder).
	Ladder []Point
	// QueueDepth bounds the per-client pacer queue (default 3).
	QueueDepth int
	// CacheFrames bounds the encode cache to this many distinct frame
	// IDs (default 4).
	CacheFrames int
	// DisableCache encodes per client per frame — the baseline the
	// fan-out cache is measured against.
	DisableCache bool
	// FixedPoint, when non-nil, disables adaptation and serves every
	// client at this operating point — the fixed-quality baseline.
	FixedPoint *Point
	// Alpha is the EWMA smoothing factor in (0,1] (default 0.3).
	Alpha float64
	// UpHold is how many consecutive picks must favor a better rung
	// before the controller upgrades (default 3); downgrades are
	// immediate.
	UpHold int
	// Guard, when set, attaches the broker to a process-wide resource
	// governor: decoded frames in flight, pacer queues, and the encode
	// cache charge byte accounts against its budget; new display
	// connections pass admission control (rejected with MsgBusy over
	// budget); and under pressure the broker walks the degradation
	// ladder — quality floor, narrowed pacers, paused cache fills,
	// shedding the newest non-relay clients. nil = unguarded.
	Guard *guard.Governor
	// Logf receives diagnostics; nil silences them. It is a
	// compatibility shim over the broker's leveled obs.Logger — see
	// Broker.Logger for level control.
	Logf func(format string, args ...any)
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Target <= 0 {
		c.Target = 200 * time.Millisecond
	}
	if len(c.Ladder) == 0 {
		c.Ladder = DefaultLadder()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 3
	}
	if c.CacheFrames <= 0 {
		c.CacheFrames = 4
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.UpHold <= 0 {
		c.UpHold = 3
	}
	return c
}
