package stream

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/display"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// BrokerStats counts broker-wide activity.
type BrokerStats struct {
	// PiecesIn and FramesIn count renderer input (pieces received,
	// complete frames assembled).
	PiecesIn atomic.Int64
	FramesIn atomic.Int64
	// Encodes counts actual encode invocations; with the fan-out cache
	// this is the cache miss count regardless of client count.
	Encodes atomic.Int64
	// FramesOut and BytesOut count frames delivered to clients.
	FramesOut atomic.Int64
	BytesOut  atomic.Int64
	// Drops counts frames discarded by per-client pacers.
	Drops atomic.Int64
	// ControlsRouted counts user-control messages relayed to
	// renderers.
	ControlsRouted atomic.Int64
}

// Broker is the adaptive display daemon: renderers stream frames in
// (any registered codec), the broker decodes each frame once, and one
// session per display re-encodes it at that client's operating point —
// shared through the EncodeCache — and paces delivery to the client's
// link. It speaks the transport package's wire protocol, so existing
// renderer and display endpoints connect unchanged.
type Broker struct {
	cfg   Config
	cache *EncodeCache
	asm   *display.Assembler

	mu         sync.Mutex
	ln         net.Listener
	clients    map[int]*client
	renderers  map[int]*rendererPeer
	nextID     int
	closed     bool
	advertised []string

	stats BrokerStats
	wg    sync.WaitGroup
}

type rendererPeer struct {
	id   int
	conn net.Conn
	wmu  sync.Mutex
}

// client is one display session.
type client struct {
	id     int
	remote string
	conn   net.Conn
	est    *Estimator
	ctrl   *Controller
	pacer  *Pacer
	gauges *metrics.GaugeSet

	sentMu sync.Mutex
	sent   map[uint32]time.Time

	framesSent atomic.Int64
	bytesSent  atomic.Int64
}

// ClientSnapshot is a point-in-time view of one session, for tables
// and experiment output.
type ClientSnapshot struct {
	ID         int
	Remote     string
	Point      Point
	Bandwidth  float64 // bytes per second, EWMA
	RTT        time.Duration
	FramesSent int64
	BytesSent  int64
	Drops      int64
	QueueLen   int
	Gauges     map[string]float64
}

// NewBroker builds a broker; Serve or ServeConn attach connections.
func NewBroker(cfg Config) *Broker {
	cfg = cfg.withDefaults()
	b := &Broker{
		cfg:       cfg,
		cache:     NewEncodeCache(cfg.CacheFrames),
		asm:       display.NewAssembler(),
		clients:   map[int]*client{},
		renderers: map[int]*rendererPeer{},
	}
	return b
}

// ListenAndServe starts a broker on addr and serves on a background
// goroutine.
func ListenAndServe(addr string, cfg Config) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen %s: %w", addr, err)
	}
	b := NewBroker(cfg)
	b.mu.Lock()
	b.ln = ln
	b.mu.Unlock()
	go func() { _ = b.Serve(ln) }()
	return b, nil
}

// Addr returns the listen address (nil before Serve).
func (b *Broker) Addr() net.Addr {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ln == nil {
		return nil
	}
	return b.ln.Addr()
}

// Stats exposes the broker counters.
func (b *Broker) Stats() *BrokerStats { return &b.stats }

// Cache exposes the encode cache (stats: hits, misses, evictions).
func (b *Broker) Cache() *EncodeCache { return b.cache }

func (b *Broker) logf(format string, args ...any) {
	if b.cfg.Logf != nil {
		b.cfg.Logf(format, args...)
	}
}

// Serve accepts connections until the listener closes.
func (b *Broker) Serve(ln net.Listener) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		ln.Close()
		return nil
	}
	b.ln = ln
	b.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			b.mu.Lock()
			closed := b.closed
			b.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		b.ServeConn(conn)
	}
}

// ServeConn runs the handshake and session for one pre-established
// connection on a background goroutine — the hook experiments use to
// wrap each accepted display connection in its own wan profile.
func (b *Broker) ServeConn(conn net.Conn) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		conn.Close()
		return
	}
	b.wg.Add(1)
	b.mu.Unlock()
	go func() {
		defer b.wg.Done()
		b.handle(conn)
	}()
}

// Close stops accepting, tears every session down, and waits for all
// broker goroutines to exit.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	ln := b.ln
	conns := make([]net.Conn, 0, len(b.clients)+len(b.renderers))
	for _, c := range b.clients {
		c.pacer.Close()
		conns = append(conns, c.conn)
	}
	for _, r := range b.renderers {
		conns = append(conns, r.conn)
	}
	b.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	b.wg.Wait()
	return err
}

func (b *Broker) handle(conn net.Conn) {
	defer conn.Close()
	hello, err := transport.ReadMessage(conn)
	if err != nil || hello.Type != transport.MsgHello || len(hello.Payload) < 1 {
		b.logf("broker: bad handshake from %v: %v", conn.RemoteAddr(), err)
		return
	}
	role := transport.Role(hello.Payload[0])
	switch role {
	case transport.RoleRenderer:
		b.handleRenderer(conn)
	case transport.RoleDisplay:
		b.handleDisplay(conn)
	default:
		b.logf("broker: unknown role %d", role)
	}
}

func (b *Broker) handleRenderer(conn net.Conn) {
	r := &rendererPeer{conn: conn}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.nextID++
	r.id = b.nextID
	b.renderers[r.id] = r
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.renderers, r.id)
		b.mu.Unlock()
		b.logf("broker: renderer %d disconnected", r.id)
	}()
	if err := transport.WriteMessage(conn, transport.Message{Type: transport.MsgHello, Payload: []byte{byte(transport.RoleRenderer)}}); err != nil {
		return
	}
	b.logf("broker: renderer %d connected from %v", r.id, conn.RemoteAddr())
	for {
		m, err := transport.ReadMessage(conn)
		if err != nil {
			return
		}
		switch m.Type {
		case transport.MsgImage:
			b.ingest(m.Payload)
		case transport.MsgAdvertise:
			b.setAdvertised(transport.UnmarshalAdvertise(m.Payload))
		case transport.MsgBye:
			return
		}
	}
}

// setAdvertised restricts current and future controllers to the
// renderer's codec families.
func (b *Broker) setAdvertised(families []string) {
	if len(families) == 0 {
		return
	}
	b.mu.Lock()
	b.advertised = families
	clients := make([]*client, 0, len(b.clients))
	for _, c := range b.clients {
		clients = append(clients, c)
	}
	b.mu.Unlock()
	for _, c := range clients {
		c.ctrl.Restrict(families)
	}
	b.logf("broker: renderer advertises %v", families)
}

// ingest decodes one renderer image piece; when it completes a frame,
// the frame is offered to every client's pacer (never blocking — a
// full queue drops its oldest frame).
func (b *Broker) ingest(payload []byte) {
	im, err := transport.UnmarshalImage(payload)
	if err != nil {
		b.logf("broker: bad image: %v", err)
		return
	}
	b.stats.PiecesIn.Add(1)
	fr, err := b.asm.Ingest(im)
	if err != nil {
		b.logf("broker: decode frame %d: %v", im.FrameID, err)
		return
	}
	if fr == nil {
		return
	}
	b.stats.FramesIn.Add(1)
	sf := &SourceFrame{ID: fr.ID, Image: fr.Image}
	b.mu.Lock()
	clients := make([]*client, 0, len(b.clients))
	for _, c := range b.clients {
		clients = append(clients, c)
	}
	b.mu.Unlock()
	for _, c := range clients {
		before := c.pacer.Drops()
		c.pacer.Offer(sf)
		if d := c.pacer.Drops() - before; d > 0 {
			b.stats.Drops.Add(d)
		}
	}
}

func (b *Broker) handleDisplay(conn net.Conn) {
	c := &client{
		conn:   conn,
		est:    NewEstimator(b.cfg.Alpha),
		pacer:  NewPacer(b.cfg.QueueDepth),
		gauges: metrics.NewGaugeSet(),
		sent:   map[uint32]time.Time{},
	}
	if ra := conn.RemoteAddr(); ra != nil {
		c.remote = ra.String()
	}
	c.ctrl = NewController(c.est, b.cfg.Target, b.cfg.Ladder, b.cfg.Alpha, b.cfg.UpHold)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.nextID++
	c.id = b.nextID
	b.clients[c.id] = c
	advertised := b.advertised
	b.mu.Unlock()
	if len(advertised) > 0 {
		c.ctrl.Restrict(advertised)
	}
	defer func() {
		b.mu.Lock()
		delete(b.clients, c.id)
		b.mu.Unlock()
		c.pacer.Close()
		b.logf("broker: display %d disconnected", c.id)
	}()
	if err := transport.WriteMessage(conn, transport.Message{Type: transport.MsgHello, Payload: []byte{byte(transport.RoleDisplay)}}); err != nil {
		return
	}
	b.logf("broker: display %d connected from %v", c.id, c.remote)

	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.sender(c)
	}()

	for {
		m, err := transport.ReadMessage(conn)
		if err != nil {
			return
		}
		switch m.Type {
		case transport.MsgAck:
			if ack, err := transport.UnmarshalAck(m.Payload); err == nil {
				b.onAck(c, ack)
			}
		case transport.MsgControl:
			b.routeToRenderers(m)
		case transport.MsgBye:
			return
		}
	}
}

// onAck matches the display's receive report to the broker's send
// timestamp and feeds the round trip to the client's estimator.
func (b *Broker) onAck(c *client, ack *transport.AckMsg) {
	c.sentMu.Lock()
	t0, ok := c.sent[ack.FrameID]
	if ok {
		delete(c.sent, ack.FrameID)
	}
	c.sentMu.Unlock()
	if !ok {
		return
	}
	rtt := time.Since(t0)
	c.est.ObserveRTT(rtt)
	c.gauges.Set("rtt_ms", float64(rtt)/float64(time.Millisecond))
}

// routeToRenderers relays a user-control message to every renderer.
func (b *Broker) routeToRenderers(m transport.Message) {
	b.mu.Lock()
	rends := make([]*rendererPeer, 0, len(b.renderers))
	for _, r := range b.renderers {
		rends = append(rends, r)
	}
	b.mu.Unlock()
	for _, r := range rends {
		r.wmu.Lock()
		err := transport.WriteMessage(r.conn, m)
		r.wmu.Unlock()
		if err == nil {
			b.stats.ControlsRouted.Add(1)
		}
	}
}

// sender is the per-client delivery loop: newest paced frame → pick
// operating point → encode-once-per-point via the cache → timed write
// feeding the bandwidth estimator.
func (b *Broker) sender(c *client) {
	for {
		sf, ok := c.pacer.Next()
		if !ok {
			return
		}
		point := c.ctrl.Pick()
		if b.cfg.FixedPoint != nil {
			point = *b.cfg.FixedPoint
		}
		encode := func() ([]byte, error) {
			codec, err := point.FrameCodec()
			if err != nil {
				return nil, err
			}
			b.stats.Encodes.Add(1)
			return codec.EncodeFrame(sf.Image)
		}
		var data []byte
		var err error
		if b.cfg.DisableCache {
			data, err = encode()
		} else {
			data, err = b.cache.GetOrEncode(sf.ID, point, encode)
		}
		if err != nil {
			b.logf("broker: encode frame %d at %s: %v", sf.ID, point, err)
			continue
		}
		c.ctrl.ObserveSize(point, len(data))
		im := &transport.ImageMsg{
			FrameID:    sf.ID,
			PieceCount: 1,
			X1:         uint16(sf.Image.W), Y1: uint16(sf.Image.H),
			W: uint16(sf.Image.W), H: uint16(sf.Image.H),
			Codec: point.Family(),
			Data:  data,
		}
		payload, err := im.Marshal()
		if err != nil {
			b.logf("broker: marshal frame %d: %v", sf.ID, err)
			continue
		}
		c.sentMu.Lock()
		c.sent[sf.ID] = time.Now()
		// Bound the in-flight map: unacked frames older than the
		// window just stop contributing RTT samples.
		if len(c.sent) > 64 {
			for id := range c.sent {
				if id+64 < sf.ID {
					delete(c.sent, id)
				}
			}
		}
		c.sentMu.Unlock()
		t0 := time.Now()
		if err := transport.WriteMessage(c.conn, transport.Message{Type: transport.MsgImage, Payload: payload}); err != nil {
			c.conn.Close()
			return
		}
		sendTime := time.Since(t0)
		c.est.Observe(len(payload), sendTime)
		c.framesSent.Add(1)
		c.bytesSent.Add(int64(len(payload)))
		b.stats.FramesOut.Add(1)
		b.stats.BytesOut.Add(int64(len(payload)))
		c.gauges.Set("bandwidth_Bps", c.est.Bandwidth())
		c.gauges.Set("quality", float64(point.Quality))
		c.gauges.Set("frame_bytes", float64(len(data)))
		c.gauges.Set("drops", float64(c.pacer.Drops()))
		c.gauges.Set("queue_len", float64(c.pacer.Len()))
		c.gauges.Set("cache_hit_rate", b.cache.Stats().HitRate())
	}
}

// ClientSnapshots returns a stable view of every connected session,
// ordered by session ID.
func (b *Broker) ClientSnapshots() []ClientSnapshot {
	b.mu.Lock()
	clients := make([]*client, 0, len(b.clients))
	for _, c := range b.clients {
		clients = append(clients, c)
	}
	b.mu.Unlock()
	out := make([]ClientSnapshot, 0, len(clients))
	for _, c := range clients {
		out = append(out, ClientSnapshot{
			ID:         c.id,
			Remote:     c.remote,
			Point:      c.ctrl.Current(),
			Bandwidth:  c.est.Bandwidth(),
			RTT:        c.est.RTT(),
			FramesSent: c.framesSent.Load(),
			BytesSent:  c.bytesSent.Load(),
			Drops:      c.pacer.Drops(),
			QueueLen:   c.pacer.Len(),
			Gauges:     c.gauges.Snapshot(),
		})
	}
	sortSnapshots(out)
	return out
}

func sortSnapshots(s []ClientSnapshot) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].ID > s[j].ID; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
