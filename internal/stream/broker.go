package stream

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compress/prog"
	"repro/internal/display"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/provenance"
	"repro/internal/transport"
)

// BrokerStats counts broker-wide activity.
type BrokerStats struct {
	// PiecesIn and FramesIn count renderer input (pieces received,
	// complete frames assembled).
	PiecesIn atomic.Int64
	FramesIn atomic.Int64
	// Encodes counts actual encode invocations; with the fan-out cache
	// this is the cache miss count regardless of client count.
	Encodes atomic.Int64
	// FramesOut and BytesOut count frames delivered to clients.
	FramesOut atomic.Int64
	BytesOut  atomic.Int64
	// Drops counts frames discarded by per-client pacers.
	Drops atomic.Int64
	// ControlsRouted counts user-control messages relayed to
	// renderers.
	ControlsRouted atomic.Int64
	// CorruptDropped counts inbound messages dropped on CRC failure.
	CorruptDropped atomic.Int64
	// BusyRejected counts display handshakes refused with MsgBusy by
	// admission control.
	BusyRejected atomic.Int64
	// Shed counts admitted clients disconnected by the governor's
	// shed step under extreme memory pressure.
	Shed atomic.Int64
}

// Broker is the adaptive display daemon: renderers stream frames in
// (any registered codec), the broker decodes each frame once, and one
// session per display re-encodes it at that client's operating point —
// shared through the EncodeCache — and paces delivery to the client's
// link. It speaks the transport package's wire protocol, so existing
// renderer and display endpoints connect unchanged.
type Broker struct {
	cfg   Config
	cache *EncodeCache
	asm   *display.Assembler
	log   *obs.Logger

	// gov and the byte accounts are the broker's attachment to the
	// process resource governor (all nil-safe when unguarded).
	gov        *guard.Governor
	framesAcct *guard.Account
	pacerAcct  *guard.Account

	mu         sync.Mutex
	ln         net.Listener
	clients    map[int]*client
	renderers  map[int]*rendererPeer
	nextID     int
	closed     bool
	advertised []string

	// ctrlForward, when set, receives every user-control message in
	// addition to the connected renderers — the relay node's hook for
	// passing controls up the tree toward the render site.
	ctrlForward atomic.Pointer[func(transport.Message)]

	// Observability hooks (nil until Instrument/SetTracer): per-stage
	// histograms and the span tracer. Swapped atomically so the
	// sender hot path reads them without taking mu.
	tracer  atomic.Pointer[obs.Tracer]
	encodeH atomic.Pointer[obs.Histogram]
	sendH   atomic.Pointer[obs.Histogram]
	ifdH    atomic.Pointer[obs.Histogram]
	lastOut atomic.Int64 // unix nanos of the previous frame send

	// prov records per-frame provenance events when set (nil-safe),
	// and traces maps completed frame IDs to their wire trace context
	// so senders re-attach it (hop-bumped) on fan-out.
	prov    atomic.Pointer[provenance.Log]
	traceMu sync.Mutex
	traces  map[uint32]*transport.TraceCtx

	stats BrokerStats
	wg    sync.WaitGroup
}

type rendererPeer struct {
	id   int
	conn net.Conn
	fr   transport.Framer
	wmu  sync.Mutex
}

// client is one display session.
type client struct {
	id     int
	kind   byte // transport.KindViewer or KindRelay
	remote string
	conn   net.Conn
	fr     transport.Framer
	est    *Estimator
	ctrl   *Controller
	pacer  *Pacer
	gauges *metrics.GaugeSet

	sentMu sync.Mutex
	sent   map[uint32]time.Time

	// wmu serializes conn writes (frame sender vs. pong replies).
	wmu sync.Mutex

	// marshalBuf is the sender goroutine's reusable wire-marshal
	// scratch; only sender touches it, so no locking.
	marshalBuf []byte

	// lastPoint tracks the operating point the sender last encoded at,
	// so a ladder step mid-frame can invalidate the abandoned point's
	// cache entry. Sender-goroutine-local.
	lastPoint    Point
	lastPointSet bool

	framesSent atomic.Int64
	bytesSent  atomic.Int64
}

// ClientSnapshot is a point-in-time view of one session, for tables
// and experiment output.
type ClientSnapshot struct {
	ID         int
	Remote     string
	Point      Point
	Bandwidth  float64 // bytes per second, EWMA
	RTT        time.Duration
	FramesSent int64
	BytesSent  int64
	Drops      int64
	QueueLen   int
	Gauges     map[string]float64
}

// NewBroker builds a broker; Serve or ServeConn attach connections.
func NewBroker(cfg Config) *Broker {
	cfg = cfg.withDefaults()
	b := &Broker{
		cfg:       cfg,
		cache:     NewEncodeCache(cfg.CacheFrames),
		asm:       display.NewAssembler(),
		log:       obs.NewLogger("broker"),
		clients:   map[int]*client{},
		renderers: map[int]*rendererPeer{},
		traces:    map[uint32]*transport.TraceCtx{},
	}
	if cfg.Logf != nil {
		// Compatibility shim: Config.Logf routes the leveled component
		// logger to the caller's printf sink.
		b.log.SetFunc(cfg.Logf)
	}
	if cfg.Guard != nil {
		b.gov = cfg.Guard
		b.framesAcct = b.gov.Account("frames")
		b.pacerAcct = b.gov.Account("pacer")
		b.cache.SetGuard(b.gov.Account("encode-cache"), b.gov.CacheFillPaused)
		b.gov.OnShed(b.shedNewest)
	}
	return b
}

// Probe acquires and releases the broker's hot-path locks — the
// watchdog's deadlock self-check: it completes instantly on a healthy
// (even idle) broker and blocks when a lock holder is wedged.
func (b *Broker) Probe() {
	b.mu.Lock()
	//lint:ignore SA2001 the probe is exactly acquire-then-release
	b.mu.Unlock()
	b.traceMu.Lock()
	b.traceMu.Unlock()
}

// shedNewest disconnects the most recently admitted non-relay client,
// reporting whether one was found — the governor's last degradation
// step. Relay clients are spared: they serve whole subtrees.
func (b *Broker) shedNewest() bool {
	b.mu.Lock()
	var victim *client
	for _, c := range b.clients {
		if c.kind == transport.KindRelay {
			continue
		}
		if victim == nil || c.id > victim.id {
			victim = c
		}
	}
	b.mu.Unlock()
	if victim == nil {
		return false
	}
	b.stats.Shed.Add(1)
	b.log.Warnf("guard: shedding newest display %d (%s) under memory pressure", victim.id, victim.remote)
	// Closing the conn unwinds the session through the normal
	// disconnect path (reader errors, sender drains, pacer closes).
	victim.conn.Close()
	return true
}

// ListenAndServe starts a broker on addr and serves on a background
// goroutine.
func ListenAndServe(addr string, cfg Config) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen %s: %w", addr, err)
	}
	b := NewBroker(cfg)
	b.mu.Lock()
	b.ln = ln
	b.mu.Unlock()
	go func() { _ = b.Serve(ln) }()
	return b, nil
}

// Addr returns the listen address (nil before Serve).
func (b *Broker) Addr() net.Addr {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ln == nil {
		return nil
	}
	return b.ln.Addr()
}

// Stats exposes the broker counters.
func (b *Broker) Stats() *BrokerStats { return &b.stats }

// Cache exposes the encode cache (stats: hits, misses, evictions).
func (b *Broker) Cache() *EncodeCache { return b.cache }

// Logger exposes the broker's component logger.
func (b *Broker) Logger() *obs.Logger { return b.log }

// SetControlForward installs a sink that receives every user-control
// message from display clients in addition to any connected renderers.
// A relay node forwards them to its upstream session, so controls from
// viewers at the tree's edge still reach the render site. Safe to call
// while serving; nil detaches.
func (b *Broker) SetControlForward(fn func(transport.Message)) {
	if fn == nil {
		b.ctrlForward.Store(nil)
		return
	}
	b.ctrlForward.Store(&fn)
}

// SetTracer attaches a span tracer: each client session records
// pace/encode/send spans on its own "client N" track, and frame
// ingest records on the "broker" track. Safe to call while serving;
// nil detaches.
func (b *Broker) SetTracer(t *obs.Tracer) { b.tracer.Store(t) }

// Instrument registers the broker's counters, encode/send-stage
// histograms, and a per-client gauge collector on a metrics registry —
// absorbing BrokerStats, the cache stats and the per-client GaugeSets
// behind one exposition endpoint. Safe to call while serving.
func (b *Broker) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := &b.stats
	reg.CounterFunc("broker_pieces_in_total", "Renderer image pieces received.", st.PiecesIn.Load)
	reg.CounterFunc("broker_frames_in_total", "Complete frames assembled from renderer input.", st.FramesIn.Load)
	reg.CounterFunc("broker_encodes_total", "Actual encode invocations (cache misses).", st.Encodes.Load)
	reg.CounterFunc("broker_frames_out_total", "Frames delivered to display clients.", st.FramesOut.Load)
	reg.CounterFunc("broker_bytes_out_total", "Frame payload bytes delivered to display clients.", st.BytesOut.Load)
	reg.CounterFunc("broker_drops_total", "Frames discarded by per-client pacers.", st.Drops.Load)
	reg.CounterFunc("broker_controls_routed_total", "User-control messages relayed to renderers.", st.ControlsRouted.Load)
	reg.CounterFunc("broker_corrupt_dropped_total", "Inbound messages dropped on wire CRC failure.", st.CorruptDropped.Load)
	reg.CounterFunc("broker_busy_rejected_total", "Display handshakes refused with MsgBusy by admission control.", st.BusyRejected.Load)
	reg.CounterFunc("broker_shed_total", "Admitted clients disconnected by the governor's shed step.", st.Shed.Load)
	cs := b.cache.Stats()
	reg.CounterFunc("broker_cache_hits_total", "Encode fan-out cache hits.", cs.Hits.Load)
	reg.CounterFunc("broker_cache_misses_total", "Encode fan-out cache misses.", cs.Misses.Load)
	reg.CounterFunc("broker_cache_evictions_total", "Encode fan-out cache evictions.", cs.Evictions.Load)
	reg.GaugeFunc("broker_clients", "Connected display sessions.", func() float64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return float64(len(b.clients))
	})
	b.encodeH.Store(reg.Histogram("broker_encode_seconds",
		"Per-frame encode (or cache lookup) time in the client sender."))
	b.sendH.Store(reg.Histogram("broker_send_seconds",
		"Per-frame socket write time in the client sender."))
	b.ifdH.Store(reg.Histogram("broker_interframe_delay_seconds",
		"Delay between consecutive frames sent to any client."))
	// Per-client sessions come and go; a collector re-emits their
	// gauge sets with a client label at every scrape.
	reg.Collect(func(emit obs.Emit) {
		for _, snap := range b.ClientSnapshots() {
			label := fmt.Sprintf(`{client="%d"}`, snap.ID)
			emit("broker_client_frames_sent"+label, "Frames sent to this session.", "counter", float64(snap.FramesSent))
			emit("broker_client_bytes_sent"+label, "Bytes sent to this session.", "counter", float64(snap.BytesSent))
			emit("broker_client_drops"+label, "Frames dropped for this session.", "counter", float64(snap.Drops))
			emit("broker_client_queue_len"+label, "Paced frames queued for this session.", "gauge", float64(snap.QueueLen))
			for name, v := range snap.Gauges {
				emit("broker_client_"+name+label, "Per-session gauge bridged from the stream GaugeSet.", "gauge", v)
			}
		}
	})
}

// Serve accepts connections until the listener closes.
func (b *Broker) Serve(ln net.Listener) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		ln.Close()
		return nil
	}
	b.ln = ln
	b.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			b.mu.Lock()
			closed := b.closed
			b.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		b.ServeConn(conn)
	}
}

// ServeConn runs the handshake and session for one pre-established
// connection on a background goroutine — the hook experiments use to
// wrap each accepted display connection in its own wan profile.
func (b *Broker) ServeConn(conn net.Conn) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		conn.Close()
		return
	}
	b.wg.Add(1)
	b.mu.Unlock()
	go func() {
		defer b.wg.Done()
		b.handle(conn)
	}()
}

// Close stops accepting, tears every session down, and waits for all
// broker goroutines to exit.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	ln := b.ln
	conns := make([]net.Conn, 0, len(b.clients)+len(b.renderers))
	for _, c := range b.clients {
		c.pacer.Close()
		conns = append(conns, c.conn)
	}
	for _, r := range b.renderers {
		conns = append(conns, r.conn)
	}
	b.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	b.wg.Wait()
	// Drain the encode cache so the governor's resident-bytes ledger
	// returns to zero once every session has unwound.
	b.cache.Clear()
	return err
}

func (b *Broker) handle(conn net.Conn) {
	defer conn.Close()
	hello, err := transport.ReadMessage(conn)
	if err != nil || hello.Type != transport.MsgHello || len(hello.Payload) < 1 {
		b.log.Warnf("bad handshake from %v: %v", conn.RemoteAddr(), err)
		return
	}
	role, peerVer, kind, err := transport.ParseHelloKind(hello.Payload)
	if err != nil {
		b.log.Warnf("bad hello from %v: %v", conn.RemoteAddr(), err)
		return
	}
	// Hellos and welcomes travel in legacy framing; the negotiated
	// version applies from the first message after them, exactly like
	// the plain daemon's handshake. Legacy single-byte hellos negotiate
	// v1, so pre-negotiation peers connect unchanged.
	fr := transport.Framer{Version: transport.NegotiateVersion(transport.ProtoV3, peerVer)}
	switch role {
	case transport.RoleRenderer:
		b.handleRenderer(conn, fr)
	case transport.RoleDisplay:
		b.handleDisplay(conn, fr, kind)
	default:
		b.log.Warnf("unknown role %d", role)
	}
}

func (b *Broker) handleRenderer(conn net.Conn, fr transport.Framer) {
	r := &rendererPeer{conn: conn, fr: fr}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.nextID++
	r.id = b.nextID
	b.renderers[r.id] = r
	b.mu.Unlock()
	// A renderer (re)connecting may restart its frame-ID sequence from
	// zero; a fresh cache generation keeps the previous sequence's
	// entries from being served as this one's frames.
	b.cache.BumpGeneration()
	defer func() {
		b.mu.Lock()
		delete(b.renderers, r.id)
		b.mu.Unlock()
		b.log.Infof("renderer %d disconnected", r.id)
	}()
	if err := transport.WriteMessage(conn, transport.Message{Type: transport.MsgHello, Payload: transport.HelloPayload(transport.RoleRenderer, fr.Version)}); err != nil {
		return
	}
	b.log.Infof("renderer %d connected from %v (proto v%d)", r.id, conn.RemoteAddr(), fr.Version+1)
	remote := fmt.Sprint(conn.RemoteAddr())
	for {
		m, err := r.fr.ReadMessage(conn)
		if err != nil {
			if errors.Is(err, transport.ErrChecksum) {
				// Stream stays frame-aligned past a CRC failure: drop the
				// corrupt message and keep serving.
				b.stats.CorruptDropped.Add(1)
				b.log.Warnf("corrupt message from renderer %d dropped", r.id)
				continue
			}
			return
		}
		switch m.Type {
		case transport.MsgImage:
			if tc := m.Trace; tc != nil {
				b.prov.Load().Record(provenance.Event{
					Trace: tc.TraceID, Frame: tc.FrameID, Hop: int(tc.Hop),
					Event: provenance.EvReceived, Bytes: len(m.Payload), Link: remote,
				})
			}
			b.ingest(m.Payload, m.Trace)
		case transport.MsgAdvertise:
			b.setAdvertised(transport.UnmarshalAdvertise(m.Payload))
		case transport.MsgPing:
			// Liveness probe from a reconnect-capable server.
			r.wmu.Lock()
			_ = r.fr.WriteMessage(conn, transport.Message{Type: transport.MsgPong, Payload: m.Payload})
			r.wmu.Unlock()
		case transport.MsgBye:
			return
		}
	}
}

// setAdvertised restricts current and future controllers to the
// renderer's codec families.
func (b *Broker) setAdvertised(families []string) {
	if len(families) == 0 {
		return
	}
	b.mu.Lock()
	b.advertised = families
	clients := make([]*client, 0, len(b.clients))
	for _, c := range b.clients {
		clients = append(clients, c)
	}
	b.mu.Unlock()
	for _, c := range clients {
		c.ctrl.Restrict(families)
	}
	b.log.Infof("renderer advertises %v", families)
}

// SetProvenance attaches a frame-provenance log: ingest, encode, send
// and drop points record lifecycle events against the wire trace
// context, and senders forward the context hop-bumped. Safe to call
// while serving; nil detaches.
func (b *Broker) SetProvenance(l *provenance.Log) { b.prov.Store(l) }

// noteTrace remembers a completed frame's trace context for the
// senders, bounded to a recent-frame window.
func (b *Broker) noteTrace(frameID uint32, tc *transport.TraceCtx) {
	if tc == nil {
		return
	}
	b.traceMu.Lock()
	b.traces[frameID] = tc
	if len(b.traces) > 256 {
		for id := range b.traces {
			if id+128 < frameID {
				delete(b.traces, id)
			}
		}
	}
	b.traceMu.Unlock()
}

// traceFor recalls a frame's trace context (nil when untraced).
func (b *Broker) traceFor(frameID uint32) *transport.TraceCtx {
	b.traceMu.Lock()
	defer b.traceMu.Unlock()
	return b.traces[frameID]
}

// IngestImage feeds one marshaled image piece into the broker exactly
// as if it had arrived from a connected renderer, reporting the piece's
// frame ID and whether it completed a frame. It is the relay node's
// input path: frames received from the upstream daemon are re-served to
// this broker's own clients. tc is the piece's wire trace context (nil
// when untraced); the caller is expected to have recorded its own
// received event already.
func (b *Broker) IngestImage(payload []byte, tc *transport.TraceCtx) (frameID uint32, completed bool) {
	return b.ingest(payload, tc)
}

// ingest decodes one renderer image piece; when it completes a frame,
// the frame is offered to every client's pacer (never blocking — a
// full queue drops its oldest frame).
func (b *Broker) ingest(payload []byte, tc *transport.TraceCtx) (uint32, bool) {
	defer b.tracer.Load().Begin("broker", "stream", "ingest")()
	im, err := transport.UnmarshalImage(payload)
	if err != nil {
		b.log.Warnf("bad image: %v", err)
		return 0, false
	}
	b.stats.PiecesIn.Add(1)
	fr, err := b.asm.Ingest(im)
	if err != nil {
		b.log.Warnf("decode frame %d: %v", im.FrameID, err)
		return im.FrameID, false
	}
	if fr == nil {
		return im.FrameID, false
	}
	b.stats.FramesIn.Add(1)
	b.noteTrace(fr.ID, tc)
	if tc != nil {
		b.prov.Load().Record(provenance.Event{
			Trace: tc.TraceID, Frame: tc.FrameID, Hop: int(tc.Hop),
			Event: provenance.EvDecoded,
		})
	}
	sf := &SourceFrame{ID: fr.ID, Image: fr.Image}
	if b.framesAcct != nil {
		// Charge the decoded frame once; the creator reference below
		// keeps the charge alive until fan-out completes, then each
		// queued reference keeps it until consumed or dropped.
		sf.acct = b.framesAcct
		sf.refs.Store(1)
		b.framesAcct.Add(sf.Size())
	}
	b.mu.Lock()
	clients := make([]*client, 0, len(b.clients))
	for _, c := range b.clients {
		clients = append(clients, c)
	}
	b.mu.Unlock()
	for _, c := range clients {
		sf.retain()
		accepted, dropped := c.pacer.Offer(sf)
		if !accepted {
			sf.release()
		}
		for _, d := range dropped {
			b.stats.Drops.Add(1)
			if dtc := b.traceFor(d.ID); dtc != nil {
				b.prov.Load().Record(provenance.Event{
					Trace: dtc.TraceID, Frame: dtc.FrameID, Hop: int(dtc.Hop),
					Event: provenance.EvDropped, Cause: "pacer-full",
				})
			}
			d.release()
		}
	}
	sf.release()
	return fr.ID, true
}

func (b *Broker) handleDisplay(conn net.Conn, fr transport.Framer, kind byte) {
	c := &client{
		kind:   kind,
		conn:   conn,
		fr:     fr,
		est:    NewEstimator(b.cfg.Alpha),
		pacer:  NewPacer(b.cfg.QueueDepth),
		gauges: metrics.NewGaugeSet(),
		sent:   map[uint32]time.Time{},
	}
	if ra := conn.RemoteAddr(); ra != nil {
		c.remote = ra.String()
	}
	c.ctrl = NewController(c.est, b.cfg.Target, b.cfg.Ladder, b.cfg.Alpha, b.cfg.UpHold)
	if b.gov != nil {
		c.pacer.SetGuard(b.pacerAcct, func() int { return b.gov.PacerDepth(b.cfg.QueueDepth) })
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	if ok, retry := b.gov.Admit(kind == transport.KindRelay, len(b.clients)); !ok {
		b.mu.Unlock()
		b.stats.BusyRejected.Add(1)
		b.log.Warnf("display from %v refused by admission control (retry after %v)", conn.RemoteAddr(), retry)
		// Busy refusals travel in legacy framing like the welcome they
		// replace, so any client version can decode them.
		_ = transport.WriteMessage(conn, transport.Message{Type: transport.MsgBusy, Payload: transport.MarshalBusy(retry, "over budget")})
		return
	}
	b.nextID++
	c.id = b.nextID
	b.clients[c.id] = c
	advertised := b.advertised
	b.mu.Unlock()
	if len(advertised) > 0 {
		c.ctrl.Restrict(advertised)
	}
	defer func() {
		b.mu.Lock()
		delete(b.clients, c.id)
		b.mu.Unlock()
		c.pacer.Close()
		b.log.Infof("display %d disconnected", c.id)
	}()
	if err := transport.WriteMessage(conn, transport.Message{Type: transport.MsgHello, Payload: transport.HelloPayload(transport.RoleDisplay, fr.Version)}); err != nil {
		return
	}
	b.log.Infof("display %d connected from %v (proto v%d)", c.id, c.remote, fr.Version+1)

	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.sender(c)
	}()

	for {
		m, err := c.fr.ReadMessage(conn)
		if err != nil {
			if errors.Is(err, transport.ErrChecksum) {
				b.stats.CorruptDropped.Add(1)
				b.log.Warnf("corrupt message from display %d dropped", c.id)
				continue
			}
			return
		}
		switch m.Type {
		case transport.MsgAck:
			if ack, err := transport.UnmarshalAck(m.Payload); err == nil {
				b.onAck(c, ack)
			}
		case transport.MsgControl:
			b.routeToRenderers(m)
		case transport.MsgPing:
			// Liveness probe from a reconnect-capable viewer.
			c.wmu.Lock()
			_ = c.fr.WriteMessage(conn, transport.Message{Type: transport.MsgPong, Payload: m.Payload})
			c.wmu.Unlock()
		case transport.MsgBye:
			return
		}
	}
}

// onAck matches the display's receive report to the broker's send
// timestamp and feeds the round trip to the client's estimator.
func (b *Broker) onAck(c *client, ack *transport.AckMsg) {
	c.sentMu.Lock()
	t0, ok := c.sent[ack.FrameID]
	if ok {
		delete(c.sent, ack.FrameID)
	}
	c.sentMu.Unlock()
	if !ok {
		return
	}
	rtt := time.Since(t0)
	c.est.ObserveRTT(rtt)
	c.gauges.Set("rtt_ms", float64(rtt)/float64(time.Millisecond))
}

// routeToRenderers relays a user-control message to every renderer and
// to the control-forward sink (the relay node's upstream path).
func (b *Broker) routeToRenderers(m transport.Message) {
	if fn := b.ctrlForward.Load(); fn != nil {
		(*fn)(m)
		b.stats.ControlsRouted.Add(1)
	}
	b.mu.Lock()
	rends := make([]*rendererPeer, 0, len(b.renderers))
	for _, r := range b.renderers {
		rends = append(rends, r)
	}
	b.mu.Unlock()
	for _, r := range rends {
		r.wmu.Lock()
		err := r.fr.WriteMessage(r.conn, m)
		r.wmu.Unlock()
		if err == nil {
			b.stats.ControlsRouted.Add(1)
		}
	}
}

// sender is the per-client delivery loop: newest paced frame → pick
// operating point → encode-once-per-point via the cache → timed write
// feeding the bandwidth estimator.
func (b *Broker) sender(c *client) {
	track := fmt.Sprintf("client %d", c.id)
	// On exit (write error or broker close) drain the pacer so every
	// queued frame's budget charge is refunded: the read loop's defer
	// closes the pacer once the conn errors, which unblocks Next here.
	defer func() {
		for {
			sf, ok := c.pacer.Next()
			if !ok {
				return
			}
			sf.release()
		}
	}()
	for {
		// The tracer is re-loaded each frame so SetTracer can attach
		// or detach while the session runs.
		tr := b.tracer.Load()
		endWait := tr.Begin(track, "stream", "wait")
		sf, ok := c.pacer.Next()
		endWait()
		if !ok {
			return
		}
		if b.gov != nil {
			// The governor's quality-step degradation: under pressure
			// every client is floored at or below a ladder midpoint.
			c.ctrl.SetFloor(b.gov.QualityFloor(c.ctrl.LadderLen()))
		}
		point := c.ctrl.Pick()
		if c.est.Samples() == 0 && c.kind == transport.KindViewer {
			// Cold start: no bandwidth evidence yet, and this could be a
			// 45 KB/s transoceanic path. Ship the cheapest rung (the
			// progressive preview on the default ladder) as a probe —
			// the viewer gets a usable frame in well under a second on
			// any calibrated link, and the send seeds the estimator so
			// the next pick is informed.
			point = c.ctrl.ProbePoint()
		}
		if b.cfg.FixedPoint != nil {
			point = *b.cfg.FixedPoint
		}
		if c.lastPointSet && point != c.lastPoint {
			b.notePointChange(c, c.lastPoint, sf.ID)
		}
		c.lastPoint, c.lastPointSet = point, true
		encode := func() ([]byte, error) {
			codec, err := point.FrameCodec()
			if err != nil {
				return nil, err
			}
			b.stats.Encodes.Add(1)
			return codec.EncodeFrame(sf.Image)
		}
		var data []byte
		var err error
		encStart := time.Now()
		endEncode := tr.Begin(track, "stream", "encode", "frame", sf.ID, "point", point.String())
		if b.cfg.DisableCache {
			data, err = encode()
		} else {
			data, err = b.cache.GetOrEncode(sf.ID, point, encode)
		}
		endEncode()
		b.encodeH.Load().ObserveDuration(time.Since(encStart))
		// The decoded pixels are not needed past the encode; release the
		// queued reference now so the frames-in-flight charge refunds
		// even when the write below stalls on a slow client.
		sf.release()
		if err != nil {
			b.log.Warnf("encode frame %d at %s: %v", sf.ID, point, err)
			continue
		}
		tc := b.traceFor(sf.ID)
		if tc != nil {
			b.prov.Load().Record(provenance.Event{
				Trace: tc.TraceID, Frame: tc.FrameID, Hop: int(tc.Hop),
				Event: provenance.EvCompressed, Bytes: len(data), Cause: point.String(),
			})
		}
		c.ctrl.ObserveSize(point, len(data))
		// A full progressive frame goes out in two writes — the
		// standalone preview pass, then the refinement tail — so the
		// viewer paints a usable image from the first bytes and
		// refines in place. Relays keep the single-message form:
		// their dedup window marks a frame ID done once received,
		// and they re-encode per downstream link anyway.
		chunks := [...][]byte{data, nil}
		nchunks := 1
		if point.Codec == "prog" && point.Passes == 0 && c.kind != transport.KindRelay {
			if head, tail, ok := prog.SplitPreview(data); ok {
				chunks[0], chunks[1] = head, tail
				nchunks = 2
			}
		}
		c.sentMu.Lock()
		c.sent[sf.ID] = time.Now()
		// Bound the in-flight map: unacked frames older than the
		// window just stop contributing RTT samples.
		if len(c.sent) > 64 {
			for id := range c.sent {
				if id+64 < sf.ID {
					delete(c.sent, id)
				}
			}
		}
		c.sentMu.Unlock()
		totalSent := 0
		var sendTime time.Duration
		marshalFailed := false
		for ci := 0; ci < nchunks; ci++ {
			im := &transport.ImageMsg{
				FrameID:    sf.ID,
				PieceCount: 1,
				X1:         uint16(sf.Image.W), Y1: uint16(sf.Image.H),
				W: uint16(sf.Image.W), H: uint16(sf.Image.H),
				Codec: point.Family(),
				Data:  chunks[ci],
			}
			// Reuse the sender's scratch: WriteMessage below completes
			// before the next chunk rewrites it.
			payload, err := im.AppendTo(c.marshalBuf[:0])
			if err != nil {
				b.log.Warnf("marshal frame %d: %v", sf.ID, err)
				marshalFailed = true
				break
			}
			c.marshalBuf = payload
			out := transport.Message{Type: transport.MsgImage, Payload: payload}
			if tc != nil {
				// Forward the trace at the next hop ordinal; the v1/v2
				// framer strips it for pre-trace clients.
				fwd := *tc
				fwd.Hop++
				out.Trace = &fwd
			}
			t0 := time.Now()
			endSend := tr.Begin(track, "stream", "send", "frame", sf.ID, "bytes", len(payload))
			c.wmu.Lock()
			err = c.fr.WriteMessage(c.conn, out)
			c.wmu.Unlock()
			endSend()
			if err != nil {
				c.conn.Close()
				return
			}
			sendTime += time.Since(t0)
			totalSent += len(payload)
		}
		if marshalFailed {
			continue
		}
		if tc != nil {
			b.prov.Load().Record(provenance.Event{
				Trace: tc.TraceID, Frame: tc.FrameID, Hop: int(tc.Hop),
				Event: provenance.EvSent, Bytes: totalSent, Link: c.remote,
			})
		}
		b.sendH.Load().ObserveDuration(sendTime)
		now := time.Now().UnixNano()
		if prev := b.lastOut.Swap(now); prev != 0 {
			b.ifdH.Load().ObserveDuration(time.Duration(now - prev))
		}
		c.est.Observe(totalSent, sendTime)
		c.framesSent.Add(1)
		c.bytesSent.Add(int64(totalSent))
		b.stats.FramesOut.Add(1)
		b.stats.BytesOut.Add(int64(totalSent))
		c.gauges.Set("bandwidth_Bps", c.est.Bandwidth())
		c.gauges.Set("quality", float64(point.Quality))
		c.gauges.Set("frame_bytes", float64(len(data)))
		c.gauges.Set("drops", float64(c.pacer.Drops()))
		c.gauges.Set("queue_len", float64(c.pacer.Len()))
		c.gauges.Set("cache_hit_rate", b.cache.Stats().HitRate())
	}
}

// notePointChange runs when a client's ladder steps away from old
// (usually a step-down under link pressure) while frame frameID is
// still being fanned out. If no other client still operates at old,
// its entry for the current frame is stale — nobody will request it
// again — so it is invalidated rather than left squatting in the
// bounded frame window until frame-age eviction.
func (b *Broker) notePointChange(c *client, old Point, frameID uint32) {
	b.mu.Lock()
	inUse := false
	for _, o := range b.clients {
		if o != c && o.ctrl.Current() == old {
			inUse = true
			break
		}
	}
	b.mu.Unlock()
	if !inUse {
		b.cache.Invalidate(frameID, old)
	}
}

// ClientSnapshots returns a stable view of every connected session,
// ordered by session ID.
func (b *Broker) ClientSnapshots() []ClientSnapshot {
	b.mu.Lock()
	clients := make([]*client, 0, len(b.clients))
	for _, c := range b.clients {
		clients = append(clients, c)
	}
	b.mu.Unlock()
	out := make([]ClientSnapshot, 0, len(clients))
	for _, c := range clients {
		out = append(out, ClientSnapshot{
			ID:         c.id,
			Remote:     c.remote,
			Point:      c.ctrl.Current(),
			Bandwidth:  c.est.Bandwidth(),
			RTT:        c.est.RTT(),
			FramesSent: c.framesSent.Load(),
			BytesSent:  c.bytesSent.Load(),
			Drops:      c.pacer.Drops(),
			QueueLen:   c.pacer.Len(),
			Gauges:     c.gauges.Snapshot(),
		})
	}
	sortSnapshots(out)
	return out
}

func sortSnapshots(s []ClientSnapshot) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].ID > s[j].ID; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
