package stream_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/display"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/transport"
	"repro/internal/wan"
)

// TestBrokerInstrumentAndTrace pins the broker's observability bridge:
// after streaming real frames to a client, the registry carries the
// broker counters, the per-stage histograms and the per-client labeled
// series, and the tracer holds encode/send spans on the client's
// track.
func TestBrokerInstrumentAndTrace(t *testing.T) {
	b := stream.NewBroker(stream.Config{Target: 50 * time.Millisecond, QueueDepth: 4, CacheFrames: 8})
	defer b.Close()
	reg := obs.NewRegistry()
	b.Instrument(reg)
	tr := obs.NewTracer(obs.WallClock(), 4096)
	b.SetTracer(tr)

	ep := pipeConn(t, b, transport.RoleDisplay, wan.Profile{})
	v := display.NewViewer(ep)
	go func() {
		for range v.Frames() {
		}
	}()
	rend := pipeConn(t, b, transport.RoleRenderer, wan.Profile{})
	const n = 5
	sendFrames(t, rend, noiseFrame(32, 32), n, 5*time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && v.Stats().Frames < n {
		time.Sleep(10 * time.Millisecond)
	}
	if got := v.Stats().Frames; got < n {
		t.Fatalf("viewer saw %d/%d frames", got, n)
	}

	snap := reg.Snapshot()
	if got := snap["broker_frames_in_total"]; got != float64(n) {
		t.Fatalf("broker_frames_in_total = %v, want %d", got, n)
	}
	if got := snap["broker_frames_out_total"]; got != float64(n) {
		t.Fatalf("broker_frames_out_total = %v, want %d", got, n)
	}
	if got := snap["broker_clients"]; got != 1.0 {
		t.Fatalf("broker_clients = %v, want 1", got)
	}
	if got := snap["broker_encode_seconds_count"]; got != float64(n) {
		t.Fatalf("encode histogram count = %v, want %d", got, n)
	}
	if got := snap["broker_send_seconds_count"]; got != float64(n) {
		t.Fatalf("send histogram count = %v, want %d", got, n)
	}

	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE broker_frames_out_total counter",
		"# TYPE broker_send_seconds summary",
		`broker_client_frames_sent{client="1"}`,
	} {
		if !strings.Contains(expo.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, expo.String())
		}
	}

	spans := map[string]int{}
	for _, sp := range tr.Spans() {
		if sp.Track == "client 1" {
			spans[sp.Name]++
		}
	}
	if spans["encode"] != n || spans["send"] != n {
		t.Fatalf("client spans = %v, want %d encode and %d send", spans, n, n)
	}
}
