package stream

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestCacheGenerationPreventsStaleHit is the regression test for the
// stale-quality/stale-frame hit path: a renderer restart re-sends frame
// IDs from zero, and before generations were added the cache served the
// previous sequence's bytes for the new sequence's identically numbered
// frames.
func TestCacheGenerationPreventsStaleHit(t *testing.T) {
	c := NewEncodeCache(4)
	p := Point{Codec: "jpeg", Quality: 45}

	old := []byte("animation-1 frame 0")
	got, err := c.GetOrEncode(0, p, func() ([]byte, error) { return old, nil })
	if err != nil || !bytes.Equal(got, old) {
		t.Fatalf("prime: got %q err %v", got, err)
	}
	// Same key hits.
	got, err = c.GetOrEncode(0, p, func() ([]byte, error) { t.Fatal("unexpected encode"); return nil, nil })
	if err != nil || !bytes.Equal(got, old) {
		t.Fatalf("hit: got %q err %v", got, err)
	}
	if h := c.Stats().Hits.Load(); h != 1 {
		t.Fatalf("hits = %d, want 1", h)
	}

	gen := c.BumpGeneration()
	if gen != 1 {
		t.Fatalf("generation = %d, want 1", gen)
	}
	if c.Len() != 0 {
		t.Fatalf("entries survive a generation bump: %d resident", c.Len())
	}
	fresh := []byte("animation-2 frame 0")
	got, err = c.GetOrEncode(0, p, func() ([]byte, error) { return fresh, nil })
	if err != nil {
		t.Fatalf("re-encode after bump: %v", err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatalf("stale hit across generations: got %q, want %q", got, fresh)
	}
	if m := c.Stats().Misses.Load(); m != 2 {
		t.Fatalf("misses = %d, want 2 (the bump must force a re-encode)", m)
	}
}

// TestCacheInvalidateStepDown covers the mid-frame ladder step-down:
// the abandoned operating point's entry is evicted and a later request
// at that point re-encodes instead of hitting.
func TestCacheInvalidateStepDown(t *testing.T) {
	c := NewEncodeCache(4)
	hi := Point{Codec: "jpeg+lzo", Quality: 85}
	lo := Point{Codec: "jpeg", Quality: 30}

	if _, err := c.GetOrEncode(7, hi, func() ([]byte, error) { return []byte("hi"), nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetOrEncode(7, lo, func() ([]byte, error) { return []byte("lo"), nil }); err != nil {
		t.Fatal(err)
	}
	if !c.Invalidate(7, hi) {
		t.Fatal("Invalidate(7, hi) = false, want eviction")
	}
	if c.Invalidate(7, hi) {
		t.Fatal("second Invalidate(7, hi) = true, want no-op")
	}
	if c.Len() != 1 {
		t.Fatalf("resident entries = %d, want 1 (only the low point)", c.Len())
	}
	if got := c.Stats().Invalidations.Load(); got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
	// The step-down target is untouched…
	encodes := 0
	if _, err := c.GetOrEncode(7, lo, func() ([]byte, error) { encodes++; return []byte("lo2"), nil }); err != nil {
		t.Fatal(err)
	}
	if encodes != 0 {
		t.Fatal("low-point entry was lost by the invalidation")
	}
	// …while the abandoned point re-encodes.
	if _, err := c.GetOrEncode(7, hi, func() ([]byte, error) { encodes++; return []byte("hi2"), nil }); err != nil {
		t.Fatal(err)
	}
	if encodes != 1 {
		t.Fatal("abandoned point served a stale hit after invalidation")
	}
}

// TestCacheFrameEvictionScopedToGeneration: frame-age eviction only
// removes current-generation keys (older generations are cleared
// wholesale at the bump, so nothing leaks either way).
func TestCacheFrameEvictionScopedToGeneration(t *testing.T) {
	c := NewEncodeCache(2)
	p := Point{Codec: "lzo"}
	for id := uint32(0); id < 5; id++ {
		if _, err := c.GetOrEncode(id, p, func() ([]byte, error) { return []byte{byte(id)}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("resident = %d, want capacity 2", c.Len())
	}
	if ev := c.Stats().Evictions.Load(); ev != 3 {
		t.Fatalf("evictions = %d, want 3", ev)
	}
}

// TestBrokerRendererConnectBumpsGeneration: each renderer registration
// starts a fresh cache generation, because its frame-ID sequence may
// restart at zero.
func TestBrokerRendererConnectBumpsGeneration(t *testing.T) {
	b, err := ListenAndServe("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	dial := func() *transport.Endpoint {
		t.Helper()
		conn, err := net.Dial("tcp", b.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		ep, err := transport.NewEndpoint(conn, transport.RoleRenderer)
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}

	waitGen := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if b.Cache().Generation() == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("cache generation = %d, want %d", b.Cache().Generation(), want)
	}

	ep := dial()
	waitGen(1)
	ep.Close()
	ep2 := dial()
	defer ep2.Close()
	waitGen(2)
}

// TestCacheConcurrentBumpAndEncode races GetOrEncode against
// BumpGeneration from many goroutines (run under -race): every lookup
// must return bytes from its own generation's encode, never a stale
// entry, and the cache must stay within capacity.
func TestCacheConcurrentBumpAndEncode(t *testing.T) {
	c := NewEncodeCache(8)
	p := Point{Codec: "jpeg", Quality: 50}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.BumpGeneration()
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := uint32(0); ; id++ {
				select {
				case <-stop:
					return
				default:
				}
				gen := c.Generation()
				want := []byte{byte(gen), byte(id % 4)}
				got, err := c.GetOrEncode(id%4, p, func() ([]byte, error) { return want, nil })
				if err != nil {
					t.Error(err)
					return
				}
				// A hit may come from a neighboring generation when a bump
				// races the lookup, but the frame-ID byte must always match
				// — a mismatch is a cross-key collision.
				if len(got) != 2 || got[1] != byte(id%4) {
					t.Errorf("frame %d served bytes for frame %d", id%4, got[1])
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() > 8*4 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
}

// TestCacheTruncationPassDistinctEntries is the regression test for
// the progressive-codec cache key: a preview-only entry (prog@p1) and
// the full-stream entry (prog) for the same frame are different bytes,
// so Points differing only in Passes must never share a cache slot.
// Mirrors TestCacheGenerationPreventsStaleHit for the Passes axis.
func TestCacheTruncationPassDistinctEntries(t *testing.T) {
	c := NewEncodeCache(4)
	full := Point{Codec: "prog"}
	preview := Point{Codec: "prog", Passes: 1}

	fullData := []byte("all five passes of frame 0")
	got, err := c.GetOrEncode(0, full, func() ([]byte, error) { return fullData, nil })
	if err != nil || !bytes.Equal(got, fullData) {
		t.Fatalf("prime full: got %q err %v", got, err)
	}

	// Requesting the preview truncation for the same frame must MISS:
	// serving the full bytes here would defeat the preview rung.
	prevData := []byte("pass 0 only")
	encoded := false
	got, err = c.GetOrEncode(0, preview, func() ([]byte, error) { encoded = true; return prevData, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !encoded {
		t.Fatal("preview request hit the full-stream entry (Passes missing from cache key)")
	}
	if !bytes.Equal(got, prevData) {
		t.Fatalf("preview request returned %q, want %q", got, prevData)
	}

	// Both entries are resident and each hits its own bytes.
	for _, tc := range []struct {
		p    Point
		want []byte
	}{{full, fullData}, {preview, prevData}} {
		got, err := c.GetOrEncode(0, tc.p, func() ([]byte, error) { t.Fatalf("%v: unexpected re-encode", tc.p); return nil, nil })
		if err != nil || !bytes.Equal(got, tc.want) {
			t.Fatalf("%v: got %q err %v, want %q", tc.p, got, err, tc.want)
		}
	}
	if m := c.Stats().Misses.Load(); m != 2 {
		t.Fatalf("misses = %d, want 2 (one per distinct truncation)", m)
	}

	// The jls error bound is part of the key for the same reason.
	n0 := []byte("jls lossless")
	n2 := []byte("jls near-2")
	if _, err := c.GetOrEncode(1, Point{Codec: "jls"}, func() ([]byte, error) { return n0, nil }); err != nil {
		t.Fatal(err)
	}
	got, err = c.GetOrEncode(1, Point{Codec: "jls", Near: 2}, func() ([]byte, error) { return n2, nil })
	if err != nil || !bytes.Equal(got, n2) {
		t.Fatalf("jls near bound shares a cache slot with lossless: got %q err %v", got, err)
	}
}
