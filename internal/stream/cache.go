package stream

import (
	"sync"
	"sync/atomic"

	"repro/internal/guard"
)

// CacheStats counts encode-cache activity.
type CacheStats struct {
	Hits      atomic.Int64
	Misses    atomic.Int64
	Evictions atomic.Int64
	// Invalidations counts entries evicted explicitly — a client ladder
	// stepping away from a point mid-frame, or a generation bump on
	// renderer reconnect. They are counted in Evictions too.
	Invalidations atomic.Int64
	// FillsPaused counts misses served without inserting because the
	// resource governor paused cache fills under memory pressure.
	FillsPaused atomic.Int64
}

// HitRate returns hits / (hits + misses).
func (s *CacheStats) HitRate() float64 {
	h, m := s.Hits.Load(), s.Misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

type cacheKey struct {
	gen     uint64
	frameID uint32
	point   string
}

type cacheEntry struct {
	ready chan struct{}
	data  []byte
	err   error
	// bytes is the budget charge for this entry: set (under the cache
	// mutex) when the encode completes while the entry is still
	// resident, refunded when the entry is evicted.
	bytes int64
}

// EncodeCache is the encode-once fan-out cache: entries are keyed by
// (generation, frameID, codec, quality), so any number of clients at
// the same operating point share a single encode. Concurrent requests
// for a missing key coalesce — the first caller encodes, the rest wait
// for its result. Old frames are evicted once more than a bounded
// number of distinct frame IDs are resident (viewers only ever want
// recent frames, so eviction is by frame age, not LRU touch order).
//
// The generation guards against stale hits across frame-ID restarts: a
// renderer that reconnects (PR 3's auto-reconnect restarts sequences)
// re-sends frame IDs from 0, and without the generation in the key the
// cache would serve the previous animation's frame 0 bytes for the new
// one. BumpGeneration retires every resident entry and makes old keys
// unreachable. Invalidate evicts one (frame, point) entry — the broker
// calls it when a client's ladder steps away from a point mid-frame and
// no other client still operates there, so abandoned-quality entries do
// not squat in the bounded frame window.
type EncodeCache struct {
	mu       sync.Mutex
	capacity int // distinct frame IDs retained
	gen      uint64
	entries  map[cacheKey]*cacheEntry
	frames   []uint32 // insertion order of distinct frame IDs (current generation)
	stats    CacheStats

	// acct, when set, ledgers resident encoded bytes against the
	// resource governor; fillPaused (consulted per miss) makes the
	// cache serve hits only — no new inserts — under memory pressure.
	acct       *guard.Account
	fillPaused func() bool
}

// NewEncodeCache retains up to capFrames distinct frame IDs (min 1).
func NewEncodeCache(capFrames int) *EncodeCache {
	if capFrames < 1 {
		capFrames = 1
	}
	return &EncodeCache{capacity: capFrames, entries: map[cacheKey]*cacheEntry{}}
}

// Stats exposes the cache counters.
func (c *EncodeCache) Stats() *CacheStats { return &c.stats }

// SetGuard attaches the resource governor's hooks: acct ledgers
// resident encoded bytes, fillPaused (consulted per miss) suppresses
// new inserts under pressure. Call before the cache is shared.
func (c *EncodeCache) SetGuard(acct *guard.Account, fillPaused func() bool) {
	c.acct = acct
	c.fillPaused = fillPaused
}

// dropEntryLocked removes one resident entry, refunding its budget
// charge. Callers hold c.mu and count the eviction themselves.
func (c *EncodeCache) dropEntryLocked(k cacheKey, e *cacheEntry) {
	delete(c.entries, k)
	if e.bytes > 0 {
		c.acct.Release(e.bytes)
		e.bytes = 0
	}
}

// Generation returns the current cache generation.
func (c *EncodeCache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// BumpGeneration starts a new frame-ID space: every resident entry is
// evicted and requests made after the bump can never hit entries cached
// before it. Call it when the frame-ID sequence may restart (a renderer
// reconnects). Returns the new generation.
func (c *EncodeCache) BumpGeneration() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	if n := len(c.entries); n > 0 {
		for k, e := range c.entries {
			c.dropEntryLocked(k, e)
		}
		c.stats.Evictions.Add(int64(n))
		c.stats.Invalidations.Add(int64(n))
	}
	c.frames = c.frames[:0]
	return c.gen
}

// Clear evicts every resident entry, refunding all budget charges.
// The broker calls it at shutdown so the governor's ledger drains.
func (c *EncodeCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	for k, e := range c.entries {
		c.dropEntryLocked(k, e)
	}
	c.stats.Evictions.Add(int64(n))
	c.frames = c.frames[:0]
}

// Bytes reports the resident encoded payload bytes.
func (c *EncodeCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, e := range c.entries {
		n += e.bytes
	}
	return n
}

// Invalidate evicts the current-generation entry for (frameID, p),
// reporting whether one was resident. The broker uses it when a client
// ladder steps away from p while frameID is still being fanned out, so
// the abandoned operating point's bytes do not linger as a stale hit
// target for the rest of the frame's residency.
func (c *EncodeCache) Invalidate(frameID uint32, p Point) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{gen: c.gen, frameID: frameID, point: p.String()}
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	c.dropEntryLocked(key, e)
	c.stats.Evictions.Add(1)
	c.stats.Invalidations.Add(1)
	return true
}

// GetOrEncode returns the encoded bytes for (frameID, point) in the
// current generation, calling encode at most once per key across all
// concurrent callers. A failed encode is not cached; the next request
// retries.
func (c *EncodeCache) GetOrEncode(frameID uint32, p Point, encode func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	key := cacheKey{gen: c.gen, frameID: frameID, point: p.String()}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		c.stats.Hits.Add(1)
		return e.data, nil
	}
	if c.fillPaused != nil && c.fillPaused() {
		// Memory pressure: serve resident hits only. The caller still
		// gets its bytes, but nothing new is charged to the budget and
		// concurrent same-point callers do not coalesce.
		c.mu.Unlock()
		c.stats.Misses.Add(1)
		c.stats.FillsPaused.Add(1)
		return encode()
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.noteFrameLocked(frameID)
	c.mu.Unlock()

	c.stats.Misses.Add(1)
	e.data, e.err = encode()
	if e.err != nil {
		close(e.ready)
		// Do not poison the cache with a failure.
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, e.err
	}
	// Charge the budget only while the entry is actually resident: an
	// eviction racing the encode leaves nothing to refund later.
	c.mu.Lock()
	if cur, ok := c.entries[key]; ok && cur == e {
		e.bytes = int64(len(e.data))
		c.acct.Add(e.bytes)
	}
	c.mu.Unlock()
	close(e.ready)
	return e.data, nil
}

// noteFrameLocked records the frame ID and evicts the oldest frames
// beyond capacity.
func (c *EncodeCache) noteFrameLocked(frameID uint32) {
	for _, f := range c.frames {
		if f == frameID {
			return
		}
	}
	c.frames = append(c.frames, frameID)
	for len(c.frames) > c.capacity {
		victim := c.frames[0]
		c.frames = c.frames[1:]
		for k, e := range c.entries {
			if k.frameID == victim && k.gen == c.gen {
				c.dropEntryLocked(k, e)
				c.stats.Evictions.Add(1)
			}
		}
	}
}

// Len reports resident entries (for tests).
func (c *EncodeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
