package stream

import (
	"sync"
	"sync/atomic"
)

// CacheStats counts encode-cache activity.
type CacheStats struct {
	Hits      atomic.Int64
	Misses    atomic.Int64
	Evictions atomic.Int64
}

// HitRate returns hits / (hits + misses).
func (s *CacheStats) HitRate() float64 {
	h, m := s.Hits.Load(), s.Misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

type cacheKey struct {
	frameID uint32
	point   string
}

type cacheEntry struct {
	ready chan struct{}
	data  []byte
	err   error
}

// EncodeCache is the encode-once fan-out cache: entries are keyed by
// (frameID, codec, quality), so any number of clients at the same
// operating point share a single encode. Concurrent requests for a
// missing key coalesce — the first caller encodes, the rest wait for
// its result. Old frames are evicted once more than a bounded number
// of distinct frame IDs are resident (viewers only ever want recent
// frames, so eviction is by frame age, not LRU touch order).
type EncodeCache struct {
	mu       sync.Mutex
	capacity int // distinct frame IDs retained
	entries  map[cacheKey]*cacheEntry
	frames   []uint32 // insertion order of distinct frame IDs
	stats    CacheStats
}

// NewEncodeCache retains up to capFrames distinct frame IDs (min 1).
func NewEncodeCache(capFrames int) *EncodeCache {
	if capFrames < 1 {
		capFrames = 1
	}
	return &EncodeCache{capacity: capFrames, entries: map[cacheKey]*cacheEntry{}}
}

// Stats exposes the cache counters.
func (c *EncodeCache) Stats() *CacheStats { return &c.stats }

// GetOrEncode returns the encoded bytes for (frameID, point), calling
// encode at most once per key across all concurrent callers. A failed
// encode is not cached; the next request retries.
func (c *EncodeCache) GetOrEncode(frameID uint32, p Point, encode func() ([]byte, error)) ([]byte, error) {
	key := cacheKey{frameID: frameID, point: p.String()}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		c.stats.Hits.Add(1)
		return e.data, nil
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.noteFrameLocked(frameID)
	c.mu.Unlock()

	c.stats.Misses.Add(1)
	e.data, e.err = encode()
	close(e.ready)
	if e.err != nil {
		// Do not poison the cache with a failure.
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, e.err
	}
	return e.data, nil
}

// noteFrameLocked records the frame ID and evicts the oldest frames
// beyond capacity.
func (c *EncodeCache) noteFrameLocked(frameID uint32) {
	for _, f := range c.frames {
		if f == frameID {
			return
		}
	}
	c.frames = append(c.frames, frameID)
	for len(c.frames) > c.capacity {
		victim := c.frames[0]
		c.frames = c.frames[1:]
		for k := range c.entries {
			if k.frameID == victim {
				delete(c.entries, k)
				c.stats.Evictions.Add(1)
			}
		}
	}
}

// Len reports resident entries (for tests).
func (c *EncodeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
