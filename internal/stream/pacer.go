package stream

import (
	"sync"

	"repro/internal/img"
)

// SourceFrame is one decoded frame offered to the per-client pacers.
type SourceFrame struct {
	ID    uint32
	Image *img.Frame
}

// Pacer is the per-client frame queue. Offer never blocks: when the
// queue is full the oldest frame is dropped, so a slow client's
// backlog is bounded and it always converges on the newest frame while
// the renderer runs at full speed. Next blocks until a frame or Close.
type Pacer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	depth  int
	q      []*SourceFrame
	drops  int64
	closed bool
}

// NewPacer bounds the queue to depth frames (min 1).
func NewPacer(depth int) *Pacer {
	if depth < 1 {
		depth = 1
	}
	p := &Pacer{depth: depth}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Offer enqueues a frame, dropping the oldest when full. It reports
// whether the frame was accepted (false only after Close) and which
// frame was evicted to make room (nil when none), so callers can
// attribute the drop to the right frame.
func (p *Pacer) Offer(f *SourceFrame) (accepted bool, dropped *SourceFrame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, nil
	}
	if len(p.q) >= p.depth {
		dropped = p.q[0]
		p.q = p.q[1:]
		p.drops++
	}
	p.q = append(p.q, f)
	p.cond.Signal()
	return true, dropped
}

// Next blocks for the next frame; ok is false once the pacer is closed
// and drained.
func (p *Pacer) Next() (f *SourceFrame, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.q) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.q) == 0 {
		return nil, false
	}
	f = p.q[0]
	p.q = p.q[1:]
	return f, true
}

// Close wakes all waiters; queued frames may still be drained.
func (p *Pacer) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Len reports the queued frame count (always ≤ the configured depth).
func (p *Pacer) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.q)
}

// Drops reports how many frames were discarded to bound the backlog.
func (p *Pacer) Drops() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops
}
