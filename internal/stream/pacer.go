package stream

import (
	"sync"
	"sync/atomic"

	"repro/internal/guard"
	"repro/internal/img"
)

// SourceFrame is one decoded frame offered to the per-client pacers.
type SourceFrame struct {
	ID    uint32
	Image *img.Frame

	// acct and refs implement the broker's frames-in-flight byte
	// ledger: the decoded frame is charged once when it enters fan-out
	// and the charge is returned when the last queued reference is
	// consumed or dropped. acct is set once before the frame is shared
	// and never written again.
	acct *guard.Account
	refs atomic.Int32
}

// Size returns the decoded frame's pixel bytes (0 for the imageless
// frames some tests construct).
func (f *SourceFrame) Size() int64 {
	if f.Image == nil {
		return 0
	}
	return int64(len(f.Image.Pix))
}

// retain adds one queued reference (no-op for unguarded frames).
func (f *SourceFrame) retain() {
	if f.acct != nil {
		f.refs.Add(1)
	}
}

// release drops one reference, refunding the frame's budget charge
// when the last holder lets go.
func (f *SourceFrame) release() {
	if f.acct != nil && f.refs.Add(-1) == 0 {
		f.acct.Release(f.Size())
	}
}

// Pacer is the per-client frame queue. Offer never blocks: when the
// queue is full the oldest frames are dropped, so a slow client's
// backlog is bounded and it always converges on the newest frame while
// the renderer runs at full speed. Next blocks until a frame or Close.
type Pacer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	depth  int
	q      []*SourceFrame
	bytes  int64
	drops  int64
	closed bool

	// acct, when set, ledgers queued frame bytes against the resource
	// governor; effDepth, when set, caps the effective queue depth per
	// Offer — the governor's "widen the drop window" degradation step.
	acct     *guard.Account
	effDepth func() int
}

// NewPacer bounds the queue to depth frames (min 1).
func NewPacer(depth int) *Pacer {
	if depth < 1 {
		depth = 1
	}
	p := &Pacer{depth: depth}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// SetGuard attaches the resource governor's hooks: acct ledgers
// queued bytes, effDepth (consulted per Offer) narrows the effective
// depth under pressure. Call before the pacer is shared.
func (p *Pacer) SetGuard(acct *guard.Account, effDepth func() int) {
	p.acct = acct
	p.effDepth = effDepth
}

// Offer enqueues a frame, dropping the oldest entries when full. It
// reports whether the frame was accepted (false only after Close) and
// which frames were evicted to make room (the governor can narrow the
// effective depth below the configured one, evicting several at once),
// so callers can attribute every drop to the right frame.
func (p *Pacer) Offer(f *SourceFrame) (accepted bool, dropped []*SourceFrame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false, nil
	}
	limit := p.depth
	if p.effDepth != nil {
		if d := p.effDepth(); d >= 1 && d < limit {
			limit = d
		}
	}
	for len(p.q) >= limit {
		victim := p.q[0]
		p.q = p.q[1:]
		p.drops++
		p.bytes -= victim.Size()
		p.acct.Release(victim.Size())
		dropped = append(dropped, victim)
	}
	p.q = append(p.q, f)
	p.bytes += f.Size()
	p.acct.Add(f.Size())
	p.cond.Signal()
	return true, dropped
}

// Next blocks for the next frame; ok is false once the pacer is closed
// and drained.
func (p *Pacer) Next() (f *SourceFrame, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.q) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.q) == 0 {
		return nil, false
	}
	f = p.q[0]
	p.q = p.q[1:]
	p.bytes -= f.Size()
	p.acct.Release(f.Size())
	return f, true
}

// Close wakes all waiters; queued frames may still be drained.
func (p *Pacer) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Len reports the queued frame count (always ≤ the configured depth).
func (p *Pacer) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.q)
}

// Bytes reports the queued frame payload bytes.
func (p *Pacer) Bytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytes
}

// Drops reports how many frames were discarded to bound the backlog.
func (p *Pacer) Drops() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops
}
