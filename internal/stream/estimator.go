package stream

import (
	"sync"
	"time"
)

// Estimator tracks one client's link with exponentially weighted
// moving averages. Bandwidth comes from observed send times on the
// (WAN-shaped) connection — the shaped writer blocks for the modelled
// serialization delay, so wall-clock write time is the signal — and
// RTT comes from the display's receive acks.
type Estimator struct {
	mu    sync.Mutex
	alpha float64

	bw        float64 // bytes per second
	bwSamples int
	rtt       time.Duration
	minRTT    time.Duration
	rttOK     bool
}

// NewEstimator returns an estimator with the given EWMA smoothing
// factor (clamped into (0,1]).
func NewEstimator(alpha float64) *Estimator {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &Estimator{alpha: alpha}
}

// Observe records one send: n bytes took d of wall clock to write.
// Sub-microsecond or empty sends are ignored (loopback noise).
func (e *Estimator) Observe(n int, d time.Duration) {
	if n <= 0 || d <= 0 {
		return
	}
	inst := float64(n) / d.Seconds()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bwSamples == 0 {
		e.bw = inst
	} else {
		e.bw = e.alpha*inst + (1-e.alpha)*e.bw
	}
	e.bwSamples++
}

// ObserveRTT records one ack round trip.
func (e *Estimator) ObserveRTT(d time.Duration) {
	if d <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.rttOK {
		e.rtt = d
		e.minRTT = d
		e.rttOK = true
		return
	}
	e.rtt = time.Duration(e.alpha*float64(d) + (1-e.alpha)*float64(e.rtt))
	if d < e.minRTT {
		e.minRTT = d
	}
}

// Bandwidth returns the smoothed estimate in bytes per second (0 until
// the first observation).
func (e *Estimator) Bandwidth() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bw
}

// Samples reports how many sends have been observed.
func (e *Estimator) Samples() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bwSamples
}

// RTT returns the smoothed round-trip estimate (0 until the first
// ack).
func (e *Estimator) RTT() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rtt
}

// MinRTT returns the smallest round trip seen (0 until the first ack).
func (e *Estimator) MinRTT() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.minRTT
}

// TransferTime predicts how long n bytes take on the estimated link:
// serialization at the estimated bandwidth plus half the minimum RTT
// for propagation. The minimum — not the smoothed average — stands in
// for the propagation delay because measured round trips also absorb
// receiver decode time and host contention; penalizing every quality
// rung by transient queueing would drive even fast clients to the
// floor (the same reasoning as BBR's min-RTT filter). Returns 0 when
// nothing has been observed yet.
func (e *Estimator) TransferTime(n int) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bwSamples == 0 || e.bw <= 0 {
		return 0
	}
	d := time.Duration(float64(n) / e.bw * float64(time.Second))
	return d + e.minRTT/2
}
