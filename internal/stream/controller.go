package stream

import (
	"sync"
	"time"
)

// Controller picks the operating point for one client. Each frame it
// predicts, per ladder rung, how long the encoded frame would take on
// the estimated link (using a per-rung EWMA of encoded sizes) and
// selects the best rung that fits the target inter-frame delay.
// Downgrades apply immediately — a stalling client needs relief now —
// while upgrades require the better rung to fit for UpHold consecutive
// picks, so transient bandwidth spikes do not cause quality flapping.
type Controller struct {
	mu     sync.Mutex
	ladder []Point
	target time.Duration
	est    *Estimator
	alpha  float64
	upHold int

	sizes  map[string]float64 // EWMA encoded bytes per point
	cur    int                // current ladder index
	better int                // consecutive picks favoring an upgrade
	floor  int                // minimum ladder index forced by the governor
}

// NewController builds a controller over the estimator; target and
// ladder come from the broker config. The controller starts at the top
// rung and adapts down as evidence arrives.
func NewController(est *Estimator, target time.Duration, ladder []Point, alpha float64, upHold int) *Controller {
	if len(ladder) == 0 {
		ladder = DefaultLadder()
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	if upHold <= 0 {
		upHold = 3
	}
	return &Controller{
		ladder: append([]Point(nil), ladder...),
		target: target,
		est:    est,
		alpha:  alpha,
		upHold: upHold,
		sizes:  map[string]float64{},
	}
}

// Restrict drops ladder rungs whose codec family is not in the
// advertised set (no-op for an empty set, or if nothing would remain).
func (c *Controller) Restrict(families []string) {
	if len(families) == 0 {
		return
	}
	allowed := map[string]bool{}
	for _, f := range families {
		allowed[f] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.ladder[:0:0]
	for _, p := range c.ladder {
		if allowed[p.Family()] {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return
	}
	c.ladder = kept
	if c.cur >= len(kept) {
		c.cur = len(kept) - 1
	}
	if c.floor >= len(kept) {
		c.floor = len(kept) - 1
	}
}

// LadderLen returns the (possibly Restrict-ed) ladder length.
func (c *Controller) LadderLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ladder)
}

// SetFloor forces the controller to operate at ladder index >= floor
// (0 = best rung, no floor) — the resource governor's quality-step
// degradation. The clamp applies immediately and caps future upgrades
// until the floor is lifted.
func (c *Controller) SetFloor(floor int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if floor < 0 {
		floor = 0
	}
	if floor > len(c.ladder)-1 {
		floor = len(c.ladder) - 1
	}
	c.floor = floor
	if c.cur < floor {
		c.cur = floor
		c.better = 0
	}
}

// ObserveSize feeds the encoded size of a frame at a point back into
// the per-rung size model.
func (c *Controller) ObserveSize(p Point, bytes int) {
	if bytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := p.String()
	if prev, ok := c.sizes[k]; ok {
		c.sizes[k] = c.alpha*float64(bytes) + (1-c.alpha)*prev
	} else {
		c.sizes[k] = float64(bytes)
	}
}

// predictedSize returns the modelled encoded size for ladder rung i,
// falling back to the nearest rung with data (ladder rungs are ordered
// largest-first, so a neighbor is a sane stand-in before the rung has
// been probed). Returns 0 when no rung has data yet.
func (c *Controller) predictedSize(i int) float64 {
	if s, ok := c.sizes[c.ladder[i].String()]; ok {
		return s
	}
	for d := 1; d < len(c.ladder); d++ {
		if i-d >= 0 {
			if s, ok := c.sizes[c.ladder[i-d].String()]; ok {
				return s
			}
		}
		if i+d < len(c.ladder) {
			if s, ok := c.sizes[c.ladder[i+d].String()]; ok {
				return s
			}
		}
	}
	return 0
}

// Pick returns the operating point to encode the next frame at.
func (c *Controller) Pick() Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	bw := c.est.Bandwidth()
	if bw <= 0 {
		// No evidence yet: serve the current rung and learn from it.
		return c.ladder[c.cur]
	}
	// Propagation comes from the minimum observed round trip: smoothed
	// RTT also absorbs receiver decode time and host contention, which
	// would penalize every rung equally and drive fast clients to the
	// floor.
	rtt := c.est.MinRTT()
	fits := func(i int) bool {
		size := c.predictedSize(i)
		if size <= 0 {
			return false
		}
		pred := time.Duration(size/bw*float64(time.Second)) + rtt/2
		return pred <= c.target
	}
	// best = highest-quality rung that fits; the bottom rung is the
	// floor even when nothing fits.
	best := len(c.ladder) - 1
	for i := range c.ladder {
		if fits(i) {
			best = i
			break
		}
	}
	switch {
	case best > c.cur:
		// Too expensive for the link: downgrade immediately.
		c.cur = best
		c.better = 0
	case best < c.cur && c.cur > c.floor:
		c.better++
		if c.better >= c.upHold {
			c.cur--
			c.better = 0
		}
	default:
		c.better = 0
	}
	if c.cur < c.floor {
		c.cur = c.floor
		c.better = 0
	}
	return c.ladder[c.cur]
}

// Current returns the active rung without advancing the hysteresis.
func (c *Controller) Current() Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ladder[c.cur]
}

// ProbePoint returns the cheapest ladder rung — the cold-start probe a
// broker serves before any bandwidth evidence exists. On the default
// ladder this is the progressive preview pass, so an unknown (possibly
// transoceanic) link's first frame is a few hundred bytes: the viewer
// paints almost immediately and the send itself seeds the estimator.
func (c *Controller) ProbePoint() Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ladder[len(c.ladder)-1]
}
