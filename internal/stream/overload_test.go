package stream

import (
	"testing"

	"repro/internal/guard"
	"repro/internal/img"
)

// frameOf builds a SourceFrame with real pixel bytes charged to acct,
// mirroring what Broker.ingest does when guarded.
func frameOf(id uint32, w, h int, acct *guard.Account) *SourceFrame {
	sf := &SourceFrame{ID: id, Image: img.NewFrame(w, h)}
	sf.acct = acct
	sf.refs.Store(1)
	acct.Add(sf.Size())
	return sf
}

// TestPacerEvictionUnderSustainedOverload floods a guarded pacer far
// past its depth with no consumer and checks the overload contract:
// queued bytes stay bounded by the (governor-narrowed) depth, the byte
// ledger tracks the queue exactly, and every offered frame is
// accounted for exactly once — still queued or reported dropped, with
// its identity returned to the caller so drop provenance can name it.
func TestPacerEvictionUnderSustainedOverload(t *testing.T) {
	const (
		depth  = 4
		w, h   = 16, 16
		frames = 200
	)
	frameBytes := int64(w * h * 3)
	// Budget sized so the flood drives pressure well past the pacer
	// degradation threshold: the governor narrows the effective depth.
	gov := guard.NewGovernor(guard.GovernorConfig{BudgetBytes: 6 * frameBytes})
	framesAcct := gov.Account("frames")
	pacerAcct := gov.Account("pacer")

	p := NewPacer(depth)
	p.SetGuard(pacerAcct, func() int { return gov.PacerDepth(depth) })

	droppedIDs := map[uint32]int{}
	var droppedCount int64
	for i := 0; i < frames; i++ {
		sf := frameOf(uint32(i), w, h, framesAcct)
		sf.retain()
		accepted, dropped := p.Offer(sf)
		if !accepted {
			t.Fatalf("frame %d refused by open pacer", i)
		}
		sf.release() // creator ref; the queued ref keeps the charge
		for _, d := range dropped {
			droppedIDs[d.ID]++
			droppedCount++
			d.release()
		}
		// Bounded backlog: never more than the configured depth queued,
		// and the byte ledger tracks the queue exactly.
		if n := p.Len(); n > depth {
			t.Fatalf("after frame %d: %d queued, depth %d", i, n, depth)
		}
		if got, want := p.Bytes(), int64(p.Len())*frameBytes; got != want {
			t.Fatalf("after frame %d: pacer bytes %d, want %d", i, got, want)
		}
		if got := pacerAcct.Used(); got != p.Bytes() {
			t.Fatalf("after frame %d: account %d, queue %d", i, got, p.Bytes())
		}
	}

	// The flood pushes pressure over the pacer rung inside each charge,
	// the narrowed window evicts, and the refunds step the ladder right
	// back down — the transient is invisible to polling, so the entry
	// counters are the observable. The queue settling below the
	// configured depth is the narrowed window's steady state, and the
	// final level shows degradation is a regulator, not a ratchet.
	tr := gov.Transitions()
	if tr[guard.LevelPacer] == 0 {
		t.Fatalf("governor never entered %s under sustained overload (transitions %v)",
			guard.LevelName(guard.LevelPacer), tr)
	}
	if n := p.Len(); n >= depth {
		t.Fatalf("%d queued after flood, want < %d (narrowed window)", n, depth)
	}
	if lvl := gov.Level(); lvl > guard.LevelQuality {
		t.Fatalf("governor stuck at %s after the flood drained", guard.LevelName(lvl))
	}

	// Exact drop provenance: every offered frame is either still queued
	// or was returned as dropped exactly once — no ghost drops, no
	// silent losses.
	queued := map[uint32]bool{}
	for {
		p.Close()
		sf, ok := p.Next()
		if !ok {
			break
		}
		queued[sf.ID] = true
		sf.release()
	}
	for id, n := range droppedIDs {
		if n != 1 {
			t.Fatalf("frame %d reported dropped %d times", id, n)
		}
		if queued[id] {
			t.Fatalf("frame %d both dropped and queued", id)
		}
	}
	if got := int64(len(droppedIDs)) + int64(len(queued)); got != frames {
		t.Fatalf("%d dropped + %d queued = %d, want %d offered",
			len(droppedIDs), len(queued), got, frames)
	}
	if got := p.Drops(); got != droppedCount {
		t.Fatalf("Drops() = %d, want %d", got, droppedCount)
	}

	// With every reference released the whole ledger must drain: no
	// frame bytes leak past their last holder.
	if used := pacerAcct.Used(); used != 0 {
		t.Fatalf("pacer account holds %d bytes after drain", used)
	}
	if used := framesAcct.Used(); used != 0 {
		t.Fatalf("frames account holds %d bytes after drain", used)
	}
}

// TestPacerGuardNarrowsDepthMidStream checks the degradation step in
// isolation: the same pacer evicts down to the narrowed window in one
// Offer once the governor crosses the pacer rung, and every evicted
// frame is returned.
func TestPacerGuardNarrowsDepthMidStream(t *testing.T) {
	const depth = 6
	eff := depth
	p := NewPacer(depth)
	p.SetGuard(nil, func() int { return eff })

	for i := 0; i < depth; i++ {
		if ok, dropped := p.Offer(&SourceFrame{ID: uint32(i)}); !ok || len(dropped) != 0 {
			t.Fatalf("warm-up frame %d: ok=%v dropped=%d", i, ok, len(dropped))
		}
	}
	// Governor steps down: the window halves. The next Offer must evict
	// enough of the oldest frames to fit the new limit.
	eff = depth / 2
	ok, dropped := p.Offer(&SourceFrame{ID: depth})
	if !ok {
		t.Fatal("offer refused")
	}
	if want := depth - eff + 1; len(dropped) != want {
		t.Fatalf("%d evicted, want %d", len(dropped), want)
	}
	for i, d := range dropped {
		if d.ID != uint32(i) {
			t.Fatalf("eviction %d is frame %d, want oldest-first %d", i, d.ID, i)
		}
	}
	if n := p.Len(); n != eff {
		t.Fatalf("%d queued, want %d", n, eff)
	}
}
