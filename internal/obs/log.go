package obs

import (
	"fmt"
	"io"
	"sync"
)

// Level orders log severities.
type Level int32

// Levels, least to most severe. LevelOff silences a logger entirely.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "off"
}

var (
	logMu  sync.Mutex
	logOut io.Writer // nil discards — components are silent by default
)

// SetLogOutput directs the package-default log sink (nil discards,
// the default — matching the pre-observability behaviour where
// diagnostics were off unless a Logf callback was installed).
func SetLogOutput(w io.Writer) {
	logMu.Lock()
	logOut = w
	logMu.Unlock()
}

// Logger is a leveled, component-prefixed logger. The zero sink
// discards; SetFunc routes lines to a printf-style callback (the shim
// for the legacy Logf fields), otherwise lines go to the package
// output. Safe for concurrent use and safe on a nil receiver.
type Logger struct {
	component string

	mu    sync.Mutex
	level Level
	fn    func(format string, args ...any)
	fnSet bool // distinguishes SetFunc(nil) = discard from "unset"
}

// NewLogger creates a logger for a component at LevelInfo.
func NewLogger(component string) *Logger {
	return &Logger{component: component, level: LevelInfo}
}

// SetLevel sets the minimum level emitted.
func (l *Logger) SetLevel(lv Level) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.level = lv
	l.mu.Unlock()
}

// SetFunc routes this logger's lines to a printf-style callback — the
// compatibility shim behind the legacy SetLogf/Config.Logf surfaces.
// A nil callback silences the logger (the legacy contract); lines
// revert to the package output only for loggers that never called
// SetFunc.
func (l *Logger) SetFunc(f func(format string, args ...any)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.fn = f
	l.fnSet = true
	l.mu.Unlock()
}

// Debugf logs at LevelDebug.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at LevelInfo.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at LevelWarn.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at LevelError.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

func (l *Logger) logf(lv Level, format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	level, fn, fnSet := l.level, l.fn, l.fnSet
	l.mu.Unlock()
	if lv < level {
		return
	}
	prefix := l.component + ": "
	if lv == LevelWarn || lv == LevelError {
		prefix += "[" + lv.String() + "] "
	}
	if fnSet {
		if fn != nil {
			fn(prefix+format, args...)
		}
		return
	}
	logMu.Lock()
	defer logMu.Unlock()
	if logOut != nil {
		fmt.Fprintf(logOut, prefix+format+"\n", args...)
	}
}
