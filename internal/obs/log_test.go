package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestLoggerLevelsAndPrefix(t *testing.T) {
	var lines []string
	l := NewLogger("daemon")
	l.SetFunc(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	l.Debugf("hidden %d", 1) // below default LevelInfo
	l.Infof("peer %d connected", 2)
	l.Warnf("drop %d", 3)
	want := []string{"daemon: peer 2 connected", "daemon: [warn] drop 3"}
	if len(lines) != len(want) || lines[0] != want[0] || lines[1] != want[1] {
		t.Fatalf("lines = %q, want %q", lines, want)
	}

	lines = nil
	l.SetLevel(LevelDebug)
	l.Debugf("now visible")
	if len(lines) != 1 || lines[0] != "daemon: now visible" {
		t.Fatalf("debug lines = %q", lines)
	}

	lines = nil
	l.SetLevel(LevelOff)
	l.Errorf("silenced")
	if len(lines) != 0 {
		t.Fatalf("LevelOff leaked %q", lines)
	}
}

// TestSetFuncNilSilences pins the legacy SetLogf(nil) contract: a
// logger whose callback was explicitly cleared stays silent rather
// than falling back to the package output.
func TestSetFuncNilSilences(t *testing.T) {
	var pkg strings.Builder
	SetLogOutput(&pkg)
	defer SetLogOutput(nil)

	l := NewLogger("broker")
	l.Infof("to package output")
	l.SetFunc(nil)
	l.Infof("dropped")
	if got := pkg.String(); got != "broker: to package output\n" {
		t.Fatalf("package output = %q", got)
	}
}

func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	l.SetLevel(LevelDebug)
	l.SetFunc(nil)
	l.Infof("nothing")
	l.Errorf("nothing")
}

func TestLevelString(t *testing.T) {
	for lv, want := range map[Level]string{
		LevelDebug: "debug", LevelInfo: "info", LevelWarn: "warn",
		LevelError: "error", LevelOff: "off",
	} {
		if lv.String() != want {
			t.Fatalf("%d.String() = %q, want %q", lv, lv.String(), want)
		}
	}
}
