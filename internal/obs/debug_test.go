package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDebugServerRoundTrip starts a real debug server and scrapes all
// three endpoints over HTTP.
func TestDebugServerRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("frames_total", "Frames.").Add(9)
	tr := NewTracer(&ManualClock{}, 8)
	tr.Add(Span{Track: "g", Cat: "c", Name: "work", Start: 0, End: time.Millisecond})

	srv, err := StartDebugServer("127.0.0.1:0", DebugConfig{
		Registry: reg,
		Tracer:   tr,
		Status:   func() any { return map[string]any{"mode": "test"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := fmt.Sprintf("http://%s", srv.Addr())

	get := func(path string) (string, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type = %q", ctype)
	}
	if !strings.Contains(body, "# TYPE frames_total counter\nframes_total 9\n") {
		t.Fatalf("metrics body:\n%s", body)
	}

	body, ctype = get("/debug/status")
	if ctype != "application/json" {
		t.Fatalf("status content type = %q", ctype)
	}
	var status struct {
		Metrics map[string]any `json:"metrics"`
		Status  map[string]any `json:"status"`
		Trace   map[string]any `json:"trace"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("status not JSON: %v", err)
	}
	if status.Metrics["frames_total"] != 9.0 || status.Status["mode"] != "test" || status.Trace["spans"] != 1.0 {
		t.Fatalf("status = %+v", status)
	}

	body, _ = get("/debug/trace")
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}
