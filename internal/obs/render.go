package obs

import (
	"runtime"

	"repro/internal/compress"
	"repro/internal/img"
	"repro/internal/render"
)

// InstrumentRender routes the renderer's per-tile observations (see
// render.SetTileObserver) into tile-level metrics:
//
//	render_tile_seconds        (histogram: per-tile render time)
//	render_tiles_total         (tiles completed)
//	render_tile_rows_total     (scanlines rendered by the tile engine)
//	render_samples_total       (volume samples taken by parallel tiles)
//	render_workers             (gauge: worker count of the last render)
//
// Passing a nil registry uninstalls the observer.
func InstrumentRender(reg *Registry) {
	if reg == nil {
		render.SetTileObserver(nil)
		return
	}
	tileH := reg.Histogram("render_tile_seconds",
		"Per-tile wall-clock render time in the parallel ray caster.")
	tiles := reg.Counter("render_tiles_total",
		"Scanline tiles completed by the parallel ray caster.")
	rows := reg.Counter("render_tile_rows_total",
		"Scanlines rendered by the parallel ray caster.")
	samples := reg.Counter("render_samples_total",
		"Volume samples taken by parallel render tiles.")
	workers := reg.Gauge("render_workers",
		"Worker count of the most recent parallel render.")
	render.SetTileObserver(func(o render.TileObservation) {
		tileH.ObserveDuration(o.Duration)
		tiles.Inc()
		rows.Add(int64(o.Y1 - o.Y0))
		samples.Add(int64(o.Stats.Samples))
		workers.Set(float64(o.Workers))
	})
}

// InstrumentAllocs registers allocation-pressure gauges: Go heap
// statistics plus the frame-path buffer pool counters of the img and
// compress packages, so a dashboard can watch allocs/frame fall when
// the pooled hot path is active.
func InstrumentAllocs(reg *Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	reg.CounterFunc("go_mallocs_total", "Cumulative heap objects allocated (runtime.MemStats.Mallocs).", func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.Mallocs)
	})
	reg.CounterFunc("img_pool_hits_total", "Image buffer requests served from the img pool.", func() int64 {
		return img.Pools().Hits
	})
	reg.CounterFunc("img_pool_misses_total", "Image buffer requests that fell through to allocation.", func() int64 {
		return img.Pools().Misses
	})
	reg.CounterFunc("img_pool_puts_total", "Image buffers recycled into the img pool.", func() int64 {
		return img.Pools().Puts
	})
	reg.CounterFunc("codec_pool_hits_total", "Codec buffer requests served from the compress pool.", func() int64 {
		return compress.Pools().Hits
	})
	reg.CounterFunc("codec_pool_misses_total", "Codec buffer requests that fell through to allocation.", func() int64 {
		return compress.Pools().Misses
	})
	reg.CounterFunc("codec_pool_puts_total", "Codec buffers recycled into the compress pool.", func() int64 {
		return compress.Pools().Puts
	})
}
