// Package obs is the unified observability layer: a span-based tracer
// that exports Chrome trace-event JSON (loadable in chrome://tracing
// and Perfetto), a central metrics registry with Prometheus text-format
// exposition, a leveled component logger, and an opt-in HTTP debug
// server that mounts all three.
//
// The tracer is clock-agnostic: spans carry timestamps as offsets from
// an arbitrary epoch, so the same Tracer records real executions
// against the wall clock (Begin/End pairs via WallClock) and virtual
// executions against the internal/sim discrete-event clock (explicit
// Add with the simulator's scheduled intervals). A track groups spans
// onto one row of the trace viewer — one per processor group, broker
// client, or daemon — so a pipelined run renders as the paper's Gantt
// diagram: disk read, render, composite and send overlapping across
// groups.
//
// The registry absorbs the previously scattered instrumentation
// surfaces (transport.DaemonStats, stream.BrokerStats, the broker's
// per-client metrics.GaugeSet) behind one exposition endpoint:
// counters and gauges may be backed by live closures over existing
// atomics, histograms wrap metrics.Sample with p50/p95/p99 summaries,
// and collectors emit dynamic per-client series at scrape time.
package obs

import "time"

// Clock supplies trace timestamps as offsets from an arbitrary epoch.
// Implementations must be safe for concurrent use.
type Clock interface {
	Now() time.Duration
}

type wallClock struct{ epoch time.Time }

func (c wallClock) Now() time.Duration { return time.Since(c.epoch) }

// WallClock returns a clock counting real time from its creation — the
// tracer clock for live runs.
func WallClock() Clock { return wallClock{epoch: time.Now()} }

// ManualClock is a settable clock for tests and virtual-time tracing.
type ManualClock struct{ at time.Duration }

// Set moves the clock to t.
func (c *ManualClock) Set(t time.Duration) { c.at = t }

// Now implements Clock.
func (c *ManualClock) Now() time.Duration { return c.at }
