package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total", "") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	h := r.Histogram("h_seconds", "a histogram")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Summary()
	if s.N != 100 || s.P50 != 50 || s.P99 != 99 {
		t.Fatalf("summary = %+v", s)
	}
	h.ObserveDuration(1500 * time.Millisecond)
	if got := h.Summary().Max; got != 100 {
		t.Fatalf("max = %v, want 100", got)
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Inc()
	r.Gauge("x", "").Set(1)
	r.Histogram("x", "").Observe(1)
	r.CounterFunc("x", "", func() int64 { return 0 })
	r.GaugeFunc("x", "", func() float64 { return 0 })
	r.Collect(func(Emit) {})
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
}

// TestConcurrentWriters exercises the registry under the race detector:
// many goroutines create and update the same metric names while a
// reader scrapes.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared_total", "shared").Inc()
				r.Gauge("shared_gauge", "shared").Set(float64(i))
				r.Histogram("shared_seconds", "shared").Observe(float64(i))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 8*200 {
		t.Fatalf("shared_total = %d, want %d", got, 8*200)
	}
	if got := r.Histogram("shared_seconds", "").Summary().N; got != 8*200 {
		t.Fatalf("histogram N = %d, want %d", got, 8*200)
	}
}

// TestWritePrometheusGolden pins the exposition format: HELP/TYPE
// per base name, label handling, summary quantile/_sum/_count series,
// sorted deterministic output.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", "Frames delivered.").Add(3)
	r.Gauge("clients", "Connected clients.").Set(2)
	h := r.Histogram(`stage_seconds{stage="render"}`, "Stage time.")
	h.Observe(1)
	h.Observe(3)
	r.CounterFunc("acks_total", "Acks seen.", func() int64 { return 7 })
	r.GaugeFunc("depth", "Queue depth.", func() float64 { return 1.5 })
	r.Collect(func(emit Emit) {
		emit(`client_bytes{client="1"}`, "Per-client bytes.", "counter", 42)
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP acks_total Acks seen.
# TYPE acks_total counter
acks_total 7
# HELP client_bytes Per-client bytes.
# TYPE client_bytes counter
client_bytes{client="1"} 42
# HELP clients Connected clients.
# TYPE clients gauge
clients 2
# HELP depth Queue depth.
# TYPE depth gauge
depth 1.5
# HELP frames_total Frames delivered.
# TYPE frames_total counter
frames_total 3
# HELP stage_seconds Stage time.
# TYPE stage_seconds summary
stage_seconds_count{stage="render"} 2
stage_seconds_sum{stage="render"} 4
stage_seconds{stage="render",quantile="0.5"} 1
stage_seconds{stage="render",quantile="0.95"} 3
stage_seconds{stage="render",quantile="0.99"} 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotParsesValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Gauge("b", "").Set(0.25)
	snap := r.Snapshot()
	if snap["a_total"] != 2.0 || snap["b"] != 0.25 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestNameHelpers(t *testing.T) {
	if got := baseName(`x{a="b"}`); got != "x" {
		t.Fatalf("baseName = %q", got)
	}
	if got := withLabel(`x{a="b"}`, "q", "1"); got != `x{a="b",q="1"}` {
		t.Fatalf("withLabel = %q", got)
	}
	if got := withLabel("x", "q", "1"); got != `x{q="1"}` {
		t.Fatalf("withLabel bare = %q", got)
	}
	if got := suffixName(`x{a="b"}`, "_sum"); got != `x_sum{a="b"}` {
		t.Fatalf("suffixName = %q", got)
	}
}
