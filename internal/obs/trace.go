package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one traced interval on a named track.
type Span struct {
	// Track groups spans onto one row of the trace viewer (a processor
	// group, a broker client, the daemon, ...).
	Track string
	// Cat is the event category ("pipeline", "broker", "sim", ...).
	Cat string
	// Name is the stage name ("fetch", "render", "composite", ...).
	Name string
	// Start and End are offsets from the tracer's epoch.
	Start, End time.Duration
	// Args are optional key/value annotations shown by the viewer.
	Args map[string]any
}

// Tracer records spans into a bounded ring buffer. All methods are
// safe for concurrent use and safe on a nil receiver, so instrumented
// code needs no nil checks.
type Tracer struct {
	clock Clock

	mu      sync.Mutex
	spans   []Span
	next    int
	wrapped bool
	dropped int64
}

// DefaultTraceCapacity bounds the live trace ring buffer (spans).
const DefaultTraceCapacity = 1 << 16

// NewTracer creates a tracer over the clock retaining up to capacity
// spans (the oldest are overwritten beyond that). A nil clock defaults
// to a wall clock epoched at creation; capacity < 1 defaults to
// DefaultTraceCapacity.
func NewTracer(clock Clock, capacity int) *Tracer {
	if clock == nil {
		clock = WallClock()
	}
	if capacity < 1 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{clock: clock, spans: make([]Span, capacity)}
}

// Now reads the tracer's clock (0 on a nil tracer).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock.Now()
}

// Begin opens a span on track and returns the function that closes
// it. kv are alternating key/value annotation pairs. Safe on a nil
// tracer (returns a no-op).
func (t *Tracer) Begin(track, cat, name string, kv ...any) func() {
	if t == nil {
		return func() {}
	}
	start := t.clock.Now()
	return func() {
		t.Add(Span{Track: track, Cat: cat, Name: name, Start: start, End: t.clock.Now(), Args: kvArgs(kv)})
	}
}

// Add records a span with explicit timestamps — the virtual-clock
// entry point used by the sim exporter. Safe on a nil tracer.
func (t *Tracer) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.wrapped {
		t.dropped++
	}
	t.spans[t.next] = s
	t.next++
	if t.next == len(t.spans) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		return len(t.spans)
	}
	return t.next
}

// Dropped returns how many spans were overwritten by ring wrap-around.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans snapshots the retained spans in recording order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]Span(nil), t.spans[:t.next]...)
	}
	out := make([]Span, 0, len(t.spans))
	out = append(out, t.spans[t.next:]...)
	out = append(out, t.spans[:t.next]...)
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"` // microseconds
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format, which Perfetto and
// chrome://tracing both load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome serializes the retained spans as Chrome trace-event
// JSON. Tracks become named threads of one process; spans become
// complete ("X") events sorted by start time within each track.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return WriteChrome(w, t.Spans())
}

// WriteChrome serializes any span set as Chrome trace-event JSON.
func WriteChrome(w io.Writer, spans []Span) error {
	// Stable track -> tid mapping, sorted by name so output is
	// deterministic regardless of recording interleaving.
	trackNames := make([]string, 0, 8)
	seen := map[string]bool{}
	for _, s := range spans {
		if !seen[s.Track] {
			seen[s.Track] = true
			trackNames = append(trackNames, s.Track)
		}
	}
	sort.Strings(trackNames)
	tids := make(map[string]int, len(trackNames))
	for i, name := range trackNames {
		tids[name] = i + 1
	}

	events := make([]chromeEvent, 0, len(spans)+2*len(trackNames)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "repro"},
	})
	for _, name := range trackNames {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tids[name],
			Args: map[string]any{"name": name},
		})
		events = append(events, chromeEvent{
			Name: "thread_sort_index", Ph: "M", PID: 1, TID: tids[name],
			Args: map[string]any{"sort_index": tids[name]},
		})
	}

	ordered := append([]Span(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Track != ordered[j].Track {
			return tids[ordered[i].Track] < tids[ordered[j].Track]
		}
		return ordered[i].Start < ordered[j].Start
	})
	for _, s := range ordered {
		if s.End < s.Start {
			s.End = s.Start
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   s.Start.Microseconds(),
			Dur:  s.End.Microseconds() - s.Start.Microseconds(),
			PID:  1,
			TID:  tids[s.Track],
			Args: s.Args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// kvArgs folds alternating key/value pairs into an args map (nil when
// empty; a trailing odd key is ignored).
func kvArgs(kv []any) map[string]any {
	if len(kv) < 2 {
		return nil
	}
	m := make(map[string]any, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[fmt.Sprint(kv[i])] = kv[i+1]
	}
	return m
}
