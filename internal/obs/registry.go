package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations and summarizes them with
// p50/p95/p99 quantiles via metrics.Sample.
type Histogram struct {
	mu sync.Mutex
	s  metrics.Sample
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.s.Add(v)
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Summary snapshots the histogram statistics.
func (h *Histogram) Summary() metrics.Summary {
	if h == nil {
		return metrics.Summary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.s.Summary()
}

// Emit is the callback collectors use to publish dynamic series at
// scrape time. typ is "counter" or "gauge".
type Emit func(name, help, typ string, v float64)

// Registry is the central metric store: counters, gauges and
// histograms created on first use, plus function-backed metrics that
// bridge pre-existing instrumentation (atomic stat structs, gauge
// sets) without copying their state. Metric names may embed constant
// Prometheus labels, e.g. `pipeline_stage_seconds{stage="render"}`;
// series sharing a base name share one HELP/TYPE header.
type Registry struct {
	mu           sync.RWMutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	counterFuncs map[string]func() int64
	gaugeFuncs   map[string]func() float64
	hists        map[string]*Histogram
	help         map[string]string // base name -> help
	collectors   []func(Emit)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     map[string]*Counter{},
		gauges:       map[string]*Gauge{},
		counterFuncs: map[string]func() int64{},
		gaugeFuncs:   map[string]func() float64{},
		hists:        map[string]*Histogram{},
		help:         map[string]string{},
	}
}

// setHelp records help for the base name once (first writer wins).
func (r *Registry) setHelp(name, help string) {
	base := baseName(name)
	if help != "" && r.help[base] == "" {
		r.help[base] = help
	}
}

// Counter returns (creating on first use) the named counter. Safe on
// a nil registry (returns a nil, no-op counter).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
		r.setHelp(name, help)
	}
	return c
}

// Gauge returns (creating on first use) the named gauge. Safe on a
// nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
		r.setHelp(name, help)
	}
	return g
}

// Histogram returns (creating on first use) the named histogram. Safe
// on a nil registry.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
		r.setHelp(name, help)
	}
	return h
}

// CounterFunc registers a live counter read from fn at scrape time —
// the bridge for existing atomic stat fields. Safe on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counterFuncs[name] = fn
	r.setHelp(name, help)
	r.mu.Unlock()
}

// GaugeFunc registers a live gauge read from fn at scrape time. Safe
// on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.setHelp(name, help)
	r.mu.Unlock()
}

// Collect registers a collector invoked at scrape time to emit
// dynamic series (e.g. per-client gauges with a client label). Safe on
// a nil registry.
func (r *Registry) Collect(fn func(Emit)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// series is one exposition line.
type series struct {
	name string
	val  string
}

// family groups series under one HELP/TYPE header.
type family struct {
	typ    string
	series []series
}

// gather snapshots every metric into exposition families.
func (r *Registry) gather() (map[string]*family, map[string]string) {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	counterFuncs := make(map[string]func() int64, len(r.counterFuncs))
	for k, v := range r.counterFuncs {
		counterFuncs[k] = v
	}
	gaugeFuncs := make(map[string]func() float64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		gaugeFuncs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	collectors := make([]func(Emit), len(r.collectors))
	copy(collectors, r.collectors)
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	fams := map[string]*family{}
	addTo := func(famBase, name, typ, val string) {
		f := fams[famBase]
		if f == nil {
			f = &family{typ: typ}
			fams[famBase] = f
		}
		f.series = append(f.series, series{name: name, val: val})
	}
	add := func(name, typ, val string) { addTo(baseName(name), name, typ, val) }
	for name, c := range counters {
		add(name, "counter", strconv.FormatInt(c.Value(), 10))
	}
	for name, fn := range counterFuncs {
		add(name, "counter", strconv.FormatInt(fn(), 10))
	}
	for name, g := range gauges {
		add(name, "gauge", formatFloat(g.Value()))
	}
	for name, fn := range gaugeFuncs {
		add(name, "gauge", formatFloat(fn()))
	}
	for name, h := range hists {
		sum := h.Summary()
		base := baseName(name)
		addTo(base, withLabel(name, "quantile", "0.5"), "summary", formatFloat(sum.P50))
		addTo(base, withLabel(name, "quantile", "0.95"), "summary", formatFloat(sum.P95))
		addTo(base, withLabel(name, "quantile", "0.99"), "summary", formatFloat(sum.P99))
		addTo(base, suffixName(name, "_sum"), "summary", formatFloat(sum.Sum))
		addTo(base, suffixName(name, "_count"), "summary", strconv.Itoa(sum.N))
	}
	emit := func(name, hp, typ string, v float64) {
		add(name, typ, formatFloat(v))
		if base := baseName(name); hp != "" && help[base] == "" {
			help[base] = hp
		}
	}
	for _, fn := range collectors {
		fn(emit)
	}
	return fams, help
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4), sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	fams, help := r.gather()
	bases := make([]string, 0, len(fams))
	for b := range fams {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, base := range bases {
		f := fams[base]
		if h := help[base]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, h); err != nil {
				return err
			}
		}
		typ := f.typ
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ); err != nil {
			return err
		}
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].name < f.series[j].name })
		for _, s := range f.series {
			if _, err := fmt.Fprintf(w, "%s %s\n", s.name, s.val); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot returns every series value keyed by series name, plus
// histogram summaries keyed by base name — the JSON surface of
// /debug/status.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	out := map[string]any{}
	fams, _ := r.gather()
	for _, f := range fams {
		for _, s := range f.series {
			if v, err := strconv.ParseFloat(s.val, 64); err == nil {
				out[s.name] = v
			} else {
				out[s.name] = s.val
			}
		}
	}
	return out
}

// baseName strips a label set from a series name:
// `x{stage="render"}` -> `x`, `x_sum` stays `x_sum`'s summary base via
// suffix handling at the call site.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel adds (or appends) one label to a series name.
func withLabel(name, key, val string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + key + "=\"" + val + "\"}"
	}
	return name + "{" + key + "=\"" + val + "\"}"
}

// suffixName appends a suffix to the metric base name, preserving any
// label set: suffixName(`h{a="b"}`, "_sum") -> `h_sum{a="b"}`.
func suffixName(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
