package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTracerBeginEnd(t *testing.T) {
	clk := &ManualClock{}
	tr := NewTracer(clk, 16)
	clk.Set(10 * time.Millisecond)
	end := tr.Begin("track a", "cat", "work", "step", 3)
	clk.Set(25 * time.Millisecond)
	end()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.Track != "track a" || s.Name != "work" || s.Start != 10*time.Millisecond || s.End != 25*time.Millisecond {
		t.Fatalf("span = %+v", s)
	}
	if s.Args["step"] != 3 {
		t.Fatalf("args = %v", s.Args)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(&ManualClock{}, 4)
	for i := 0; i < 6; i++ {
		tr.Add(Span{Track: "t", Name: "s", Start: time.Duration(i)})
	}
	if tr.Len() != 4 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	spans := tr.Spans()
	if spans[0].Start != 2 || spans[3].Start != 5 {
		t.Fatalf("oldest retained = %v, newest = %v", spans[0].Start, spans[3].Start)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Begin("t", "c", "n")()
	tr.Add(Span{})
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil || tr.Now() != 0 {
		t.Fatal("nil tracer leaked state")
	}
}

// TestWriteChromeValidJSON pins the trace export contract: valid JSON
// in the Chrome trace-event object format, one named thread per track,
// complete events with non-negative durations, and start timestamps
// monotonically non-decreasing within each track.
func TestWriteChromeValidJSON(t *testing.T) {
	clk := &ManualClock{}
	tr := NewTracer(clk, 64)
	add := func(track, name string, start, end time.Duration) {
		tr.Add(Span{Track: track, Cat: "test", Name: name, Start: start, End: end})
	}
	// Recorded deliberately out of order across tracks.
	add("group 1", "render", 5*time.Millisecond, 9*time.Millisecond)
	add("group 0", "fetch", 0, 2*time.Millisecond)
	add("group 0", "render", 2*time.Millisecond, 6*time.Millisecond)
	add("group 1", "fetch", 1*time.Millisecond, 5*time.Millisecond)
	// End before start must clamp, not produce a negative duration.
	add("group 0", "bogus", 8*time.Millisecond, 7*time.Millisecond)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	threadNames := map[int]string{}
	lastTS := map[int]int64{}
	var complete int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threadNames[e.TID] = e.Args["name"].(string)
			}
		case "X":
			complete++
			if e.Dur < 0 {
				t.Fatalf("negative duration on %q", e.Name)
			}
			if prev, ok := lastTS[e.TID]; ok && e.TS < prev {
				t.Fatalf("track tid=%d not monotonic: %d after %d", e.TID, e.TS, prev)
			}
			lastTS[e.TID] = e.TS
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if complete != 5 {
		t.Fatalf("complete events = %d, want 5", complete)
	}
	if threadNames[1] != "group 0" || threadNames[2] != "group 1" {
		t.Fatalf("thread names = %v", threadNames)
	}
}

func TestManualAndWallClock(t *testing.T) {
	clk := &ManualClock{}
	clk.Set(time.Second)
	if clk.Now() != time.Second {
		t.Fatal("manual clock")
	}
	w := WallClock()
	a := w.Now()
	if a < 0 {
		t.Fatal("wall clock went backwards from its epoch")
	}
}
