package obs

import (
	"fmt"

	"repro/internal/compress"
)

// InstrumentCodecs routes every instrumented codec call (see
// compress.Instrument / compress.ByName) into per-codec duration
// histograms and byte counters on the registry:
//
//	codec_encode_seconds{codec="jpeg+lzo"}  (summary)
//	codec_encode_bytes_total{codec="jpeg+lzo"}
//	codec_ratio{codec="jpeg+lzo"}           (coded/raw, last call)
//
// and the decode equivalents. Passing a nil registry uninstalls the
// observer.
func InstrumentCodecs(reg *Registry) {
	if reg == nil {
		compress.SetObserver(nil)
		return
	}
	compress.SetObserver(func(o compress.CodecObservation) {
		label := fmt.Sprintf("{codec=%q}", o.Codec)
		reg.Histogram("codec_"+o.Op+"_seconds"+label,
			"Per-call codec "+o.Op+" time in seconds.").ObserveDuration(o.Duration)
		reg.Counter("codec_"+o.Op+"_bytes_total"+label,
			"Compressed bytes produced/consumed by codec "+o.Op+" calls.").Add(int64(o.CodedBytes))
		reg.Counter("codec_"+o.Op+"_calls_total"+label,
			"Codec "+o.Op+" invocations.").Inc()
		if o.RawBytes > 0 {
			reg.Gauge("codec_ratio"+label,
				"Compression ratio (coded/raw) of the most recent codec call.").
				Set(float64(o.CodedBytes) / float64(o.RawBytes))
		}
	})
}
