package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"
)

// Version is the build identifier reported by every /debug/status
// endpoint. Overridable at link time:
//
//	go build -ldflags "-X repro/internal/obs.Version=$(git rev-parse --short HEAD)"
var Version = "dev"

// DebugConfig wires the observability surfaces into one debug server.
// Any field may be nil; the corresponding endpoint then serves an
// empty document.
type DebugConfig struct {
	// Component names the process ("renderserver", "displaydaemon",
	// "viewer", ...) in /debug/status.
	Component string
	// Registry backs /metrics (Prometheus text format) and the
	// "metrics" section of /debug/status.
	Registry *Registry
	// Tracer backs /debug/trace (Chrome trace-event JSON of the live
	// span ring buffer).
	Tracer *Tracer
	// Status, when set, contributes the "status" section of
	// /debug/status — a JSON-marshalable component snapshot (daemon
	// stats, broker client sessions, ...).
	Status func() any
	// Frames, when set, serves /debug/frames — the frame-provenance
	// ring buffer dump the cross-process collector crawls. Declared as
	// a generic handler (rather than *provenance.Log) to keep obs free
	// of upward imports.
	Frames http.Handler
}

// NewDebugMux builds the debug HTTP handler: /metrics, /debug/status,
// /debug/trace, and (when provenance is wired) /debug/frames.
func NewDebugMux(cfg DebugConfig) *http.ServeMux {
	started := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/status", func(w http.ResponseWriter, r *http.Request) {
		doc := map[string]any{
			"component":      cfg.Component,
			"version":        Version,
			"go":             runtime.Version(),
			"time":           time.Now().UTC().Format(time.RFC3339Nano),
			"uptime_seconds": time.Since(started).Seconds(),
			"metrics":        cfg.Registry.Snapshot(),
		}
		if cfg.Status != nil {
			doc["status"] = cfg.Status()
		}
		if cfg.Tracer != nil {
			doc["trace"] = map[string]any{"spans": cfg.Tracer.Len(), "dropped": cfg.Tracer.Dropped()}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		if cfg.Tracer == nil {
			fmt.Fprint(w, `{"traceEvents":[]}`)
			return
		}
		_ = cfg.Tracer.WriteChrome(w)
	})
	mux.HandleFunc("/debug/frames", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Frames == nil {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"node":"","events":[]}`)
			return
		}
		cfg.Frames.ServeHTTP(w, r)
	})
	return mux
}

// DebugServer is a running debug HTTP server.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr (e.g. ":6060" or "127.0.0.1:0")
// and serves the debug mux on a background goroutine.
func StartDebugServer(addr string, cfg DebugConfig) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(cfg)}
	d := &DebugServer{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return d, nil
}

// Addr returns the server's listen address.
func (d *DebugServer) Addr() net.Addr { return d.ln.Addr() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
