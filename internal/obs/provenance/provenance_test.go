package provenance

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestLogRingBounded: the ring retains at most capacity events, oldest
// first out, and counts the overwritten ones.
func TestLogRingBounded(t *testing.T) {
	l := NewLog("n", 4)
	for i := 0; i < 10; i++ {
		l.Record(Event{Trace: 1, Frame: uint32(i), Event: EvReceived})
	}
	if got := l.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	snap := l.Snapshot()
	if snap[0].Frame != 6 || snap[3].Frame != 9 {
		t.Fatalf("snapshot frames = %d..%d, want 6..9", snap[0].Frame, snap[3].Frame)
	}
	if d := l.Dump().Dropped; d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
	for _, ev := range snap {
		if ev.Node != "n" || ev.UnixNano == 0 {
			t.Fatalf("event not stamped: %+v", ev)
		}
	}
}

// TestLogNilSafe: all methods are no-ops on a nil log, so hot paths
// need no guards.
func TestLogNilSafe(t *testing.T) {
	var l *Log
	l.Record(Event{Event: EvSent})
	if l.Len() != 0 || l.Snapshot() != nil || l.Node() != "" {
		t.Fatal("nil log not inert")
	}
}

// TestLogConcurrentScrapeIngest hammers one ring from writer
// goroutines while readers scrape the HTTP handler — the shape of a
// live daemon being crawled mid-stream. Run under -race.
func TestLogConcurrentScrapeIngest(t *testing.T) {
	l := NewLog("node", 256)
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	const writers, scrapes, perWriter = 4, 25, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Record(Event{
					Trace: uint64(w + 1), Frame: uint32(i), Hop: w,
					Event: EvReceived, Bytes: i, Link: "127.0.0.1:1",
				})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			resp, err := http.Get(srv.URL)
			if err != nil {
				t.Error(err)
				return
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			var d Dump
			if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
				t.Errorf("scrape %d: bad JSON: %v", i, err)
			}
			resp.Body.Close()
			if len(d.Events) > 256 {
				t.Errorf("scrape %d: %d events exceed capacity", i, len(d.Events))
			}
			if d.Node != "node" || d.NowUnixNano == 0 {
				t.Errorf("scrape %d: dump header %q/%d", i, d.Node, d.NowUnixNano)
			}
		}
	}()
	wg.Wait()
	if got := l.Len(); got != 256 {
		t.Fatalf("final Len = %d, want full ring 256", got)
	}
}

// fakeNode serves a hand-built dump, optionally skewing every
// timestamp (and the dump clock) by skew — a node whose wall clock
// runs ahead of the collector's.
func fakeNode(t *testing.T, name string, skew time.Duration, events []Event) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := Dump{Node: name, NowUnixNano: time.Now().Add(skew).UnixNano()}
		for _, ev := range events {
			ev.Node = name
			ev.UnixNano += skew.Nanoseconds()
			d.Events = append(d.Events, ev)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d)
	}))
}

// TestCollectorMergesAndAttributes: three synthetic processes — origin,
// relay (fed over a slow link), viewer — with the relay's clock skewed
// 5 s ahead. The collector must cancel the skew, bind links by address,
// and blame the slow hop.
func TestCollectorMergesAndAttributes(t *testing.T) {
	base := time.Now().UnixNano()
	at := func(d time.Duration) int64 { return base + d.Nanoseconds() }
	const trace, frames = uint64(42), 5

	var origin, relayEvs, viewer []Event
	for i := 0; i < frames; i++ {
		f := uint32(i)
		t0 := time.Duration(i) * 100 * time.Millisecond
		origin = append(origin,
			Event{Trace: trace, Frame: f, Hop: 0, Event: EvRendered, UnixNano: at(t0)},
			Event{Trace: trace, Frame: f, Hop: 0, Event: EvSent, UnixNano: at(t0 + 2*time.Millisecond), Bytes: 1000},
		)
		// The origin→relay hop is the slow one: 60 ms on the wire.
		relayEvs = append(relayEvs,
			Event{Trace: trace, Frame: f, Hop: 1, Event: EvReceived, UnixNano: at(t0 + 62*time.Millisecond), Link: "10.0.0.1:7000", Bytes: 1000},
			Event{Trace: trace, Frame: f, Hop: 1, Event: EvSent, UnixNano: at(t0 + 64*time.Millisecond), Bytes: 900},
		)
		viewer = append(viewer,
			Event{Trace: trace, Frame: f, Hop: 2, Event: EvReceived, UnixNano: at(t0 + 66*time.Millisecond), Link: "10.0.0.2:7000", Bytes: 900},
			Event{Trace: trace, Frame: f, Hop: 2, Event: EvDisplayed, UnixNano: at(t0 + 67*time.Millisecond)},
		)
	}
	// One drop recorded at the relay, charged to the link feeding it.
	relayEvs = append(relayEvs, Event{Trace: trace, Frame: 99, Hop: 1, Event: EvDropped, Cause: "pacer-full", UnixNano: at(time.Second), Link: ""})

	srvOrigin := fakeNode(t, "origin", 0, origin)
	defer srvOrigin.Close()
	srvRelay := fakeNode(t, "relay", 5*time.Second, relayEvs)
	defer srvRelay.Close()
	srvViewer := fakeNode(t, "viewer", 0, viewer)
	defer srvViewer.Close()

	col := Collector{
		Nodes: []NodeRef{
			{Name: "origin", URL: srvOrigin.URL, Addr: "10.0.0.1:7000"},
			{Name: "relay", URL: srvRelay.URL, Addr: "10.0.0.2:7000"},
			{Name: "viewer", URL: srvViewer.URL},
		},
		Budget: 100 * time.Millisecond,
	}
	rep, err := col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Journeys) != frames+1 {
		t.Fatalf("journeys = %d, want %d (frames + the dropped one)", len(rep.Journeys), frames+1)
	}
	// Clock correction: the relay's 5 s skew must not survive into
	// hop latency (60 ms true + HTTP RTT error, not 5 s).
	var slow *LinkStat
	for i := range rep.Links {
		if rep.Links[i].Link == "origin→relay" {
			slow = &rep.Links[i]
		}
	}
	if slow == nil {
		t.Fatalf("no origin→relay link in %+v", rep.Links)
	}
	if slow.P50MS < 20 || slow.P50MS > 500 {
		t.Fatalf("origin→relay p50 = %.1f ms, want ≈60 (clock skew not cancelled?)", slow.P50MS)
	}
	ranked := rep.Attribution()
	if ranked[0].Link != "origin→relay" {
		t.Fatalf("attribution blames %q, want origin→relay (full ranking %+v)", ranked[0].Link, ranked)
	}
	if slow.BudgetOK != 1 {
		t.Fatalf("origin→relay budget-ok = %.2f, want 1 (62 ms age < 100 ms budget)", slow.BudgetOK)
	}
	found := false
	for _, l := range rep.Links {
		if l.Drops["pacer-full"] > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("pacer-full drop not attributed to any link: %+v", rep.Links)
	}
}

// TestCollectorSurvivesDeadNodes: unreachable endpoints are reported,
// not fatal; only an entirely dead tree errors.
func TestCollectorSurvivesDeadNodes(t *testing.T) {
	live := fakeNode(t, "root", 0, []Event{{Trace: 1, Frame: 0, Hop: 0, Event: EvRendered, UnixNano: time.Now().UnixNano()}})
	defer live.Close()
	col := Collector{Nodes: []NodeRef{
		{Name: "root", URL: live.URL},
		{Name: "gone", URL: "http://127.0.0.1:1"},
	}}
	rep, err := col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var deadErr string
	for _, n := range rep.Nodes {
		if n.Name == "gone" {
			deadErr = n.Err
		}
	}
	if deadErr == "" {
		t.Fatal("dead node's error not surfaced")
	}
	col.Nodes = col.Nodes[1:]
	if _, err := col.Collect(); err == nil {
		t.Fatal("all-dead tree must error")
	}
}

// TestReportSpansAndWaterfalls: the merged report renders non-empty
// Chrome spans and text waterfalls.
func TestReportSpansAndWaterfalls(t *testing.T) {
	now := time.Now().UnixNano()
	srv := fakeNode(t, "solo", 0, []Event{
		{Trace: 7, Frame: 3, Hop: 0, Event: EvRendered, UnixNano: now},
		{Trace: 7, Frame: 3, Hop: 0, Event: EvSent, UnixNano: now + int64(time.Millisecond)},
	})
	defer srv.Close()
	col := Collector{Nodes: []NodeRef{{Name: "solo", URL: srv.URL}}}
	rep, err := col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if spans := rep.Spans(); len(spans) == 0 {
		t.Fatal("no spans from a journey")
	}
	var buf writerBuf
	rep.WriteWaterfalls(&buf, 0)
	if buf.s == "" {
		t.Fatal("empty waterfall output")
	}
}

type writerBuf struct{ s string }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.s += string(p)
	return len(p), nil
}
