package provenance

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/obs"
)

// NodeRef names one process the collector crawls.
type NodeRef struct {
	// Name is the display name; "" adopts the dump's own node name.
	Name string `json:"name"`
	// URL is the node's debug base ("http://127.0.0.1:6060"); the
	// collector fetches URL + "/debug/frames".
	URL string `json:"url"`
	// Addr is the node's downstream listen address — the address its
	// children dial and record as Link on received events. The root
	// renderer has none.
	Addr string `json:"addr,omitempty"`
}

// NodeInfo is one crawled node's fetch outcome.
type NodeInfo struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// OffsetNS estimates serverClock − collectorClock (NTP-style: the
	// server's dump timestamp minus the request midpoint). Event times
	// are corrected by subtracting it.
	OffsetNS int64 `json:"offset_ns"`
	// RTTNS is the debug fetch round-trip backing the offset estimate
	// (its half-width bounds the offset error).
	RTTNS   int64  `json:"rtt_ns"`
	Events  int    `json:"events"`
	Dropped int64  `json:"dropped"`
	Err     string `json:"err,omitempty"`
}

// Step is one provenance event on the collector's corrected clock.
type Step struct {
	Node     string `json:"node"`
	Event    string `json:"event"`
	Hop      int    `json:"hop"`
	UnixNano int64  `json:"t"`
	Bytes    int    `json:"bytes,omitempty"`
	Cause    string `json:"cause,omitempty"`
	Link     string `json:"link,omitempty"`
}

// Segment is one traversed link in a frame's journey: the time from
// the parent having the frame ready to the child reading it off the
// wire.
type Segment struct {
	// Link is "parent→child" in node names.
	Link string `json:"link"`
	From string `json:"from"`
	To   string `json:"to"`
	// LatencyNS is child received − parent ready (clamped at 0 when
	// residual clock error inverts a fast hop).
	LatencyNS int64 `json:"latency_ns"`
	// AgeNS is the frame age at the child's receive (received − first
	// origin event).
	AgeNS int64 `json:"age_ns"`
}

// Journey is one frame's merged cross-process history.
type Journey struct {
	Trace    uint64    `json:"trace"`
	Frame    uint32    `json:"frame"`
	Steps    []Step    `json:"steps"`
	Segments []Segment `json:"segments"`
	// Slowest indexes the dominant segment (-1 when none).
	Slowest int `json:"slowest"`
	// EndToEndNS spans first origin event to last event anywhere.
	EndToEndNS int64 `json:"end_to_end_ns"`
}

// LinkStat aggregates one link's SLO view across journeys.
type LinkStat struct {
	Link  string  `json:"link"`
	Count int     `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// Drops counts dropped/replayed events recorded by the link's
	// child, by cause.
	Drops map[string]int `json:"drops,omitempty"`
	// BudgetOK is the fraction of frames within the age budget at the
	// child's receive (1 when no budget configured).
	BudgetOK float64 `json:"budget_ok"`
	// SlowestCount counts journeys where this link was the dominant
	// latency contributor.
	SlowestCount int `json:"slowest_count"`
}

// Report is a merged cross-tree provenance view.
type Report struct {
	Nodes    []NodeInfo    `json:"nodes"`
	Journeys []Journey     `json:"journeys"`
	Links    []LinkStat    `json:"links"`
	Budget   time.Duration `json:"budget_ns"`
}

// Collector crawls /debug/frames across a tree and merges events by
// trace identity with per-node clock correction.
type Collector struct {
	// Nodes to crawl (order is presentation order).
	Nodes []NodeRef
	// Client is the HTTP client (http.DefaultClient when nil).
	Client *http.Client
	// Budget is the frame-age SLO used for per-link compliance
	// (0 = no budget, BudgetOK reports 1).
	Budget time.Duration
	// Timeout bounds each node fetch (connect + read); a node that
	// stalls past it is recorded unreachable instead of hanging the
	// whole crawl (default 2s, negative disables).
	Timeout time.Duration
	// Retries is how many extra attempts each node gets after a failed
	// fetch — a crawl racing a node restart should not lose that
	// node's events to one refused connection (default 2).
	Retries int
}

// fetchTimeout resolves the per-attempt deadline.
func (c *Collector) fetchTimeout() time.Duration {
	switch {
	case c.Timeout < 0:
		return 0
	case c.Timeout == 0:
		return 2 * time.Second
	}
	return c.Timeout
}

// fetch grabs one node's dump and estimates its clock offset, retrying
// transient failures with each attempt bounded by Timeout.
func (c *Collector) fetch(ref NodeRef) (Dump, NodeInfo) {
	attempts := c.Retries
	if attempts == 0 {
		attempts = 2
	}
	if attempts < 0 {
		attempts = 0
	}
	d, info := c.fetchOnce(ref)
	for try := 0; info.Err != "" && try < attempts; try++ {
		d, info = c.fetchOnce(ref)
	}
	return d, info
}

// fetchOnce is one bounded fetch attempt.
func (c *Collector) fetchOnce(ref NodeRef) (Dump, NodeInfo) {
	info := NodeInfo{Name: ref.Name, URL: ref.URL}
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	ctx := context.Background()
	if d := c.fetchTimeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ref.URL+"/debug/frames", nil)
	if err != nil {
		info.Err = err.Error()
		return Dump{}, info
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		info.Err = err.Error()
		return Dump{}, info
	}
	defer resp.Body.Close()
	var d Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		info.Err = err.Error()
		return Dump{}, info
	}
	t1 := time.Now()
	if info.Name == "" {
		info.Name = d.Node
	}
	mid := t0.UnixNano() + (t1.UnixNano()-t0.UnixNano())/2
	info.OffsetNS = d.NowUnixNano - mid
	info.RTTNS = t1.UnixNano() - t0.UnixNano()
	info.Events = len(d.Events)
	info.Dropped = d.Dropped
	return d, info
}

// Collect crawls every node and merges the dumps. Unreachable nodes
// are reported in Nodes[].Err and skipped; Collect fails only when no
// node answered.
func (c *Collector) Collect() (*Report, error) {
	rep := &Report{Budget: c.Budget}
	type nodeDump struct {
		ref  NodeRef
		dump Dump
		info NodeInfo
	}
	var dumps []nodeDump
	for _, ref := range c.Nodes {
		d, info := c.fetch(ref)
		rep.Nodes = append(rep.Nodes, info)
		if info.Err == "" {
			dumps = append(dumps, nodeDump{ref: ref, dump: d, info: info})
		}
	}
	if len(dumps) == 0 {
		return nil, fmt.Errorf("provenance: no node answered (%d tried)", len(c.Nodes))
	}

	// Downstream listen address -> node name, for resolving the Link
	// field on received events to the parent's name.
	byAddr := map[string]string{}
	for _, nd := range dumps {
		if nd.ref.Addr != "" {
			byAddr[nd.ref.Addr] = nd.info.Name
		}
	}

	// Merge events by (trace, frame) on the collector's clock.
	type key struct {
		trace uint64
		frame uint32
	}
	journeys := map[key]*Journey{}
	var order []key
	for _, nd := range dumps {
		for _, ev := range nd.dump.Events {
			k := key{ev.Trace, ev.Frame}
			j := journeys[k]
			if j == nil {
				j = &Journey{Trace: ev.Trace, Frame: ev.Frame, Slowest: -1}
				journeys[k] = j
				order = append(order, k)
			}
			link := ev.Link
			if name, ok := byAddr[link]; ok {
				link = name
			}
			j.Steps = append(j.Steps, Step{
				Node:     nd.info.Name,
				Event:    ev.Event,
				Hop:      ev.Hop,
				UnixNano: ev.UnixNano - nd.info.OffsetNS,
				Bytes:    ev.Bytes,
				Cause:    ev.Cause,
				Link:     link,
			})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].trace != order[j].trace {
			return order[i].trace < order[j].trace
		}
		return order[i].frame < order[j].frame
	})

	known := map[string]bool{}
	for _, nd := range dumps {
		known[nd.info.Name] = true
	}
	linkLat := map[string][]int64{}
	linkAges := map[string][]int64{}
	linkDrops := map[string]map[string]int{}
	linkSlowest := map[string]int{}
	for _, k := range order {
		j := journeys[k]
		sort.SliceStable(j.Steps, func(a, b int) bool {
			if j.Steps[a].Hop != j.Steps[b].Hop {
				return j.Steps[a].Hop < j.Steps[b].Hop
			}
			return j.Steps[a].UnixNano < j.Steps[b].UnixNano
		})
		j.Segments = segments(j, known)
		first, last := j.Steps[0].UnixNano, j.Steps[0].UnixNano
		for _, s := range j.Steps {
			if s.UnixNano > last {
				last = s.UnixNano
			}
		}
		j.EndToEndNS = last - first
		var worst int64 = -1
		for i, seg := range j.Segments {
			if seg.LatencyNS > worst {
				worst, j.Slowest = seg.LatencyNS, i
			}
			linkLat[seg.Link] = append(linkLat[seg.Link], seg.LatencyNS)
			linkAges[seg.Link] = append(linkAges[seg.Link], seg.AgeNS)
		}
		if j.Slowest >= 0 {
			linkSlowest[j.Segments[j.Slowest].Link]++
		}
		// Drops and replay suppressions are charged to the link feeding
		// the node that recorded them.
		for _, s := range j.Steps {
			if s.Event != EvDropped && s.Event != EvReplayed {
				continue
			}
			link := upstreamLink(j, s.Node)
			if link == "" {
				link = s.Node
			}
			if linkDrops[link] == nil {
				linkDrops[link] = map[string]int{}
			}
			cause := s.Cause
			if cause == "" {
				cause = s.Event
			}
			linkDrops[link][cause]++
		}
		rep.Journeys = append(rep.Journeys, *j)
	}

	names := make([]string, 0, len(linkLat))
	for name := range linkLat {
		names = append(names, name)
	}
	for name := range linkDrops {
		if _, ok := linkLat[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		lat := linkLat[name]
		st := LinkStat{Link: name, Count: len(lat), Drops: linkDrops[name], BudgetOK: 1}
		if len(lat) > 0 {
			sorted := append([]int64(nil), lat...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			st.P50MS = ms(quantile(sorted, 0.50))
			st.P95MS = ms(quantile(sorted, 0.95))
			st.P99MS = ms(quantile(sorted, 0.99))
		}
		if c.Budget > 0 && len(linkAges[name]) > 0 {
			ok := 0
			for _, age := range linkAges[name] {
				if time.Duration(age) <= c.Budget {
					ok++
				}
			}
			st.BudgetOK = float64(ok) / float64(len(linkAges[name]))
		}
		st.SlowestCount = linkSlowest[name]
		rep.Links = append(rep.Links, st)
	}
	return rep, nil
}

// segments derives the traversed links of one journey: every received
// step is bound to its parent via the Link address, and the segment
// spans from the parent's readiness (its last pre-forward event) to
// the child's receive. A Link that resolved to no known node (e.g.
// the origin's ephemeral outbound port) falls back to the unique node
// one hop upstream, when there is exactly one.
func segments(j *Journey, known map[string]bool) []Segment {
	// Per node: the time the frame was ready to forward. Priority:
	// sent/relayed (the actual hand-off) > compressed > composited >
	// received > rendered.
	ready := map[string]int64{}
	rank := map[string]int{EvRendered: 1, EvReceived: 2, EvComposited: 3, EvCompressed: 4, EvRelayed: 5, EvSent: 5}
	bestRank := map[string]int{}
	for _, s := range j.Steps {
		rk := rank[s.Event]
		if rk == 0 {
			continue
		}
		// Prefer the highest-priority event; among equals the earliest
		// (first send) marks readiness.
		if rk > bestRank[s.Node] {
			bestRank[s.Node] = rk
			ready[s.Node] = s.UnixNano
		}
	}
	// nodesAtHop supports the unresolved-link fallback.
	nodesAtHop := map[int]map[string]bool{}
	for _, s := range j.Steps {
		if nodesAtHop[s.Hop] == nil {
			nodesAtHop[s.Hop] = map[string]bool{}
		}
		nodesAtHop[s.Hop][s.Node] = true
	}
	origin := int64(0)
	if len(j.Steps) > 0 {
		origin = j.Steps[0].UnixNano
	}
	var segs []Segment
	for _, s := range j.Steps {
		if s.Event != EvReceived || s.Link == "" {
			continue
		}
		from := s.Link
		if !known[from] {
			if up := nodesAtHop[s.Hop-1]; len(up) == 1 {
				for name := range up {
					from = name
				}
			}
		}
		start, have := ready[from]
		lat := int64(0)
		if have {
			lat = s.UnixNano - start
			if lat < 0 {
				lat = 0
			}
		}
		segs = append(segs, Segment{
			Link:      from + "→" + s.Node,
			From:      from,
			To:        s.Node,
			LatencyNS: lat,
			AgeNS:     s.UnixNano - origin,
		})
	}
	return segs
}

// upstreamLink finds the link feeding node in one journey ("" when the
// node received nothing there).
func upstreamLink(j *Journey, node string) string {
	for _, seg := range j.Segments {
		if seg.To == node {
			return seg.Link
		}
	}
	return ""
}

// Attribution returns the per-link stats ranked by how often each
// link dominated a journey, then by p95 latency — element 0 is the
// tree's bottleneck.
func (r *Report) Attribution() []LinkStat {
	out := append([]LinkStat(nil), r.Links...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SlowestCount != out[j].SlowestCount {
			return out[i].SlowestCount > out[j].SlowestCount
		}
		return out[i].P95MS > out[j].P95MS
	})
	return out
}

// Spans renders the merged journeys as spans: one track per node
// (the frame's residence there) and one per link (the wire+queue
// crossing), all on the collector's corrected clock.
func (r *Report) Spans() []obs.Span {
	epoch := int64(0)
	for _, j := range r.Journeys {
		for _, s := range j.Steps {
			if epoch == 0 || s.UnixNano < epoch {
				epoch = s.UnixNano
			}
		}
	}
	var spans []obs.Span
	for _, j := range r.Journeys {
		first := map[string]int64{}
		last := map[string]int64{}
		events := map[string][]string{}
		for _, s := range j.Steps {
			if _, ok := first[s.Node]; !ok || s.UnixNano < first[s.Node] {
				first[s.Node] = s.UnixNano
			}
			if s.UnixNano > last[s.Node] {
				last[s.Node] = s.UnixNano
			}
			events[s.Node] = append(events[s.Node], s.Event)
		}
		name := fmt.Sprintf("frame %d", j.Frame)
		for node, start := range first {
			spans = append(spans, obs.Span{
				Track: node,
				Cat:   "provenance",
				Name:  name,
				Start: time.Duration(start - epoch),
				End:   time.Duration(last[node] - epoch),
				Args:  map[string]any{"trace": fmt.Sprintf("%016x", j.Trace), "events": events[node]},
			})
		}
		for _, seg := range j.Segments {
			end := first[seg.To]
			spans = append(spans, obs.Span{
				Track: "link " + seg.Link,
				Cat:   "wan",
				Name:  name,
				Start: time.Duration(end - seg.LatencyNS - epoch),
				End:   time.Duration(end - epoch),
				Args:  map[string]any{"latency_ms": ms(seg.LatencyNS)},
			})
		}
	}
	return spans
}

// WriteChrome writes the merged cross-process trace in Chrome
// trace-event JSON.
func (r *Report) WriteChrome(w io.Writer) error {
	return obs.WriteChrome(w, r.Spans())
}

// WriteWaterfalls renders up to max per-frame waterfalls as text:
// each step indented by hop, each segment annotated, slowest marked.
func (r *Report) WriteWaterfalls(w io.Writer, max int) {
	for i, j := range r.Journeys {
		if max > 0 && i >= max {
			fmt.Fprintf(w, "... %d more frames\n", len(r.Journeys)-max)
			return
		}
		fmt.Fprintf(w, "frame %d (trace %016x) end-to-end %.1f ms\n", j.Frame, j.Trace, ms(j.EndToEndNS))
		start := int64(0)
		if len(j.Steps) > 0 {
			start = j.Steps[0].UnixNano
		}
		for _, s := range j.Steps {
			detail := ""
			if s.Bytes > 0 {
				detail = fmt.Sprintf(" %dB", s.Bytes)
			}
			if s.Cause != "" {
				detail += " (" + s.Cause + ")"
			}
			fmt.Fprintf(w, "  %8.1fms %*s%s %s%s\n", ms(s.UnixNano-start), 2*s.Hop, "", s.Node, s.Event, detail)
		}
		for si, seg := range j.Segments {
			mark := ""
			if si == j.Slowest {
				mark = "  <-- slowest hop"
			}
			fmt.Fprintf(w, "  link %-28s %8.1f ms%s\n", seg.Link, ms(seg.LatencyNS), mark)
		}
	}
}

// Instrument registers the report's per-link SLO series on a metrics
// registry: hop-latency quantiles, budget compliance, drop causes.
// The report is captured by value at registration; re-registering
// after a fresh Collect replaces nothing — prefer collecting first,
// then instrumenting the final report.
func (r *Report) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	links := append([]LinkStat(nil), r.Links...)
	reg.Collect(func(emit obs.Emit) {
		for _, l := range links {
			emit(fmt.Sprintf("provenance_link_latency_ms{link=%q,quantile=\"0.5\"}", l.Link),
				"Per-link frame hop latency quantiles.", "gauge", l.P50MS)
			emit(fmt.Sprintf("provenance_link_latency_ms{link=%q,quantile=\"0.95\"}", l.Link),
				"Per-link frame hop latency quantiles.", "gauge", l.P95MS)
			emit(fmt.Sprintf("provenance_link_latency_ms{link=%q,quantile=\"0.99\"}", l.Link),
				"Per-link frame hop latency quantiles.", "gauge", l.P99MS)
			emit(fmt.Sprintf("provenance_link_frames{link=%q}", l.Link),
				"Frames observed crossing the link.", "counter", float64(l.Count))
			emit(fmt.Sprintf("provenance_link_budget_ok{link=%q}", l.Link),
				"Fraction of frames within the age budget at the link's child.", "gauge", l.BudgetOK)
			emit(fmt.Sprintf("provenance_link_slowest{link=%q}", l.Link),
				"Journeys where the link was the dominant latency contributor.", "counter", float64(l.SlowestCount))
			for cause, n := range l.Drops {
				emit(fmt.Sprintf("provenance_link_drops{link=%q,cause=%q}", l.Link, cause),
					"Frames dropped or replay-suppressed at the link's child, by cause.", "counter", float64(n))
			}
		}
	})
}

// quantile reads a quantile from an ascending-sorted slice.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func ms(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }
