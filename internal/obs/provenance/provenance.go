// Package provenance implements NetLogger-style end-to-end frame
// tracing for the wide-area pipeline: every process a frame crosses
// (render server, display daemon, relay node, viewer) records
// per-frame lifecycle events against the wire-carried trace context
// (transport.TraceCtx) into a bounded in-process ring buffer, exposed
// at /debug/frames as JSON. A collector (see Collector) crawls those
// endpoints across a relay tree, aligns clocks, and attributes
// per-hop latency — the "where did frame 1293 spend its 800 ms"
// question the paper's WAN measurements answer by hand.
package provenance

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Event vocabulary: one constant per lifecycle point. The set is
// deliberately small and closed — collectors switch on these strings.
const (
	// EvRendered marks frame pixels complete at the origin.
	EvRendered = "rendered"
	// EvComposited marks parallel-piece compositing complete.
	EvComposited = "composited"
	// EvCompressed marks codec output ready (origin or re-encode).
	EvCompressed = "compressed"
	// EvSent marks the frame handed to a peer socket.
	EvSent = "sent"
	// EvRelayed marks a relay re-forwarding a frame downstream.
	EvRelayed = "relayed"
	// EvReceived marks the frame read off the wire (Link names the
	// upstream address it arrived from).
	EvReceived = "received"
	// EvDecoded marks codec decode complete at a consumer.
	EvDecoded = "decoded"
	// EvDisplayed marks the frame assembled and presented.
	EvDisplayed = "displayed"
	// EvDropped marks an intentional discard (Cause says why:
	// "buffer-full", "pacer-full", "dup", ...).
	EvDropped = "dropped"
	// EvReplayed marks a duplicate suppressed after a reconnect or
	// re-parent replay.
	EvReplayed = "reconnect-replayed"
)

// Event is one provenance record. Times are the recording process's
// own wall clock; the collector corrects cross-host skew.
type Event struct {
	// Node names the recording process (relay node name, "viewer-3").
	Node string `json:"node"`
	// Trace and Frame identify the frame across processes.
	Trace uint64 `json:"trace"`
	Frame uint32 `json:"frame"`
	// Hop is the forwarding distance from the origin at which this
	// process saw the frame (origin = 0).
	Hop int `json:"hop"`
	// Event is one of the Ev* vocabulary constants.
	Event string `json:"event"`
	// UnixNano is the recording process's clock at the event.
	UnixNano int64 `json:"t"`
	// Bytes is the payload size where meaningful (0 otherwise).
	Bytes int `json:"bytes,omitempty"`
	// Cause qualifies drops and replays.
	Cause string `json:"cause,omitempty"`
	// Link names the upstream address on received events, letting the
	// collector bind a child to its parent without guessing from time
	// order (which interleaves sibling branches in a fan-out tree).
	Link string `json:"link,omitempty"`
}

// Log is a bounded per-process provenance ring buffer. All methods
// are safe for concurrent use and safe on a nil receiver, so
// instrumented hot paths need no nil checks.
type Log struct {
	node string

	mu      sync.Mutex
	events  []Event
	next    int
	wrapped bool
	dropped int64
}

// DefaultCapacity bounds the per-process event ring.
const DefaultCapacity = 1 << 14

// NewLog creates a log for the named process retaining up to capacity
// events (oldest overwritten beyond that; capacity < 1 defaults to
// DefaultCapacity).
func NewLog(node string, capacity int) *Log {
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	return &Log{node: node, events: make([]Event, capacity)}
}

// Node returns the process name the log records under ("" on nil).
func (l *Log) Node() string {
	if l == nil {
		return ""
	}
	return l.node
}

// Record appends one event, stamping Node and (if unset) UnixNano.
// No-op on a nil log.
func (l *Log) Record(ev Event) {
	if l == nil {
		return
	}
	ev.Node = l.node
	if ev.UnixNano == 0 {
		ev.UnixNano = time.Now().UnixNano()
	}
	l.mu.Lock()
	if l.wrapped {
		l.dropped++
	}
	l.events[l.next] = ev
	l.next++
	if l.next == len(l.events) {
		l.next = 0
		l.wrapped = true
	}
	l.mu.Unlock()
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wrapped {
		return len(l.events)
	}
	return l.next
}

// Snapshot copies the retained events in recording order.
func (l *Log) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.wrapped {
		return append([]Event(nil), l.events[:l.next]...)
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.next:]...)
	out = append(out, l.events[:l.next]...)
	return out
}

// Dump is the /debug/frames document: the event snapshot plus the
// server's clock at serialization, which the collector pairs with its
// own request timestamps to estimate the clock offset (NTP-style:
// offset = NowUnixNano - requestMidpoint).
type Dump struct {
	Node        string  `json:"node"`
	NowUnixNano int64   `json:"now_unix_nano"`
	Dropped     int64   `json:"dropped"`
	Events      []Event `json:"events"`
}

// Dump snapshots the log with a fresh clock reading.
func (l *Log) Dump() Dump {
	d := Dump{Node: l.Node(), Events: l.Snapshot(), NowUnixNano: time.Now().UnixNano()}
	if l != nil {
		l.mu.Lock()
		d.Dropped = l.dropped
		l.mu.Unlock()
	}
	return d
}

// Handler serves the dump as JSON — mounted at /debug/frames.
func (l *Log) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		_ = enc.Encode(l.Dump())
	})
}
