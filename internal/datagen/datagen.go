// Package datagen synthesizes the paper's three time-varying CFD test
// datasets. The originals (a numerically simulated turbulent jet, a
// pseudo-spectral turbulent-vortex run, and a NERSC shock/bubble
// fluid-mixing simulation) are not available, so each generator
// produces a deterministic procedural field on the same grid with the
// same qualitative character the evaluation depends on:
//
//   - jet: sparse plume — few opaque pixels, compresses very well;
//   - vortex: dense broadband vorticity — high pixel coverage,
//     compresses poorly (paper §6: transport can exceed render time);
//   - mixing: 16x more data points than the small sets with three
//     velocity components — rendering dominates, transport negligible.
//
// All generators are pure functions of (seed, step), so any node of
// the simulated cluster can regenerate any time step independently —
// the stand-in for reading the shared dataset from mass storage.
package datagen

import (
	"fmt"
	"math"

	"repro/internal/vol"
)

// Generator produces the scalar field of any time step of a
// time-varying dataset.
type Generator interface {
	// Name identifies the dataset ("jet", "vortex", "mixing").
	Name() string
	// Dims returns the grid resolution of every time step.
	Dims() vol.Dims
	// Steps returns the number of time steps.
	Steps() int
	// Step synthesizes time step t (0 <= t < Steps()).
	Step(t int) (*vol.Volume, error)
}

// checkStep validates a step index against a generator's range.
func checkStep(g Generator, t int) error {
	if t < 0 || t >= g.Steps() {
		return fmt.Errorf("datagen: %s step %d out of range [0,%d)", g.Name(), t, g.Steps())
	}
	return nil
}

// Jet generates the turbulent-jet dataset: paper dimensions
// 129x129x104 with 150 time steps, scalar vorticity. The synthetic
// field is a buoyant plume along +z with helical instability modes
// whose phase advances with time, so consecutive steps are coherent —
// the property frame-differencing compression would exploit.
type Jet struct {
	dims  vol.Dims
	steps int
	seed  int64
}

// NewJet returns the paper-scale jet generator.
func NewJet() *Jet { return &Jet{dims: vol.Dims{NX: 129, NY: 129, NZ: 104}, steps: 150, seed: 1} }

// NewJetScaled returns a jet generator with reduced grid and step
// count for fast tests and calibration runs. scale must be in (0,1].
func NewJetScaled(scale float64, steps int) *Jet {
	d := scaleDims(vol.Dims{NX: 129, NY: 129, NZ: 104}, scale)
	return &Jet{dims: d, steps: steps, seed: 1}
}

// Name implements Generator.
func (j *Jet) Name() string { return "jet" }

// Dims implements Generator.
func (j *Jet) Dims() vol.Dims { return j.dims }

// Steps implements Generator.
func (j *Jet) Steps() int { return j.steps }

// Step implements Generator.
func (j *Jet) Step(t int) (*vol.Volume, error) {
	if err := checkStep(j, t); err != nil {
		return nil, err
	}
	v, err := vol.New(j.dims)
	if err != nil {
		return nil, err
	}
	nx, ny, nz := j.dims.NX, j.dims.NY, j.dims.NZ
	cx, cy := float64(nx-1)/2, float64(ny-1)/2
	tt := float64(t) * 0.12
	rng := newSplitMix(j.seed)
	// Three helical instability modes with random-but-fixed phases.
	type mode struct{ k, m, amp, phase, drift float64 }
	modes := make([]mode, 3)
	for i := range modes {
		modes[i] = mode{
			k:     0.35 + 0.25*float64(i),
			m:     float64(i + 1),
			amp:   0.30 / float64(i+1),
			phase: rng.float() * 2 * math.Pi,
			drift: 0.8 + 0.5*rng.float(),
		}
	}
	// Fine-scale turbulence riding on the plume: broadband modes with
	// a k^-1 amplitude falloff. Real turbulent vorticity is broadband;
	// without this the rendered images are unrealistically smooth and
	// lossless codecs flatten them far more than the paper's Table 1
	// reports.
	type fmode struct{ kx, ky, kz, amp, phase, omega float64 }
	fine := make([]fmode, 8)
	for i := range fine {
		k := 0.6 + 1.8*rng.float()
		fine[i] = fmode{
			kx: k * (rng.float()*2 - 1), ky: k * (rng.float()*2 - 1), kz: k * (rng.float()*2 - 1),
			amp:   0.25 / (1 + k),
			phase: rng.float() * 2 * math.Pi,
			omega: 1 + 2*rng.float(),
		}
	}
	i := 0
	// Plume geometry scales with the grid so reduced-resolution
	// volumes keep the same (sparse) occupancy as the full dataset.
	unit := float64(nx) / 129.0
	for z := 0; z < nz; z++ {
		zf := float64(z) / float64(nz-1)
		// The plume widens with height and meanders over time.
		wobX := 4 * unit * math.Sin(0.9*tt+3.1*zf)
		wobY := 4 * unit * math.Cos(0.7*tt+2.3*zf)
		radius := (3 + 9*zf) * unit
		for y := 0; y < ny; y++ {
			dy := float64(y) - cy - wobY
			for x := 0; x < nx; x++ {
				dx := float64(x) - cx - wobX
				r := math.Sqrt(dx*dx + dy*dy)
				theta := math.Atan2(dy, dx)
				// Gaussian core falloff keeps the field sparse.
				core := math.Exp(-(r * r) / (2 * radius * radius))
				s := core
				for _, m := range modes {
					s += core * m.amp * math.Sin(m.m*theta+m.k*float64(z)-m.drift*tt+m.phase)
				}
				if core > 1e-3 {
					var f float64
					for _, m := range fine {
						f += m.amp * math.Sin(m.kx*dx/unit+m.ky*dy/unit+m.kz*float64(z)/unit+m.omega*tt+m.phase)
					}
					s += core * f
				}
				// Vorticity strongest in the shear layer, fading at the inlet.
				shear := math.Exp(-sq(r-radius) / (radius * radius))
				val := (0.6*s + 0.7*shear*core) * (0.3 + 0.7*zf)
				if val < 0 {
					val = 0
				}
				v.Data[i] = float32(val)
				i++
			}
		}
	}
	v.UpdateRange()
	return v, nil
}

// Vortex generates the turbulent-vortex dataset: 128^3 grid, 100 time
// steps of scalar vorticity magnitude from a pseudo-spectral-style sum
// of band-limited Fourier modes. The field is nonzero nearly
// everywhere, reproducing the dense pixel coverage the paper reports.
type Vortex struct {
	dims  vol.Dims
	steps int
	seed  int64
	nmode int
}

// NewVortex returns the paper-scale vortex generator.
func NewVortex() *Vortex {
	return &Vortex{dims: vol.Dims{NX: 128, NY: 128, NZ: 128}, steps: 100, seed: 2, nmode: 16}
}

// NewVortexScaled returns a reduced vortex generator for tests.
func NewVortexScaled(scale float64, steps int) *Vortex {
	return &Vortex{dims: scaleDims(vol.Dims{NX: 128, NY: 128, NZ: 128}, scale), steps: steps, seed: 2, nmode: 16}
}

// Name implements Generator.
func (g *Vortex) Name() string { return "vortex" }

// Dims implements Generator.
func (g *Vortex) Dims() vol.Dims { return g.dims }

// Steps implements Generator.
func (g *Vortex) Steps() int { return g.steps }

// Step implements Generator.
func (g *Vortex) Step(t int) (*vol.Volume, error) {
	if err := checkStep(g, t); err != nil {
		return nil, err
	}
	v, err := vol.New(g.dims)
	if err != nil {
		return nil, err
	}
	nx, ny, nz := g.dims.NX, g.dims.NY, g.dims.NZ
	rng := newSplitMix(g.seed)
	type mode struct {
		kx, ky, kz float64
		amp, phase float64
		omega      float64
	}
	modes := make([]mode, g.nmode)
	for i := range modes {
		// Band-limited wave vectors with a k^-5/6 style amplitude
		// falloff, echoing a turbulence spectrum.
		kx := math.Floor(rng.float()*6) + 1
		ky := math.Floor(rng.float()*6) + 1
		kz := math.Floor(rng.float()*6) + 1
		kmag := math.Sqrt(kx*kx + ky*ky + kz*kz)
		modes[i] = mode{
			kx: kx, ky: ky, kz: kz,
			amp:   1 / math.Pow(kmag, 0.83),
			phase: rng.float() * 2 * math.Pi,
			omega: 0.2 + 0.6*rng.float(),
		}
	}
	tt := float64(t) * 0.15
	// Precompute per-axis angles to keep the inner loop cheap.
	sinTab := func(n int, scale float64) []float64 {
		tab := make([]float64, n)
		for i := 0; i < n; i++ {
			tab[i] = float64(i) * scale
		}
		return tab
	}
	xs := sinTab(nx, 2*math.Pi/float64(nx))
	ys := sinTab(ny, 2*math.Pi/float64(ny))
	zs := sinTab(nz, 2*math.Pi/float64(nz))
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				var s float64
				for _, m := range modes {
					s += m.amp * math.Sin(m.kx*xs[x]+m.ky*ys[y]+m.kz*zs[z]+m.phase+m.omega*tt)
				}
				// Vorticity magnitude is non-negative and broadband.
				v.Data[i] = float32(math.Abs(s))
				i++
			}
		}
	}
	v.UpdateRange()
	return v, nil
}

// Mixing generates the shock/bubble fluid-mixing dataset: paper
// dimensions 640x256x256 with 265 time steps and three velocity
// components per point (the rendered scalar is velocity magnitude, as
// for the resampled AMR data the paper used). A planar shock sweeps
// through an ambient medium containing a denser spherical bubble; the
// passage deforms the bubble and leaves a turbulent wake.
type Mixing struct {
	dims  vol.Dims
	steps int
	seed  int64
}

// NewMixing returns the paper-scale mixing generator (44 GB at full
// size — prefer NewMixingScaled unless disk-backed streaming is used).
func NewMixing() *Mixing {
	return &Mixing{dims: vol.Dims{NX: 640, NY: 256, NZ: 256}, steps: 265, seed: 3}
}

// NewMixingScaled returns a reduced mixing generator.
func NewMixingScaled(scale float64, steps int) *Mixing {
	return &Mixing{dims: scaleDims(vol.Dims{NX: 640, NY: 256, NZ: 256}, scale), steps: steps, seed: 3}
}

// Name implements Generator.
func (g *Mixing) Name() string { return "mixing" }

// Dims implements Generator.
func (g *Mixing) Dims() vol.Dims { return g.dims }

// Steps implements Generator.
func (g *Mixing) Steps() int { return g.steps }

// VelocityAt returns the synthetic velocity components at grid point
// (x,y,z) of step t; Step renders their magnitude. Exposed so the
// storage layer can write all three components as the paper's dataset
// stores them.
func (g *Mixing) VelocityAt(t, x, y, z int) (vx, vy, vz float64) {
	nx, ny, nz := g.dims.NX, g.dims.NY, g.dims.NZ
	progress := float64(t) / float64(maxInt(g.steps-1, 1))
	// Shock front position sweeps along x over the run.
	front := (progress*1.2 - 0.1) * float64(nx)
	xf, yf, zf := float64(x), float64(y), float64(z)
	cy, cz := float64(ny)/2, float64(nz)/2
	bubbleX := float64(nx) * 0.35
	bubbleR := float64(ny) * 0.3

	// Base flow: fluid behind the shock moves in +x.
	behind := sigmoid((front - xf) / 6)
	vx = behind * 1.0

	// Bubble deformation: past the shock the bubble becomes a vortex
	// ring; model as swirling flow around a ring centered at the
	// (advected) bubble.
	adv := bubbleX + behind*0.3*(front-bubbleX)
	dx := xf - adv
	dy := yf - cy
	dz := zf - cz
	rr := math.Sqrt(dy*dy + dz*dz)
	ring := math.Exp(-(sq(dx) + sq(rr-bubbleR*0.7)) / (2 * sq(bubbleR*0.35)))
	swirl := ring * behind * 2.0
	if rr > 1e-9 {
		// Poloidal roll-up: velocity circulates in the (x, r) plane.
		vx += swirl * (rr - bubbleR*0.7) / bubbleR
		vy += -swirl * dx / bubbleR * (dy / rr)
		vz += -swirl * dx / bubbleR * (dz / rr)
	}
	// Turbulent wake behind the bubble after shock passage.
	if behind > 0.5 && dx < 0 {
		wake := math.Exp(-rr*rr/(2*sq(bubbleR))) * behind
		vy += 0.4 * wake * math.Sin(0.5*dx+0.3*yf+0.1*float64(t))
		vz += 0.4 * wake * math.Cos(0.4*dx+0.3*zf-0.1*float64(t))
	}
	return vx, vy, vz
}

// Step implements Generator: the scalar field is velocity magnitude.
func (g *Mixing) Step(t int) (*vol.Volume, error) {
	if err := checkStep(g, t); err != nil {
		return nil, err
	}
	v, err := vol.New(g.dims)
	if err != nil {
		return nil, err
	}
	i := 0
	for z := 0; z < g.dims.NZ; z++ {
		for y := 0; y < g.dims.NY; y++ {
			for x := 0; x < g.dims.NX; x++ {
				vx, vy, vz := g.VelocityAt(t, x, y, z)
				v.Data[i] = float32(math.Sqrt(vx*vx + vy*vy + vz*vz))
				i++
			}
		}
	}
	v.UpdateRange()
	return v, nil
}

// ByName constructs a generator from a dataset name, at an optional
// scale (1.0 = paper size) and step count (0 = paper count).
func ByName(name string, scale float64, steps int) (Generator, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("datagen: scale %v out of (0,1]", scale)
	}
	switch name {
	case "jet":
		if steps == 0 {
			steps = 150
		}
		if scale == 1 {
			g := NewJet()
			g.steps = steps
			return g, nil
		}
		return NewJetScaled(scale, steps), nil
	case "vortex":
		if steps == 0 {
			steps = 100
		}
		if scale == 1 {
			g := NewVortex()
			g.steps = steps
			return g, nil
		}
		return NewVortexScaled(scale, steps), nil
	case "mixing":
		if steps == 0 {
			steps = 265
		}
		if scale == 1 {
			g := NewMixing()
			g.steps = steps
			return g, nil
		}
		return NewMixingScaled(scale, steps), nil
	}
	return nil, fmt.Errorf("datagen: unknown dataset %q (have jet, vortex, mixing)", name)
}

func scaleDims(d vol.Dims, s float64) vol.Dims {
	f := func(n int) int {
		m := int(math.Round(float64(n) * s))
		if m < 4 {
			m = 4
		}
		return m
	}
	return vol.Dims{NX: f(d.NX), NY: f(d.NY), NZ: f(d.NZ)}
}

func sq(x float64) float64 { return x * x }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// splitMix is a tiny deterministic PRNG (SplitMix64) so generators do
// not depend on math/rand ordering guarantees across Go versions.
type splitMix struct{ s uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{s: uint64(seed)*0x9e3779b97f4a7c15 + 1} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0,1).
func (r *splitMix) float() float64 { return float64(r.next()>>11) / (1 << 53) }
