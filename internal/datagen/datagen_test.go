package datagen

import (
	"math"
	"testing"

	"repro/internal/vol"
)

func TestPaperDims(t *testing.T) {
	if d := NewJet().Dims(); d != (vol.Dims{NX: 129, NY: 129, NZ: 104}) {
		t.Fatalf("jet dims %v", d)
	}
	if NewJet().Steps() != 150 {
		t.Fatal("jet steps")
	}
	if d := NewVortex().Dims(); d != (vol.Dims{NX: 128, NY: 128, NZ: 128}) {
		t.Fatalf("vortex dims %v", d)
	}
	if NewVortex().Steps() != 100 {
		t.Fatal("vortex steps")
	}
	if d := NewMixing().Dims(); d != (vol.Dims{NX: 640, NY: 256, NZ: 256}) {
		t.Fatalf("mixing dims %v", d)
	}
	if NewMixing().Steps() != 265 {
		t.Fatal("mixing steps")
	}
}

func gens(t *testing.T) []Generator {
	t.Helper()
	return []Generator{
		NewJetScaled(0.25, 5),
		NewVortexScaled(0.25, 5),
		NewMixingScaled(0.1, 5),
	}
}

func TestStepRange(t *testing.T) {
	for _, g := range gens(t) {
		if _, err := g.Step(-1); err == nil {
			t.Errorf("%s: want error for step -1", g.Name())
		}
		if _, err := g.Step(g.Steps()); err == nil {
			t.Errorf("%s: want error for step == Steps()", g.Name())
		}
	}
}

func TestStepDeterministic(t *testing.T) {
	for _, g := range gens(t) {
		a, err := g.Step(2)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		b, err := g.Step(2)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("%s: step 2 not deterministic", g.Name())
		}
	}
}

func TestStepsDiffer(t *testing.T) {
	for _, g := range gens(t) {
		a, _ := g.Step(0)
		b, _ := g.Step(4)
		if a.Equal(b) {
			t.Errorf("%s: steps 0 and 4 identical — no time evolution", g.Name())
		}
	}
}

func TestFieldsFiniteNonNegative(t *testing.T) {
	for _, g := range gens(t) {
		v, err := g.Step(1)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range v.Data {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				t.Fatalf("%s: non-finite value at %d", g.Name(), i)
			}
			if x < 0 {
				t.Fatalf("%s: negative magnitude %v at %d", g.Name(), x, i)
			}
		}
		if v.Max <= v.Min {
			t.Fatalf("%s: degenerate range [%v,%v]", g.Name(), v.Min, v.Max)
		}
	}
}

// The paper's compression evaluation relies on the jet being sparse and
// the vortex dense: verify the occupancy contrast (fraction of voxels
// above 35% of the field max).
func TestSparsityContrast(t *testing.T) {
	occupancy := func(g Generator) float64 {
		v, err := g.Step(2)
		if err != nil {
			t.Fatal(err)
		}
		thr := v.Min + 0.35*(v.Max-v.Min)
		n := 0
		for _, x := range v.Data {
			if x > thr {
				n++
			}
		}
		return float64(n) / float64(len(v.Data))
	}
	jet := occupancy(NewJetScaled(0.4, 5))
	vortex := occupancy(NewVortexScaled(0.4, 5))
	if jet >= vortex {
		t.Fatalf("jet occupancy %.3f should be well below vortex %.3f", jet, vortex)
	}
	if vortex < 0.15 {
		t.Fatalf("vortex occupancy %.3f too sparse for a dense dataset", vortex)
	}
	if jet > 0.25 {
		t.Fatalf("jet occupancy %.3f too dense for a sparse plume", jet)
	}
}

// Consecutive steps must be temporally coherent (small relative change)
// — the property that makes the datasets animations rather than noise.
func TestTemporalCoherence(t *testing.T) {
	// Use generators with enough steps that one step is a small
	// fraction of the run, as in the real datasets.
	coherent := []Generator{
		NewJetScaled(0.25, 50),
		NewVortexScaled(0.25, 50),
		NewMixingScaled(0.1, 50),
	}
	for _, g := range coherent {
		a, _ := g.Step(20)
		b, _ := g.Step(21)
		var diff, norm float64
		for i := range a.Data {
			d := float64(a.Data[i] - b.Data[i])
			diff += d * d
			norm += float64(a.Data[i]) * float64(a.Data[i])
		}
		rel := math.Sqrt(diff / (norm + 1e-12))
		if rel > 0.8 {
			t.Errorf("%s: relative step-to-step change %.2f — not coherent", g.Name(), rel)
		}
		if rel == 0 {
			t.Errorf("%s: steps identical", g.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"jet", "vortex", "mixing"} {
		g, err := ByName(name, 0.1, 3)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, g.Name())
		}
		if g.Steps() != 3 {
			t.Fatalf("steps = %d", g.Steps())
		}
	}
	if _, err := ByName("nope", 1, 0); err == nil {
		t.Fatal("want unknown dataset error")
	}
	if _, err := ByName("jet", 0, 0); err == nil {
		t.Fatal("want scale error")
	}
	if _, err := ByName("jet", 1.5, 0); err == nil {
		t.Fatal("want scale error")
	}
	// Default step counts at scale 1.
	g, err := ByName("vortex", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Steps() != 100 {
		t.Fatalf("default vortex steps = %d", g.Steps())
	}
}

func TestMixingShockProgression(t *testing.T) {
	g := NewMixingScaled(0.08, 20)
	// Mean velocity magnitude must grow as the shock sweeps in.
	early, _ := g.Step(1)
	late, _ := g.Step(18)
	if late.RMS() <= early.RMS() {
		t.Fatalf("shock progression missing: RMS %v -> %v", early.RMS(), late.RMS())
	}
}

func TestMixingVelocityMatchesScalar(t *testing.T) {
	g := NewMixingScaled(0.05, 5)
	v, err := g.Step(3)
	if err != nil {
		t.Fatal(err)
	}
	d := g.Dims()
	for _, p := range [][3]int{{0, 0, 0}, {d.NX / 2, d.NY / 2, d.NZ / 2}, {d.NX - 1, d.NY - 1, d.NZ - 1}} {
		vx, vy, vz := g.VelocityAt(3, p[0], p[1], p[2])
		want := float32(math.Sqrt(vx*vx + vy*vy + vz*vz))
		got := v.At(p[0], p[1], p[2])
		if math.Abs(float64(got-want)) > 1e-5 {
			t.Fatalf("at %v: scalar %v != |v| %v", p, got, want)
		}
	}
}

func TestSplitMixDeterministic(t *testing.T) {
	a, b := newSplitMix(42), newSplitMix(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("splitmix not deterministic")
		}
	}
	c := newSplitMix(43)
	if newSplitMix(42).next() == c.next() {
		t.Fatal("different seeds give same stream")
	}
	// floats in [0,1)
	r := newSplitMix(7)
	for i := 0; i < 1000; i++ {
		f := r.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
	}
}

func BenchmarkJetStep(b *testing.B) {
	g := NewJetScaled(0.5, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Step(i % g.Steps()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVortexStep(b *testing.B) {
	g := NewVortexScaled(0.5, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Step(i % g.Steps()); err != nil {
			b.Fatal(err)
		}
	}
}
