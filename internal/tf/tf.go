// Package tf implements transfer functions: the mapping from
// normalized scalar values to color and opacity used by the volume
// renderer. Transfer functions are built from piecewise-linear control
// points and baked into lookup tables for fast classification; they
// can be serialized so the remote viewer can push a new color map to
// the render server as a user-control event.
package tf

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Point is one control point: at normalized value V (in [0,1]) the
// transfer function takes color (R,G,B) and opacity A (all in [0,1]).
type Point struct {
	V          float32
	R, G, B, A float32
}

// TF is a piecewise-linear transfer function.
type TF struct {
	points []Point
	// lut is the baked lookup table, lutSize entries of RGBA.
	lut []float32
	// alphaMax[b] is the max opacity within LUT block b (for MaxAlpha
	// range queries).
	alphaMax []float32
}

// LUTSize is the number of entries in the baked classification table.
const LUTSize = 1024

// alphaBlock is the LUT block size of the opacity range-max index.
const alphaBlock = 32

// New builds a transfer function from control points. Points are
// sorted by V; at least two points are required, and V values are
// clamped into [0,1].
func New(points []Point) (*TF, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("tf: need at least 2 control points, got %d", len(points))
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	for i := range ps {
		ps[i].V = clamp01(ps[i].V)
		ps[i].R = clamp01(ps[i].R)
		ps[i].G = clamp01(ps[i].G)
		ps[i].B = clamp01(ps[i].B)
		ps[i].A = clamp01(ps[i].A)
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].V < ps[j].V })
	t := &TF{points: ps}
	t.bake()
	return t, nil
}

// MustNew is New but panics on error, for preset construction.
func MustNew(points []Point) *TF {
	t, err := New(points)
	if err != nil {
		panic(err)
	}
	return t
}

func clamp01(x float32) float32 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func (t *TF) bake() {
	t.lut = make([]float32, LUTSize*4)
	for i := 0; i < LUTSize; i++ {
		v := float32(i) / float32(LUTSize-1)
		r, g, b, a := t.evalExact(v)
		t.lut[i*4] = r
		t.lut[i*4+1] = g
		t.lut[i*4+2] = b
		t.lut[i*4+3] = a
	}
	t.alphaMax = make([]float32, (LUTSize+alphaBlock-1)/alphaBlock)
	for i := 0; i < LUTSize; i++ {
		b := i / alphaBlock
		if a := t.lut[i*4+3]; a > t.alphaMax[b] {
			t.alphaMax[b] = a
		}
	}
}

// evalExact evaluates the piecewise-linear function without the LUT.
func (t *TF) evalExact(v float32) (r, g, b, a float32) {
	ps := t.points
	if v <= ps[0].V {
		p := ps[0]
		return p.R, p.G, p.B, p.A
	}
	if v >= ps[len(ps)-1].V {
		p := ps[len(ps)-1]
		return p.R, p.G, p.B, p.A
	}
	// Binary search for the segment containing v.
	i := sort.Search(len(ps), func(i int) bool { return ps[i].V > v }) - 1
	p, q := ps[i], ps[i+1]
	span := q.V - p.V
	var f float32
	if span > 0 {
		f = (v - p.V) / span
	}
	return p.R + f*(q.R-p.R), p.G + f*(q.G-p.G), p.B + f*(q.B-p.B), p.A + f*(q.A-p.A)
}

// MaxAlpha returns the maximum opacity the transfer function assigns
// anywhere in the normalized value interval [lo, hi] — the query
// empty-space skipping needs to prove a region transparent. Answered
// in O(1) from block maxima over the baked table plus a short edge
// scan.
func (t *TF) MaxAlpha(lo, hi float32) float32 {
	if hi < lo {
		lo, hi = hi, lo
	}
	i0 := t.lutIndex(lo)
	i1 := t.lutIndex(hi)
	var m float32
	// Edge partial blocks.
	b0, b1 := i0/alphaBlock, i1/alphaBlock
	if b0 == b1 {
		for i := i0; i <= i1; i++ {
			if a := t.lut[i*4+3]; a > m {
				m = a
			}
		}
		return m
	}
	for i := i0; i < (b0+1)*alphaBlock; i++ {
		if a := t.lut[i*4+3]; a > m {
			m = a
		}
	}
	for i := b1 * alphaBlock; i <= i1; i++ {
		if a := t.lut[i*4+3]; a > m {
			m = a
		}
	}
	for b := b0 + 1; b < b1; b++ {
		if t.alphaMax[b] > m {
			m = t.alphaMax[b]
		}
	}
	return m
}

func (t *TF) lutIndex(v float32) int {
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	return int(v*float32(LUTSize-1) + 0.5)
}

// LUT exposes the baked classification table: LUTSize entries of
// premultiplied-input RGBA, indexed by round(v*(LUTSize-1)) after
// clamping v into [0,1] — exactly what Classify computes. The slice is
// shared and must be treated as read-only. A TF's table never changes
// after New; pushing a new transfer function builds a new TF (and a
// new table), which is the invalidation model the renderer's
// flat-lookup hot path relies on.
func (t *TF) LUT() []float32 { return t.lut }

// Classify maps a normalized value through the baked lookup table.
func (t *TF) Classify(v float32) (r, g, b, a float32) {
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	i := int(v*float32(LUTSize-1) + 0.5)
	return t.lut[i*4], t.lut[i*4+1], t.lut[i*4+2], t.lut[i*4+3]
}

// Points returns a copy of the control points.
func (t *TF) Points() []Point {
	out := make([]Point, len(t.points))
	copy(out, t.points)
	return out
}

// Marshal serializes the transfer function: uint32 point count, then
// 5 float32 per point, little-endian. This is the wire format used by
// the user-control channel.
func (t *TF) Marshal() []byte {
	buf := make([]byte, 4+len(t.points)*20)
	binary.LittleEndian.PutUint32(buf, uint32(len(t.points)))
	off := 4
	for _, p := range t.points {
		for _, f := range [5]float32{p.V, p.R, p.G, p.B, p.A} {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(f))
			off += 4
		}
	}
	return buf
}

// Unmarshal parses a transfer function from the wire format.
func Unmarshal(data []byte) (*TF, error) {
	if len(data) < 4 {
		return nil, io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n < 2 || n > 1<<16 {
		return nil, fmt.Errorf("tf: implausible point count %d", n)
	}
	if len(data) < 4+n*20 {
		return nil, io.ErrUnexpectedEOF
	}
	pts := make([]Point, n)
	off := 4
	for i := range pts {
		var f [5]float32
		for j := range f {
			f[j] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
			if math.IsNaN(float64(f[j])) || math.IsInf(float64(f[j]), 0) {
				return nil, fmt.Errorf("tf: non-finite value in point %d", i)
			}
			off += 4
		}
		pts[i] = Point{f[0], f[1], f[2], f[3], f[4]}
	}
	return New(pts)
}

// Presets matching the three test datasets' visual character.

// Jet is a transfer function for the turbulent-jet dataset: mostly
// transparent background with a warm ramp on high vorticity, giving
// the sparse flame-like images the paper's Figure 3 shows.
func Jet() *TF {
	return MustNew([]Point{
		{V: 0.00, R: 0, G: 0, B: 0, A: 0},
		{V: 0.25, R: 0, G: 0, B: 0.1, A: 0},
		{V: 0.45, R: 0.2, G: 0.1, B: 0.5, A: 0.05},
		{V: 0.65, R: 0.9, G: 0.3, B: 0.1, A: 0.25},
		{V: 0.85, R: 1.0, G: 0.8, B: 0.2, A: 0.6},
		{V: 1.00, R: 1.0, G: 1.0, B: 0.9, A: 0.9},
	})
}

// Vortex is a transfer function for the turbulent-vortex dataset: a
// lower opacity threshold so many more voxels contribute, producing
// the dense pixel coverage the paper reports makes these images
// compress worse.
func Vortex() *TF {
	return MustNew([]Point{
		{V: 0.00, R: 0.0, G: 0.0, B: 0.2, A: 0.0},
		{V: 0.15, R: 0.1, G: 0.3, B: 0.8, A: 0.08},
		{V: 0.40, R: 0.2, G: 0.8, B: 0.8, A: 0.2},
		{V: 0.60, R: 0.9, G: 0.9, B: 0.3, A: 0.4},
		{V: 0.80, R: 1.0, G: 0.5, B: 0.1, A: 0.7},
		{V: 1.00, R: 1.0, G: 1.0, B: 1.0, A: 0.95},
	})
}

// Mixing is a transfer function for the shock/bubble fluid-mixing
// dataset: the post-shock ambient flow (mid-range velocity magnitude)
// stays nearly transparent so the vortex ring and turbulent wake —
// the high-velocity structures — read through it.
func Mixing() *TF {
	return MustNew([]Point{
		{V: 0.00, R: 0.0, G: 0.0, B: 0.0, A: 0.0},
		{V: 0.52, R: 0.1, G: 0.2, B: 0.6, A: 0.0},
		{V: 0.62, R: 0.3, G: 0.7, B: 0.9, A: 0.02},
		{V: 0.78, R: 0.9, G: 0.6, B: 0.2, A: 0.25},
		{V: 0.90, R: 1.0, G: 0.3, B: 0.2, A: 0.7},
		{V: 1.00, R: 1.0, G: 0.9, B: 0.8, A: 0.95},
	})
}

// Grayscale is a simple ramp used by tests.
func Grayscale() *TF {
	return MustNew([]Point{
		{V: 0, R: 0, G: 0, B: 0, A: 0},
		{V: 1, R: 1, G: 1, B: 1, A: 1},
	})
}

// Preset returns a named preset transfer function.
func Preset(name string) (*TF, error) {
	switch name {
	case "jet":
		return Jet(), nil
	case "vortex":
		return Vortex(), nil
	case "mixing":
		return Mixing(), nil
	case "gray", "grayscale":
		return Grayscale(), nil
	}
	return nil, fmt.Errorf("tf: unknown preset %q (have jet, vortex, mixing, gray)", name)
}
