package tf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRequiresTwoPoints(t *testing.T) {
	if _, err := New([]Point{{V: 0}}); err == nil {
		t.Fatal("want error for 1 point")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("want error for nil")
	}
}

func TestClassifyEndpoints(t *testing.T) {
	g := Grayscale()
	r, _, _, a := g.Classify(0)
	if r != 0 || a != 0 {
		t.Fatalf("Classify(0) = %v,%v", r, a)
	}
	r, _, _, a = g.Classify(1)
	if r != 1 || a != 1 {
		t.Fatalf("Classify(1) = %v,%v", r, a)
	}
}

func TestClassifyMidpointLinear(t *testing.T) {
	g := Grayscale()
	r, gg, b, a := g.Classify(0.5)
	for _, v := range []float32{r, gg, b, a} {
		if math.Abs(float64(v)-0.5) > 2.0/LUTSize {
			t.Fatalf("Classify(0.5) = %v, want ~0.5", v)
		}
	}
}

func TestClassifyClampsInput(t *testing.T) {
	g := Grayscale()
	r0, _, _, _ := g.Classify(-3)
	r1, _, _, _ := g.Classify(7)
	if r0 != 0 || r1 != 1 {
		t.Fatalf("clamp failed: %v %v", r0, r1)
	}
}

func TestUnsortedPointsAreSorted(t *testing.T) {
	u := MustNew([]Point{
		{V: 1, R: 1, G: 1, B: 1, A: 1},
		{V: 0, R: 0, G: 0, B: 0, A: 0},
	})
	r, _, _, _ := u.Classify(1)
	if r != 1 {
		t.Fatalf("sorting failed, Classify(1).R = %v", r)
	}
}

func TestValuesClampedIntoUnit(t *testing.T) {
	u := MustNew([]Point{
		{V: -2, R: -1, G: 2, B: 0.5, A: 3},
		{V: 5, R: 0, G: 0, B: 0, A: 0},
	})
	pts := u.Points()
	if pts[0].V != 0 || pts[0].R != 0 || pts[0].G != 1 || pts[0].A != 1 {
		t.Fatalf("clamping failed: %+v", pts[0])
	}
	if pts[1].V != 1 {
		t.Fatalf("V clamp failed: %+v", pts[1])
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, name := range []string{"jet", "vortex", "mixing", "gray"} {
		orig, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(orig.Marshal())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		op, gp := orig.Points(), got.Points()
		if len(op) != len(gp) {
			t.Fatalf("%s: point count %d != %d", name, len(gp), len(op))
		}
		for i := range op {
			if op[i] != gp[i] {
				t.Fatalf("%s: point %d: %+v != %+v", name, i, gp[i], op[i])
			}
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("want error for empty")
	}
	if _, err := Unmarshal([]byte{1, 0, 0, 0}); err == nil {
		t.Fatal("want error for count 1")
	}
	if _, err := Unmarshal([]byte{2, 0, 0, 0, 1, 2, 3}); err == nil {
		t.Fatal("want error for truncated points")
	}
	// NaN payload.
	tfn := Grayscale()
	b := tfn.Marshal()
	b[4], b[5], b[6], b[7] = 0, 0, 0xc0, 0x7f // NaN little-endian
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("want error for NaN value")
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("nope"); err == nil {
		t.Fatal("want error for unknown preset")
	}
}

// Property: classification output always lies in [0,1]^4 and opacity
// is monotone for the monotone grayscale ramp.
func TestClassifyRangeProperty(t *testing.T) {
	j := Jet()
	f := func(x uint16) bool {
		v := float32(x) / 65535
		r, g, b, a := j.Classify(v)
		for _, c := range []float32{r, g, b, a} {
			if c < 0 || c > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestGrayscaleMonotone(t *testing.T) {
	g := Grayscale()
	prev := float32(-1)
	for i := 0; i <= 100; i++ {
		_, _, _, a := g.Classify(float32(i) / 100)
		if a < prev {
			t.Fatalf("opacity not monotone at %d: %v < %v", i, a, prev)
		}
		prev = a
	}
}

func TestLUTMatchesExactEvaluation(t *testing.T) {
	j := Vortex()
	for i := 0; i <= 200; i++ {
		v := float32(i) / 200
		lr, lg, lb, la := j.Classify(v)
		er, eg, eb, ea := j.evalExact(v)
		tol := float32(2.0 / LUTSize * 4) // LUT quantization error bound
		for k, pair := range [][2]float32{{lr, er}, {lg, eg}, {lb, eb}, {la, ea}} {
			if d := pair[0] - pair[1]; d > tol || d < -tol {
				t.Fatalf("v=%v channel %d: lut %v vs exact %v", v, k, pair[0], pair[1])
			}
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	j := Jet()
	b.ReportAllocs()
	var s float32
	for i := 0; i < b.N; i++ {
		_, _, _, a := j.Classify(float32(i%1000) / 1000)
		s += a
	}
	_ = s
}

func TestMaxAlpha(t *testing.T) {
	// Opacity 0 below 0.5, ramping to 1 above.
	u := MustNew([]Point{
		{V: 0, A: 0},
		{V: 0.5, A: 0},
		{V: 1, A: 1},
	})
	if got := u.MaxAlpha(0, 0.4); got != 0 {
		t.Fatalf("MaxAlpha(0,0.4) = %v, want 0", got)
	}
	if got := u.MaxAlpha(0, 1); got < 0.99 {
		t.Fatalf("MaxAlpha(0,1) = %v, want ~1", got)
	}
	mid := u.MaxAlpha(0.5, 0.75)
	if mid < 0.45 || mid > 0.55 {
		t.Fatalf("MaxAlpha(0.5,0.75) = %v, want ~0.5", mid)
	}
	// Reversed and out-of-range arguments behave.
	if u.MaxAlpha(0.4, 0) != u.MaxAlpha(0, 0.4) {
		t.Fatal("reversed range differs")
	}
	if got := u.MaxAlpha(-5, 0.4); got != 0 {
		t.Fatalf("clamped low = %v", got)
	}
	// Narrow in-block range.
	if got := u.MaxAlpha(0.9, 0.9); got < 0.75 {
		t.Fatalf("point query = %v", got)
	}
}

// MaxAlpha must upper-bound Classify's alpha over the range.
func TestMaxAlphaBoundsClassify(t *testing.T) {
	j := Jet()
	for lo := float32(0); lo < 1; lo += 0.07 {
		for hi := lo; hi <= 1; hi += 0.11 {
			bound := j.MaxAlpha(lo, hi)
			for v := lo; v <= hi; v += 0.005 {
				_, _, _, a := j.Classify(v)
				if a > bound+1e-6 {
					t.Fatalf("Classify(%v).A = %v > MaxAlpha(%v,%v) = %v", v, a, lo, hi, bound)
				}
			}
		}
	}
}
