// Package testutil holds shared test helpers. The only resident today
// is the goroutine-leak checker: transport, relay and stream tests end
// with a CheckGoroutines teardown so a session reader left blocked on a
// dead conn, or a sender that never drained, fails the test that leaked
// it instead of the unlucky one that runs next.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// goroutines parses a full runtime stack dump into one entry per
// goroutine: its numeric ID and its stack body.
func goroutines() map[int64]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := map[int64]string{}
	for _, g := range strings.Split(string(buf), "\n\n") {
		// Header: "goroutine 123 [chan receive]:"
		rest, ok := strings.CutPrefix(g, "goroutine ")
		if !ok {
			continue
		}
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			continue
		}
		id, err := strconv.ParseInt(rest[:sp], 10, 64)
		if err != nil {
			continue
		}
		out[id] = g
	}
	return out
}

// interesting reports whether a leaked goroutine's stack implicates
// this repo. Runtime-internal and testing-harness goroutines churn on
// their own schedule and are never ours to account for.
func interesting(stack string) bool {
	if !strings.Contains(stack, "repro/") {
		return false
	}
	for _, benign := range []string{
		"testing.(*T).Run",    // subtest parents parked in Run
		"runtime.gc",          // collector helpers
		"testing.runFuzzing",  // fuzz workers
		"testutil.goroutines", // the checker itself
	} {
		if strings.Contains(stack, benign) {
			return false
		}
	}
	return true
}

// CheckGoroutines snapshots the live goroutines and registers a
// t.Cleanup teardown: after the test body AND all later-registered
// cleanups (the Closes) have run, it polls (up to ~2s, letting closes
// finish unwinding) until every goroutine started during the test that
// runs repro/ code has exited, and fails the test with the leaked
// stacks otherwise. Call it first thing in the test:
//
//	func TestX(t *testing.T) {
//		testutil.CheckGoroutines(t)
//		...
//	}
func CheckGoroutines(t *testing.T) {
	t.Helper()
	before := goroutines()
	t.Cleanup(func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, stack := range goroutines() {
				if _, old := before[id]; old {
					continue
				}
				if interesting(stack) {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		sort.Strings(leaked)
		t.Errorf("%d goroutine(s) leaked by this test:\n\n%s",
			len(leaked), fmt.Sprint(strings.Join(leaked, "\n\n")))
	})
}
