package volio

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/vol"
)

func writeTestDataset(t *testing.T, steps int) (string, datagen.Generator) {
	t.Helper()
	g := datagen.NewJetScaled(0.15, steps)
	path := filepath.Join(t.TempDir(), "jet.tvv")
	if err := WriteDataset(path, g); err != nil {
		t.Fatal(err)
	}
	return path, g
}

func TestWriteReadRoundTrip(t *testing.T) {
	path, g := writeTestDataset(t, 4)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	hdr := r.Header()
	if hdr.Dims != g.Dims() || hdr.Steps != 4 {
		t.Fatalf("header %+v", hdr)
	}
	for s := 0; s < 4; s++ {
		want, err := g.Step(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadStep(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("step %d voxel %d: %v != %v", s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestHeaderRangeCoversSteps(t *testing.T) {
	path, _ := writeTestDataset(t, 4)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	hdr := r.Header()
	v, err := r.ReadStep(0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Min != hdr.Min || v.Max != hdr.Max {
		t.Fatalf("ReadStep range [%v,%v] != header [%v,%v]", v.Min, v.Max, hdr.Min, hdr.Max)
	}
}

func TestReadStepErrors(t *testing.T) {
	path, _ := writeTestDataset(t, 3)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadStep(-1); err == nil {
		t.Fatal("want range error")
	}
	if _, err := r.ReadStep(3); err == nil {
		t.Fatal("want range error")
	}
	bad := vol.MustNew(vol.Dims{NX: 2, NY: 2, NZ: 2})
	if err := r.ReadStepInto(0, bad); err == nil {
		t.Fatal("want dims mismatch error")
	}
}

func TestReadRegionMatchesFull(t *testing.T) {
	path, _ := writeTestDataset(t, 2)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	full, err := r.ReadStep(1)
	if err != nil {
		t.Fatal(err)
	}
	d := r.Header().Dims
	box := vol.Box{X0: 1, Y0: 2, Z0: 3, X1: d.NX - 1, Y1: d.NY - 2, Z1: d.NZ - 3}
	sub, err := r.ReadRegion(1, box)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Dims != box.Dims() {
		t.Fatalf("region dims %v != %v", sub.Dims, box.Dims())
	}
	for z := box.Z0; z < box.Z1; z++ {
		for y := box.Y0; y < box.Y1; y++ {
			for x := box.X0; x < box.X1; x++ {
				if got, want := sub.At(x-box.X0, y-box.Y0, z-box.Z0), full.At(x, y, z); got != want {
					t.Fatalf("region mismatch at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestReadRegionErrors(t *testing.T) {
	path, _ := writeTestDataset(t, 2)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadRegion(5, vol.Box{X1: 1, Y1: 1, Z1: 1}); err == nil {
		t.Fatal("want step range error")
	}
	d := r.Header().Dims
	if _, err := r.ReadRegion(0, vol.Box{X0: d.NX, X1: d.NX + 2, Y1: 1, Z1: 1}); err == nil {
		t.Fatal("want empty region error")
	}
}

func TestThrottleSlowsReads(t *testing.T) {
	path, _ := writeTestDataset(t, 2)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	stepBytes := float64(r.Header().StepBytes())
	// Rate such that one step takes ~50ms.
	r.SetRate(stepBytes / 0.05)
	start := time.Now()
	if _, err := r.ReadStep(0); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("throttled read took %v, want >= ~50ms", el)
	}
}

func TestOpenRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bad")
	if err := os.WriteFile(p, []byte("not a dataset"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); err == nil {
		t.Fatal("want error for garbage file")
	}
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestCreateValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(filepath.Join(dir, "x"), Header{Dims: vol.Dims{}, Steps: 1}); err == nil {
		t.Fatal("want invalid dims error")
	}
	if _, err := Create(filepath.Join(dir, "x"), Header{Dims: vol.Dims{NX: 2, NY: 2, NZ: 2}, Steps: 0}); err == nil {
		t.Fatal("want invalid steps error")
	}
}

func TestWriterEnforcesContract(t *testing.T) {
	dir := t.TempDir()
	hdr := Header{Dims: vol.Dims{NX: 2, NY: 2, NZ: 2}, Steps: 2}
	w, err := Create(filepath.Join(dir, "x"), hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteStep(vol.MustNew(vol.Dims{NX: 3, NY: 2, NZ: 2})); err == nil {
		t.Fatal("want dims mismatch error")
	}
	v := vol.MustNew(hdr.Dims)
	if err := w.WriteStep(v); err != nil {
		t.Fatal(err)
	}
	// Closing with a missing step must fail.
	if err := w.Close(); err == nil {
		t.Fatal("want missing-steps error")
	}
	w2, err := Create(filepath.Join(dir, "y"), Header{Dims: hdr.Dims, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteStep(v); err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteStep(v); err == nil {
		t.Fatal("want too-many-steps error")
	}
}

func TestGenStore(t *testing.T) {
	g := datagen.NewVortexScaled(0.1, 6)
	s := NewGenStore(g)
	if s.Dims() != g.Dims() || s.Steps() != 6 {
		t.Fatal("GenStore metadata mismatch")
	}
	a, err := s.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Fetch(5)
	if err != nil {
		t.Fatal(err)
	}
	// Global range identical on every fetch.
	if a.Min != b.Min || a.Max != b.Max {
		t.Fatalf("global range differs: [%v,%v] vs [%v,%v]", a.Min, a.Max, b.Min, b.Max)
	}
	// Values inside the advertised range.
	for _, x := range a.Data {
		if x < a.Min-1e-5 || x > a.Max+1e-5 {
			// Range is probed from a sample of steps, so a slight
			// overshoot is possible; require it to be small.
			if math.Abs(float64(x-a.Max)) > 0.25*float64(a.Max-a.Min) {
				t.Fatalf("value %v far outside probed range [%v,%v]", x, a.Min, a.Max)
			}
		}
	}
	if _, err := s.Fetch(6); err == nil {
		t.Fatal("want step range error")
	}
}

func TestFileStoreImplementsStore(t *testing.T) {
	path, g := writeTestDataset(t, 2)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var s Store = FileStore{R: r}
	if s.Dims() != g.Dims() || s.Steps() != 2 {
		t.Fatal("FileStore metadata mismatch")
	}
	if _, err := s.Fetch(1); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReadStep(b *testing.B) {
	g := datagen.NewJetScaled(0.3, 2)
	path := filepath.Join(b.TempDir(), "bench.tvv")
	if err := WriteDataset(path, g); err != nil {
		b.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	v := vol.MustNew(r.Header().Dims)
	b.SetBytes(r.Header().StepBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.ReadStepInto(i%2, v); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStridedStore(t *testing.T) {
	g := datagen.NewJetScaled(0.1, 10)
	base := NewGenStore(g)
	s := Strided(base, 3)
	if s.Steps() != 4 { // ceil(10/3)
		t.Fatalf("strided steps = %d", s.Steps())
	}
	if s.Dims() != base.Dims() {
		t.Fatal("dims changed")
	}
	// Step 2 of the view is step 6 of the base.
	got, err := s.Fetch(2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Fetch(6)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("strided fetch mismatch")
	}
	if _, err := s.Fetch(4); err == nil {
		t.Fatal("out-of-range strided fetch accepted")
	}
	// k <= 1 returns the base store unchanged.
	if Strided(base, 1) != Store(base) {
		t.Fatal("stride 1 must be identity")
	}
}

func TestStridedRegionReads(t *testing.T) {
	path, _ := writeTestDataset(t, 6)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var base Store = FileStore{R: r}
	s := Strided(base, 2).(RegionStore)
	d := r.Header().Dims
	box := vol.Box{X1: d.NX / 2, Y1: d.NY / 2, Z1: d.NZ / 2}
	got, err := s.FetchRegion(1, box) // = base step 2
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.ReadRegion(2, box)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("strided region read mismatch")
	}
	if _, err := s.FetchRegion(9, box); err == nil {
		t.Fatal("out-of-range strided region accepted")
	}
	// Base without region support errors cleanly.
	s2 := Strided(opaqueStore{base}, 2).(RegionStore)
	if _, err := s2.FetchRegion(0, box); err == nil {
		t.Fatal("regionless base accepted")
	}
}

// opaqueStore hides region reads.
type opaqueStore struct{ s Store }

func (o opaqueStore) Dims() vol.Dims                   { return o.s.Dims() }
func (o opaqueStore) Steps() int                       { return o.s.Steps() }
func (o opaqueStore) Fetch(t int) (*vol.Volume, error) { return o.s.Fetch(t) }
