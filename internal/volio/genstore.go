package volio

import (
	"fmt"
	"sync"

	"repro/internal/datagen"
	"repro/internal/vol"
)

// GenStore serves time steps straight from a synthetic generator,
// standing in for the mass-storage device when no file has been
// written. The global value range is estimated once from a sample of
// steps so all nodes classify consistently, mirroring the header range
// of a FileStore.
type GenStore struct {
	G datagen.Generator

	once     sync.Once
	min, max float32
	rangeErr error
}

// NewGenStore wraps a generator as a Store.
func NewGenStore(g datagen.Generator) *GenStore { return &GenStore{G: g} }

// Dims implements Store.
func (s *GenStore) Dims() vol.Dims { return s.G.Dims() }

// Steps implements Store.
func (s *GenStore) Steps() int { return s.G.Steps() }

// Fetch implements Store.
func (s *GenStore) Fetch(t int) (*vol.Volume, error) {
	if err := s.globalRange(); err != nil {
		return nil, err
	}
	v, err := s.G.Step(t)
	if err != nil {
		return nil, err
	}
	v.Min, v.Max = s.min, s.max
	return v, nil
}

// FetchRegion implements RegionStore: the generator synthesizes the
// full step and cuts the region (a generator has no storage layout to
// exploit, but the interface lets pipelines exercise the parallel-I/O
// path against synthetic data).
func (s *GenStore) FetchRegion(t int, box vol.Box) (*vol.Volume, error) {
	v, err := s.Fetch(t)
	if err != nil {
		return nil, err
	}
	br, err := v.Extract(box, 0)
	if err != nil {
		return nil, err
	}
	sub := br.Data
	sub.Min, sub.Max = v.Min, v.Max
	return sub, nil
}

// globalRange samples first/middle/last steps to fix a dataset-wide
// value range.
func (s *GenStore) globalRange() error {
	s.once.Do(func() {
		probes := []int{0, s.G.Steps() / 2, s.G.Steps() - 1}
		first := true
		for _, t := range probes {
			v, err := s.G.Step(t)
			if err != nil {
				s.rangeErr = fmt.Errorf("volio: probing range at step %d: %w", t, err)
				return
			}
			if first || v.Min < s.min {
				s.min = v.Min
			}
			if first || v.Max > s.max {
				s.max = v.Max
			}
			first = false
		}
	})
	return s.rangeErr
}

// Strided views a store at every k-th time step — the paper's §7.1
// preview mode ("certain time steps can be skipped during a
// previewing mode"). Step i of the view is step i*k of the base.
func Strided(s Store, k int) Store {
	if k <= 1 {
		return s
	}
	return stridedStore{base: s, k: k}
}

type stridedStore struct {
	base Store
	k    int
}

func (s stridedStore) Dims() vol.Dims { return s.base.Dims() }

func (s stridedStore) Steps() int { return (s.base.Steps() + s.k - 1) / s.k }

func (s stridedStore) Fetch(t int) (*vol.Volume, error) {
	if t < 0 || t >= s.Steps() {
		return nil, fmt.Errorf("volio: strided step %d out of range [0,%d)", t, s.Steps())
	}
	return s.base.Fetch(t * s.k)
}

// FetchRegion delegates to the base store when it supports region
// reads, preserving the parallel-I/O capability across striding.
func (s stridedStore) FetchRegion(t int, box vol.Box) (*vol.Volume, error) {
	if t < 0 || t >= s.Steps() {
		return nil, fmt.Errorf("volio: strided step %d out of range [0,%d)", t, s.Steps())
	}
	rs, ok := s.base.(RegionStore)
	if !ok {
		return nil, fmt.Errorf("volio: base store %T has no region reads", s.base)
	}
	return rs.FetchRegion(t*s.k, box)
}

// WriteDataset generates every step of g into a dataset file at path.
// It runs a range prepass over sampled steps, as a real conversion
// tool would.
func WriteDataset(path string, g datagen.Generator) error {
	gs := NewGenStore(g)
	if err := gs.globalRange(); err != nil {
		return err
	}
	w, err := Create(path, Header{Dims: g.Dims(), Steps: g.Steps(), Min: gs.min, Max: gs.max})
	if err != nil {
		return err
	}
	for t := 0; t < g.Steps(); t++ {
		v, err := g.Step(t)
		if err != nil {
			w.Close()
			return err
		}
		if err := w.WriteStep(v); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
