// Package volio stores time-varying volume datasets on disk and reads
// them back step by step, the "data input" stage of the paper's
// pipeline. The format is a fixed header followed by raw little-endian
// float32 time steps, so a step can be read with one contiguous
// sequential read — exactly the access pattern of the paper's setting
// without parallel I/O.
//
// A Reader can be throttled to a byte rate to model the mass-storage
// and LAN path between the storage device and the parallel machine.
package volio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/vol"
)

// Magic identifies the file format ("TVV1": time-varying volume v1).
const Magic = 0x54565631

// headerSize is the fixed byte size of the file header.
const headerSize = 4 + 4 + 4*3 + 4 + 8 + 8 // magic, version, dims, steps, min, max (float64)

// Header describes a stored dataset.
type Header struct {
	Dims  vol.Dims
	Steps int
	// Min and Max are the global value range across all steps, so
	// every node classifies identically without a prepass.
	Min, Max float32
}

// StepBytes returns the byte size of one stored time step.
func (h Header) StepBytes() int64 { return h.Dims.Bytes() }

// Writer streams time steps of a dataset into a file.
type Writer struct {
	f       *os.File
	bw      *bufio.Writer
	hdr     Header
	written int
}

// Create opens path for writing a dataset with the given header. The
// header's Min/Max must cover all steps' values (use a generator
// prepass or a known bound); they are written up front.
func Create(path string, hdr Header) (*Writer, error) {
	if !hdr.Dims.Valid() || hdr.Steps < 1 {
		return nil, fmt.Errorf("volio: invalid header %+v", hdr)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<20), hdr: hdr}
	var buf [headerSize]byte
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	binary.LittleEndian.PutUint32(buf[4:], 1)
	binary.LittleEndian.PutUint32(buf[8:], uint32(hdr.Dims.NX))
	binary.LittleEndian.PutUint32(buf[12:], uint32(hdr.Dims.NY))
	binary.LittleEndian.PutUint32(buf[16:], uint32(hdr.Dims.NZ))
	binary.LittleEndian.PutUint32(buf[20:], uint32(hdr.Steps))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(float64(hdr.Min)))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(float64(hdr.Max)))
	if _, err := w.bw.Write(buf[:]); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// WriteStep appends one time step; volumes must match the header dims
// and arrive in order.
func (w *Writer) WriteStep(v *vol.Volume) error {
	if v.Dims != w.hdr.Dims {
		return fmt.Errorf("volio: step dims %v != header %v", v.Dims, w.hdr.Dims)
	}
	if w.written >= w.hdr.Steps {
		return fmt.Errorf("volio: already wrote %d steps", w.hdr.Steps)
	}
	var b [4]byte
	for _, x := range v.Data {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(x))
		if _, err := w.bw.Write(b[:]); err != nil {
			return err
		}
	}
	w.written++
	return nil
}

// Close flushes and closes the file; it fails if fewer steps than
// promised were written.
func (w *Writer) Close() error {
	flushErr := w.bw.Flush()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	if closeErr != nil {
		return closeErr
	}
	if w.written != w.hdr.Steps {
		return fmt.Errorf("volio: wrote %d of %d steps", w.written, w.hdr.Steps)
	}
	return nil
}

// Reader reads time steps of a stored dataset, optionally throttled.
type Reader struct {
	f   *os.File
	hdr Header
	// rate limits reads to this many bytes per second; 0 = unlimited.
	rate float64
}

// Open opens a dataset file for reading.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var buf [headerSize]byte
	if _, err := io.ReadFull(f, buf[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("volio: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		f.Close()
		return nil, errors.New("volio: bad magic")
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != 1 {
		f.Close()
		return nil, fmt.Errorf("volio: unsupported version %d", v)
	}
	hdr := Header{
		Dims: vol.Dims{
			NX: int(binary.LittleEndian.Uint32(buf[8:])),
			NY: int(binary.LittleEndian.Uint32(buf[12:])),
			NZ: int(binary.LittleEndian.Uint32(buf[16:])),
		},
		Steps: int(binary.LittleEndian.Uint32(buf[20:])),
		Min:   float32(math.Float64frombits(binary.LittleEndian.Uint64(buf[24:]))),
		Max:   float32(math.Float64frombits(binary.LittleEndian.Uint64(buf[32:]))),
	}
	if !hdr.Dims.Valid() || hdr.Steps < 1 {
		f.Close()
		return nil, fmt.Errorf("volio: corrupt header %+v", hdr)
	}
	return &Reader{f: f, hdr: hdr}, nil
}

// Header returns the dataset header.
func (r *Reader) Header() Header { return r.hdr }

// SetRate throttles subsequent reads to bytesPerSec (0 disables).
func (r *Reader) SetRate(bytesPerSec float64) { r.rate = bytesPerSec }

// ReadStep reads time step t into a fresh volume. Safe for concurrent
// use by multiple goroutines (uses positional reads).
func (r *Reader) ReadStep(t int) (*vol.Volume, error) {
	v, err := vol.New(r.hdr.Dims)
	if err != nil {
		return nil, err
	}
	if err := r.ReadStepInto(t, v); err != nil {
		return nil, err
	}
	return v, nil
}

// ReadStepInto reads time step t into an existing volume, avoiding
// allocation in steady-state pipelines.
func (r *Reader) ReadStepInto(t int, v *vol.Volume) error {
	if t < 0 || t >= r.hdr.Steps {
		return fmt.Errorf("volio: step %d out of range [0,%d)", t, r.hdr.Steps)
	}
	if v.Dims != r.hdr.Dims {
		return fmt.Errorf("volio: volume dims %v != dataset %v", v.Dims, r.hdr.Dims)
	}
	start := time.Now()
	off := int64(headerSize) + int64(t)*r.hdr.StepBytes()
	buf := make([]byte, r.hdr.StepBytes())
	if _, err := r.f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("volio: reading step %d: %w", t, err)
	}
	for i := range v.Data {
		v.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	v.Min, v.Max = r.hdr.Min, r.hdr.Max
	r.throttle(len(buf), start)
	return nil
}

// ReadRegion reads only the grid points of box from step t — the
// distribution pattern where each node pulls its own subvolume. It
// issues one positional read per (y,z) row, the scattered access that
// makes non-parallel I/O expensive for 3D distributions.
func (r *Reader) ReadRegion(t int, box vol.Box) (*vol.Volume, error) {
	if t < 0 || t >= r.hdr.Steps {
		return nil, fmt.Errorf("volio: step %d out of range [0,%d)", t, r.hdr.Steps)
	}
	full := vol.Box{X1: r.hdr.Dims.NX, Y1: r.hdr.Dims.NY, Z1: r.hdr.Dims.NZ}
	box = box.Intersect(full)
	if box.Empty() {
		return nil, errors.New("volio: empty region")
	}
	start := time.Now()
	sub, err := vol.New(box.Dims())
	if err != nil {
		return nil, err
	}
	base := int64(headerSize) + int64(t)*r.hdr.StepBytes()
	rowBytes := int64(box.X1-box.X0) * 4
	buf := make([]byte, rowBytes)
	total := 0
	di := 0
	for z := box.Z0; z < box.Z1; z++ {
		for y := box.Y0; y < box.Y1; y++ {
			off := base + 4*int64(box.X0+r.hdr.Dims.NX*(y+r.hdr.Dims.NY*z))
			if _, err := r.f.ReadAt(buf, off); err != nil {
				return nil, fmt.Errorf("volio: region read: %w", err)
			}
			for i := 0; int64(i) < rowBytes/4; i++ {
				sub.Data[di] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
				di++
			}
			total += int(rowBytes)
		}
	}
	sub.Min, sub.Max = r.hdr.Min, r.hdr.Max
	r.throttle(total, start)
	return sub, nil
}

// throttle sleeps long enough that n bytes took at least n/rate
// seconds since start.
func (r *Reader) throttle(n int, start time.Time) {
	if r.rate <= 0 {
		return
	}
	want := time.Duration(float64(n) / r.rate * float64(time.Second))
	if elapsed := time.Since(start); elapsed < want {
		time.Sleep(want - elapsed)
	}
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// Store abstracts "where time steps come from" for the render
// pipeline: a file on the mass-storage device, or a generator standing
// in for one.
type Store interface {
	Dims() vol.Dims
	Steps() int
	// Fetch returns time step t with Min/Max set to the global range.
	Fetch(t int) (*vol.Volume, error)
}

// RegionStore is a Store that can read a subvolume of a time step
// directly from storage — the access pattern parallel I/O enables
// (§7.1): every node pulls its own brick concurrently instead of one
// node reading the whole step and scattering it.
type RegionStore interface {
	Store
	// FetchRegion returns the grid points of box from step t, with
	// Min/Max set to the global range.
	FetchRegion(t int, box vol.Box) (*vol.Volume, error)
}

// FileStore adapts a Reader to the Store interface.
type FileStore struct{ R *Reader }

// Dims implements Store.
func (s FileStore) Dims() vol.Dims { return s.R.Header().Dims }

// Steps implements Store.
func (s FileStore) Steps() int { return s.R.Header().Steps }

// Fetch implements Store.
func (s FileStore) Fetch(t int) (*vol.Volume, error) { return s.R.ReadStep(t) }

// FetchRegion implements RegionStore via positional row reads.
func (s FileStore) FetchRegion(t int, box vol.Box) (*vol.Volume, error) {
	return s.R.ReadRegion(t, box)
}
