package img

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"testing"
	"testing/quick"
)

func TestRGBASetAt(t *testing.T) {
	im := NewRGBA(4, 3)
	im.Set(2, 1, 0.1, 0.2, 0.3, 0.4)
	r, g, b, a := im.At(2, 1)
	if r != 0.1 || g != 0.2 || b != 0.3 || a != 0.4 {
		t.Fatalf("got %v %v %v %v", r, g, b, a)
	}
}

func TestOverPixelOpaqueFrontWins(t *testing.T) {
	dst := []float32{0.5, 0.25, 0, 1} // opaque front
	src := []float32{1, 1, 1, 1}
	OverPixel(dst, src)
	if dst[0] != 0.5 || dst[3] != 1 {
		t.Fatalf("opaque front changed: %v", dst)
	}
}

func TestOverPixelTransparentFrontPassesBack(t *testing.T) {
	dst := []float32{0, 0, 0, 0}
	src := []float32{0.3, 0.6, 0.9, 0.5}
	OverPixel(dst, src)
	if dst[0] != 0.3 || dst[1] != 0.6 || dst[2] != 0.9 || dst[3] != 0.5 {
		t.Fatalf("transparent front did not pass back: %v", dst)
	}
}

// The over operator must be associative: (a over b) over c == a over (b over c).
func TestOverAssociativityProperty(t *testing.T) {
	f := func(av, bv, cv [4]uint8) bool {
		mk := func(v [4]uint8) []float32 {
			a := float32(v[3]) / 255
			// Premultiplied: color channels cannot exceed alpha.
			return []float32{float32(v[0]) / 255 * a, float32(v[1]) / 255 * a, float32(v[2]) / 255 * a, a}
		}
		a1, b1, c1 := mk(av), mk(bv), mk(cv)
		a2 := append([]float32(nil), a1...)
		b2 := append([]float32(nil), b1...)
		c2 := append([]float32(nil), c1...)

		// Left: (a over b) over c.
		OverPixel(a1, b1)
		OverPixel(a1, c1)
		// Right: a over (b over c).
		OverPixel(b2, c2)
		OverPixel(a2, b2)
		for i := 0; i < 4; i++ {
			if math.Abs(float64(a1[i]-a2[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOverImageSizeMismatch(t *testing.T) {
	if err := NewRGBA(2, 2).Over(NewRGBA(3, 2)); err == nil {
		t.Fatal("want size mismatch error")
	}
}

func TestToFrameBackgroundBlend(t *testing.T) {
	im := NewRGBA(1, 1)
	im.Set(0, 0, 0, 0, 0, 0) // fully transparent
	f := im.ToFrame(1.0)     // white background
	r, g, b := f.At(0, 0)
	if r != 255 || g != 255 || b != 255 {
		t.Fatalf("transparent over white = %d,%d,%d", r, g, b)
	}
	im.Set(0, 0, 0.5, 0.5, 0.5, 1) // opaque gray
	f = im.ToFrame(0)
	r, _, _ = f.At(0, 0)
	if r != 128 {
		t.Fatalf("opaque 0.5 quantized to %d, want 128", r)
	}
}

func TestQuantizeClamps(t *testing.T) {
	if quantize(-1) != 0 || quantize(2) != 255 || quantize(0) != 0 || quantize(1) != 255 {
		t.Fatal("quantize clamp failure")
	}
}

func TestSubFrameBlitRoundTrip(t *testing.T) {
	f := NewFrame(16, 12)
	rng := rand.New(rand.NewSource(3))
	for i := range f.Pix {
		f.Pix[i] = byte(rng.Intn(256))
	}
	r := Region{3, 2, 11, 9}
	sub, err := f.SubFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	if sub.W != 8 || sub.H != 7 {
		t.Fatalf("sub dims %dx%d", sub.W, sub.H)
	}
	g := NewFrame(16, 12)
	if err := g.Blit(sub, r); err != nil {
		t.Fatal(err)
	}
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			ar, ag, ab := f.At(x, y)
			br, bg, bb := g.At(x, y)
			if ar != br || ag != bg || ab != bb {
				t.Fatalf("pixel (%d,%d) mismatch", x, y)
			}
		}
	}
}

func TestSubFrameErrors(t *testing.T) {
	f := NewFrame(4, 4)
	if _, err := f.SubFrame(Region{0, 0, 5, 4}); err == nil {
		t.Fatal("want out-of-bounds error")
	}
	if _, err := f.SubFrame(Region{2, 2, 2, 4}); err == nil {
		t.Fatal("want empty-region error")
	}
}

func TestBlitErrors(t *testing.T) {
	f := NewFrame(4, 4)
	if err := f.Blit(NewFrame(2, 2), Region{0, 0, 3, 3}); err == nil {
		t.Fatal("want size mismatch error")
	}
	if err := f.Blit(NewFrame(2, 2), Region{3, 3, 5, 5}); err == nil {
		t.Fatal("want out-of-bounds error")
	}
}

func TestSplitRowsTiling(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		regs, err := SplitRows(64, 37, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != n {
			t.Fatalf("got %d regions", len(regs))
		}
		total := 0
		prevY1 := 0
		for _, r := range regs {
			if r.Empty() {
				t.Fatalf("empty band %v with n=%d", r, n)
			}
			if r.Y0 != prevY1 {
				t.Fatalf("gap/overlap at %v", r)
			}
			prevY1 = r.Y1
			total += r.Pixels()
		}
		if total != 64*37 {
			t.Fatalf("bands cover %d pixels, want %d", total, 64*37)
		}
	}
	if _, err := SplitRows(10, 4, 5); err == nil {
		t.Fatal("want error when n > rows")
	}
}

func TestAssemble(t *testing.T) {
	full := NewFrame(8, 8)
	for i := range full.Pix {
		full.Pix[i] = byte(i)
	}
	regs, _ := SplitRows(8, 8, 3)
	subs := make([]*Frame, len(regs))
	for i, r := range regs {
		s, err := full.SubFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	got, err := Assemble(8, 8, subs, regs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(full) {
		t.Fatal("assembled frame differs from original")
	}
}

func TestAssembleMismatch(t *testing.T) {
	if _, err := Assemble(8, 8, []*Frame{NewFrame(8, 2)}, nil); err == nil {
		t.Fatal("want length mismatch error")
	}
}

func TestMSEPSNR(t *testing.T) {
	a := NewFrame(4, 4)
	b := NewFrame(4, 4)
	mse, err := MSE(a, b)
	if err != nil || mse != 0 {
		t.Fatalf("identical MSE = %v, %v", mse, err)
	}
	p, err := PSNR(a, b)
	if err != nil || !math.IsInf(p, 1) {
		t.Fatalf("identical PSNR = %v, %v", p, err)
	}
	b.Pix[0] = 255
	mse, _ = MSE(a, b)
	want := 255.0 * 255.0 / float64(len(a.Pix))
	if math.Abs(mse-want) > 1e-9 {
		t.Fatalf("MSE = %v, want %v", mse, want)
	}
	if _, err := MSE(a, NewFrame(2, 2)); err == nil {
		t.Fatal("want size mismatch")
	}
}

func TestPPMRoundTrip(t *testing.T) {
	f := NewFrame(5, 3)
	for i := range f.Pix {
		f.Pix[i] = byte(i * 7)
	}
	var buf bytes.Buffer
	if err := f.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(f) {
		t.Fatal("PPM round trip mismatch")
	}
}

func TestReadPPMRejectsBad(t *testing.T) {
	if _, err := ReadPPM(bytes.NewBufferString("P5\n2 2\n255\nxxxx")); err == nil {
		t.Fatal("want error for P5")
	}
	if _, err := ReadPPM(bytes.NewBufferString("P6\n2 2\n255\nxx")); err == nil {
		t.Fatal("want error for short data")
	}
}

func TestImageRoundTrip(t *testing.T) {
	f := NewFrame(6, 4)
	rng := rand.New(rand.NewSource(9))
	for i := range f.Pix {
		f.Pix[i] = byte(rng.Intn(256))
	}
	g := FromImage(f.ToImage())
	if !g.Equal(f) {
		t.Fatal("image conversion round trip mismatch")
	}
}

func BenchmarkOverImage(b *testing.B) {
	front := NewRGBA(256, 256)
	back := NewRGBA(256, 256)
	for i := range front.Pix {
		front.Pix[i] = 0.25
		back.Pix[i] = 0.5
	}
	b.SetBytes(int64(len(front.Pix) * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := front.Over(back); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRGBAClearClone(t *testing.T) {
	im := NewRGBA(3, 3)
	im.Set(1, 1, 0.5, 0.5, 0.5, 1)
	c := im.Clone()
	im.Clear()
	if _, _, _, a := im.At(1, 1); a != 0 {
		t.Fatal("clear failed")
	}
	if _, _, _, a := c.At(1, 1); a != 1 {
		t.Fatal("clone affected by clear")
	}
}

func TestSubRGBABlitRGBA(t *testing.T) {
	im := NewRGBA(8, 8)
	for i := range im.Pix {
		im.Pix[i] = float32(i) / float32(len(im.Pix))
	}
	r := Region{2, 2, 6, 5}
	sub, err := im.SubRGBA(r)
	if err != nil {
		t.Fatal(err)
	}
	if sub.W != 4 || sub.H != 3 {
		t.Fatalf("sub %dx%d", sub.W, sub.H)
	}
	dst := NewRGBA(8, 8)
	if err := dst.BlitRGBA(sub, r); err != nil {
		t.Fatal(err)
	}
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			ar, _, _, _ := im.At(x, y)
			br, _, _, _ := dst.At(x, y)
			if ar != br {
				t.Fatalf("mismatch at (%d,%d)", x, y)
			}
		}
	}
	// Error paths.
	if _, err := im.SubRGBA(Region{0, 0, 9, 9}); err == nil {
		t.Fatal("oob sub accepted")
	}
	if err := dst.BlitRGBA(sub, Region{0, 0, 1, 1}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := dst.BlitRGBA(sub, Region{6, 6, 10, 9}); err == nil {
		t.Fatal("oob blit accepted")
	}
}

func TestSplitRegion(t *testing.T) {
	lo, hi := SplitRegion(Region{0, 0, 10, 4}) // wide: split columns
	if lo.X1 != 5 || hi.X0 != 5 || lo.Y1 != 4 {
		t.Fatalf("wide split %v %v", lo, hi)
	}
	lo, hi = SplitRegion(Region{0, 0, 4, 10}) // tall: split rows
	if lo.Y1 != 5 || hi.Y0 != 5 {
		t.Fatalf("tall split %v %v", lo, hi)
	}
	// Halves tile the region.
	if lo.Pixels()+hi.Pixels() != 40 {
		t.Fatal("split does not tile")
	}
}

func TestSavePNGAndRegionString(t *testing.T) {
	f := NewFrame(4, 4)
	path := t.TempDir() + "/x.png"
	if err := f.SavePNG(path); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() == 0 {
		t.Fatalf("png not written: %v", err)
	}
	if (Region{1, 2, 3, 4}).String() == "" {
		t.Fatal("empty region string")
	}
	if (Region{}).Pixels() != 0 {
		t.Fatal("empty region pixels")
	}
}
