// Package img provides the image types used along the rendering and
// transport pipeline: floating-point RGBA images with premultiplied
// alpha for compositing, byte-RGB frames for transport and display,
// sub-image regions, assembly, and quality metrics.
package img

import (
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"
)

// RGBA is a floating-point image with premultiplied alpha, the working
// format of the renderer and the compositor. Pix is row-major, 4
// floats per pixel (R,G,B,A), each nominally in [0,1].
type RGBA struct {
	W, H int
	Pix  []float32
}

// NewRGBA allocates a transparent-black image.
func NewRGBA(w, h int) *RGBA {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("img: negative dimensions %dx%d", w, h))
	}
	return &RGBA{W: w, H: h, Pix: make([]float32, w*h*4)}
}

// At returns the pixel at (x,y).
func (im *RGBA) At(x, y int) (r, g, b, a float32) {
	i := (y*im.W + x) * 4
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2], im.Pix[i+3]
}

// Set stores a pixel at (x,y).
func (im *RGBA) Set(x, y int, r, g, b, a float32) {
	i := (y*im.W + x) * 4
	im.Pix[i], im.Pix[i+1], im.Pix[i+2], im.Pix[i+3] = r, g, b, a
}

// Clear resets every pixel to transparent black.
func (im *RGBA) Clear() {
	for i := range im.Pix {
		im.Pix[i] = 0
	}
}

// Clone returns a deep copy.
func (im *RGBA) Clone() *RGBA {
	c := NewRGBA(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// OverPixel composites front-to-back: dst = dst OVER src, where dst is
// the front (already accumulated) premultiplied pixel and src lies
// behind it. Operating on 4-float slices avoids per-pixel indexing in
// the compositor's inner loop.
func OverPixel(dst, src []float32) {
	t := 1 - dst[3]
	dst[0] += t * src[0]
	dst[1] += t * src[1]
	dst[2] += t * src[2]
	dst[3] += t * src[3]
}

// Over composites im (front) over bg (back) in place into im. The two
// images must have identical dimensions.
func (im *RGBA) Over(bg *RGBA) error {
	if im.W != bg.W || im.H != bg.H {
		return fmt.Errorf("img: Over size mismatch %dx%d vs %dx%d", im.W, im.H, bg.W, bg.H)
	}
	for i := 0; i < len(im.Pix); i += 4 {
		OverPixel(im.Pix[i:i+4:i+4], bg.Pix[i:i+4:i+4])
	}
	return nil
}

// Frame is an 8-bit RGB image, the transport and display format. Pix
// is row-major, 3 bytes per pixel.
type Frame struct {
	W, H int
	Pix  []byte
}

// NewFrame allocates a black frame.
func NewFrame(w, h int) *Frame {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("img: negative dimensions %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]byte, w*h*3)}
}

// Bytes returns the raw pixel size of the frame.
func (f *Frame) Bytes() int { return len(f.Pix) }

// At returns the pixel at (x,y).
func (f *Frame) At(x, y int) (r, g, b byte) {
	i := (y*f.W + x) * 3
	return f.Pix[i], f.Pix[i+1], f.Pix[i+2]
}

// Set stores the pixel at (x,y).
func (f *Frame) Set(x, y int, r, g, b byte) {
	i := (y*f.W + x) * 3
	f.Pix[i], f.Pix[i+1], f.Pix[i+2] = r, g, b
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	c := NewFrame(f.W, f.H)
	copy(c.Pix, f.Pix)
	return c
}

// Equal reports whether two frames are pixel-identical.
func (f *Frame) Equal(o *Frame) bool {
	if f.W != o.W || f.H != o.H {
		return false
	}
	for i := range f.Pix {
		if f.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// ToFrame converts the float image to 8-bit RGB over an opaque
// background of the given gray level, un-premultiplying is not needed
// because the background blend works directly on premultiplied values:
// out = rgb + (1-a)*bg.
func (im *RGBA) ToFrame(bg float32) *Frame {
	return im.ToFrameInto(NewFrame(im.W, im.H), bg)
}

// ToFrameInto is ToFrame writing into dst, which must match the image
// dimensions; it returns dst. Paired with GetFrame/PutFrame this
// keeps the per-frame encode path allocation-free.
func (im *RGBA) ToFrameInto(dst *Frame, bg float32) *Frame {
	if dst.W != im.W || dst.H != im.H {
		panic(fmt.Sprintf("img: ToFrameInto %dx%d frame for %dx%d image", dst.W, dst.H, im.W, im.H))
	}
	for p, i := 0, 0; p < len(im.Pix); p, i = p+4, i+3 {
		a := im.Pix[p+3]
		t := (1 - a) * bg
		dst.Pix[i] = quantize(im.Pix[p] + t)
		dst.Pix[i+1] = quantize(im.Pix[p+1] + t)
		dst.Pix[i+2] = quantize(im.Pix[p+2] + t)
	}
	return dst
}

func quantize(v float32) byte {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return byte(v*255 + 0.5)
}

// Region is a rectangular sub-area of a frame: [X0,X1) x [Y0,Y1).
type Region struct {
	X0, Y0, X1, Y1 int
}

// W and H return the region extents.
func (r Region) W() int { return r.X1 - r.X0 }

// H returns the region height.
func (r Region) H() int { return r.Y1 - r.Y0 }

// Empty reports whether the region has no pixels.
func (r Region) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Pixels returns the pixel count of the region.
func (r Region) Pixels() int {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

func (r Region) String() string { return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1) }

// SubFrame extracts a region of the frame as a standalone frame.
func (f *Frame) SubFrame(r Region) (*Frame, error) {
	if r.X0 < 0 || r.Y0 < 0 || r.X1 > f.W || r.Y1 > f.H || r.Empty() {
		return nil, fmt.Errorf("img: region %v outside frame %dx%d", r, f.W, f.H)
	}
	s := NewFrame(r.W(), r.H())
	for y := 0; y < s.H; y++ {
		src := ((r.Y0+y)*f.W + r.X0) * 3
		dst := y * s.W * 3
		copy(s.Pix[dst:dst+s.W*3], f.Pix[src:src+s.W*3])
	}
	return s, nil
}

// Blit copies sub into f with sub's top-left corner at region r's
// origin; sub must match r's extents and r must lie inside f.
func (f *Frame) Blit(sub *Frame, r Region) error {
	if sub.W != r.W() || sub.H != r.H() {
		return fmt.Errorf("img: blit size %dx%d != region %v", sub.W, sub.H, r)
	}
	if r.X0 < 0 || r.Y0 < 0 || r.X1 > f.W || r.Y1 > f.H {
		return fmt.Errorf("img: region %v outside frame %dx%d", r, f.W, f.H)
	}
	for y := 0; y < sub.H; y++ {
		dst := ((r.Y0+y)*f.W + r.X0) * 3
		src := y * sub.W * 3
		copy(f.Pix[dst:dst+sub.W*3], sub.Pix[src:src+sub.W*3])
	}
	return nil
}

// SplitRows partitions the frame's scanlines into n near-equal
// horizontal bands, the screen-space decomposition used by binary-swap
// result gathering and by parallel compression.
func SplitRows(w, h, n int) ([]Region, error) {
	if n < 1 || n > h {
		return nil, fmt.Errorf("img: cannot split %d rows into %d bands", h, n)
	}
	out := make([]Region, n)
	for i := 0; i < n; i++ {
		y0 := i * h / n
		y1 := (i + 1) * h / n
		out[i] = Region{0, y0, w, y1}
	}
	return out, nil
}

// Assemble stitches sub-frames into one w*h frame according to their
// regions. Regions must tile or partially cover the target; uncovered
// pixels stay black.
func Assemble(w, h int, subs []*Frame, regions []Region) (*Frame, error) {
	if len(subs) != len(regions) {
		return nil, errors.New("img: subs/regions length mismatch")
	}
	out := NewFrame(w, h)
	for i, s := range subs {
		if err := out.Blit(s, regions[i]); err != nil {
			return nil, fmt.Errorf("img: assembling piece %d: %w", i, err)
		}
	}
	return out, nil
}

// MSE returns the mean squared error between two frames of identical
// dimensions.
func MSE(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("img: MSE size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	if len(a.Pix) == 0 {
		return 0, nil
	}
	var s float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		s += d * d
	}
	return s / float64(len(a.Pix)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB between two frames;
// identical frames return +Inf.
func PSNR(a, b *Frame) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// ToImage converts the frame to a standard library image for encoding.
func (f *Frame) ToImage() *image.RGBA {
	im := image.NewRGBA(image.Rect(0, 0, f.W, f.H))
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			r, g, b := f.At(x, y)
			im.SetRGBA(x, y, color.RGBA{r, g, b, 255})
		}
	}
	return im
}

// FromImage converts any stdlib image into a Frame.
func FromImage(src image.Image) *Frame {
	b := src.Bounds()
	f := NewFrame(b.Dx(), b.Dy())
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			r, g, bl, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			f.Set(x, y, byte(r>>8), byte(g>>8), byte(bl>>8))
		}
	}
	return f
}

// WritePNG encodes the frame as PNG.
func (f *Frame) WritePNG(w io.Writer) error { return png.Encode(w, f.ToImage()) }

// SavePNG writes the frame to a PNG file.
func (f *Frame) SavePNG(path string) error {
	fp, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fp.Close()
	if err := f.WritePNG(fp); err != nil {
		return err
	}
	return fp.Close()
}

// WritePPM encodes the frame as binary PPM (P6), a zero-dependency
// format convenient for quick inspection.
func (f *Frame) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", f.W, f.H); err != nil {
		return err
	}
	_, err := w.Write(f.Pix)
	return err
}

// ReadPPM parses a binary PPM (P6) stream produced by WritePPM.
func ReadPPM(r io.Reader) (*Frame, error) {
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscan(r, &magic, &w, &h, &maxv); err != nil {
		return nil, fmt.Errorf("img: bad PPM header: %w", err)
	}
	if magic != "P6" || maxv != 255 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("img: unsupported PPM (%s, max %d, %dx%d)", magic, maxv, w, h)
	}
	// Consume the single whitespace byte after the header.
	var nl [1]byte
	if _, err := io.ReadFull(r, nl[:]); err != nil {
		return nil, err
	}
	f := NewFrame(w, h)
	if _, err := io.ReadFull(r, f.Pix); err != nil {
		return nil, fmt.Errorf("img: short PPM pixel data: %w", err)
	}
	return f, nil
}
