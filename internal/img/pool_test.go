package img

import (
	"sync"
	"testing"
)

func TestPoolReuseAndClear(t *testing.T) {
	im := GetRGBA(16, 16)
	for i := range im.Pix {
		im.Pix[i] = 0.5
	}
	PutRGBA(im)
	// A smaller request must fit in the recycled capacity and come back
	// zeroed.
	im2 := GetRGBA(8, 8)
	if im2.W != 8 || im2.H != 8 {
		t.Fatalf("got %dx%d", im2.W, im2.H)
	}
	for i, p := range im2.Pix {
		if p != 0 {
			t.Fatalf("pixel %d not cleared: %v", i, p)
		}
	}
	PutRGBA(im2)

	f := GetFrame(4, 4)
	for i, p := range f.Pix {
		if p != 0 {
			t.Fatalf("frame byte %d not cleared: %v", i, p)
		}
	}
	PutFrame(f)
}

func TestPoolNilAndOversize(t *testing.T) {
	PutRGBA(nil) // must not panic
	PutFrame(nil)
	im := GetRGBARaw(3, 5)
	if im.W != 3 || im.H != 5 || len(im.Pix) != 3*5*4 {
		t.Fatalf("raw get wrong shape: %dx%d len %d", im.W, im.H, len(im.Pix))
	}
}

// Hammer the pools from many goroutines; run with -race this verifies
// the frame path is safe under concurrent broker clients.
func TestPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w := 4 + (seed+i)%13
				h := 4 + (seed*3+i)%9
				im := GetRGBA(w, h)
				im.Pix[0] = float32(seed)
				fr := GetFrameRaw(w, h)
				fr.Pix[0] = byte(i)
				PutFrame(fr)
				PutRGBA(im)
			}
		}(g)
	}
	wg.Wait()
	st := Pools()
	if st.Puts == 0 {
		t.Fatal("pool saw no puts")
	}
}
