package img

import "fmt"

// SubRGBA extracts region r of the float image as a standalone image;
// used by the binary-swap compositor to carve exchange halves.
func (im *RGBA) SubRGBA(r Region) (*RGBA, error) {
	if r.X0 < 0 || r.Y0 < 0 || r.X1 > im.W || r.Y1 > im.H || r.Empty() {
		return nil, fmt.Errorf("img: region %v outside image %dx%d", r, im.W, im.H)
	}
	s := NewRGBA(r.W(), r.H())
	for y := 0; y < s.H; y++ {
		src := ((r.Y0+y)*im.W + r.X0) * 4
		dst := y * s.W * 4
		copy(s.Pix[dst:dst+s.W*4], im.Pix[src:src+s.W*4])
	}
	return s, nil
}

// BlitRGBA copies sub into im at region r; sub must match r's extents.
func (im *RGBA) BlitRGBA(sub *RGBA, r Region) error {
	if sub.W != r.W() || sub.H != r.H() {
		return fmt.Errorf("img: blit size %dx%d != region %v", sub.W, sub.H, r)
	}
	if r.X0 < 0 || r.Y0 < 0 || r.X1 > im.W || r.Y1 > im.H {
		return fmt.Errorf("img: region %v outside image %dx%d", r, im.W, im.H)
	}
	for y := 0; y < sub.H; y++ {
		dst := ((r.Y0+y)*im.W + r.X0) * 4
		src := y * sub.W * 4
		copy(im.Pix[dst:dst+sub.W*4], sub.Pix[src:src+sub.W*4])
	}
	return nil
}

// SplitRegion bisects r along its longer side (ties split rows),
// returning the low and high halves. Deterministic, so binary-swap
// partners derive identical splits independently.
func SplitRegion(r Region) (lo, hi Region) {
	if r.W() > r.H() {
		mid := r.X0 + r.W()/2
		return Region{r.X0, r.Y0, mid, r.Y1}, Region{mid, r.Y0, r.X1, r.Y1}
	}
	mid := r.Y0 + r.H()/2
	return Region{r.X0, r.Y0, r.X1, mid}, Region{r.X0, mid, r.X1, r.Y1}
}
