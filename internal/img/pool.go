package img

import (
	"sync"
	"sync/atomic"
)

// Buffer pools for the per-frame hot path. The renderer, compositor
// and encode path churn through one RGBA and one Frame per frame per
// node; recycling them turns the steady-state frame loop into a
// zero-allocation path. Pools are capacity-based rather than
// size-classed: a pooled buffer is reused whenever its capacity
// covers the request, which fits the pipeline's workload of a few
// fixed image sizes.

var (
	rgbaPool  sync.Pool // *RGBA
	framePool sync.Pool // *Frame

	poolHits   atomic.Int64
	poolMisses atomic.Int64
	poolPuts   atomic.Int64
)

// PoolStats is a snapshot of the image buffer pool counters.
type PoolStats struct {
	// Hits counts Get calls satisfied from the pool, Misses calls
	// that fell through to a fresh allocation, Puts returns.
	Hits, Misses, Puts int64
}

// Pools reports the image buffer pool counters; the observability
// layer bridges them to an allocation gauge.
func Pools() PoolStats {
	return PoolStats{
		Hits:   poolHits.Load(),
		Misses: poolMisses.Load(),
		Puts:   poolPuts.Load(),
	}
}

// GetRGBA returns a cleared w x h float image, reusing a pooled
// buffer when one with sufficient capacity is available. A drop-in
// replacement for NewRGBA on paths that PutRGBA when done.
func GetRGBA(w, h int) *RGBA {
	need := w * h * 4
	if im, ok := rgbaPool.Get().(*RGBA); ok && cap(im.Pix) >= need {
		poolHits.Add(1)
		im.W, im.H = w, h
		im.Pix = im.Pix[:need]
		clear(im.Pix)
		return im
	}
	poolMisses.Add(1)
	return NewRGBA(w, h)
}

// GetRGBARaw is GetRGBA without the clear: pixel contents are
// undefined. For callers that overwrite every pixel (sub-image
// copies, full-frame conversions) the memset would be pure memory
// traffic.
func GetRGBARaw(w, h int) *RGBA {
	need := w * h * 4
	if im, ok := rgbaPool.Get().(*RGBA); ok && cap(im.Pix) >= need {
		poolHits.Add(1)
		im.W, im.H = w, h
		im.Pix = im.Pix[:need]
		return im
	}
	poolMisses.Add(1)
	return NewRGBA(w, h)
}

// PutRGBA recycles an image obtained from GetRGBA (or NewRGBA). The
// caller must not touch im afterwards; nil is ignored.
func PutRGBA(im *RGBA) {
	if im == nil || cap(im.Pix) == 0 {
		return
	}
	poolPuts.Add(1)
	rgbaPool.Put(im)
}

// GetFrame returns a cleared (black) w x h byte frame from the pool.
func GetFrame(w, h int) *Frame {
	need := w * h * 3
	if f, ok := framePool.Get().(*Frame); ok && cap(f.Pix) >= need {
		poolHits.Add(1)
		f.W, f.H = w, h
		f.Pix = f.Pix[:need]
		clear(f.Pix)
		return f
	}
	poolMisses.Add(1)
	return NewFrame(w, h)
}

// GetFrameRaw is GetFrame without the clear: pixel contents are
// undefined, for callers that overwrite every pixel.
func GetFrameRaw(w, h int) *Frame {
	need := w * h * 3
	if f, ok := framePool.Get().(*Frame); ok && cap(f.Pix) >= need {
		poolHits.Add(1)
		f.W, f.H = w, h
		f.Pix = f.Pix[:need]
		return f
	}
	poolMisses.Add(1)
	return NewFrame(w, h)
}

// PutFrame recycles a frame obtained from GetFrame (or NewFrame). The
// caller must not touch f afterwards; nil is ignored.
func PutFrame(f *Frame) {
	if f == nil || cap(f.Pix) == 0 {
		return
	}
	poolPuts.Add(1)
	framePool.Put(f)
}
