// Distributed-framebuffer (tile-ownership) compositing, after the
// Distributed FrameBuffer of Usher et al.: the frame is cut into fixed
// scanline tiles, each with a deterministic owner rank. As a node's
// ray caster finishes the rows of a tile it immediately posts that
// fragment to the owner over the comm any-source inbox; owners blend
// arriving fragments in visibility order and emit each completed tile
// the moment its last fragment lands. There is no exchange barrier:
// compositing overlaps rendering, early tiles can start compressing
// and shipping while the slowest node is still ray casting, and
// all-transparent fragments cross the wire as tiny markers instead of
// pixels.
//
// Binary-swap remains the golden reference. DFB is bit-identical to
// it on power-of-two groups because owners blend each tile with the
// same balanced merge tree binary-swap induces (frontRange arbitrates
// front/back for both); non-power-of-two groups blend linearly in
// visibility order, bit-identical to DirectSend. Skipping an
// all-transparent fragment is exact: with premultiplied non-negative
// pixels, over with a zero operand is the identity in IEEE float
// (x + (1-a)*0 = x and 0 + 1*x = x).
package composite

import (
	"fmt"
	"sync/atomic"

	"repro/internal/comm"
	"repro/internal/img"
	"repro/internal/render"
	"repro/internal/vol"
)

// DefaultTileRows is the tile height in scanlines when DFBOptions
// leaves TileRows zero.
const DefaultTileRows = 8

// emptyFragBytes is the accounted wire size of an all-transparent
// fragment marker (tile index + header, no pixels).
const emptyFragBytes = 16

// Tile is one fully blended tile of the frame, emitted by its owner.
type Tile struct {
	// Index is the tile number (Region = rows [Index*TileRows, ...)).
	Index int
	// Region is the tile's absolute screen region.
	Region img.Region
	// Image holds the blended pixels; pool-backed (img.PutRGBA when
	// done with it).
	Image *img.RGBA
}

// TileSink observes completed tiles on their owner rank, in completion
// order. It is called from the DFB drain goroutine; a non-nil error
// aborts the drain and surfaces from Wait. The tile image remains
// owned by the DFB (it is also returned by Wait) — sinks must copy
// pixels they need past the call.
type TileSink func(Tile) error

// DFBOptions tunes a distributed-framebuffer compositor.
type DFBOptions struct {
	// TileRows is the tile height in scanlines (0 = DefaultTileRows).
	TileRows int
	// OnTile, when set, streams each completed tile out of the owner
	// as soon as its last fragment is blended — before the frame (or
	// even the local render) is finished. This is the hook that lets
	// per-tile compression and delivery start early.
	OnTile TileSink
}

// tileFrag is the wire payload of one rank's contribution to a tile.
// A nil image marks an all-transparent contribution: the owner counts
// it toward completion but blends nothing.
type tileFrag struct {
	tile int
	im   *img.RGBA
}

// dfbCancel is a self-posted wake-up marker: a rank whose render
// failed posts it to its own inbox so the drain loop exits instead of
// waiting forever for fragments that will never come.
type dfbCancel struct{}

// ErrDFBCancelled is returned by Wait after Cancel.
var ErrDFBCancelled = fmt.Errorf("composite: DFB cancelled")

// DFB is one rank's endpoint of a distributed-framebuffer composite
// for a single frame. Typical lifecycle on every rank of the group:
//
//	d, _ := composite.NewDFB(c, step, w, h, boxes, eye, opt)
//	d.Start()                       // drain goroutine: blend + emit
//	// render, calling d.RowsDone(dst, y0, y1) per finished band
//	d.RenderDone()                  // overlap bookkeeping
//	tiles, err := d.Wait()          // this rank's owned tiles
//
// RowsDone is safe to call concurrently from render workers. One DFB
// serves one (group, step) frame; make a fresh one per step.
type DFB struct {
	c        *comm.Comm
	step     int
	w, h     int
	boxes    []vol.Box
	eye      render.Vec3
	tileRows int
	onTile   TileSink

	tiles []img.Region
	// pow2 selects the binary-swap-identical merge tree; otherwise
	// tiles blend linearly in order (DirectSend-identical).
	pow2  bool
	order []int

	// remaining[t] counts rows of tile t this rank has not rendered
	// yet; the render callback decrements it and posts the fragment at
	// zero (atomic — render workers report concurrently).
	remaining []int32

	ownedTiles []int
	// emitted counts owned tiles blended and emitted so far; early is
	// its snapshot at RenderDone — the overlap numerator.
	emitted   atomic.Int32
	early     atomic.Int32
	started   bool
	cancelled atomic.Bool

	done chan struct{}
	out  []Tile
	err  error
}

// NewDFB prepares a distributed-framebuffer composite of one w x h
// frame across the ranks of c, which rendered boxes as seen from eye
// (boxes[rank] per rank, recursive-bisection order as for BinarySwap).
// step namespaces the message tags via the comm tag registry.
func NewDFB(c *comm.Comm, step, w, h int, boxes []vol.Box, eye render.Vec3, opt DFBOptions) (*DFB, error) {
	p := c.Size()
	if len(boxes) != p {
		return nil, fmt.Errorf("composite: %d boxes for %d ranks", len(boxes), p)
	}
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("composite: image %dx%d", w, h)
	}
	tr := opt.TileRows
	if tr == 0 {
		tr = DefaultTileRows
	}
	if tr < 1 {
		return nil, fmt.Errorf("composite: tile rows %d", tr)
	}
	if tr > h {
		tr = h
	}
	d := &DFB{
		c: c, step: step, w: w, h: h,
		boxes: boxes, eye: eye,
		tileRows: tr,
		onTile:   opt.OnTile,
		pow2:     p&(p-1) == 0,
		done:     make(chan struct{}),
	}
	if !d.pow2 {
		order, err := VisibilityOrder(boxes, eye)
		if err != nil {
			return nil, err
		}
		d.order = order
	}
	nt := (h + tr - 1) / tr
	d.tiles = make([]img.Region, nt)
	d.remaining = make([]int32, nt)
	for i := range d.tiles {
		y0 := i * tr
		y1 := min(y0+tr, h)
		d.tiles[i] = img.Region{X0: 0, Y0: y0, X1: w, Y1: y1}
		d.remaining[i] = int32(y1 - y0)
		if d.Owner(i) == c.Rank() {
			d.ownedTiles = append(d.ownedTiles, i)
		}
	}
	return d, nil
}

// Owner returns the rank that blends and emits tile ti — a fixed
// assignment every rank computes identically (round-robin, so owners
// stay balanced whatever the group size).
func (d *DFB) Owner(ti int) int { return ti % d.c.Size() }

// NumTiles returns the frame's tile count.
func (d *DFB) NumTiles() int { return len(d.tiles) }

// TileRegion returns the absolute screen region of tile ti.
func (d *DFB) TileRegion(ti int) img.Region { return d.tiles[ti] }

// Start launches the drain goroutine that receives fragments for this
// rank's owned tiles, blends, and emits. Call exactly once, before
// Wait; fragments posted before Start simply queue in the inbox.
func (d *DFB) Start() {
	if d.started {
		panic("composite: DFB.Start called twice")
	}
	d.started = true
	go d.drain()
}

// RowsDone reports that scanlines [y0,y1) of this rank's partial image
// src are final. Tiles whose rows are all rendered are immediately
// carved out of src and posted to their owners — hook this to
// render.Options.TileDone so tiles ship while the frame is still
// rendering. Safe for concurrent calls with disjoint row bands; each
// row must be reported exactly once.
func (d *DFB) RowsDone(src *img.RGBA, y0, y1 int) {
	y0 = max(y0, 0)
	y1 = min(y1, d.h)
	for ti := y0 / d.tileRows; ti < len(d.tiles) && d.tiles[ti].Y0 < y1; ti++ {
		t := d.tiles[ti]
		ov := min(y1, t.Y1) - max(y0, t.Y0)
		if ov <= 0 {
			continue
		}
		if atomic.AddInt32(&d.remaining[ti], -int32(ov)) == 0 {
			d.postTile(src, ti)
		}
	}
}

// SubmitAll posts every tile of a fully rendered partial image — the
// non-streaming path for callers without per-band render callbacks.
func (d *DFB) SubmitAll(src *img.RGBA) { d.RowsDone(src, 0, d.h) }

// RenderDone records that this rank's local render has finished; the
// owned tiles already emitted by then were composited entirely in the
// shadow of rendering (the overlap numerator of Overlap).
func (d *DFB) RenderDone() { d.early.Store(d.emitted.Load()) }

// Overlap reports, after Wait, how many of this rank's owned tiles
// were emitted before RenderDone, and how many it owns in total.
func (d *DFB) Overlap() (early, owned int) {
	return int(d.early.Load()), len(d.ownedTiles)
}

// Cancel aborts the drain loop (e.g. this rank's render failed): a
// wake-up marker is posted to the rank's own inbox so Wait returns
// ErrDFBCancelled promptly instead of blocking on fragments that will
// never arrive. Idempotent; safe after normal completion (the marker
// is simply never consumed).
func (d *DFB) Cancel() {
	if d.cancelled.Swap(true) {
		return
	}
	d.c.Post(d.c.Rank(), tagTile.Tag(d.step, 0), dfbCancel{}, 0)
}

// Wait blocks until every owned tile is blended and emitted (or the
// drain failed) and returns this rank's tiles in completion order.
// The tile images are pool-backed and owned by the caller.
func (d *DFB) Wait() ([]Tile, error) {
	if !d.started {
		return nil, fmt.Errorf("composite: DFB.Wait before Start")
	}
	<-d.done
	return d.out, d.err
}

// postTile carves tile ti out of src and posts it to its owner.
// All-transparent fragments travel as pixel-free markers: blending a
// zero fragment is the bitwise identity, so the owner just counts
// them — this is where a brick's limited screen footprint turns into
// wire savings.
func (d *DFB) postTile(src *img.RGBA, ti int) {
	frag, err := subRGBAPooled(src, d.tiles[ti])
	if err != nil {
		// Unreachable by construction (tiles lie inside the frame);
		// surface loudly rather than hang the owner.
		panic(err)
	}
	tag := tagTile.Tag(d.step, 0)
	if allTransparent(frag) {
		img.PutRGBA(frag)
		d.c.Post(d.Owner(ti), tag, tileFrag{tile: ti}, emptyFragBytes)
		return
	}
	d.c.Post(d.Owner(ti), tag, tileFrag{tile: ti, im: frag}, pieceBytes(frag))
}

// allTransparent reports whether every pixel of the fragment is
// exactly zero.
func allTransparent(im *img.RGBA) bool {
	for _, v := range im.Pix {
		if v != 0 {
			return false
		}
	}
	return true
}

// drain is the owner loop: one goroutine per rank receiving fragments
// for its owned tiles, blending each tile as its last fragment lands,
// and emitting it to the sink. Comm wait panics (peer death, timeout,
// world abort) are converted to errors here — this goroutine is not a
// Run rank, so re-panicking would crash the process.
func (d *DFB) drain() {
	defer close(d.done)
	defer func() {
		if rec := recover(); rec != nil {
			if err := comm.WaitError(rec); err != nil {
				d.err = err
				return
			}
			panic(rec)
		}
	}()
	nOwned := len(d.ownedTiles)
	if nOwned == 0 {
		return
	}
	p := d.c.Size()
	tag := tagTile.Tag(d.step, 0)
	ownedIdx := make([]int, len(d.tiles))
	for i := range ownedIdx {
		ownedIdx[i] = -1
	}
	for k, ti := range d.ownedTiles {
		ownedIdx[ti] = k
	}
	// frags[k][src] is src's fragment for owned tile k (nil = empty or
	// not yet arrived; seen disambiguates), got[k] the arrival count.
	frags := make([][]*img.RGBA, nOwned)
	seen := make([][]bool, nOwned)
	got := make([]int, nOwned)
	// outstanding[src] counts fragments src still owes this rank — the
	// expect set that lets Take fail fast when a contributor dies.
	outstanding := make([]int, p)
	for i := range outstanding {
		outstanding[i] = nOwned
	}
	expect := make([]int, 0, p)
	pending := nOwned
	for pending > 0 {
		expect = expect[:0]
		for r, n := range outstanding {
			if n > 0 {
				expect = append(expect, r)
			}
		}
		src, payload, _ := d.c.Take(tag, expect...)
		if _, isCancel := payload.(dfbCancel); isCancel {
			d.err = ErrDFBCancelled
			return
		}
		f, ok := payload.(tileFrag)
		if !ok {
			d.err = fmt.Errorf("composite: unexpected tile payload %T", payload)
			return
		}
		k := -1
		if f.tile >= 0 && f.tile < len(ownedIdx) {
			k = ownedIdx[f.tile]
		}
		if k < 0 || src < 0 {
			d.err = fmt.Errorf("composite: tile %d fragment from rank %d not for this owner", f.tile, src)
			return
		}
		if frags[k] == nil {
			frags[k] = make([]*img.RGBA, p)
			seen[k] = make([]bool, p)
		}
		if seen[k][src] {
			d.err = fmt.Errorf("composite: duplicate fragment for tile %d from rank %d", f.tile, src)
			return
		}
		seen[k][src] = true
		frags[k][src] = f.im
		got[k]++
		outstanding[src]--
		if got[k] < p {
			continue
		}
		im, err := d.mergeTile(f.tile, frags[k])
		if err != nil {
			d.err = err
			return
		}
		frags[k] = nil
		t := Tile{Index: f.tile, Region: d.tiles[f.tile], Image: im}
		d.out = append(d.out, t)
		d.emitted.Add(1)
		if d.onTile != nil {
			if err := d.onTile(t); err != nil {
				d.err = err
				return
			}
		}
		pending--
	}
}

// mergeTile blends the P fragments of one tile. Power-of-two groups
// use the binary-swap merge tree (bit-identical to BinarySwap); other
// sizes accumulate linearly in visibility order from a transparent
// canvas (bit-identical to DirectSend). The result is pool-backed and
// may alias one fragment; every other non-nil fragment is recycled.
func (d *DFB) mergeTile(ti int, frags []*img.RGBA) (*img.RGBA, error) {
	reg := d.tiles[ti]
	if d.pow2 {
		im, err := d.mergeTree(frags, 0, len(frags))
		if err != nil {
			return nil, err
		}
		if im == nil {
			// Every fragment was transparent: an owned tile is still due,
			// so emit a blank one.
			im = img.GetRGBA(reg.W(), reg.H())
		}
		return im, nil
	}
	out := img.GetRGBA(reg.W(), reg.H())
	for _, i := range d.order {
		f := frags[i]
		if f == nil {
			continue
		}
		if err := out.Over(f); err != nil {
			return nil, err
		}
		img.PutRGBA(f)
	}
	return out, nil
}

// mergeTree blends frags[lo:hi) with the balanced binary tree
// binary-swap induces: split at the midpoint, merge each half, then
// blend front over back as arbitrated by frontRange — the same
// decisions BinarySwap's stages make, in the same operand order. nil
// (transparent) fragments are identities and skip the blend entirely,
// which is bit-exact for premultiplied non-negative pixels.
func (d *DFB) mergeTree(frags []*img.RGBA, lo, hi int) (*img.RGBA, error) {
	if hi-lo == 1 {
		return frags[lo], nil
	}
	mid := lo + (hi-lo)/2
	a, err := d.mergeTree(frags, lo, mid)
	if err != nil {
		return nil, err
	}
	b, err := d.mergeTree(frags, mid, hi)
	if err != nil {
		return nil, err
	}
	if a == nil {
		return b, nil
	}
	if b == nil {
		return a, nil
	}
	leftFront, err := frontRange(d.boxes, lo, mid, hi, d.eye)
	if err != nil {
		return nil, err
	}
	if leftFront {
		if err := a.Over(b); err != nil {
			return nil, err
		}
		img.PutRGBA(b)
		return a, nil
	}
	if err := b.Over(a); err != nil {
		return nil, err
	}
	img.PutRGBA(a)
	return b, nil
}

// DFBComposite is the one-shot form: submit a fully rendered partial
// image, drain, and return this rank's owned tiles — BinarySwap's
// call shape, for callers without per-band render hooks. Every rank
// of c must call it with the same step.
func DFBComposite(c *comm.Comm, im *img.RGBA, boxes []vol.Box, eye render.Vec3, step int, opt DFBOptions) ([]Tile, error) {
	d, err := NewDFB(c, step, im.W, im.H, boxes, eye, opt)
	if err != nil {
		return nil, err
	}
	d.Start()
	d.SubmitAll(im)
	d.RenderDone()
	return d.Wait()
}

// GatherTiles assembles every rank's owned tiles into a full frame at
// root; other ranks return nil. Ownership of the tile images
// transfers: root recycles every received and local tile after
// blitting. Uses the composite.gather tag class, so do not mix with
// FinalGather on the same (world, step).
func GatherTiles(c *comm.Comm, tiles []Tile, w, h, root, step int) (*img.RGBA, error) {
	tag := tagGather.Tag(step, 0)
	if c.Rank() != root {
		nb := 0
		for _, t := range tiles {
			nb += pieceBytes(t.Image)
		}
		c.Send(root, tag, tiles, nb)
		return nil, nil
	}
	out := img.NewRGBA(w, h)
	blit := func(tiles []Tile) error {
		for _, t := range tiles {
			if err := out.BlitRGBA(t.Image, t.Region); err != nil {
				return err
			}
			img.PutRGBA(t.Image)
		}
		return nil
	}
	if err := blit(tiles); err != nil {
		return nil, err
	}
	for src := 0; src < c.Size(); src++ {
		if src == root {
			continue
		}
		got, _ := c.Recv(src, tag)
		theirs, ok := got.([]Tile)
		if !ok {
			return nil, fmt.Errorf("composite: tile gather payload %T", got)
		}
		if err := blit(theirs); err != nil {
			return nil, err
		}
	}
	return out, nil
}
