package composite

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/datagen"
	"repro/internal/img"
	"repro/internal/render"
	"repro/internal/tf"
	"repro/internal/vol"

	"repro/internal/testutil"
)

func TestVisibilityOrderSimpleSplit(t *testing.T) {
	testutil.CheckGoroutines(t)
	boxes := []vol.Box{
		{X0: 0, Y0: 0, Z0: 0, X1: 5, Y1: 10, Z1: 10},
		{X0: 5, Y0: 0, Z0: 0, X1: 10, Y1: 10, Z1: 10},
	}
	// Eye on the low-x side: box 0 first.
	order, err := VisibilityOrder(boxes, render.Vec3{X: -20, Y: 5, Z: 5})
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("order %v", order)
	}
	// Eye on the high-x side: box 1 first.
	order, err = VisibilityOrder(boxes, render.Vec3{X: 30, Y: 5, Z: 5})
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("order %v", order)
	}
}

func TestVisibilityOrderKD(t *testing.T) {
	testutil.CheckGoroutines(t)
	boxes, err := vol.SplitKD(vol.Dims{NX: 32, NY: 32, NZ: 32}, 8)
	if err != nil {
		t.Fatal(err)
	}
	eye := render.Vec3{X: -50, Y: -20, Z: 70}
	order, err := VisibilityOrder(boxes, eye)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("order length %d", len(order))
	}
	// Every index exactly once.
	seen := map[int]bool{}
	for _, i := range order {
		if seen[i] {
			t.Fatalf("duplicate %d in %v", i, order)
		}
		seen[i] = true
	}
	// Distances from the eye must be achievable front-to-back: the
	// first box must be no farther than the last box (necessary
	// condition of a correct visibility order from an outside eye).
	d := func(b vol.Box) float64 {
		cx, cy, cz := b.Center()
		return eye.Sub(render.Vec3{X: cx, Y: cy, Z: cz}).Norm()
	}
	if d(boxes[order[0]]) > d(boxes[order[len(order)-1]]) {
		t.Fatalf("first box farther than last: %v", order)
	}
}

func TestVisibilityOrderRejectsNonBSP(t *testing.T) {
	testutil.CheckGoroutines(t)
	// A pinwheel of 4 boxes in the plane has no separating plane.
	boxes := []vol.Box{
		{X0: 0, Y0: 0, Z0: 0, X1: 6, Y1: 4, Z1: 1},
		{X0: 6, Y0: 0, Z0: 0, X1: 10, Y1: 6, Z1: 1},
		{X0: 4, Y0: 6, Z0: 0, X1: 10, Y1: 10, Z1: 1},
		{X0: 0, Y0: 4, Z0: 0, X1: 4, Y1: 10, Z1: 1},
	}
	if _, err := VisibilityOrder(boxes, render.Vec3{X: -5, Y: -5, Z: 5}); err == nil {
		t.Fatal("want error for pinwheel decomposition")
	}
}

// renderPartials renders one brick per rank and returns the reference
// whole-volume rendering along with the partials.
func renderPartials(t testing.TB, p, w, h int) (ref *img.RGBA, partials []*img.RGBA, boxes []vol.Box, cam *render.Camera) {
	g := datagen.NewJetScaled(0.2, 2)
	v, err := g.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	cam, err = render.NewOrbitCamera(v.Dims, 0.8, 0.4, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	opt := render.DefaultOptions()
	opt.TerminationAlpha = 1
	ref, _, err = render.Render(v, cam, tf.Jet(), opt, w, h)
	if err != nil {
		t.Fatal(err)
	}
	boxes, err = vol.SplitKD(v.Dims, p)
	if err != nil {
		t.Fatal(err)
	}
	partials = make([]*img.RGBA, p)
	for i, b := range boxes {
		br, err := v.Extract(b, 2)
		if err != nil {
			t.Fatal(err)
		}
		partials[i], _, err = render.RenderBrick(br, cam, tf.Jet(), opt, w, h)
		if err != nil {
			t.Fatal(err)
		}
	}
	return ref, partials, boxes, cam
}

func maxDiff(a, b *img.RGBA) float64 {
	var m float64
	for i := range a.Pix {
		d := math.Abs(float64(a.Pix[i] - b.Pix[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestDirectSendMatchesReference(t *testing.T) {
	testutil.CheckGoroutines(t)
	const P, W, H = 6, 40, 40
	ref, partials, boxes, cam := renderPartials(t, P, W, H)
	var got *img.RGBA
	var mu sync.Mutex
	err := comm.Run(P, func(c *comm.Comm) error {
		out, err := DirectSend(c, partials[c.Rank()], boxes, cam.Eye, 0, 500)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			got = out
			mu.Unlock()
		} else if out != nil {
			return fmt.Errorf("non-root rank got an image")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no output image")
	}
	if d := maxDiff(ref, got); d > 5e-3 {
		t.Fatalf("direct-send differs from reference by %v", d)
	}
}

func TestBinarySwapMatchesReference(t *testing.T) {
	testutil.CheckGoroutines(t)
	for _, P := range []int{2, 4, 8, 16} {
		P := P
		t.Run(fmt.Sprint(P), func(t *testing.T) {
			const W, H = 40, 40
			ref, partials, boxes, cam := renderPartials(t, P, W, H)
			var got *img.RGBA
			var mu sync.Mutex
			err := comm.Run(P, func(c *comm.Comm) error {
				reg, piece, err := BinarySwap(c, partials[c.Rank()], boxes, cam.Eye, 100)
				if err != nil {
					return err
				}
				out, err := FinalGather(c, reg, piece, W, H, 0, 900)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					mu.Lock()
					got = out
					mu.Unlock()
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if got == nil {
				t.Fatal("no output")
			}
			if d := maxDiff(ref, got); d > 5e-3 {
				t.Fatalf("binary-swap differs from reference by %v", d)
			}
		})
	}
}

// Binary-swap and direct-send must agree with each other for many
// viewpoints — the eye position drives the front/back decisions.
func TestBinarySwapManyViewpoints(t *testing.T) {
	testutil.CheckGoroutines(t)
	const P, W, H = 8, 32, 32
	g := datagen.NewVortexScaled(0.15, 2)
	v, err := g.Step(0)
	if err != nil {
		t.Fatal(err)
	}
	boxes, err := vol.SplitKD(v.Dims, P)
	if err != nil {
		t.Fatal(err)
	}
	opt := render.DefaultOptions()
	opt.TerminationAlpha = 1
	opt.Shading = false
	for _, view := range [][2]float64{{0, 0}, {1.2, 0.5}, {3.0, -0.8}, {4.5, 1.3}, {2.2, -1.4}} {
		cam, err := render.NewOrbitCamera(v.Dims, view[0], view[1], 2)
		if err != nil {
			t.Fatal(err)
		}
		ref, _, err := render.Render(v, cam, tf.Vortex(), opt, W, H)
		if err != nil {
			t.Fatal(err)
		}
		partials := make([]*img.RGBA, P)
		for i, b := range boxes {
			br, err := v.Extract(b, 2)
			if err != nil {
				t.Fatal(err)
			}
			partials[i], _, err = render.RenderBrick(br, cam, tf.Vortex(), opt, W, H)
			if err != nil {
				t.Fatal(err)
			}
		}
		var got *img.RGBA
		var mu sync.Mutex
		err = comm.Run(P, func(c *comm.Comm) error {
			reg, piece, err := BinarySwap(c, partials[c.Rank()], boxes, cam.Eye, 0)
			if err != nil {
				return err
			}
			out, err := FinalGather(c, reg, piece, W, H, 0, 800)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				mu.Lock()
				got = out
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("view %v: %v", view, err)
		}
		if d := maxDiff(ref, got); d > 5e-3 {
			t.Fatalf("view %v: binary-swap differs by %v", view, d)
		}
	}
}

func TestBinarySwapRejectsNonPowerOfTwo(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := comm.Run(3, func(c *comm.Comm) error {
		_, _, err := BinarySwap(c, img.NewRGBA(8, 8), make([]vol.Box, 3), render.Vec3{}, 0)
		if err == nil {
			return fmt.Errorf("want power-of-two error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBinarySwapRejectsBoxCountMismatch(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := comm.Run(2, func(c *comm.Comm) error {
		_, _, err := BinarySwap(c, img.NewRGBA(8, 8), make([]vol.Box, 3), render.Vec3{}, 0)
		if err == nil {
			return fmt.Errorf("want box count error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The per-rank regions after binary-swap must tile the image.
func TestBinarySwapRegionsTile(t *testing.T) {
	testutil.CheckGoroutines(t)
	const P, W, H = 8, 64, 48
	_, partials, boxes, cam := renderPartials(t, P, W, H)
	regions := make([]img.Region, P)
	err := comm.Run(P, func(c *comm.Comm) error {
		reg, _, err := BinarySwap(c, partials[c.Rank()], boxes, cam.Eye, 0)
		if err != nil {
			return err
		}
		regions[c.Rank()] = reg
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for i, r := range regions {
		if r.Empty() {
			t.Fatalf("rank %d region empty", i)
		}
		covered += r.Pixels()
		for j := i + 1; j < P; j++ {
			o := regions[j]
			if r.X0 < o.X1 && o.X0 < r.X1 && r.Y0 < o.Y1 && o.Y0 < r.Y1 {
				t.Fatalf("regions %d and %d overlap: %v %v", i, j, r, o)
			}
		}
	}
	if covered != W*H {
		t.Fatalf("regions cover %d of %d pixels", covered, W*H)
	}
}

func BenchmarkBinarySwap8(b *testing.B) {
	const P, W, H = 8, 128, 128
	_, partials, boxes, cam := renderPartials(b, P, W, H)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Clone partials: BinarySwap consumes them.
		ps := make([]*img.RGBA, P)
		for j := range ps {
			ps[j] = partials[j].Clone()
		}
		err := comm.Run(P, func(c *comm.Comm) error {
			_, _, err := BinarySwap(c, ps[c.Rank()], boxes, cam.Eye, 0)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: direct-send funnels (P-1) full partial images into the
// root's single incoming link, while binary-swap spreads the exchange
// across all links, with the busiest node receiving only about one
// image's worth. This link-bottleneck relief is why the paper's
// renderer composites with binary-swap [16].
func TestBinarySwapRelievesRootLink(t *testing.T) {
	testutil.CheckGoroutines(t)
	const P, W, H = 8, 64, 64
	_, partials, boxes, cam := renderPartials(t, P, W, H)

	// rootRecv measures the bytes the root rank's incoming link
	// carries, using the fabric's per-rank traffic accounting.
	rootRecv := func(useSwap bool) int64 {
		ps := make([]*img.RGBA, P)
		for i := range ps {
			ps[i] = partials[i].Clone()
		}
		var root int64
		err := comm.Run(P, func(c *comm.Comm) error {
			if useSwap {
				reg, piece, err := BinarySwap(c, ps[c.Rank()], boxes, cam.Eye, 0)
				if err != nil {
					return err
				}
				if _, err := FinalGather(c, reg, piece, W, H, 0, 700); err != nil {
					return err
				}
			} else {
				if _, err := DirectSend(c, ps[c.Rank()], boxes, cam.Eye, 0, 800); err != nil {
					return err
				}
			}
			c.Barrier()
			if c.Rank() == 0 {
				root = c.World().BytesReceivedBy(0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return root
	}
	swap := rootRecv(true)
	direct := rootRecv(false)
	// Binary-swap's root receives ~ (1 - 1/P) + (P-1)/P images' worth;
	// direct-send's receives P-1 full images.
	if swap*2 > direct {
		t.Fatalf("binary-swap root link %d not ≪ direct-send %d", swap, direct)
	}
}
