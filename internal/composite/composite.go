// Package composite merges the partial images rendered by the nodes of
// a processor group into the final frame — the "global image
// compositing" stage of the paper's pipeline. The primary algorithm is
// binary-swap compositing [Ma, Painter, Hansen, Krogh 1994]; a
// direct-send compositor serves group sizes that are not powers of two
// and as the correctness baseline in tests.
package composite

import (
	"fmt"
	"math/bits"

	"repro/internal/comm"
	"repro/internal/img"
	"repro/internal/render"
	"repro/internal/vol"
)

// Tag classes of the compositing exchanges, drawn from comm's central
// registry so composite and pipeline traffic sharing one world can
// never collide (each class gets a disjoint block, keyed per step).
var (
	tagSwap   = comm.RegisterTagClass("composite.swap", maxSwapStages)
	tagGather = comm.RegisterTagClass("composite.gather", 1)
	tagDirect = comm.RegisterTagClass("composite.direct", 1)
	tagTile   = comm.RegisterTagClass("composite.tile", 1)
)

// maxSwapStages bounds the binary-swap stage count (2^32 ranks —
// unreachable; it only sizes the tag class).
const maxSwapStages = 32

// VisibilityOrder returns a front-to-back permutation of boxes as seen
// from eye. The boxes must tile a convex region by axis-aligned cuts
// (any decomposition produced by vol.SplitKD qualifies): the order is
// derived by recursively locating a separating plane and visiting the
// eye's side first, which is correct for every ray simultaneously.
func VisibilityOrder(boxes []vol.Box, eye render.Vec3) ([]int, error) {
	switch len(boxes) {
	case 0:
		return nil, fmt.Errorf("composite: no boxes to order")
	case 1:
		// Fast path: a lone box needs no plane search.
		return []int{0}, nil
	}
	idx := make([]int, len(boxes))
	for i := range idx {
		idx[i] = i
	}
	out := make([]int, 0, len(boxes))
	if err := visitBSP(boxes, idx, eye, &out); err != nil {
		return nil, err
	}
	return out, nil
}

func visitBSP(boxes []vol.Box, idx []int, eye render.Vec3, out *[]int) error {
	if len(idx) <= 1 {
		*out = append(*out, idx...)
		return nil
	}
	axis, plane, ok := separatingPlane(boxes, idx)
	if !ok {
		// Degenerate boxes (a zero-thickness cut, e.g. from splitting a
		// dimension below its cell count) defeat the plane search; name
		// the culprit instead of reporting a generic BSP failure.
		for _, i := range idx {
			if b := boxes[i]; b.X1 <= b.X0 || b.Y1 <= b.Y0 || b.Z1 <= b.Z0 {
				return fmt.Errorf("composite: degenerate (zero-thickness) box %d %+v in decomposition — cannot order", i, b)
			}
		}
		return fmt.Errorf("composite: no separating plane for %d boxes — not a BSP decomposition", len(idx))
	}
	var lo, hi []int
	for _, i := range idx {
		if boxMax(boxes[i], axis) <= plane {
			lo = append(lo, i)
		} else {
			hi = append(hi, i)
		}
	}
	if len(lo) == 0 || len(hi) == 0 {
		// Defensive: separatingPlane guarantees both sides nonempty with
		// the same classification; erroring here beats recursing forever
		// on the full set if that invariant is ever broken.
		return fmt.Errorf("composite: separating plane axis %d at %d left an empty side (%d/%d boxes)", axis, plane, len(lo), len(hi))
	}
	eyeC := [3]float64{eye.X, eye.Y, eye.Z}[axis]
	near, far := lo, hi
	if eyeC > float64(plane) {
		near, far = hi, lo
	}
	if err := visitBSP(boxes, near, eye, out); err != nil {
		return err
	}
	return visitBSP(boxes, far, eye, out)
}

func boxMin(b vol.Box, axis int) int { return [3]int{b.X0, b.Y0, b.Z0}[axis] }
func boxMax(b vol.Box, axis int) int { return [3]int{b.X1, b.Y1, b.Z1}[axis] }

// separatingPlane finds an axis and coordinate such that every box
// lies entirely on one side, with both sides nonempty.
func separatingPlane(boxes []vol.Box, idx []int) (axis, plane int, ok bool) {
	for axis = 0; axis < 3; axis++ {
		// Candidate planes: the max face of every box.
		for _, i := range idx {
			plane = boxMax(boxes[i], axis)
			nLo, nHi, clean := 0, 0, true
			for _, j := range idx {
				switch {
				case boxMax(boxes[j], axis) <= plane:
					nLo++
				case boxMin(boxes[j], axis) >= plane:
					nHi++
				default:
					clean = false
				}
				if !clean {
					break
				}
			}
			if clean && nLo > 0 && nHi > 0 {
				return axis, plane, true
			}
		}
	}
	return 0, 0, false
}

// piece is the exchange payload: a sub-image and its absolute region.
type piece struct {
	reg img.Region
	im  *img.RGBA
}

func pieceBytes(p *img.RGBA) int { return len(p.Pix) * 4 }

// BinarySwap composites the group's partial images. Every rank of c
// calls it with its own full-size partial image im (the rendering of
// boxes[rank] as seen by cam eye). The group size must be a power of
// two. Each rank returns the screen region it owns after compositing
// and the fully composited pixels of that region — ready for parallel
// compression or for FinalGather.
//
// Sub-image exchange buffers are drawn from the img pool and recycled
// as each stage consumes them, so a steady-state frame loop swaps
// without allocating. The returned image is pool-backed: the caller
// may img.PutRGBA it when finished (dropping it is also fine). The
// caller's im is never recycled.
//
// step namespaces the exchange tags (via the comm tag registry) so
// concurrent groups sharing a world — always on different pipeline
// steps — do not cross-talk.
func BinarySwap(c *comm.Comm, im *img.RGBA, boxes []vol.Box, eye render.Vec3, step int) (img.Region, *img.RGBA, error) {
	p := c.Size()
	if p&(p-1) != 0 {
		return img.Region{}, nil, fmt.Errorf("composite: binary-swap needs power-of-two group, got %d", p)
	}
	if len(boxes) != p {
		return img.Region{}, nil, fmt.Errorf("composite: %d boxes for %d ranks", len(boxes), p)
	}
	rank := c.Rank()
	cur := piece{reg: img.Region{X0: 0, Y0: 0, X1: im.W, Y1: im.H}, im: im}
	stages := bits.TrailingZeros(uint(p))
	for s := 0; s < stages; s++ {
		partner := rank ^ (1 << s)
		lo, hi := img.SplitRegion(cur.reg)
		keep, give := lo, hi
		if rank&(1<<s) != 0 {
			keep, give = hi, lo
		}
		keepIm, err := subRGBAPooled(cur.im, relRegion(keep, cur.reg))
		if err != nil {
			return img.Region{}, nil, err
		}
		giveIm, err := subRGBAPooled(cur.im, relRegion(give, cur.reg))
		if err != nil {
			return img.Region{}, nil, err
		}
		// Both halves are carved out, so the previous stage's piece is
		// dead — recycle it unless it is the caller's input image.
		if cur.im != im {
			img.PutRGBA(cur.im)
		}
		c.Send(partner, tagSwap.Tag(step, s), giveIm, pieceBytes(giveIm))
		got, _ := c.Recv(partner, tagSwap.Tag(step, s))
		theirs, ok := got.(*img.RGBA)
		if !ok {
			return img.Region{}, nil, fmt.Errorf("composite: unexpected payload %T", got)
		}
		if theirs.W != keepIm.W || theirs.H != keepIm.H {
			return img.Region{}, nil, fmt.Errorf("composite: stage %d piece %dx%d != %dx%d", s, theirs.W, theirs.H, keepIm.W, keepIm.H)
		}
		front, err := iAmFront(boxes, rank, partner, s, eye)
		if err != nil {
			return img.Region{}, nil, err
		}
		if front {
			if err := keepIm.Over(theirs); err != nil {
				return img.Region{}, nil, err
			}
			img.PutRGBA(theirs) // merged into keepIm
			cur = piece{reg: keep, im: keepIm}
		} else {
			if err := theirs.Over(keepIm); err != nil {
				return img.Region{}, nil, err
			}
			img.PutRGBA(keepIm) // merged into theirs
			cur = piece{reg: keep, im: theirs}
		}
	}
	return cur.reg, cur.im, nil
}

// subRGBAPooled carves region r of src into a pool-backed image —
// the allocation-free twin of img.RGBA.SubRGBA. The copy overwrites
// every pixel, so the pooled buffer needs no clearing beyond what
// GetRGBA provides.
func subRGBAPooled(src *img.RGBA, r img.Region) (*img.RGBA, error) {
	if r.X0 < 0 || r.Y0 < 0 || r.X1 > src.W || r.Y1 > src.H || r.Empty() {
		return nil, fmt.Errorf("composite: region %v outside image %dx%d", r, src.W, src.H)
	}
	s := img.GetRGBARaw(r.W(), r.H())
	for y := 0; y < s.H; y++ {
		so := ((r.Y0+y)*src.W + r.X0) * 4
		do := y * s.W * 4
		copy(s.Pix[do:do+s.W*4], src.Pix[so:so+s.W*4])
	}
	return s, nil
}

// relRegion translates absolute screen region r into coordinates
// relative to the piece covering base.
func relRegion(r, base img.Region) img.Region {
	return img.Region{X0: r.X0 - base.X0, Y0: r.Y0 - base.Y0, X1: r.X1 - base.X0, Y1: r.Y1 - base.Y0}
}

// iAmFront decides whether rank's subtree at stage s is in front of
// partner's. The two subtrees are the halves of the parent rank range
// {ranks sharing bits above s}; under the recursive-bisection rank
// assignment their box unions are separated by an axis plane. The
// decision delegates to frontRange — the same function the DFB merge
// tree uses — so both compositors blend in exactly the same order.
func iAmFront(boxes []vol.Box, rank, partner, s int, eye render.Vec3) (bool, error) {
	base := rank & ^((1 << (s + 1)) - 1)
	mid := base + (1 << s)
	leftFront, err := frontRange(boxes, base, mid, base+(1<<(s+1)), eye)
	if err != nil {
		return false, err
	}
	return leftFront == (rank < mid), nil
}

// frontRange reports whether the union of boxes[lo:mid) is in front of
// boxes[mid:hi) as seen from eye. This is the single front/back
// arbiter for binary-swap stages and DFB tile merges: because both use
// it on identical (lo, mid, hi) splits, their blend trees apply the
// over operator to the same operands in the same order, which is what
// makes the two compositors bit-identical despite float
// non-associativity.
func frontRange(boxes []vol.Box, lo, mid, hi int, eye render.Vec3) (bool, error) {
	left := rangeUnion(boxes, lo, mid)
	right := rangeUnion(boxes, mid, hi)
	for axis := 0; axis < 3; axis++ {
		eyeC := [3]float64{eye.X, eye.Y, eye.Z}[axis]
		if boxMax(left, axis) <= boxMin(right, axis) {
			// left is on the low side of the plane.
			return eyeC < float64(boxMax(left, axis)), nil
		}
		if boxMax(right, axis) <= boxMin(left, axis) {
			return eyeC > float64(boxMax(right, axis)), nil
		}
	}
	return false, fmt.Errorf("composite: subtrees [%d,%d) and [%d,%d) not separated — boxes must come from recursive bisection in rank order", lo, mid, mid, hi)
}

// rangeUnion returns the bounding box of boxes[lo:hi).
func rangeUnion(boxes []vol.Box, lo, hi int) vol.Box {
	u := vol.Box{X0: 1 << 30, Y0: 1 << 30, Z0: 1 << 30, X1: -(1 << 30), Y1: -(1 << 30), Z1: -(1 << 30)}
	for i := lo; i < hi && i < len(boxes); i++ {
		b := boxes[i]
		if b.X0 < u.X0 {
			u.X0 = b.X0
		}
		if b.Y0 < u.Y0 {
			u.Y0 = b.Y0
		}
		if b.Z0 < u.Z0 {
			u.Z0 = b.Z0
		}
		if b.X1 > u.X1 {
			u.X1 = b.X1
		}
		if b.Y1 > u.Y1 {
			u.Y1 = b.Y1
		}
		if b.Z1 > u.Z1 {
			u.Z1 = b.Z1
		}
	}
	return u
}

// FinalGather assembles the per-rank composited pieces into a full
// frame at root. Every rank calls it with its piece from BinarySwap
// and the same step; only root receives a non-nil image. Ownership of
// pc transfers to FinalGather on every rank: root recycles the
// received pieces into the img pool after blitting (its own pc is
// left to the caller).
func FinalGather(c *comm.Comm, reg img.Region, pc *img.RGBA, w, h, root, step int) (*img.RGBA, error) {
	tag := tagGather.Tag(step, 0)
	if c.Rank() != root {
		c.Send(root, tag, piece{reg: reg, im: pc}, pieceBytes(pc))
		return nil, nil
	}
	out := img.NewRGBA(w, h)
	if err := out.BlitRGBA(pc, reg); err != nil {
		return nil, err
	}
	for src := 0; src < c.Size(); src++ {
		if src == root {
			continue
		}
		got, _ := c.Recv(src, tag)
		pp, ok := got.(piece)
		if !ok {
			return nil, fmt.Errorf("composite: gather payload %T", got)
		}
		if err := out.BlitRGBA(pp.im, pp.reg); err != nil {
			return nil, err
		}
		img.PutRGBA(pp.im)
	}
	return out, nil
}

// DirectSend composites by shipping every partial image to root, which
// sorts them into visibility order and applies the over operator. It
// works for any group size and serves as the correctness baseline for
// BinarySwap (and for DFB's non-power-of-two merge order). Only root
// returns a non-nil image.
func DirectSend(c *comm.Comm, im *img.RGBA, boxes []vol.Box, eye render.Vec3, root, step int) (*img.RGBA, error) {
	tag := tagDirect.Tag(step, 0)
	if len(boxes) != c.Size() {
		return nil, fmt.Errorf("composite: %d boxes for %d ranks", len(boxes), c.Size())
	}
	if c.Rank() != root {
		c.Send(root, tag, im, pieceBytes(im))
		return nil, nil
	}
	parts := make([]*img.RGBA, c.Size())
	parts[root] = im
	for src := 0; src < c.Size(); src++ {
		if src == root {
			continue
		}
		got, _ := c.Recv(src, tag)
		p, ok := got.(*img.RGBA)
		if !ok {
			return nil, fmt.Errorf("composite: direct-send payload %T", got)
		}
		parts[src] = p
	}
	order, err := VisibilityOrder(boxes, eye)
	if err != nil {
		return nil, err
	}
	out := img.NewRGBA(im.W, im.H)
	for _, i := range order {
		if err := out.Over(parts[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
