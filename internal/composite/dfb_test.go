package composite

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/img"
	"repro/internal/render"
	"repro/internal/testutil"
	"repro/internal/vol"
)

// The golden acceptance bar of the DFB refactor: tile-ownership
// compositing must be BIT-identical to binary-swap on power-of-two
// groups — same over operands, same order, despite float
// non-associativity and the empty-fragment shortcut.
func TestDFBBitIdenticalToBinarySwap(t *testing.T) {
	testutil.CheckGoroutines(t)
	for _, p := range []int{2, 4, 8, 16} {
		for _, tileRows := range []int{1, 8} {
			t.Run(fmt.Sprintf("p=%d/tileRows=%d", p, tileRows), func(t *testing.T) {
				const W, H = 40, 40
				_, partials, boxes, cam := renderPartials(t, p, W, H)

				var swapped *img.RGBA
				err := comm.Run(p, func(c *comm.Comm) error {
					reg, piece, err := BinarySwap(c, partials[c.Rank()], boxes, cam.Eye, 0)
					if err != nil {
						return err
					}
					out, err := FinalGather(c, reg, piece, W, H, 0, 1)
					if err != nil {
						return err
					}
					if c.Rank() == 0 {
						swapped = out
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}

				// Fresh partials: BinarySwap consumed the piece buffers.
				_, partials, _, _ = renderPartials(t, p, W, H)
				var dfbFrame *img.RGBA
				err = comm.Run(p, func(c *comm.Comm) error {
					tiles, err := DFBComposite(c, partials[c.Rank()], boxes, cam.Eye, 0,
						DFBOptions{TileRows: tileRows})
					if err != nil {
						return err
					}
					out, err := GatherTiles(c, tiles, W, H, 0, 1)
					if err != nil {
						return err
					}
					if c.Rank() == 0 {
						dfbFrame = out
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}

				if swapped == nil || dfbFrame == nil {
					t.Fatal("missing composited frame")
				}
				for i := range swapped.Pix {
					if swapped.Pix[i] != dfbFrame.Pix[i] {
						t.Fatalf("pixel float %d: DFB %v != binary-swap %v",
							i, dfbFrame.Pix[i], swapped.Pix[i])
					}
				}
			})
		}
	}
}

// Non-power-of-two groups take the linear visibility-order merge —
// the direct-send fallback — and must be bit-identical to DirectSend.
func TestDFBNonPow2BitIdenticalToDirectSend(t *testing.T) {
	testutil.CheckGoroutines(t)
	for _, p := range []int{3, 5, 6} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			const W, H = 40, 40
			_, partials, boxes, cam := renderPartials(t, p, W, H)

			var direct *img.RGBA
			err := comm.Run(p, func(c *comm.Comm) error {
				out, err := DirectSend(c, partials[c.Rank()], boxes, cam.Eye, 0, 0)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					direct = out
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}

			var dfbFrame *img.RGBA
			err = comm.Run(p, func(c *comm.Comm) error {
				tiles, err := DFBComposite(c, partials[c.Rank()], boxes, cam.Eye, 1, DFBOptions{})
				if err != nil {
					return err
				}
				out, err := GatherTiles(c, tiles, W, H, 0, 2)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					dfbFrame = out
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}

			for i := range direct.Pix {
				if direct.Pix[i] != dfbFrame.Pix[i] {
					t.Fatalf("pixel float %d: DFB %v != direct-send %v",
						i, dfbFrame.Pix[i], direct.Pix[i])
				}
			}
		})
	}
}

// Owners must emit every tile exactly once, to the rank its index
// maps to, with the right region — and the OnTile stream must see
// each owned tile before Wait returns it.
func TestDFBTileOwnershipAndStreaming(t *testing.T) {
	testutil.CheckGoroutines(t)
	const P, W, H, tileRows = 4, 32, 30, 4
	_, partials, boxes, cam := renderPartials(t, P, W, H)

	var mu sync.Mutex
	emittedBy := map[int][]int{} // rank -> tile indices seen via OnTile
	err := comm.Run(P, func(c *comm.Comm) error {
		rank := c.Rank()
		opt := DFBOptions{
			TileRows: tileRows,
			OnTile: func(tl Tile) error {
				mu.Lock()
				defer mu.Unlock()
				emittedBy[rank] = append(emittedBy[rank], tl.Index)
				return nil
			},
		}
		tiles, err := DFBComposite(c, partials[rank], boxes, cam.Eye, 0, opt)
		if err != nil {
			return err
		}
		for _, tl := range tiles {
			if tl.Index%P != rank {
				return fmt.Errorf("rank %d emitted tile %d owned by %d", rank, tl.Index, tl.Index%P)
			}
			want := img.Region{X0: 0, Y0: tl.Index * tileRows, X1: W, Y1: min(tl.Index*tileRows+tileRows, H)}
			if tl.Region != want {
				return fmt.Errorf("tile %d region %+v, want %+v", tl.Index, tl.Region, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	numTiles := (H + tileRows - 1) / tileRows
	seen := map[int]int{}
	for rank, tiles := range emittedBy {
		for _, ti := range tiles {
			seen[ti]++
			if ti%P != rank {
				t.Fatalf("OnTile for tile %d fired on rank %d", ti, rank)
			}
		}
	}
	for ti := 0; ti < numTiles; ti++ {
		if seen[ti] != 1 {
			t.Fatalf("tile %d emitted %d times (want 1); seen %v", ti, seen[ti], seen)
		}
	}
}

// Footprint sparsity: partial images cover only their brick's screen
// projection, so most tile fragments are all-transparent markers and
// DFB must move fewer bytes than binary-swap + gather.
func TestDFBMovesFewerBytesThanBinarySwap(t *testing.T) {
	testutil.CheckGoroutines(t)
	const P, W, H = 8, 64, 64
	_, partials, boxes, cam := renderPartials(t, P, W, H)

	var swapBytes int64
	err := comm.Run(P, func(c *comm.Comm) error {
		reg, piece, err := BinarySwap(c, partials[c.Rank()], boxes, cam.Eye, 0)
		if err != nil {
			return err
		}
		if _, err := FinalGather(c, reg, piece, W, H, 0, 1); err != nil {
			return err
		}
		c.Barrier()
		if c.Rank() == 0 {
			swapBytes = c.World().BytesSent()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	_, partials, _, _ = renderPartials(t, P, W, H)
	var dfbBytes int64
	err = comm.Run(P, func(c *comm.Comm) error {
		tiles, err := DFBComposite(c, partials[c.Rank()], boxes, cam.Eye, 0, DFBOptions{})
		if err != nil {
			return err
		}
		if _, err := GatherTiles(c, tiles, W, H, 0, 1); err != nil {
			return err
		}
		c.Barrier()
		if c.Rank() == 0 {
			dfbBytes = c.World().BytesSent()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if dfbBytes >= swapBytes {
		t.Fatalf("DFB moved %d bytes, binary-swap %d — expected footprint sparsity to win", dfbBytes, swapBytes)
	}
	t.Logf("bytes on wire: DFB %d vs binary-swap %d (%.1fx)", dfbBytes, swapBytes, float64(swapBytes)/float64(dfbBytes))
}

// Cancel must unblock the drain goroutine promptly (no leaked drain,
// no hang) and surface ErrDFBCancelled from Wait.
func TestDFBCancelUnblocksWait(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := comm.Run(2, func(c *comm.Comm) error {
		boxes, err := vol.SplitKD(vol.Dims{NX: 16, NY: 16, NZ: 16}, 2)
		if err != nil {
			return err
		}
		d, err := NewDFB(c, 0, 16, 16, boxes, render.Vec3{X: -30, Y: 8, Z: 8}, DFBOptions{})
		if err != nil {
			return err
		}
		d.Start()
		// Simulated render failure: never submit, cancel instead.
		d.Cancel()
		if _, werr := d.Wait(); !errors.Is(werr, ErrDFBCancelled) {
			return fmt.Errorf("Wait after Cancel = %v", werr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A dead contributor must fail the owners' drains fast (ErrRankFailed
// via the expect set), not hang them.
func TestDFBContributorDeathFailsFast(t *testing.T) {
	testutil.CheckGoroutines(t)
	const P, W, H = 4, 32, 32
	_, partials, boxes, cam := renderPartials(t, P, W, H)
	err := comm.Run(P, func(c *comm.Comm) error {
		if c.Rank() == 3 {
			// Dies before contributing anything.
			c.FailSelf()
			return nil
		}
		_, err := DFBComposite(c, partials[c.Rank()], boxes, cam.Eye, 0, DFBOptions{})
		if !errors.Is(err, comm.ErrRankFailed) {
			return fmt.Errorf("rank %d: expected ErrRankFailed, got %v", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Degenerate decompositions from the VisibilityOrder satellite: single
// box fast path, empty input, zero-thickness cut.
func TestVisibilityOrderFastPathsAndDegenerates(t *testing.T) {
	testutil.CheckGoroutines(t)
	eye := render.Vec3{X: -5, Y: 5, Z: 5}
	one := []vol.Box{{X0: 0, Y0: 0, Z0: 0, X1: 8, Y1: 8, Z1: 8}}
	order, err := VisibilityOrder(one, eye)
	if err != nil || len(order) != 1 || order[0] != 0 {
		t.Fatalf("single box: order %v err %v", order, err)
	}
	if _, err := VisibilityOrder(nil, eye); err == nil {
		t.Fatal("empty input: want error")
	}
	// A zero-thickness cut: the middle box has no extent on x.
	degenerate := []vol.Box{
		{X0: 0, Y0: 0, Z0: 0, X1: 5, Y1: 8, Z1: 8},
		{X0: 5, Y0: 0, Z0: 0, X1: 5, Y1: 8, Z1: 8},
		{X0: 5, Y0: 0, Z0: 0, X1: 8, Y1: 8, Z1: 8},
	}
	_, err = VisibilityOrder(degenerate, eye)
	if err == nil {
		t.Fatal("zero-thickness cut: want error")
	}
	if got := err.Error(); !strings.Contains(got, "degenerate") {
		t.Fatalf("error %q does not name the degenerate box", got)
	}
}
