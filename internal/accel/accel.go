// Package accel provides a macrocell min-max grid for empty-space
// skipping during ray casting — the acceleration Parker et al. use in
// the interactive ray tracer the paper's related work surveys, and a
// concrete instance of §7.1's "preprocessing ... can provide many
// hints to the renderer such that rendering calculations can be
// greatly simplified".
//
// The volume is tiled into cells of CellSize³ grid points; each cell
// records the min/max of the normalized field over the cell plus a
// one-point border (so trilinear interpolation anywhere inside the
// cell stays within the recorded range). At render time a ray asks, in
// O(1) per cell, whether the transfer function assigns any opacity to
// the cell's value interval; fully transparent cells are skipped in
// one step instead of sample by sample. Skipping is conservative, so
// accelerated images are identical to unaccelerated ones.
package accel

import (
	"fmt"
	"math"

	"repro/internal/vol"
)

// DefaultCellSize is the macrocell edge length in grid points.
const DefaultCellSize = 8

// Grid is the macrocell min-max structure for one volume (or brick).
type Grid struct {
	// Origin is the parent-grid coordinate of the covered region's
	// lower corner; Dims its extent in grid points.
	Origin [3]int
	Dims   vol.Dims

	cell       int
	nx, ny, nz int // macrocell counts
	// minv/maxv hold normalized value bounds per cell.
	minv, maxv []float32
}

// Build constructs the grid for a volume. normalize maps raw values to
// [0,1] (pass the volume's or brick's Normalize); origin places the
// data in parent coordinates (zero for whole volumes).
func Build(v *vol.Volume, origin [3]int, normalize func(float32) float32, cellSize int) (*Grid, error) {
	if cellSize <= 0 {
		cellSize = DefaultCellSize
	}
	if !v.Dims.Valid() {
		return nil, fmt.Errorf("accel: invalid dims %v", v.Dims)
	}
	g := &Grid{
		Origin: origin,
		Dims:   v.Dims,
		cell:   cellSize,
		nx:     (v.Dims.NX + cellSize - 1) / cellSize,
		ny:     (v.Dims.NY + cellSize - 1) / cellSize,
		nz:     (v.Dims.NZ + cellSize - 1) / cellSize,
	}
	n := g.nx * g.ny * g.nz
	g.minv = make([]float32, n)
	g.maxv = make([]float32, n)
	for i := range g.minv {
		g.minv[i] = float32(math.Inf(1))
		g.maxv[i] = float32(math.Inf(-1))
	}
	// One pass over the grid points; each point contributes to every
	// cell whose border (cell extended by one point on the low side)
	// contains it, so interpolated values are covered.
	for z := 0; z < v.Dims.NZ; z++ {
		for y := 0; y < v.Dims.NY; y++ {
			for x := 0; x < v.Dims.NX; x++ {
				val := normalize(v.At(x, y, z))
				cx0, cx1 := cellRange(x, cellSize, g.nx)
				cy0, cy1 := cellRange(y, cellSize, g.ny)
				cz0, cz1 := cellRange(z, cellSize, g.nz)
				for cz := cz0; cz <= cz1; cz++ {
					for cy := cy0; cy <= cy1; cy++ {
						for cx := cx0; cx <= cx1; cx++ {
							i := g.cellIndex(cx, cy, cz)
							if val < g.minv[i] {
								g.minv[i] = val
							}
							if val > g.maxv[i] {
								g.maxv[i] = val
							}
						}
					}
				}
			}
		}
	}
	return g, nil
}

// cellRange returns the cells whose interpolation support includes
// grid point p: its own cell plus the previous cell when p lies on a
// cell boundary (trilinear interpolation reads one point beyond the
// cell's high face).
func cellRange(p, cellSize, n int) (lo, hi int) {
	c := p / cellSize
	lo, hi = c, c
	if p%cellSize == 0 && c > 0 {
		lo = c - 1
	}
	if hi > n-1 {
		hi = n - 1
	}
	return lo, hi
}

func (g *Grid) cellIndex(cx, cy, cz int) int { return cx + g.nx*(cy+g.ny*cz) }

// Range returns the normalized value bounds of the cell containing
// parent-grid position (x,y,z); ok=false outside the grid.
func (g *Grid) Range(x, y, z float64) (lo, hi float32, ok bool) {
	i, ok := g.CellAt(x, y, z)
	if !ok {
		return 0, 0, false
	}
	return g.minv[i], g.maxv[i], true
}

// CellAt returns the linear cell index containing parent-grid position
// (x,y,z); ok=false outside the grid.
func (g *Grid) CellAt(x, y, z float64) (int, bool) {
	if x < float64(g.Origin[0]) || y < float64(g.Origin[1]) || z < float64(g.Origin[2]) {
		return 0, false
	}
	cx := int(x-float64(g.Origin[0])) / g.cell
	cy := int(y-float64(g.Origin[1])) / g.cell
	cz := int(z-float64(g.Origin[2])) / g.cell
	if cx >= g.nx || cy >= g.ny || cz >= g.nz {
		return 0, false
	}
	return g.cellIndex(cx, cy, cz), true
}

// EmptyMask evaluates maxAlpha over every cell's value interval and
// returns a per-cell transparency flag. Computed once per (grid,
// transfer function) pair and then consulted per sample in O(1), it
// amortizes the range-max queries the skipping decision needs.
func (g *Grid) EmptyMask(maxAlpha func(lo, hi float32) float32) []bool {
	mask := make([]bool, len(g.minv))
	for i := range mask {
		if g.minv[i] > g.maxv[i] {
			// Cell never touched (possible only for degenerate dims);
			// treat as empty.
			mask[i] = true
			continue
		}
		mask[i] = maxAlpha(g.minv[i], g.maxv[i]) <= 0
	}
	return mask
}

// CellExit returns the ray parameter at which the ray
// orig + t*dir leaves the cell containing the point at parameter t.
// The caller advances to just past this parameter when the cell is
// transparent.
func (g *Grid) CellExit(ox, oy, oz, dx, dy, dz, t float64) float64 {
	px := ox + dx*t - float64(g.Origin[0])
	py := oy + dy*t - float64(g.Origin[1])
	pz := oz + dz*t - float64(g.Origin[2])
	cs := float64(g.cell)
	exit := math.Inf(1)
	axis := func(p, d float64) float64 {
		if d == 0 {
			return math.Inf(1)
		}
		c := math.Floor(p / cs)
		var bound float64
		if d > 0 {
			bound = (c + 1) * cs
		} else {
			bound = c * cs
		}
		return (bound - p) / d
	}
	if e := axis(px, dx); e < exit {
		exit = e
	}
	if e := axis(py, dy); e < exit {
		exit = e
	}
	if e := axis(pz, dz); e < exit {
		exit = e
	}
	if math.IsInf(exit, 1) || exit < 0 {
		return t
	}
	return t + exit
}

// Cells returns the macrocell counts (for tests and stats).
func (g *Grid) Cells() (nx, ny, nz int) { return g.nx, g.ny, g.nz }

// CellSize returns the cell edge length.
func (g *Grid) CellSize() int { return g.cell }
