package accel

import (
	"math"
	"testing"

	"repro/internal/vol"
)

func ident(v float32) float32 { return v }

func TestBuildCellCounts(t *testing.T) {
	v := vol.MustNew(vol.Dims{NX: 17, NY: 8, NZ: 9})
	g, err := Build(v, [3]int{0, 0, 0}, ident, 8)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny, nz := g.Cells()
	if nx != 3 || ny != 1 || nz != 2 {
		t.Fatalf("cells %d %d %d", nx, ny, nz)
	}
	if g.CellSize() != 8 {
		t.Fatal("cell size")
	}
	// Default cell size applies for 0.
	g2, err := Build(v, [3]int{0, 0, 0}, ident, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2.CellSize() != DefaultCellSize {
		t.Fatalf("default cell size %d", g2.CellSize())
	}
}

func TestRangeCoversInterpolation(t *testing.T) {
	// A spike at a cell-boundary grid point must appear in BOTH
	// adjacent cells' ranges (interpolation support crosses the
	// boundary).
	v := vol.MustNew(vol.Dims{NX: 16, NY: 16, NZ: 16})
	v.Fill(func(x, y, z int) float32 {
		if x == 8 && y == 4 && z == 4 {
			return 1
		}
		return 0
	})
	g, err := Build(v, [3]int{0, 0, 0}, ident, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Cell containing x=8 (second cell) and the cell before it.
	_, hi1, ok := g.Range(8.1, 4, 4)
	if !ok || hi1 != 1 {
		t.Fatalf("own cell max %v ok=%v", hi1, ok)
	}
	_, hi0, ok := g.Range(7.9, 4, 4)
	if !ok || hi0 != 1 {
		t.Fatalf("border cell max %v ok=%v — interpolation support not covered", hi0, ok)
	}
	// A far cell stays empty.
	lo, hi, ok := g.Range(1, 12, 12)
	if !ok || lo != 0 || hi != 0 {
		t.Fatalf("far cell [%v,%v] ok=%v", lo, hi, ok)
	}
}

func TestRangeOutside(t *testing.T) {
	v := vol.MustNew(vol.Dims{NX: 8, NY: 8, NZ: 8})
	g, err := Build(v, [3]int{10, 10, 10}, ident, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := g.Range(5, 5, 5); ok {
		t.Fatal("point before origin accepted")
	}
	if _, _, ok := g.Range(100, 12, 12); ok {
		t.Fatal("point past extent accepted")
	}
	if _, _, ok := g.Range(12, 12, 12); !ok {
		t.Fatal("interior point rejected")
	}
}

func TestCellExitAdvances(t *testing.T) {
	v := vol.MustNew(vol.Dims{NX: 32, NY: 32, NZ: 32})
	g, err := Build(v, [3]int{0, 0, 0}, ident, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Ray along +x starting at x=1: first cell [0,8) exits at x=8,
	// i.e. t=7.
	exit := g.CellExit(1, 4, 4, 1, 0, 0, 0)
	if math.Abs(exit-7) > 1e-9 {
		t.Fatalf("exit = %v, want 7", exit)
	}
	// Diagonal ray: exit at the nearest face.
	exit = g.CellExit(1, 1, 1, 1, 1, 1, 0)
	if math.Abs(exit-7) > 1e-9 {
		t.Fatalf("diagonal exit = %v, want 7", exit)
	}
	// Negative direction.
	exit = g.CellExit(9, 4, 4, -1, 0, 0, 0)
	if math.Abs(exit-1) > 1e-9 {
		t.Fatalf("negative exit = %v, want 1", exit)
	}
	// Exit must be monotone: repeated stepping crosses all cells.
	tcur := 0.0
	for i := 0; i < 3; i++ {
		next := g.CellExit(0.5, 4, 4, 1, 0, 0, tcur)
		if next <= tcur {
			t.Fatalf("exit not advancing at %v", tcur)
		}
		tcur = next + 1e-6
	}
}
